/**
 * @file
 * Policy-driven dispatch of bulk-transfer work across a DHL fleet.
 *
 * DhlFleet::runBulkTransfer pre-assigns carts round-robin and never
 * looks back — fine while every track is healthy, pathological when one
 * is down for repairs or maintenance: its share of the work queues
 * behind the outage while other tracks idle.  The FleetDispatcher is
 * the fleet-level scheduler that closes that gap, with three policies:
 *
 *  - RoundRobin:        static pre-assignment + serial per-track
 *                       chains.  Replicates DhlFleet::runBulkTransfer
 *                       event-for-event (tested), so it is both the
 *                       backwards-compatible default and the E18
 *                       baseline.
 *  - LeastQueued:       tracks pull jobs from one fleet-level queue as
 *                       they free up, so a slow track automatically
 *                       takes less work.
 *  - AvailabilityAware: LeastQueued plus (a) down tracks (fault,
 *                       maintenance window, plant outage) are not
 *                       offered work, (b) queued opens are drained off
 *                       a track the moment its launches block and the
 *                       jobs re-routed fleet-wide, and (c) while the
 *                       fleet is degraded, jobs below a priority floor
 *                       are deferred (admission control, reusing
 *                       core::RequestMeta).
 *  - Te:                LeastQueued plus a TeController (src/te): jobs
 *                       the controller routes optical ride a FlowSim
 *                       fat-tree uplink instead of a cart, and
 *                       contended bulk jobs below the TE priority
 *                       floor are downgraded to optical or held until
 *                       a control tick clears the contention.
 *
 * Work is re-routed at the *job* level: carts are track-local, so a
 * drained QueuedOpen's cart stays in its library and the job's payload
 * is re-created on the receiving track.
 */

#ifndef DHL_OPS_DISPATCHER_HPP
#define DHL_OPS_DISPATCHER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dhl/fleet.hpp"
#include "dhl/scheduler.hpp"
#include "dhl/simulation.hpp"
#include "network/flowsim.hpp"
#include "te/controller.hpp"

namespace dhl {
namespace ops {

/** Fleet-level dispatch policy. */
enum class DispatchPolicy
{
    RoundRobin,       ///< Static pre-assignment (today's behaviour).
    LeastQueued,      ///< Dynamic pull from one fleet-level queue.
    AvailabilityAware,///< Pull + outage re-routing + admission control.
    Te                ///< Pull + TeController hybrid substrate split.
};

std::string to_string(DispatchPolicy policy);

/** Parse "round-robin" / "least-queued" / "availability" / "te";
 *  fatal() on anything else. */
DispatchPolicy parseDispatchPolicy(const std::string &name);

/** Dispatcher parameters. */
struct DispatchConfig
{
    DispatchPolicy policy = DispatchPolicy::RoundRobin;

    /** AvailabilityAware admission floor: while any track is down,
     *  only jobs with meta.priority >= this are dispatched. */
    int min_priority_degraded = 0;

    /** AvailabilityAware in-flight jobs per track beyond its docking
     *  stations; the excess queues in the track's controller (and is
     *  what an outage drains off it). */
    std::size_t overcommit = 1;

    /** Traffic engineering (policy == Te requires te.enabled). */
    te::TeConfig te{};
};

/** Validate; fatal() on nonsense. */
void validate(const DispatchConfig &cfg);

/** Observables of one dispatcher run. */
struct DispatchMetrics
{
    /** Jobs pulled back off a blocked track and re-routed. */
    std::uint64_t reroutes = 0;

    /** Outage drains that actually moved work. */
    std::uint64_t drains = 0;

    /** Jobs deferred at least once by the degraded-mode priority
     *  floor. */
    std::uint64_t deferrals = 0;

    /** Te: jobs the controller routed onto the optical substrate. */
    std::uint64_t offloads = 0;

    /** Te: bytes moved optically instead of by cart. */
    double optical_bytes = 0.0;

    /** Te: energy spent on the optical substrate, J. */
    double optical_energy = 0.0;

    /** Per-open latency, issue -> docked, s. */
    std::vector<double> open_latency;
};

/** The fleet-level dispatcher. */
class FleetDispatcher
{
  public:
    /**
     * @param fleet The fleet to dispatch over (must outlive this).
     *              AvailabilityAware requires the fleet's fault
     *              registries (DhlFleet::ensureFaultStates).
     * @param cfg   Dispatch parameters.
     */
    FleetDispatcher(core::DhlFleet &fleet, const DispatchConfig &cfg);

    const DispatchConfig &config() const { return cfg_; }

    /**
     * Move @p bytes through the fleet under the configured policy and
     * run the simulation to completion.  @p meta optionally assigns
     * per-job scheduling metadata (indexed by job = cart; missing
     * entries default).  Semantics otherwise match
     * DhlFleet::runBulkTransfer.
     */
    core::BulkRunResult
    runBulkTransfer(double bytes, const core::BulkRunOptions &opts = {},
                    const std::vector<core::RequestMeta> &meta = {});

    /** Metrics of the last (or in-progress) run. */
    const DispatchMetrics &metrics() const { return metrics_; }

  private:
    struct Job
    {
        double load;
        core::RequestMeta meta;
        std::size_t seq;
        bool deferral_counted = false;
    };

    core::BulkRunResult runRoundRobin(double bytes,
                                      const core::BulkRunOptions &opts,
                                      std::vector<Job> jobs);
    core::BulkRunResult runPull(double bytes,
                                const core::BulkRunOptions &opts,
                                std::vector<Job> jobs);

    std::vector<Job> makeJobs(double bytes,
                              const std::vector<core::RequestMeta> &meta,
                              std::uint64_t *n_carts) const;

    void installListeners();
    bool trackUp(std::size_t t) const;
    bool anyTrackDown() const;
    std::size_t capacity(std::size_t t) const;
    void pump();
    void assign(std::size_t t, std::size_t j);
    void finishJob(std::size_t t, core::CartId id);
    void drainTrack(std::size_t t);
    void setupTe();
    void offload(std::size_t j);

    core::DhlFleet &fleet_;
    DispatchConfig cfg_;
    DispatchMetrics metrics_;

    // Pull-engine state, valid during a runPull.
    bool active_ = false;
    bool listeners_installed_ = false;
    core::BulkRunOptions opts_{};
    std::vector<Job> jobs_;
    std::vector<std::size_t> queue_; ///< pending job indices
    std::vector<std::size_t> outstanding_;
    std::vector<std::unordered_map<core::CartId, std::size_t>> cart_job_;
    std::uint64_t completed_ = 0;
    double bytes_read_ = 0.0;

    // Te substrate, rebuilt per runPull (policy == Te only).
    std::unique_ptr<te::TeController> te_ctl_;
    std::unique_ptr<network::FlowSim> te_flow_;
    std::vector<int> te_links_;
    double te_power_ = 0.0;
};

} // namespace ops
} // namespace dhl

#endif // DHL_OPS_DISPATCHER_HPP
