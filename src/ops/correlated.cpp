/**
 * @file
 * Implementation of the common-cause failure model.
 */

#include "ops/correlated.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dhl {
namespace ops {

namespace {

constexpr double kSecondsPerHour = 3600.0;

/** Clamp as in the per-component injector: a zero-rounded exponential
 *  draw must not land an outage at the exact restore instant. */
constexpr double kMinUptime = 1e-9;

/** deriveSeed salt for the per-domain streams, disjoint from every
 *  FaultInjector stream index ("PLANT"). */
constexpr std::uint64_t kPlantStreamSalt = 0x504c414e54ull;

} // namespace

void
validate(const SharedDomainConfig &cfg)
{
    fatal_if(cfg.domain_size == 0,
             "shared-plant domains need at least one track");
    fatal_if(!(cfg.plant_mtbf > 0.0), "plant MTBF must be positive");
    fatal_if(cfg.plant_mttr < 0.0, "plant MTTR must be non-negative");
    fatal_if(!(cfg.horizon > 0.0), "plant horizon must be positive");
}

CorrelatedFaultModel::CorrelatedFaultModel(
    sim::Simulator &sim, std::vector<faults::FaultState *> states,
    const SharedDomainConfig &cfg, std::string name,
    std::size_t first_domain)
    : sim::SimObject(sim, std::move(name)),
      cfg_(cfg),
      tracks_(states.size()),
      first_domain_(first_domain)
{
    fatal_if(!cfg.enabled,
             "correlated fault model built from a disabled config");
    validate(cfg_);
    fatal_if(states.empty(),
             "correlated fault model needs at least one track registry");
    for (const auto *state : states)
        fatal_if(state == nullptr, "null fault registry");

    auto &sg = statsGroup();
    stat_outages_ =
        &sg.addCounter("outages", "common-cause plant outages injected");
    stat_restores_ =
        &sg.addCounter("restores", "common-cause plant restorations");

    const std::size_t n_domains =
        (states.size() + cfg_.domain_size - 1) / cfg_.domain_size;
    plants_.reserve(n_domains);
    for (std::size_t d = 0; d < n_domains; ++d) {
        Plant plant{{},
                    Rng(deriveSeed(cfg_.seed,
                                   kPlantStreamSalt + first_domain_ + d)),
                    false,
                    sim::EventHandle{},
                    false,
                    0.0,
                    false};
        const std::size_t lo = d * cfg_.domain_size;
        const std::size_t hi =
            std::min(lo + cfg_.domain_size, states.size());
        for (std::size_t t = lo; t < hi; ++t)
            plant.members.push_back(states[t]);
        plants_.push_back(std::move(plant));
    }
    for (std::size_t d = 0; d < plants_.size(); ++d)
        scheduleOutage(d);
}

std::size_t
CorrelatedFaultModel::domainOf(std::size_t track) const
{
    fatal_if(track >= tracks_, "track index out of range");
    return track / cfg_.domain_size;
}

bool
CorrelatedFaultModel::plantDown(std::size_t domain) const
{
    fatal_if(domain >= plants_.size(), "domain index out of range");
    return plants_[domain].down;
}

std::string
CorrelatedFaultModel::reason(std::size_t domain) const
{
    return "vacuum plant " + std::to_string(first_domain_ + domain) +
           " down";
}

void
CorrelatedFaultModel::scheduleOutage(std::size_t domain)
{
    Plant &plant = plants_[domain];
    plant.has_pending = false;
    const double uptime =
        std::max(plant.rng.exponential(cfg_.plant_mtbf * kSecondsPerHour),
                 kMinUptime);
    if (now() + uptime >= cfg_.horizon)
        return; // past the horizon: this plant trips no more
    plant.has_pending = true;
    plant.pending_when = now() + uptime;
    plant.pending_is_restore = false;
    plant.pending = schedule(uptime, [this, domain] { beginOutage(domain); });
}

void
CorrelatedFaultModel::beginOutage(std::size_t domain)
{
    Plant &p = plants_[domain];
    p.down = true;
    ++outages_;
    stat_outages_->increment();
    for (auto *state : p.members)
        state->pushLaunchInhibit(reason(domain));
    const double mttr = cfg_.plant_mttr * kSecondsPerHour;
    p.has_pending = true;
    p.pending_when = now() + mttr;
    p.pending_is_restore = true;
    p.pending = schedule(mttr, [this, domain] { finishOutage(domain); });
}

void
CorrelatedFaultModel::finishOutage(std::size_t domain)
{
    Plant &p = plants_[domain];
    for (auto *state : p.members)
        state->popLaunchInhibit(reason(domain));
    p.down = false;
    stat_restores_->increment();
    scheduleOutage(domain);
}

void
CorrelatedFaultModel::stop()
{
    for (auto &p : plants_) {
        simulator().cancel(p.pending);
        p.has_pending = false;
    }
}

void
CorrelatedFaultModel::saveState(sim::SnapshotWriter &w) const
{
    sim::SnapshotScope<sim::SnapshotWriter> scope(w, "plants");
    w.putU64("domains", plants_.size());
    for (std::size_t d = 0; d < plants_.size(); ++d) {
        const Plant &p = plants_[d];
        std::string key("d");
        key += std::to_string(d);
        sim::SnapshotScope<sim::SnapshotWriter> ds(w, key);
        w.putRng("rng", p.rng);
        w.putBool("down", p.down);
        w.putBool("pending", p.has_pending);
        if (p.has_pending) {
            w.putDouble("when", p.pending_when);
            w.putBool("is_restore", p.pending_is_restore);
        }
    }
    w.putU64("outages", outages_);
}

void
CorrelatedFaultModel::restoreState(sim::SnapshotReader &r)
{
    for (auto &p : plants_) {
        simulator().cancel(p.pending);
        p.has_pending = false;
    }

    sim::SnapshotScope<sim::SnapshotReader> scope(r, "plants");
    fatal_if(r.getU64("domains") != plants_.size(),
             "plant restore: domain count does not match the checkpoint");
    for (std::size_t d = 0; d < plants_.size(); ++d) {
        Plant &p = plants_[d];
        std::string key("d");
        key += std::to_string(d);
        sim::SnapshotScope<sim::SnapshotReader> ds(r, key);
        r.getRng("rng", p.rng);
        p.down = r.getBool("down");
        p.has_pending = r.getBool("pending");
        if (!p.has_pending)
            continue;
        p.pending_when = r.getDouble("when");
        p.pending_is_restore = r.getBool("is_restore");
        const std::size_t dom = d;
        p.pending = p.pending_is_restore
                        ? simulator().scheduleAt(
                              p.pending_when,
                              [this, dom] { finishOutage(dom); })
                        : simulator().scheduleAt(
                              p.pending_when,
                              [this, dom] { beginOutage(dom); });
    }
    outages_ = r.getU64("outages");
}

} // namespace ops
} // namespace dhl
