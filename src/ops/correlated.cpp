/**
 * @file
 * Implementation of the common-cause failure model.
 */

#include "ops/correlated.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dhl {
namespace ops {

namespace {

constexpr double kSecondsPerHour = 3600.0;

/** Clamp as in the per-component injector: a zero-rounded exponential
 *  draw must not land an outage at the exact restore instant. */
constexpr double kMinUptime = 1e-9;

/** deriveSeed salt for the per-domain streams, disjoint from every
 *  FaultInjector stream index ("PLANT"). */
constexpr std::uint64_t kPlantStreamSalt = 0x504c414e54ull;

} // namespace

void
validate(const SharedDomainConfig &cfg)
{
    fatal_if(cfg.domain_size == 0,
             "shared-plant domains need at least one track");
    fatal_if(!(cfg.plant_mtbf > 0.0), "plant MTBF must be positive");
    fatal_if(cfg.plant_mttr < 0.0, "plant MTTR must be non-negative");
    fatal_if(!(cfg.horizon > 0.0), "plant horizon must be positive");
}

CorrelatedFaultModel::CorrelatedFaultModel(
    sim::Simulator &sim, std::vector<faults::FaultState *> states,
    const SharedDomainConfig &cfg, std::string name)
    : sim::SimObject(sim, std::move(name)),
      cfg_(cfg),
      tracks_(states.size())
{
    fatal_if(!cfg.enabled,
             "correlated fault model built from a disabled config");
    validate(cfg_);
    fatal_if(states.empty(),
             "correlated fault model needs at least one track registry");
    for (const auto *state : states)
        fatal_if(state == nullptr, "null fault registry");

    auto &sg = statsGroup();
    stat_outages_ =
        &sg.addCounter("outages", "common-cause plant outages injected");
    stat_restores_ =
        &sg.addCounter("restores", "common-cause plant restorations");

    const std::size_t n_domains =
        (states.size() + cfg_.domain_size - 1) / cfg_.domain_size;
    plants_.reserve(n_domains);
    for (std::size_t d = 0; d < n_domains; ++d) {
        Plant plant{{},
                    Rng(deriveSeed(cfg_.seed, kPlantStreamSalt + d)),
                    false};
        const std::size_t lo = d * cfg_.domain_size;
        const std::size_t hi =
            std::min(lo + cfg_.domain_size, states.size());
        for (std::size_t t = lo; t < hi; ++t)
            plant.members.push_back(states[t]);
        plants_.push_back(std::move(plant));
    }
    for (std::size_t d = 0; d < plants_.size(); ++d)
        scheduleOutage(d);
}

std::size_t
CorrelatedFaultModel::domainOf(std::size_t track) const
{
    fatal_if(track >= tracks_, "track index out of range");
    return track / cfg_.domain_size;
}

bool
CorrelatedFaultModel::plantDown(std::size_t domain) const
{
    fatal_if(domain >= plants_.size(), "domain index out of range");
    return plants_[domain].down;
}

std::string
CorrelatedFaultModel::reason(std::size_t domain) const
{
    return "vacuum plant " + std::to_string(domain) + " down";
}

void
CorrelatedFaultModel::scheduleOutage(std::size_t domain)
{
    Plant &plant = plants_[domain];
    const double uptime =
        std::max(plant.rng.exponential(cfg_.plant_mtbf * kSecondsPerHour),
                 kMinUptime);
    if (now() + uptime >= cfg_.horizon)
        return; // past the horizon: this plant trips no more
    schedule(uptime, [this, domain] {
        Plant &p = plants_[domain];
        p.down = true;
        ++outages_;
        stat_outages_->increment();
        for (auto *state : p.members)
            state->pushLaunchInhibit(reason(domain));
        schedule(cfg_.plant_mttr * kSecondsPerHour, [this, domain] {
            Plant &rp = plants_[domain];
            for (auto *state : rp.members)
                state->popLaunchInhibit(reason(domain));
            rp.down = false;
            stat_restores_->increment();
            scheduleOutage(domain);
        });
    });
}

} // namespace ops
} // namespace dhl
