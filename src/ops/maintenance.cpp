/**
 * @file
 * Implementation of the planned-maintenance scheduler.
 */

#include "ops/maintenance.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace ops {

void
validate(const MaintenanceConfig &cfg, std::size_t tracks)
{
    fatal_if(!(cfg.horizon > 0.0),
             "maintenance horizon must be positive");
    for (const auto &w : cfg.windows) {
        fatal_if(w.start < 0.0,
                 "maintenance window start must be non-negative");
        fatal_if(!(w.duration > 0.0),
                 "maintenance window duration must be positive");
        fatal_if(w.period != 0.0 && w.period <= w.duration,
                 "a periodic maintenance window must have period > "
                 "duration (or period = 0 for a one-shot)");
        fatal_if(w.track < -1 ||
                     w.track >= static_cast<int>(tracks),
                 "maintenance window targets an unknown track");
    }
}

MaintenanceScheduler::MaintenanceScheduler(
    sim::Simulator &sim, std::vector<faults::FaultState *> states,
    const MaintenanceConfig &cfg, std::string name)
    : sim::SimObject(sim, std::move(name)),
      states_(std::move(states)),
      cfg_(cfg),
      open_(cfg.windows.size(), false),
      pending_(cfg.windows.size()),
      started_by_window_(cfg.windows.size(), 0)
{
    fatal_if(states_.empty(),
             "maintenance scheduler needs at least one track registry");
    for (const auto *state : states_)
        fatal_if(state == nullptr, "null fault registry");
    validate(cfg_, states_.size());

    auto &sg = statsGroup();
    stat_started_ =
        &sg.addCounter("windows_started", "maintenance windows opened");
    stat_completed_ = &sg.addCounter("windows_completed",
                                     "maintenance windows closed");

    for (std::size_t w = 0; w < cfg_.windows.size(); ++w)
        scheduleOccurrence(w, cfg_.windows[w].start);
}

bool
MaintenanceScheduler::windowOpen(std::size_t w) const
{
    fatal_if(w >= open_.size(), "window index out of range");
    return open_[w];
}

std::uint64_t
MaintenanceScheduler::windowStarted(std::size_t w) const
{
    fatal_if(w >= started_by_window_.size(),
             "window index out of range");
    return started_by_window_[w];
}

std::string
MaintenanceScheduler::reason(std::size_t w) const
{
    const auto &win = cfg_.windows[w];
    return "maintenance window " + std::to_string(w) +
           (win.track < 0 ? " (fleet-wide)"
                          : " (track " + std::to_string(win.track) + ")");
}

std::vector<faults::FaultState *>
MaintenanceScheduler::targets(std::size_t w)
{
    const auto &win = cfg_.windows[w];
    if (win.track < 0)
        return states_;
    return {states_[static_cast<std::size_t>(win.track)]};
}

void
MaintenanceScheduler::scheduleOccurrence(std::size_t w, double start)
{
    Pending &p = pending_[w];
    p.active = false;
    if (start >= cfg_.horizon)
        return; // plan exhausted: this window opens no more
    p.active = true;
    p.when = start;
    p.is_end = false;
    p.occurrence = start;
    p.handle = schedule(start - now(), [this, w, start] { begin(w, start); });
}

void
MaintenanceScheduler::begin(std::size_t w, double start)
{
    panic_if(open_[w], "maintenance window reopened while still open");
    open_[w] = true;
    ++started_;
    ++started_by_window_[w];
    stat_started_->increment();
    for (auto *state : targets(w))
        state->pushLaunchInhibit(reason(w));
    Pending &p = pending_[w];
    p.active = true;
    p.when = now() + cfg_.windows[w].duration;
    p.is_end = true;
    p.occurrence = start;
    p.handle = schedule(cfg_.windows[w].duration,
                        [this, w, start] { end(w, start); });
}

void
MaintenanceScheduler::end(std::size_t w, double start)
{
    for (auto *state : targets(w))
        state->popLaunchInhibit(reason(w));
    open_[w] = false;
    ++completed_;
    stat_completed_->increment();
    pending_[w].active = false;
    const double period = cfg_.windows[w].period;
    if (period > 0.0)
        scheduleOccurrence(w, start + period);
}

void
MaintenanceScheduler::cancelPending()
{
    for (auto &p : pending_) {
        simulator().cancel(p.handle);
        p.active = false;
    }
}

void
MaintenanceScheduler::saveState(sim::SnapshotWriter &w) const
{
    sim::SnapshotScope<sim::SnapshotWriter> scope(w, "maintenance");
    w.putU64("windows", cfg_.windows.size());
    for (std::size_t i = 0; i < cfg_.windows.size(); ++i) {
        std::string key("w");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotWriter> ws(w, key);
        w.putBool("open", open_[i]);
        w.putU64("count", started_by_window_[i]);
        const Pending &p = pending_[i];
        w.putBool("pending", p.active);
        if (p.active) {
            w.putDouble("when", p.when);
            w.putBool("is_end", p.is_end);
            w.putDouble("occurrence", p.occurrence);
        }
    }
    w.putU64("started", started_);
    w.putU64("completed", completed_);
}

void
MaintenanceScheduler::restoreState(sim::SnapshotReader &r)
{
    cancelPending();

    sim::SnapshotScope<sim::SnapshotReader> scope(r, "maintenance");
    fatal_if(r.getU64("windows") != cfg_.windows.size(),
             "maintenance restore: window count does not match the "
             "checkpoint");
    for (std::size_t i = 0; i < cfg_.windows.size(); ++i) {
        std::string key("w");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotReader> ws(r, key);
        open_[i] = r.getBool("open");
        started_by_window_[i] = r.getU64("count");
        Pending &p = pending_[i];
        p.active = r.getBool("pending");
        if (!p.active)
            continue;
        p.when = r.getDouble("when");
        p.is_end = r.getBool("is_end");
        p.occurrence = r.getDouble("occurrence");
        const std::size_t w_idx = i;
        const double start = p.occurrence;
        p.handle = p.is_end
                       ? simulator().scheduleAt(
                             p.when,
                             [this, w_idx, start] { end(w_idx, start); })
                       : simulator().scheduleAt(
                             p.when,
                             [this, w_idx, start] { begin(w_idx, start); });
    }
    started_ = r.getU64("started");
    completed_ = r.getU64("completed");
}

} // namespace ops
} // namespace dhl
