/**
 * @file
 * The fleet-operations facade: one object wiring maintenance windows,
 * common-cause failures, wear coupling, and policy-driven dispatch
 * around a DhlFleet (DESIGN.md §10).
 *
 * Layering: ops sits *between* the fleet and the per-track fault
 * machinery.  It only drives the FaultState gates (launch inhibits) and
 * the FaultInjector scale hooks — controllers, tracks, and stations are
 * untouched and degrade through the exact machinery DESIGN.md §8
 * describes.  With everything disabled (RoundRobin policy, no windows,
 * no domains, zero wear gains) a FleetOps run is event-identical to
 * DhlFleet::runBulkTransfer (tested).
 */

#ifndef DHL_OPS_FLEET_OPS_HPP
#define DHL_OPS_FLEET_OPS_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "dhl/fleet.hpp"
#include "ops/correlated.hpp"
#include "ops/dispatcher.hpp"
#include "ops/maintenance.hpp"
#include "ops/wear.hpp"

namespace dhl {
namespace ops {

/** Everything the ops layer can run on a fleet. */
struct OpsConfig
{
    DispatchConfig dispatch{};

    /** Planned windows (empty = none). */
    MaintenanceConfig maintenance{};

    /** Shared-plant common-cause outages (enabled = false = none). */
    SharedDomainConfig domains{};

    /** Wear coupling gains (0 = none; requires faults.enabled). */
    WearCouplingConfig wear{};

    /** Independent per-track fault injection (enabled = false =
     *  none); forwarded to DhlFleet::enableFaults. */
    faults::FaultConfig faults{};

    /**
     * DES shards for the fleet event loop (>= 1).  With N > 1 and the
     * RoundRobin policy, plant domains are dealt contiguously onto N
     * simulators (sim::partitionShards) and the run is synchronised
     * with conservative time windows; results are byte-identical to
     * des_shards = 1.  Pull policies (LeastQueued/AvailabilityAware/
     * Te) are continuously fleet-coupled — zero cross-track lookahead —
     * so they always run one shard regardless of this knob.
     */
    std::size_t des_shards = 1;
};

/** Validate against a fleet of @p tracks tracks; fatal() on nonsense. */
void validate(const OpsConfig &cfg, std::size_t tracks);

/** Result of one ops-layer bulk transfer. */
struct OpsRunResult
{
    /** The fleet-level transfer metrics (same semantics as
     *  DhlFleet::runBulkTransfer). */
    core::BulkRunResult base{};

    std::uint64_t reroutes = 0;  ///< jobs re-routed off blocked tracks
    std::uint64_t drains = 0;    ///< outage drains that moved work
    std::uint64_t deferrals = 0; ///< jobs deferred by admission control
    std::uint64_t maintenance_windows = 0; ///< occurrences opened
    std::uint64_t plant_outages = 0;       ///< common-cause outages

    std::uint64_t offloads = 0;   ///< Te: jobs routed optical
    double optical_bytes = 0.0;   ///< Te: bytes moved optically
    double optical_energy = 0.0;  ///< Te: optical substrate energy, J

    double open_latency_mean = 0.0; ///< s, issue -> docked
    double open_latency_p99 = 0.0;  ///< s

    /** Mean per-track observed service availability over the run
     *  (1.0 when no fault registries are attached). */
    double fleet_availability = 1.0;
};

/** The facade. */
class FleetOps
{
  public:
    /**
     * Build a fleet plus its operations layer.
     *
     * @param cfg    Per-track DHL configuration.
     * @param tracks Parallel tracks (>= 1).
     * @param ops    Operations configuration.
     * @param seed   Fleet seed base (see DhlFleet).
     */
    FleetOps(const core::DhlConfig &cfg, std::size_t tracks,
             const OpsConfig &ops, std::uint64_t seed = 1);

    core::DhlFleet &fleet() { return fleet_; }
    const OpsConfig &config() const { return ops_; }
    FleetDispatcher &dispatcher() { return *dispatcher_; }

    /** The maintenance process (nullptr when no windows configured).
     *  On a sharded fleet this is shard 0's scheduler; aggregate
     *  counts come from OpsRunResult. */
    MaintenanceScheduler *maintenance();

    /** The common-cause model (nullptr when domains are disabled).
     *  On a sharded fleet this is shard 0's model. */
    CorrelatedFaultModel *correlated();

    /** DES shards actually in use (<= config().des_shards). */
    std::size_t numShards() const { return fleet_.numShards(); }

    /**
     * Move @p bytes through the fleet under the configured policy with
     * every configured ops process running, and report the combined
     * transfer + operations metrics.  @p meta optionally assigns
     * per-job scheduling metadata (see FleetDispatcher).
     */
    OpsRunResult
    runBulkTransfer(double bytes, const core::BulkRunOptions &opts = {},
                    const std::vector<core::RequestMeta> &meta = {});

  private:
    /** Per-shard slice of the ops processes (one entry per DES shard
     *  when sharded; empty for the classic single-loop fleet, which
     *  uses maintenance_/correlated_ directly). */
    struct ShardOps
    {
        std::unique_ptr<MaintenanceScheduler> maintenance;
        std::unique_ptr<CorrelatedFaultModel> plants;
        /** Per local window: does this shard's count feed the fleet
         *  total?  True for track-targeted windows (unique owner) and
         *  for fleet-wide windows only on shard 0 (every shard runs a
         *  replica, the total must count occurrences once). */
        std::vector<bool> count_window;
    };

    OpsConfig ops_;
    core::DhlFleet fleet_;
    std::unique_ptr<FleetDispatcher> dispatcher_;
    std::unique_ptr<MaintenanceScheduler> maintenance_;
    std::unique_ptr<CorrelatedFaultModel> correlated_;
    std::vector<ShardOps> shard_ops_;
};

} // namespace ops
} // namespace dhl

#endif // DHL_OPS_FLEET_OPS_HPP
