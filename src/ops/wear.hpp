/**
 * @file
 * Wear coupling: state-dependent failure rates from storage wear.
 *
 * The base fault process is memoryless — every trip rolls the same
 * breakdown probability, every uptime draws from the same MTBF — while
 * generative storage-performance models argue device failure should be
 * state-dependent.  The `storage` layer already accumulates the state
 * (connector mating cycles against rated life); WearCoupling consumes
 * it by installing the FaultInjector's scale hooks:
 *
 *  - cart_repair_per_trip scales with that cart's own connector wear
 *    (a cart near rated life breaks down more per trip), and
 *  - station MTBF shrinks with the library-wide mean wear (stations
 *    mate against the same worn connectors).
 *
 * Both hooks multiply rates without touching RNG stream consumption,
 * so zero gains are byte-identical to no coupling (tested).
 */

#ifndef DHL_OPS_WEAR_HPP
#define DHL_OPS_WEAR_HPP

#include <cstdint>

#include "dhl/library.hpp"
#include "faults/fault_injector.hpp"

namespace dhl {
namespace ops {

/** Wear-coupling gains (0 = uncoupled, the memoryless base model). */
struct WearCouplingConfig
{
    /** Cart breakdown probability multiplier slope: the per-trip
     *  probability becomes p * (1 + gain * cart_wear_fraction). */
    double breakdown_gain = 0.0;

    /** Station MTBF divisor slope: station MTBF becomes
     *  mtbf / (1 + gain * library_mean_wear_fraction). */
    double station_gain = 0.0;
};

/** Validate; fatal() on negative gains. */
void validate(const WearCouplingConfig &cfg);

/** Mean connector wear fraction across one cart's SSDs (0 if none). */
double cartWear(const core::Library &library, std::uint32_t cart);

/** Mean connector wear fraction across every cart in the library. */
double libraryWear(const core::Library &library);

/** Installs the wear hooks of one track. */
class WearCoupling
{
  public:
    explicit WearCoupling(const WearCouplingConfig &cfg);

    const WearCouplingConfig &config() const { return cfg_; }

    /**
     * Install the scale hooks into @p injector, reading live wear from
     * @p library at every roll/draw.  The library must outlive the
     * injector's last event.
     */
    void attach(faults::FaultInjector &injector,
                core::Library &library) const;

  private:
    WearCouplingConfig cfg_;
};

} // namespace ops
} // namespace dhl

#endif // DHL_OPS_WEAR_HPP
