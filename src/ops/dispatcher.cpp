/**
 * @file
 * Implementation of the fleet-level dispatcher.
 */

#include "ops/dispatcher.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "common/logging.hpp"
#include "dhl/analytical.hpp"
#include "network/route.hpp"

namespace dhl {
namespace ops {

std::string
to_string(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::RoundRobin:
        return "round-robin";
      case DispatchPolicy::LeastQueued:
        return "least-queued";
      case DispatchPolicy::AvailabilityAware:
        return "availability";
      case DispatchPolicy::Te:
        return "te";
    }
    return "?";
}

DispatchPolicy
parseDispatchPolicy(const std::string &name)
{
    if (name == "round-robin")
        return DispatchPolicy::RoundRobin;
    if (name == "least-queued")
        return DispatchPolicy::LeastQueued;
    if (name == "availability")
        return DispatchPolicy::AvailabilityAware;
    if (name == "te")
        return DispatchPolicy::Te;
    fatal("unknown dispatch policy '" + name +
          "' (expected round-robin, least-queued, availability, or te)");
}

void
validate(const DispatchConfig &cfg)
{
    fatal_if(cfg.overcommit == 0,
             "dispatch overcommit must be at least 1 (otherwise an "
             "outage never finds a queued open to re-route)");
    if (cfg.policy == DispatchPolicy::Te) {
        fatal_if(!cfg.te.enabled,
                 "dispatch policy 'te' requires te.enabled");
        te::validate(cfg.te);
    }
}

FleetDispatcher::FleetDispatcher(core::DhlFleet &fleet,
                                 const DispatchConfig &cfg)
    : fleet_(fleet), cfg_(cfg)
{
    validate(cfg_);
    if (cfg_.policy == DispatchPolicy::AvailabilityAware) {
        fatal_if(fleet_.faultState(0) == nullptr,
                 "availability-aware dispatch needs the fleet's fault "
                 "registries (DhlFleet::ensureFaultStates)");
    }
}

std::vector<FleetDispatcher::Job>
FleetDispatcher::makeJobs(double bytes,
                          const std::vector<core::RequestMeta> &meta,
                          std::uint64_t *n_carts) const
{
    const double capacity = fleet_.track(0).config().cartCapacity().value();
    *n_carts = static_cast<std::uint64_t>(std::ceil(bytes / capacity));
    std::vector<Job> jobs;
    jobs.reserve(*n_carts);
    double remaining = bytes;
    for (std::uint64_t i = 0; i < *n_carts; ++i) {
        const double load = std::min(capacity, remaining);
        remaining -= load;
        jobs.push_back(Job{load,
                           i < meta.size() ? meta[i]
                                           : core::RequestMeta{},
                           static_cast<std::size_t>(i)});
    }
    return jobs;
}

core::BulkRunResult
FleetDispatcher::runBulkTransfer(double bytes,
                                 const core::BulkRunOptions &opts,
                                 const std::vector<core::RequestMeta> &meta)
{
    fatal_if(!(bytes > 0.0), "bulk transfer size must be positive");
    if (opts.faults.enabled)
        fleet_.enableFaults(opts.faults);
    metrics_ = DispatchMetrics{};

    std::uint64_t n_carts = 0;
    std::vector<Job> jobs = makeJobs(bytes, meta, &n_carts);
    if (cfg_.policy == DispatchPolicy::RoundRobin)
        return runRoundRobin(bytes, opts, std::move(jobs));
    return runPull(bytes, opts, std::move(jobs));
}

//===========================================================================
// RoundRobin: DhlFleet::runBulkTransfer, event for event
//===========================================================================

core::BulkRunResult
FleetDispatcher::runRoundRobin(double bytes,
                               const core::BulkRunOptions &opts,
                               std::vector<Job> jobs)
{
    // Mirrors DhlFleet::runBulkTransfer exactly — same cart creation
    // order, same serial chains, same run/step loop — so the policy is
    // byte-identical to the fleet's native path (tested).  The only
    // additions are pure bookkeeping (latency samples).
    //
    // Static pre-assignment means a track's chain never reads another
    // track's state, so on a sharded fleet (DhlFleet with a shard map)
    // each shard runs its chains to local completion in parallel, all
    // shards are then brought to the fleet finish time Tf (so straggler
    // fault/maintenance/plant events fire exactly as they would in one
    // global loop), and the per-shard bookkeeping logs are merged in
    // (time, shard) order.  With one shard every branch below is the
    // literal legacy path.
    const std::size_t S = fleet_.numShards();
    const std::size_t k = fleet_.numTracks();
    const std::uint64_t n_carts = jobs.size();

    std::vector<std::vector<std::pair<core::CartId, std::size_t>>>
        per_track(k);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        auto &ctl = fleet_.track(i % k);
        ctl.setFailureProbability(opts.failure_per_trip);
        per_track[i % k].emplace_back(ctl.addCart(jobs[i].load).id(), i);
    }

    const double start = fleet_.maxNow();
    const double energy_before = fleet_.totalEnergy();
    const std::uint64_t launches_before = fleet_.launches();

    // Per-shard run state: completion counts plus (time, value) logs
    // for everything the legacy path accumulated globally in event
    // order.  During the parallel phase a shard's entry is touched only
    // by the thread driving that shard.
    struct ShardRun
    {
        std::uint64_t completed = 0;
        std::uint64_t target = 0;
        std::vector<std::pair<double, double>> lat;   // (when, latency)
        std::vector<std::pair<double, double>> reads; // (when, bytes)
    };
    auto runs = std::make_shared<std::vector<ShardRun>>(S);

    std::vector<std::shared_ptr<std::function<void(std::size_t)>>> chains;
    for (std::size_t t = 0; t < k; ++t) {
        if (per_track[t].empty())
            continue;
        auto &ctl = fleet_.track(t);
        (*runs)[fleet_.shardOf(t)].target += per_track[t].size();
        auto chain = std::make_shared<std::function<void(std::size_t)>>();
        chains.push_back(chain);
        auto *chain_ptr = chain.get();
        const auto carts = per_track[t];
        auto *sim_ptr = &fleet_.simOf(t);
        auto *sr = &(*runs)[fleet_.shardOf(t)];
        *chain = [this, sim_ptr, &ctl, carts, chain = chain_ptr, opts,
                  sr, runs](std::size_t idx) {
            if (idx == carts.size())
                return;
            const core::CartId id = carts[idx].first;
            const core::RequestMeta job_meta = jobs_[carts[idx].second].meta;
            const double issued = sim_ptr->now();
            ctl.open(id, job_meta,
                     [this, sim_ptr, &ctl, id, idx, issued, chain, opts,
                      sr, runs](core::Cart &cart,
                                core::DockingStation &) {
                sr->lat.emplace_back(sim_ptr->now(),
                                     sim_ptr->now() - issued);
                auto finish = [sr, chain, idx](core::Cart &) {
                    ++sr->completed;
                    (*chain)(idx + 1);
                };
                if (opts.include_read_time && cart.storedBytes() > 0.0) {
                    const double to_read = cart.storedBytes();
                    ctl.read(id, to_read,
                             [sim_ptr, &ctl, id, sr, finish](double b) {
                                 sr->reads.emplace_back(sim_ptr->now(), b);
                                 ctl.close(id, finish);
                             });
                } else {
                    ctl.close(id, finish);
                }
            });
        };
    }
    // jobs_ backs the chains' meta lookups for the duration of the run
    // (read-only while shards execute in parallel).
    jobs_ = std::move(jobs);
    for (auto &chain : chains)
        (*chain)(0);

    if (S == 1) {
        sim::Simulator &sim = fleet_.simulator();
        while ((*runs)[0].completed < n_carts && sim.pendingEvents() > 0)
            sim.step();
    } else {
        // Each shard's chains are causally independent, so a shard can
        // run straight to its own completion: the whole transfer is one
        // conservative window.
        fleet_.pool()->parallelFor(S, [&](std::size_t s) {
            sim::Simulator &sim = fleet_.shardSim(s);
            ShardRun &sr = (*runs)[s];
            while (sr.completed < sr.target && sim.pendingEvents() > 0)
                sim.step();
        });
        // Fleet finish time = slowest shard; bring the others there so
        // their background processes (injectors, maintenance, plants)
        // fire everything a single global loop would have fired.
        const double tf = fleet_.maxNow();
        fleet_.pool()->parallelFor(S, [&](std::size_t s) {
            fleet_.shardSim(s).runUntil(tf);
        });
    }
    std::uint64_t total_completed = 0;
    for (const ShardRun &sr : *runs)
        total_completed += sr.completed;
    panic_if(total_completed != n_carts,
             "fleet transfer finished with carts unaccounted for");

    // Deterministic merge of the per-shard logs: (time, shard) order —
    // with one shard, the legacy accumulation order.
    double bytes_read = 0.0;
    {
        std::vector<std::size_t> counts(S);
        for (std::size_t s = 0; s < S; ++s)
            counts[s] = (*runs)[s].lat.size();
        sim::ShardMerge merge(counts, [&](std::size_t s, std::size_t i) {
            return (*runs)[s].lat[i].first;
        });
        for (auto [s, i] = merge.next(); s != sim::ShardGroup::npos;
             std::tie(s, i) = merge.next())
            metrics_.open_latency.push_back((*runs)[s].lat[i].second);

        for (std::size_t s = 0; s < S; ++s)
            counts[s] = (*runs)[s].reads.size();
        sim::ShardMerge rmerge(counts, [&](std::size_t s, std::size_t i) {
            return (*runs)[s].reads[i].first;
        });
        for (auto [s, i] = rmerge.next(); s != sim::ShardGroup::npos;
             std::tie(s, i) = rmerge.next())
            bytes_read += (*runs)[s].reads[i].second;
    }

    core::BulkRunResult r{};
    r.total_time = fleet_.maxNow() - start;
    r.total_energy = fleet_.totalEnergy() - energy_before;
    r.launches = fleet_.launches() - launches_before;
    r.carts = n_carts;
    std::uint64_t failures = 0;
    for (std::size_t t = 0; t < k; ++t)
        failures += fleet_.track(t).ssdFailures();
    r.ssd_failures = failures;
    r.avg_power = r.total_energy / r.total_time;
    r.effective_bandwidth = bytes / r.total_time;
    r.bytes_read = bytes_read;
    return r;
}

//===========================================================================
// LeastQueued / AvailabilityAware: the pull engine
//===========================================================================

bool
FleetDispatcher::trackUp(std::size_t t) const
{
    const auto *state =
        const_cast<core::DhlFleet &>(fleet_).faultState(t);
    return state == nullptr || state->serviceUp();
}

bool
FleetDispatcher::anyTrackDown() const
{
    for (std::size_t t = 0; t < fleet_.numTracks(); ++t) {
        if (!trackUp(t))
            return true;
    }
    return false;
}

std::size_t
FleetDispatcher::capacity(std::size_t t) const
{
    const std::size_t stations = fleet_.track(t).numStations();
    if (cfg_.policy == DispatchPolicy::AvailabilityAware)
        return stations + cfg_.overcommit;
    return stations;
}

void
FleetDispatcher::installListeners()
{
    if (listeners_installed_ ||
        cfg_.policy != DispatchPolicy::AvailabilityAware)
        return;
    for (std::size_t t = 0; t < fleet_.numTracks(); ++t) {
        auto *state = fleet_.faultState(t);
        state->onOutage([this, t] {
            if (active_)
                drainTrack(t);
        });
        state->onRepair([this] {
            if (active_)
                pump();
        });
    }
    listeners_installed_ = true;
}

void
FleetDispatcher::drainTrack(std::size_t t)
{
    // Station-only failures leave launches OK; the controller re-routes
    // its own queue to surviving stations.  Only a blocked launch path
    // strands queued work.
    if (fleet_.faultState(t)->launchOk())
        return;
    std::vector<core::QueuedOpen> drained =
        fleet_.track(t).drainQueuedOpens();
    if (drained.empty())
        return;
    ++metrics_.drains;
    for (const auto &q : drained) {
        auto it = cart_job_[t].find(q.id);
        panic_if(it == cart_job_[t].end(),
                 "drained an open the dispatcher never issued");
        // The cart stays stored in this track's library; the job's
        // payload is re-created wherever the queue sends it next.
        queue_.push_back(it->second);
        cart_job_[t].erase(it);
        --outstanding_[t];
        ++metrics_.reroutes;
    }
    pump();
}

void
FleetDispatcher::setupTe()
{
    te::TeConfig tc = cfg_.te;
    if (tc.dhl_capacity == 0.0) {
        // Aggregate launch bandwidth of the fleet, the same derivation
        // the serving loop uses for its default.
        tc.dhl_capacity =
            static_cast<double>(fleet_.numTracks()) *
            core::AnalyticalModel(fleet_.track(0).config())
                .launch()
                .bandwidth.value();
    }
    sim::Simulator &sim = fleet_.simulator();
    te_ctl_ = std::make_unique<te::TeController>(
        sim, tc, std::vector<te::TenantSpec>{{"bulk", 1.0}});
    te_ctl_->onTick([this] {
        if (active_)
            pump();
    });
    te_flow_ = std::make_unique<network::FlowSim>(sim, "te_optical");
    te_links_ = {te_flow_->addLink(tc.optical_capacity)};
    te_power_ = network::findRoute(tc.route).power().value();
    // Seed the demand estimator with the whole backlog: the first
    // control epoch then sees the true offered load instead of zero.
    for (const Job &job : jobs_)
        te_ctl_->recordUsage(0, job.load);
    te_ctl_->start();
}

void
FleetDispatcher::offload(std::size_t j)
{
    ++metrics_.offloads;
    metrics_.optical_bytes += jobs_[j].load;
    te_flow_->startFlow(te_links_, jobs_[j].load, te_power_,
                        [this](const network::FlowRecord &rec) {
                            metrics_.optical_energy += rec.energy;
                            ++completed_;
                        });
}

void
FleetDispatcher::pump()
{
    // Te pre-pass: everything the controller routes optical leaves the
    // cart queue for the fluid substrate (which has no slot limit), so
    // it never competes in the track-selection loop below.
    if (cfg_.policy == DispatchPolicy::Te) {
        for (std::size_t pos = 0; pos < queue_.size();) {
            const std::size_t j = queue_[pos];
            const te::TeDecision d =
                te_ctl_->decide(0, jobs_[j].load, jobs_[j].meta);
            if (d.substrate == te::Substrate::Optical && d.admit) {
                queue_.erase(queue_.begin() +
                             static_cast<std::ptrdiff_t>(pos));
                offload(j);
            } else {
                ++pos;
            }
        }
    }
    while (!queue_.empty()) {
        const bool degraded =
            cfg_.policy == DispatchPolicy::AvailabilityAware &&
            anyTrackDown();

        // Best admissible job: highest priority, then arrival order.
        std::size_t best_pos = queue_.size();
        for (std::size_t pos = 0; pos < queue_.size(); ++pos) {
            Job &job = jobs_[queue_[pos]];
            if (degraded &&
                job.meta.priority < cfg_.min_priority_degraded) {
                if (!job.deferral_counted) {
                    job.deferral_counted = true;
                    ++metrics_.deferrals;
                }
                continue;
            }
            if (cfg_.policy == DispatchPolicy::Te &&
                !te_ctl_->decide(0, job.load, job.meta).admit) {
                // Held by the controller until a later tick clears the
                // contention (or the horizon passes).
                if (!job.deferral_counted) {
                    job.deferral_counted = true;
                    ++metrics_.deferrals;
                }
                continue;
            }
            if (best_pos == queue_.size() ||
                job.meta.priority >
                    jobs_[queue_[best_pos]].meta.priority ||
                (job.meta.priority ==
                     jobs_[queue_[best_pos]].meta.priority &&
                 job.seq < jobs_[queue_[best_pos]].seq)) {
                best_pos = pos;
            }
        }
        if (best_pos == queue_.size())
            return; // everything queued is deferred

        // Least-loaded eligible track, lowest index on ties.
        std::size_t best_track = fleet_.numTracks();
        for (std::size_t t = 0; t < fleet_.numTracks(); ++t) {
            if (outstanding_[t] >= capacity(t))
                continue;
            if (cfg_.policy == DispatchPolicy::AvailabilityAware &&
                !trackUp(t))
                continue;
            if (best_track == fleet_.numTracks() ||
                outstanding_[t] < outstanding_[best_track])
                best_track = t;
        }
        if (best_track == fleet_.numTracks())
            return; // no track can take work right now

        const std::size_t j = queue_[best_pos];
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(best_pos));
        assign(best_track, j);
    }
}

void
FleetDispatcher::assign(std::size_t t, std::size_t j)
{
    auto &ctl = fleet_.track(t);
    ctl.setFailureProbability(opts_.failure_per_trip);
    const core::CartId id = ctl.addCart(jobs_[j].load).id();
    cart_job_[t][id] = j;
    ++outstanding_[t];
    sim::Simulator &sim = fleet_.simulator();
    const double issued = sim.now();
    ctl.open(id, jobs_[j].meta,
             [this, &sim, &ctl, t, id, issued](core::Cart &cart,
                                               core::DockingStation &) {
        metrics_.open_latency.push_back(sim.now() - issued);
        if (opts_.include_read_time && cart.storedBytes() > 0.0) {
            const double to_read = cart.storedBytes();
            ctl.read(id, to_read, [this, &ctl, t, id](double b) {
                bytes_read_ += b;
                ctl.close(id, [this, t, id](core::Cart &) {
                    finishJob(t, id);
                });
            });
        } else {
            ctl.close(id, [this, t, id](core::Cart &) {
                finishJob(t, id);
            });
        }
    });
}

void
FleetDispatcher::finishJob(std::size_t t, core::CartId id)
{
    auto it = cart_job_[t].find(id);
    panic_if(it == cart_job_[t].end(),
             "finished a job the dispatcher never issued");
    cart_job_[t].erase(it);
    --outstanding_[t];
    ++completed_;
    pump();
}

core::BulkRunResult
FleetDispatcher::runPull(double bytes, const core::BulkRunOptions &opts,
                         std::vector<Job> jobs)
{
    // The pull engine is continuously fleet-coupled (every completion
    // or repair can re-route work to any track), so it has zero
    // conservative lookahead; FleetOps therefore builds pull-policy
    // fleets with one shard.  Guard against misuse.
    fatal_if(fleet_.numShards() > 1,
             "pull dispatch policies require an unsharded fleet "
             "(zero cross-track lookahead)");
    sim::Simulator &sim = fleet_.simulator();
    const std::size_t k = fleet_.numTracks();
    const std::uint64_t n_carts = jobs.size();

    installListeners();
    opts_ = opts;
    jobs_ = std::move(jobs);
    queue_.clear();
    queue_.reserve(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j)
        queue_.push_back(j);
    outstanding_.assign(k, 0);
    cart_job_.assign(k, {});
    completed_ = 0;
    bytes_read_ = 0.0;

    if (cfg_.policy == DispatchPolicy::Te)
        setupTe();

    const double start = sim.now();
    const double energy_before = fleet_.totalEnergy();
    const std::uint64_t launches_before = fleet_.launches();

    active_ = true;
    pump();
    while (completed_ < n_carts && sim.pendingEvents() > 0)
        sim.step();
    active_ = false;
    if (te_ctl_)
        te_ctl_->stop(); // cancel the pending control tick, if any
    panic_if(completed_ != n_carts,
             "fleet transfer finished with carts unaccounted for");

    core::BulkRunResult r{};
    r.total_time = sim.now() - start;
    r.total_energy =
        fleet_.totalEnergy() - energy_before + metrics_.optical_energy;
    r.launches = fleet_.launches() - launches_before;
    r.carts = n_carts;
    std::uint64_t failures = 0;
    for (std::size_t t = 0; t < k; ++t)
        failures += fleet_.track(t).ssdFailures();
    r.ssd_failures = failures;
    r.avg_power = r.total_energy / r.total_time;
    r.effective_bandwidth = bytes / r.total_time;
    r.bytes_read = bytes_read_;
    return r;
}

} // namespace ops
} // namespace dhl
