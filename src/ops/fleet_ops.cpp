/**
 * @file
 * Implementation of the fleet-operations facade.
 */

#include "ops/fleet_ops.hpp"

#include <algorithm>
#include <string>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "sim/shard.hpp"

namespace dhl {
namespace ops {

namespace {

/** Shard map for the fleet: whole plant domains dealt contiguously
 *  onto the requested shard count (capped at the domain count); pull
 *  policies collapse to one shard — they have no lookahead. */
std::vector<std::size_t>
shardMap(const OpsConfig &ops, std::size_t tracks)
{
    const std::size_t shards =
        ops.dispatch.policy == DispatchPolicy::RoundRobin
            ? ops.des_shards
            : 1;
    if (shards <= 1)
        return {};
    const std::size_t unit =
        ops.domains.enabled ? ops.domains.domain_size : 1;
    return sim::partitionShards(tracks, unit, shards);
}

} // namespace

void
validate(const OpsConfig &cfg, std::size_t tracks)
{
    fatal_if(cfg.des_shards == 0, "des_shards must be at least 1");
    validate(cfg.dispatch);
    validate(cfg.maintenance, tracks);
    if (cfg.domains.enabled)
        validate(cfg.domains);
    validate(cfg.wear);
    fatal_if((cfg.wear.breakdown_gain > 0.0 ||
              cfg.wear.station_gain > 0.0) &&
                 !cfg.faults.enabled,
             "wear coupling scales the fault injector's processes; "
             "enable per-track fault injection to use it");
}

FleetOps::FleetOps(const core::DhlConfig &cfg, std::size_t tracks,
                   const OpsConfig &ops, std::uint64_t seed)
    : ops_(ops), fleet_(cfg, tracks, seed, shardMap(ops, tracks))
{
    validate(ops_, tracks);

    if (ops_.faults.enabled)
        fleet_.enableFaults(ops_.faults);

    const bool needs_states =
        !ops_.maintenance.windows.empty() || ops_.domains.enabled ||
        ops_.dispatch.policy == DispatchPolicy::AvailabilityAware;
    if (needs_states)
        fleet_.ensureFaultStates();

    if (ops_.wear.breakdown_gain > 0.0 || ops_.wear.station_gain > 0.0) {
        const WearCoupling coupling(ops_.wear);
        for (std::size_t t = 0; t < tracks; ++t) {
            coupling.attach(*fleet_.faultInjector(t),
                            fleet_.track(t).library());
        }
    }

    std::vector<faults::FaultState *> states;
    if (needs_states) {
        states.reserve(tracks);
        for (std::size_t t = 0; t < tracks; ++t)
            states.push_back(fleet_.faultState(t));
    }
    const std::size_t S = fleet_.numShards();
    if (S == 1) {
        if (!ops_.maintenance.windows.empty()) {
            maintenance_ = std::make_unique<MaintenanceScheduler>(
                fleet_.simulator(), states, ops_.maintenance);
        }
        if (ops_.domains.enabled) {
            correlated_ = std::make_unique<CorrelatedFaultModel>(
                fleet_.simulator(), states, ops_.domains);
        }
    } else {
        // One slice of the ops processes per DES shard, on that
        // shard's own simulator.  Track-targeted windows go to their
        // owner shard (index remapped to the shard-local track list);
        // fleet-wide windows are replicated on every shard so each
        // shard inhibits its own tracks at the same simulated times a
        // single loop would.  Plant domains are never split across
        // shards (shardMap), so a shard's model covers whole domains
        // and seeds them by *global* domain index.
        shard_ops_.resize(S);
        std::vector<std::size_t> first_track(S, tracks);
        for (std::size_t t = 0; t < tracks; ++t)
            first_track[fleet_.shardOf(t)] =
                std::min(first_track[fleet_.shardOf(t)], t);
        for (std::size_t s = 0; s < S; ++s) {
            std::vector<faults::FaultState *> slice;
            for (std::size_t t = 0; t < tracks; ++t) {
                if (fleet_.shardOf(t) == s)
                    slice.push_back(fleet_.faultState(t));
            }
            ShardOps &so = shard_ops_[s];
            if (!ops_.maintenance.windows.empty()) {
                MaintenanceConfig mc;
                mc.horizon = ops_.maintenance.horizon;
                for (const MaintenanceWindow &w :
                     ops_.maintenance.windows) {
                    if (w.track < 0) {
                        mc.windows.push_back(w);
                        so.count_window.push_back(s == 0);
                    } else if (fleet_.shardOf(static_cast<std::size_t>(
                                   w.track)) == s) {
                        MaintenanceWindow lw = w;
                        lw.track = w.track -
                                   static_cast<int>(first_track[s]);
                        mc.windows.push_back(lw);
                        so.count_window.push_back(true);
                    }
                }
                if (!mc.windows.empty()) {
                    so.maintenance =
                        std::make_unique<MaintenanceScheduler>(
                            fleet_.shardSim(s), slice, mc,
                            "maintenance.s" + std::to_string(s));
                }
            }
            if (ops_.domains.enabled) {
                so.plants = std::make_unique<CorrelatedFaultModel>(
                    fleet_.shardSim(s), slice, ops_.domains,
                    "plants.s" + std::to_string(s),
                    first_track[s] / ops_.domains.domain_size);
            }
        }
    }
    dispatcher_ =
        std::make_unique<FleetDispatcher>(fleet_, ops_.dispatch);
}

MaintenanceScheduler *
FleetOps::maintenance()
{
    if (!shard_ops_.empty())
        return shard_ops_[0].maintenance.get();
    return maintenance_.get();
}

CorrelatedFaultModel *
FleetOps::correlated()
{
    if (!shard_ops_.empty())
        return shard_ops_[0].plants.get();
    return correlated_.get();
}

OpsRunResult
FleetOps::runBulkTransfer(double bytes, const core::BulkRunOptions &opts,
                          const std::vector<core::RequestMeta> &meta)
{
    OpsRunResult r{};
    r.base = dispatcher_->runBulkTransfer(bytes, opts, meta);

    const DispatchMetrics &m = dispatcher_->metrics();
    r.reroutes = m.reroutes;
    r.drains = m.drains;
    r.deferrals = m.deferrals;
    r.offloads = m.offloads;
    r.optical_bytes = m.optical_bytes;
    r.optical_energy = m.optical_energy;
    if (!m.open_latency.empty()) {
        double sum = 0.0;
        for (const double v : m.open_latency)
            sum += v;
        r.open_latency_mean =
            sum / static_cast<double>(m.open_latency.size());
        r.open_latency_p99 = stats::percentile(m.open_latency, 99.0);
    }
    if (shard_ops_.empty()) {
        if (maintenance_ != nullptr)
            r.maintenance_windows = maintenance_->windowsStarted();
        if (correlated_ != nullptr)
            r.plant_outages = correlated_->outages();
    } else {
        for (const ShardOps &so : shard_ops_) {
            if (so.maintenance != nullptr) {
                for (std::size_t w = 0; w < so.count_window.size(); ++w) {
                    if (so.count_window[w])
                        r.maintenance_windows +=
                            so.maintenance->windowStarted(w);
                }
            }
            if (so.plants != nullptr)
                r.plant_outages += so.plants->outages();
        }
    }

    const double end = fleet_.maxNow();
    if (fleet_.faultState(0) != nullptr && end > 0.0) {
        double total = 0.0;
        for (std::size_t t = 0; t < fleet_.numTracks(); ++t)
            total += fleet_.faultState(t)->observedAvailability(end);
        r.fleet_availability =
            total / static_cast<double>(fleet_.numTracks());
    }
    return r;
}

} // namespace ops
} // namespace dhl
