/**
 * @file
 * Implementation of the fleet-operations facade.
 */

#include "ops/fleet_ops.hpp"

#include "common/logging.hpp"
#include "common/stats.hpp"

namespace dhl {
namespace ops {

void
validate(const OpsConfig &cfg, std::size_t tracks)
{
    validate(cfg.dispatch);
    validate(cfg.maintenance, tracks);
    if (cfg.domains.enabled)
        validate(cfg.domains);
    validate(cfg.wear);
    fatal_if((cfg.wear.breakdown_gain > 0.0 ||
              cfg.wear.station_gain > 0.0) &&
                 !cfg.faults.enabled,
             "wear coupling scales the fault injector's processes; "
             "enable per-track fault injection to use it");
}

FleetOps::FleetOps(const core::DhlConfig &cfg, std::size_t tracks,
                   const OpsConfig &ops, std::uint64_t seed)
    : ops_(ops), fleet_(cfg, tracks, seed)
{
    validate(ops_, tracks);

    if (ops_.faults.enabled)
        fleet_.enableFaults(ops_.faults);

    const bool needs_states =
        !ops_.maintenance.windows.empty() || ops_.domains.enabled ||
        ops_.dispatch.policy == DispatchPolicy::AvailabilityAware;
    if (needs_states)
        fleet_.ensureFaultStates();

    if (ops_.wear.breakdown_gain > 0.0 || ops_.wear.station_gain > 0.0) {
        const WearCoupling coupling(ops_.wear);
        for (std::size_t t = 0; t < tracks; ++t) {
            coupling.attach(*fleet_.faultInjector(t),
                            fleet_.track(t).library());
        }
    }

    std::vector<faults::FaultState *> states;
    if (needs_states) {
        states.reserve(tracks);
        for (std::size_t t = 0; t < tracks; ++t)
            states.push_back(fleet_.faultState(t));
    }
    if (!ops_.maintenance.windows.empty()) {
        maintenance_ = std::make_unique<MaintenanceScheduler>(
            fleet_.simulator(), states, ops_.maintenance);
    }
    if (ops_.domains.enabled) {
        correlated_ = std::make_unique<CorrelatedFaultModel>(
            fleet_.simulator(), states, ops_.domains);
    }
    dispatcher_ =
        std::make_unique<FleetDispatcher>(fleet_, ops_.dispatch);
}

OpsRunResult
FleetOps::runBulkTransfer(double bytes, const core::BulkRunOptions &opts,
                          const std::vector<core::RequestMeta> &meta)
{
    OpsRunResult r{};
    r.base = dispatcher_->runBulkTransfer(bytes, opts, meta);

    const DispatchMetrics &m = dispatcher_->metrics();
    r.reroutes = m.reroutes;
    r.drains = m.drains;
    r.deferrals = m.deferrals;
    if (!m.open_latency.empty()) {
        double sum = 0.0;
        for (const double v : m.open_latency)
            sum += v;
        r.open_latency_mean =
            sum / static_cast<double>(m.open_latency.size());
        r.open_latency_p99 = stats::percentile(m.open_latency, 99.0);
    }
    if (maintenance_ != nullptr)
        r.maintenance_windows = maintenance_->windowsStarted();
    if (correlated_ != nullptr)
        r.plant_outages = correlated_->outages();

    const double end = fleet_.simulator().now();
    if (fleet_.faultState(0) != nullptr && end > 0.0) {
        double total = 0.0;
        for (std::size_t t = 0; t < fleet_.numTracks(); ++t)
            total += fleet_.faultState(t)->observedAvailability(end);
        r.fleet_availability =
            total / static_cast<double>(fleet_.numTracks());
    }
    return r;
}

} // namespace ops
} // namespace dhl
