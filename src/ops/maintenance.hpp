/**
 * @file
 * Planned-maintenance windows for a DHL fleet.
 *
 * Real installations take tubes out of service on purpose — vacuum
 * plant servicing, LIM inspections, false-floor access — and the paper's
 * availability story (§IV-F, Discussion §VI "Repairs") is only credible
 * if planned downtime flows through the same degraded-mode machinery as
 * unplanned faults.  A MaintenanceScheduler therefore drives the
 * existing FaultState launch/service gates (pushLaunchInhibit /
 * popLaunchInhibit): while a window is open on a track, its controller
 * queues opens, parks trips, and re-dispatches on release exactly as it
 * would around a LIM outage, with no maintenance-specific code anywhere
 * in the control path.
 */

#ifndef DHL_OPS_MAINTENANCE_HPP
#define DHL_OPS_MAINTENANCE_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "faults/fault_state.hpp"
#include "sim/sim_object.hpp"

namespace dhl {
namespace ops {

/** One planned window (all times in simulated seconds). */
struct MaintenanceWindow
{
    /** Start of the first occurrence, s (>= 0). */
    double start = 0.0;

    /** Window length, s (> 0). */
    double duration = 0.0;

    /** Repeat interval, s; 0 = one-shot, otherwise must exceed the
     *  duration (windows of one entry never overlap themselves). */
    double period = 0.0;

    /** Target track index; -1 = fleet-wide (every track at once). */
    int track = -1;
};

/** The maintenance plan for one fleet. */
struct MaintenanceConfig
{
    std::vector<MaintenanceWindow> windows;

    /** No occurrence *starts* at or after this time, s (windows already
     *  open always run to completion, like in-flight repairs). */
    double horizon = std::numeric_limits<double>::infinity();
};

/** Validate against a fleet of @p tracks tracks; fatal() on nonsense. */
void validate(const MaintenanceConfig &cfg, std::size_t tracks);

/** The planned-maintenance process of one fleet. */
class MaintenanceScheduler : public sim::SimObject
{
  public:
    /**
     * @param sim    Owning simulator.
     * @param states Per-track fault registries (index = track; the
     *               registries must outlive the scheduler).
     * @param cfg    The maintenance plan.
     * @param name   SimObject name.
     */
    MaintenanceScheduler(sim::Simulator &sim,
                         std::vector<faults::FaultState *> states,
                         const MaintenanceConfig &cfg,
                         std::string name = "maintenance");

    const MaintenanceConfig &config() const { return cfg_; }

    /** Window occurrences opened so far. */
    std::uint64_t windowsStarted() const { return started_; }

    /** Occurrences of window @p w opened so far.  Sharded fleets run
     *  one scheduler per shard with fleet-wide windows replicated on
     *  every shard; per-window counts let the coordinator aggregate
     *  without double-counting replicas (see ops::FleetOps). */
    std::uint64_t windowStarted(std::size_t w) const;

    /** Window occurrences closed so far. */
    std::uint64_t windowsCompleted() const { return completed_; }

    /** True while any occurrence of window @p w is open. */
    bool windowOpen(std::size_t w) const;

    /** Cancel every pending transition (open windows stay open; the
     *  restore path re-arms the plan from a checkpoint). */
    void stop() { cancelPending(); }

    //------------------------------------------------------------------
    // Checkpoint/restore.  Each window's next transition (begin or
    // end) is tracked as an absolute time; restoreState() cancels the
    // constructor-scheduled plan, restores the open flags and tallies,
    // and re-schedules the saved transitions.  Launch inhibits are NOT
    // re-pushed — the restored FaultState already counts them; the
    // re-scheduled end event pops what the original begin pushed.
    //------------------------------------------------------------------

    void saveState(sim::SnapshotWriter &w) const override;
    void restoreState(sim::SnapshotReader &r) override;

  private:
    /** The window's next scheduled transition. */
    struct Pending
    {
        sim::EventHandle handle;
        bool active = false;
        double when = 0.0;       ///< Absolute fire time, s.
        bool is_end = false;     ///< false: begin fires; true: end.
        double occurrence = 0.0; ///< Start of the occurrence it serves.
    };

    void scheduleOccurrence(std::size_t w, double start);
    void begin(std::size_t w, double start);
    void end(std::size_t w, double start);
    void cancelPending();
    std::string reason(std::size_t w) const;

    /** The registries a window drives (one, or all for track = -1). */
    std::vector<faults::FaultState *> targets(std::size_t w);

    // dhl-analyze: transient(states_): wiring pointers to the fault
    // registries, re-attached by the harness before restore
    std::vector<faults::FaultState *> states_;
    MaintenanceConfig cfg_;
    std::vector<bool> open_;
    std::vector<Pending> pending_;
    std::vector<std::uint64_t> started_by_window_;
    std::uint64_t started_ = 0;
    std::uint64_t completed_ = 0;

    // dhl-analyze: transient(stat_started_, stat_completed_):
    // host-side stats tallies, restart from the boundary
    stats::Counter *stat_started_;
    stats::Counter *stat_completed_;
};

} // namespace ops
} // namespace dhl

#endif // DHL_OPS_MAINTENANCE_HPP
