/**
 * @file
 * Common-cause (correlated) failures through shared plant.
 *
 * The per-track FaultInjector streams are independent by construction,
 * but a real multi-tube installation shares infrastructure: one vacuum
 * plant typically backs several tubes, so a plant trip takes a whole
 * *domain* of tracks down at once.  Holistic DC simulators (HolDCSim)
 * show that ignoring such correlation makes fleet availability look far
 * better than it is — K independent tracks almost never fail together,
 * one shared plant guarantees they sometimes do.
 *
 * A CorrelatedFaultModel groups tracks into fixed-size domains and runs
 * one seeded failure/repair process per domain (exponential uptimes,
 * fixed MTTR — the same renewal shape as the per-component injector).
 * Outages are expressed as launch inhibits on every member track's
 * FaultState, so the controllers degrade through exactly the machinery
 * a LIM/track fault exercises.
 */

#ifndef DHL_OPS_CORRELATED_HPP
#define DHL_OPS_CORRELATED_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "faults/fault_state.hpp"
#include "sim/sim_object.hpp"

namespace dhl {
namespace ops {

/** Shared-plant domain parameters. */
struct SharedDomainConfig
{
    /** Master switch; a disabled config makes the model inert. */
    bool enabled = false;

    /** Tracks per shared vacuum plant (>= 1); the last domain takes
     *  the remainder. */
    std::size_t domain_size = 4;

    /** Plant MTBF, hours.  Default: one trip a year per plant (8760 h)
     *  — utility-scale pumping plants trip far more often than the
     *  1e5 h-class component MTBFs, which is what makes the
     *  correlation worth modelling. */
    double plant_mtbf = 8760.0;

    /** Plant MTTR, hours (restart + pump-down of every backed tube). */
    double plant_mttr = 4.0;

    /** Seed of the per-domain streams (deriveSeed-derived). */
    std::uint64_t seed = 1;

    /** No outage begins at or after this time, s. */
    double horizon = std::numeric_limits<double>::infinity();
};

/** Validate; fatal() on nonsense. */
void validate(const SharedDomainConfig &cfg);

/** The common-cause outage process of one fleet. */
class CorrelatedFaultModel : public sim::SimObject
{
  public:
    /**
     * @param sim    Owning simulator.
     * @param states Per-track fault registries (index = track; must
     *               outlive the model).
     * @param cfg    Domain parameters (must be enabled).
     * @param name   SimObject name.
     * @param first_domain
     *               Global index of this model's first domain.  A
     *               sharded fleet runs one model per DES shard over
     *               that shard's slice of the track list; passing the
     *               slice's base domain keeps the per-domain RNG
     *               streams (deriveSeed(seed, salt + global domain))
     *               and inhibit reasons identical to the unsharded
     *               fleet's.
     */
    CorrelatedFaultModel(sim::Simulator &sim,
                         std::vector<faults::FaultState *> states,
                         const SharedDomainConfig &cfg,
                         std::string name = "plants",
                         std::size_t first_domain = 0);

    const SharedDomainConfig &config() const { return cfg_; }

    /** Number of shared-plant domains. */
    std::size_t domains() const { return plants_.size(); }

    /** Domain backing track @p track. */
    std::size_t domainOf(std::size_t track) const;

    /** Plant @p domain currently tripped? */
    bool plantDown(std::size_t domain) const;

    /** Common-cause outages injected so far. */
    std::uint64_t outages() const { return outages_; }

    /** Cancel every pending transition (tripped plants stay down; the
     *  restore path re-arms the process from a checkpoint). */
    void stop();

    //------------------------------------------------------------------
    // Checkpoint/restore.  Mirrors the FaultInjector: per-domain RNG
    // stream plus the next transition (outage begin or plant restore)
    // as an absolute time.  restoreState() cancels the constructor
    // schedule and re-arms the saved transitions; member-track inhibits
    // are not re-pushed (the restored FaultStates carry the count).
    //------------------------------------------------------------------

    void saveState(sim::SnapshotWriter &w) const override;
    void restoreState(sim::SnapshotReader &r) override;

  private:
    struct Plant
    {
        std::vector<faults::FaultState *> members;
        Rng rng;
        bool down = false;
        sim::EventHandle pending;
        bool has_pending = false;
        double pending_when = 0.0;
        bool pending_is_restore = false;
    };

    void scheduleOutage(std::size_t domain);
    void beginOutage(std::size_t domain);
    void finishOutage(std::size_t domain);
    std::string reason(std::size_t domain) const;

    // dhl-analyze: transient(cfg_, tracks_, first_domain_): constructor
    // inputs; a restored model is rebuilt from the same config and
    // validated against the checkpointed plant count
    SharedDomainConfig cfg_;
    std::vector<Plant> plants_;
    std::size_t tracks_;
    std::size_t first_domain_;
    std::uint64_t outages_ = 0;

    // dhl-analyze: transient(stat_outages_, stat_restores_): host-side
    // stats tallies, restart from the boundary
    stats::Counter *stat_outages_;
    stats::Counter *stat_restores_;
};

} // namespace ops
} // namespace dhl

#endif // DHL_OPS_CORRELATED_HPP
