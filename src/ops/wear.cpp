/**
 * @file
 * Implementation of the wear coupling.
 */

#include "ops/wear.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace ops {

void
validate(const WearCouplingConfig &cfg)
{
    fatal_if(cfg.breakdown_gain < 0.0,
             "breakdown wear gain must be non-negative");
    fatal_if(cfg.station_gain < 0.0,
             "station wear gain must be non-negative");
}

double
cartWear(const core::Library &library, std::uint32_t cart)
{
    const auto &ssds = library.cart(cart).ssds();
    if (ssds.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &ssd : ssds)
        total += ssd.wearFraction();
    return total / static_cast<double>(ssds.size());
}

double
libraryWear(const core::Library &library)
{
    const std::size_t n = library.totalCarts();
    if (n == 0)
        return 0.0;
    double total = 0.0;
    for (std::size_t id = 0; id < n; ++id)
        total += cartWear(library, static_cast<std::uint32_t>(id));
    return total / static_cast<double>(n);
}

WearCoupling::WearCoupling(const WearCouplingConfig &cfg) : cfg_(cfg)
{
    validate(cfg_);
}

void
WearCoupling::attach(faults::FaultInjector &injector,
                     core::Library &library) const
{
    if (cfg_.breakdown_gain > 0.0) {
        injector.setBreakdownScale(
            [gain = cfg_.breakdown_gain, &library](std::uint32_t cart) {
                return 1.0 + gain * cartWear(library, cart);
            });
    }
    if (cfg_.station_gain > 0.0) {
        injector.setMtbfScale(
            [gain = cfg_.station_gain, &library](
                faults::Component kind, std::uint32_t) {
                if (kind != faults::Component::Station)
                    return 1.0;
                return 1.0 / (1.0 + gain * libraryWear(library));
            });
    }
}

} // namespace ops
} // namespace dhl
