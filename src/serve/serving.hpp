/**
 * @file
 * Open-loop serving mode: a DHL fleet under a staged load profile,
 * measured per stage against SLOs, checkpointable between DES epochs.
 *
 * The existing harnesses are closed-loop: they build a batch of work,
 * run the kernel dry, and report aggregates — fine for bandwidth and
 * energy, blind to what a *service* cares about (tail latency under a
 * ramp, availability of a faulted fleet, how much load had to be shed).
 * A ServingSim instead consumes arrivals from a StagedArrivalProcess
 * epoch by epoch:
 *
 *   per epoch:  pump the admission queue -> inject the epoch's
 *               arrivals -> runEpoch(boundary) -> drain in-flight
 *               requests (admission paused, backlog preserved)
 *
 * The epoch boundary is *drained*: no request is mid-trip, so the only
 * pending events belong to Snapshotable processes (fault injectors,
 * maintenance windows, plant outages) that record their own absolute
 * event times.  That is what makes the checkpoint exact: restore() on
 * a freshly built ServingSim rewinds the kernel clock, re-arms those
 * processes, and continues the run byte-for-byte — per-stage SLO
 * tables, trace, and energy totals all land identical to a run that
 * was never interrupted (the equivalence is epoch-grid-relative: both
 * sides consume arrivals on the same grid, which the grid's definition
 * guarantees).
 *
 * Epoch discipline is part of the serving semantics, not an artefact:
 * requests admitted in an epoch complete within it (a long-trip fleet
 * simply stretches the epoch), while *unadmitted* backlog carries
 * across epochs, so overload shows up as deferred/shed counts and
 * fat tails, never as silently dropped work.
 */

#ifndef DHL_SERVE_SERVING_HPP
#define DHL_SERVE_SERVING_HPP

#include <cstdint>
#include <deque>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "dhl/config.hpp"
#include "dhl/controller.hpp"
#include "exp/slo.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_state.hpp"
#include "ops/correlated.hpp"
#include "ops/dispatcher.hpp"
#include "ops/maintenance.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "sim/trace.hpp"
#include "workloads/arrival.hpp"

namespace dhl {
namespace serve {

/** Configuration of one serving run. */
struct ServeConfig
{
    /** Per-track DHL design point. */
    core::DhlConfig dhl{};

    /** Fleet size (>= 1). */
    std::size_t tracks = 1;

    /** Master seed; every stream (arrivals, per-track SSD dice,
     *  per-component fault streams) derives from it. */
    std::uint64_t seed = 1;

    /** The staged load profile (non-empty). */
    std::vector<workloads::StageSpec> stages;

    /** Epoch length, s (> 0): checkpoint granularity and the arrival
     *  injection batch size. */
    double epoch = 600.0;

    /** Cart pool per track (>= 1): concurrent requests a track takes. */
    std::size_t carts_per_track = 4;

    /** Admission queue bound; arrivals beyond it are shed (>= 1). */
    std::size_t max_pending = 1024;

    /** Fleet dispatch policy (reuses the ops-layer vocabulary). */
    ops::DispatchPolicy policy = ops::DispatchPolicy::LeastQueued;

    /** AvailabilityAware floor: while any track's service is down,
     *  only requests with priority >= this are admitted. */
    int min_priority_degraded = 0;

    /** Component fault injection (per track; seed is re-derived per
     *  track from this config's seed). */
    faults::FaultConfig faults{};

    /** Planned maintenance windows (empty = none). */
    ops::MaintenanceConfig maintenance{};

    /** Shared-plant correlated outages (disabled by default). */
    ops::SharedDomainConfig domains{};

    /** Retained trace records (rotation bound; see TraceRecorder). */
    std::size_t trace_capacity = 65536;
};

/** Validate; fatal() on nonsense. */
void validate(const ServeConfig &cfg);

/** One serving fleet under an open-loop staged load. */
class ServingSim
{
  public:
    explicit ServingSim(const ServeConfig &cfg);

    const ServeConfig &config() const { return cfg_; }

    //------------------------------------------------------------------
    // Stepping
    //------------------------------------------------------------------

    /**
     * Run one epoch: admit backlog, inject this epoch's arrivals, run
     * the kernel to the boundary, drain in-flight requests.  Returns
     * false (doing nothing) once the run is complete — profile
     * exhausted, queue empty, nothing in flight.
     */
    bool stepEpoch();

    /** Step until done, or at most @p max_epochs (0 = unbounded). */
    void run(std::size_t max_epochs = 0);

    bool done() const;
    std::size_t epochsCompleted() const { return epochs_; }
    double now() const { return sim_.now(); }

    //------------------------------------------------------------------
    // Checkpoint/restore
    //------------------------------------------------------------------

    /**
     * Write a checkpoint of the drained boundary to @p os.  Includes a
     * config fingerprint; restore() validates it, so a checkpoint can
     * only resume the run it came from.
     */
    void checkpoint(std::ostream &os) const;

    /**
     * Restore from a checkpoint into this freshly constructed fleet
     * (same ServeConfig).  After restore(), stepEpoch()/run() continue
     * the original run byte-for-byte.
     */
    void restore(std::istream &is);

    //------------------------------------------------------------------
    // Measurement
    //------------------------------------------------------------------

    /** Per-stage SLO accounting (index = stage). */
    const stats::SloAccumulator &stageSlo(std::size_t stage) const;

    /** The formatted per-stage outcome (exp/slo.hpp). */
    std::vector<exp::StageSlo> sloTable() const;

    /** Mean per-track service availability over a stage's window. */
    double stageAvailability(std::size_t stage) const;

    /** Fleet totals. */
    double totalEnergy() const;
    std::uint64_t totalLaunches() const;
    std::uint64_t totalServed() const { return served_; }
    std::uint64_t totalShed() const;
    std::size_t queueDepth() const { return queue_.size(); }
    std::size_t inFlight() const { return in_flight_; }

    /** The fleet trace (enable via trace().enable()). */
    sim::TraceRecorder &trace() { return trace_; }

    /** Serve-layer + kernel + per-track statistics. */
    void dumpStats(std::ostream &os);

    /** Direct track access (tests). */
    core::DhlController &controller(std::size_t track);
    faults::FaultState &faultState(std::size_t track);

  private:
    /** Everything one track owns. */
    struct TrackSystem
    {
        std::unique_ptr<faults::FaultState> state;
        std::unique_ptr<core::DhlController> controller;
        std::unique_ptr<faults::FaultInjector> injector;
        std::vector<core::CartId> pool; ///< Free carts, LIFO.
    };

    /** One admitted-but-not-dispatched request. */
    struct Queued
    {
        workloads::ArrivalEvent ev;
    };

    /** One dispatched request working through its trips. */
    struct Active
    {
        workloads::ArrivalEvent ev;
        std::size_t track;
        core::CartId cart;
        std::uint64_t trips_left;
    };

    double nextBoundary() const;
    void admit(const workloads::ArrivalEvent &ev);
    void pump();
    bool anyTrackDown() const;
    bool admissible(const workloads::ArrivalEvent &ev, bool degraded) const;
    bool tryStart(const workloads::ArrivalEvent &ev);
    std::size_t pickTrack(bool degraded) const;
    void runTrip(const std::shared_ptr<Active> &a);
    void finishRequest(const Active &a);
    void saveFingerprint(sim::SnapshotWriter &w) const;
    void checkFingerprint(sim::SnapshotReader &r) const;

    ServeConfig cfg_;
    sim::Simulator sim_;
    sim::TraceRecorder trace_;
    std::vector<TrackSystem> tracks_;
    std::unique_ptr<ops::MaintenanceScheduler> maintenance_;
    std::unique_ptr<ops::CorrelatedFaultModel> plants_;
    std::unique_ptr<workloads::StagedArrivalProcess> arrivals_;
    std::vector<stats::SloAccumulator> slo_;
    std::deque<Queued> queue_;
    double cart_capacity_;

    std::size_t epochs_ = 0;
    double boundary_ = 0.0;
    std::size_t rr_next_ = 0;
    std::size_t in_flight_ = 0;
    std::uint64_t served_ = 0;
    bool pumping_ = false;

    stats::StatGroup serve_stats_;
};

} // namespace serve
} // namespace dhl

#endif // DHL_SERVE_SERVING_HPP
