/**
 * @file
 * Open-loop serving mode: a DHL fleet under a staged load profile,
 * measured per stage against SLOs, checkpointable between DES epochs.
 *
 * The existing harnesses are closed-loop: they build a batch of work,
 * run the kernel dry, and report aggregates — fine for bandwidth and
 * energy, blind to what a *service* cares about (tail latency under a
 * ramp, availability of a faulted fleet, how much load had to be shed).
 * A ServingSim instead consumes arrivals from a StagedArrivalProcess
 * epoch by epoch:
 *
 *   per epoch:  pump the admission queue -> inject the epoch's
 *               arrivals -> runEpoch(boundary) -> drain in-flight
 *               requests (admission paused, backlog preserved)
 *
 * The epoch boundary is *drained*: no request is mid-trip, so the only
 * pending events belong to Snapshotable processes (fault injectors,
 * maintenance windows, plant outages) that record their own absolute
 * event times.  That is what makes the checkpoint exact: restore() on
 * a freshly built ServingSim rewinds the kernel clock, re-arms those
 * processes, and continues the run byte-for-byte — per-stage SLO
 * tables, trace, and energy totals all land identical to a run that
 * was never interrupted (the equivalence is epoch-grid-relative: both
 * sides consume arrivals on the same grid, which the grid's definition
 * guarantees).
 *
 * Epoch discipline is part of the serving semantics, not an artefact:
 * requests admitted in an epoch complete within it (a long-trip fleet
 * simply stretches the epoch), while *unadmitted* backlog carries
 * across epochs, so overload shows up as deferred/shed counts and
 * fat tails, never as silently dropped work.
 */

#ifndef DHL_SERVE_SERVING_HPP
#define DHL_SERVE_SERVING_HPP

#include <cstdint>
#include <deque>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "dhl/config.hpp"
#include "dhl/controller.hpp"
#include "exp/slo.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_state.hpp"
#include "network/flowsim.hpp"
#include "ops/correlated.hpp"
#include "ops/dispatcher.hpp"
#include "ops/maintenance.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "sim/trace.hpp"
#include "te/controller.hpp"
#include "workloads/arrival.hpp"

namespace dhl {
namespace serve {

/** Configuration of one serving run. */
struct ServeConfig
{
    /** Per-track DHL design point. */
    core::DhlConfig dhl{};

    /** Fleet size (>= 1). */
    std::size_t tracks = 1;

    /** Master seed; every stream (arrivals, per-track SSD dice,
     *  per-component fault streams) derives from it. */
    std::uint64_t seed = 1;

    /** The staged load profile (non-empty). */
    std::vector<workloads::StageSpec> stages;

    /** Epoch length, s (> 0): checkpoint granularity and the arrival
     *  injection batch size. */
    double epoch = 600.0;

    /** Cart pool per track (>= 1): concurrent requests a track takes. */
    std::size_t carts_per_track = 4;

    /** Admission queue bound; arrivals beyond it are shed (>= 1). */
    std::size_t max_pending = 1024;

    /** Fleet dispatch policy (reuses the ops-layer vocabulary). */
    ops::DispatchPolicy policy = ops::DispatchPolicy::LeastQueued;

    /** AvailabilityAware floor: while any track's service is down,
     *  only requests with priority >= this are admitted. */
    int min_priority_degraded = 0;

    /** Component fault injection (per track; seed is re-derived per
     *  track from this config's seed). */
    faults::FaultConfig faults{};

    /** Planned maintenance windows (empty = none). */
    ops::MaintenanceConfig maintenance{};

    /** Shared-plant correlated outages (disabled by default). */
    ops::SharedDomainConfig domains{};

    /** Retained trace records (rotation bound; see TraceRecorder). */
    std::size_t trace_capacity = 65536;

    /**
     * Traffic engineering (src/te).  When enabled, a TeController is
     * consulted at admission: small requests ride the optical
     * substrate (a FlowSim sharing one fat-tree uplink max-min
     * fairly), bulk requests ride the carts, and contended bulk
     * traffic below the priority floor is downgraded to optical or
     * held.  A request's substrate is fixed at admission.  TE runs
     * the DES on a single shard (the controller needs zero-lookahead
     * visibility of every track), so `des_shards` is ignored — which
     * also makes `--des-shards N` trivially byte-identical.  Disabled
     * leaves every stream and table byte-identical to pre-TE builds.
     */
    te::TeConfig te{};

    /**
     * DES shards for the fleet event loop (>= 1).  With N > 1 the
     * tracks are dealt — whole plant domains at a time
     * (sim::partitionShards) — onto N simulators driven with
     * conservative time windows: while the admission queue is empty
     * the shards run in parallel up to the next arrival or epoch
     * boundary; while backlog could start on any freed track the
     * coordinator falls back to global-order lockstep.  Results are
     * byte-identical to des_shards = 1, checkpoints stay legal at
     * every epoch boundary, and every dispatch policy is supported
     * (dispatch happens at coordinator barriers only).
     */
    std::size_t des_shards = 1;
};

/** Validate; fatal() on nonsense. */
void validate(const ServeConfig &cfg);

/** One serving fleet under an open-loop staged load. */
class ServingSim
{
  public:
    explicit ServingSim(const ServeConfig &cfg);

    const ServeConfig &config() const { return cfg_; }

    //------------------------------------------------------------------
    // Stepping
    //------------------------------------------------------------------

    /**
     * Run one epoch: admit backlog, inject this epoch's arrivals, run
     * the kernel to the boundary, drain in-flight requests.  Returns
     * false (doing nothing) once the run is complete — profile
     * exhausted, queue empty, nothing in flight.
     */
    bool stepEpoch();

    /** Step until done, or at most @p max_epochs (0 = unbounded). */
    void run(std::size_t max_epochs = 0);

    bool done() const;
    std::size_t epochsCompleted() const { return epochs_; }

    /** Fleet clock: the single kernel's clock, or — sharded — the
     *  maximum over the shard clocks (they agree at every barrier). */
    double now() const;

    /** DES shards actually in use (<= config().des_shards). */
    std::size_t numShards() const
    {
        return parts_.empty() ? 1 : parts_.size();
    }

    //------------------------------------------------------------------
    // Checkpoint/restore
    //------------------------------------------------------------------

    /**
     * Write a checkpoint of the drained boundary to @p os.  Includes a
     * config fingerprint; restore() validates it, so a checkpoint can
     * only resume the run it came from.
     */
    void checkpoint(std::ostream &os) const;

    /**
     * Restore from a checkpoint into this freshly constructed fleet
     * (same ServeConfig).  After restore(), stepEpoch()/run() continue
     * the original run byte-for-byte.
     */
    void restore(std::istream &is);

    //------------------------------------------------------------------
    // Measurement
    //------------------------------------------------------------------

    /** Per-stage SLO accounting (index = stage). */
    const stats::SloAccumulator &stageSlo(std::size_t stage) const;

    /** The formatted per-stage outcome (exp/slo.hpp). */
    std::vector<exp::StageSlo> sloTable() const;

    /** Mean per-track service availability over a stage's window. */
    double stageAvailability(std::size_t stage) const;

    /** Fleet totals.  totalEnergy() includes the optical substrate's
     *  route energy when TE is enabled. */
    double totalEnergy() const;
    std::uint64_t totalLaunches() const;
    std::uint64_t totalServed() const { return served_; }
    std::uint64_t totalShed() const;
    std::size_t queueDepth() const { return queue_.size(); }
    std::size_t inFlight() const { return in_flight_; }

    //------------------------------------------------------------------
    // Traffic engineering (cfg.te.enabled only)
    //------------------------------------------------------------------

    bool teEnabled() const { return te_ != nullptr; }

    /** The TE controller (fatal() unless enabled). */
    const te::TeController &teController() const;

    /** Per-(class, substrate) outcome rows, tenant-major with the DHL
     *  row first (goodput = delivered bytes over the elapsed
     *  makespan, so a slowly draining backlog scores lower). */
    std::vector<exp::ClassSlo> teTable() const;

    /** Joules spent by offloaded flows on the optical route. */
    double opticalEnergy() const { return optical_energy_; }

    /** Requests completed on the optical substrate. */
    std::uint64_t opticalServed() const { return optical_served_; }

    /** Bulk requests pushed to optical by DHL contention. */
    std::uint64_t teDowngrades() const { return te_downgrades_; }

    /** The fleet trace (enable via trace().enable()). */
    sim::TraceRecorder &trace() { return trace_; }

    /** Serve-layer + kernel + per-track statistics. */
    void dumpStats(std::ostream &os);

    /** Direct track access (tests). */
    core::DhlController &controller(std::size_t track);
    faults::FaultState &faultState(std::size_t track);

  private:
    /** Everything one track owns. */
    struct TrackSystem
    {
        std::unique_ptr<faults::FaultState> state;
        std::unique_ptr<core::DhlController> controller;
        std::unique_ptr<faults::FaultInjector> injector;
        std::vector<core::CartId> pool; ///< Free carts, LIFO.
    };

    /** One admitted-but-not-dispatched request. */
    struct Queued
    {
        workloads::ArrivalEvent ev;
    };

    /** One dispatched request working through its trips. */
    struct Active
    {
        workloads::ArrivalEvent ev;
        std::size_t track;
        core::CartId cart;
        std::uint64_t trips_left;
        /** Dispatch order (tryStart issue counter).  Completions that
         *  land on the exact same timestamp across shards are replayed
         *  in this order: with deterministic request sizes the tied
         *  trip chains are lockstep copies of each other, so the serial
         *  loop's insertion order at the tie is exactly the order their
         *  chains were rooted — the dispatch order. */
        std::uint64_t rank;
    };

    /** One DES shard's slice of the fleet (des_shards > 1 only). */
    struct ShardPart
    {
        /** Global track ids on this shard (contiguous). */
        std::vector<std::size_t> tracks;
        /** This shard's slice of the maintenance schedule (track
         *  windows remapped local; fleet-wide windows replicated). */
        std::unique_ptr<ops::MaintenanceScheduler> maintenance;
        /** This shard's plant domains (seeded by global index). */
        std::unique_ptr<ops::CorrelatedFaultModel> plants;
        /** Requests in flight on this shard's tracks. */
        std::size_t in_flight = 0;

        /** A completion recorded while the coordinator is out of the
         *  loop (parallel window, drain, or a tied-timestamp step),
         *  applied to the global state at the next barrier in
         *  (time, dispatch-rank) order — the order the serial loop
         *  fires them (see Active::rank). */
        struct Done
        {
            double when;
            int stage;
            double latency;
            double bytes;
            std::size_t track;
            core::CartId cart;
            std::uint64_t rank;
        };
        std::vector<Done> log;
    };

    bool sharded() const { return !parts_.empty(); }
    sim::Simulator &shardSim(std::size_t s);
    sim::Simulator &simOf(std::size_t track);
    const sim::Simulator &simOf(std::size_t track) const;
    bool stepEpochSharded();
    void runWindow(double until);
    void stepTied(double when);
    void mergeCompletions();

    double nextBoundary() const;
    void admit(const workloads::ArrivalEvent &ev);
    void admitTe(const workloads::ArrivalEvent &ev);
    void startOptical(const workloads::ArrivalEvent &ev,
                      std::size_t tenant, bool downgraded);
    std::size_t tenantOf(const workloads::ArrivalEvent &ev) const;
    stats::SloAccumulator &classSlo(std::size_t tenant, te::Substrate s);
    const stats::SloAccumulator &classSlo(std::size_t tenant,
                                          te::Substrate s) const;
    void pump();
    bool anyTrackDown() const;
    bool admissible(const workloads::ArrivalEvent &ev, bool degraded) const;
    bool tryStart(const workloads::ArrivalEvent &ev);
    std::size_t pickTrack(bool degraded) const;
    void runTrip(const std::shared_ptr<Active> &a);
    void finishRequest(const Active &a);
    void saveFingerprint(sim::SnapshotWriter &w) const;
    void checkFingerprint(sim::SnapshotReader &r) const;

    ServeConfig cfg_;
    sim::Simulator sim_;
    sim::TraceRecorder trace_;
    std::vector<TrackSystem> tracks_;
    std::unique_ptr<ops::MaintenanceScheduler> maintenance_;
    std::unique_ptr<ops::CorrelatedFaultModel> plants_;
    std::unique_ptr<workloads::StagedArrivalProcess> arrivals_;
    std::vector<stats::SloAccumulator> slo_;
    std::deque<Queued> queue_;
    // dhl-analyze: transient(cart_capacity_): derived from the config
    // by the constructor, never mutated afterwards
    double cart_capacity_;

    // Traffic engineering (cfg_.te.enabled only; null/empty otherwise).
    std::unique_ptr<te::TeController> te_;
    // dhl-analyze: transient(optical_, optical_links_,
    // optical_route_power_, tenant_tags_): rebuilt identically by the
    // constructor from the same ServeConfig (the optical substrate is
    // idle at every drained epoch boundary)
    std::unique_ptr<network::FlowSim> optical_;
    std::vector<int> optical_links_;    ///< The one fat-tree uplink.
    double optical_route_power_ = 0.0;  ///< W while a flow is active.
    /** Per-(tenant, substrate) accounting: index = tenant*2 + sub. */
    std::vector<stats::SloAccumulator> class_slo_;
    std::vector<std::string> tenant_tags_; ///< First-appearance order.
    double optical_energy_ = 0.0;
    std::uint64_t optical_served_ = 0;
    std::uint64_t te_downgrades_ = 0;

    // Sharded mode (numShards() > 1); all empty/null otherwise, and
    // every hot path then runs the literal single-loop code.
    std::vector<std::unique_ptr<sim::Simulator>> extra_sims_;
    std::vector<std::unique_ptr<sim::TraceRecorder>> extra_traces_;
    // dhl-analyze: transient(shard_of_, group_, pool_): shard topology
    // and worker threads, rebuilt by the constructor from the config
    std::vector<std::size_t> shard_of_; ///< track -> shard
    std::vector<ShardPart> parts_;
    sim::ShardGroup group_;
    std::unique_ptr<ThreadPool> pool_;
    // dhl-analyze: transient(windowed_, repair_pump_pending_,
    // pumping_): intra-window flags, false at every drained epoch
    // boundary where a checkpoint is legal
    /** True while shards run concurrently: completions are deferred to
     *  the shard log and pump() is a no-op (the queue is empty by
     *  construction whenever a window is open). */
    bool windowed_ = false;
    /** A repair/maintenance-release pump was suppressed during a
     *  tied-timestamp drain; stepTied() replays it at the barrier. */
    bool repair_pump_pending_ = false;

    std::size_t epochs_ = 0;
    double boundary_ = 0.0;
    std::size_t rr_next_ = 0;
    // dhl-analyze: transient(in_flight_): drained-boundary invariant —
    // checkpoint() asserts it is zero
    std::size_t in_flight_ = 0;
    // dhl-analyze: transient(next_rank_): dispatch tie-break is
    // relative order only; re-counting from zero after restore replays
    // ties identically
    std::uint64_t next_rank_ = 0; ///< tryStart issue counter.
    std::uint64_t served_ = 0;
    bool pumping_ = false;

    // dhl-analyze: transient(serve_stats_): host-side stats tallies,
    // restart from the boundary
    stats::StatGroup serve_stats_;
};

} // namespace serve
} // namespace dhl

#endif // DHL_SERVE_SERVING_HPP
