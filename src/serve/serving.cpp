/**
 * @file
 * Implementation of the open-loop serving mode.
 */

#include "serve/serving.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "dhl/analytical.hpp"
#include "network/route.hpp"

namespace dhl {
namespace serve {

namespace {

/** deriveSeed salts of the serve layer's streams, disjoint from every
 *  fault/ops stream index ("ARRV", "TRAK", "FALT"). */
constexpr std::uint64_t kArrivalStreamSalt = 0x41525256ull;
constexpr std::uint64_t kTrackStreamSalt = 0x5452414bull;
constexpr std::uint64_t kFaultStreamSalt = 0x46414c54ull;

constexpr std::size_t kNoTrack = std::numeric_limits<std::size_t>::max();

} // namespace

void
validate(const ServeConfig &cfg)
{
    core::validate(cfg.dhl);
    fatal_if(cfg.tracks == 0, "serving needs at least one track");
    fatal_if(cfg.stages.empty(), "serving needs a non-empty load profile");
    fatal_if(!(cfg.epoch > 0.0), "serving epoch must be positive");
    fatal_if(cfg.carts_per_track == 0,
             "serving needs at least one cart per track");
    fatal_if(cfg.max_pending == 0,
             "serving admission queue bound must be positive");
    if (cfg.faults.enabled)
        faults::validate(cfg.faults);
    if (!cfg.maintenance.windows.empty())
        ops::validate(cfg.maintenance, cfg.tracks);
    if (cfg.domains.enabled)
        ops::validate(cfg.domains);
    fatal_if(cfg.des_shards == 0, "serving des_shards must be at least 1");
    fatal_if(cfg.policy == ops::DispatchPolicy::Te,
             "the serving loop drives TE through cfg.te (--te), not "
             "the ops dispatch policy");
    if (cfg.te.enabled)
        te::validate(cfg.te);
}

ServingSim::ServingSim(const ServeConfig &cfg)
    : cfg_(cfg),
      trace_(sim_, cfg.trace_capacity),
      cart_capacity_(cfg.dhl.cartCapacity().value()),
      serve_stats_("serve")
{
    validate(cfg_);

    // Shard layout first: whole plant domains dealt contiguously onto
    // the requested shard count (partitionShards caps it at the domain
    // count).  Every seed below derives from (cfg_.seed, global track
    // index) alone, so the layout never perturbs a stream.
    shard_of_.assign(cfg_.tracks, 0);
    // TE needs zero-lookahead visibility of every track (the controller
    // decides per admission against fleet-wide published state), so a
    // TE-enabled run always uses the single global loop — which also
    // makes --des-shards trivially byte-identical under TE.
    if (cfg_.des_shards > 1 && !cfg_.te.enabled) {
        const std::size_t unit =
            cfg_.domains.enabled ? cfg_.domains.domain_size : 1;
        shard_of_ =
            sim::partitionShards(cfg_.tracks, unit, cfg_.des_shards);
        const std::size_t S = shard_of_.back() + 1;
        if (S > 1) {
            parts_.resize(S);
            for (std::size_t t = 0; t < cfg_.tracks; ++t)
                parts_[shard_of_[t]].tracks.push_back(t);
            extra_sims_.reserve(S - 1);
            extra_traces_.reserve(S - 1);
            for (std::size_t s = 1; s < S; ++s) {
                extra_sims_.push_back(std::make_unique<sim::Simulator>());
                extra_traces_.push_back(
                    std::make_unique<sim::TraceRecorder>(
                        *extra_sims_.back(), cfg_.trace_capacity));
            }
            group_.attach(&sim_);
            for (const auto &es : extra_sims_)
                group_.attach(es.get());
            pool_ = std::make_unique<ThreadPool>(S);
            group_.setPool(pool_.get());
        }
    }

    tracks_.resize(cfg_.tracks);
    std::vector<faults::FaultState *> states;
    states.reserve(cfg_.tracks);
    for (std::size_t t = 0; t < cfg_.tracks; ++t) {
        TrackSystem &ts = tracks_[t];
        sim::Simulator &tsim = simOf(t);
        sim::TraceRecorder &ttrace =
            shard_of_[t] == 0 ? trace_ : *extra_traces_[shard_of_[t] - 1];
        ts.state = std::make_unique<faults::FaultState>(tsim);
        ts.state->attachTrace(&ttrace);
        std::string name("track");
        name += std::to_string(t);
        ts.controller = std::make_unique<core::DhlController>(
            tsim, cfg_.dhl, name, deriveSeed(cfg_.seed, kTrackStreamSalt + t));
        ts.controller->attachTrace(&ttrace);
        ts.controller->attachFaults(ts.state.get());
        ts.pool.reserve(cfg_.carts_per_track);
        for (std::size_t c = 0; c < cfg_.carts_per_track; ++c)
            ts.pool.push_back(ts.controller->addCart(0.0).id());
        if (cfg_.faults.enabled) {
            faults::FaultConfig fc = cfg_.faults;
            fc.seed = deriveSeed(cfg_.faults.seed, kFaultStreamSalt + t);
            std::string fname("faults");
            fname += std::to_string(t);
            ts.injector = std::make_unique<faults::FaultInjector>(
                tsim, *ts.state, fc, ts.controller->numStations(), fname);
        }
        // Repair completions free capacity the backlog may be waiting
        // on; the pump no-ops outside the epoch's admission window and
        // during parallel shard windows (where the queue is empty).
        ts.state->onRepair([this] { pump(); });
        states.push_back(ts.state.get());
    }

    if (!sharded()) {
        if (!cfg_.maintenance.windows.empty())
            maintenance_ = std::make_unique<ops::MaintenanceScheduler>(
                sim_, states, cfg_.maintenance);
        if (cfg_.domains.enabled)
            plants_ = std::make_unique<ops::CorrelatedFaultModel>(
                sim_, states, cfg_.domains);
    } else {
        // One slice of the ops processes per shard, on that shard's
        // simulator.  Track-targeted maintenance windows go to their
        // owner shard (index remapped into the shard-local slice);
        // fleet-wide windows are replicated on every shard so each
        // shard inhibits its own tracks at the same simulated times a
        // single loop would.  Plant domains are never split across
        // shards, so a shard's model covers whole domains and seeds
        // them by *global* domain index.
        for (std::size_t s = 0; s < parts_.size(); ++s) {
            ShardPart &part = parts_[s];
            const std::size_t first = part.tracks.front();
            std::vector<faults::FaultState *> slice;
            slice.reserve(part.tracks.size());
            for (const std::size_t t : part.tracks)
                slice.push_back(tracks_[t].state.get());
            if (!cfg_.maintenance.windows.empty()) {
                ops::MaintenanceConfig mc;
                mc.horizon = cfg_.maintenance.horizon;
                for (const ops::MaintenanceWindow &mw :
                     cfg_.maintenance.windows) {
                    if (mw.track < 0) {
                        mc.windows.push_back(mw);
                    } else if (shard_of_[static_cast<std::size_t>(
                                   mw.track)] == s) {
                        ops::MaintenanceWindow lw = mw;
                        lw.track = mw.track - static_cast<int>(first);
                        mc.windows.push_back(lw);
                    }
                }
                if (!mc.windows.empty())
                    part.maintenance =
                        std::make_unique<ops::MaintenanceScheduler>(
                            shardSim(s), slice, mc,
                            "maintenance.s" + std::to_string(s));
            }
            if (cfg_.domains.enabled)
                part.plants =
                    std::make_unique<ops::CorrelatedFaultModel>(
                        shardSim(s), slice, cfg_.domains,
                        "plants.s" + std::to_string(s),
                        first / cfg_.domains.domain_size);
        }
    }

    arrivals_ = std::make_unique<workloads::StagedArrivalProcess>(
        cfg_.stages, deriveSeed(cfg_.seed, kArrivalStreamSalt));
    slo_.resize(arrivals_->stageCount());

    if (cfg_.te.enabled) {
        // Tenants are the distinct traffic-class tags of the profile in
        // first-appearance order; the class's arrival-mix weight doubles
        // as its fair-share weight.
        std::vector<te::TenantSpec> tenants;
        for (const workloads::StageSpec &stage : cfg_.stages) {
            for (const workloads::RequestClass &rc : stage.mix) {
                bool known = false;
                for (const std::string &tag : tenant_tags_)
                    known = known || tag == rc.tag;
                if (!known) {
                    tenant_tags_.push_back(rc.tag);
                    tenants.push_back({rc.tag, rc.weight});
                }
            }
        }
        te::TeConfig tc = cfg_.te;
        if (tc.dhl_capacity == 0.0)
            tc.dhl_capacity =
                static_cast<double>(cfg_.tracks) *
                core::AnalyticalModel(cfg_.dhl).launch().bandwidth.value();
        if (std::isinf(tc.horizon))
            tc.horizon = arrivals_->totalDuration();
        optical_ = std::make_unique<network::FlowSim>(sim_, "optical");
        optical_links_ = {optical_->addLink(tc.optical_capacity)};
        optical_route_power_ =
            network::findRoute(tc.route).power().value();
        te_ = std::make_unique<te::TeController>(sim_, tc,
                                                 std::move(tenants));
        // A control tick can clear contention or open downgrade
        // headroom, so the backlog is re-scanned after every tick.
        te_->onTick([this] { pump(); });
        te_->start();
        class_slo_.resize(tenant_tags_.size() * 2);
        serve_stats_.addFormula("optical_served",
                                "requests served on the optical substrate",
                                [this] {
            return static_cast<double>(optical_served_);
        });
        serve_stats_.addFormula("te_downgrades",
                                "bulk requests downgraded to optical",
                                [this] {
            return static_cast<double>(te_downgrades_);
        });
    }

    // Formulas read the SLO accumulators lazily, so a restored fleet
    // dumps the run totals, not just what this process observed.
    serve_stats_.addFormula("offered", "requests offered", [this] {
        double n = 0.0;
        for (const auto &s : slo_)
            n += static_cast<double>(s.offered());
        return n;
    });
    serve_stats_.addFormula("served", "requests completed", [this] {
        double n = 0.0;
        for (const auto &s : slo_)
            n += static_cast<double>(s.served());
        return n;
    });
    serve_stats_.addFormula("shed", "requests shed at admission", [this] {
        double n = 0.0;
        for (const auto &s : slo_)
            n += static_cast<double>(s.shed());
        return n;
    });
    serve_stats_.addFormula("backlog", "admission queue depth", [this] {
        return static_cast<double>(queue_.size());
    });
    serve_stats_.addFormula("epochs", "epochs completed", [this] {
        return static_cast<double>(epochs_);
    });
}

//===========================================================================
// Stepping
//===========================================================================

sim::Simulator &
ServingSim::shardSim(std::size_t s)
{
    return s == 0 ? sim_ : *extra_sims_[s - 1];
}

sim::Simulator &
ServingSim::simOf(std::size_t track)
{
    return shardSim(shard_of_[track]);
}

const sim::Simulator &
ServingSim::simOf(std::size_t track) const
{
    const std::size_t s = shard_of_[track];
    return s == 0 ? sim_ : *extra_sims_[s - 1];
}

double
ServingSim::now() const
{
    double t = sim_.now();
    for (const auto &es : extra_sims_)
        t = std::max(t, es->now());
    return t;
}

bool
ServingSim::done() const
{
    return arrivals_->exhausted() && queue_.empty() && in_flight_ == 0;
}

double
ServingSim::nextBoundary() const
{
    // Draining a backlogged epoch can run past its boundary; the next
    // epoch then starts from wherever the clock actually is.
    return std::max(boundary_ + cfg_.epoch, now());
}

bool
ServingSim::stepEpoch()
{
    if (sharded())
        return stepEpochSharded();
    if (done())
        return false;

    const double target = nextBoundary();

    // Admission window opens: backlog first, then this epoch's
    // arrivals at their intended times (late ones fire immediately).
    pumping_ = true;
    pump();
    for (const workloads::ArrivalEvent &ev : arrivals_->take(target)) {
        const double when = std::max(ev.at, sim_.now());
        auto boxed = std::make_shared<workloads::ArrivalEvent>(ev);
        sim_.scheduleAt(when, [this, boxed] { admit(*boxed); });
    }

    // Anything startable has been started and this epoch's arrivals
    // are scheduled; a backlog with an empty event queue can therefore
    // never make progress (a merely busy or repairing fleet always has
    // a trip or repair event pending).
    if (!queue_.empty() && sim_.pendingEvents() == 0)
        fatal("serving stalled: backlog remains but no future event can "
              "free capacity (all tracks down for good?)");

    sim_.runEpoch(target);

    // Admission window closes: finish in-flight requests so the
    // boundary is drained (checkpointable); unstarted backlog carries.
    pumping_ = false;
    while (in_flight_ > 0) {
        if (sim_.step(1) == 0)
            panic("serving drain stalled with requests in flight");
    }

    boundary_ = target;
    ++epochs_;
    return true;
}

bool
ServingSim::stepEpochSharded()
{
    if (done())
        return false;

    const double target = nextBoundary();

    // Admission window opens: backlog first (every shard sits at the
    // same drained time), then this epoch's arrivals — taken up front
    // and admitted at coordinator barriers rather than scheduled as
    // kernel events, which is what gives the shards their lookahead.
    pumping_ = true;
    pump();

    const double epoch_start = now();
    const std::vector<workloads::ArrivalEvent> arrivals =
        arrivals_->take(target);

    // Same stall condition as the single-loop path: anything startable
    // has been started, so a backlog with no pending event anywhere and
    // no arrival left can never make progress.
    if (!queue_.empty() && group_.pendingEvents() == 0 && arrivals.empty())
        fatal("serving stalled: backlog remains but no future event can "
              "free capacity (all tracks down for good?)");

    // Conservative windows while the queue is empty (no admission can
    // happen before the next arrival, so every shard may run freely up
    // to it in parallel); global-order lockstep while backlog could
    // start on any track the moment an event frees one.
    std::size_t ai = 0;
    for (;;) {
        const double due =
            ai < arrivals.size()
                ? std::max(arrivals[ai].at, epoch_start)
                : std::numeric_limits<double>::infinity();
        if (queue_.empty()) {
            const double w = std::min(due, target);
            runWindow(w);
            while (ai < arrivals.size() &&
                   std::max(arrivals[ai].at, epoch_start) <= w)
                admit(arrivals[ai++]);
            if (w >= target)
                break;
        } else {
            const double tmin = group_.nextEventTime();
            if (tmin < due && tmin <= target) {
                // Fire the globally earliest event with every shard
                // clock already at its time, so any admission its
                // callbacks trigger (repair -> pump) schedules work
                // exactly as one global loop would.  When several
                // shards share the head timestamp exactly — routine
                // here, deterministic request sizes keep whole trip
                // chains in lockstep across tracks — the per-shard
                // heaps cannot reproduce the global insertion order,
                // so the tie is drained and replayed instead.
                group_.advanceClocks(tmin);
                std::size_t heads = 0;
                for (std::size_t s = 0; s < parts_.size(); ++s)
                    heads += shardSim(s).nextEventTime() == tmin ? 1u : 0u;
                if (heads > 1)
                    stepTied(tmin);
                else
                    group_.stepMin();
            } else if (due <= target) {
                group_.advanceClocks(due);
                admit(arrivals[ai++]);
            } else {
                group_.advanceClocks(target);
                break;
            }
        }
    }

    // Admission window closes: drain each shard's in-flight requests in
    // parallel, then bring every shard to the fleet finish time so
    // straggling fault/maintenance/plant events fire exactly where a
    // single loop running in global time order would have fired them.
    pumping_ = false;
    windowed_ = true;
    pool_->parallelFor(parts_.size(), [this](std::size_t s) {
        sim::Simulator &psim = shardSim(s);
        ShardPart &part = parts_[s];
        while (part.in_flight > 0) {
            if (psim.step(1) == 0)
                panic("serving drain stalled with requests in flight");
        }
    });
    group_.advanceTo(now());
    windowed_ = false;
    mergeCompletions();

    boundary_ = target;
    ++epochs_;
    return true;
}

void
ServingSim::runWindow(double until)
{
    windowed_ = true;
    group_.advanceTo(until);
    windowed_ = false;
    mergeCompletions();
}

void
ServingSim::stepTied(double when)
{
    // Cross-shard timestamp tie under backlog.  The serial loop fires
    // same-time events in heap insertion order; independent per-shard
    // heaps lost that order, but its observable part — which completion
    // returns its cart and pumps the queue first — is recoverable: ties
    // here come from trip chains running in lockstep (identical request
    // sizes, rooted at a common admission barrier), and such chains
    // were inserted, at every tied generation, in the order they were
    // dispatched.  So: drain every shard's events at exactly `when`
    // with coordinator effects deferred (windowed_), then replay the
    // logged completions in dispatch order, pumping after each just as
    // the serial loop pumps per completion.
    windowed_ = true;
    repair_pump_pending_ = false;
    for (std::size_t s = 0; s < parts_.size(); ++s) {
        sim::Simulator &psim = shardSim(s);
        while (psim.nextEventTime() == when)
            if (psim.step(1) == 0)
                panic("tied step fired no event");
    }
    windowed_ = false;

    std::vector<ShardPart::Done> dones;
    for (ShardPart &p : parts_) {
        dones.insert(dones.end(), p.log.begin(), p.log.end());
        p.log.clear();
    }
    std::sort(dones.begin(), dones.end(),
              [](const ShardPart::Done &a, const ShardPart::Done &b) {
                  return a.rank < b.rank; // `when` is equal throughout
              });
    for (const ShardPart::Done &d : dones) {
        tracks_[d.track].pool.push_back(d.cart);
        slo_[static_cast<std::size_t>(d.stage)].complete(d.latency,
                                                         d.bytes);
        ++served_;
        --in_flight_;
        pump();
    }
    // Repair and maintenance-release callbacks that fired during the
    // drain had their pumps suppressed; one pump over the final state
    // covers them (the serial loop's per-event pumps see the same
    // pools once every same-time release has been applied).  Skipped
    // when nothing asked: the serial loop does not pump on plain
    // controller events, and an extra pump here could start work early.
    if (repair_pump_pending_) {
        repair_pump_pending_ = false;
        pump();
    }
}

void
ServingSim::mergeCompletions()
{
    // (time, dispatch-rank) order: rank is globally unique, so the
    // merge is a total order independent of the shard layout, and at
    // exact timestamp ties it reproduces the serial loop's insertion
    // order for the lockstep trip chains that produce such ties (a
    // chain dispatched earlier was inserted earlier at every tied
    // generation).  Cart returns happen here, in merge order, so the
    // per-track pools refill in the same LIFO order as one global loop.
    std::vector<ShardPart::Done> dones;
    for (ShardPart &p : parts_) {
        dones.insert(dones.end(), p.log.begin(), p.log.end());
        p.log.clear();
    }
    std::sort(dones.begin(), dones.end(),
              [](const ShardPart::Done &a, const ShardPart::Done &b) {
                  return a.when != b.when ? a.when < b.when
                                          : a.rank < b.rank;
              });
    for (const ShardPart::Done &d : dones) {
        tracks_[d.track].pool.push_back(d.cart);
        slo_[static_cast<std::size_t>(d.stage)].complete(d.latency,
                                                         d.bytes);
        ++served_;
        --in_flight_;
    }
}

void
ServingSim::run(std::size_t max_epochs)
{
    std::size_t steps = 0;
    while (stepEpoch()) {
        ++steps;
        if (max_epochs != 0 && steps >= max_epochs)
            return;
    }
}

//===========================================================================
// Admission
//===========================================================================

bool
ServingSim::anyTrackDown() const
{
    for (const TrackSystem &ts : tracks_)
        if (!ts.state->serviceUp())
            return true;
    return false;
}

bool
ServingSim::admissible(const workloads::ArrivalEvent &ev,
                       bool degraded) const
{
    if (cfg_.policy != ops::DispatchPolicy::AvailabilityAware)
        return true;
    return !degraded || ev.priority >= cfg_.min_priority_degraded;
}

std::size_t
ServingSim::pickTrack(bool degraded) const
{
    const std::size_t n = tracks_.size();
    switch (cfg_.policy) {
    case ops::DispatchPolicy::RoundRobin:
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t t = (rr_next_ + i) % n;
            if (!tracks_[t].pool.empty())
                return t;
        }
        return kNoTrack;
    case ops::DispatchPolicy::Te: // rejected by validate(); see --te
    case ops::DispatchPolicy::LeastQueued: {
        std::size_t best = kNoTrack;
        std::size_t best_free = 0;
        for (std::size_t t = 0; t < n; ++t) {
            const std::size_t free = tracks_[t].pool.size();
            if (free > best_free) {
                best = t;
                best_free = free;
            }
        }
        return best;
    }
    case ops::DispatchPolicy::AvailabilityAware: {
        std::size_t best = kNoTrack;
        std::size_t best_free = 0;
        for (std::size_t t = 0; t < n; ++t) {
            if (degraded && !tracks_[t].state->serviceUp())
                continue;
            const std::size_t free = tracks_[t].pool.size();
            if (free > best_free) {
                best = t;
                best_free = free;
            }
        }
        return best;
    }
    }
    return kNoTrack;
}

bool
ServingSim::tryStart(const workloads::ArrivalEvent &ev)
{
    const std::size_t t = pickTrack(anyTrackDown());
    if (t == kNoTrack)
        return false;
    if (cfg_.policy == ops::DispatchPolicy::RoundRobin)
        rr_next_ = (t + 1) % tracks_.size();

    TrackSystem &ts = tracks_[t];
    const core::CartId cart = ts.pool.back();
    ts.pool.pop_back();
    ++in_flight_;
    if (sharded())
        ++parts_[shard_of_[t]].in_flight;

    const double trips =
        std::max(1.0, std::ceil(ev.bytes / cart_capacity_));
    auto active = std::make_shared<Active>(
        Active{ev, t, cart, static_cast<std::uint64_t>(trips),
               next_rank_++});
    runTrip(active);
    return true;
}

void
ServingSim::admit(const workloads::ArrivalEvent &ev)
{
    const std::size_t stage = static_cast<std::size_t>(ev.stage);
    slo_[stage].offer();

    if (te_) {
        admitTe(ev);
        return;
    }

    if (queue_.empty() && admissible(ev, anyTrackDown()) && tryStart(ev))
        return;

    if (queue_.size() >= cfg_.max_pending) {
        slo_[stage].shed();
        if (trace_.enabled())
            trace_.record("serve", "admission",
                          "shed " + ev.tag + " (queue full)");
        return;
    }
    slo_[stage].defer();
    queue_.push_back(Queued{ev});
}

void
ServingSim::admitTe(const workloads::ArrivalEvent &ev)
{
    const std::size_t stage = static_cast<std::size_t>(ev.stage);
    const std::size_t tenant = tenantOf(ev);
    te_->recordUsage(tenant, ev.bytes);

    core::RequestMeta meta;
    meta.priority = ev.priority;
    const te::TeDecision d = te_->decide(tenant, ev.bytes, meta);

    if (d.substrate == te::Substrate::Optical) {
        // Optical requests never queue: the fluid FlowSim models their
        // contention by sharing the uplink, not by admission control.
        classSlo(tenant, te::Substrate::Optical).offer();
        startOptical(ev, tenant, d.downgraded);
        return;
    }

    classSlo(tenant, te::Substrate::Dhl).offer();
    // d.admit == false holds the request in the queue until a control
    // tick clears the contention (decide() only withholds admission
    // while a future tick is pending, so the hold always resolves).
    if (d.admit && queue_.empty() && admissible(ev, anyTrackDown()) &&
        tryStart(ev))
        return;

    if (queue_.size() >= cfg_.max_pending) {
        slo_[stage].shed();
        classSlo(tenant, te::Substrate::Dhl).shed();
        if (trace_.enabled())
            trace_.record("serve", "admission",
                          "shed " + ev.tag + " (queue full)");
        return;
    }
    slo_[stage].defer();
    classSlo(tenant, te::Substrate::Dhl).defer();
    queue_.push_back(Queued{ev});
}

void
ServingSim::startOptical(const workloads::ArrivalEvent &ev,
                         std::size_t tenant, bool downgraded)
{
    if (downgraded)
        ++te_downgrades_;
    ++in_flight_;
    auto boxed = std::make_shared<workloads::ArrivalEvent>(ev);
    optical_->startFlow(
        optical_links_, ev.bytes, optical_route_power_,
        [this, boxed, tenant](const network::FlowRecord &rec) {
            const std::size_t stage =
                static_cast<std::size_t>(boxed->stage);
            const double latency = sim_.now() - boxed->at;
            slo_[stage].complete(latency, boxed->bytes);
            classSlo(tenant, te::Substrate::Optical)
                .complete(latency, boxed->bytes);
            optical_energy_ += rec.energy;
            ++served_;
            ++optical_served_;
            --in_flight_;
        });
}

std::size_t
ServingSim::tenantOf(const workloads::ArrivalEvent &ev) const
{
    for (std::size_t t = 0; t < tenant_tags_.size(); ++t)
        if (tenant_tags_[t] == ev.tag)
            return t;
    panic("serve: arrival tag '" + ev.tag + "' has no TE tenant");
}

stats::SloAccumulator &
ServingSim::classSlo(std::size_t tenant, te::Substrate s)
{
    return class_slo_[tenant * 2 + (s == te::Substrate::Optical ? 1 : 0)];
}

const stats::SloAccumulator &
ServingSim::classSlo(std::size_t tenant, te::Substrate s) const
{
    return class_slo_[tenant * 2 + (s == te::Substrate::Optical ? 1 : 0)];
}

void
ServingSim::pump()
{
    // During a parallel window the queue is empty by construction
    // (windows only open then), so the single-loop pump would scan
    // nothing and return; skipping it outright keeps worker-thread
    // repair callbacks away from coordinator state.
    if (!pumping_ || windowed_) {
        // A repair/maintenance-release callback inside a tied-timestamp
        // drain wanted to pump; stepTied() replays it at the barrier.
        if (pumping_ && windowed_)
            repair_pump_pending_ = true;
        return;
    }
    while (!queue_.empty()) {
        const bool degraded = anyTrackDown();
        bool progressed = false;
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (!admissible(it->ev, degraded))
                continue; // held below the degraded-mode floor
            if (te_) {
                // A queued request's substrate is fixed at admission
                // (DHL); only the admit verdict is re-evaluated, so a
                // contention hold behaves exactly like the degraded
                // floor: skipped now, revisited on the next pump.
                core::RequestMeta meta;
                meta.priority = it->ev.priority;
                if (!te_->decide(tenantOf(it->ev), it->ev.bytes, meta)
                         .admit)
                    continue;
            }
            if (!tryStart(it->ev))
                return; // admissible work, no capacity: stop scanning
            queue_.erase(it);
            progressed = true;
            break;
        }
        if (!progressed)
            return; // everything queued is held by the floor
    }
}

//===========================================================================
// Request lifecycle
//===========================================================================

void
ServingSim::runTrip(const std::shared_ptr<Active> &a)
{
    core::DhlController &ctl = *tracks_[a->track].controller;
    ctl.open(a->cart, [this, a](core::Cart &, core::DockingStation &) {
        tracks_[a->track].controller->close(a->cart, [this, a](core::Cart &) {
            if (--a->trips_left > 0)
                runTrip(a);
            else
                finishRequest(*a);
        });
    });
}

void
ServingSim::finishRequest(const Active &a)
{
    const std::size_t stage = static_cast<std::size_t>(a.ev.stage);
    if (windowed_) {
        // Coordinator-deferred phase: touch shard-local state only
        // (the shard in-flight count) and log everything else — the
        // coordinator replays the log at the next barrier in
        // (time, dispatch-rank) order, returning the cart and running
        // the pump exactly where the serial loop would have.
        ShardPart &part = parts_[shard_of_[a.track]];
        const double when = simOf(a.track).now();
        part.log.push_back(ShardPart::Done{when, a.ev.stage,
                                           when - a.ev.at, a.ev.bytes,
                                           a.track, a.cart, a.rank});
        --part.in_flight;
        return;
    }
    const double latency = simOf(a.track).now() - a.ev.at;
    slo_[stage].complete(latency, a.ev.bytes);
    if (te_)
        classSlo(tenantOf(a.ev), te::Substrate::Dhl)
            .complete(latency, a.ev.bytes);
    ++served_;
    tracks_[a.track].pool.push_back(a.cart);
    --in_flight_;
    if (sharded())
        --parts_[shard_of_[a.track]].in_flight;
    pump();
}

//===========================================================================
// Checkpoint/restore
//===========================================================================

void
ServingSim::saveFingerprint(sim::SnapshotWriter &w) const
{
    sim::SnapshotScope<sim::SnapshotWriter> scope(w, "config");
    w.putU64("tracks", cfg_.tracks);
    w.putU64("seed", cfg_.seed);
    w.putDouble("epoch", cfg_.epoch);
    w.putU64("carts_per_track", cfg_.carts_per_track);
    w.putU64("max_pending", cfg_.max_pending);
    w.putString("policy", ops::to_string(cfg_.policy));
    w.putI64("min_priority_degraded", cfg_.min_priority_degraded);
    w.putBool("faults", cfg_.faults.enabled);
    w.putU64("maintenance_windows", cfg_.maintenance.windows.size());
    w.putBool("domains", cfg_.domains.enabled);
    w.putU64("des_shards", numShards());
    w.putBool("te", cfg_.te.enabled);
    if (cfg_.te.enabled) {
        sim::SnapshotScope<sim::SnapshotWriter> ts(w, "te");
        w.putString("mode", te::to_string(cfg_.te.mode));
        w.putDouble("period", cfg_.te.control_period);
        w.putDouble("small_bytes", cfg_.te.small_bytes);
        w.putDouble("optical_capacity", cfg_.te.optical_capacity);
        w.putDouble("dhl_capacity", cfg_.te.dhl_capacity);
        w.putString("route", cfg_.te.route);
        w.putDouble("headroom", cfg_.te.headroom);
        w.putDouble("multiplier", cfg_.te.usage_multiplier);
        w.putU64("history", cfg_.te.history);
        w.putI64("floor", cfg_.te.min_priority_contended);
    }
    w.putU64("stages", cfg_.stages.size());
    for (std::size_t i = 0; i < cfg_.stages.size(); ++i) {
        const workloads::StageSpec &s = cfg_.stages[i];
        std::string key("stage");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotWriter> ss(w, key);
        w.putString("name", s.name);
        w.putDouble("duration", s.duration);
        w.putDouble("start_rate", s.start_rate);
        w.putDouble("end_rate", s.end_rate);
        w.putU64("classes", s.mix.size());
        for (std::size_t c = 0; c < s.mix.size(); ++c) {
            const workloads::RequestClass &rc = s.mix[c];
            std::string ck("class");
            ck += std::to_string(c);
            sim::SnapshotScope<sim::SnapshotWriter> cs(w, ck);
            w.putString("tag", rc.tag);
            w.putDouble("weight", rc.weight);
            w.putDouble("median_bytes", rc.median_bytes);
            w.putDouble("sigma", rc.sigma);
            w.putI64("priority", rc.priority);
        }
    }
}

void
ServingSim::checkFingerprint(sim::SnapshotReader &r) const
{
    sim::SnapshotScope<sim::SnapshotReader> scope(r, "config");
    fatal_if(r.getU64("tracks") != cfg_.tracks ||
                 r.getU64("seed") != cfg_.seed ||
                 r.getDouble("epoch") != cfg_.epoch ||
                 r.getU64("carts_per_track") != cfg_.carts_per_track ||
                 r.getU64("max_pending") != cfg_.max_pending ||
                 r.getString("policy") != ops::to_string(cfg_.policy) ||
                 r.getI64("min_priority_degraded") !=
                     cfg_.min_priority_degraded ||
                 r.getBool("faults") != cfg_.faults.enabled ||
                 r.getU64("maintenance_windows") !=
                     cfg_.maintenance.windows.size() ||
                 r.getBool("domains") != cfg_.domains.enabled ||
                 r.getU64("des_shards") != numShards() ||
                 r.getBool("te") != cfg_.te.enabled ||
                 r.getU64("stages") != cfg_.stages.size(),
             "serving checkpoint belongs to a different configuration");
    if (cfg_.te.enabled) {
        sim::SnapshotScope<sim::SnapshotReader> ts(r, "te");
        fatal_if(r.getString("mode") != te::to_string(cfg_.te.mode) ||
                     r.getDouble("period") != cfg_.te.control_period ||
                     r.getDouble("small_bytes") != cfg_.te.small_bytes ||
                     r.getDouble("optical_capacity") !=
                         cfg_.te.optical_capacity ||
                     r.getDouble("dhl_capacity") != cfg_.te.dhl_capacity ||
                     r.getString("route") != cfg_.te.route ||
                     r.getDouble("headroom") != cfg_.te.headroom ||
                     r.getDouble("multiplier") !=
                         cfg_.te.usage_multiplier ||
                     r.getU64("history") != cfg_.te.history ||
                     r.getI64("floor") != cfg_.te.min_priority_contended,
                 "serving checkpoint TE configuration does not match");
    }
    for (std::size_t i = 0; i < cfg_.stages.size(); ++i) {
        const workloads::StageSpec &s = cfg_.stages[i];
        std::string key("stage");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotReader> ss(r, key);
        fatal_if(r.getString("name") != s.name ||
                     r.getDouble("duration") != s.duration ||
                     r.getDouble("start_rate") != s.start_rate ||
                     r.getDouble("end_rate") != s.end_rate ||
                     r.getU64("classes") != s.mix.size(),
                 "serving checkpoint stage profile does not match");
        for (std::size_t c = 0; c < s.mix.size(); ++c) {
            const workloads::RequestClass &rc = s.mix[c];
            std::string ck("class");
            ck += std::to_string(c);
            sim::SnapshotScope<sim::SnapshotReader> cs(r, ck);
            fatal_if(r.getString("tag") != rc.tag ||
                         r.getDouble("weight") != rc.weight ||
                         r.getDouble("median_bytes") != rc.median_bytes ||
                         r.getDouble("sigma") != rc.sigma ||
                         r.getI64("priority") != rc.priority,
                     "serving checkpoint traffic mix does not match");
        }
    }
}

void
ServingSim::checkpoint(std::ostream &os) const
{
    fatal_if(in_flight_ != 0,
             "serving checkpoint requires a drained epoch boundary");
    sim::SnapshotWriter w(os);
    saveFingerprint(w);

    {
        sim::SnapshotScope<sim::SnapshotWriter> scope(w, "serve");
        w.putU64("epochs", epochs_);
        w.putDouble("boundary", boundary_);
        w.putU64("rr_next", rr_next_);
        w.putU64("served", served_);
        w.putU64("queued", queue_.size());
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            const workloads::ArrivalEvent &ev = queue_[i].ev;
            std::string key("q");
            key += std::to_string(i);
            sim::SnapshotScope<sim::SnapshotWriter> qs(w, key);
            w.putDouble("at", ev.at);
            w.putDouble("bytes", ev.bytes);
            w.putString("tag", ev.tag);
            w.putI64("stage", ev.stage);
            w.putI64("priority", ev.priority);
        }
        for (std::size_t i = 0; i < slo_.size(); ++i) {
            const stats::SloAccumulator &s = slo_[i];
            std::string key("s");
            key += std::to_string(i);
            sim::SnapshotScope<sim::SnapshotWriter> ss(w, key);
            w.putU64("offered", s.offered());
            w.putU64("deferred", s.deferred());
            w.putU64("shed", s.shed());
            w.putDouble("bytes", s.bytesDelivered());
            w.putU64("samples", s.latencies().size());
            for (std::size_t j = 0; j < s.latencies().size(); ++j) {
                std::string lk("l");
                lk += std::to_string(j);
                w.putDouble(lk, s.latencies()[j]);
            }
        }
    }

    sim_.saveState(w);
    trace_.saveState(w);
    arrivals_->saveState(w);
    for (std::size_t s = 1; s < numShards(); ++s) {
        std::string key("shard");
        key += std::to_string(s);
        sim::SnapshotScope<sim::SnapshotWriter> ss(w, key);
        extra_sims_[s - 1]->saveState(w);
        extra_traces_[s - 1]->saveState(w);
    }
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        std::string key("t");
        key += std::to_string(t);
        sim::SnapshotScope<sim::SnapshotWriter> ts(w, key);
        tracks_[t].controller->saveState(w);
        tracks_[t].state->saveState(w);
        if (tracks_[t].injector)
            tracks_[t].injector->saveState(w);
        // Pool *order* matters: which cart serves a trip decides which
        // per-cart breakdown stream the trip consumes, so a restored
        // fleet must hand out carts in the identical sequence.
        w.putU64("pool", tracks_[t].pool.size());
        for (std::size_t i = 0; i < tracks_[t].pool.size(); ++i) {
            std::string pk("p");
            pk += std::to_string(i);
            w.putU64(pk, tracks_[t].pool[i]);
        }
    }
    if (maintenance_)
        maintenance_->saveState(w);
    if (plants_)
        plants_->saveState(w);
    if (te_) {
        // The drained boundary has zero active flows, so the FlowSim
        // itself holds no dynamic state worth keeping; the serve layer
        // checkpoints its own optical accumulators instead.
        sim::SnapshotScope<sim::SnapshotWriter> ts(w, "te");
        w.putDouble("optical_energy", optical_energy_);
        w.putU64("optical_served", optical_served_);
        w.putU64("downgrades", te_downgrades_);
        for (std::size_t i = 0; i < class_slo_.size(); ++i) {
            const stats::SloAccumulator &s = class_slo_[i];
            std::string key("c");
            key += std::to_string(i);
            sim::SnapshotScope<sim::SnapshotWriter> cs(w, key);
            w.putU64("offered", s.offered());
            w.putU64("deferred", s.deferred());
            w.putU64("shed", s.shed());
            w.putDouble("bytes", s.bytesDelivered());
            w.putU64("samples", s.latencies().size());
            for (std::size_t j = 0; j < s.latencies().size(); ++j) {
                std::string lk("l");
                lk += std::to_string(j);
                w.putDouble(lk, s.latencies()[j]);
            }
        }
        sim::SnapshotScope<sim::SnapshotWriter> ctl(w, "ctl");
        te_->saveState(w);
    }
    for (std::size_t s = 0; s < parts_.size(); ++s) {
        const ShardPart &part = parts_[s];
        if (part.maintenance) {
            std::string key("m");
            key += std::to_string(s);
            sim::SnapshotScope<sim::SnapshotWriter> ms(w, key);
            part.maintenance->saveState(w);
        }
        if (part.plants) {
            std::string key("p");
            key += std::to_string(s);
            sim::SnapshotScope<sim::SnapshotWriter> ps(w, key);
            part.plants->saveState(w);
        }
    }
}

void
ServingSim::restore(std::istream &is)
{
    fatal_if(epochs_ != 0 || sim_.now() != 0.0,
             "serving restore requires a freshly constructed fleet");
    sim::SnapshotReader r(is);
    checkFingerprint(r);

    // Empty the event queue: every constructor-scheduled event belongs
    // to a stoppable process, and Simulator::restoreState requires a
    // drained kernel before it rewinds the clock.
    for (TrackSystem &ts : tracks_)
        if (ts.injector)
            ts.injector->stop();
    if (maintenance_)
        maintenance_->stop();
    if (plants_)
        plants_->stop();
    for (ShardPart &part : parts_) {
        if (part.maintenance)
            part.maintenance->stop();
        if (part.plants)
            part.plants->stop();
    }
    if (te_)
        te_->stop();
    std::size_t pending = sim_.pendingEvents();
    for (const auto &es : extra_sims_)
        pending += es->pendingEvents();
    fatal_if(pending != 0,
             "serving restore found unexpected pending events");

    sim_.restoreState(r);
    trace_.restoreState(r);
    arrivals_->restoreState(r);
    for (std::size_t s = 1; s < numShards(); ++s) {
        std::string key("shard");
        key += std::to_string(s);
        sim::SnapshotScope<sim::SnapshotReader> ss(r, key);
        extra_sims_[s - 1]->restoreState(r);
        extra_traces_[s - 1]->restoreState(r);
    }
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        std::string key("t");
        key += std::to_string(t);
        sim::SnapshotScope<sim::SnapshotReader> ts(r, key);
        tracks_[t].controller->restoreState(r);
        tracks_[t].state->restoreState(r);
        if (tracks_[t].injector)
            tracks_[t].injector->restoreState(r);
        fatal_if(r.getU64("pool") != tracks_[t].pool.size(),
                 "serving restore: cart pool size does not match");
        for (std::size_t i = 0; i < tracks_[t].pool.size(); ++i) {
            std::string pk("p");
            pk += std::to_string(i);
            tracks_[t].pool[i] =
                static_cast<core::CartId>(r.getU64(pk));
        }
    }
    if (maintenance_)
        maintenance_->restoreState(r);
    if (plants_)
        plants_->restoreState(r);
    if (te_) {
        sim::SnapshotScope<sim::SnapshotReader> ts(r, "te");
        optical_energy_ = r.getDouble("optical_energy");
        optical_served_ = r.getU64("optical_served");
        te_downgrades_ = r.getU64("downgrades");
        for (std::size_t i = 0; i < class_slo_.size(); ++i) {
            std::string key("c");
            key += std::to_string(i);
            sim::SnapshotScope<sim::SnapshotReader> cs(r, key);
            const std::uint64_t samples = r.getU64("samples");
            std::vector<double> latencies;
            latencies.reserve(samples);
            for (std::uint64_t j = 0; j < samples; ++j) {
                std::string lk("l");
                lk += std::to_string(j);
                latencies.push_back(r.getDouble(lk));
            }
            class_slo_[i].restore(r.getU64("offered"),
                                  r.getU64("deferred"), r.getU64("shed"),
                                  r.getDouble("bytes"),
                                  std::move(latencies));
        }
        sim::SnapshotScope<sim::SnapshotReader> ctl(r, "ctl");
        te_->restoreState(r);
    }
    for (std::size_t s = 0; s < parts_.size(); ++s) {
        ShardPart &part = parts_[s];
        if (part.maintenance) {
            std::string key("m");
            key += std::to_string(s);
            sim::SnapshotScope<sim::SnapshotReader> ms(r, key);
            part.maintenance->restoreState(r);
        }
        if (part.plants) {
            std::string key("p");
            key += std::to_string(s);
            sim::SnapshotScope<sim::SnapshotReader> ps(r, key);
            part.plants->restoreState(r);
        }
    }

    sim::SnapshotScope<sim::SnapshotReader> scope(r, "serve");
    epochs_ = r.getU64("epochs");
    boundary_ = r.getDouble("boundary");
    rr_next_ = r.getU64("rr_next");
    served_ = r.getU64("served");
    queue_.clear();
    const std::uint64_t queued = r.getU64("queued");
    for (std::uint64_t i = 0; i < queued; ++i) {
        std::string key("q");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotReader> qs(r, key);
        workloads::ArrivalEvent ev;
        ev.at = r.getDouble("at");
        ev.bytes = r.getDouble("bytes");
        ev.tag = r.getString("tag");
        ev.stage = static_cast<int>(r.getI64("stage"));
        ev.priority = static_cast<int>(r.getI64("priority"));
        queue_.push_back(Queued{ev});
    }
    for (std::size_t i = 0; i < slo_.size(); ++i) {
        std::string key("s");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotReader> ss(r, key);
        const std::uint64_t samples = r.getU64("samples");
        std::vector<double> latencies;
        latencies.reserve(samples);
        for (std::uint64_t j = 0; j < samples; ++j) {
            std::string lk("l");
            lk += std::to_string(j);
            latencies.push_back(r.getDouble(lk));
        }
        slo_[i].restore(r.getU64("offered"), r.getU64("deferred"),
                        r.getU64("shed"), r.getDouble("bytes"),
                        std::move(latencies));
    }
}

//===========================================================================
// Measurement
//===========================================================================

const stats::SloAccumulator &
ServingSim::stageSlo(std::size_t stage) const
{
    fatal_if(stage >= slo_.size(), "stage index out of range");
    return slo_[stage];
}

double
ServingSim::stageAvailability(std::size_t stage) const
{
    fatal_if(stage >= slo_.size(), "stage index out of range");
    double start = 0.0;
    for (std::size_t i = 0; i < stage; ++i)
        start += cfg_.stages[i].duration;
    const double end =
        std::min(start + cfg_.stages[stage].duration, now());
    if (end <= start)
        return 1.0;
    double downtime = 0.0;
    for (const TrackSystem &ts : tracks_)
        downtime += ts.state->serviceDowntime(end) -
                    ts.state->serviceDowntime(start);
    return 1.0 - downtime / (static_cast<double>(tracks_.size()) *
                             (end - start));
}

std::vector<exp::StageSlo>
ServingSim::sloTable() const
{
    std::vector<exp::StageSlo> table;
    table.reserve(slo_.size());
    double start = 0.0;
    for (std::size_t i = 0; i < slo_.size(); ++i) {
        const stats::SloAccumulator &s = slo_[i];
        exp::StageSlo row;
        row.name = cfg_.stages[i].name;
        row.start = start;
        row.duration = cfg_.stages[i].duration;
        row.offered = s.offered();
        row.served = s.served();
        row.deferred = s.deferred();
        row.shed = s.shed();
        row.p50 = s.latencyPercentile(50.0);
        row.p99 = s.latencyPercentile(99.0);
        row.p999 = s.latencyPercentile(99.9);
        row.availability = stageAvailability(i);
        row.goodput = row.duration > 0.0
                          ? s.bytesDelivered() / row.duration
                          : 0.0;
        table.push_back(std::move(row));
        start += cfg_.stages[i].duration;
    }
    return table;
}

double
ServingSim::totalEnergy() const
{
    double e = optical_energy_;
    for (const TrackSystem &ts : tracks_)
        e += ts.controller->totalEnergy();
    return e;
}

const te::TeController &
ServingSim::teController() const
{
    fatal_if(!te_, "TE is not enabled on this serving fleet");
    return *te_;
}

std::vector<exp::ClassSlo>
ServingSim::teTable() const
{
    fatal_if(!te_, "TE is not enabled on this serving fleet");
    // Achieved throughput: delivered bytes over the elapsed makespan,
    // so a mode that drains its backlog slowly scores lower goodput
    // even when everything is eventually served.
    const double duration = sim_.now();
    std::vector<exp::ClassSlo> table;
    table.reserve(class_slo_.size());
    for (std::size_t t = 0; t < tenant_tags_.size(); ++t) {
        for (const te::Substrate s :
             {te::Substrate::Dhl, te::Substrate::Optical}) {
            const stats::SloAccumulator &acc = classSlo(t, s);
            exp::ClassSlo row;
            row.name = tenant_tags_[t];
            row.substrate = te::to_string(s);
            row.offered = acc.offered();
            row.served = acc.served();
            row.deferred = acc.deferred();
            row.shed = acc.shed();
            row.p50 = acc.latencyPercentile(50.0);
            row.p99 = acc.latencyPercentile(99.0);
            row.goodput =
                duration > 0.0 ? acc.bytesDelivered() / duration : 0.0;
            table.push_back(std::move(row));
        }
    }
    return table;
}

std::uint64_t
ServingSim::totalLaunches() const
{
    std::uint64_t n = 0;
    for (const TrackSystem &ts : tracks_)
        n += ts.controller->launches();
    return n;
}

std::uint64_t
ServingSim::totalShed() const
{
    std::uint64_t n = 0;
    for (const stats::SloAccumulator &s : slo_)
        n += s.shed();
    return n;
}

core::DhlController &
ServingSim::controller(std::size_t track)
{
    fatal_if(track >= tracks_.size(), "track index out of range");
    return *tracks_[track].controller;
}

faults::FaultState &
ServingSim::faultState(std::size_t track)
{
    fatal_if(track >= tracks_.size(), "track index out of range");
    return *tracks_[track].state;
}

void
ServingSim::dumpStats(std::ostream &os)
{
    serve_stats_.dump(os);
    sim_.statsGroup().dump(os);
    for (const auto &es : extra_sims_)
        es->statsGroup().dump(os);
    for (const TrackSystem &ts : tracks_) {
        ts.controller->statsGroup().dump(os);
        ts.controller->track().statsGroup().dump(os);
        if (ts.injector)
            ts.injector->statsGroup().dump(os);
    }
    if (maintenance_)
        maintenance_->statsGroup().dump(os);
    if (plants_)
        plants_->statsGroup().dump(os);
    if (te_) {
        te_->statsGroup().dump(os);
        optical_->statsGroup().dump(os);
    }
    for (const ShardPart &part : parts_) {
        if (part.maintenance)
            part.maintenance->statsGroup().dump(os);
        if (part.plants)
            part.plants->statsGroup().dump(os);
    }
}

} // namespace serve
} // namespace dhl
