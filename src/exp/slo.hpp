/**
 * @file
 * Per-stage SLO reporting for the open-loop serving mode.
 *
 * The serving layer (src/serve) measures each load-profile stage with a
 * stats::SloAccumulator; this header is the presentation contract both
 * consumers share — `dhl_cli serve` and bench/serving_study emit the
 * same headers and the same formatted rows, so a checkpoint-equivalence
 * check can diff their output byte for byte.  Kept free of serve-layer
 * types on purpose: serve fills in plain StageSlo values, exp formats
 * them.
 */

#ifndef DHL_EXP_SLO_HPP
#define DHL_EXP_SLO_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace dhl {
namespace exp {

/** The measured SLO outcome of one serving stage. */
struct StageSlo
{
    std::string name;          ///< Stage label.
    double start = 0.0;        ///< Stage start, s.
    double duration = 0.0;     ///< Stage length, s.
    std::uint64_t offered = 0; ///< Requests arriving in the stage.
    std::uint64_t served = 0;  ///< Requests completed (any time).
    std::uint64_t deferred = 0;///< Requests that waited in admission.
    std::uint64_t shed = 0;    ///< Requests dropped (queue full).
    double p50 = 0.0;          ///< Median open-loop latency, s.
    double p99 = 0.0;          ///< P99 open-loop latency, s.
    double p999 = 0.0;         ///< P999 open-loop latency, s.
    double availability = 1.0; ///< Mean per-track service availability.
    double goodput = 0.0;      ///< Delivered bytes / stage duration.
};

/** Table headers matching sloRow(). */
std::vector<std::string> sloHeaders();

/** One formatted table row per stage. */
std::vector<std::string> sloRow(const StageSlo &s);

/** Format a whole profile: one row per stage, in order. */
std::vector<std::vector<std::string>> sloRows(
    const std::vector<StageSlo> &stages);

/**
 * The measured outcome of one (traffic class, substrate) pair under
 * the TE controller — the per-substrate breakdown the hybrid split is
 * judged by.  Same presentation contract as StageSlo: serve fills in
 * plain values, exp formats them, so `dhl_cli serve --te` and
 * bench/hybrid_te_study emit byte-identical rows.
 */
struct ClassSlo
{
    std::string name;          ///< Traffic-class (tenant) tag.
    std::string substrate;     ///< "dhl" or "optical".
    std::uint64_t offered = 0; ///< Requests routed to this substrate.
    std::uint64_t served = 0;  ///< Requests completed.
    std::uint64_t deferred = 0;///< Requests held in admission.
    std::uint64_t shed = 0;    ///< Requests dropped (queue full).
    double p50 = 0.0;          ///< Median open-loop latency, s.
    double p99 = 0.0;          ///< P99 open-loop latency, s.
    double goodput = 0.0;      ///< Delivered bytes / profile duration.
};

/** Table headers matching classSloRow(). */
std::vector<std::string> classSloHeaders();

/** One formatted table row per (class, substrate). */
std::vector<std::string> classSloRow(const ClassSlo &c);

/** Format the whole breakdown, in row order. */
std::vector<std::vector<std::string>> classSloRows(
    const std::vector<ClassSlo> &classes);

} // namespace exp
} // namespace dhl

#endif // DHL_EXP_SLO_HPP
