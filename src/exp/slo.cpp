/**
 * @file
 * Implementation of the shared SLO-table formatting.
 */

#include "exp/slo.hpp"

#include "common/units.hpp"

namespace dhl {
namespace exp {

std::vector<std::string>
sloHeaders()
{
    return {"Stage",    "Offered", "Served", "Deferred",
            "Shed",     "P50",     "P99",    "P99.9",
            "Avail",    "Goodput"};
}

std::vector<std::string>
sloRow(const StageSlo &s)
{
    return {s.name,
            std::to_string(s.offered),
            std::to_string(s.served),
            std::to_string(s.deferred),
            std::to_string(s.shed),
            units::formatDuration(s.p50),
            units::formatDuration(s.p99),
            units::formatDuration(s.p999),
            units::formatSig(s.availability, 6),
            units::formatBandwidth(s.goodput)};
}

std::vector<std::vector<std::string>>
sloRows(const std::vector<StageSlo> &stages)
{
    std::vector<std::vector<std::string>> rows;
    rows.reserve(stages.size());
    for (const auto &s : stages)
        rows.push_back(sloRow(s));
    return rows;
}

} // namespace exp
} // namespace dhl
