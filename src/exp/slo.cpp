/**
 * @file
 * Implementation of the shared SLO-table formatting.
 */

#include "exp/slo.hpp"

#include "common/units.hpp"

namespace dhl {
namespace exp {

std::vector<std::string>
sloHeaders()
{
    return {"Stage",    "Offered", "Served", "Deferred",
            "Shed",     "P50",     "P99",    "P99.9",
            "Avail",    "Goodput"};
}

std::vector<std::string>
sloRow(const StageSlo &s)
{
    return {s.name,
            std::to_string(s.offered),
            std::to_string(s.served),
            std::to_string(s.deferred),
            std::to_string(s.shed),
            units::formatDuration(s.p50),
            units::formatDuration(s.p99),
            units::formatDuration(s.p999),
            units::formatSig(s.availability, 6),
            units::formatBandwidth(s.goodput)};
}

std::vector<std::vector<std::string>>
sloRows(const std::vector<StageSlo> &stages)
{
    std::vector<std::vector<std::string>> rows;
    rows.reserve(stages.size());
    for (const auto &s : stages)
        rows.push_back(sloRow(s));
    return rows;
}

std::vector<std::string>
classSloHeaders()
{
    return {"Class",    "Substrate", "Offered", "Served",
            "Deferred", "Shed",      "P50",     "P99",
            "Goodput"};
}

std::vector<std::string>
classSloRow(const ClassSlo &c)
{
    return {c.name,
            c.substrate,
            std::to_string(c.offered),
            std::to_string(c.served),
            std::to_string(c.deferred),
            std::to_string(c.shed),
            units::formatDuration(c.p50),
            units::formatDuration(c.p99),
            units::formatBandwidth(c.goodput)};
}

std::vector<std::vector<std::string>>
classSloRows(const std::vector<ClassSlo> &classes)
{
    std::vector<std::vector<std::string>> rows;
    rows.reserve(classes.size());
    for (const auto &c : classes)
        rows.push_back(classSloRow(c));
    return rows;
}

} // namespace exp
} // namespace dhl
