/**
 * @file
 * Implementation of the experiment-execution layer.
 */

#include "exp/experiment_runner.hpp"

#include <chrono>
#include <utility>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace dhl {
namespace exp {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    const auto delta = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(delta).count();
}

/** FNV-1a over the scenario name; stable across platforms. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : text) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

//===========================================================================
// Experiment
//===========================================================================

Scenario &
Experiment::add(std::string name, ScenarioFn fn, bool separator_after)
{
    fatal_if(!fn, "scenario '" + name + "' needs a body");
    scenarios_.push_back(
        Scenario{std::move(name), std::move(fn), separator_after});
    return scenarios_.back();
}

Scenario &
Experiment::add(Scenario scenario)
{
    fatal_if(!scenario.run,
             "scenario '" + scenario.name + "' needs a body");
    scenarios_.push_back(std::move(scenario));
    return scenarios_.back();
}

//===========================================================================
// ExperimentResult
//===========================================================================

ScenarioRows
ExperimentResult::rows() const
{
    ScenarioRows all;
    for (const auto &s : scenarios)
        all.insert(all.end(), s.rows.begin(), s.rows.end());
    return all;
}

TextTable
ExperimentResult::table(std::vector<std::string> headers,
                        bool separators) const
{
    TextTable t(std::move(headers));
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        for (const auto &row : scenarios[i].rows)
            t.addRow(row);
        if (separators && scenarios[i].separator_after &&
            i + 1 < scenarios.size()) {
            t.addSeparator();
        }
    }
    return t;
}

TextTable
ExperimentResult::timingTable() const
{
    TextTable t({"Scenario", "Rows", "Wall (ms)"});
    for (const auto &s : scenarios) {
        t.addRow({s.name, std::to_string(s.rows.size()),
                  cell(units::toMilliseconds(s.wall_seconds), 4)});
    }
    return t;
}

//===========================================================================
// ExperimentRunner
//===========================================================================

struct ExperimentRunner::Impl
{
    explicit Impl(std::size_t jobs) : pool(jobs) {}
    ThreadPool pool;
};

ExperimentRunner::ExperimentRunner(RunOptions opts)
    : opts_(opts), impl_(std::make_unique<Impl>(opts.jobs))
{}

ExperimentRunner::~ExperimentRunner() = default;

std::size_t
ExperimentRunner::jobs() const
{
    return impl_->pool.size();
}

ExperimentResult
ExperimentRunner::run(const Experiment &experiment) const
{
    const auto &scenarios = experiment.scenarios();

    ExperimentResult result;
    result.name = experiment.name();
    result.jobs = jobs();
    result.scenarios.resize(scenarios.size());

    const auto start = std::chrono::steady_clock::now();
    impl_->pool.parallelFor(scenarios.size(), [&](std::size_t i) {
        const Scenario &scenario = scenarios[i];
        const std::uint64_t seed =
            scenarioSeed(opts_.seed, i, scenario.name);
        ScenarioContext ctx{i, seed, Rng(seed)};

        ScenarioOutcome &out = result.scenarios[i];
        out.name = scenario.name;
        out.separator_after = scenario.separator_after;
        const auto s0 = std::chrono::steady_clock::now();
        out.rows = scenario.run(ctx);
        out.wall_seconds = secondsSince(s0);
    });
    result.wall_seconds = secondsSince(start);
    return result;
}

std::uint64_t
scenarioSeed(std::uint64_t experiment_seed, std::size_t index,
             const std::string &name)
{
    return deriveSeed(experiment_seed,
                      fnv1a(name) ^ static_cast<std::uint64_t>(index));
}

} // namespace exp
} // namespace dhl
