/**
 * @file
 * The experiment-execution layer.
 *
 * The paper's evaluation is a grid of independent model runs: the
 * Figure 6 power sweep (one series per communication scheme), the
 * Table VI design-space enumeration (one row per configuration), the
 * Table VII iso-power / iso-time comparisons (one row per route), the
 * §V-E crossover frontier (one group per track length).  An
 * `Experiment` declares such a grid as a vector of named `Scenario`
 * closures over immutable configs; the `ExperimentRunner` evaluates
 * them across a `ThreadPool` and collects per-scenario wall time and
 * result rows, rendered through `common/table`.
 *
 * Determinism contract: each scenario receives a seed derived from the
 * experiment seed and the scenario's (index, name) via `deriveSeed`
 * from `common/random`, never from run order; result rows are stored
 * in declaration order regardless of completion order.  A parallel run
 * therefore renders byte-identical tables to a serial (`jobs = 1`) run.
 * Individual scenarios stay single-threaded — parallelism is strictly
 * across scenarios.
 */

#ifndef DHL_EXP_EXPERIMENT_RUNNER_HPP
#define DHL_EXP_EXPERIMENT_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/table.hpp"

namespace dhl {
namespace exp {

/** Per-scenario execution context handed to the closure. */
struct ScenarioContext
{
    std::size_t index;  ///< Position in the experiment's scenario list.
    std::uint64_t seed; ///< Deterministic per-scenario seed.
    Rng rng;            ///< Seeded with @c seed; private to the scenario.
};

/** Result rows of one scenario, ready for a TextTable. */
using ScenarioRows = std::vector<std::vector<std::string>>;

/** A scenario body: pure function of its captures and the context. */
using ScenarioFn = std::function<ScenarioRows(ScenarioContext &)>;

/** One named, independent unit of work. */
struct Scenario
{
    std::string name;
    ScenarioFn run;
    /** Render a separator after this scenario's rows (row grouping). */
    bool separator_after = false;
};

/** A named list of scenarios forming one result table. */
class Experiment
{
  public:
    explicit Experiment(std::string name) : name_(std::move(name)) {}

    /** Append a scenario; returns it for optional tweaks. */
    Scenario &add(std::string name, ScenarioFn fn,
                  bool separator_after = false);

    /** Append a prebuilt scenario (e.g. from a scenario factory). */
    Scenario &add(Scenario scenario);

    const std::string &name() const { return name_; }
    const std::vector<Scenario> &scenarios() const { return scenarios_; }
    std::size_t size() const { return scenarios_.size(); }

  private:
    std::string name_;
    std::vector<Scenario> scenarios_;
};

/** What one scenario produced. */
struct ScenarioOutcome
{
    std::string name;
    ScenarioRows rows;
    double wall_seconds = 0.0; ///< Wall-clock of this scenario alone.
    bool separator_after = false;
};

/** The collected experiment: outcomes in declaration order. */
struct ExperimentResult
{
    std::string name;
    std::vector<ScenarioOutcome> scenarios;
    double wall_seconds = 0.0; ///< Wall-clock of the whole grid.
    std::size_t jobs = 1;      ///< Parallelism actually used.

    /** All result rows concatenated in declaration order. */
    ScenarioRows rows() const;

    /**
     * Render the result table.  Deterministic: contains no timings,
     * only scenario rows (plus separators when @p separators is set).
     */
    TextTable table(std::vector<std::string> headers,
                    bool separators = true) const;

    /** Render the per-scenario wall-time table (not deterministic). */
    TextTable timingTable() const;
};

/** Execution policy for a runner. */
struct RunOptions
{
    /** Parallelism: 0 = hardware concurrency, 1 = exact serial. */
    std::size_t jobs = 0;

    /** Experiment seed from which per-scenario seeds are derived. */
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/**
 * Evaluates experiments over a ThreadPool.  The pool is owned by the
 * runner and reused across run() calls; a runner is reusable but not
 * itself thread-safe (use one runner per driving thread).
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunOptions opts = {});
    ~ExperimentRunner();

    ExperimentRunner(const ExperimentRunner &) = delete;
    ExperimentRunner &operator=(const ExperimentRunner &) = delete;

    const RunOptions &options() const { return opts_; }

    /** Parallelism in use (options().jobs resolved against hardware). */
    std::size_t jobs() const;

    /**
     * Run every scenario; blocks until all finish.  The first
     * exception thrown by any scenario is rethrown here after the
     * remaining scenarios have been abandoned.
     */
    ExperimentResult run(const Experiment &experiment) const;

  private:
    struct Impl;

    RunOptions opts_;
    std::unique_ptr<Impl> impl_;
};

/**
 * The per-scenario seed: mixes the experiment seed with the scenario's
 * index and an FNV-1a hash of its name through common/random's
 * deriveSeed, so seeds survive scenario reordering-by-insertion and
 * never depend on execution order.
 */
std::uint64_t scenarioSeed(std::uint64_t experiment_seed,
                           std::size_t index, const std::string &name);

} // namespace exp
} // namespace dhl

#endif // DHL_EXP_EXPERIMENT_RUNNER_HPP
