/**
 * @file
 * Per-series demand estimation for the traffic-engineering controller.
 *
 * A DemandEstimator tracks the observed usage rate of each series (a
 * tenant flow-group) over a bounded history window and projects demand
 * as `multiplier * max(history)` — the heyp-agents usage-estimator
 * shape: usage understates demand whenever the allocator is already
 * throttling, so the controller head-rooms the observation rather than
 * trusting it.  Taking the window max (not the mean) makes the
 * estimate sticky across short quiet control epochs, which keeps the
 * allocation from oscillating on bursty arrivals.
 *
 * All state is plain data and snapshots exactly (sim/snapshot), so a
 * restored controller re-estimates identical demands.
 */

#ifndef DHL_TE_DEMAND_HPP
#define DHL_TE_DEMAND_HPP

#include <cstddef>
#include <vector>

#include "sim/snapshot.hpp"

namespace dhl {
namespace te {

/** Demand-estimation knobs. */
struct DemandConfig
{
    /** Retained usage observations per series (>= 1). */
    std::size_t history = 8;

    /** Usage -> demand projection factor (> 0). */
    double multiplier = 1.1;
};

/** Bounded-history usage -> demand estimator over a fixed series set. */
class DemandEstimator
{
  public:
    /** @param cfg     Estimation knobs (validated here).
     *  @param series  Number of tracked series (fixed for life). */
    DemandEstimator(const DemandConfig &cfg, std::size_t series);

    std::size_t numSeries() const { return history_.size(); }

    /** Record one usage observation (bytes/s, >= 0) for @p series. */
    void record(std::size_t series, double usage);

    /** Current demand estimate: multiplier * max over the history
     *  window; 0 while the window is empty. */
    double estimate(std::size_t series) const;

    /** Snapshot support (exact: doubles as bit patterns). */
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r);

  private:
    // dhl-analyze: transient(cfg_): constructor input; restore
    // validates the checkpointed ring sizes against it
    DemandConfig cfg_;
    /** Per-series ring of the last `cfg_.history` observations. */
    std::vector<std::vector<double>> history_;
    /** Per-series next ring slot to overwrite. */
    std::vector<std::size_t> next_;
};

} // namespace te
} // namespace dhl

#endif // DHL_TE_DEMAND_HPP
