#include "te/controller.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace te {

const char *to_string(Substrate s)
{
    switch (s) {
    case Substrate::Dhl: return "dhl";
    case Substrate::Optical: return "optical";
    }
    panic("unknown substrate");
}

const char *to_string(TeMode m)
{
    switch (m) {
    case TeMode::DhlOnly: return "dhl-only";
    case TeMode::OpticalOnly: return "optical-only";
    case TeMode::Hybrid: return "hybrid";
    }
    panic("unknown TE mode");
}

TeMode parseTeMode(const std::string &s)
{
    if (s == "dhl-only")
        return TeMode::DhlOnly;
    if (s == "optical-only")
        return TeMode::OpticalOnly;
    if (s == "hybrid")
        return TeMode::Hybrid;
    fatal("unknown TE mode '" + s +
          "' (expected dhl-only, optical-only or hybrid)");
}

void validate(const TeConfig &cfg)
{
    if (!cfg.enabled)
        return;
    fatal_if(cfg.control_period <= 0.0, "te: control period must be > 0");
    fatal_if(cfg.horizon < 0.0, "te: horizon must be >= 0");
    fatal_if(cfg.small_bytes <= 0.0, "te: small_bytes must be > 0");
    fatal_if(cfg.optical_capacity <= 0.0,
             "te: optical capacity must be > 0");
    fatal_if(cfg.dhl_capacity < 0.0, "te: DHL capacity must be >= 0");
    fatal_if(cfg.headroom <= 0.0 || cfg.headroom > 1.0,
             "te: headroom must be in (0, 1]");
    fatal_if(cfg.usage_multiplier <= 0.0,
             "te: usage multiplier must be > 0");
    fatal_if(cfg.history < 1, "te: history must be >= 1");
    fatal_if(cfg.route.empty(), "te: route must be named");
}

TeController::TeController(sim::Simulator &sim, const TeConfig &cfg,
                           std::vector<TenantSpec> tenants)
    : SimObject(sim, "te"),
      cfg_(cfg),
      tenants_(std::move(tenants)),
      estimator_({cfg.history, cfg.usage_multiplier},
                 tenants_.size() * kGroupsPerTenant),
      pending_bytes_(tenants_.size() * kGroupsPerTenant, 0.0),
      demand_dhl_(tenants_.size(), 0.0),
      demand_optical_(tenants_.size(), 0.0),
      alloc_dhl_(tenants_.size(), 0.0),
      alloc_optical_(tenants_.size(), 0.0),
      contended_(tenants_.size(), false),
      stat_ticks_(statsGroup().addCounter("ticks",
                                          "control epochs executed"))
{
    validate(cfg_);
    fatal_if(tenants_.empty(), "te: at least one tenant required");
    for (const auto &t : tenants_) {
        fatal_if(t.name.empty(), "te: tenant names must be non-empty");
        fatal_if(t.weight < 0.0, "te: tenant weight must be >= 0");
    }
}

const std::string &TeController::tenantName(std::size_t t) const
{
    fatal_if(t >= tenants_.size(), "te: tenant index out of range");
    return tenants_[t].name;
}

std::size_t TeController::tenantIndex(const std::string &name) const
{
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        if (tenants_[t].name == name)
            return t;
    }
    fatal("te: unknown tenant '" + name + "'");
}

void TeController::start()
{
    fatal_if(tick_pending_, "te: controller already started");
    armTick(now() + cfg_.control_period);
}

void TeController::stop()
{
    if (tick_pending_) {
        simulator().cancel(tick_handle_);
        tick_pending_ = false;
    }
}

void TeController::armTick(double when)
{
    if (when >= cfg_.horizon)
        return; // Let the queue drain once the workload is over.
    tick_when_ = when;
    tick_pending_ = true;
    tick_handle_ = schedule(when - now(), [this] { tick(); });
}

void TeController::recordUsage(std::size_t tenant, double bytes)
{
    fatal_if(tenant >= tenants_.size(), "te: tenant index out of range");
    fatal_if(bytes < 0.0, "te: usage bytes must be >= 0");
    const std::size_t g =
        bytes <= cfg_.small_bytes ? kGroupSmall : kGroupBulk;
    pending_bytes_[series(tenant, g)] += bytes;
}

void TeController::tick()
{
    tick_pending_ = false;
    ++ticks_;
    ++stat_ticks_;

    // Observed usage over the closing control epoch -> estimator.
    for (std::size_t s = 0; s < pending_bytes_.size(); ++s) {
        estimator_.record(s, pending_bytes_[s] / cfg_.control_period);
        pending_bytes_[s] = 0.0;
    }

    // Project per-substrate demand by mode: Hybrid sends small flows
    // optical and bulk to the carts; the pure modes send everything to
    // one side (the other side's allocator sees zero demand).
    std::vector<TenantDemand> dhl(tenants_.size());
    std::vector<TenantDemand> optical(tenants_.size());
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        const double small = estimator_.estimate(series(t, kGroupSmall));
        const double bulk = estimator_.estimate(series(t, kGroupBulk));
        double d_dhl = 0.0;
        double d_opt = 0.0;
        switch (cfg_.mode) {
        case TeMode::DhlOnly:
            d_dhl = small + bulk;
            break;
        case TeMode::OpticalOnly:
            d_opt = small + bulk;
            break;
        case TeMode::Hybrid:
            d_dhl = bulk;
            d_opt = small;
            break;
        }
        dhl[t] = {tenants_[t].name, tenants_[t].weight, {d_dhl}};
        optical[t] = {tenants_[t].name, tenants_[t].weight, {d_opt}};
        demand_dhl_[t] = d_dhl;
        demand_optical_[t] = d_opt;
    }

    const auto a_dhl = hierarchicalAllocate(dhl, cfg_.dhl_capacity);
    const double planned = cfg_.headroom * cfg_.optical_capacity;
    const auto a_opt = hierarchicalAllocate(optical, planned);

    double optical_demand_total = 0.0;
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        alloc_dhl_[t] = a_dhl[t].total;
        alloc_optical_[t] = a_opt[t].total;
        // Exact contention test: the water-filler assigns satisfied
        // tenants their demand *exactly*, so `<` means throttled.
        contended_[t] = alloc_dhl_[t] < demand_dhl_[t];
        optical_demand_total += demand_optical_[t];
    }
    // Downgrades are admissible while the optical plan has spare
    // capacity beyond estimated demand.
    downgrade_ok_ = optical_demand_total < planned;

    armTick(tick_when_ + cfg_.control_period);
    if (on_tick_)
        on_tick_();
}

TeDecision TeController::decide(std::size_t tenant, double bytes,
                                const core::RequestMeta &meta) const
{
    fatal_if(tenant >= tenants_.size(), "te: tenant index out of range");
    switch (cfg_.mode) {
    case TeMode::DhlOnly:
        return {Substrate::Dhl, true, false};
    case TeMode::OpticalOnly:
        return {Substrate::Optical, true, false};
    case TeMode::Hybrid:
        break;
    }
    if (bytes <= cfg_.small_bytes)
        return {Substrate::Optical, true, false};
    // The contention branch applies only while a future tick is pending:
    // a hold is a promise that a later control epoch will revise the
    // verdict, so once the loop is past its horizon everything admits
    // and the driver's drain terminates.
    if (tick_pending_ && contended_[tenant] &&
        meta.priority < cfg_.min_priority_contended) {
        if (downgrade_ok_)
            return {Substrate::Optical, true, true};
        return {Substrate::Dhl, false, false}; // Hold until contention
                                               // or headroom changes.
    }
    return {Substrate::Dhl, true, false};
}

double TeController::demand(std::size_t tenant, Substrate s) const
{
    fatal_if(tenant >= tenants_.size(), "te: tenant index out of range");
    return s == Substrate::Dhl ? demand_dhl_[tenant]
                               : demand_optical_[tenant];
}

double TeController::allocation(std::size_t tenant, Substrate s) const
{
    fatal_if(tenant >= tenants_.size(), "te: tenant index out of range");
    return s == Substrate::Dhl ? alloc_dhl_[tenant]
                               : alloc_optical_[tenant];
}

bool TeController::contended(std::size_t tenant) const
{
    fatal_if(tenant >= tenants_.size(), "te: tenant index out of range");
    return contended_[tenant];
}

void TeController::saveState(sim::SnapshotWriter &w) const
{
    w.putU64("ticks", ticks_);
    w.putBool("tick_pending", tick_pending_);
    w.putDouble("tick_when", tick_when_);
    w.putBool("downgrade_ok", downgrade_ok_);
    for (std::size_t s = 0; s < pending_bytes_.size(); ++s)
        w.putDouble("p" + std::to_string(s), pending_bytes_[s]);
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        sim::SnapshotScope scope(w, "t" + std::to_string(t));
        w.putDouble("dd", demand_dhl_[t]);
        w.putDouble("do", demand_optical_[t]);
        w.putDouble("ad", alloc_dhl_[t]);
        w.putDouble("ao", alloc_optical_[t]);
        w.putBool("contended", contended_[t]);
    }
    {
        sim::SnapshotScope scope(w, "estimator");
        estimator_.saveState(w);
    }
}

void TeController::restoreState(sim::SnapshotReader &r)
{
    fatal_if(tick_pending_, "te: stop() before restoreState()");
    ticks_ = r.getU64("ticks");
    stat_ticks_.reset();
    stat_ticks_.increment(ticks_);
    downgrade_ok_ = r.getBool("downgrade_ok");
    for (std::size_t s = 0; s < pending_bytes_.size(); ++s)
        pending_bytes_[s] = r.getDouble("p" + std::to_string(s));
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        sim::SnapshotScope scope(r, "t" + std::to_string(t));
        demand_dhl_[t] = r.getDouble("dd");
        demand_optical_[t] = r.getDouble("do");
        alloc_dhl_[t] = r.getDouble("ad");
        alloc_optical_[t] = r.getDouble("ao");
        contended_[t] = r.getBool("contended");
    }
    {
        sim::SnapshotScope scope(r, "estimator");
        estimator_.restoreState(r);
    }
    if (r.getBool("tick_pending"))
        armTick(r.getDouble("tick_when"));
}

} // namespace te
} // namespace dhl
