#include "te/demand.hpp"

#include <algorithm>
#include <string>

#include "common/logging.hpp"

namespace dhl {
namespace te {

DemandEstimator::DemandEstimator(const DemandConfig &cfg, std::size_t series)
    : cfg_(cfg), history_(series), next_(series, 0)
{
    fatal_if(cfg_.history < 1, "te: demand history must be >= 1");
    fatal_if(cfg_.multiplier <= 0.0, "te: demand multiplier must be > 0");
}

void DemandEstimator::record(std::size_t series, double usage)
{
    fatal_if(series >= history_.size(), "te: demand series out of range");
    fatal_if(usage < 0.0, "te: usage rate must be >= 0");
    auto &ring = history_[series];
    if (ring.size() < cfg_.history) {
        ring.push_back(usage);
    } else {
        ring[next_[series]] = usage;
        next_[series] = (next_[series] + 1) % cfg_.history;
    }
}

double DemandEstimator::estimate(std::size_t series) const
{
    fatal_if(series >= history_.size(), "te: demand series out of range");
    const auto &ring = history_[series];
    if (ring.empty())
        return 0.0;
    return cfg_.multiplier * *std::max_element(ring.begin(), ring.end());
}

void DemandEstimator::saveState(sim::SnapshotWriter &w) const
{
    for (std::size_t s = 0; s < history_.size(); ++s) {
        sim::SnapshotScope scope(w, "d" + std::to_string(s));
        w.putU64("n", history_[s].size());
        w.putU64("next", next_[s]);
        for (std::size_t i = 0; i < history_[s].size(); ++i)
            w.putDouble("h" + std::to_string(i), history_[s][i]);
    }
}

void DemandEstimator::restoreState(sim::SnapshotReader &r)
{
    for (std::size_t s = 0; s < history_.size(); ++s) {
        sim::SnapshotScope scope(r, "d" + std::to_string(s));
        const std::uint64_t n = r.getU64("n");
        fatal_if(n > cfg_.history, "te: snapshot history exceeds window");
        history_[s].assign(n, 0.0);
        next_[s] = r.getU64("next");
        for (std::size_t i = 0; i < n; ++i)
            history_[s][i] = r.getDouble("h" + std::to_string(i));
    }
}

} // namespace te
} // namespace dhl
