/**
 * @file
 * The cluster-level traffic-engineering controller: periodic demand
 * estimation + hierarchical max-min allocation + per-request substrate
 * decisions.
 *
 * The paper's core claim is a split verdict: DHL carts win on bulk
 * transfers, the optical fat-tree stays preferable for small and
 * interactive flows.  This controller operationalises that verdict.
 * On every control epoch it (1) converts the bytes each tenant offered
 * since the last tick into a usage rate, (2) projects per-flow-group
 * demand through a bounded-history estimator (te/demand), (3) runs the
 * two-level water-filling allocator (te/fairness) independently per
 * substrate, and (4) publishes two facts per tenant for the admission
 * path to consult synchronously: is the tenant's DHL share contended,
 * and does the optical substrate have headroom for downgrades.
 *
 * decide() is a pure function of that published state (const, no
 * counters): drivers call it from admission scans that may re-evaluate
 * a queued request many times, so all effect accounting (downgrade
 * counts, deferrals) lives with the driver that acts on the decision.
 *
 * Determinism contract: ticks are scheduled at exact multiples of the
 * control period, bounded by `horizon` (mirroring FaultInjector) so
 * end-of-run drains terminate; all controller state snapshots exactly
 * (absolute next-tick time + estimator rings + published allocation),
 * so a restored run re-decides identically.
 */

#ifndef DHL_TE_CONTROLLER_HPP
#define DHL_TE_CONTROLLER_HPP

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "dhl/scheduler.hpp"
#include "sim/sim_object.hpp"
#include "te/demand.hpp"
#include "te/fairness.hpp"

namespace dhl {
namespace te {

/** The two transfer substrates a request can ride. */
enum class Substrate
{
    Dhl,    ///< Cart fleet (bulk-optimised).
    Optical ///< Fat-tree flow network (latency-optimised).
};

const char *to_string(Substrate s);

/** Split policy for the controller. */
enum class TeMode
{
    DhlOnly,     ///< Everything on carts (the repo's historical mode).
    OpticalOnly, ///< Everything on the fat-tree.
    Hybrid       ///< Small -> optical, bulk -> DHL, downgrades under
                 ///< contention.
};

const char *to_string(TeMode m);

/** Parse "dhl-only" / "optical-only" / "hybrid"; fatal() otherwise. */
TeMode parseTeMode(const std::string &s);

/** Traffic-engineering configuration (embedded by serve and ops). */
struct TeConfig
{
    /** Master switch; disabled leaves the host driver byte-identical
     *  to its pre-TE behaviour. */
    bool enabled = false;

    TeMode mode = TeMode::Hybrid;

    /** Control-epoch period, s (> 0). */
    double control_period = 60.0;

    /** No tick is scheduled at or after this time, so the event queue
     *  drains once the workload ends (drivers default it to the
     *  profile length). */
    double horizon = std::numeric_limits<double>::infinity();

    /** Hybrid class threshold: requests <= this many bytes are
     *  "small" and prefer the optical substrate (> 0). */
    double small_bytes = units::gigabytes(8.0);

    /** Optical substrate capacity, bytes/s (> 0 when enabled). */
    double optical_capacity = units::gigabitsPerSecond(100.0);

    /** DHL substrate capacity, bytes/s; 0 = derived by the driver
     *  from the fleet's analytical launch bandwidth. */
    double dhl_capacity = 0.0;

    /** Optical route (network/route catalog) charged per-byte energy
     *  for offloaded traffic. */
    std::string route = "C";

    /** Fraction of optical capacity the allocator may plan to
     *  (0, 1]; the rest absorbs estimation error and downgrades. */
    double headroom = 0.9;

    /** Usage -> demand projection factor (> 0). */
    double usage_multiplier = 1.1;

    /** Demand-estimator history window (>= 1). */
    std::size_t history = 8;

    /** Bulk requests with priority >= this ride DHL even under
     *  contention; lower priorities are downgraded or deferred. */
    int min_priority_contended = 1;
};

/** Validate; fatal() on nonsense.  No-op when disabled. */
void validate(const TeConfig &cfg);

/** One tenant the controller allocates for. */
struct TenantSpec
{
    std::string name;
    double weight = 1.0;
};

/** The controller's verdict for one request. */
struct TeDecision
{
    Substrate substrate = Substrate::Dhl;
    /** False = hold the request in the admission queue (contended DHL
     *  share and no optical headroom to downgrade into). */
    bool admit = true;
    /** True when a bulk request was pushed to optical by contention. */
    bool downgraded = false;
};

/**
 * The periodic TE control loop as a SimObject.  Construct, then
 * start(); the owner must stop() before checkpoint-restore re-arming
 * (restoreState re-schedules the saved pending tick).
 */
class TeController : public sim::SimObject
{
  public:
    static constexpr std::size_t kGroupSmall = 0;
    static constexpr std::size_t kGroupBulk = 1;
    static constexpr std::size_t kGroupsPerTenant = 2;

    TeController(sim::Simulator &sim, const TeConfig &cfg,
                 std::vector<TenantSpec> tenants);

    const TeConfig &config() const { return cfg_; }
    std::size_t numTenants() const { return tenants_.size(); }
    const std::string &tenantName(std::size_t t) const;

    /** Resolve a tenant by name; fatal() on an unknown tenant. */
    std::size_t tenantIndex(const std::string &name) const;

    /** Schedule the first control tick (one period out). */
    void start();

    /** Cancel the pending tick; safe to call repeatedly. */
    void stop();

    /** Invoked after every control tick (drivers re-pump admission
     *  queues here: a tick can clear contention). */
    void onTick(std::function<void()> fn) { on_tick_ = std::move(fn); }

    /** Account @p bytes of offered load for @p tenant (class chosen by
     *  size against small_bytes). */
    void recordUsage(std::size_t tenant, double bytes);

    /** The substrate verdict for one request; pure w.r.t. controller
     *  state (all effect accounting lives with the caller). */
    TeDecision decide(std::size_t tenant, double bytes,
                      const core::RequestMeta &meta) const;

    //------------------------------------------------------------------
    // Published control state (stable between ticks; tables/tests).
    //------------------------------------------------------------------

    std::uint64_t ticks() const { return ticks_; }
    double demand(std::size_t tenant, Substrate s) const;
    double allocation(std::size_t tenant, Substrate s) const;
    bool contended(std::size_t tenant) const;
    bool downgradeOk() const { return downgrade_ok_; }

    /** Snapshot support (drained-boundary contract). */
    void saveState(sim::SnapshotWriter &w) const override;
    void restoreState(sim::SnapshotReader &r) override;

  private:
    void armTick(double when);
    void tick();
    std::size_t series(std::size_t tenant, std::size_t group) const
    {
        return tenant * kGroupsPerTenant + group;
    }

    // dhl-analyze: transient(cfg_): constructor input; restore
    // validates the checkpoint against the same TeConfig
    TeConfig cfg_;
    std::vector<TenantSpec> tenants_;
    DemandEstimator estimator_;

    /** Bytes offered since the last tick, per (tenant, group). */
    std::vector<double> pending_bytes_;

    // Published by tick(), consumed by decide().
    std::vector<double> demand_dhl_;
    std::vector<double> demand_optical_;
    std::vector<double> alloc_dhl_;
    std::vector<double> alloc_optical_;
    std::vector<bool> contended_;
    bool downgrade_ok_ = true;

    std::uint64_t ticks_ = 0;
    bool tick_pending_ = false;
    // dhl-analyze: transient(tick_when_, tick_handle_): the pending
    // tick is re-armed on restore via armTick(saved "tick_when")
    double tick_when_ = 0.0;
    sim::EventHandle tick_handle_{};
    std::function<void()> on_tick_;

    // dhl-analyze: transient(stat_ticks_): host-side stats tally,
    // restarts from the boundary
    stats::Counter &stat_ticks_;
};

} // namespace te
} // namespace dhl

#endif // DHL_TE_CONTROLLER_HPP
