/**
 * @file
 * Exact max-min fair allocation kernels for the traffic-engineering
 * layer.
 *
 * The core primitive is progressive filling ("water-filling"): raise a
 * common fill level until an entry's demand is met, freeze it at its
 * demand, redistribute the freed capacity over the rest, repeat.  The
 * loop below runs the freeze cascade explicitly, so every satisfied
 * entry is assigned its demand *exactly* (no epsilon accumulated from
 * repeated division), which is what lets callers test contention with
 * `alloc < demand` instead of a tolerance.  Iteration is index-ordered
 * throughout — the result is a pure function of (demands, weights,
 * capacity), independent of container history or platform.
 *
 * hierarchicalAllocate() composes two levels: a weighted fill over
 * tenants (level 1), then an unweighted fill of each tenant's
 * flow-groups within its tenant share (level 2) — the heyp-agents
 * cluster-allocator shape, with replicant-opera's fairshare1d as the
 * per-level kernel.
 */

#ifndef DHL_TE_FAIRNESS_HPP
#define DHL_TE_FAIRNESS_HPP

#include <string>
#include <vector>

namespace dhl {
namespace te {

/**
 * Max-min fair share of @p capacity over @p demands (all >= 0,
 * capacity >= 0).  Entries whose demand can be met get exactly their
 * demand; the rest split the remainder evenly.  Returns one allocation
 * per demand; fatal() on negative inputs.
 */
std::vector<double> waterFill(const std::vector<double> &demands,
                              double capacity);

/**
 * Weighted max-min fair share: unfrozen entry i receives
 * level * weights[i].  A zero-weight entry is frozen at 0 regardless
 * of demand (it owns no share of the bottleneck).  Sizes must match;
 * fatal() on negative demands, weights or capacity.
 */
std::vector<double> waterFillWeighted(const std::vector<double> &demands,
                                      const std::vector<double> &weights,
                                      double capacity);

/** One tenant's demand, broken into flow-groups. */
struct TenantDemand
{
    std::string name;
    double weight = 1.0;
    /** Per-flow-group demands, bytes/s (>= 0 each). */
    std::vector<double> groups;
};

/** One tenant's allocation, mirroring TenantDemand::groups. */
struct TenantAllocation
{
    double total = 0.0;
    std::vector<double> groups;
};

/**
 * Two-level hierarchical max-min fairness: a weighted fill over tenant
 * aggregate demands divides @p capacity into tenant shares, then each
 * tenant's flow-groups split that share with an unweighted fill.  The
 * composition keeps both levels' invariants: no tenant exceeds its
 * fair share, and within a tenant no group starves while another is
 * over-served.
 */
std::vector<TenantAllocation>
hierarchicalAllocate(const std::vector<TenantDemand> &tenants,
                     double capacity);

} // namespace te
} // namespace dhl

#endif // DHL_TE_FAIRNESS_HPP
