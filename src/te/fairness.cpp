#include "te/fairness.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace te {

namespace {

/**
 * The shared progressive-filling loop.  @p weights may be empty
 * (unweighted: every entry weighs 1).  Frozen entries hold their final
 * allocation; active ones are raised together until the next freeze or
 * until capacity runs out.
 */
std::vector<double> fill(const std::vector<double> &demands,
                         const std::vector<double> *weights,
                         double capacity)
{
    fatal_if(capacity < 0.0, "waterFill: capacity must be >= 0");
    const std::size_t n = demands.size();
    std::vector<double> alloc(n, 0.0);
    std::vector<bool> frozen(n, false);

    auto weightOf = [&](std::size_t i) {
        return weights ? (*weights)[i] : 1.0;
    };

    double remaining = capacity;
    std::size_t active = 0;
    double active_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        fatal_if(demands[i] < 0.0, "waterFill: demands must be >= 0");
        fatal_if(weightOf(i) < 0.0, "waterFill: weights must be >= 0");
        if (demands[i] == 0.0 || weightOf(i) == 0.0) {
            frozen[i] = true; // alloc stays 0: nothing asked / no share.
        } else {
            ++active;
            active_weight += weightOf(i);
        }
    }

    while (active > 0) {
        const double level = remaining <= 0.0
                                 ? 0.0
                                 : remaining / active_weight;
        // Freeze every active entry whose demand fits under the level —
        // assigned its demand *exactly*, not level * weight.
        bool froze = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (frozen[i])
                continue;
            if (demands[i] <= level * weightOf(i)) {
                alloc[i] = demands[i];
                remaining -= demands[i];
                frozen[i] = true;
                --active;
                active_weight -= weightOf(i);
                froze = true;
            }
        }
        if (!froze) {
            // Capacity is the bottleneck: split what is left by weight.
            for (std::size_t i = 0; i < n; ++i) {
                if (!frozen[i])
                    alloc[i] = level * weightOf(i);
            }
            break;
        }
    }
    return alloc;
}

} // namespace

std::vector<double> waterFill(const std::vector<double> &demands,
                              double capacity)
{
    return fill(demands, nullptr, capacity);
}

std::vector<double> waterFillWeighted(const std::vector<double> &demands,
                                      const std::vector<double> &weights,
                                      double capacity)
{
    fatal_if(demands.size() != weights.size(),
             "waterFillWeighted: demands/weights size mismatch");
    return fill(demands, &weights, capacity);
}

std::vector<TenantAllocation>
hierarchicalAllocate(const std::vector<TenantDemand> &tenants,
                     double capacity)
{
    std::vector<double> totals(tenants.size(), 0.0);
    std::vector<double> weights(tenants.size(), 0.0);
    for (std::size_t t = 0; t < tenants.size(); ++t) {
        for (double g : tenants[t].groups) {
            fatal_if(g < 0.0, "hierarchicalAllocate: demands must be >= 0");
            totals[t] += g;
        }
        weights[t] = tenants[t].weight;
    }

    const std::vector<double> shares =
        waterFillWeighted(totals, weights, capacity);

    std::vector<TenantAllocation> out(tenants.size());
    for (std::size_t t = 0; t < tenants.size(); ++t) {
        out[t].total = shares[t];
        out[t].groups = waterFill(tenants[t].groups, shares[t]);
    }
    return out;
}

} // namespace te
} // namespace dhl
