/**
 * @file
 * Monte-Carlo capacity planner: search the (tracks, carts, plants)
 * lattice for the cheapest deployment whose SLO attainment over the
 * sampled demand scenarios meets a target quantile.
 *
 * Every lattice point is scored against the *same* deterministic
 * scenario stream (common random numbers, see scenario.hpp), in
 * batches through the SoA evaluator, with streaming aggregation — a
 * QuantileSketch for the latency distribution and counters for SLO
 * attainment — so memory stays O(1) in the scenario count.  A
 * bootstrap over the attainment counts yields a 95 % CI.  Lattice
 * points run as scenarios of an exp::ExperimentRunner grid: reports
 * land in lattice order and a parallel plan is byte-identical to a
 * serial one.
 */

#ifndef DHL_PLAN_PLANNER_HPP
#define DHL_PLAN_PLANNER_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "plan/batch_eval.hpp"
#include "plan/scenario.hpp"

namespace dhl {
namespace plan {

/** The planner's search space and execution policy. */
struct PlannerConfig
{
    /** Model assumptions shared by every lattice point. */
    PlanAssumptions assumptions{};

    /** Demand distributions the scenario stream is drawn from. */
    ScenarioDistributions demand{};

    //------------------------------------------------------------------
    // The (tracks, carts, plants) lattice
    //------------------------------------------------------------------

    std::size_t tracks_min = 1;
    std::size_t tracks_max = 6;
    std::size_t carts_min = 2;
    std::size_t carts_max = 12;
    std::size_t carts_step = 2;

    /** Plants sweep from the minimum able to evacuate the tracks
     *  (ceil(tracks / tracks_per_plant)) to minimum + spare_plants_max:
     *  spares only matter through the availability derate. */
    std::size_t spare_plants_max = 1;

    //------------------------------------------------------------------
    // Monte-Carlo controls
    //------------------------------------------------------------------

    /** Scenarios per lattice point (the common random-number stream). */
    std::size_t scenarios = 4096;

    /** Scenario batch size for the SoA evaluator. */
    std::size_t batch = 1024;

    /** Bootstrap resamples behind the attainment CI. */
    std::size_t bootstrap = 200;

    /** Latency-sketch bins; range is [0, latency_clamp()]. */
    std::size_t sketch_bins = 2048;

    /** Run a DES cross-check of the winner (see DesValidation). */
    bool validate_des = false;

    /** Loaded trips per track for the DES cross-check. */
    std::size_t des_trips_per_track = 16;

    //------------------------------------------------------------------
    // Execution
    //------------------------------------------------------------------

    /** Lattice parallelism (ExperimentRunner jobs; 0 = hardware). */
    std::size_t jobs = 1;

    /** Root seed: scenario stream + per-design bootstrap streams. */
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;

    /**
     * Saturated scenarios have infinite latency; the sketch stores
     * min(latency, clamp) so its range stays finite.  Any quantile
     * reported *at* the clamp means "saturated", and attainment
     * accounting is unaffected (infinity never meets the SLO).
     */
    double latencyClamp() const { return 10.0 * assumptions.slo_latency; }
};

/** Validate a planner configuration; fatal() on nonsense. */
void validate(const PlannerConfig &cfg);

/** One scored lattice point. */
struct DesignReport
{
    DesignConstants constants;

    /** Fraction of scenarios meeting the latency SLO. */
    double attainment = 0.0;

    /** Bootstrap 95 % CI on the attainment. */
    double attainment_lo = 0.0;
    double attainment_hi = 0.0;

    /** Latency quantiles over the scenario stream, s (clamped at
     *  PlannerConfig::latencyClamp() — see there). */
    double latency_p50 = 0.0;
    double latency_slo_q = 0.0; ///< At the target quantile.

    double mean_utilisation = 0.0;
    double mean_energy_day = 0.0; ///< J per day, fleet-wide.

    /** attainment >= target_quantile (and the design is feasible). */
    bool meets_target = false;
};

/** Result of the optional DES cross-check of the winning design. */
struct DesValidation
{
    bool ran = false;

    /** The pipelined per-track launch-rate bound the planner hoisted
     *  (1 / launch period), 1/s. */
    double analytical_rate = 0.0;

    /** Launch rate the event-driven fleet actually sustained, 1/s
     *  per track. */
    double des_rate = 0.0;

    /** des_rate / analytical_rate (~1 when the closed form holds). */
    double ratio = 0.0;
};

/** The planner's full answer. */
struct PlanResult
{
    /** Every lattice point, in deterministic lattice order
     *  (tracks, then carts, then plants ascending). */
    std::vector<DesignReport> reports;

    /** Index into reports of the cheapest design meeting the target,
     *  or -1 when none does. */
    std::ptrdiff_t winner = -1;

    /** Scenarios scored per design. */
    std::size_t scenarios = 0;

    DesValidation des;

    bool hasWinner() const { return winner >= 0; }
    const DesignReport &winnerReport() const;
};

/**
 * The planner.  plan() is const and reusable; parallelism is across
 * lattice points only, so results are independent of `jobs`.
 */
class CapacityPlanner
{
  public:
    explicit CapacityPlanner(const PlannerConfig &cfg);

    const PlannerConfig &config() const { return cfg_; }

    /** Enumerate the lattice in report order (exposed for tests). */
    std::vector<DesignPoint> lattice() const;

    /** Score the lattice and pick the winner. */
    PlanResult plan() const;

  private:
    PlannerConfig cfg_;
};

} // namespace plan
} // namespace dhl

#endif // DHL_PLAN_PLANNER_HPP
