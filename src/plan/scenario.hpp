/**
 * @file
 * Demand-scenario sampling for Monte-Carlo capacity planning.
 *
 * The paper sizes a DHL deployment from single point estimates; the
 * question a production operator asks — "how many tracks, carts and
 * vacuum plants for N million users at a 99.9 % SLO?" — needs
 * thousands of sampled demand scenarios.  A ScenarioSampler draws
 * correlated scenarios (user count, per-user demand, diurnal peak
 * factor, tenant mix, request-size mix) from configurable
 * distributions.
 *
 * Determinism contract: scenario #i is a pure function of (seed, i)
 * via deriveSeed — never of call order, batch boundaries, or which
 * worker thread asks.  Every design point in the planner lattice
 * therefore scores the *same* scenario stream (common random
 * numbers), and a parallel scan is byte-identical to a serial one.
 */

#ifndef DHL_PLAN_SCENARIO_HPP
#define DHL_PLAN_SCENARIO_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "common/units.hpp"

namespace dhl {
namespace plan {

/** One sampled demand scenario (the AoS view, for tests and I/O). */
struct Scenario
{
    double users;              ///< Active users served by the fleet.
    double bytes_per_user_day; ///< Mean demand per user per day, B.
    double peak_factor;        ///< Diurnal peak / daily mean (>= 1).
    double bulk_share;         ///< Fraction of bytes from bulk tenants.
    double request_bytes;      ///< Interactive request size, B.
};

/**
 * The demand distributions a planning run samples from.  Medians and
 * shape parameters rather than means: user count, per-user demand and
 * request size are log-normal (heavy-tailed, strictly positive), the
 * diurnal peak factor is uniform on a range but correlated with the
 * user count through a shared latent normal (crowded days peak
 * harder), and the bulk share is uniform on its range.
 */
struct ScenarioDistributions
{
    double users_median = 2.0e6;     ///< Log-normal median user count.
    double users_sigma = 0.35;       ///< Log-normal shape of users.
    double bytes_per_user_day_median = units::gigabytes(2.0); ///< B.
    double bytes_sigma = 0.4;        ///< Log-normal shape of demand.
    double peak_min = 1.2;           ///< Peak-factor range floor.
    double peak_max = 3.0;           ///< Peak-factor range ceiling.
    double peak_user_corr = 0.5;     ///< Corr(users, peak) in [-1, 1].
    double bulk_share_min = 0.3;     ///< Bulk-tenant byte share floor.
    double bulk_share_max = 0.7;     ///< Bulk-tenant byte share ceiling.
    double request_bytes_median = units::gigabytes(64.0); ///< B.
    double request_sigma = 0.6;      ///< Log-normal shape of requests.
};

/** Validate a distribution set; fatal() on nonsense. */
void validate(const ScenarioDistributions &dist);

/**
 * A structure-of-arrays batch of scenarios: one contiguous array per
 * field so the batched evaluator streams each column linearly
 * (DESIGN.md §15).  All arrays share one length.
 */
struct ScenarioBatch
{
    std::vector<double> users;
    std::vector<double> bytes_per_user_day;
    std::vector<double> peak_factor;
    std::vector<double> bulk_share;
    std::vector<double> request_bytes;

    std::size_t size() const { return users.size(); }
    void resize(std::size_t n);

    /** Gather scenario @p i back into the AoS view. */
    Scenario row(std::size_t i) const;
};

/**
 * Draws the deterministic scenario stream.  Stateless between calls:
 * at(i) opens a fresh Rng on deriveSeed(seed, i), so any subset of the
 * stream can be materialised in any order on any thread.
 */
class ScenarioSampler
{
  public:
    ScenarioSampler(const ScenarioDistributions &dist,
                    std::uint64_t seed);

    const ScenarioDistributions &distributions() const { return dist_; }
    std::uint64_t seed() const { return seed_; }

    /** Scenario #index of the stream. */
    Scenario at(std::uint64_t index) const;

    /** Fill @p out with scenarios [first, first + n) in SoA form. */
    void fill(std::uint64_t first, std::size_t n,
              ScenarioBatch &out) const;

  private:
    ScenarioDistributions dist_;
    std::uint64_t seed_;
};

} // namespace plan
} // namespace dhl

#endif // DHL_PLAN_SCENARIO_HPP
