/**
 * @file
 * Implementation of the batched design-point evaluator.
 */

#include "plan/batch_eval.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "cost/cost_model.hpp"
#include "dhl/analytical.hpp"

namespace dhl {
namespace plan {

void
validate(const PlanAssumptions &a)
{
    core::validate(a.dhl);
    fatal_if(!(a.slo_latency > 0.0), "slo_latency must be positive");
    fatal_if(a.target_quantile <= 0.0 || a.target_quantile >= 1.0,
             "target_quantile must be in (0, 1)");
    fatal_if(a.tracks_per_plant == 0,
             "tracks_per_plant must be at least 1");
    fatal_if(!(a.plant_mtbf_hours > 0.0), "plant_mtbf_hours must be > 0");
    fatal_if(a.plant_mttr_hours < 0.0, "plant_mttr_hours must be >= 0");
    fatal_if(a.plant_capex < 0.0, "plant_capex must be >= 0");
    fatal_if(a.cart_capex < 0.0, "cart_capex must be >= 0");
    fatal_if(a.plant_power < 0.0, "plant_power must be >= 0");
}

double
plantCapacityFactor(std::size_t required, std::size_t built,
                    double unavailability)
{
    panic_if(required == 0, "plantCapacityFactor: required must be >= 1");
    fatal_if(unavailability < 0.0 || unavailability > 1.0,
             "plant unavailability must be in [0, 1]");
    if (built == 0)
        return 0.0;

    // E[min(K, required)] for K ~ Binomial(built, 1 - u), evaluated by
    // direct summation: the lattice never builds more than a handful of
    // plants, so the exact sum beats any approximation.
    const double up = 1.0 - unavailability;
    double pmf = std::pow(unavailability, static_cast<double>(built));
    double expect = 0.0;
    for (std::size_t k = 0; k <= built; ++k) {
        if (k > 0) {
            // Binomial recurrence: pmf(k) from pmf(k - 1).
            pmf *= static_cast<double>(built - k + 1) /
                   static_cast<double>(k) * up / unavailability;
        }
        const double capped = static_cast<double>(std::min(k, required));
        expect += pmf * capped;
    }
    // unavailability == 0 degenerates the recurrence (0/0); handle it
    // exactly: every plant is always up.
    if (unavailability == 0.0)
        expect = static_cast<double>(std::min(built, required));
    return expect / static_cast<double>(required);
}

DesignConstants
designConstants(const PlanAssumptions &a, const DesignPoint &d)
{
    validate(a);
    fatal_if(d.tracks == 0, "a design needs at least one track");
    fatal_if(d.carts_per_track == 0,
             "a design needs at least one cart per track");

    const core::AnalyticalModel model(a.dhl);
    const core::LaunchMetrics m = model.launch();

    DesignConstants c;
    c.design = d;
    c.cart_capacity = m.capacity.value();
    c.trip_time = m.trip_time.value();
    c.launch_energy = m.energy.value();
    c.read_per_byte = model.cartReadTime().value() / c.cart_capacity;

    // Pipelined launch period: bounded below by the convoy headway and
    // by the endpoint turnaround spread over the docking stations
    // (undock + dock per cart).  The cart pool caps sustained rate at
    // carts / round-trip independently of pipelining depth.
    const double period =
        std::max(a.dhl.headway,
                 2.0 * a.dhl.dock_time /
                     static_cast<double>(a.dhl.docking_stations));
    const double pool_rate = static_cast<double>(d.carts_per_track) /
                             (2.0 * c.trip_time);
    c.track_launch_rate = std::min(1.0 / period, pool_rate);

    const std::size_t required =
        (d.tracks + a.tracks_per_plant - 1) / a.tracks_per_plant;
    const double unavailability =
        a.plant_mttr_hours / (a.plant_mtbf_hours + a.plant_mttr_hours);
    c.plant_factor = plantCapacityFactor(required, d.plants, unavailability);
    c.feasible = d.plants >= required;

    c.fleet_launch_rate = static_cast<double>(d.tracks) *
                          c.track_launch_rate * c.plant_factor;

    const cost::CostModel cost_model;
    c.capex = static_cast<double>(d.tracks) *
                  cost_model.totalCost(a.dhl.track_length, a.dhl.max_speed) +
              static_cast<double>(d.plants) * a.plant_capex +
              static_cast<double>(d.tracks * d.carts_per_track) *
                  a.cart_capex;
    c.hotel_power = static_cast<double>(d.plants) * a.plant_power;
    return c;
}

void
EvalBatch::resize(std::size_t n)
{
    utilisation.resize(n);
    latency.resize(n);
    energy_day.resize(n);
    meets_slo.resize(n);
}

ScenarioOutcome
evaluateScalar(const PlanAssumptions &a, const DesignPoint &d,
               const Scenario &s)
{
    // Deliberately re-derives the constants per call: this is the
    // paper-artefact evaluation pattern the batched path amortises.
    const DesignConstants c = designConstants(a, d);
    return scenarioKernel(c, s.users, s.bytes_per_user_day, s.peak_factor,
                          s.bulk_share, s.request_bytes, a.slo_latency);
}

void
evaluateBatch(const DesignConstants &c, const ScenarioBatch &in,
              double slo_latency, EvalBatch &out)
{
    const std::size_t n = in.size();
    out.resize(n);
    const double *users = in.users.data();
    const double *bytes = in.bytes_per_user_day.data();
    const double *peak = in.peak_factor.data();
    const double *bulk = in.bulk_share.data();
    const double *req = in.request_bytes.data();
    for (std::size_t i = 0; i < n; ++i) {
        const ScenarioOutcome o = scenarioKernel(
            c, users[i], bytes[i], peak[i], bulk[i], req[i], slo_latency);
        out.utilisation[i] = o.utilisation;
        out.latency[i] = o.latency;
        out.energy_day[i] = o.energy_day;
        out.meets_slo[i] = o.meets_slo ? 1 : 0;
    }
}

} // namespace plan
} // namespace dhl
