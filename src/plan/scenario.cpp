/**
 * @file
 * Implementation of the demand-scenario sampler.
 */

#include "plan/scenario.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dhl {
namespace plan {

void
validate(const ScenarioDistributions &dist)
{
    fatal_if(!(dist.users_median > 0.0),
             "users_median must be positive");
    fatal_if(dist.users_sigma < 0.0, "users_sigma must be >= 0");
    fatal_if(!(dist.bytes_per_user_day_median > 0.0),
             "bytes_per_user_day_median must be positive");
    fatal_if(dist.bytes_sigma < 0.0, "bytes_sigma must be >= 0");
    fatal_if(!(dist.peak_min >= 1.0),
             "peak_min must be >= 1 (the peak cannot undercut the mean)");
    fatal_if(!(dist.peak_max >= dist.peak_min),
             "peak_max must be >= peak_min");
    fatal_if(dist.peak_user_corr < -1.0 || dist.peak_user_corr > 1.0,
             "peak_user_corr must be in [-1, 1]");
    fatal_if(dist.bulk_share_min < 0.0 || dist.bulk_share_max > 1.0 ||
                 dist.bulk_share_max < dist.bulk_share_min,
             "bulk share range must satisfy 0 <= min <= max <= 1");
    fatal_if(!(dist.request_bytes_median > 0.0),
             "request_bytes_median must be positive");
    fatal_if(dist.request_sigma < 0.0, "request_sigma must be >= 0");
}

void
ScenarioBatch::resize(std::size_t n)
{
    users.resize(n);
    bytes_per_user_day.resize(n);
    peak_factor.resize(n);
    bulk_share.resize(n);
    request_bytes.resize(n);
}

Scenario
ScenarioBatch::row(std::size_t i) const
{
    panic_if(i >= size(), "ScenarioBatch row out of range");
    return Scenario{users[i], bytes_per_user_day[i], peak_factor[i],
                    bulk_share[i], request_bytes[i]};
}

ScenarioSampler::ScenarioSampler(const ScenarioDistributions &dist,
                                 std::uint64_t seed)
    : dist_(dist), seed_(seed)
{
    validate(dist_);
}

namespace {

/** The standard normal CDF, mapping a latent normal to a uniform. */
double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

} // namespace

Scenario
ScenarioSampler::at(std::uint64_t index) const
{
    // A private stream per scenario index: the draw sequence below is
    // fixed, so scenario #i is identical no matter which thread, batch
    // or design point materialises it.
    Rng rng(deriveSeed(seed_, index));

    Scenario s{};
    const double z_users = rng.normal();
    s.users = dist_.users_median * std::exp(dist_.users_sigma * z_users);
    s.bytes_per_user_day =
        dist_.bytes_per_user_day_median *
        std::exp(dist_.bytes_sigma * rng.normal());

    // Gaussian-copula correlation with the user draw: busier days peak
    // harder (or softer, for negative correlation).
    const double rho = dist_.peak_user_corr;
    const double z_peak = rho * z_users +
                          std::sqrt(1.0 - rho * rho) * rng.normal();
    s.peak_factor = dist_.peak_min +
                    normalCdf(z_peak) * (dist_.peak_max - dist_.peak_min);

    s.bulk_share =
        rng.uniform(dist_.bulk_share_min, dist_.bulk_share_max);
    s.request_bytes = dist_.request_bytes_median *
                      std::exp(dist_.request_sigma * rng.normal());
    return s;
}

void
ScenarioSampler::fill(std::uint64_t first, std::size_t n,
                      ScenarioBatch &out) const
{
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Scenario s = at(first + i);
        out.users[i] = s.users;
        out.bytes_per_user_day[i] = s.bytes_per_user_day;
        out.peak_factor[i] = s.peak_factor;
        out.bulk_share[i] = s.bulk_share;
        out.request_bytes[i] = s.request_bytes;
    }
}

} // namespace plan
} // namespace dhl
