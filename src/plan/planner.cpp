/**
 * @file
 * Implementation of the Monte-Carlo capacity planner.
 */

#include "plan/planner.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "dhl/simulation.hpp"
#include "exp/experiment_runner.hpp"

namespace dhl {
namespace plan {

void
validate(const PlannerConfig &cfg)
{
    validate(cfg.assumptions);
    validate(cfg.demand);
    fatal_if(cfg.tracks_min == 0, "tracks_min must be >= 1");
    fatal_if(cfg.tracks_max < cfg.tracks_min,
             "tracks_max must be >= tracks_min");
    fatal_if(cfg.carts_min == 0, "carts_min must be >= 1");
    fatal_if(cfg.carts_max < cfg.carts_min,
             "carts_max must be >= carts_min");
    fatal_if(cfg.carts_step == 0, "carts_step must be >= 1");
    fatal_if(cfg.scenarios == 0, "scenarios must be >= 1");
    fatal_if(cfg.batch == 0, "batch must be >= 1");
    fatal_if(cfg.bootstrap == 0, "bootstrap must be >= 1");
    fatal_if(cfg.sketch_bins == 0, "sketch_bins must be >= 1");
    fatal_if(cfg.des_trips_per_track == 0,
             "des_trips_per_track must be >= 1");
}

const DesignReport &
PlanResult::winnerReport() const
{
    fatal_if(winner < 0, "PlanResult has no winner");
    return reports[static_cast<std::size_t>(winner)];
}

CapacityPlanner::CapacityPlanner(const PlannerConfig &cfg) : cfg_(cfg)
{
    validate(cfg_);
}

std::vector<DesignPoint>
CapacityPlanner::lattice() const
{
    std::vector<DesignPoint> points;
    for (std::size_t t = cfg_.tracks_min; t <= cfg_.tracks_max; ++t) {
        const std::size_t required =
            (t + cfg_.assumptions.tracks_per_plant - 1) /
            cfg_.assumptions.tracks_per_plant;
        for (std::size_t c = cfg_.carts_min; c <= cfg_.carts_max;
             c += cfg_.carts_step) {
            for (std::size_t p = required;
                 p <= required + cfg_.spare_plants_max; ++p) {
                points.push_back(DesignPoint{t, c, p});
            }
        }
    }
    return points;
}

namespace {

/** Score one lattice point against the shared scenario stream. */
DesignReport
scoreDesign(const PlannerConfig &cfg, const ScenarioSampler &sampler,
            const DesignPoint &d, Rng &bootstrap_rng)
{
    DesignReport r;
    r.constants = designConstants(cfg.assumptions, d);

    const double clamp = cfg.latencyClamp();
    stats::QuantileSketch sketch(0.0, clamp, cfg.sketch_bins);
    std::uint64_t met = 0;
    double util_sum = 0.0;
    double energy_sum = 0.0;

    ScenarioBatch in;
    EvalBatch out;
    for (std::uint64_t first = 0; first < cfg.scenarios;
         first += cfg.batch) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(cfg.batch, cfg.scenarios - first));
        sampler.fill(first, n, in);
        evaluateBatch(r.constants, in, cfg.assumptions.slo_latency, out);
        for (std::size_t i = 0; i < n; ++i) {
            sketch.sample(std::min(out.latency[i], clamp));
            met += out.meets_slo[i];
            util_sum += std::min(out.utilisation[i], 1.0);
            energy_sum += out.energy_day[i];
        }
    }

    const auto n = static_cast<double>(cfg.scenarios);
    r.attainment = static_cast<double>(met) / n;
    r.latency_p50 = sketch.quantile(50.0);
    r.latency_slo_q =
        sketch.quantile(100.0 * cfg.assumptions.target_quantile);
    r.mean_utilisation = util_sum / n;
    r.mean_energy_day = energy_sum / n;
    r.meets_target = r.constants.feasible &&
                     r.attainment >= cfg.assumptions.target_quantile;

    // Percentile bootstrap on the attainment: the per-scenario SLO
    // outcome is Bernoulli, so a resample of the dataset reduces to a
    // Binomial(n, attainment) draw — O(bootstrap) memory, counts only.
    std::vector<double> resampled(cfg.bootstrap);
    for (std::size_t b = 0; b < cfg.bootstrap; ++b) {
        std::uint64_t hits = 0;
        for (std::size_t i = 0; i < cfg.scenarios; ++i)
            hits += bootstrap_rng.uniform() < r.attainment ? 1 : 0;
        resampled[b] = static_cast<double>(hits) / n;
    }
    r.attainment_lo = stats::percentile(resampled, 2.5);
    r.attainment_hi = stats::percentile(resampled, 97.5);
    return r;
}

/** The DES cross-check: replay the winner's per-track launch stream
 *  as a pipelined bulk transfer on one simulated track and compare
 *  the sustained launch rate against the closed-form bound the
 *  planner hoisted.  The fleet rate is tracks * track rate by
 *  construction, so one track is the whole validation surface. */
DesValidation
validateWinner(const PlannerConfig &cfg, const DesignReport &winner)
{
    // The hoisted launch-rate bound models back-to-back launches at
    // the headway/station period; only dual-track semantics sustain
    // that in the DES (a single tube drains on direction reversal).
    core::DhlConfig dhl = cfg.assumptions.dhl;
    dhl.track_mode = core::TrackMode::DualTrack;

    const double period =
        std::max(dhl.headway,
                 2.0 * dhl.dock_time /
                     static_cast<double>(dhl.docking_stations));

    core::DhlSimulation track(dhl, deriveSeed(cfg.seed, 0xde5ull));
    const double bytes = static_cast<double>(cfg.des_trips_per_track) *
                         winner.constants.cart_capacity;
    core::BulkRunOptions opts;
    opts.pipelined = true;
    const core::BulkRunResult res = track.runBulkTransfer(bytes, opts);

    DesValidation v;
    v.ran = true;
    v.analytical_rate = 1.0 / period;
    // Launches are one-way and every loaded trip returns, so the
    // sustained launch rate halves the launch count.
    v.des_rate = static_cast<double>(res.launches) /
                 (2.0 * res.total_time);
    v.ratio = v.des_rate / v.analytical_rate;
    return v;
}

} // namespace

PlanResult
CapacityPlanner::plan() const
{
    const std::vector<DesignPoint> points = lattice();
    const ScenarioSampler sampler(cfg_.demand, cfg_.seed);

    PlanResult result;
    result.scenarios = cfg_.scenarios;
    result.reports.resize(points.size());

    // One ExperimentRunner scenario per lattice point, writing its
    // report into a preallocated slot (disjoint writes, no locking).
    // The bootstrap uses ctx.rng — seeded from (experiment seed,
    // index, name), never from execution order — so a parallel plan
    // is byte-identical to a serial one.
    exp::Experiment grid("capacity_plan");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const DesignPoint d = points[i];
        DesignReport *slot = &result.reports[i];
        std::string name = "t";
        name += std::to_string(d.tracks);
        name += ".c";
        name += std::to_string(d.carts_per_track);
        name += ".p";
        name += std::to_string(d.plants);
        grid.add(name, [this, &sampler, d, slot](exp::ScenarioContext &ctx) {
            *slot = scoreDesign(cfg_, sampler, d, ctx.rng);
            return exp::ScenarioRows{};
        });
    }

    exp::RunOptions run_opts;
    run_opts.jobs = cfg_.jobs;
    run_opts.seed = cfg_.seed;
    const exp::ExperimentRunner runner(run_opts);
    runner.run(grid);

    // Cheapest design meeting the target; lattice order breaks ties.
    for (std::size_t i = 0; i < result.reports.size(); ++i) {
        const DesignReport &r = result.reports[i];
        if (!r.meets_target)
            continue;
        if (result.winner < 0 ||
            r.constants.capex < result.winnerReport().constants.capex) {
            result.winner = static_cast<std::ptrdiff_t>(i);
        }
    }

    if (cfg_.validate_des && result.hasWinner())
        result.des = validateWinner(cfg_, result.winnerReport());
    return result;
}

} // namespace plan
} // namespace dhl
