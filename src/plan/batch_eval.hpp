/**
 * @file
 * Batched structure-of-arrays evaluation of the analytical DHL models
 * for capacity planning.
 *
 * A planning run scores a (tracks, carts, plants) lattice against
 * thousands of sampled demand scenarios.  Evaluating scenario-by-
 * scenario through core::AnalyticalModel re-derives the launch
 * metrics, cost model and plant-availability factor on every call —
 * exactly what the paper-artefact design-space scans do, at roughly
 * 3.6 M evals/s.  The batched path hoists everything that depends
 * only on the design point into DesignConstants once, then streams
 * the scenario columns (SoA) through a branch-light arithmetic
 * kernel.
 *
 * Identity contract: evaluateBatch() produces bit-identical outputs
 * to evaluateScalar() for every scenario — both funnel through the
 * same inline kernel, the batched path merely amortises the constant
 * derivation.  BM_BatchedEval gates on this before timing either
 * path, and test_plan pins it.
 */

#ifndef DHL_PLAN_BATCH_EVAL_HPP
#define DHL_PLAN_BATCH_EVAL_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/units.hpp"
#include "dhl/config.hpp"
#include "plan/scenario.hpp"

namespace dhl {
namespace plan {

/** One candidate deployment: a point of the planner's search lattice. */
struct DesignPoint
{
    std::size_t tracks = 1;          ///< Parallel DHL tracks.
    std::size_t carts_per_track = 4; ///< Cart pool per track.
    std::size_t plants = 1;          ///< Shared vacuum plants.
};

/**
 * Everything a planning run assumes beyond the demand distributions:
 * the per-track DHL geometry (paper Table V), the SLO being sized
 * for, and the beyond-paper capex/availability constants of the
 * lattice dimensions the paper does not cost (vacuum plants, cart
 * pools).
 */
struct PlanAssumptions
{
    /** Per-track geometry and kinematics (Table V defaults). */
    core::DhlConfig dhl = core::defaultConfig();

    /** Per-request completion bound the operator is selling, s. */
    double slo_latency = 60.0;

    /** Required SLO-attainment quantile (0.999 = "99.9 % of sampled
     *  demand days meet the latency bound"). */
    double target_quantile = 0.999;

    /** Tracks one vacuum plant can evacuate (ops domain fan-out). */
    std::size_t tracks_per_plant = 4;

    /** Vacuum-plant MTBF / MTTR, h (ops-layer defaults). */
    double plant_mtbf_hours = 8760.0;
    double plant_mttr_hours = 4.0;

    /** Beyond-paper capex anchors, USD. */
    double plant_capex = 12000.0;
    double cart_capex = 1500.0;

    /** Vacuum-plant hotel power (pumping against leaks), W. */
    double plant_power = units::kilowatts(5.0);
};

/** Validate assumptions; fatal() on nonsense. */
void validate(const PlanAssumptions &a);

/**
 * The per-design constants hoisted out of the scenario loop.  Derived
 * from core::AnalyticalModel (launch metrics, docked read rate) and
 * cost::CostModel (rail + LIM materials), plus the plant-availability
 * derate.  All plain doubles: this struct is the planning sweep's I/O
 * boundary, like the raw Table V fields on DhlConfig (DESIGN.md §9).
 */
struct DesignConstants
{
    DesignPoint design;

    double cart_capacity = 0.0;   ///< B per cart.
    double trip_time = 0.0;       ///< One-way trip incl. docking, s.
    double launch_energy = 0.0;   ///< J per launch (one direction).
    double read_per_byte = 0.0;   ///< Docked PCIe read time, s/B.

    /** Per-track launch-rate cap, 1/s: the pipelined headway/station
     *  bound and the cart-pool round-trip bound, whichever binds. */
    double track_launch_rate = 0.0;

    /** Expected capacity retained under vacuum-plant outages. */
    double plant_factor = 0.0;

    /** Fleet launch capacity, 1/s: tracks * rate * plant_factor. */
    double fleet_launch_rate = 0.0;

    /** Deployment capex, USD: tracks * (rail + LIM) + plants + carts. */
    double capex = 0.0;

    /** Fleet hotel power (plants), W. */
    double hotel_power = 0.0;

    /** False when the plants cannot evacuate the tracks at all. */
    bool feasible = false;
};

/** Derive the constants of one lattice point (the hoisted work). */
DesignConstants designConstants(const PlanAssumptions &a,
                                const DesignPoint &d);

/**
 * Expected fraction of @p required plants operational when @p built
 * are installed and each is independently up with availability
 * 1 - @p unavailability: E[min(Binomial(built, 1-u), required)] /
 * required.  Spare plants (built > required) push the factor towards
 * 1; built < required derates linearly on top of availability.
 */
double plantCapacityFactor(std::size_t required, std::size_t built,
                           double unavailability);

/** Per-scenario outputs, SoA like the inputs. */
struct EvalBatch
{
    std::vector<double> utilisation; ///< Peak launch demand / capacity.
    std::vector<double> latency;     ///< Request latency at peak, s.
    std::vector<double> energy_day;  ///< Fleet energy per day, J.
    std::vector<std::uint8_t> meets_slo; ///< 1 when latency <= bound.

    std::size_t size() const { return latency.size(); }
    void resize(std::size_t n);
};

/** What one scenario costs one design (the AoS view). */
struct ScenarioOutcome
{
    double utilisation = 0.0;
    double latency = 0.0;
    double energy_day = 0.0;
    bool meets_slo = false;
};

/**
 * The shared per-scenario kernel.  Demand model (DESIGN.md §15):
 * interactive requests each ride one cart launch; bulk bytes ride
 * full carts.  The diurnal peak scales the launch-rate demand, an
 * M/D/1-flavoured wait models queueing below saturation, and the
 * request latency adds the trip plus the docked PCIe read.  Both
 * evaluation paths inline exactly this function, which is what makes
 * them bit-identical.
 */
inline ScenarioOutcome
scenarioKernel(const DesignConstants &c, double users,
               double bytes_per_user_day, double peak_factor,
               double bulk_share, double request_bytes,
               double slo_latency)
{
    ScenarioOutcome o;
    const double mean_bw = users * bytes_per_user_day / units::days(1.0);
    const double bulk_launch = mean_bw * bulk_share / c.cart_capacity;
    const double interactive_launch =
        mean_bw * (1.0 - bulk_share) / request_bytes;
    const double peak_launch =
        (bulk_launch + interactive_launch) * peak_factor;

    o.utilisation = c.feasible && c.fleet_launch_rate > 0.0
                        ? peak_launch / c.fleet_launch_rate
                        : std::numeric_limits<double>::infinity();
    if (o.utilisation < 1.0) {
        const double wait =
            c.trip_time * o.utilisation / (2.0 * (1.0 - o.utilisation));
        o.latency = c.trip_time + request_bytes * c.read_per_byte + wait;
    } else {
        o.latency = std::numeric_limits<double>::infinity();
    }
    o.meets_slo = o.latency <= slo_latency;

    // Every loaded trip returns empty (Table VI accounting), and the
    // plants pump around the clock.
    const double launches_day =
        (bulk_launch + interactive_launch) * units::days(1.0);
    o.energy_day = 2.0 * launches_day * c.launch_energy +
                   c.hotel_power * units::days(1.0);
    return o;
}

/**
 * The scalar reference path: re-derives DesignConstants through the
 * analytical models on *every* call, the way the paper-artefact scans
 * evaluate their grids.  This is the baseline BM_BatchedEval beats.
 */
ScenarioOutcome evaluateScalar(const PlanAssumptions &a,
                               const DesignPoint &d, const Scenario &s);

/**
 * The batched SoA path: constants already hoisted, scenario columns
 * streamed contiguously.  Bit-identical to evaluateScalar on every
 * element.
 */
void evaluateBatch(const DesignConstants &c, const ScenarioBatch &in,
                   double slo_latency, EvalBatch &out);

} // namespace plan
} // namespace dhl

#endif // DHL_PLAN_BATCH_EVAL_HPP
