/**
 * @file
 * Workload presets.
 */

#include "mlsim/workload.hpp"

#include "common/logging.hpp"
#include "common/units.hpp"

namespace dhl {
namespace mlsim {

TrainingWorkload
dlrmWorkload()
{
    TrainingWorkload w{};
    w.name = "DLRM-2022 (Meta)";
    w.dataset_bytes = units::petabytes(29);
    w.model_bytes = units::terabytes(44);
    // Calibrated from the affine structure of the paper's Table VII:
    // time/iter = comm_time + c with c ~ 265 s across all five network
    // rows (see DESIGN.md §3).
    w.compute_time = 265.0;
    return w;
}

TrainingWorkload
scaled(const TrainingWorkload &w, double factor)
{
    fatal_if(!(factor > 0.0), "scale factor must be positive");
    TrainingWorkload s = w;
    s.dataset_bytes *= factor;
    s.compute_time *= factor;
    s.name = w.name + " (x" + units::formatSig(factor, 4) + ")";
    return s;
}

void
validate(const TrainingWorkload &w)
{
    fatal_if(!(w.dataset_bytes > 0.0), "dataset size must be positive");
    fatal_if(w.compute_time < 0.0, "compute time must be non-negative");
    fatal_if(w.model_bytes < 0.0, "model size must be non-negative");
}

} // namespace mlsim
} // namespace dhl
