/**
 * @file
 * Implementation of the event-driven ingestion simulator.
 */

#include "mlsim/ingest_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "dhl/analytical.hpp"
#include "network/transfer.hpp"
#include "sim/simulator.hpp"

namespace dhl {
namespace mlsim {

void
validate(const IngestConfig &cfg)
{
    fatal_if(!(cfg.batch_bytes > 0.0), "batch size must be positive");
    fatal_if(!(cfg.step_compute_time >= 0.0),
             "step compute time must be non-negative");
    fatal_if(cfg.buffer_capacity < cfg.batch_bytes,
             "the staging buffer must hold at least one batch");
}

IngestSim::IngestSim(const IngestConfig &cfg)
    : cfg_(cfg)
{
    validate(cfg_);
}

namespace {

/** The producer/consumer engine for one epoch. */
struct Engine
{
    Engine(const IngestConfig &cfg, double dataset, double chunk,
           double first_at, double period, double drain_rate,
           bool prorate_partial)
        : cfg(cfg),
          dataset(dataset),
          chunk_bytes(chunk),
          first_at(first_at),
          period(period),
          drain_rate(drain_rate),
          prorate_partial(prorate_partial)
    {
        n_chunks = static_cast<std::uint64_t>(
            std::ceil(dataset / chunk_bytes));
    }

    /** Byte-count comparison slack: absolute floor plus a relative
     *  term, since the running sums accumulate rounding at dataset
     *  scale (tens of TB and up). */
    double
    eps() const
    {
        return 1e-6 + dataset * 1e-12;
    }

    IngestResult
    run()
    {
        produceNext(0, first_at);
        stepConsumer();
        sim.run();
        panic_if(consumed + 2.0 * eps() < dataset,
                 "ingestion epoch ended with data unconsumed");

        IngestResult r{};
        r.epoch_time = finish_time;
        r.compute_busy = compute_busy;
        r.stall_time = stall_time;
        r.steps = steps;
        r.utilisation =
            finish_time > 0.0 ? compute_busy / finish_time : 1.0;
        r.producer_idle = producer_idle;
        return r;
    }

    //------------------------------------------------------------------
    // Producer
    //------------------------------------------------------------------

    void
    produceNext(std::uint64_t k, double nominal)
    {
        if (k == n_chunks)
            return;
        const double remaining = dataset - k * chunk_bytes;
        const double size = std::min(chunk_bytes, remaining);
        // A partial final chunk may take a pro-rated slot (a network
        // stream transmits fewer bytes in less time) or a full one (a
        // partially loaded DHL cart still takes a whole trip).
        const double slot =
            prorate_partial ? period * (size / chunk_bytes) : period;
        const double at = std::max(sim.now(), nominal - period + slot);
        sim.scheduleAt(at, [this, k, size, nominal] {
            drainChunk(size, [this, k, nominal] {
                produceNext(k + 1, nominal + period);
            });
        });
    }

    /** Drain @p remaining bytes into the buffer, quantum by quantum,
     *  pausing on backpressure; @p done fires when empty. */
    void
    drainChunk(double remaining, std::function<void()> done)
    {
        if (remaining <= eps()) {
            done();
            return;
        }
        const double space = cfg.buffer_capacity - buffer;
        if (space <= eps()) {
            // Backpressured: the consumer wakes us.
            producer_stalled = true;
            producer_stall_start = sim.now();
            producer_resume = [this, remaining, done = std::move(done)] {
                drainChunk(remaining, std::move(done));
            };
            return;
        }
        const double q =
            std::min({cfg.batch_bytes, remaining, space});
        const double latency =
            std::isinf(drain_rate) ? 0.0 : q / drain_rate;
        sim.schedule(latency, [this, q, remaining,
                               done = std::move(done)]() mutable {
            buffer += q;
            wakeConsumer();
            drainChunk(remaining - q, std::move(done));
        });
    }

    void
    wakeProducer()
    {
        if (!producer_stalled)
            return;
        producer_stalled = false;
        producer_idle += sim.now() - producer_stall_start;
        auto resume = std::move(producer_resume);
        producer_resume = nullptr;
        resume();
    }

    //------------------------------------------------------------------
    // Consumer
    //------------------------------------------------------------------

    void
    stepConsumer()
    {
        if (consumed + eps() >= dataset) {
            finish_time = sim.now();
            return;
        }
        const double need = std::min(cfg.batch_bytes, dataset - consumed);
        if (buffer + eps() < need) {
            consumer_stalled = true;
            consumer_stall_start = sim.now();
            return; // the producer wakes us
        }
        buffer -= need;
        wakeProducer();
        sim.schedule(cfg.step_compute_time, [this, need] {
            consumed += need;
            ++steps;
            compute_busy += cfg.step_compute_time;
            stepConsumer();
        });
    }

    void
    wakeConsumer()
    {
        if (!consumer_stalled)
            return;
        const double need = std::min(cfg.batch_bytes, dataset - consumed);
        if (buffer + eps() < need)
            return; // still not enough
        consumer_stalled = false;
        stall_time += sim.now() - consumer_stall_start;
        stepConsumer();
    }

    //------------------------------------------------------------------

    const IngestConfig &cfg;
    double dataset;
    double chunk_bytes;
    double first_at;
    double period;
    double drain_rate;
    bool prorate_partial;
    std::uint64_t n_chunks = 0;

    sim::Simulator sim;
    double buffer = 0.0;
    double consumed = 0.0;
    std::uint64_t steps = 0;
    double compute_busy = 0.0;
    double stall_time = 0.0;
    double finish_time = 0.0;

    bool consumer_stalled = false;
    double consumer_stall_start = 0.0;
    bool producer_stalled = false;
    double producer_stall_start = 0.0;
    double producer_idle = 0.0;
    std::function<void()> producer_resume;
};

} // namespace

IngestResult
IngestSim::run(double dataset_bytes, double chunk_bytes,
               double first_chunk_at, double chunk_period,
               double drain_rate, bool prorate_partial) const
{
    fatal_if(!(dataset_bytes > 0.0), "dataset size must be positive");
    Engine engine(cfg_, dataset_bytes, chunk_bytes, first_chunk_at,
                  chunk_period, drain_rate, prorate_partial);
    return engine.run();
}

IngestResult
IngestSim::runWithNetwork(double dataset_bytes,
                          const network::Route &route,
                          double links) const
{
    const network::TransferModel model(route);
    fatal_if(!(links > 0.0), "need a positive link count");
    const double rate = model.linkRate().value() * links;
    // The stream arrives continuously; chunk it at batch granularity
    // with the chunk's own wire latency as its period.
    const double chunk = cfg_.batch_bytes;
    const double period = chunk / rate;
    return run(dataset_bytes, chunk, period, period,
               std::numeric_limits<double>::infinity(),
               /*prorate_partial=*/true);
}

IngestResult
IngestSim::runWithDhl(double dataset_bytes, const core::DhlConfig &dhl,
                      bool pipelined) const
{
    const core::AnalyticalModel model(dhl);
    const core::LaunchMetrics lm = model.launch();
    // Serial round trips: a cart lands every 2*t_trip; pipelining the
    // returns (§V-B) halves that to one per t_trip.
    const double period =
        pipelined ? lm.trip_time.value() : 2.0 * lm.trip_time.value();
    const double drain = model.cartReadTime().value() > 0.0
                             ? lm.capacity.value() /
                                   model.cartReadTime().value()
                             : std::numeric_limits<double>::infinity();
    return run(dataset_bytes, lm.capacity.value(), lm.trip_time.value(),
               period, drain,
               /*prorate_partial=*/false);
}

} // namespace mlsim
} // namespace dhl
