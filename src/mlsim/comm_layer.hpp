/**
 * @file
 * Pluggable communication layers for the training simulator: parallel
 * optical links (continuous, per the paper's simplification) and
 * parallel DHL tracks (quantised carts, discrete track counts).
 *
 * The paper "simulate[s] the DHL as a high-bandwidth, high-latency
 * network layer"; DhlComm is exactly that abstraction, with the launch
 * quantisation preserved (whole carts, whole round trips).
 */

#ifndef DHL_MLSIM_COMM_LAYER_HPP
#define DHL_MLSIM_COMM_LAYER_HPP

#include <memory>
#include <string>

#include "dhl/analytical.hpp"
#include "dhl/config.hpp"
#include "network/route.hpp"
#include "network/transfer.hpp"

namespace dhl {
namespace mlsim {

/** Abstract communication layer: moves bytes using parallel units. */
class CommLayer
{
  public:
    virtual ~CommLayer() = default;

    /** Display name ("A0", "DHL-200-500-256", ...). */
    virtual std::string name() const = 0;

    /** Electrical power of one unit while transferring, W. */
    virtual double unitPower() const = 0;

    /** True if units only come in whole numbers (DHL tracks). */
    virtual bool quantised() const = 0;

    /** Time to ingest @p bytes using @p units parallel units, s. */
    virtual double ingestionTime(double bytes, double units) const = 0;

    /** Energy to ingest @p bytes (independent of unit count for both
     *  implementations — more units finish proportionally faster), J. */
    virtual double ingestionEnergy(double bytes) const = 0;

    /** Average power while ingesting with @p units units, W. */
    double
    avgPower(double bytes, double units) const
    {
        return ingestionEnergy(bytes) / ingestionTime(bytes, units);
    }
};

/** Optical networking: @p units parallel links of one route class. */
class OpticalComm : public CommLayer
{
  public:
    explicit OpticalComm(const network::Route &route,
                         const network::PowerConstants &pc =
                             network::defaultPowerConstants());

    std::string name() const override { return route_.name(); }
    double unitPower() const override { return model_.linkPower().value(); }
    bool quantised() const override { return false; }
    double ingestionTime(double bytes, double units) const override;
    double ingestionEnergy(double bytes) const override;

    const network::TransferModel &transferModel() const { return model_; }

  private:
    network::Route route_;
    network::TransferModel model_;
};

/** DHL: @p units parallel tracks shuttling quantised carts. */
class DhlComm : public CommLayer
{
  public:
    /**
     * @param cfg        DHL configuration (per track).
     * @param pipelined  Overlap return journeys with subsequent
     *                   outbound launches (§V-B pipelining).  Serial
     *                   (false) matches the paper's Table VI accounting
     *                   and its 1.75 kW per-DHL average power.
     */
    explicit DhlComm(const core::DhlConfig &cfg, bool pipelined = false);

    std::string name() const override { return cfg_.label(); }
    double unitPower() const override;
    bool quantised() const override { return true; }
    double ingestionTime(double bytes, double units) const override;
    double ingestionEnergy(double bytes) const override;

    const core::DhlConfig &config() const { return cfg_; }
    bool pipelined() const { return pipelined_; }

  private:
    core::DhlConfig cfg_;
    core::AnalyticalModel model_;
    bool pipelined_;
};

} // namespace mlsim
} // namespace dhl

#endif // DHL_MLSIM_COMM_LAYER_HPP
