/**
 * @file
 * Implementation of the Figure 6 power sweeps.
 */

#include "mlsim/sweep.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dhl {
namespace mlsim {

SweepSeries
sweepQuantised(const TrainingSim &sim, double max_power)
{
    fatal_if(!sim.comm().quantised(),
             "sweepQuantised needs a quantised comm layer");
    fatal_if(!(max_power > 0.0), "max power must be positive");

    SweepSeries s{};
    s.name = sim.comm().name();
    s.quantised = true;

    const double unit_power = sim.comm().unitPower();
    const auto max_units =
        std::max(1.0, std::floor(max_power / unit_power + 1e-9));
    for (double k = 1.0; k <= max_units; k += 1.0) {
        const IterationResult r = sim.iterate(k);
        s.points.push_back(SweepPoint{k * unit_power, r.iter_time, k});
    }
    return s;
}

SweepSeries
sweepContinuous(const TrainingSim &sim, double min_power, double max_power,
                int n_points)
{
    fatal_if(sim.comm().quantised(),
             "sweepContinuous needs a continuous comm layer");
    fatal_if(!(min_power > 0.0) || !(max_power > min_power),
             "need 0 < min_power < max_power");
    fatal_if(n_points < 2, "need at least two sweep points");

    SweepSeries s{};
    s.name = sim.comm().name();
    s.quantised = false;

    const double log_lo = std::log(min_power);
    const double log_hi = std::log(max_power);
    for (int i = 0; i < n_points; ++i) {
        const double f =
            static_cast<double>(i) / static_cast<double>(n_points - 1);
        const double budget = std::exp(log_lo + f * (log_hi - log_lo));
        const IterationResult r = sim.isoPower(budget);
        s.points.push_back(SweepPoint{budget, r.iter_time, r.units});
    }
    return s;
}

} // namespace mlsim
} // namespace dhl
