/**
 * @file
 * Implementation of the Figure 6 power sweeps.
 */

#include "mlsim/sweep.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace dhl {
namespace mlsim {

namespace {

/**
 * Evaluate points[i] = make(i) for i in [0, n), across @p pool when one
 * is supplied.  Each point is a pure function of its index, so the
 * result is identical either way.
 */
std::vector<SweepPoint>
evaluatePoints(std::size_t n, ThreadPool *pool,
               const std::function<SweepPoint(std::size_t)> &make)
{
    std::vector<SweepPoint> points(n);
    if (pool) {
        pool->parallelFor(n, [&](std::size_t i) { points[i] = make(i); });
    } else {
        for (std::size_t i = 0; i < n; ++i)
            points[i] = make(i);
    }
    return points;
}

} // namespace

SweepSeries
sweepQuantised(const TrainingSim &sim, double max_power, ThreadPool *pool)
{
    fatal_if(!sim.comm().quantised(),
             "sweepQuantised needs a quantised comm layer");
    fatal_if(!(max_power > 0.0), "max power must be positive");

    SweepSeries s{};
    s.name = sim.comm().name();
    s.quantised = true;

    const double unit_power = sim.comm().unitPower();
    const auto max_units =
        std::max(1.0, std::floor(max_power / unit_power + 1e-9));
    s.points = evaluatePoints(
        static_cast<std::size_t>(max_units), pool, [&](std::size_t i) {
            const double k = static_cast<double>(i) + 1.0;
            const IterationResult r = sim.iterate(k);
            return SweepPoint{k * unit_power, r.iter_time, k};
        });
    return s;
}

SweepSeries
sweepContinuous(const TrainingSim &sim, double min_power, double max_power,
                int n_points, ThreadPool *pool)
{
    fatal_if(sim.comm().quantised(),
             "sweepContinuous needs a continuous comm layer");
    fatal_if(!(min_power > 0.0) || !(max_power > min_power),
             "need 0 < min_power < max_power");
    fatal_if(n_points < 2, "need at least two sweep points");

    SweepSeries s{};
    s.name = sim.comm().name();
    s.quantised = false;

    const double log_lo = std::log(min_power);
    const double log_hi = std::log(max_power);
    s.points = evaluatePoints(
        static_cast<std::size_t>(n_points), pool, [&](std::size_t i) {
            const double f = static_cast<double>(i) /
                             static_cast<double>(n_points - 1);
            const double budget =
                std::exp(log_lo + f * (log_hi - log_lo));
            const IterationResult r = sim.isoPower(budget);
            return SweepPoint{budget, r.iter_time, r.units};
        });
    return s;
}

std::vector<std::string>
sweepHeaders()
{
    return {"Series", "Power (kW)", "Units", "Time/iter (s)"};
}

exp::ScenarioRows
sweepRows(const SweepSeries &series)
{
    exp::ScenarioRows rows;
    rows.reserve(series.points.size());
    for (const auto &pt : series.points) {
        rows.push_back({series.name, cell(units::toKilowatts(pt.power), 4),
                        cell(pt.units, 4), cell(pt.iter_time, 5)});
    }
    return rows;
}

exp::Scenario
dhlSweepScenario(const TrainingWorkload &workload,
                 const core::DhlConfig &cfg, double max_power,
                 SweepSeries *out)
{
    exp::Scenario s;
    s.name = cfg.label();
    s.run = [workload, cfg, max_power, out](exp::ScenarioContext &) {
        const DhlComm comm(cfg);
        const TrainingSim sim(workload, comm);
        const SweepSeries series = sweepQuantised(sim, max_power);
        if (out)
            *out = series;
        return sweepRows(series);
    };
    return s;
}

exp::Scenario
opticalSweepScenario(const TrainingWorkload &workload,
                     const network::Route &route, double min_power,
                     double max_power, int n_points, SweepSeries *out)
{
    exp::Scenario s;
    s.name = route.name();
    s.run = [workload, route, min_power, max_power, n_points,
             out](exp::ScenarioContext &) {
        const OpticalComm comm(route);
        const TrainingSim sim(workload, comm);
        const SweepSeries series =
            sweepContinuous(sim, min_power, max_power, n_points);
        if (out)
            *out = series;
        return sweepRows(series);
    };
    return s;
}

} // namespace mlsim
} // namespace dhl
