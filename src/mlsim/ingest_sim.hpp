/**
 * @file
 * Event-driven training-ingestion simulator: the data-stall view of
 * the paper's ML use case.
 *
 * The closed-form TrainingSim treats an iteration as ingestion +
 * compute laid end to end.  This simulator models the *interaction*:
 * a trainer consumes fixed-size batches from a bounded staging buffer
 * while a producer — either a network stream or quantised DHL cart
 * arrivals — fills it, with backpressure when the buffer is full.  The
 * outputs are the epoch time, the compute utilisation, and the stall
 * time, i.e. exactly the "data ingestion can cost more than the
 * computation" phenomenon (Zhao et al.) that motivates the paper's ML
 * case.
 */

#ifndef DHL_MLSIM_INGEST_SIM_HPP
#define DHL_MLSIM_INGEST_SIM_HPP

#include <cstdint>

#include "dhl/config.hpp"
#include "network/route.hpp"

namespace dhl {
namespace mlsim {

/** Trainer and buffer parameters. */
struct IngestConfig
{
    /** Bytes consumed per training step. */
    double batch_bytes = 1e12;

    /** Compute time per training step, s. */
    double step_compute_time = 0.01;

    /** Staging buffer capacity, bytes (backpressures the producer). */
    double buffer_capacity = 512e12;
};

/** Validate; throws FatalError on nonsense. */
void validate(const IngestConfig &cfg);

/** Outcome of one simulated epoch. */
struct IngestResult
{
    double epoch_time;     ///< s from start to last step retired.
    double compute_busy;   ///< s the trainer spent computing.
    double stall_time;     ///< s the trainer waited on data.
    std::uint64_t steps;   ///< training steps retired.
    double utilisation;    ///< compute_busy / epoch_time.
    double producer_idle;  ///< s the producer was backpressured.
};

/** The simulator (stateless facade; each run builds a fresh DES). */
class IngestSim
{
  public:
    explicit IngestSim(const IngestConfig &cfg);

    const IngestConfig &config() const { return cfg_; }

    /**
     * Epoch fed by a network stream: @p links parallel links of
     * @p route deliver dataset bytes continuously.
     */
    IngestResult runWithNetwork(double dataset_bytes,
                                const network::Route &route,
                                double links = 1.0) const;

    /**
     * Epoch fed by DHL cart arrivals: carts of @p dhl's capacity
     * arrive one launch-period apart (serial round trips by default;
     * pipelined halves the period per the §V-B argument) and drain
     * into the buffer at the docked PCIe read bandwidth.
     */
    IngestResult runWithDhl(double dataset_bytes,
                            const core::DhlConfig &dhl,
                            bool pipelined = false) const;

  private:
    /**
     * Core loop shared by both producers: @p chunk_bytes arrive every
     * @p chunk_period seconds at up to @p drain_rate into the buffer.
     * A partial final chunk takes a pro-rated slot when
     * @p prorate_partial (network stream) or a full one (DHL cart).
     */
    IngestResult run(double dataset_bytes, double chunk_bytes,
                     double first_chunk_at, double chunk_period,
                     double drain_rate, bool prorate_partial) const;

    IngestConfig cfg_;
};

} // namespace mlsim
} // namespace dhl

#endif // DHL_MLSIM_INGEST_SIM_HPP
