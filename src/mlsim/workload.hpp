/**
 * @file
 * Distributed-training workload descriptors for the ML ingestion study
 * (the paper's ASTRA-sim experiment, §IV-E / §V-C).
 *
 * One gradient-descent iteration ingests the full training dataset and
 * performs a fixed amount of computation; the experiment measures
 * time-per-iteration as a function of the communication layer and its
 * power budget.  The compute-time constant is calibrated from the row
 * structure of the paper's Table VII (see DESIGN.md §3).
 */

#ifndef DHL_MLSIM_WORKLOAD_HPP
#define DHL_MLSIM_WORKLOAD_HPP

#include <string>

namespace dhl {
namespace mlsim {

/** One training workload. */
struct TrainingWorkload
{
    std::string name;     ///< Workload name.
    double dataset_bytes; ///< Training data ingested per iteration.
    double model_bytes;   ///< Model size (context only).
    double compute_time;  ///< Compute per iteration, s (fixed).
};

/**
 * The paper's representative DLRM workload: Meta's 29 PB dataset, the
 * 44 TB DLRM-2022 model, and the calibrated 265 s compute constant.
 */
TrainingWorkload dlrmWorkload();

/** A workload scaled linearly in dataset size (the paper's numerical-
 *  stability trick: scale down by 1e7, simulate, scale back up). */
TrainingWorkload scaled(const TrainingWorkload &w, double factor);

/** Validate a workload; throws FatalError on nonsense. */
void validate(const TrainingWorkload &w);

} // namespace mlsim
} // namespace dhl

#endif // DHL_MLSIM_WORKLOAD_HPP
