/**
 * @file
 * The training-iteration simulator: time and power of one gradient-
 * descent iteration (full dataset ingestion + fixed compute) over a
 * pluggable communication layer, with the paper's two analyses:
 *
 *  - iso-power  (Table VII a): fix a communication power budget, use as
 *    many parallel units as it affords, measure time/iteration.
 *  - iso-time   (Table VII b): fix a target time/iteration, solve for
 *    the communication power required.
 *
 * Also implements the paper's numerical-stability protocol (downscale
 * the dataset, simulate, upscale, verify linearity).
 */

#ifndef DHL_MLSIM_TRAINING_SIM_HPP
#define DHL_MLSIM_TRAINING_SIM_HPP

#include "mlsim/comm_layer.hpp"
#include "mlsim/workload.hpp"

namespace dhl {
namespace mlsim {

/** Metrics of one training iteration. */
struct IterationResult
{
    double units;          ///< Parallel communication units used.
    double comm_time;      ///< Ingestion time, s.
    double iter_time;      ///< comm_time + compute, s.
    double comm_energy;    ///< Ingestion energy, J.
    double avg_comm_power; ///< comm_energy / comm_time, W.
};

/** The iteration simulator for one (workload, comm layer) pair. */
class TrainingSim
{
  public:
    TrainingSim(const TrainingWorkload &workload, const CommLayer &comm);

    const TrainingWorkload &workload() const { return workload_; }
    const CommLayer &comm() const { return comm_; }

    /** One iteration with an explicit unit count. */
    IterationResult iterate(double units) const;

    /**
     * Iso-power: the largest unit count affordable within
     * @p power_budget watts — continuous for optical links, whole
     * tracks (at least one) for DHLs — then iterate.
     */
    IterationResult isoPower(double power_budget) const;

    /**
     * Iso-time: communication power needed to finish an iteration in
     * @p target_iter_time seconds.  fatal() if the target is below the
     * compute floor.
     */
    double powerForIterTime(double target_iter_time) const;

    /**
     * The paper's scaling protocol: run the iteration on a dataset
     * scaled down by @p factor and upscale the resulting times.  For
     * continuous layers this is exact; for quantised DHLs it holds to
     * within the cart quantisation (verified by tests).
     */
    IterationResult iterateScaled(double units, double factor) const;

  private:
    TrainingWorkload workload_;
    const CommLayer &comm_;
};

} // namespace mlsim
} // namespace dhl

#endif // DHL_MLSIM_TRAINING_SIM_HPP
