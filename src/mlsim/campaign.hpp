/**
 * @file
 * Long-horizon training-campaign model, quantifying the paper's
 * §II-D3 observation: "new models with their own independent
 * architectures are regularly being trained on the same, large
 * datasets... We see potential for ongoing savings repeatedly and over
 * the long term."
 *
 * A campaign is months of operation during which the dataset grows by
 * appends (the paper: "regularly reused (and mainly appended)") and a
 * steady stream of new models each re-stage the whole dataset.  The
 * model accumulates bytes moved, time and energy for the DHL and for
 * an optical route, month by month.
 */

#ifndef DHL_MLSIM_CAMPAIGN_HPP
#define DHL_MLSIM_CAMPAIGN_HPP

#include <cstdint>
#include <vector>

#include "dhl/analytical.hpp"
#include "network/transfer.hpp"

namespace dhl {

class ThreadPool;

namespace mlsim {

/** Shape of a training campaign. */
struct CampaignConfig
{
    /** Dataset size at month zero, bytes (paper: 29 PB). */
    double initial_dataset = 29e15;

    /** Appended data per month, bytes (Meta's 4 PB/day would be
     *  ~120 PB/month; default is a conservative 2 PB/month). */
    double monthly_growth = 2e15;

    /** New models trained (each re-staging the dataset) per month. */
    double trainings_per_month = 4.0;

    /** Campaign length, months. */
    std::uint64_t months = 24;
};

/** Validate; throws FatalError on nonsense. */
void validate(const CampaignConfig &cfg);

/** One month of the campaign. */
struct CampaignMonth
{
    std::uint64_t month;     ///< 0-based index.
    double dataset_bytes;    ///< dataset size this month.
    double bytes_moved;      ///< trainings x dataset.
    double dhl_time;         ///< s of DHL shuttling.
    double dhl_energy;       ///< J.
    double net_time;         ///< s on one optical link.
    double net_energy;       ///< J.
};

/** Whole-campaign totals. */
struct CampaignReport
{
    std::vector<CampaignMonth> months;
    double total_bytes;
    double dhl_time;
    double dhl_energy;
    double net_time;
    double net_energy;

    double energySaved() const { return net_energy - dhl_energy; }
    double energyReduction() const { return net_energy / dhl_energy; }
    double timeReduction() const { return net_time / dhl_time; }
};

/** The campaign model. */
class CampaignModel
{
  public:
    CampaignModel(const core::DhlConfig &dhl, const network::Route &route);

    /**
     * Run the campaign.  Months are independent (the dataset grows by a
     * closed-form schedule, not month-to-month state), so when @p pool
     * is non-null they are evaluated across it; totals are accumulated
     * in month order either way, making the parallel result identical
     * to the serial one.
     */
    CampaignReport run(const CampaignConfig &cfg,
                       ThreadPool *pool = nullptr) const;

    /** Compute one month in isolation (pure; used by the runner path). */
    CampaignMonth computeMonth(const CampaignConfig &cfg,
                               std::uint64_t month) const;

  private:
    core::AnalyticalModel dhl_;
    network::TransferModel net_;
};

} // namespace mlsim
} // namespace dhl

#endif // DHL_MLSIM_CAMPAIGN_HPP
