/**
 * @file
 * Implementation of the communication layers.
 */

#include "mlsim/comm_layer.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dhl {
namespace mlsim {

//===========================================================================
// OpticalComm
//===========================================================================

OpticalComm::OpticalComm(const network::Route &route,
                         const network::PowerConstants &pc)
    : route_(route), model_(route, pc)
{}

double
OpticalComm::ingestionTime(double bytes, double units) const
{
    fatal_if(!(units > 0.0), "need a positive number of links");
    return model_.transfer(qty::Bytes{bytes}, units).time.value();
}

double
OpticalComm::ingestionEnergy(double bytes) const
{
    // Energy is link-count independent: n links draw n times the power
    // for 1/n of the time.
    return model_.transfer(qty::Bytes{bytes}, 1.0).energy.value();
}

//===========================================================================
// DhlComm
//===========================================================================

DhlComm::DhlComm(const core::DhlConfig &cfg, bool pipelined)
    : cfg_(cfg), model_(cfg), pipelined_(pipelined)
{}

double
DhlComm::unitPower() const
{
    const core::LaunchMetrics lm = model_.launch();
    // Serial round trips: a track draws 2*E_shot over 2*t_trip, i.e.
    // E_shot / t_trip — the paper's 1.75 kW per DHL.  With overlapped
    // returns the same energy compresses into half the wall-clock.
    const double serial = lm.energy.value() / lm.trip_time.value();
    return pipelined_ ? 2.0 * serial : serial;
}

double
DhlComm::ingestionTime(double bytes, double units) const
{
    fatal_if(!(units >= 1.0), "need at least one DHL track");
    fatal_if(std::abs(units - std::round(units)) > 1e-9,
             "DHL tracks are quantised: units must be a whole number");

    const core::LaunchMetrics lm = model_.launch();
    const double trips = std::ceil(bytes / lm.capacity.value());
    const double per_track = std::ceil(trips / std::round(units));
    const double round_trips = pipelined_ ? per_track : 2.0 * per_track;
    return round_trips * lm.trip_time.value();
}

double
DhlComm::ingestionEnergy(double bytes) const
{
    const core::LaunchMetrics lm = model_.launch();
    const double trips = std::ceil(bytes / lm.capacity.value());
    // Outbound and return launches both cost a full LIM shot.
    return 2.0 * trips * lm.energy.value();
}

} // namespace mlsim
} // namespace dhl
