/**
 * @file
 * Implementation of the training-iteration simulator.
 */

#include "mlsim/training_sim.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dhl {
namespace mlsim {

TrainingSim::TrainingSim(const TrainingWorkload &workload,
                         const CommLayer &comm)
    : workload_(workload), comm_(comm)
{
    validate(workload_);
}

IterationResult
TrainingSim::iterate(double units) const
{
    IterationResult r{};
    r.units = units;
    r.comm_time = comm_.ingestionTime(workload_.dataset_bytes, units);
    r.iter_time = r.comm_time + workload_.compute_time;
    r.comm_energy = comm_.ingestionEnergy(workload_.dataset_bytes);
    r.avg_comm_power = r.comm_energy / r.comm_time;
    return r;
}

IterationResult
TrainingSim::isoPower(double power_budget) const
{
    fatal_if(!(power_budget > 0.0), "power budget must be positive");
    double units = power_budget / comm_.unitPower();
    if (comm_.quantised()) {
        units = std::floor(units + 1e-9);
        fatal_if(units < 1.0,
                 "power budget below one unit of '" + comm_.name() +
                     "' (" + std::to_string(comm_.unitPower()) + " W)");
    }
    return iterate(units);
}

double
TrainingSim::powerForIterTime(double target_iter_time) const
{
    fatal_if(!(target_iter_time > workload_.compute_time),
             "target iteration time is at or below the compute floor");
    const double comm_budget = target_iter_time - workload_.compute_time;

    if (!comm_.quantised()) {
        // Continuous: time scales as 1/units, so solve directly from a
        // one-unit reference.
        const double t1 =
            comm_.ingestionTime(workload_.dataset_bytes, 1.0);
        const double units = t1 / comm_budget;
        return units * comm_.unitPower();
    }

    // Quantised: smallest whole unit count meeting the budget.
    double units = 1.0;
    while (comm_.ingestionTime(workload_.dataset_bytes, units) >
           comm_budget) {
        units += 1.0;
        fatal_if(units > 1e7, "iso-time search failed to converge");
    }
    return units * comm_.unitPower();
}

IterationResult
TrainingSim::iterateScaled(double units, double factor) const
{
    fatal_if(!(factor > 0.0) || factor > 1.0,
             "scale factor must be in (0, 1]");
    const TrainingWorkload small = scaled(workload_, factor);
    TrainingSim small_sim(small, comm_);
    IterationResult r = small_sim.iterate(units);
    // Upscale the times (and energy) back, per the paper's protocol.
    r.comm_time /= factor;
    r.iter_time /= factor;
    r.comm_energy /= factor;
    return r;
}

} // namespace mlsim
} // namespace dhl
