/**
 * @file
 * Implementation of the training-campaign model.
 */

#include "mlsim/campaign.hpp"

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace dhl {
namespace mlsim {

void
validate(const CampaignConfig &cfg)
{
    fatal_if(!(cfg.initial_dataset > 0.0),
             "initial dataset must be positive");
    fatal_if(cfg.monthly_growth < 0.0,
             "monthly growth must be non-negative");
    fatal_if(!(cfg.trainings_per_month > 0.0),
             "need a positive training rate");
    fatal_if(cfg.months == 0, "need at least one month");
}

CampaignModel::CampaignModel(const core::DhlConfig &dhl,
                             const network::Route &route)
    : dhl_(dhl), net_(route)
{}

CampaignMonth
CampaignModel::computeMonth(const CampaignConfig &cfg,
                            std::uint64_t m) const
{
    CampaignMonth month{};
    month.month = m;
    month.dataset_bytes =
        cfg.initial_dataset + cfg.monthly_growth * static_cast<double>(m);
    month.bytes_moved = month.dataset_bytes * cfg.trainings_per_month;

    // Each training stages the whole dataset once.
    const auto dhl_bulk = dhl_.bulk(qty::Bytes{month.dataset_bytes});
    month.dhl_time = dhl_bulk.total_time.value() * cfg.trainings_per_month;
    month.dhl_energy = dhl_bulk.total_energy.value() * cfg.trainings_per_month;

    const auto xfer = net_.transfer(qty::Bytes{month.dataset_bytes});
    month.net_time = xfer.time.value() * cfg.trainings_per_month;
    month.net_energy = xfer.energy.value() * cfg.trainings_per_month;
    return month;
}

CampaignReport
CampaignModel::run(const CampaignConfig &cfg, ThreadPool *pool) const
{
    validate(cfg);

    CampaignReport report{};
    report.months.resize(cfg.months);
    const auto compute = [&](std::size_t m) {
        report.months[m] = computeMonth(cfg, static_cast<std::uint64_t>(m));
    };
    if (pool) {
        pool->parallelFor(cfg.months, compute);
    } else {
        for (std::uint64_t m = 0; m < cfg.months; ++m)
            compute(m);
    }

    // Accumulate in month order so the floating-point totals match the
    // serial run bit-for-bit.
    for (const auto &month : report.months) {
        report.total_bytes += month.bytes_moved;
        report.dhl_time += month.dhl_time;
        report.dhl_energy += month.dhl_energy;
        report.net_time += month.net_time;
        report.net_energy += month.net_energy;
    }
    return report;
}

} // namespace mlsim
} // namespace dhl
