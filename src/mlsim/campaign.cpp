/**
 * @file
 * Implementation of the training-campaign model.
 */

#include "mlsim/campaign.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace mlsim {

void
validate(const CampaignConfig &cfg)
{
    fatal_if(!(cfg.initial_dataset > 0.0),
             "initial dataset must be positive");
    fatal_if(cfg.monthly_growth < 0.0,
             "monthly growth must be non-negative");
    fatal_if(!(cfg.trainings_per_month > 0.0),
             "need a positive training rate");
    fatal_if(cfg.months == 0, "need at least one month");
}

CampaignModel::CampaignModel(const core::DhlConfig &dhl,
                             const network::Route &route)
    : dhl_(dhl), net_(route)
{}

CampaignReport
CampaignModel::run(const CampaignConfig &cfg) const
{
    validate(cfg);

    CampaignReport report{};
    report.months.reserve(cfg.months);
    for (std::uint64_t m = 0; m < cfg.months; ++m) {
        CampaignMonth month{};
        month.month = m;
        month.dataset_bytes =
            cfg.initial_dataset +
            cfg.monthly_growth * static_cast<double>(m);
        month.bytes_moved =
            month.dataset_bytes * cfg.trainings_per_month;

        // Each training stages the whole dataset once.
        const auto dhl_bulk = dhl_.bulk(month.dataset_bytes);
        month.dhl_time = dhl_bulk.total_time * cfg.trainings_per_month;
        month.dhl_energy =
            dhl_bulk.total_energy * cfg.trainings_per_month;

        const auto xfer = net_.transfer(month.dataset_bytes);
        month.net_time = xfer.time * cfg.trainings_per_month;
        month.net_energy = xfer.energy * cfg.trainings_per_month;

        report.total_bytes += month.bytes_moved;
        report.dhl_time += month.dhl_time;
        report.dhl_energy += month.dhl_energy;
        report.net_time += month.net_time;
        report.net_energy += month.net_energy;
        report.months.push_back(month);
    }
    return report;
}

} // namespace mlsim
} // namespace dhl
