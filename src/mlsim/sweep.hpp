/**
 * @file
 * The Figure 6 power-budget sweep: time-per-iteration as a function of
 * the communication power budget, one series per communication scheme.
 * DHL series are quantised (one point per whole track count); network
 * series are continuous (the paper's simplification).
 */

#ifndef DHL_MLSIM_SWEEP_HPP
#define DHL_MLSIM_SWEEP_HPP

#include <string>
#include <vector>

#include "mlsim/training_sim.hpp"

namespace dhl {
namespace mlsim {

/** One (power, time) point of a Figure 6 series. */
struct SweepPoint
{
    double power;     ///< Communication power budget, W.
    double iter_time; ///< Time per iteration, s.
    double units;     ///< Units in use at this point.
};

/** One Figure 6 series. */
struct SweepSeries
{
    std::string name;
    bool quantised;
    std::vector<SweepPoint> points;
};

/**
 * Sweep a quantised layer (DHL): one point per track count from 1 up to
 * the count whose power reaches @p max_power (at least one point).
 */
SweepSeries sweepQuantised(const TrainingSim &sim, double max_power);

/**
 * Sweep a continuous layer (optical): @p n_points log-spaced budgets
 * from @p min_power to @p max_power.
 */
SweepSeries sweepContinuous(const TrainingSim &sim, double min_power,
                            double max_power, int n_points);

} // namespace mlsim
} // namespace dhl

#endif // DHL_MLSIM_SWEEP_HPP
