/**
 * @file
 * The Figure 6 power-budget sweep: time-per-iteration as a function of
 * the communication power budget, one series per communication scheme.
 * DHL series are quantised (one point per whole track count); network
 * series are continuous (the paper's simplification).
 *
 * Sweeps are expressed on top of the experiment-execution layer: each
 * series is one `exp::Scenario` closure over an immutable (workload,
 * scheme) config, and the points inside a series can themselves be
 * fanned out over a `ThreadPool`.  Both paths are deterministic — a
 * point is a pure function of its index — so parallel evaluation is
 * byte-identical to serial.
 */

#ifndef DHL_MLSIM_SWEEP_HPP
#define DHL_MLSIM_SWEEP_HPP

#include <string>
#include <vector>

#include "exp/experiment_runner.hpp"
#include "mlsim/training_sim.hpp"

namespace dhl {

class ThreadPool;

namespace mlsim {

/** One (power, time) point of a Figure 6 series. */
struct SweepPoint
{
    double power;     ///< Communication power budget, W.
    double iter_time; ///< Time per iteration, s.
    double units;     ///< Units in use at this point.
};

/** One Figure 6 series. */
struct SweepSeries
{
    std::string name;
    bool quantised;
    std::vector<SweepPoint> points;
};

/**
 * Sweep a quantised layer (DHL): one point per track count from 1 up to
 * the count whose power reaches @p max_power (at least one point).
 * When @p pool is non-null the points are evaluated across it.
 */
SweepSeries sweepQuantised(const TrainingSim &sim, double max_power,
                           ThreadPool *pool = nullptr);

/**
 * Sweep a continuous layer (optical): @p n_points log-spaced budgets
 * from @p min_power to @p max_power.  When @p pool is non-null the
 * points are evaluated across it.
 */
SweepSeries sweepContinuous(const TrainingSim &sim, double min_power,
                            double max_power, int n_points,
                            ThreadPool *pool = nullptr);

/** The canonical Figure 6 table headers. */
std::vector<std::string> sweepHeaders();

/**
 * The canonical Figure 6 row formatting of one series — the single
 * place sweep rows are turned into table cells (benches and the CLI
 * render the runner's rows instead of re-formatting points).
 */
exp::ScenarioRows sweepRows(const SweepSeries &series);

/**
 * Build a runner scenario computing one quantised (DHL) series: the
 * closure owns copies of @p workload and @p cfg, runs the sweep, writes
 * the series into @p out (when non-null; one slot per scenario, never
 * shared) and returns the canonical rows.
 */
exp::Scenario dhlSweepScenario(const TrainingWorkload &workload,
                               const core::DhlConfig &cfg,
                               double max_power,
                               SweepSeries *out = nullptr);

/** Continuous (optical route) counterpart of dhlSweepScenario. */
exp::Scenario opticalSweepScenario(const TrainingWorkload &workload,
                                   const network::Route &route,
                                   double min_power, double max_power,
                                   int n_points,
                                   SweepSeries *out = nullptr);

} // namespace mlsim
} // namespace dhl

#endif // DHL_MLSIM_SWEEP_HPP
