/**
 * @file
 * DHL-versus-optical comparison helpers: the Table VI right-hand columns
 * (time speedup and per-route energy reduction moving a dataset) and the
 * §V-E minimum-specification / break-even analysis (the smallest dataset
 * and distance at which a DHL beats an optical link).
 */

#ifndef DHL_DHL_COMPARISON_HPP
#define DHL_DHL_COMPARISON_HPP

#include <string>
#include <vector>

#include "dhl/analytical.hpp"
#include "dhl/config.hpp"
#include "network/route.hpp"
#include "network/transfer.hpp"

namespace dhl {
namespace core {

/** One fully computed Table VI row. */
struct DesignSpaceRow
{
    DhlConfig config;
    LaunchMetrics launch;           ///< Single-launch metrics.
    BulkMetrics bulk;               ///< Moving the dataset.
    double time_speedup;            ///< vs a single 400 Gbit/s link.
    std::vector<RouteComparison> routes; ///< vs each canonical route.
};

/**
 * Compute one Table VI row: single-launch metrics plus the bulk move of
 * @p dataset_bytes compared against every canonical route.
 */
DesignSpaceRow computeDesignSpaceRow(const DhlConfig &cfg,
                                     qty::Bytes dataset_bytes,
                                     const BulkOptions &opts = {});

/** Break-even thresholds against one optical route (§V-E). */
struct BreakEven
{
    std::string route_name;

    /**
     * Smallest dataset (<= one cart) for which the DHL delivers no
     * later than the optical link: trip_time * link_rate.
     */
    qty::Bytes bytes_for_time;

    /**
     * Smallest dataset for which the DHL consumes no more energy:
     * launch_energy * link_rate / route_power.
     */
    qty::Bytes bytes_for_energy;

    /** The binding threshold (max of the two). */
    qty::Bytes bytes_to_win() const
    {
        return bytes_for_time > bytes_for_energy ? bytes_for_time
                                                 : bytes_for_energy;
    }
};

/** Compute the §V-E break-even against one route. */
BreakEven breakEven(const DhlConfig &cfg, const network::Route &route,
                    const network::PowerConstants &pc =
                        network::defaultPowerConstants());

/** One point of the §V-E sweep over distance and speed. */
struct CrossoverPoint
{
    qty::Metres track_length;
    qty::MetresPerSecond max_speed;
    qty::Seconds trip_time;
    qty::Joules launch_energy;
    BreakEven vs_a0; ///< against the idealised A0 route.
};

/**
 * Sweep track length and speed producing the §V-E frontier (the paper's
 * example point is 10 m / 10 m/s / 360 GB carts).  Acceleration is
 * clamped so short tracks remain feasible.
 */
std::vector<CrossoverPoint>
crossoverSweep(const std::vector<double> &lengths,
               const std::vector<double> &speeds,
               std::size_t ssds_per_cart = 32);

} // namespace core
} // namespace dhl

#endif // DHL_DHL_COMPARISON_HPP
