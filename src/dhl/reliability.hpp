/**
 * @file
 * DHL service availability model (Discussion §VI "Repairs": the
 * false-floor placement "makes it possible to do repairs with
 * reasonable access"; the library "offers an easy solution to remove
 * the carts for repair").
 *
 * A steady-state series-availability model over the repairable
 * components — the two LIMs, the track/vacuum assembly, and the
 * docking stations — plus the cart fleet's repair rotation, yielding
 * the fraction of time the DHL can serve transfers and the throughput
 * derating that implies.
 */

#ifndef DHL_DHL_RELIABILITY_HPP
#define DHL_DHL_RELIABILITY_HPP

#include <cstddef>
#include <cstdint>
#include <limits>

#include "dhl/analytical.hpp"
#include "dhl/config.hpp"
#include "faults/fault_injector.hpp"

namespace dhl {
namespace core {

/**
 * MTBF/MTTR of the repairable subsystems, hours.
 *
 * Defaults are drawn from published field data on the nearest deployed
 * analogues rather than invented round numbers:
 *
 *  - LIM propulsion: urban maglev reliability allocations put the
 *    propulsion/inverter chain at ~5 years MTBF per motor unit (FTA
 *    Urban Maglev Technology Development Program reports; the HSST
 *    "Linimo" line logged >99.9% service availability with propulsion
 *    dominated by inverter electronics).  5 y = 43 800 h; LIM swaps
 *    are line-replaceable via the false floor, so MTTR ~6 h.
 *  - Track + vacuum: dry vacuum pumps and large pumping plants report
 *    ~1e5 h MTBF class figures (semiconductor-fab and accelerator
 *    practice, e.g. CERN vacuum-sector reliability studies); we use
 *    10 y = 87 600 h.  MTTR 12 h is dominated by pump-down and leak
 *    checks after a tube section is opened, not the part swap.
 *  - Docking station: industrial robot field MTBF is ~7 years
 *    (IFR/manufacturer service data, 60 000-80 000 h class); we use
 *    7 y = 61 320 h with a 2 h swap (stations are rack-local FRUs).
 *  - Cart mechanics: automated material-handling shuttles report
 *    low-1e-5 fault rates per handling cycle; 2e-5 per round trip
 *    with a 2 h shop turnaround at the library.
 */
struct ReliabilityConfig
{
    /** Each LIM (there are two). */
    double lim_mtbf = 43800.0;
    double lim_mttr = 6.0;

    /** Track + vacuum assembly (one). */
    double track_mtbf = 87600.0;
    double track_mttr = 12.0;

    /** Each rack docking station. */
    double station_mtbf = 61320.0;
    double station_mttr = 2.0;

    /** Probability a cart needs repair after a trip (mechanical). */
    double cart_repair_per_trip = 2e-5;

    /** Cart repair turnaround at the library, hours. */
    double cart_repair_hours = 2.0;
};

/** Validate; throws FatalError on nonsense. */
void validate(const ReliabilityConfig &cfg);

/**
 * Build the event-driven fault-injection config that realises this
 * analytical reliability model (same MTBF/MTTR/cart-repair figures, so
 * the DES's observed availability converges to
 * AvailabilityReport::system_availability — experiment E17).
 *
 * @param cfg     Validated analytical parameters (hours).
 * @param seed    Injector seed (one stream per component is derived).
 * @param horizon No failures are injected at or after this simulated
 *                time, s; defaults to unbounded.
 */
faults::FaultConfig
toFaultConfig(const ReliabilityConfig &cfg, std::uint64_t seed = 1,
              double horizon = std::numeric_limits<double>::infinity());

/** Computed availability figures. */
struct AvailabilityReport
{
    double lim_availability;      ///< Both LIMs up.
    double track_availability;    ///< Track/vacuum up.
    double stations_availability; ///< At least the required stations up.
    double system_availability;   ///< Product: the DHL can serve.
    double downtime_hours_per_year;
    double carts_in_repair_fraction; ///< Fleet fraction at the shop.
};

/** The availability model for one configured DHL. */
class AvailabilityModel
{
  public:
    AvailabilityModel(const DhlConfig &dhl,
                      const ReliabilityConfig &rel = {});

    const ReliabilityConfig &reliability() const { return rel_; }

    /** Steady-state availability report.
     *
     * @param trips_per_hour Average trip rate (for the cart-repair
     *                       rotation; 0 means idle fleet).
     */
    AvailabilityReport report(double trips_per_hour = 0.0) const;

    /**
     * Effective bulk bandwidth after derating the analytical model's
     * embodied bandwidth by the system availability.
     */
    double deratedBandwidth(double trips_per_hour = 0.0) const;

  private:
    static double steadyAvailability(double mtbf, double mttr);

    DhlConfig dhl_;
    ReliabilityConfig rel_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_RELIABILITY_HPP
