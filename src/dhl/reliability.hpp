/**
 * @file
 * DHL service availability model (Discussion §VI "Repairs": the
 * false-floor placement "makes it possible to do repairs with
 * reasonable access"; the library "offers an easy solution to remove
 * the carts for repair").
 *
 * A steady-state series-availability model over the repairable
 * components — the two LIMs, the track/vacuum assembly, and the
 * docking stations — plus the cart fleet's repair rotation, yielding
 * the fraction of time the DHL can serve transfers and the throughput
 * derating that implies.
 */

#ifndef DHL_DHL_RELIABILITY_HPP
#define DHL_DHL_RELIABILITY_HPP

#include <cstddef>
#include <cstdint>
#include <limits>

#include "dhl/analytical.hpp"
#include "dhl/config.hpp"
#include "faults/fault_injector.hpp"

namespace dhl {
namespace core {

/** MTBF/MTTR of the repairable subsystems, hours. */
struct ReliabilityConfig
{
    /** Each LIM (there are two). */
    double lim_mtbf = 50000.0;
    double lim_mttr = 8.0;

    /** Track + vacuum assembly (one). */
    double track_mtbf = 100000.0;
    double track_mttr = 24.0;

    /** Each rack docking station. */
    double station_mtbf = 30000.0;
    double station_mttr = 4.0;

    /** Probability a cart needs repair after a trip (mechanical). */
    double cart_repair_per_trip = 1e-5;

    /** Cart repair turnaround at the library, hours. */
    double cart_repair_hours = 2.0;
};

/** Validate; throws FatalError on nonsense. */
void validate(const ReliabilityConfig &cfg);

/**
 * Build the event-driven fault-injection config that realises this
 * analytical reliability model (same MTBF/MTTR/cart-repair figures, so
 * the DES's observed availability converges to
 * AvailabilityReport::system_availability — experiment E17).
 *
 * @param cfg     Validated analytical parameters (hours).
 * @param seed    Injector seed (one stream per component is derived).
 * @param horizon No failures are injected at or after this simulated
 *                time, s; defaults to unbounded.
 */
faults::FaultConfig
toFaultConfig(const ReliabilityConfig &cfg, std::uint64_t seed = 1,
              double horizon = std::numeric_limits<double>::infinity());

/** Computed availability figures. */
struct AvailabilityReport
{
    double lim_availability;      ///< Both LIMs up.
    double track_availability;    ///< Track/vacuum up.
    double stations_availability; ///< At least the required stations up.
    double system_availability;   ///< Product: the DHL can serve.
    double downtime_hours_per_year;
    double carts_in_repair_fraction; ///< Fleet fraction at the shop.
};

/** The availability model for one configured DHL. */
class AvailabilityModel
{
  public:
    AvailabilityModel(const DhlConfig &dhl,
                      const ReliabilityConfig &rel = {});

    const ReliabilityConfig &reliability() const { return rel_; }

    /** Steady-state availability report.
     *
     * @param trips_per_hour Average trip rate (for the cart-repair
     *                       rotation; 0 means idle fleet).
     */
    AvailabilityReport report(double trips_per_hour = 0.0) const;

    /**
     * Effective bulk bandwidth after derating the analytical model's
     * embodied bandwidth by the system availability.
     */
    double deratedBandwidth(double trips_per_hour = 0.0) const;

  private:
    static double steadyAvailability(double mtbf, double mttr);

    DhlConfig dhl_;
    ReliabilityConfig rel_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_RELIABILITY_HPP
