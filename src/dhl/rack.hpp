/**
 * @file
 * Rack-side fan-out model (paper §III-B5, §III-C): "Each docking
 * station can be connected to all nodes in the same rack using
 * existing PCIe technology so each node can access many SSDs in
 * parallel."
 *
 * Given D docked carts and N compute nodes, the model distributes the
 * carts' aggregate read bandwidth across the nodes (each node also has
 * its own attachment-bandwidth ceiling), computes collective and
 * per-node read times for sharded datasets, and sizes the SSD heat
 * load the Discussion's heat sinks must dissipate.
 */

#ifndef DHL_DHL_RACK_HPP
#define DHL_DHL_RACK_HPP

#include <cstddef>
#include <vector>

#include "dhl/config.hpp"
#include "storage/cart_array.hpp"

namespace dhl {
namespace core {

/** Compute-node side of the rack. */
struct RackConfig
{
    /** Compute nodes in the rack (a DGX-class pod). */
    std::size_t nodes = 8;

    /** Per-node attachment bandwidth to the docking backplane,
     *  bytes/s (e.g. a PCIe 6.0 x16 NIC-less fabric: ~121 GB/s). */
    double node_attach_bw = 121e9;
};

/** Validate; throws FatalError on nonsense. */
void validate(const RackConfig &cfg);

/** One node's share of a collective read. */
struct NodeShare
{
    double bytes;     ///< bytes assigned to the node.
    double bandwidth; ///< bytes/s the node achieves.
    double time;      ///< s for the node's shard.
};

/** The rack fan-out model. */
class RackModel
{
  public:
    RackModel(const DhlConfig &dhl, const RackConfig &rack = {});

    const RackConfig &rackConfig() const { return rack_; }

    /** Aggregate read bandwidth of @p docked carts, bytes/s. */
    double aggregateBandwidth(std::size_t docked) const;

    /**
     * Per-node bandwidth when @p active nodes read concurrently from
     * @p docked carts: the carts' aggregate split evenly, capped by
     * each node's attachment.
     */
    double perNodeBandwidth(std::size_t docked,
                            std::size_t active) const;

    /**
     * Shard @p bytes evenly over all nodes reading from @p docked
     * carts; the collective finishes when the last node does.
     */
    double collectiveReadTime(std::size_t docked, double bytes) const;

    /** Individual shares of an even shard. */
    std::vector<NodeShare> shardEvenly(std::size_t docked,
                                       double bytes) const;

    /**
     * Nodes beyond which adding more stops helping (the carts'
     * aggregate bandwidth is exhausted): ceil(aggregate / per-node
     * attach).
     */
    std::size_t saturatingNodeCount(std::size_t docked) const;

    /** Heat load of @p docked carts' SSDs under full read, W
     *  (Discussion §VI heat-sink sizing). */
    double heatLoad(std::size_t docked) const;

  private:
    DhlConfig dhl_;
    RackConfig rack_;
    storage::CartArray array_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_RACK_HPP
