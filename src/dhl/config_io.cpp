/**
 * @file
 * Implementation of DhlConfig serialisation.
 */

#include "dhl/config_io.hpp"

#include <set>
#include <string>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace dhl {
namespace core {

namespace {

const std::set<std::string> kKnownKeys = {
    "track_length", "max_speed", "kinematics", "dock_time",
    "lim.efficiency", "lim.accel", "lim.braking", "lim.regen_fraction",
    "ssds_per_cart", "ssd.name", "ssd.capacity_tb", "ssd.mass_g",
    "ssd.read_mbps", "ssd.write_mbps",
    "mass.magnet_fraction", "mass.fin_fraction", "mass.frame_mass_g",
    "pcie.lanes_per_ssd", "pcie.lane_gbps",
    "track_mode", "headway", "docking_stations", "library_slots",
};

physics::KinematicsMode
parseKinematics(const std::string &s)
{
    if (s == "paper")
        return physics::KinematicsMode::PaperApprox;
    if (s == "trapezoid")
        return physics::KinematicsMode::Trapezoid;
    fatal("kinematics must be 'paper' or 'trapezoid', got '" + s + "'");
}

std::string
kinematicsName(physics::KinematicsMode mode)
{
    return mode == physics::KinematicsMode::PaperApprox ? "paper"
                                                        : "trapezoid";
}

physics::BrakingMode
parseBraking(const std::string &s)
{
    if (s == "active")
        return physics::BrakingMode::ActiveLim;
    if (s == "regenerative")
        return physics::BrakingMode::Regenerative;
    if (s == "eddy")
        return physics::BrakingMode::EddyCurrent;
    fatal("lim.braking must be 'active', 'regenerative' or 'eddy', "
          "got '" + s + "'");
}

std::string
brakingName(physics::BrakingMode mode)
{
    switch (mode) {
      case physics::BrakingMode::ActiveLim:
        return "active";
      case physics::BrakingMode::Regenerative:
        return "regenerative";
      case physics::BrakingMode::EddyCurrent:
        return "eddy";
    }
    panic("unreachable braking mode");
}

TrackMode
parseTrackMode(const std::string &s)
{
    if (s == "exclusive")
        return TrackMode::Exclusive;
    if (s == "pipelined")
        return TrackMode::Pipelined;
    if (s == "dual" || s == "dual-track")
        return TrackMode::DualTrack;
    fatal("track_mode must be 'exclusive', 'pipelined' or 'dual', "
          "got '" + s + "'");
}

} // namespace

DhlConfig
loadConfig(const Properties &props)
{
    for (const auto &key : props.keys()) {
        fatal_if(kKnownKeys.count(key) == 0,
                 "unknown configuration key: " + key);
    }

    DhlConfig cfg = defaultConfig();
    cfg.track_length = props.getDouble("track_length", cfg.track_length);
    cfg.max_speed = props.getDouble("max_speed", cfg.max_speed);
    if (props.has("kinematics"))
        cfg.kinematics = parseKinematics(props.get("kinematics"));
    cfg.dock_time = props.getDouble("dock_time", cfg.dock_time);

    cfg.lim.efficiency =
        props.getDouble("lim.efficiency", cfg.lim.efficiency);
    cfg.lim.accel = props.getDouble("lim.accel", cfg.lim.accel);
    if (props.has("lim.braking"))
        cfg.lim.braking = parseBraking(props.get("lim.braking"));
    cfg.lim.regen_fraction =
        props.getDouble("lim.regen_fraction", cfg.lim.regen_fraction);

    cfg.ssds_per_cart = static_cast<std::size_t>(props.getInt(
        "ssds_per_cart", static_cast<long>(cfg.ssds_per_cart)));
    cfg.ssd.name = props.get("ssd.name", cfg.ssd.name);
    if (props.has("ssd.capacity_tb")) {
        cfg.ssd.capacity =
            units::terabytes(props.getDouble("ssd.capacity_tb", 0.0));
    }
    if (props.has("ssd.mass_g"))
        cfg.ssd.mass = units::grams(props.getDouble("ssd.mass_g", 0.0));
    if (props.has("ssd.read_mbps")) {
        cfg.ssd.seq_read_bw =
            units::megabytes(props.getDouble("ssd.read_mbps", 0.0));
    }
    if (props.has("ssd.write_mbps")) {
        cfg.ssd.seq_write_bw =
            units::megabytes(props.getDouble("ssd.write_mbps", 0.0));
    }

    cfg.mass.magnet_fraction =
        props.getDouble("mass.magnet_fraction", cfg.mass.magnet_fraction);
    cfg.mass.fin_fraction =
        props.getDouble("mass.fin_fraction", cfg.mass.fin_fraction);
    if (props.has("mass.frame_mass_g")) {
        cfg.mass.frame_mass =
            units::grams(props.getDouble("mass.frame_mass_g", 0.0));
    }

    cfg.pcie.lanes_per_ssd = static_cast<std::size_t>(props.getInt(
        "pcie.lanes_per_ssd",
        static_cast<long>(cfg.pcie.lanes_per_ssd)));
    if (props.has("pcie.lane_gbps")) {
        cfg.pcie.lane_bandwidth = units::gigabitsPerSecond(
            props.getDouble("pcie.lane_gbps", 0.0));
    }

    if (props.has("track_mode"))
        cfg.track_mode = parseTrackMode(props.get("track_mode"));
    cfg.headway = props.getDouble("headway", cfg.headway);
    cfg.docking_stations = static_cast<std::size_t>(props.getInt(
        "docking_stations", static_cast<long>(cfg.docking_stations)));
    cfg.library_slots = static_cast<std::size_t>(props.getInt(
        "library_slots", static_cast<long>(cfg.library_slots)));

    validate(cfg);
    return cfg;
}

Properties
saveConfig(const DhlConfig &cfg)
{
    Properties props;
    props.setDouble("track_length", cfg.track_length);
    props.setDouble("max_speed", cfg.max_speed);
    props.set("kinematics", kinematicsName(cfg.kinematics));
    props.setDouble("dock_time", cfg.dock_time);

    props.setDouble("lim.efficiency", cfg.lim.efficiency);
    props.setDouble("lim.accel", cfg.lim.accel);
    props.set("lim.braking", brakingName(cfg.lim.braking));
    props.setDouble("lim.regen_fraction", cfg.lim.regen_fraction);

    props.setInt("ssds_per_cart",
                 static_cast<long>(cfg.ssds_per_cart));
    props.set("ssd.name", cfg.ssd.name);
    props.setDouble("ssd.capacity_tb",
                    cfg.ssd.capacity / units::terabytes(1));
    props.setDouble("ssd.mass_g", units::toGrams(cfg.ssd.mass));
    props.setDouble("ssd.read_mbps", units::toMegabytes(cfg.ssd.seq_read_bw));
    props.setDouble("ssd.write_mbps",
                    units::toMegabytes(cfg.ssd.seq_write_bw));

    props.setDouble("mass.magnet_fraction", cfg.mass.magnet_fraction);
    props.setDouble("mass.fin_fraction", cfg.mass.fin_fraction);
    props.setDouble("mass.frame_mass_g",
                    units::toGrams(cfg.mass.frame_mass));

    props.setInt("pcie.lanes_per_ssd",
                 static_cast<long>(cfg.pcie.lanes_per_ssd));
    props.setDouble("pcie.lane_gbps",
                    units::toGigabitsPerSecond(cfg.pcie.lane_bandwidth));

    props.set("track_mode",
              cfg.track_mode == TrackMode::Exclusive
                  ? "exclusive"
                  : cfg.track_mode == TrackMode::Pipelined ? "pipelined"
                                                           : "dual");
    props.setDouble("headway", cfg.headway);
    props.setInt("docking_stations",
                 static_cast<long>(cfg.docking_stations));
    props.setInt("library_slots",
                 static_cast<long>(cfg.library_slots));
    return props;
}

} // namespace core
} // namespace dhl
