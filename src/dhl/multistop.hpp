/**
 * @file
 * Multi-stop DHL (Discussion §VI): a single tube serving several
 * endpoints along its length, e.g. library - rack A - rack B - rack C.
 *
 * Two pieces:
 *
 *  - MultiStopModel: closed-form per-hop metrics.  A hop between stops
 *    i and j covers the distance between their positions; short hops
 *    may not reach the configured v_max (triangular profile), which
 *    reduces both time-to-cruise and launch energy.
 *
 *  - MultiStopTrack: the DES resource.  A transit occupies every track
 *    segment between its two stops for its whole window, and a docking
 *    operation at an intermediate stop blocks carts from passing that
 *    stop (the paper: "during the cart docking process, it is not
 *    possible to shuttle another cart past the cart being docked").
 *    Admission finds the earliest window where all needed segments are
 *    free.
 */

#ifndef DHL_DHL_MULTISTOP_HPP
#define DHL_DHL_MULTISTOP_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "dhl/config.hpp"
#include "sim/sim_object.hpp"

namespace dhl {
namespace core {

/** Index of a stop along the tube (0 is the library end). */
using StopId = std::size_t;

/** Configuration of a multi-stop DHL. */
struct MultiStopConfig
{
    /** Base DHL parameters (speed, accel, dock time, cart...).  The
     *  base track_length is ignored in favour of the stop layout. */
    DhlConfig base;

    /**
     * Stop positions along the tube, metres, strictly increasing,
     * starting at 0 (the library).  Default: library plus three racks.
     */
    std::vector<double> stop_positions = {0.0, 200.0, 350.0, 500.0};
};

/** Validate a multi-stop configuration. */
void validate(const MultiStopConfig &cfg);

/** Closed-form metrics of one hop. */
struct HopMetrics
{
    qty::Metres distance;
    qty::MetresPerSecond peak_speed; ///< Actually reached.
    qty::Seconds travel_time;        ///< In the tube.
    qty::Seconds trip_time;          ///< Including undock + dock.
    qty::Joules energy;  ///< The LIM shot at the reached speed.
};

/** The closed-form multi-stop model. */
class MultiStopModel
{
  public:
    explicit MultiStopModel(const MultiStopConfig &cfg);

    const MultiStopConfig &config() const { return cfg_; }
    std::size_t numStops() const { return cfg_.stop_positions.size(); }

    /** Distance between two stops, m. */
    double hopDistance(StopId from, StopId to) const;

    /** Metrics of a hop between two distinct stops. */
    HopMetrics hop(StopId from, StopId to) const;

    /**
     * A tour visiting the given stop sequence (e.g. a delivery round
     * {0, 1, 2, 0}): summed time and energy, hop by hop.
     */
    HopMetrics tour(const std::vector<StopId> &stops) const;

  private:
    MultiStopConfig cfg_;
};

/** One granted multi-stop transit. */
struct TransitGrant
{
    double depart_time; ///< s.
    double arrive_time; ///< s (at the destination stop, pre-docking).
    double energy;      ///< J.
};

/**
 * The DES track resource for a multi-stop tube.  Bookkeeping is
 * interval-based per segment: segment k spans stops k..k+1.
 */
class MultiStopTrack : public sim::SimObject
{
  public:
    MultiStopTrack(sim::Simulator &sim, const MultiStopConfig &cfg,
                   std::string name = "mtrack");

    std::size_t numStops() const { return model_.numStops(); }
    const MultiStopModel &model() const { return model_; }

    /**
     * Reserve the earliest transit from @p from to @p to starting no
     * earlier than now: every segment between the stops must be free
     * for the whole transit window, and no blocked interval at an
     * intermediate stop may overlap it.
     */
    TransitGrant reserveTransit(StopId from, StopId to);

    /**
     * Block passage past @p stop during [now + 0, now + duration] — a
     * docking/undocking operation at an intermediate stop.  Endpoint
     * stops (first/last) never block passage.
     */
    void blockStop(StopId stop, double duration);

    /** Total LIM energy drawn, J. */
    double totalEnergy() const { return total_energy_; }

    /** Transits granted. */
    std::uint64_t transits() const { return transits_; }

  private:
    struct Interval
    {
        double start;
        double end;
    };

    /** Earliest time >= t at which [t, t+len) avoids all intervals. */
    static double earliestFree(const std::vector<Interval> &busy,
                               double t, double len);

    /** Drop intervals that ended before now (bounded memory). */
    void compact();

    MultiStopModel model_;
    std::vector<std::vector<Interval>> segment_busy_; ///< per segment
    std::vector<std::vector<Interval>> stop_blocked_; ///< per stop
    double total_energy_;
    std::uint64_t transits_;

    stats::Counter *stat_transits_;
    stats::Accumulator *stat_wait_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_MULTISTOP_HPP
