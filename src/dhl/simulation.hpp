/**
 * @file
 * High-level facade wiring a complete event-driven DHL system and
 * running bulk dataset transfers on it — the executable counterpart of
 * the closed-form AnalyticalModel (they must agree; experiment E11).
 */

#ifndef DHL_DHL_SIMULATION_HPP
#define DHL_DHL_SIMULATION_HPP

#include <cstdint>
#include <memory>
#include <ostream>

#include "dhl/analytical.hpp"
#include "dhl/config.hpp"
#include "dhl/controller.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_state.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace dhl {
namespace core {

/** Options for an event-driven bulk transfer run. */
struct BulkRunOptions
{
    /** Issue all opens up front so trips overlap (requires a Pipelined
     *  or DualTrack track mode and/or multiple docking stations to
     *  actually gain anything). */
    bool pipelined = false;

    /** Read each cart's contents at the rack before closing it. */
    bool include_read_time = false;

    /** Per-SSD per-trip failure probability (failure injection). */
    double failure_per_trip = 0.0;

    /** Component fault injection (disabled by default; when
     *  faults.enabled the run operates in degraded mode under a seeded
     *  FaultInjector — see DESIGN.md §8). */
    faults::FaultConfig faults{};
};

/** Result of an event-driven bulk transfer run. */
struct BulkRunResult
{
    double total_time;          ///< s (simulated).
    double total_energy;        ///< J (LIM shots).
    std::uint64_t launches;     ///< one-way launches.
    std::uint64_t carts;        ///< carts used.
    std::uint64_t ssd_failures; ///< failures injected en route.
    double avg_power;           ///< W.
    double effective_bandwidth; ///< bytes/s.
    double bytes_read;          ///< bytes actually read at the rack.
};

/** A complete simulated DHL system. */
class DhlSimulation : public sim::Snapshotable
{
  public:
    explicit DhlSimulation(const DhlConfig &cfg, std::uint64_t seed = 1);

    sim::Simulator &simulator() { return sim_; }
    DhlController &controller() { return *controller_; }
    const DhlConfig &config() const { return cfg_; }

    /**
     * Move @p bytes from the library to the rack endpoint: carts are
     * created preloaded, opened, optionally read, and closed.  Runs the
     * simulation to completion and reports the measured metrics.
     *
     * Serial mode (pipelined = false) reproduces the closed-form
     * BulkMetrics of AnalyticalModel::bulk() exactly.
     */
    BulkRunResult runBulkTransfer(double bytes,
                                  const BulkRunOptions &opts = {});

    /**
     * Turn on component fault injection (idempotent for an identical
     * config; fatal on an attempt to reconfigure).  Creates the
     * FaultState registry and the seeded FaultInjector and attaches
     * them to the controller.  Also invoked lazily by runBulkTransfer
     * when opts.faults.enabled.
     */
    void enableFaults(const faults::FaultConfig &cfg);

    /** True once fault injection is active. */
    bool faultsEnabled() const { return injector_ != nullptr; }

    /** The fault registry (nullptr until enableFaults). */
    faults::FaultState *faultState() { return fault_state_.get(); }

    /** The fault injector (nullptr until enableFaults). */
    faults::FaultInjector *faultInjector() { return injector_.get(); }

    /** The system trace (disabled until trace().enable()). */
    sim::TraceRecorder &trace() { return trace_; }

    /** Dump all statistics of every simulated object. */
    void dumpStats(std::ostream &os);

    /**
     * Checkpoint/restore of the whole system at a drained boundary
     * (sim/snapshot.hpp): kernel clock, trace, controller + track, and
     * — when fault injection is enabled — the registry and injector
     * timeline.  restoreState() must be called on a freshly constructed
     * DhlSimulation with the identical config, seed, and (if any)
     * enableFaults() call; it cancels the injector's constructor
     * schedule before rewinding the kernel clock.
     */
    void saveState(sim::SnapshotWriter &w) const override;
    void restoreState(sim::SnapshotReader &r) override;

  private:
    // dhl-analyze: transient(cfg_): the constructor input; a restored
    // simulation is rebuilt from the same config before restore
    DhlConfig cfg_;
    sim::Simulator sim_;
    sim::TraceRecorder trace_;
    std::unique_ptr<faults::FaultState> fault_state_;
    std::unique_ptr<faults::FaultInjector> injector_;
    std::unique_ptr<DhlController> controller_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_SIMULATION_HPP
