/**
 * @file
 * Serialisation of DhlConfig to and from the Properties format, so CLI
 * users and experiment scripts can keep configurations in files.
 *
 * Keys mirror the configuration structure ("track_length",
 * "lim.efficiency", "ssd.capacity_tb", ...); unknown keys are rejected
 * so typos surface instead of silently falling back to defaults.  The
 * round trip `loadConfig(saveConfig(cfg))` is exact (tested).
 */

#ifndef DHL_DHL_CONFIG_IO_HPP
#define DHL_DHL_CONFIG_IO_HPP

#include "common/properties.hpp"
#include "dhl/config.hpp"

namespace dhl {
namespace core {

/**
 * Build a configuration from properties: start from defaultConfig()
 * and override every present key.  fatal() on unknown keys or invalid
 * values (the result is validated).
 */
DhlConfig loadConfig(const Properties &props);

/** Serialise a configuration to properties (every key populated). */
Properties saveConfig(const DhlConfig &cfg);

} // namespace core
} // namespace dhl

#endif // DHL_DHL_CONFIG_IO_HPP
