/**
 * @file
 * Implementation of the DHL simulation facade.
 */

#include "dhl/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.hpp"

namespace dhl {
namespace core {

DhlSimulation::DhlSimulation(const DhlConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), trace_(sim_)
{
    validate(cfg_);
    controller_ =
        std::make_unique<DhlController>(sim_, cfg_, "dhl", seed);
    controller_->attachTrace(&trace_);
}

void
DhlSimulation::enableFaults(const faults::FaultConfig &cfg)
{
    fatal_if(!cfg.enabled, "enableFaults: config has enabled = false");
    faults::validate(cfg);
    if (injector_ != nullptr) {
        fatal_if(!(injector_->config() == cfg),
                 "fault injection is already enabled with a different "
                 "config; reconfiguring a live system is not supported");
        return;
    }
    fault_state_ = std::make_unique<faults::FaultState>(sim_);
    fault_state_->attachTrace(&trace_);
    injector_ = std::make_unique<faults::FaultInjector>(
        sim_, *fault_state_, cfg, controller_->numStations(),
        "dhl.faults");
    controller_->attachFaults(fault_state_.get());
}

BulkRunResult
DhlSimulation::runBulkTransfer(double bytes, const BulkRunOptions &opts)
{
    fatal_if(!(bytes > 0.0), "bulk transfer size must be positive");

    controller_->setFailureProbability(opts.failure_per_trip);
    if (opts.faults.enabled)
        enableFaults(opts.faults);

    const double capacity = cfg_.cartCapacity().value();
    const auto n_carts =
        static_cast<std::uint64_t>(std::ceil(bytes / capacity));
    fatal_if(n_carts > cfg_.library_slots,
             "dataset needs more carts than the library has slots; "
             "increase library_slots");

    // Preload the dataset across the carts (last one partial).
    double remaining = bytes;
    for (std::uint64_t i = 0; i < n_carts; ++i) {
        const double load = std::min(capacity, remaining);
        controller_->addCart(load);
        remaining -= load;
    }

    const double start = sim_.now();
    const double energy_before = controller_->totalEnergy();
    const std::uint64_t launches_before = controller_->launches();
    const std::uint64_t failures_before = controller_->ssdFailures();
    auto completed = std::make_shared<std::uint64_t>(0);
    auto bytes_read = std::make_shared<double>(0.0);

    // Per-cart pipeline: open -> [read] -> close.
    auto run_cart = [this, opts, bytes_read, completed](CartId id) {
        controller_->open(id, [this, opts, bytes_read, completed](
                                  Cart &cart, DockingStation &) {
            const CartId id = cart.id();
            auto finish = [this, id, completed](Cart &) { ++*completed; };
            if (opts.include_read_time && cart.storedBytes() > 0.0) {
                const double to_read = cart.storedBytes();
                controller_->read(
                    id, to_read,
                    [this, id, bytes_read, completed, finish](double b) {
                        *bytes_read += b;
                        controller_->close(id, finish);
                    });
            } else {
                controller_->close(id, finish);
            }
        });
    };

    // With fault injection active the injector keeps the event queue
    // populated (repairs, future failures), so running the queue dry
    // would overshoot: step until the transfers complete instead.  The
    // fault-free path is untouched, byte-identical with pre-fault runs.
    auto run_to = [this, completed](std::uint64_t target) {
        if (faultsEnabled()) {
            while (*completed < target && sim_.pendingEvents() > 0)
                sim_.step();
        } else {
            sim_.run();
        }
    };

    if (opts.pipelined) {
        // Issue everything; the controller's queue and the track's
        // admission policy shape the pipeline.
        for (std::uint64_t i = 0; i < n_carts; ++i)
            run_cart(static_cast<CartId>(i));
        run_to(n_carts);
    } else {
        // Strictly serial: each cart's round trip completes before the
        // next is requested (the paper's Table VI accounting).
        for (std::uint64_t i = 0; i < n_carts; ++i) {
            run_cart(static_cast<CartId>(i));
            run_to(i + 1);
        }
    }

    panic_if(*completed != n_carts,
             "bulk transfer finished with carts unaccounted for");

    BulkRunResult r{};
    r.total_time = sim_.now() - start;
    r.total_energy = controller_->totalEnergy() - energy_before;
    r.launches = controller_->launches() - launches_before;
    r.carts = n_carts;
    r.ssd_failures = controller_->ssdFailures() - failures_before;
    r.avg_power = r.total_energy / r.total_time;
    r.effective_bandwidth = bytes / r.total_time;
    r.bytes_read = *bytes_read;
    return r;
}

void
DhlSimulation::dumpStats(std::ostream &os)
{
    sim_.statsGroup().dump(os);
    controller_->statsGroup().dump(os);
    controller_->library().statsGroup().dump(os);
    controller_->track().statsGroup().dump(os);
    for (std::size_t i = 0; i < controller_->numStations(); ++i)
        controller_->station(i).statsGroup().dump(os);
}

void
DhlSimulation::saveState(sim::SnapshotWriter &w) const
{
    sim_.saveState(w);
    trace_.saveState(w);
    controller_->saveState(w);
    if (fault_state_ != nullptr)
        fault_state_->saveState(w);
    if (injector_ != nullptr)
        injector_->saveState(w);
}

void
DhlSimulation::restoreState(sim::SnapshotReader &r)
{
    // The injector's constructor-scheduled first failures must leave
    // the queue before the kernel clock rewinds (restore requires an
    // empty queue, and scheduling happens at absolute restored times).
    if (injector_ != nullptr)
        injector_->stop();
    sim_.restoreState(r);
    trace_.restoreState(r);
    controller_->restoreState(r);
    if (fault_state_ != nullptr)
        fault_state_->restoreState(r);
    if (injector_ != nullptr)
        injector_->restoreState(r);
}

} // namespace core
} // namespace dhl
