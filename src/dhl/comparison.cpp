/**
 * @file
 * Implementation of the DHL-versus-optical comparison helpers.
 */

#include "dhl/comparison.hpp"

#include "common/logging.hpp"
#include "physics/lim.hpp"

namespace dhl {
namespace core {

DesignSpaceRow
computeDesignSpaceRow(const DhlConfig &cfg, qty::Bytes dataset_bytes,
                      const BulkOptions &opts)
{
    AnalyticalModel model(cfg);

    DesignSpaceRow row{};
    row.config = cfg;
    row.launch = model.launch();
    row.bulk = model.bulk(dataset_bytes, opts);

    // Time speedup vs a single 400 Gbit/s link (route-independent).
    const network::TransferModel net(network::findRoute("A0"));
    row.time_speedup =
        net.transfer(dataset_bytes).time / row.bulk.total_time;

    for (const auto &route : network::canonicalRoutes())
        row.routes.push_back(model.compareBulk(dataset_bytes, route, opts));
    return row;
}

BreakEven
breakEven(const DhlConfig &cfg, const network::Route &route,
          const network::PowerConstants &pc)
{
    const AnalyticalModel model(cfg);
    const LaunchMetrics lm = model.launch();
    const qty::Watts route_power = route.power(pc);

    BreakEven be{};
    be.route_name = route.name();
    be.bytes_for_time = lm.trip_time * pc.link_rate;
    be.bytes_for_energy = lm.energy * pc.link_rate / route_power;
    return be;
}

std::vector<CrossoverPoint>
crossoverSweep(const std::vector<double> &lengths,
               const std::vector<double> &speeds,
               std::size_t ssds_per_cart)
{
    std::vector<CrossoverPoint> points;
    points.reserve(lengths.size() * speeds.size());
    for (double len : lengths) {
        for (double v : speeds) {
            DhlConfig cfg = makeConfig(v, len, ssds_per_cart);
            // Short tracks cannot fit the default 1000 m/s^2 LIM pair at
            // high speed; clamp the speed down rather than the
            // acceleration up so the energy model stays comparable.
            const qty::MetresPerSecond v_fit = physics::peakSpeed(
                qty::Metres{len}, qty::MetresPerSecond{v},
                qty::MetresPerSecondSquared{cfg.lim.accel});
            cfg.max_speed = v_fit.value();

            const AnalyticalModel model(cfg);
            const LaunchMetrics lm = model.launch();

            CrossoverPoint p{};
            p.track_length = qty::Metres{len};
            p.max_speed = v_fit;
            p.trip_time = lm.trip_time;
            p.launch_energy = lm.energy;
            p.vs_a0 = breakEven(cfg, network::findRoute("A0"));
            points.push_back(p);
        }
    }
    return points;
}

} // namespace core
} // namespace dhl
