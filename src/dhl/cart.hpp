/**
 * @file
 * The maglev cart entity used by the event-driven DHL simulation: state
 * machine, location, payload accounting, and per-SSD behavioural models
 * (wear and failure injection).
 */

#ifndef DHL_DHL_CART_HPP
#define DHL_DHL_CART_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "dhl/config.hpp"
#include "storage/ssd_model.hpp"

namespace dhl {
namespace core {

/** Identifier of a cart within one DHL system. */
using CartId = std::uint32_t;

/** Where a cart currently is (or is heading). */
enum class CartPlace
{
    Library,  ///< Stored in (or docking at) the library.
    Track,    ///< In the tube.
    Rack,     ///< Docked at (or docking at) a rack docking station.
};

std::string to_string(CartPlace place);

/** Lifecycle state of a cart. */
enum class CartState
{
    Stored,    ///< At rest in a library slot.
    Undocking, ///< Being lowered onto the track (dock_time).
    InFlight,  ///< Travelling through the tube.
    Docking,   ///< Being lifted off the track (dock_time).
    Docked,    ///< Attached, SSDs idle and reachable over PCIe.
    Busy,      ///< Attached, SSDs serving a read or write.
};

std::string to_string(CartState state);

/** One cart. */
class Cart
{
  public:
    /**
     * @param id               Cart id.
     * @param cfg              Owning DHL configuration (outlives cart).
     * @param connector        Docking connector technology.
     * @param failure_per_trip Per-SSD failure probability per trip.
     */
    Cart(CartId id, const DhlConfig &cfg,
         storage::ConnectorKind connector = storage::ConnectorKind::UsbC,
         double failure_per_trip = 0.0);

    CartId id() const { return id_; }
    CartState state() const { return state_; }
    CartPlace place() const { return place_; }

    /** Total storage capacity, bytes. */
    double capacity() const;

    /** Bytes currently stored across the cart's SSDs. */
    double storedBytes() const;

    /** Free capacity, bytes. */
    double freeBytes() const { return capacity() - storedBytes(); }

    /**
     * Load @p bytes, striped evenly over the SSDs.  fatal() on
     * overflow.  Instantaneous (setup-time helper); timed writes go via
     * the docking station.
     */
    void loadBytes(double bytes);

    /** Remove @p bytes, striped evenly.  fatal() if more than stored. */
    void unloadBytes(double bytes);

    /** Erase all contents. */
    void eraseAll();

    /** Transition helpers (validated: panic on illegal transitions). */
    void beginUndock();
    void launch();
    void beginDock(CartPlace destination);
    void finishDock();
    void beginIo();
    void finishIo();

    /** Record one mating cycle on every SSD connector. */
    void matingCycle();

    /** Roll per-SSD trip-failure dice; returns # of SSDs that failed. */
    std::size_t rollTripFailures(Rng &rng);

    /** Number of SSDs currently not healthy. */
    std::size_t unhealthySsds() const;

    /** Repair all SSDs (library maintenance). */
    void repairAll();

    /** Record a mechanical breakdown (cart pulled into the library's
     *  repair shop; the FaultState tracks the turnaround). */
    void recordBreakdown() { ++breakdowns_; }

    /** Mechanical breakdowns suffered so far. */
    std::uint64_t breakdowns() const { return breakdowns_; }

    /** Completed one-way trips. */
    std::uint64_t trips() const { return trips_; }

    const std::vector<storage::SsdModel> &ssds() const { return ssds_; }

  private:
    CartId id_;
    const DhlConfig &cfg_;
    CartState state_;
    CartPlace place_;
    std::uint64_t trips_;
    std::uint64_t breakdowns_ = 0;
    std::vector<storage::SsdModel> ssds_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_CART_HPP
