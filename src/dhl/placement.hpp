/**
 * @file
 * Dataset placement / cart caching at the library.
 *
 * The library holds a bounded number of carts; popular datasets keep
 * their carts resident ("the same datasets must be used again and
 * again", §II-D3), while cold datasets live in a backing disk pool and
 * must be written onto carts before they can be staged.  This layer
 * models that cache with LRU eviction at whole-dataset granularity and
 * closed-form access latencies:
 *
 *  - hit:  the carts are resident; staging costs the DHL bulk time.
 *  - miss: evict LRU datasets until the carts fit, load the dataset
 *          from the backing pool (bounded by the pool's read rate and
 *          the carts' write rate), then stage.
 */

#ifndef DHL_DHL_PLACEMENT_HPP
#define DHL_DHL_PLACEMENT_HPP

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "dhl/analytical.hpp"
#include "dhl/config.hpp"

namespace dhl {
namespace core {

/** Cache parameters. */
struct PlacementConfig
{
    /** Carts the library keeps for cacheable datasets. */
    std::size_t cache_carts = 64;

    /** Backing disk-pool read bandwidth, bytes/s. */
    double backing_read_bw = 50e9;
};

/** Validate; throws FatalError on nonsense. */
void validate(const PlacementConfig &cfg);

/** Outcome of one dataset access. */
struct PlacementAccess
{
    bool hit;            ///< Carts were resident.
    double load_time;    ///< s loading from the backing pool (miss).
    double stage_time;   ///< s of DHL shuttling.
    double total_time;   ///< load + stage.
    double dhl_energy;   ///< J of LIM shots.
    std::size_t carts;   ///< carts the dataset occupies.
    std::size_t evicted; ///< datasets evicted to make room.
};

/** The LRU cart cache. */
class CartCache
{
  public:
    CartCache(const DhlConfig &dhl, const PlacementConfig &cfg = {});

    const PlacementConfig &config() const { return cfg_; }

    /**
     * Access @p dataset of @p bytes: account a hit or a miss (with
     * evictions and backing load) and refresh recency.  fatal() if the
     * dataset alone exceeds the cache.
     */
    PlacementAccess access(const std::string &dataset, double bytes);

    /** True if the dataset's carts are resident. */
    bool resident(const std::string &dataset) const;

    /** Carts currently occupied. */
    std::size_t occupiedCarts() const { return occupied_; }

    /** Accesses so far. */
    std::uint64_t accesses() const { return accesses_; }

    /** Hits so far. */
    std::uint64_t hits() const { return hits_; }

    /** Hit rate in [0, 1]; 0 before any access. */
    double hitRate() const;

    /** Total time spent loading from the backing pool, s. */
    double totalLoadTime() const { return total_load_time_; }

  private:
    struct Entry
    {
        double bytes;
        std::size_t carts;
        std::list<std::string>::iterator lru_pos;
    };

    /** Evict LRU datasets until @p carts fit; returns evictions. */
    std::size_t makeRoom(std::size_t carts);

    DhlConfig dhl_;
    PlacementConfig cfg_;
    AnalyticalModel model_;

    std::unordered_map<std::string, Entry> entries_;
    std::list<std::string> lru_; ///< front = most recent
    std::size_t occupied_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;
    double total_load_time_ = 0.0;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_PLACEMENT_HPP
