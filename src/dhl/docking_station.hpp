/**
 * @file
 * A rack-side docking station: lifts one arriving cart off the track
 * (dock_time), exposes its SSD array to the rack over PCIe, serves timed
 * reads/writes at the array bandwidth, and ejects the cart back onto the
 * track (dock_time).
 */

#ifndef DHL_DHL_DOCKING_STATION_HPP
#define DHL_DHL_DOCKING_STATION_HPP

#include <cstdint>
#include <functional>

#include "dhl/cart.hpp"
#include "dhl/config.hpp"
#include "faults/fault_state.hpp"
#include "sim/sim_object.hpp"
#include "storage/cart_array.hpp"

namespace dhl {
namespace core {

/** One docking station at the rack endpoint. */
class DockingStation : public sim::SimObject
{
  public:
    using Done = std::function<void()>;
    using IoDone = std::function<void(double /*bytes*/)>;

    DockingStation(sim::Simulator &sim, const DhlConfig &cfg,
                   std::string name);

    /** True if no cart is present or inbound. */
    bool free() const { return !reserved_; }

    /** True if the station is serviceable (up per the attached fault
     *  registry; always true without one). */
    bool operational() const
    {
        return faults_ == nullptr ||
               faults_->up(faults::Component::Station, fault_index_);
    }

    /** free() and operational(): may accept a new reservation.  A
     *  station that fails with a cart present keeps serving it (the
     *  repair crew works around the docked cart); it only stops
     *  accepting new carts.  A cart already in flight towards a
     *  station that fails mid-trip still docks — the reservation
     *  sticks, mirroring how in-flight carts complete their trip. */
    bool available() const { return free() && operational(); }

    /** Attach the fault registry and this station's component index
     *  (nullptr to detach). */
    void attachFaults(const faults::FaultState *faults,
                      std::uint32_t index)
    {
        faults_ = faults;
        fault_index_ = index;
    }

    /** The cart currently present (or inbound); null when free. */
    Cart *cart() const { return cart_; }

    /**
     * Claim the station for an inbound cart (call at launch time so two
     * carts are never sent to the same station).
     */
    void reserve(Cart &cart);

    /**
     * Begin docking the reserved cart (call at its arrival time).
     * Completes after dock_time; @p done fires with the cart Docked.
     */
    void beginDock(Done done);

    /**
     * Begin undocking the present cart.  Completes after dock_time;
     * @p done fires with the cart InFlight-ready (still reserved until
     * release()).
     */
    void beginUndock(Done done);

    /** Free the station after the undocked cart has departed. */
    void release();

    /**
     * Read @p bytes from the docked cart at the array bandwidth.
     * @p done fires with the byte count when the transfer completes.
     */
    void read(double bytes, IoDone done);

    /** Write @p bytes to the docked cart (must fit). */
    void write(double bytes, IoDone done);

    /** Bytes read/written through this station so far. */
    double bytesRead() const { return bytes_read_; }
    double bytesWritten() const { return bytes_written_; }

    /** Completed dock operations (a dock or an undock each count 1). */
    std::uint64_t matingOperations() const { return matings_; }

  private:
    const DhlConfig &cfg_;
    const faults::FaultState *faults_ = nullptr;
    std::uint32_t fault_index_ = 0;
    storage::CartArray array_;
    Cart *cart_;
    bool reserved_;
    bool busy_io_;

    double bytes_read_;
    double bytes_written_;
    std::uint64_t matings_;

    stats::Counter *stat_docks_;
    stats::Counter *stat_undocks_;
    stats::Scalar *stat_bytes_read_;
    stats::Scalar *stat_bytes_written_;
    stats::Accumulator *stat_io_time_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_DOCKING_STATION_HPP
