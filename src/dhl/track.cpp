/**
 * @file
 * Implementation of the track admission logic.
 */

#include "dhl/track.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "physics/lim.hpp"
#include "physics/profile.hpp"

namespace dhl {
namespace core {

Track::Track(sim::Simulator &sim, const DhlConfig &cfg, std::string name)
    : sim::SimObject(sim, std::move(name)),
      cfg_(cfg),
      drain_time_(0.0),
      last_depart_{-1e300, -1e300},
      has_last_direction_(false),
      last_direction_(Direction::Outbound),
      total_energy_(0.0),
      launches_(0),
      launches_dir_{0, 0}
{
    validate(cfg);
    // The DES layer carries plain doubles; unwrap at this boundary
    // (DESIGN.md §9).
    travel_time_ =
        physics::travelTime(qty::Metres{cfg.track_length},
                            qty::MetresPerSecond{cfg.max_speed},
                            qty::MetresPerSecondSquared{cfg.lim.accel},
                            cfg.kinematics)
            .value();
    shot_energy_ = physics::shotEnergy(cfg.cartMass(),
                                       qty::MetresPerSecond{cfg.max_speed},
                                       cfg.lim)
                       .value();

    auto &sg = statsGroup();
    stat_launches_[0] =
        &sg.addCounter("launches_outbound", "library->rack launches");
    stat_launches_[1] =
        &sg.addCounter("launches_inbound", "rack->library launches");
    stat_energy_ = &sg.addScalar("lim_energy", "total LIM energy, J");
    stat_wait_ =
        &sg.addAccumulator("launch_wait", "admission wait per launch, s");
}

LaunchGrant
Track::reserveLaunch(Direction dir)
{
    panic_if(!launchable(),
             name() + ": launch reserved while the track or a LIM is "
                      "down (park the trip and retry)");
    const double t = now();
    double depart = t;

    switch (cfg_.track_mode) {
      case TrackMode::Exclusive:
        // One cart in the tube at a time, regardless of direction.
        depart = std::max(depart, drain_time_);
        break;

      case TrackMode::Pipelined: {
        // Same direction: headway behind the previous cart.  Direction
        // change: wait for the tube to drain completely.
        const auto d = static_cast<int>(dir);
        if (has_last_direction_ && last_direction_ != dir)
            depart = std::max(depart, drain_time_);
        depart = std::max(depart, last_depart_[d] + cfg_.headway);
        break;
      }

      case TrackMode::DualTrack: {
        // Independent tube per direction; only the headway applies.
        const auto d = static_cast<int>(dir);
        depart = std::max(depart, last_depart_[d] + cfg_.headway);
        break;
      }
    }

    LaunchGrant g{};
    g.depart_time = depart;
    g.arrive_time = depart + travel_time_;
    g.energy = shot_energy_;

    const auto d = static_cast<int>(dir);
    last_depart_[d] = depart;
    drain_time_ = std::max(drain_time_, g.arrive_time);
    has_last_direction_ = true;
    last_direction_ = dir;

    total_energy_ += shot_energy_;
    ++launches_;
    ++launches_dir_[d];
    stat_launches_[d]->increment();
    stat_energy_->add(shot_energy_);
    stat_wait_->sample(depart - t);
    return g;
}

std::uint64_t
Track::launches(Direction dir) const
{
    return launches_dir_[static_cast<int>(dir)];
}

void
Track::saveState(sim::SnapshotWriter &w) const
{
    sim::SnapshotScope<sim::SnapshotWriter> scope(w, "track");
    w.putDouble("drain_time", drain_time_);
    w.putDouble("last_depart_out", last_depart_[0]);
    w.putDouble("last_depart_in", last_depart_[1]);
    w.putBool("has_last_direction", has_last_direction_);
    w.putBool("last_inbound", last_direction_ == Direction::Inbound);
    w.putDouble("total_energy", total_energy_);
    w.putU64("launches", launches_);
    w.putU64("launches_out", launches_dir_[0]);
    w.putU64("launches_in", launches_dir_[1]);
}

void
Track::restoreState(sim::SnapshotReader &r)
{
    sim::SnapshotScope<sim::SnapshotReader> scope(r, "track");
    drain_time_ = r.getDouble("drain_time");
    last_depart_[0] = r.getDouble("last_depart_out");
    last_depart_[1] = r.getDouble("last_depart_in");
    has_last_direction_ = r.getBool("has_last_direction");
    last_direction_ = r.getBool("last_inbound") ? Direction::Inbound
                                                : Direction::Outbound;
    total_energy_ = r.getDouble("total_energy");
    launches_ = r.getU64("launches");
    launches_dir_[0] = r.getU64("launches_out");
    launches_dir_[1] = r.getU64("launches_in");
    stat_energy_->set(total_energy_);
}

} // namespace core
} // namespace dhl
