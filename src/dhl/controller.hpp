/**
 * @file
 * The DHL management software layer (paper §III-D): implements the
 * four-command API — Open, Close, Read, Write — over the event-driven
 * library / track / docking-station substrate, with FIFO queueing when
 * the rack's docking stations are all claimed, per-launch energy
 * accounting, and in-flight SSD failure injection with the paper's
 * RAID-ameliorates-it recovery story.
 */

#ifndef DHL_DHL_CONTROLLER_HPP
#define DHL_DHL_CONTROLLER_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/random.hpp"
#include "dhl/cart.hpp"
#include "dhl/config.hpp"
#include "dhl/docking_station.hpp"
#include "dhl/library.hpp"
#include "dhl/scheduler.hpp"
#include "dhl/track.hpp"
#include "faults/fault_state.hpp"
#include "sim/sim_object.hpp"
#include "sim/trace.hpp"

namespace dhl {
namespace core {

/** The DHL controller: owns the whole simulated system of one DHL. */
class DhlController : public sim::SimObject
{
  public:
    /** Fires once an opened cart is docked at a rack station. */
    using OpenCb = std::function<void(Cart &, DockingStation &)>;

    /** Fires once a closed cart is stored back in the library. */
    using CloseCb = std::function<void(Cart &)>;

    /** Fires when a read/write completes, with the byte count. */
    using IoCb = std::function<void(double)>;

    DhlController(sim::Simulator &sim, const DhlConfig &cfg,
                  std::string name = "dhl", std::uint64_t seed = 1);

    const DhlConfig &config() const { return cfg_; }
    Library &library() { return *library_; }
    Track &track() { return *track_; }
    std::size_t numStations() const { return stations_.size(); }
    DockingStation &station(std::size_t i);

    //------------------------------------------------------------------
    // The software API (paper §III-D)
    //------------------------------------------------------------------

    /**
     * Open: request a cart from the library.  If all rack docking
     * stations are claimed the request queues under the configured
     * scheduling policy (FIFO by default); once a station frees, the
     * cart is undocked, shuttled, docked, and @p cb fires.
     */
    void open(CartId id, OpenCb cb);

    /** Open with scheduling metadata (priority / deadline). */
    void open(CartId id, const RequestMeta &meta, OpenCb cb);

    /**
     * Close: disconnect a docked cart and shuttle it back to the
     * library; @p cb fires once it is stored.  Frees the station when
     * the cart departs, which may dispatch a queued open.
     */
    void close(CartId id, CloseCb cb);

    /** Read @p bytes from a docked cart (local PCIe bandwidth). */
    void read(CartId id, double bytes, IoCb cb);

    /** Write @p bytes to a docked cart. */
    void write(CartId id, double bytes, IoCb cb);

    //------------------------------------------------------------------
    // Accounting
    //------------------------------------------------------------------

    /** Total LIM energy drawn so far, J. */
    double totalEnergy() const { return track_->totalEnergy(); }

    /** Launches performed so far. */
    std::uint64_t launches() const { return track_->launches(); }

    /** SSD failures injected in flight so far. */
    std::uint64_t ssdFailures() const { return ssd_failures_; }

    /** Open requests currently waiting for a docking station. */
    std::size_t queuedOpens() const { return scheduler_->size(); }

    /**
     * Replace the queueing policy (must be done while the queue is
     * empty).  Default: FIFO.
     */
    void setScheduler(std::unique_ptr<OpenScheduler> scheduler);

    /** The active policy's name. */
    std::string schedulerName() const { return scheduler_->name(); }

    /** Set the per-SSD per-trip failure probability for new carts. */
    void setFailureProbability(double p) { failure_per_trip_ = p; }

    /** Convenience: create a preloaded cart in the library. */
    Cart &addCart(double preload_bytes = 0.0);

    /**
     * Attach a trace recorder; the controller emits "api" records for
     * every command, "track" records for every launch/arrival, and
     * "fault" records for degraded-mode decisions (parked trips, held
     * opens, cart breakdowns).  Pass nullptr to detach.  The recorder
     * must outlive the controller (or be detached first).
     */
    void attachTrace(sim::TraceRecorder *trace) { trace_ = trace; }

    //------------------------------------------------------------------
    // Degraded-mode operation (see DESIGN.md §8)
    //------------------------------------------------------------------

    /**
     * Attach the fault registry driven by a faults::FaultInjector.
     * While attached:
     *
     *  - Opens on carts rotating through the repair shop are held and
     *    re-issued at the repair turnaround.
     *  - Opens are queued (not started) while launches are blocked or
     *    no operational docking station is free; every repair
     *    completion re-dispatches the queue to surviving stations.
     *  - Trips whose launch is blocked by a LIM/track outage park in
     *    place and retry with bounded exponential backoff
     *    (FaultState::retryPolicy); carts already in the tube finish
     *    their trip.
     *  - Carts roll per-trip breakdown dice when they return to the
     *    library and derate the fleet while in the repair shop.
     *
     * The registry must outlive the controller (or be detached with
     * nullptr; listeners registered here die with the registry).
     */
    void attachFaults(faults::FaultState *faults);

    /** The attached fault registry (nullptr when fault-free). */
    faults::FaultState *faultState() { return faults_; }

    /**
     * Remove and return every queued (not yet started) open in arrival
     * order.  The ops-layer dispatcher pulls the queue off a track
     * whose service went down and re-routes the work fleet-wide; the
     * returned callbacks still expect this controller's Cart and
     * DockingStation, so re-routers resubmit at the job level rather
     * than replaying the callbacks elsewhere.
     */
    std::vector<QueuedOpen> drainQueuedOpens();

    /** Trips parked by a launch-blocking outage so far. */
    std::uint64_t parkedLaunches() const { return parked_launches_; }

    /** Opens held because the target cart was in repair. */
    std::uint64_t heldOpens() const { return held_opens_; }

    /** Per-trip cart breakdowns rolled at the library. */
    std::uint64_t cartBreakdowns() const { return cart_breakdowns_; }

    /**
     * Checkpoint/restore at a drained boundary: no open may be queued
     * or in flight and every cart must be stored (fatal otherwise) —
     * the serving loop guarantees this by draining request work before
     * snapshotting.  Captures the SSD-failure RNG position, the open
     * sequence counter, the degraded-mode tallies, and the track's
     * admission/energy state.
     */
    void saveState(sim::SnapshotWriter &w) const override;
    void restoreState(sim::SnapshotReader &r) override;

  private:
    DockingStation *findFreeStation();
    bool launchesBlocked() const
    {
        return faults_ != nullptr && !faults_->launchOk();
    }
    void dispatchOpens();
    void startOpen(CartId id, OpenCb cb, DockingStation &st);
    void launchOutbound(CartId id, DockingStation &st, double requested,
                        OpenCb cb, double backoff);
    void launchInbound(CartId id, DockingStation &st, CloseCb cb,
                       double backoff);
    void finishClose(CartId id, CloseCb cb);
    void handleArrivalFailures(Cart &cart);
    bool tracingOn() const
    {
        return trace_ != nullptr && trace_->enabled();
    }
    void traceEvent(std::string_view category, std::string_view message);

    // dhl-analyze: transient(cfg_, library_, stations_): rebuilt
    // identically by the constructor from the same DhlConfig; the
    // Library and stations snapshot themselves as separate objects
    DhlConfig cfg_;
    std::unique_ptr<Library> library_;
    std::unique_ptr<Track> track_;
    std::vector<std::unique_ptr<DockingStation>> stations_;
    std::unordered_map<CartId, DockingStation *> cart_station_;
    std::unique_ptr<OpenScheduler> scheduler_;
    std::uint64_t next_seq_;
    // dhl-analyze: transient(trace_, faults_): wiring pointers,
    // re-attached by the harness before restore
    sim::TraceRecorder *trace_ = nullptr;
    faults::FaultState *faults_ = nullptr;
    Rng rng_;
    // dhl-analyze: transient(failure_per_trip_): derived from the
    // config by the constructor, never mutated afterwards
    double failure_per_trip_;
    std::uint64_t ssd_failures_;
    std::uint64_t parked_launches_ = 0;
    std::uint64_t held_opens_ = 0;
    std::uint64_t cart_breakdowns_ = 0;

    // dhl-analyze: transient(stat_opens_, stat_closes_, stat_reads_,
    // stat_writes_, stat_failures_, stat_parked_, stat_held_opens_,
    // stat_breakdowns_, stat_open_latency_): host-side stats tallies,
    // restart from the boundary
    stats::Counter *stat_opens_;
    stats::Counter *stat_closes_;
    stats::Counter *stat_reads_;
    stats::Counter *stat_writes_;
    stats::Counter *stat_failures_;
    stats::Counter *stat_parked_;
    stats::Counter *stat_held_opens_;
    stats::Counter *stat_breakdowns_;
    stats::Accumulator *stat_open_latency_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_CONTROLLER_HPP
