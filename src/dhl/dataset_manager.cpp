/**
 * @file
 * Implementation of the dataset manager.
 */

#include "dhl/dataset_manager.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.hpp"

namespace dhl {
namespace core {

std::string
to_string(DatasetPlacement placement)
{
    switch (placement) {
      case DatasetPlacement::Library:
        return "library";
      case DatasetPlacement::Staged:
        return "staged";
      case DatasetPlacement::InTransit:
        return "in-transit";
      case DatasetPlacement::Mixed:
        return "mixed";
    }
    panic("unreachable dataset placement");
}

DatasetManager::DatasetManager(DhlController &controller)
    : controller_(controller)
{}

const std::vector<CartId> &
DatasetManager::registerDataset(const std::string &name, double bytes)
{
    fatal_if(name.empty(), "a dataset needs a name");
    fatal_if(datasets_.count(name) != 0,
             "dataset '" + name + "' is already registered");
    fatal_if(!(bytes > 0.0), "dataset size must be positive");

    const double capacity = controller_.config().cartCapacity().value();
    const auto n_carts =
        static_cast<std::size_t>(std::ceil(bytes / capacity));

    Entry e{};
    e.bytes = bytes;
    double remaining = bytes;
    for (std::size_t i = 0; i < n_carts; ++i) {
        const double load = std::min(capacity, remaining);
        Cart &cart = controller_.addCart(load);
        e.carts.push_back(cart.id());
        remaining -= load;
    }
    auto [it, inserted] = datasets_.emplace(name, std::move(e));
    panic_if(!inserted, "dataset insertion raced");
    order_.push_back(name);
    return it->second.carts;
}

bool
DatasetManager::has(const std::string &name) const
{
    return datasets_.count(name) != 0;
}

std::vector<std::string>
DatasetManager::names() const
{
    return order_;
}

const DatasetManager::Entry &
DatasetManager::entry(const std::string &name) const
{
    auto it = datasets_.find(name);
    fatal_if(it == datasets_.end(), "unknown dataset: " + name);
    return it->second;
}

DatasetInfo
DatasetManager::info(const std::string &name) const
{
    const Entry &e = entry(name);
    DatasetInfo out{};
    out.name = name;
    out.bytes = e.bytes;
    out.carts = e.carts;

    std::size_t stored = 0, docked = 0;
    for (CartId id : e.carts) {
        const Cart &c = controller_.library().cart(id);
        if (c.place() == CartPlace::Library &&
            c.state() == CartState::Stored) {
            ++stored;
        } else if (c.place() == CartPlace::Rack &&
                   (c.state() == CartState::Docked ||
                    c.state() == CartState::Busy)) {
            ++docked;
        }
    }
    if (stored == e.carts.size())
        out.placement = DatasetPlacement::Library;
    else if (docked == e.carts.size())
        out.placement = DatasetPlacement::Staged;
    else if (stored + docked == e.carts.size())
        out.placement = DatasetPlacement::Mixed;
    else
        out.placement = DatasetPlacement::InTransit;
    return out;
}

void
DatasetManager::stage(const std::string &name, Done done,
                      const RequestMeta &meta)
{
    const Entry &e = entry(name);
    // Staged means every cart docked at once; with fewer stations than
    // carts the later opens could never dispatch (the earlier carts
    // hold their stations until unstage), deadlocking the request.
    fatal_if(e.carts.size() > controller_.numStations(),
             "dataset '" + name + "' spans " +
                 std::to_string(e.carts.size()) +
                 " carts but the rack has only " +
                 std::to_string(controller_.numStations()) +
                 " docking stations; add stations or split the dataset");
    auto pending = std::make_shared<std::size_t>(e.carts.size());
    for (CartId id : e.carts) {
        controller_.open(id, meta,
                         [pending, done](Cart &, DockingStation &) {
                             if (--*pending == 0 && done)
                                 done();
                         });
    }
}

void
DatasetManager::unstage(const std::string &name, Done done)
{
    const Entry &e = entry(name);
    auto pending = std::make_shared<std::size_t>(e.carts.size());
    for (CartId id : e.carts) {
        controller_.close(id, [pending, done](Cart &) {
            if (--*pending == 0 && done)
                done();
        });
    }
}

void
DatasetManager::readAll(const std::string &name, ReadDone done)
{
    const Entry &e = entry(name);
    const DatasetInfo inf = info(name);
    fatal_if(inf.placement != DatasetPlacement::Staged,
             "dataset '" + name + "' is not fully staged (" +
                 to_string(inf.placement) + ")");

    auto pending = std::make_shared<std::size_t>(e.carts.size());
    auto total = std::make_shared<double>(0.0);
    for (CartId id : e.carts) {
        const Cart &c = controller_.library().cart(id);
        controller_.read(id, c.storedBytes(),
                         [pending, total, done](double bytes) {
                             *total += bytes;
                             if (--*pending == 0 && done)
                                 done(*total);
                         });
    }
}

double
DatasetManager::totalBytes() const
{
    // Sum in sorted-name order: datasets_ is an unordered_map, and a
    // float accumulation in hash order would not be reproducible
    // across library implementations.
    std::vector<std::string> names;
    names.reserve(datasets_.size());
    for (const auto &[name, e] : datasets_)
        names.push_back(name);
    std::sort(names.begin(), names.end());
    double total = 0.0;
    for (const auto &name : names)
        total += datasets_.at(name).bytes;
    return total;
}

} // namespace core
} // namespace dhl
