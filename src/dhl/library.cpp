/**
 * @file
 * Implementation of the library endpoint.
 */

#include "dhl/library.hpp"

#include <utility>

#include "common/logging.hpp"

namespace dhl {
namespace core {

Library::Library(sim::Simulator &sim, const DhlConfig &cfg, std::string name)
    : sim::SimObject(sim, std::move(name)), cfg_(cfg), inbound_(0)
{
    auto &sg = statsGroup();
    stat_docks_ = &sg.addCounter("docks", "carts docked into slots");
    stat_undocks_ = &sg.addCounter("undocks", "carts sent onto the track");
}

Cart &
Library::addCart(double preload_bytes, storage::ConnectorKind connector,
                 double failure_per_trip)
{
    fatal_if(freeSlots() == 0, "library is full: no free slot for a cart");
    const auto id = static_cast<CartId>(carts_.size());
    carts_.push_back(
        std::make_unique<Cart>(id, cfg_, connector, failure_per_trip));
    Cart &c = *carts_.back();
    if (preload_bytes > 0.0)
        c.loadBytes(preload_bytes);
    return c;
}

std::size_t
Library::storedCarts() const
{
    std::size_t n = 0;
    for (const auto &c : carts_) {
        if (c->place() == CartPlace::Library &&
            c->state() == CartState::Stored) {
            ++n;
        }
    }
    return n;
}

std::size_t
Library::freeSlots() const
{
    // Stored and Undocking carts hold their slot; carts mid-dock are
    // covered by `inbound_` (claimed at beginDock, released at finish).
    std::size_t occupied = inbound_;
    for (const auto &c : carts_) {
        if (c->place() == CartPlace::Library &&
            (c->state() == CartState::Stored ||
             c->state() == CartState::Undocking)) {
            ++occupied;
        }
    }
    return cfg_.library_slots - std::min(cfg_.library_slots, occupied);
}

Cart &
Library::cart(CartId id)
{
    fatal_if(id >= carts_.size(), "unknown cart id");
    return *carts_[id];
}

const Cart &
Library::cart(CartId id) const
{
    fatal_if(id >= carts_.size(), "unknown cart id");
    return *carts_[id];
}

void
Library::beginUndock(CartId id, Done done)
{
    Cart &c = cart(id);
    panic_if(c.place() != CartPlace::Library ||
                 c.state() != CartState::Stored,
             "library undocking a cart that is not stored here");
    c.beginUndock();
    schedule(cfg_.dock_time, [this, done = std::move(done)] {
        stat_undocks_->increment();
        if (done)
            done();
    });
}

void
Library::beginDock(CartId id, Done done)
{
    Cart &c = cart(id);
    fatal_if(freeSlots() == 0, "library has no free slot for arriving cart");
    c.beginDock(CartPlace::Library);
    ++inbound_;
    schedule(cfg_.dock_time, [this, &c, done = std::move(done)] {
        c.finishDock();
        --inbound_;
        stat_docks_->increment();
        if (done)
            done();
    });
}

} // namespace core
} // namespace dhl
