/**
 * @file
 * Pluggable scheduling policies for queued Open requests.
 *
 * The paper's software layer "schedules the shuttling of the carts
 * between the library and the endpoints" and must account for carts
 * being in one place at a time.  When every rack docking station is
 * claimed, Open requests queue; the policy decides which queued request
 * gets the next free station:
 *
 *  - FifoScheduler:      arrival order (the paper's implicit default).
 *  - PriorityScheduler:  highest priority first, FIFO within a level
 *                        (lets ML ingestion pre-empt background
 *                        backups).
 *  - DeadlineScheduler:  earliest deadline first (EDF), for bulk jobs
 *                        with completion targets.
 */

#ifndef DHL_DHL_SCHEDULER_HPP
#define DHL_DHL_SCHEDULER_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "dhl/cart.hpp"

namespace dhl {
namespace core {

class DockingStation;

/** Request metadata consulted by the scheduling policies. */
struct RequestMeta
{
    /** Larger is more urgent (PriorityScheduler). */
    int priority = 0;

    /** Absolute completion target, s (DeadlineScheduler). */
    double deadline = std::numeric_limits<double>::infinity();
};

/** One queued Open request. */
struct QueuedOpen
{
    CartId id;
    RequestMeta meta;
    double enqueue_time;
    std::uint64_t seq; ///< arrival order, for stable tie-breaking
    std::function<void(Cart &, DockingStation &)> cb;
};

/** Policy interface. */
class OpenScheduler
{
  public:
    virtual ~OpenScheduler() = default;

    /** Policy name for stats/traces. */
    virtual std::string name() const = 0;

    /** Enqueue a request. */
    virtual void push(QueuedOpen req) = 0;

    /** True if no request is queued. */
    virtual bool empty() const = 0;

    /** Queued request count. */
    virtual std::size_t size() const = 0;

    /**
     * Earliest enqueue time across all queued requests, +inf when
     * empty.  Degraded-mode operation reports how long opens were held
     * while the service was down (see DhlController::attachFaults).
     */
    virtual double oldestEnqueueTime() const = 0;

    /** Remove and return the next request per the policy. */
    virtual QueuedOpen pop() = 0;

    /**
     * Remove and return *all* queued requests in arrival (seq) order,
     * regardless of policy.  The ops-layer dispatcher drains a track's
     * queue when its service goes down so the fleet can re-route the
     * work; arrival order preserves fairness across the re-route.
     */
    virtual std::vector<QueuedOpen> drain() = 0;
};

/** Arrival order. */
class FifoScheduler : public OpenScheduler
{
  public:
    std::string name() const override { return "fifo"; }
    void push(QueuedOpen req) override;
    bool empty() const override { return queue_.empty(); }
    std::size_t size() const override { return queue_.size(); }
    double oldestEnqueueTime() const override;
    QueuedOpen pop() override;
    std::vector<QueuedOpen> drain() override;

  private:
    std::deque<QueuedOpen> queue_;
};

/** Highest priority first; FIFO within a priority level. */
class PriorityScheduler : public OpenScheduler
{
  public:
    std::string name() const override { return "priority"; }
    void push(QueuedOpen req) override;
    bool empty() const override { return items_.empty(); }
    std::size_t size() const override { return items_.size(); }
    double oldestEnqueueTime() const override;
    QueuedOpen pop() override;
    std::vector<QueuedOpen> drain() override;

  private:
    std::vector<QueuedOpen> items_;
};

/** Earliest deadline first; FIFO among equal deadlines. */
class DeadlineScheduler : public OpenScheduler
{
  public:
    std::string name() const override { return "edf"; }
    void push(QueuedOpen req) override;
    bool empty() const override { return items_.empty(); }
    std::size_t size() const override { return items_.size(); }
    double oldestEnqueueTime() const override;
    QueuedOpen pop() override;
    std::vector<QueuedOpen> drain() override;

  private:
    std::vector<QueuedOpen> items_;
};

/** Factory helpers. */
std::unique_ptr<OpenScheduler> makeFifoScheduler();
std::unique_ptr<OpenScheduler> makePriorityScheduler();
std::unique_ptr<OpenScheduler> makeDeadlineScheduler();

} // namespace core
} // namespace dhl

#endif // DHL_DHL_SCHEDULER_HPP
