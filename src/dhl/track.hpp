/**
 * @file
 * Track occupancy and launch admission for the event-driven DHL.
 *
 * The track grants departure times subject to the configured sharing
 * semantics:
 *
 *  - Exclusive:  one cart anywhere in the tube at a time (conservative;
 *                matches the paper's serial Table VI accounting).
 *  - Pipelined:  same-direction convoys separated by the headway; a
 *                direction reversal waits for the tube to drain.
 *  - DualTrack:  one tube per direction, each a convoy.
 *
 * The track also accounts launch energy (the LIM shot energy per
 * departure) so total system energy falls out of the simulation.
 */

#ifndef DHL_DHL_TRACK_HPP
#define DHL_DHL_TRACK_HPP

#include <cstdint>

#include "dhl/config.hpp"
#include "faults/fault_state.hpp"
#include "sim/sim_object.hpp"

namespace dhl {
namespace core {

/** Travel direction through the tube. */
enum class Direction
{
    Outbound = 0, ///< Library -> rack.
    Inbound = 1,  ///< Rack -> library.
};

/** One granted launch. */
struct LaunchGrant
{
    double depart_time;  ///< Absolute time the cart may depart, s.
    double arrive_time;  ///< Absolute arrival time at the far end, s.
    double energy;       ///< LIM energy charged to this launch, J.
};

/** The track resource. */
class Track : public sim::SimObject
{
  public:
    Track(sim::Simulator &sim, const DhlConfig &cfg,
          std::string name = "track");

    /** One-way travel time through the tube, s. */
    double travelTime() const { return travel_time_; }

    /**
     * Reserve the next admissible launch in @p dir, not earlier than
     * now.  The reservation immediately claims the tube; callers must
     * reserve in the order they intend to depart, and must not reserve
     * while !launchable() (degraded mode: park and retry instead).
     */
    LaunchGrant reserveLaunch(Direction dir);

    /**
     * True if the propulsion path is serviceable: both LIMs and the
     * track/vacuum assembly are up (always true without an attached
     * fault registry).  Carts already in the tube when a fault hits
     * complete their trip — a breach is modelled as blocking new
     * admissions, not as destroying in-flight carts.
     */
    bool launchable() const
    {
        return faults_ == nullptr || faults_->launchOk();
    }

    /** Attach the fault registry consulted by launchable() (nullptr to
     *  detach; the registry must outlive the track or be detached). */
    void attachFaults(const faults::FaultState *faults)
    {
        faults_ = faults;
    }

    /** Total LIM energy drawn so far, J. */
    double totalEnergy() const { return total_energy_; }

    /** Launches granted so far. */
    std::uint64_t launches() const { return launches_; }

    /** Launches granted in one direction. */
    std::uint64_t launches(Direction dir) const;

    /** Earliest time the tube is fully drained, s. */
    double drainTime() const { return drain_time_; }

    /**
     * Checkpoint/restore: the admission state (drain time, per-
     * direction last departures) and the energy/launch accumulators,
     * all bit-exact — restoring the accumulators to their checkpointed
     * values (rather than replaying deltas) is what keeps total energy
     * byte-identical across a restore, since (x + e) - x != e in
     * floating point.  The stats-group counters are host-side tallies
     * and restart from the boundary.
     */
    void saveState(sim::SnapshotWriter &w) const override;
    void restoreState(sim::SnapshotReader &r) override;

  private:
    // dhl-analyze: transient(cfg_, faults_): constructor wiring — a
    // config reference and a fault-state pointer re-attached on rebuild
    const DhlConfig &cfg_;
    const faults::FaultState *faults_ = nullptr;
    // dhl-analyze: transient(travel_time_, shot_energy_): derived from
    // the physics model in the constructor, never mutated afterwards
    double travel_time_;
    double shot_energy_;

    double drain_time_;            ///< When the tube is empty.
    double last_depart_[2];        ///< Per-direction last departure.
    bool has_last_direction_;
    Direction last_direction_;

    double total_energy_;
    std::uint64_t launches_;
    std::uint64_t launches_dir_[2];

    // dhl-analyze: transient(stat_launches_, stat_energy_, stat_wait_):
    // host-side stats tallies, restart from the boundary
    stats::Counter *stat_launches_[2];
    stats::Scalar *stat_energy_;
    stats::Accumulator *stat_wait_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_TRACK_HPP
