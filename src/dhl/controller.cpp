/**
 * @file
 * Implementation of the DHL controller / software API.
 */

#include "dhl/controller.hpp"

#include <utility>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace dhl {
namespace core {

DhlController::DhlController(sim::Simulator &sim, const DhlConfig &cfg,
                             std::string name, std::uint64_t seed)
    : sim::SimObject(sim, std::move(name)),
      cfg_(cfg),
      scheduler_(makeFifoScheduler()),
      next_seq_(0),
      rng_(seed),
      failure_per_trip_(0.0),
      ssd_failures_(0)
{
    validate(cfg_);
    library_ =
        std::make_unique<Library>(sim, cfg_, this->name() + ".library");
    track_ = std::make_unique<Track>(sim, cfg_, this->name() + ".track");
    stations_.reserve(cfg_.docking_stations);
    for (std::size_t i = 0; i < cfg_.docking_stations; ++i) {
        stations_.push_back(std::make_unique<DockingStation>(
            sim, cfg_, this->name() + ".station" + std::to_string(i)));
    }

    auto &sg = statsGroup();
    stat_opens_ = &sg.addCounter("opens", "open commands completed");
    stat_closes_ = &sg.addCounter("closes", "close commands completed");
    stat_reads_ = &sg.addCounter("reads", "read commands completed");
    stat_writes_ = &sg.addCounter("writes", "write commands completed");
    stat_failures_ =
        &sg.addCounter("ssd_failures", "in-flight SSD failures injected");
    stat_open_latency_ =
        &sg.addAccumulator("open_latency", "open request->docked, s");
}

DockingStation &
DhlController::station(std::size_t i)
{
    fatal_if(i >= stations_.size(), "docking station index out of range");
    return *stations_[i];
}

Cart &
DhlController::addCart(double preload_bytes)
{
    return library_->addCart(preload_bytes, storage::ConnectorKind::UsbC,
                             failure_per_trip_);
}

DockingStation *
DhlController::findFreeStation()
{
    for (auto &st : stations_) {
        if (st->free())
            return st.get();
    }
    return nullptr;
}

void
DhlController::traceEvent(const std::string &category,
                          const std::string &message)
{
    if (trace_ != nullptr)
        trace_->record(category, name(), message);
}

void
DhlController::open(CartId id, OpenCb cb)
{
    open(id, RequestMeta{}, std::move(cb));
}

void
DhlController::open(CartId id, const RequestMeta &meta, OpenCb cb)
{
    Cart &cart = library_->cart(id);
    fatal_if(cart.place() != CartPlace::Library ||
                 cart.state() != CartState::Stored,
             "open: cart " + std::to_string(id) +
                 " is not stored in the library");

    traceEvent("api", "open cart " + std::to_string(id));
    DockingStation *st = findFreeStation();
    if (st == nullptr) {
        traceEvent("api", "open cart " + std::to_string(id) + " queued");
        scheduler_->push(
            QueuedOpen{id, meta, now(), next_seq_++, std::move(cb)});
        return;
    }
    startOpen(id, std::move(cb), *st);
}

void
DhlController::setScheduler(std::unique_ptr<OpenScheduler> scheduler)
{
    fatal_if(scheduler == nullptr, "scheduler must not be null");
    fatal_if(!scheduler_->empty(),
             "cannot swap schedulers while requests are queued");
    scheduler_ = std::move(scheduler);
}

void
DhlController::startOpen(CartId id, OpenCb cb, DockingStation &st)
{
    Cart &cart = library_->cart(id);
    st.reserve(cart);
    const double requested = now();

    library_->beginUndock(id, [this, id, &st, requested,
                               cb = std::move(cb)]() mutable {
        Cart &cart = library_->cart(id);
        const LaunchGrant grant = track_->reserveLaunch(Direction::Outbound);
        // Depart when the track admits us.
        schedule(grant.depart_time - now(), [this, id] {
            library_->cart(id).launch();
            traceEvent("track",
                       "cart " + std::to_string(id) + " outbound");
        });
        // Arrive, roll failure dice, and dock.
        schedule(grant.arrive_time - now(), [this, id, &st, requested,
                                             cb = std::move(cb)]() mutable {
            Cart &cart = library_->cart(id);
            handleArrivalFailures(cart);
            st.beginDock([this, id, &st, requested,
                          cb = std::move(cb)]() mutable {
                Cart &cart = library_->cart(id);
                cart_station_[id] = &st;
                stat_opens_->increment();
                stat_open_latency_->sample(now() - requested);
                if (cb)
                    cb(cart, st);
            });
        });
        (void)cart;
    });
}

void
DhlController::close(CartId id, CloseCb cb)
{
    Cart &cart = library_->cart(id);
    fatal_if(cart.place() != CartPlace::Rack ||
                 cart.state() != CartState::Docked,
             "close: cart " + std::to_string(id) +
                 " is not docked at the rack");
    auto it = cart_station_.find(id);
    panic_if(it == cart_station_.end(),
             "docked cart has no station mapping");
    DockingStation *st = it->second;
    cart_station_.erase(it);
    traceEvent("api", "close cart " + std::to_string(id));

    st->beginUndock([this, id, st, cb = std::move(cb)]() mutable {
        const LaunchGrant grant = track_->reserveLaunch(Direction::Inbound);
        schedule(grant.depart_time - now(), [this, id, st] {
            library_->cart(id).launch();
            traceEvent("track",
                       "cart " + std::to_string(id) + " inbound");
            // The station is free once its cart has departed; serve any
            // queued open.
            st->release();
            dispatchOpens();
        });
        schedule(grant.arrive_time - now(), [this, id,
                                             cb = std::move(cb)]() mutable {
            Cart &cart = library_->cart(id);
            handleArrivalFailures(cart);
            library_->beginDock(id, [this, id, cb = std::move(cb)]() mutable {
                stat_closes_->increment();
                if (cb)
                    cb(library_->cart(id));
            });
        });
    });
}

void
DhlController::dispatchOpens()
{
    while (!scheduler_->empty()) {
        DockingStation *st = findFreeStation();
        if (st == nullptr)
            return;
        QueuedOpen req = scheduler_->pop();
        startOpen(req.id, std::move(req.cb), *st);
    }
}

void
DhlController::read(CartId id, double bytes, IoCb cb)
{
    auto it = cart_station_.find(id);
    fatal_if(it == cart_station_.end(),
             "read: cart " + std::to_string(id) + " is not docked");
    it->second->read(bytes, [this, cb = std::move(cb)](double b) {
        stat_reads_->increment();
        if (cb)
            cb(b);
    });
}

void
DhlController::write(CartId id, double bytes, IoCb cb)
{
    auto it = cart_station_.find(id);
    fatal_if(it == cart_station_.end(),
             "write: cart " + std::to_string(id) + " is not docked");
    it->second->write(bytes, [this, cb = std::move(cb)](double b) {
        stat_writes_->increment();
        if (cb)
            cb(b);
    });
}

void
DhlController::handleArrivalFailures(Cart &cart)
{
    const std::size_t failed = cart.rollTripFailures(rng_);
    if (failed > 0) {
        ssd_failures_ += failed;
        stat_failures_->increment(failed);
        traceEvent("failure", "cart " + std::to_string(cart.id()) +
                                  " lost " + std::to_string(failed) +
                                  " SSD(s) in flight");
        // Paper §III-D: "if an SSD fails in-flight, the endpoint's DHL
        // API will report the error, and RAID and backups can ameliorate
        // the issue."  We report and repair (spare rotation) so the data
        // remains addressable; the failure count is the observable.
        warn(name() + ": " + std::to_string(failed) + " SSD(s) failed on "
             "cart " + std::to_string(cart.id()) +
             "; recovered via RAID/backup");
        cart.repairAll();
    }
}

} // namespace core
} // namespace dhl
