/**
 * @file
 * Implementation of the DHL controller / software API.
 */

#include "dhl/controller.hpp"

#include <utility>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace dhl {
namespace core {

DhlController::DhlController(sim::Simulator &sim, const DhlConfig &cfg,
                             std::string name, std::uint64_t seed)
    : sim::SimObject(sim, std::move(name)),
      cfg_(cfg),
      scheduler_(makeFifoScheduler()),
      next_seq_(0),
      rng_(seed),
      failure_per_trip_(0.0),
      ssd_failures_(0)
{
    validate(cfg_);
    library_ =
        std::make_unique<Library>(sim, cfg_, this->name() + ".library");
    track_ = std::make_unique<Track>(sim, cfg_, this->name() + ".track");
    stations_.reserve(cfg_.docking_stations);
    for (std::size_t i = 0; i < cfg_.docking_stations; ++i) {
        stations_.push_back(std::make_unique<DockingStation>(
            sim, cfg_, this->name() + ".station" + std::to_string(i)));
    }

    auto &sg = statsGroup();
    stat_opens_ = &sg.addCounter("opens", "open commands completed");
    stat_closes_ = &sg.addCounter("closes", "close commands completed");
    stat_reads_ = &sg.addCounter("reads", "read commands completed");
    stat_writes_ = &sg.addCounter("writes", "write commands completed");
    stat_failures_ =
        &sg.addCounter("ssd_failures", "in-flight SSD failures injected");
    stat_parked_ = &sg.addCounter(
        "parked_launches", "trips parked by a launch-blocking outage");
    stat_held_opens_ = &sg.addCounter(
        "held_opens", "opens held while the cart was in repair");
    stat_breakdowns_ = &sg.addCounter(
        "cart_breakdowns", "per-trip mechanical cart breakdowns");
    stat_open_latency_ =
        &sg.addAccumulator("open_latency", "open request->docked, s");
}

DockingStation &
DhlController::station(std::size_t i)
{
    fatal_if(i >= stations_.size(), "docking station index out of range");
    return *stations_[i];
}

Cart &
DhlController::addCart(double preload_bytes)
{
    return library_->addCart(preload_bytes, storage::ConnectorKind::UsbC,
                             failure_per_trip_);
}

void
DhlController::attachFaults(faults::FaultState *faults)
{
    faults_ = faults;
    track_->attachFaults(faults);
    for (std::size_t i = 0; i < stations_.size(); ++i) {
        stations_[i]->attachFaults(faults,
                                   static_cast<std::uint32_t>(i));
    }
    if (faults != nullptr) {
        // Every repair may unblock held work: queued opens re-route to
        // whichever stations survive, parked launches retry on their
        // own bounded backoff.
        faults->onRepair([this] {
            if (tracingOn() && !scheduler_->empty() &&
                !launchesBlocked()) {
                traceEvent(
                    "fault",
                    "repair completed; dispatching " +
                        std::to_string(scheduler_->size()) +
                        " queued open(s), oldest waited " +
                        units::formatSig(
                            now() - scheduler_->oldestEnqueueTime(), 4) +
                        " s");
            }
            dispatchOpens();
        });
    }
}

DockingStation *
DhlController::findFreeStation()
{
    for (auto &st : stations_) {
        if (st->available())
            return st.get();
    }
    return nullptr;
}

void
DhlController::traceEvent(std::string_view category,
                          std::string_view message)
{
    if (trace_ != nullptr)
        trace_->record(category, name(), message);
}

void
DhlController::open(CartId id, OpenCb cb)
{
    open(id, RequestMeta{}, std::move(cb));
}

void
DhlController::open(CartId id, const RequestMeta &meta, OpenCb cb)
{
    Cart &cart = library_->cart(id);
    fatal_if(cart.place() != CartPlace::Library ||
                 cart.state() != CartState::Stored,
             "open: cart " + std::to_string(id) +
                 " is not stored in the library");

    // Held: the cart is rotating through the library's repair shop;
    // re-issue the open at the (known) repair turnaround.
    if (faults_ != nullptr && faults_->cartInRepair(id)) {
        ++held_opens_;
        stat_held_opens_->increment();
        const double wait = faults_->cartRepairEnd(id) - now();
        if (tracingOn()) {
            traceEvent("fault", "open cart " + std::to_string(id) +
                                    " held: cart in repair for another " +
                                    units::formatSig(wait, 4) + " s");
        }
        schedule(wait, [this, id, meta, cb = std::move(cb)]() mutable {
            open(id, meta, std::move(cb));
        });
        return;
    }

    if (tracingOn())
        traceEvent("api", "open cart " + std::to_string(id));
    // While launches are blocked the queue holds every open — carts
    // stay in the library instead of clogging stations they cannot
    // leave.
    DockingStation *st = launchesBlocked() ? nullptr : findFreeStation();
    if (st == nullptr) {
        if (tracingOn()) {
            traceEvent("api",
                       "open cart " + std::to_string(id) + " queued");
        }
        scheduler_->push(
            QueuedOpen{id, meta, now(), next_seq_++, std::move(cb)});
        return;
    }
    startOpen(id, std::move(cb), *st);
}

void
DhlController::setScheduler(std::unique_ptr<OpenScheduler> scheduler)
{
    fatal_if(scheduler == nullptr, "scheduler must not be null");
    fatal_if(!scheduler_->empty(),
             "cannot swap schedulers while requests are queued");
    scheduler_ = std::move(scheduler);
}

void
DhlController::startOpen(CartId id, OpenCb cb, DockingStation &st)
{
    Cart &cart = library_->cart(id);
    st.reserve(cart);
    const double requested = now();

    library_->beginUndock(id, [this, id, &st, requested,
                               cb = std::move(cb)]() mutable {
        launchOutbound(id, st, requested, std::move(cb), 0.0);
    });
}

void
DhlController::launchOutbound(CartId id, DockingStation &st,
                              double requested, OpenCb cb, double backoff)
{
    // Degraded mode: a LIM or track outage parks the trip in place
    // (cart waiting on the track apron, station still reserved) and
    // retries with bounded backoff.
    if (launchesBlocked()) {
        const double wait =
            faults::nextBackoff(faults_->retryPolicy(), backoff);
        ++parked_launches_;
        stat_parked_->increment();
        if (tracingOn()) {
            traceEvent("fault", "cart " + std::to_string(id) +
                                    " parked outbound; retry in " +
                                    units::formatSig(wait, 4) + " s");
        }
        schedule(wait, [this, id, &st, requested, wait,
                        cb = std::move(cb)]() mutable {
            launchOutbound(id, st, requested, std::move(cb), wait);
        });
        return;
    }

    const LaunchGrant grant = track_->reserveLaunch(Direction::Outbound);
    // Depart when the track admits us.
    schedule(grant.depart_time - now(), [this, id] {
        library_->cart(id).launch();
        if (tracingOn())
            traceEvent("track", "cart " + std::to_string(id) +
                                    " outbound");
    });
    // Arrive, roll failure dice, and dock.
    schedule(grant.arrive_time - now(), [this, id, &st, requested,
                                         cb = std::move(cb)]() mutable {
        Cart &cart = library_->cart(id);
        handleArrivalFailures(cart);
        st.beginDock([this, id, &st, requested,
                      cb = std::move(cb)]() mutable {
            Cart &cart = library_->cart(id);
            cart_station_[id] = &st;
            stat_opens_->increment();
            stat_open_latency_->sample(now() - requested);
            if (cb)
                cb(cart, st);
        });
    });
}

void
DhlController::close(CartId id, CloseCb cb)
{
    Cart &cart = library_->cart(id);
    fatal_if(cart.place() != CartPlace::Rack ||
                 cart.state() != CartState::Docked,
             "close: cart " + std::to_string(id) +
                 " is not docked at the rack");
    auto it = cart_station_.find(id);
    panic_if(it == cart_station_.end(),
             "docked cart has no station mapping");
    DockingStation *st = it->second;
    cart_station_.erase(it);
    if (tracingOn())
        traceEvent("api", "close cart " + std::to_string(id));

    st->beginUndock([this, id, st, cb = std::move(cb)]() mutable {
        launchInbound(id, *st, std::move(cb), 0.0);
    });
}

void
DhlController::launchInbound(CartId id, DockingStation &st, CloseCb cb,
                             double backoff)
{
    // Same parking policy as outbound: the undocked cart waits at its
    // (still reserved) station until the propulsion path is repaired.
    if (launchesBlocked()) {
        const double wait =
            faults::nextBackoff(faults_->retryPolicy(), backoff);
        ++parked_launches_;
        stat_parked_->increment();
        if (tracingOn()) {
            traceEvent("fault", "cart " + std::to_string(id) +
                                    " parked inbound; retry in " +
                                    units::formatSig(wait, 4) + " s");
        }
        schedule(wait,
                 [this, id, &st, wait, cb = std::move(cb)]() mutable {
                     launchInbound(id, st, std::move(cb), wait);
                 });
        return;
    }

    const LaunchGrant grant = track_->reserveLaunch(Direction::Inbound);
    schedule(grant.depart_time - now(), [this, id, st = &st] {
        library_->cart(id).launch();
        if (tracingOn())
            traceEvent("track", "cart " + std::to_string(id) +
                                    " inbound");
        // The station is free once its cart has departed; serve any
        // queued open.
        st->release();
        dispatchOpens();
    });
    schedule(grant.arrive_time - now(),
             [this, id, cb = std::move(cb)]() mutable {
                 Cart &cart = library_->cart(id);
                 handleArrivalFailures(cart);
                 library_->beginDock(
                     id, [this, id, cb = std::move(cb)]() mutable {
                         finishClose(id, std::move(cb));
                     });
             });
}

void
DhlController::finishClose(CartId id, CloseCb cb)
{
    stat_closes_->increment();
    Cart &cart = library_->cart(id);
    // Round trip complete: roll the per-trip mechanical breakdown dice
    // and, on a breakdown, rotate the cart through the repair shop
    // (opens targeting it are held until the turnaround).
    if (faults_ != nullptr && faults_->rollCartBreakdown(id)) {
        cart.recordBreakdown();
        ++cart_breakdowns_;
        stat_breakdowns_->increment();
        if (tracingOn()) {
            traceEvent("fault",
                       "cart " + std::to_string(id) +
                           " breakdown at the library; in repair until " +
                           units::formatSig(faults_->cartRepairEnd(id),
                                            6) +
                           " s");
        }
    }
    if (cb)
        cb(cart);
}

void
DhlController::dispatchOpens()
{
    // Launch-blocking outage: keep opens queued (carts are better off
    // in the library than stranded at a station).
    if (launchesBlocked())
        return;
    while (!scheduler_->empty()) {
        DockingStation *st = findFreeStation();
        if (st == nullptr)
            return;
        QueuedOpen req = scheduler_->pop();
        startOpen(req.id, std::move(req.cb), *st);
    }
}

std::vector<QueuedOpen>
DhlController::drainQueuedOpens()
{
    std::vector<QueuedOpen> drained = scheduler_->drain();
    if (tracingOn() && !drained.empty()) {
        traceEvent("fault", "drained " + std::to_string(drained.size()) +
                                " queued open(s) for re-routing");
    }
    return drained;
}

void
DhlController::read(CartId id, double bytes, IoCb cb)
{
    auto it = cart_station_.find(id);
    fatal_if(it == cart_station_.end(),
             "read: cart " + std::to_string(id) + " is not docked");
    it->second->read(bytes, [this, cb = std::move(cb)](double b) {
        stat_reads_->increment();
        if (cb)
            cb(b);
    });
}

void
DhlController::write(CartId id, double bytes, IoCb cb)
{
    auto it = cart_station_.find(id);
    fatal_if(it == cart_station_.end(),
             "write: cart " + std::to_string(id) + " is not docked");
    it->second->write(bytes, [this, cb = std::move(cb)](double b) {
        stat_writes_->increment();
        if (cb)
            cb(b);
    });
}

void
DhlController::handleArrivalFailures(Cart &cart)
{
    const std::size_t failed = cart.rollTripFailures(rng_);
    if (failed > 0) {
        ssd_failures_ += failed;
        stat_failures_->increment(failed);
        if (tracingOn()) {
            traceEvent("failure",
                       "cart " + std::to_string(cart.id()) + " lost " +
                           std::to_string(failed) + " SSD(s) in flight");
        }
        // Paper §III-D: "if an SSD fails in-flight, the endpoint's DHL
        // API will report the error, and RAID and backups can ameliorate
        // the issue."  We report and repair (spare rotation) so the data
        // remains addressable; the failure count is the observable.
        warn(name() + ": " + std::to_string(failed) + " SSD(s) failed on "
             "cart " + std::to_string(cart.id()) +
             "; recovered via RAID/backup");
        cart.repairAll();
    }
}

void
DhlController::saveState(sim::SnapshotWriter &w) const
{
    fatal_if(scheduler_->size() != 0 || !cart_station_.empty(),
             "controller checkpoint requires a drained boundary (no "
             "queued or docked work)");
    sim::SnapshotScope<sim::SnapshotWriter> scope(w, "controller");
    w.putRng("rng", rng_);
    w.putU64("next_seq", next_seq_);
    w.putU64("ssd_failures", ssd_failures_);
    w.putU64("parked_launches", parked_launches_);
    w.putU64("held_opens", held_opens_);
    w.putU64("cart_breakdowns", cart_breakdowns_);
    track_->saveState(w);
}

void
DhlController::restoreState(sim::SnapshotReader &r)
{
    fatal_if(scheduler_->size() != 0 || !cart_station_.empty(),
             "controller restore requires a freshly constructed system");
    sim::SnapshotScope<sim::SnapshotReader> scope(r, "controller");
    r.getRng("rng", rng_);
    next_seq_ = r.getU64("next_seq");
    ssd_failures_ = r.getU64("ssd_failures");
    parked_launches_ = r.getU64("parked_launches");
    held_opens_ = r.getU64("held_opens");
    cart_breakdowns_ = r.getU64("cart_breakdowns");
    track_->restoreState(r);
}

} // namespace core
} // namespace dhl
