/**
 * @file
 * Implementation of the multi-stop DHL model and track resource.
 */

#include "dhl/multistop.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "physics/lim.hpp"
#include "physics/profile.hpp"

namespace dhl {
namespace core {

void
validate(const MultiStopConfig &cfg)
{
    fatal_if(cfg.stop_positions.size() < 2,
             "a multi-stop DHL needs at least two stops");
    fatal_if(cfg.stop_positions.front() != 0.0,
             "the first stop (the library) must sit at position 0");
    for (std::size_t i = 1; i < cfg.stop_positions.size(); ++i) {
        fatal_if(cfg.stop_positions[i] <= cfg.stop_positions[i - 1],
                 "stop positions must be strictly increasing");
    }
    // Validate the base parameters against the full tube length.
    DhlConfig base = cfg.base;
    base.track_length = cfg.stop_positions.back();
    // Hops may individually be shorter than the LIM pair needs; the hop
    // model clamps the reached speed, so only overall sanity applies.
    fatal_if(!(base.max_speed > 0.0), "max speed must be positive");
    physics::validate(base.lim);
    fatal_if(base.ssds_per_cart == 0, "a cart needs at least one SSD");
    fatal_if(!(base.dock_time >= 0.0), "dock time must be non-negative");
}

//===========================================================================
// MultiStopModel
//===========================================================================

MultiStopModel::MultiStopModel(const MultiStopConfig &cfg)
    : cfg_(cfg)
{
    validate(cfg_);
}

double
MultiStopModel::hopDistance(StopId from, StopId to) const
{
    fatal_if(from >= numStops() || to >= numStops(),
             "stop id out of range");
    fatal_if(from == to, "a hop needs two distinct stops");
    return std::abs(cfg_.stop_positions[to] - cfg_.stop_positions[from]);
}

HopMetrics
MultiStopModel::hop(StopId from, StopId to) const
{
    const double d = hopDistance(from, to);
    const DhlConfig &b = cfg_.base;

    HopMetrics m{};
    m.distance = qty::Metres{d};
    m.peak_speed = physics::peakSpeed(
        qty::Metres{d}, qty::MetresPerSecond{b.max_speed},
        qty::MetresPerSecondSquared{b.lim.accel});
    m.travel_time = physics::travelTime(
        qty::Metres{d}, qty::MetresPerSecond{b.max_speed},
        qty::MetresPerSecondSquared{b.lim.accel}, b.kinematics);
    m.trip_time = m.travel_time + qty::Seconds{2.0 * b.dock_time};
    m.energy = physics::shotEnergy(b.cartMass(), m.peak_speed, b.lim);
    return m;
}

HopMetrics
MultiStopModel::tour(const std::vector<StopId> &stops) const
{
    fatal_if(stops.size() < 2, "a tour needs at least two stops");
    HopMetrics total{};
    for (std::size_t i = 1; i < stops.size(); ++i) {
        const HopMetrics h = hop(stops[i - 1], stops[i]);
        total.distance += h.distance;
        total.travel_time += h.travel_time;
        total.trip_time += h.trip_time;
        total.energy += h.energy;
        total.peak_speed = qty::max(total.peak_speed, h.peak_speed);
    }
    return total;
}

//===========================================================================
// MultiStopTrack
//===========================================================================

MultiStopTrack::MultiStopTrack(sim::Simulator &sim,
                               const MultiStopConfig &cfg,
                               std::string name)
    : sim::SimObject(sim, std::move(name)),
      model_(cfg),
      segment_busy_(model_.numStops() - 1),
      stop_blocked_(model_.numStops()),
      total_energy_(0.0),
      transits_(0)
{
    auto &sg = statsGroup();
    stat_transits_ = &sg.addCounter("transits", "transits granted");
    stat_wait_ =
        &sg.addAccumulator("transit_wait", "admission wait per transit, s");
}

double
MultiStopTrack::earliestFree(const std::vector<Interval> &busy, double t,
                             double len)
{
    // Intervals are few and unordered; scan until stable.
    bool moved = true;
    while (moved) {
        moved = false;
        for (const auto &iv : busy) {
            if (t < iv.end && t + len > iv.start) {
                t = iv.end;
                moved = true;
            }
        }
    }
    return t;
}

void
MultiStopTrack::compact()
{
    const double t = now();
    auto drop = [t](std::vector<Interval> &v) {
        v.erase(std::remove_if(v.begin(), v.end(),
                               [t](const Interval &iv) {
                                   return iv.end <= t;
                               }),
                v.end());
    };
    for (auto &v : segment_busy_)
        drop(v);
    for (auto &v : stop_blocked_)
        drop(v);
}

TransitGrant
MultiStopTrack::reserveTransit(StopId from, StopId to)
{
    const HopMetrics hop = model_.hop(from, to);
    compact();

    const StopId lo = std::min(from, to);
    const StopId hi = std::max(from, to);
    // The DES bookkeeping below runs on plain doubles (DESIGN.md §9).
    const double len = hop.travel_time.value();

    // Earliest start satisfying every segment and intermediate-stop
    // block; iterate to a fixed point.
    double depart = now();
    bool moved = true;
    while (moved) {
        moved = false;
        for (StopId s = lo; s < hi; ++s) {
            const double t2 =
                earliestFree(segment_busy_[s], depart, len);
            if (t2 > depart) {
                depart = t2;
                moved = true;
            }
        }
        // Intermediate stops only (passage past an endpoint is not a
        // thing).
        for (StopId s = lo + 1; s < hi; ++s) {
            const double t2 =
                earliestFree(stop_blocked_[s], depart, len);
            if (t2 > depart) {
                depart = t2;
                moved = true;
            }
        }
    }

    for (StopId s = lo; s < hi; ++s)
        segment_busy_[s].push_back(Interval{depart, depart + len});

    TransitGrant g{};
    g.depart_time = depart;
    g.arrive_time = depart + len;
    g.energy = hop.energy.value();

    total_energy_ += hop.energy.value();
    ++transits_;
    stat_transits_->increment();
    stat_wait_->sample(depart - now());
    return g;
}

void
MultiStopTrack::blockStop(StopId stop, double duration)
{
    fatal_if(stop >= model_.numStops(), "stop id out of range");
    fatal_if(!(duration >= 0.0), "block duration must be non-negative");
    if (stop == 0 || stop + 1 == model_.numStops())
        return; // endpoint docking never blocks through-traffic
    stop_blocked_[stop].push_back(Interval{now(), now() + duration});
}

} // namespace core
} // namespace dhl
