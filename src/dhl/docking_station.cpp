/**
 * @file
 * Implementation of the docking station.
 */

#include "dhl/docking_station.hpp"

#include <utility>

#include "common/logging.hpp"

namespace dhl {
namespace core {

DockingStation::DockingStation(sim::Simulator &sim, const DhlConfig &cfg,
                               std::string name)
    : sim::SimObject(sim, std::move(name)),
      cfg_(cfg),
      array_(cfg.ssd, cfg.ssds_per_cart, cfg.pcie),
      cart_(nullptr),
      reserved_(false),
      busy_io_(false),
      bytes_read_(0.0),
      bytes_written_(0.0),
      matings_(0)
{
    auto &sg = statsGroup();
    stat_docks_ = &sg.addCounter("docks", "carts docked");
    stat_undocks_ = &sg.addCounter("undocks", "carts undocked");
    stat_bytes_read_ = &sg.addScalar("bytes_read", "bytes read");
    stat_bytes_written_ = &sg.addScalar("bytes_written", "bytes written");
    stat_io_time_ = &sg.addAccumulator("io_time", "IO durations, s");
}

void
DockingStation::reserve(Cart &cart)
{
    panic_if(reserved_, name() + ": reserving an occupied station");
    reserved_ = true;
    cart_ = &cart;
}

void
DockingStation::beginDock(Done done)
{
    panic_if(!reserved_ || cart_ == nullptr,
             name() + ": docking with no reserved cart");
    Cart *cart = cart_;
    cart->beginDock(CartPlace::Rack);
    schedule(cfg_.dock_time, [this, cart, done = std::move(done)] {
        cart->finishDock();
        ++matings_;
        stat_docks_->increment();
        if (done)
            done();
    });
}

void
DockingStation::beginUndock(Done done)
{
    panic_if(cart_ == nullptr, name() + ": undocking an empty station");
    panic_if(busy_io_, name() + ": undocking while IO is in progress");
    Cart *cart = cart_;
    cart->beginUndock();
    schedule(cfg_.dock_time, [this, done = std::move(done)] {
        ++matings_;
        stat_undocks_->increment();
        if (done)
            done();
    });
}

void
DockingStation::release()
{
    panic_if(!reserved_, name() + ": releasing a free station");
    reserved_ = false;
    cart_ = nullptr;
}

void
DockingStation::read(double bytes, IoDone done)
{
    panic_if(cart_ == nullptr, name() + ": read with no cart");
    fatal_if(bytes < 0.0, "read size must be non-negative");
    fatal_if(bytes > cart_->storedBytes() + 1e-3,
             name() + ": read beyond the cart's stored bytes");
    panic_if(busy_io_, name() + ": overlapping IO on one station");

    cart_->beginIo();
    busy_io_ = true;
    const double duration = bytes / array_.readBandwidth();
    stat_io_time_->sample(duration);
    schedule(duration, [this, bytes, done = std::move(done)] {
        busy_io_ = false;
        cart_->finishIo();
        bytes_read_ += bytes;
        stat_bytes_read_->add(bytes);
        if (done)
            done(bytes);
    });
}

void
DockingStation::write(double bytes, IoDone done)
{
    panic_if(cart_ == nullptr, name() + ": write with no cart");
    fatal_if(bytes < 0.0, "write size must be non-negative");
    fatal_if(bytes > cart_->freeBytes() * (1.0 + 1e-9),
             name() + ": write overflows the cart");
    panic_if(busy_io_, name() + ": overlapping IO on one station");

    cart_->beginIo();
    busy_io_ = true;
    const double duration = bytes / array_.writeBandwidth();
    stat_io_time_->sample(duration);
    schedule(duration, [this, bytes, done = std::move(done)] {
        busy_io_ = false;
        cart_->finishIo();
        cart_->loadBytes(bytes);
        bytes_written_ += bytes;
        stat_bytes_written_->add(bytes);
        if (done)
            done(bytes);
    });
}

} // namespace core
} // namespace dhl
