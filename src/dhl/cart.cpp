/**
 * @file
 * Implementation of the cart entity.
 */

#include "dhl/cart.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace core {

std::string
to_string(CartPlace place)
{
    switch (place) {
      case CartPlace::Library:
        return "library";
      case CartPlace::Track:
        return "track";
      case CartPlace::Rack:
        return "rack";
    }
    panic("unreachable cart place");
}

std::string
to_string(CartState state)
{
    switch (state) {
      case CartState::Stored:
        return "stored";
      case CartState::Undocking:
        return "undocking";
      case CartState::InFlight:
        return "in-flight";
      case CartState::Docking:
        return "docking";
      case CartState::Docked:
        return "docked";
      case CartState::Busy:
        return "busy";
    }
    panic("unreachable cart state");
}

Cart::Cart(CartId id, const DhlConfig &cfg,
           storage::ConnectorKind connector, double failure_per_trip)
    : id_(id),
      cfg_(cfg),
      state_(CartState::Stored),
      place_(CartPlace::Library),
      trips_(0)
{
    ssds_.reserve(cfg.ssds_per_cart);
    for (std::size_t i = 0; i < cfg.ssds_per_cart; ++i)
        ssds_.emplace_back(cfg.ssd, connector, failure_per_trip);
}

double
Cart::capacity() const
{
    return cfg_.cartCapacity().value();
}

double
Cart::storedBytes() const
{
    double total = 0.0;
    for (const auto &s : ssds_)
        total += s.storedBytes();
    return total;
}

void
Cart::loadBytes(double bytes)
{
    fatal_if(bytes < 0.0, "load size must be non-negative");
    fatal_if(bytes > freeBytes() * (1.0 + 1e-9),
             "load overflows cart " + std::to_string(id_));
    const double per = bytes / static_cast<double>(ssds_.size());
    for (auto &s : ssds_)
        (void)s.write(per);
}

void
Cart::unloadBytes(double bytes)
{
    fatal_if(bytes < 0.0, "unload size must be non-negative");
    fatal_if(bytes > storedBytes() + 1e-3,
             "unload beyond stored bytes on cart " + std::to_string(id_));
    const double per = bytes / static_cast<double>(ssds_.size());
    for (auto &s : ssds_)
        s.trim(std::min(per, s.storedBytes()));
}

void
Cart::eraseAll()
{
    for (auto &s : ssds_)
        s.eraseAll();
}

void
Cart::beginUndock()
{
    panic_if(state_ != CartState::Stored && state_ != CartState::Docked,
             "cart " + std::to_string(id_) + " cannot undock from state " +
                 to_string(state_));
    state_ = CartState::Undocking;
    matingCycle();
}

void
Cart::launch()
{
    panic_if(state_ != CartState::Undocking,
             "cart " + std::to_string(id_) + " launched without undocking");
    state_ = CartState::InFlight;
    place_ = CartPlace::Track;
}

void
Cart::beginDock(CartPlace destination)
{
    panic_if(state_ != CartState::InFlight,
             "cart " + std::to_string(id_) + " docking while not in flight");
    panic_if(destination == CartPlace::Track, "cannot dock onto the track");
    state_ = CartState::Docking;
    place_ = destination;
    ++trips_;
}

void
Cart::finishDock()
{
    panic_if(state_ != CartState::Docking,
             "cart " + std::to_string(id_) + " finishing dock it never began");
    state_ = place_ == CartPlace::Library ? CartState::Stored
                                          : CartState::Docked;
    matingCycle();
}

void
Cart::beginIo()
{
    panic_if(state_ != CartState::Docked,
             "cart " + std::to_string(id_) + " cannot serve IO from state " +
                 to_string(state_));
    state_ = CartState::Busy;
}

void
Cart::finishIo()
{
    panic_if(state_ != CartState::Busy,
             "cart " + std::to_string(id_) + " finished IO it never began");
    state_ = CartState::Docked;
}

void
Cart::matingCycle()
{
    for (auto &s : ssds_)
        s.matingCycle();
}

std::size_t
Cart::rollTripFailures(Rng &rng)
{
    std::size_t failed = 0;
    for (auto &s : ssds_) {
        if (s.rollTripFailure(rng))
            ++failed;
    }
    return failed;
}

std::size_t
Cart::unhealthySsds() const
{
    std::size_t n = 0;
    for (const auto &s : ssds_) {
        if (!s.healthy())
            ++n;
    }
    return n;
}

void
Cart::repairAll()
{
    for (auto &s : ssds_)
        s.repair();
}

} // namespace core
} // namespace dhl
