/**
 * @file
 * The library endpoint: cold storage for carts.  Owns all cart objects
 * of the DHL system, stores idle carts in slots above the track, and
 * performs its own dock/undock operations (same dock_time as the rack
 * stations, per the paper's 3 s assumption covering the whole
 * procedure).
 */

#ifndef DHL_DHL_LIBRARY_HPP
#define DHL_DHL_LIBRARY_HPP

#include <functional>
#include <memory>
#include <vector>

#include "dhl/cart.hpp"
#include "dhl/config.hpp"
#include "sim/sim_object.hpp"

namespace dhl {
namespace core {

/** The library endpoint. */
class Library : public sim::SimObject
{
  public:
    using Done = std::function<void()>;

    Library(sim::Simulator &sim, const DhlConfig &cfg,
            std::string name = "library");

    /**
     * Create a new cart stored in the library, preloaded with
     * @p preload_bytes.  fatal() if no slot is free.
     */
    Cart &addCart(double preload_bytes = 0.0,
                  storage::ConnectorKind connector =
                      storage::ConnectorKind::UsbC,
                  double failure_per_trip = 0.0);

    /** Carts currently stored (not in flight / at the rack). */
    std::size_t storedCarts() const;

    /** All carts ever created, stored or not. */
    std::size_t totalCarts() const { return carts_.size(); }

    /** Free library slots. */
    std::size_t freeSlots() const;

    /** Cart lookup by id; fatal() if absent. */
    Cart &cart(CartId id);
    const Cart &cart(CartId id) const;

    /**
     * Begin undocking a stored cart onto the track; @p done fires after
     * dock_time with the cart ready to launch.
     */
    void beginUndock(CartId id, Done done);

    /**
     * Begin docking an arriving cart into a slot; @p done fires after
     * dock_time with the cart Stored.  fatal() if no slot is free.
     */
    void beginDock(CartId id, Done done);

  private:
    const DhlConfig &cfg_;
    std::vector<std::unique_ptr<Cart>> carts_;
    std::size_t inbound_; ///< carts docking (slot already claimed)

    stats::Counter *stat_docks_;
    stats::Counter *stat_undocks_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_LIBRARY_HPP
