/**
 * @file
 * Implementation of the DHL fleet.
 */

#include "dhl/fleet.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace dhl {
namespace core {

DhlFleet::DhlFleet(const DhlConfig &cfg, std::size_t tracks,
                   std::uint64_t seed,
                   std::vector<std::size_t> shard_of_track)
    : cfg_(cfg), shard_of_(std::move(shard_of_track))
{
    fatal_if(tracks == 0, "a fleet needs at least one track");
    validate(cfg_);
    if (shard_of_.empty())
        shard_of_.assign(tracks, 0);
    fatal_if(shard_of_.size() != tracks,
             "shard map size does not match the track count");
    fatal_if(shard_of_[0] != 0, "shard ids must start at 0");
    for (std::size_t i = 1; i < tracks; ++i) {
        // Contiguous + dense: ids never decrease and never skip, so
        // shard s owns one contiguous run of tracks.
        fatal_if(shard_of_[i] < shard_of_[i - 1] ||
                     shard_of_[i] > shard_of_[i - 1] + 1,
                 "shard map must be contiguous, dense, non-decreasing");
    }
    const std::size_t n_shards = shard_of_[tracks - 1] + 1;
    sims_.reserve(n_shards);
    for (std::size_t s = 0; s < n_shards; ++s) {
        sims_.push_back(std::make_unique<sim::Simulator>());
        group_.attach(sims_.back().get());
    }
    if (n_shards > 1) {
        pool_ = std::make_unique<ThreadPool>(n_shards);
        group_.setPool(pool_.get());
    }
    controllers_.reserve(tracks);
    for (std::size_t i = 0; i < tracks; ++i) {
        // Same splitmix64 derivation as the per-track fault streams
        // (enableFaults): adjacent raw seeds are strongly correlated
        // under xoshiro, deriveSeed decorrelates them.  The seed does
        // not depend on the shard map, so a sharded fleet replays the
        // exact per-track streams of the serial one.
        controllers_.push_back(std::make_unique<DhlController>(
            simOf(i), cfg_, "dhl" + std::to_string(i),
            deriveSeed(seed, i)));
    }
}

double
DhlFleet::maxNow() const
{
    double t = 0.0;
    for (const auto &s : sims_)
        t = std::max(t, s->now());
    return t;
}

DhlController &
DhlFleet::track(std::size_t i)
{
    fatal_if(i >= controllers_.size(), "track index out of range");
    return *controllers_[i];
}

void
DhlFleet::enableFaults(const faults::FaultConfig &cfg)
{
    fatal_if(!cfg.enabled, "enableFaults: config has enabled = false");
    faults::validate(cfg);
    if (!injectors_.empty()) {
        // Track 0 holds the config with seed deriveSeed(cfg.seed, 0);
        // compare against the same derivation of the requested config.
        faults::FaultConfig base = cfg;
        base.seed = deriveSeed(cfg.seed, 0);
        fatal_if(!(injectors_[0]->config() == base),
                 "fault injection is already enabled with a different "
                 "config; reconfiguring a live fleet is not supported");
        return;
    }
    ensureFaultStates();
    injectors_.reserve(controllers_.size());
    for (std::size_t i = 0; i < controllers_.size(); ++i) {
        auto &ctl = *controllers_[i];
        faults::FaultConfig track_cfg = cfg;
        track_cfg.seed = deriveSeed(cfg.seed, i);
        injectors_.push_back(std::make_unique<faults::FaultInjector>(
            simOf(i), *fault_states_[i], track_cfg, ctl.numStations(),
            ctl.name() + ".faults"));
    }
}

void
DhlFleet::ensureFaultStates()
{
    if (!fault_states_.empty())
        return;
    fault_states_.reserve(controllers_.size());
    for (std::size_t i = 0; i < controllers_.size(); ++i) {
        fault_states_.push_back(
            std::make_unique<faults::FaultState>(simOf(i)));
        controllers_[i]->attachFaults(fault_states_.back().get());
    }
}

faults::FaultState *
DhlFleet::faultState(std::size_t i)
{
    fatal_if(i >= controllers_.size(), "track index out of range");
    return fault_states_.empty() ? nullptr : fault_states_[i].get();
}

faults::FaultInjector *
DhlFleet::faultInjector(std::size_t i)
{
    fatal_if(i >= controllers_.size(), "track index out of range");
    return injectors_.empty() ? nullptr : injectors_[i].get();
}

double
DhlFleet::totalEnergy() const
{
    double total = 0.0;
    for (const auto &c : controllers_)
        total += c->totalEnergy();
    return total;
}

std::uint64_t
DhlFleet::launches() const
{
    std::uint64_t total = 0;
    for (const auto &c : controllers_)
        total += c->launches();
    return total;
}

BulkRunResult
DhlFleet::runBulkTransfer(double bytes, const BulkRunOptions &opts)
{
    fatal_if(!(bytes > 0.0), "bulk transfer size must be positive");
    fatal_if(numShards() > 1,
             "runBulkTransfer drives one event loop; sharded fleets "
             "run through ops::FleetDispatcher");
    if (opts.faults.enabled)
        enableFaults(opts.faults);

    const double capacity = cfg_.cartCapacity().value();
    const auto n_carts =
        static_cast<std::uint64_t>(std::ceil(bytes / capacity));
    const std::size_t k = controllers_.size();

    // Round-robin cart assignment; each track gets its own serial
    // chain of cart ids (local to that track's library).
    std::vector<std::vector<CartId>> per_track(k);
    double remaining = bytes;
    for (std::uint64_t i = 0; i < n_carts; ++i) {
        const double load = std::min(capacity, remaining);
        remaining -= load;
        auto &ctl = *controllers_[i % k];
        ctl.setFailureProbability(opts.failure_per_trip);
        per_track[i % k].push_back(ctl.addCart(load).id());
    }

    sim::Simulator &sim = simulator();
    const double start = sim.now();
    const double energy_before = totalEnergy();
    const std::uint64_t launches_before = launches();
    auto completed = std::make_shared<std::uint64_t>(0);
    auto bytes_read = std::make_shared<double>(0.0);

    // Serial chain per track: cart j fully returns before cart j+1
    // departs (the Table VI accounting, per track).  The chain
    // closures live in `chains` (not inside themselves) so no
    // shared_ptr cycle outlives the run.
    std::vector<std::shared_ptr<std::function<void(std::size_t)>>> chains;
    for (std::size_t t = 0; t < k; ++t) {
        if (per_track[t].empty())
            continue;
        auto &ctl = *controllers_[t];
        auto chain = std::make_shared<std::function<void(std::size_t)>>();
        chains.push_back(chain);
        auto *chain_ptr = chain.get();
        const auto carts = per_track[t];
        *chain = [this, &ctl, carts, chain = chain_ptr, opts, completed,
                  bytes_read](std::size_t idx) {
            if (idx == carts.size())
                return;
            const CartId id = carts[idx];
            ctl.open(id, [this, &ctl, id, idx, chain, opts, completed,
                          bytes_read](Cart &cart, DockingStation &) {
                auto finish = [completed, chain, idx](Cart &) {
                    ++*completed;
                    (*chain)(idx + 1);
                };
                if (opts.include_read_time && cart.storedBytes() > 0.0) {
                    const double to_read = cart.storedBytes();
                    ctl.read(id, to_read,
                             [&ctl, id, bytes_read, finish](double b) {
                                 *bytes_read += b;
                                 ctl.close(id, finish);
                             });
                } else {
                    ctl.close(id, finish);
                }
            });
        };
        (*chain)(0);
    }
    // With fault injectors active the queue never runs dry on its own;
    // step to transfer completion instead (see DhlSimulation).
    if (faultsEnabled()) {
        while (*completed < n_carts && sim.pendingEvents() > 0)
            sim.step();
    } else {
        sim.run();
    }
    panic_if(*completed != n_carts,
             "fleet transfer finished with carts unaccounted for");

    BulkRunResult r{};
    r.total_time = sim.now() - start;
    r.total_energy = totalEnergy() - energy_before;
    r.launches = launches() - launches_before;
    r.carts = n_carts;
    std::uint64_t failures = 0;
    for (const auto &c : controllers_)
        failures += c->ssdFailures();
    r.ssd_failures = failures;
    r.avg_power = r.total_energy / r.total_time;
    r.effective_bandwidth = bytes / r.total_time;
    r.bytes_read = *bytes_read;
    return r;
}

} // namespace core
} // namespace dhl
