/**
 * @file
 * Implementation of the Open-request scheduling policies.
 */

#include "dhl/scheduler.hpp"

#include <algorithm>
#include <iterator>

#include "common/logging.hpp"

namespace dhl {
namespace core {

namespace {

/** Earliest enqueue time of an unordered request container. */
template <typename Items>
double
oldestEnqueue(const Items &items)
{
    double oldest = std::numeric_limits<double>::infinity();
    for (const auto &req : items)
        oldest = std::min(oldest, req.enqueue_time);
    return oldest;
}

/** Empty a request container into a vector sorted by arrival order. */
template <typename Items>
std::vector<QueuedOpen>
drainInArrivalOrder(Items &items)
{
    std::vector<QueuedOpen> out;
    out.reserve(items.size());
    std::move(items.begin(), items.end(), std::back_inserter(out));
    items.clear();
    std::sort(out.begin(), out.end(),
              [](const QueuedOpen &a, const QueuedOpen &b) {
                  return a.seq < b.seq;
              });
    return out;
}

} // namespace

//===========================================================================
// FifoScheduler
//===========================================================================

void
FifoScheduler::push(QueuedOpen req)
{
    queue_.push_back(std::move(req));
}

double
FifoScheduler::oldestEnqueueTime() const
{
    // FIFO queues in arrival order, so the front is the oldest.
    return queue_.empty() ? std::numeric_limits<double>::infinity()
                          : queue_.front().enqueue_time;
}

QueuedOpen
FifoScheduler::pop()
{
    panic_if(queue_.empty(), "pop from an empty scheduler");
    QueuedOpen req = std::move(queue_.front());
    queue_.pop_front();
    return req;
}

std::vector<QueuedOpen>
FifoScheduler::drain()
{
    return drainInArrivalOrder(queue_);
}

//===========================================================================
// PriorityScheduler
//===========================================================================

void
PriorityScheduler::push(QueuedOpen req)
{
    items_.push_back(std::move(req));
}

double
PriorityScheduler::oldestEnqueueTime() const
{
    return oldestEnqueue(items_);
}

QueuedOpen
PriorityScheduler::pop()
{
    panic_if(items_.empty(), "pop from an empty scheduler");
    auto best = items_.begin();
    for (auto it = items_.begin() + 1; it != items_.end(); ++it) {
        if (it->meta.priority > best->meta.priority ||
            (it->meta.priority == best->meta.priority &&
             it->seq < best->seq)) {
            best = it;
        }
    }
    QueuedOpen req = std::move(*best);
    items_.erase(best);
    return req;
}

std::vector<QueuedOpen>
PriorityScheduler::drain()
{
    return drainInArrivalOrder(items_);
}

//===========================================================================
// DeadlineScheduler
//===========================================================================

void
DeadlineScheduler::push(QueuedOpen req)
{
    items_.push_back(std::move(req));
}

double
DeadlineScheduler::oldestEnqueueTime() const
{
    return oldestEnqueue(items_);
}

QueuedOpen
DeadlineScheduler::pop()
{
    panic_if(items_.empty(), "pop from an empty scheduler");
    auto best = items_.begin();
    for (auto it = items_.begin() + 1; it != items_.end(); ++it) {
        if (it->meta.deadline < best->meta.deadline ||
            (it->meta.deadline == best->meta.deadline &&
             it->seq < best->seq)) {
            best = it;
        }
    }
    QueuedOpen req = std::move(*best);
    items_.erase(best);
    return req;
}

std::vector<QueuedOpen>
DeadlineScheduler::drain()
{
    return drainInArrivalOrder(items_);
}

//===========================================================================
// Factories
//===========================================================================

std::unique_ptr<OpenScheduler>
makeFifoScheduler()
{
    return std::make_unique<FifoScheduler>();
}

std::unique_ptr<OpenScheduler>
makePriorityScheduler()
{
    return std::make_unique<PriorityScheduler>();
}

std::unique_ptr<OpenScheduler>
makeDeadlineScheduler()
{
    return std::make_unique<DeadlineScheduler>();
}

} // namespace core
} // namespace dhl
