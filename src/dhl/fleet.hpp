/**
 * @file
 * A fleet of parallel DHL tracks (paper §IV-E / Figure 6: "the time
 * taken to transfer data over a DHL can be reduced by operating
 * multiple DHL tracks in parallel").
 *
 * The fleet owns K identical, independent DHL systems (each with its
 * own library, tube and docking stations) sharing one simulation
 * clock; bulk transfers split their carts round-robin across the
 * tracks and the fleet finishes when the slowest track does.  The
 * event-driven result must agree with the quantised closed form used
 * by mlsim's DhlComm (ceil(trips/K) round trips per track) — tested.
 */

#ifndef DHL_DHL_FLEET_HPP
#define DHL_DHL_FLEET_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "dhl/config.hpp"
#include "dhl/controller.hpp"
#include "dhl/simulation.hpp"
#include "sim/simulator.hpp"

namespace dhl {
namespace core {

/** The fleet. */
class DhlFleet
{
  public:
    /**
     * @param cfg     Per-track configuration.
     * @param tracks  Parallel tracks (>= 1).
     * @param seed    RNG seed base (track i uses deriveSeed(seed, i),
     *                the same derivation enableFaults applies to the
     *                per-track fault streams).
     */
    DhlFleet(const DhlConfig &cfg, std::size_t tracks,
             std::uint64_t seed = 1);

    std::size_t numTracks() const { return controllers_.size(); }
    sim::Simulator &simulator() { return sim_; }
    DhlController &track(std::size_t i);

    /**
     * Move @p bytes using every track: carts are split round-robin and
     * each track runs its share as serial round trips (open, optional
     * read, close).  Returns the fleet-level metrics; `total_time` is
     * the slowest track's completion.
     */
    BulkRunResult runBulkTransfer(double bytes,
                                  const BulkRunOptions &opts = {});

    /**
     * Turn on per-track fault injection: every track gets its own
     * FaultState + FaultInjector, with track i's streams derived as
     * deriveSeed(cfg.seed, i) so the tracks fail independently but
     * deterministically.  Idempotent for an identical config (also
     * invoked lazily by runBulkTransfer when opts.faults.enabled).
     */
    void enableFaults(const faults::FaultConfig &cfg);

    /** True once fault injection is active. */
    bool faultsEnabled() const { return !injectors_.empty(); }

    /**
     * Create and attach a FaultState per track *without* injectors —
     * every component stays up, so behaviour is identical to a
     * fault-free fleet until something drives the registries.  The ops
     * layer uses this to run maintenance windows and common-cause
     * outages on a fleet with no independent fault injection.
     * Idempotent; enableFaults implies it.
     */
    void ensureFaultStates();

    /** Track @p i's fault registry (nullptr until enableFaults or
     *  ensureFaultStates). */
    faults::FaultState *faultState(std::size_t i);

    /** Track @p i's fault injector (nullptr until enableFaults). */
    faults::FaultInjector *faultInjector(std::size_t i);

    /** Sum of LIM energy across tracks, J. */
    double totalEnergy() const;

    /** Sum of launches across tracks. */
    std::uint64_t launches() const;

    /** Average electrical power of the fleet over a window, W. */
    double
    avgPower(double window) const
    {
        return totalEnergy() / window;
    }

  private:
    DhlConfig cfg_;
    sim::Simulator sim_;
    std::vector<std::unique_ptr<faults::FaultState>> fault_states_;
    std::vector<std::unique_ptr<faults::FaultInjector>> injectors_;
    std::vector<std::unique_ptr<DhlController>> controllers_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_FLEET_HPP
