/**
 * @file
 * A fleet of parallel DHL tracks (paper §IV-E / Figure 6: "the time
 * taken to transfer data over a DHL can be reduced by operating
 * multiple DHL tracks in parallel").
 *
 * The fleet owns K identical, independent DHL systems (each with its
 * own library, tube and docking stations) sharing one simulation
 * clock; bulk transfers split their carts round-robin across the
 * tracks and the fleet finishes when the slowest track does.  The
 * event-driven result must agree with the quantised closed form used
 * by mlsim's DhlComm (ceil(trips/K) round trips per track) — tested.
 */

#ifndef DHL_DHL_FLEET_HPP
#define DHL_DHL_FLEET_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "dhl/config.hpp"
#include "dhl/controller.hpp"
#include "dhl/simulation.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace dhl {
namespace core {

/** The fleet. */
class DhlFleet
{
  public:
    /**
     * @param cfg     Per-track configuration.
     * @param tracks  Parallel tracks (>= 1).
     * @param seed    RNG seed base (track i uses deriveSeed(seed, i),
     *                the same derivation enableFaults applies to the
     *                per-track fault streams).
     * @param shard_of_track
     *                Optional DES shard id per track (see
     *                sim::partitionShards).  Empty keeps the classic
     *                single event loop; otherwise track i's controller
     *                and fault machinery live on shard
     *                shard_of_track[i]'s own Simulator, and the fleet
     *                is driven through ops::FleetDispatcher with
     *                conservative time-windowed sync.  Seed streams
     *                are per-track, so sharding never changes them.
     */
    DhlFleet(const DhlConfig &cfg, std::size_t tracks,
             std::uint64_t seed = 1,
             std::vector<std::size_t> shard_of_track = {});

    std::size_t numTracks() const { return controllers_.size(); }

    /** Shard 0's simulator — *the* simulator for unsharded fleets. */
    sim::Simulator &simulator() { return *sims_[0]; }

    /** Number of DES shards (1 unless a shard map was supplied). */
    std::size_t numShards() const { return sims_.size(); }

    /** Shard @p s's simulator. */
    sim::Simulator &shardSim(std::size_t s) { return *sims_[s]; }

    /** Shard owning track @p i. */
    std::size_t shardOf(std::size_t i) const { return shard_of_[i]; }

    /** The simulator running track @p i. */
    sim::Simulator &
    simOf(std::size_t i)
    {
        return *sims_[shard_of_[i]];
    }

    /** Shard coordinator (usable even with one shard). */
    sim::ShardGroup &shards() { return group_; }

    /** Worker pool for window advances; nullptr when numShards()==1. */
    ThreadPool *pool() { return pool_.get(); }

    /** Fleet-wide clock: max over shard clocks (== simulator().now()
     *  for unsharded fleets). */
    double maxNow() const;

    DhlController &track(std::size_t i);

    /**
     * Move @p bytes using every track: carts are split round-robin and
     * each track runs its share as serial round trips (open, optional
     * read, close).  Returns the fleet-level metrics; `total_time` is
     * the slowest track's completion.
     */
    BulkRunResult runBulkTransfer(double bytes,
                                  const BulkRunOptions &opts = {});

    /**
     * Turn on per-track fault injection: every track gets its own
     * FaultState + FaultInjector, with track i's streams derived as
     * deriveSeed(cfg.seed, i) so the tracks fail independently but
     * deterministically.  Idempotent for an identical config (also
     * invoked lazily by runBulkTransfer when opts.faults.enabled).
     */
    void enableFaults(const faults::FaultConfig &cfg);

    /** True once fault injection is active. */
    bool faultsEnabled() const { return !injectors_.empty(); }

    /**
     * Create and attach a FaultState per track *without* injectors —
     * every component stays up, so behaviour is identical to a
     * fault-free fleet until something drives the registries.  The ops
     * layer uses this to run maintenance windows and common-cause
     * outages on a fleet with no independent fault injection.
     * Idempotent; enableFaults implies it.
     */
    void ensureFaultStates();

    /** Track @p i's fault registry (nullptr until enableFaults or
     *  ensureFaultStates). */
    faults::FaultState *faultState(std::size_t i);

    /** Track @p i's fault injector (nullptr until enableFaults). */
    faults::FaultInjector *faultInjector(std::size_t i);

    /** Sum of LIM energy across tracks, J. */
    double totalEnergy() const;

    /** Sum of launches across tracks. */
    std::uint64_t launches() const;

    /** Average electrical power of the fleet over a window, W. */
    double
    avgPower(double window) const
    {
        return totalEnergy() / window;
    }

  private:
    DhlConfig cfg_;
    /** One Simulator per shard; sims_[0] always exists. */
    std::vector<std::unique_ptr<sim::Simulator>> sims_;
    std::vector<std::size_t> shard_of_; // per track
    sim::ShardGroup group_;
    std::unique_ptr<ThreadPool> pool_; // only when numShards() > 1
    std::vector<std::unique_ptr<faults::FaultState>> fault_states_;
    std::vector<std::unique_ptr<faults::FaultInjector>> injectors_;
    std::vector<std::unique_ptr<DhlController>> controllers_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_FLEET_HPP
