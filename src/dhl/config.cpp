/**
 * @file
 * Implementation of the DHL configuration and Table V / VI presets.
 */

#include "dhl/config.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace dhl {
namespace core {

std::string
to_string(TrackMode mode)
{
    switch (mode) {
      case TrackMode::Exclusive:
        return "exclusive";
      case TrackMode::Pipelined:
        return "pipelined";
      case TrackMode::DualTrack:
        return "dual-track";
    }
    panic("unreachable track mode");
}

qty::Bytes
DhlConfig::cartCapacity() const
{
    return qty::Bytes{ssd.capacity * static_cast<double>(ssds_per_cart)};
}

qty::Kilograms
DhlConfig::cartMass() const
{
    const qty::Kilograms payload{ssd.mass *
                                 static_cast<double>(ssds_per_cart)};
    return physics::cartMass(payload, mass).total_mass;
}

qty::Metres
DhlConfig::limLength() const
{
    return physics::limLength(qty::MetresPerSecond{max_speed},
                              qty::MetresPerSecondSquared{lim.accel});
}

qty::Seconds
DhlConfig::tripTime() const
{
    return qty::Seconds{2.0 * dock_time} +
           physics::travelTime(qty::Metres{track_length},
                               qty::MetresPerSecond{max_speed},
                               qty::MetresPerSecondSquared{lim.accel},
                               kinematics);
}

std::string
DhlConfig::label() const
{
    const double tb = cartCapacity().value() / units::terabytes(1.0);
    return "DHL-" + units::formatSig(max_speed, 4) + "-" +
           units::formatSig(track_length, 4) + "-" +
           units::formatSig(tb, 4);
}

void
validate(const DhlConfig &cfg)
{
    fatal_if(!(cfg.track_length > 0.0), "track length must be positive");
    fatal_if(!(cfg.max_speed > 0.0), "max speed must be positive");
    fatal_if(!(cfg.dock_time >= 0.0), "dock time must be non-negative");
    physics::validate(cfg.lim);
    fatal_if(cfg.ssds_per_cart == 0, "a cart needs at least one SSD");
    fatal_if(!(cfg.ssd.capacity > 0.0), "SSD capacity must be positive");
    fatal_if(!(cfg.ssd.mass > 0.0), "SSD mass must be positive");
    fatal_if(!(cfg.headway > 0.0), "headway must be positive");
    fatal_if(cfg.docking_stations == 0,
             "need at least one docking station at the rack endpoint");
    fatal_if(cfg.library_slots == 0, "the library needs at least one slot");
    // The track must at least fit its two LIM sections (accelerate at
    // one end, brake at the other).
    fatal_if(qty::Metres{cfg.track_length} < 2.0 * cfg.limLength(),
             "track too short for its LIM sections: need >= " +
                 units::formatSig(2.0 * cfg.limLength().value(), 4) + " m");
    // Mass model sanity (delegates detailed checks).
    (void)cfg.cartMass();
}

DhlConfig
defaultConfig()
{
    return DhlConfig{}; // field initialisers are the paper's bold values
}

DhlConfig
makeConfig(double max_speed, double track_length, std::size_t ssds_per_cart)
{
    DhlConfig cfg;
    cfg.max_speed = max_speed;
    cfg.track_length = track_length;
    cfg.ssds_per_cart = ssds_per_cart;
    return cfg;
}

const std::vector<TableVirow> &
tableViRows()
{
    // The thirteen rows of Table VI in paper order, with the paper's
    // reported metrics for regression checks.  (speed, length, SSDs)
    // then: energy kJ, GB/J, time s, TB/s, kW, 29PB speedup, energy
    // reduction vs A0 and vs C.
    static const std::vector<TableVirow> rows = {
        {makeConfig(100, 500, 32), 3.7, 68, 11, 23, 38, 229.6, 16.3, 350.9},
        {makeConfig(200, 500, 32), 15, 17, 8.6, 30, 75, 295.1, 4.1, 87.7},
        {makeConfig(300, 500, 32), 34, 7.6, 7.8, 33, 113, 324.6, 1.8, 39.0},
        {makeConfig(200, 100, 32), 15, 17, 6.6, 39, 75, 384.5, 4.1, 87.7},
        {makeConfig(200, 500, 32), 15, 17, 8.6, 30, 75, 295.1, 4.1, 87.7},
        {makeConfig(200, 1000, 32), 15, 17, 11, 23, 75, 228.6, 4.1, 87.7},
        {makeConfig(200, 500, 16), 8.6, 15, 8.6, 15, 43, 147.5, 3.6, 76.8},
        {makeConfig(200, 500, 32), 15, 17, 8.6, 30, 75, 295.1, 4.1, 87.7},
        {makeConfig(200, 500, 64), 28, 18, 8.6, 60, 140, 587.5, 4.4, 94.0},
        {makeConfig(100, 500, 16), 2.1, 60, 11, 12, 22, 114.8, 14.3, 307.3},
        {makeConfig(100, 500, 64), 7, 73, 11, 46, 70, 457.3, 17.5, 376.1},
        {makeConfig(300, 500, 16), 19, 6.6, 7.8, 16, 64, 162.3, 1.6, 34.1},
        {makeConfig(300, 500, 64), 63, 8, 7.8, 66, 210, 646.4, 1.9, 41.8},
    };
    return rows;
}

} // namespace core
} // namespace dhl
