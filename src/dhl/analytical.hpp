/**
 * @file
 * The closed-form DHL model that generates the paper's Table VI: single
 * launch metrics (energy, time, bandwidth, peak power, efficiency) and
 * bulk dataset movement (trips, total time/energy, comparisons against
 * optical routes).
 */

#ifndef DHL_DHL_ANALYTICAL_HPP
#define DHL_DHL_ANALYTICAL_HPP

#include <cstdint>

#include "common/quantity.hpp"
#include "dhl/config.hpp"
#include "network/transfer.hpp"

namespace dhl {
namespace core {

/** Metrics of one cart launch between the two endpoints (Table VI). */
struct LaunchMetrics
{
    qty::Kilograms cart_mass;       ///< Cart total mass.
    qty::Bytes capacity;            ///< Bytes carried.
    qty::Joules energy;             ///< Launch + brake (the paper's
                                    ///< "Energy").
    qty::Seconds travel_time;       ///< In the tube (excl. docking).
    qty::Seconds trip_time;         ///< Including undock and dock.
    qty::BytesPerSecond bandwidth;  ///< Embodied (capacity / trip_time).
    qty::Watts peak_power;          ///< At the end of acceleration.
    qty::Watts avg_power;           ///< Averaged over the trip.
    double efficiency;              ///< GB/J headline number (display
                                    ///< unit; see units::gbPerJoule).
};

/** Itemised energy of one launch, substantiating the "negligible" terms. */
struct EnergyBreakdown
{
    qty::Joules accelerate;     ///< Drawn by the launch LIM.
    qty::Joules brake;          ///< Drawn by the braking LIM (0 if passive).
    qty::Joules drag;           ///< Lost to magnetic drag over the track.
    qty::Joules stabilisation;  ///< Active stabilisation during travel.
    qty::Joules aero;           ///< Against residual-gas drag.

    qty::Joules total() const
    {
        return accelerate + brake + drag + stabilisation + aero;
    }
};

/** Options for a bulk dataset movement. */
struct BulkOptions
{
    /**
     * Count return journeys: the endpoint's limited docking capacity
     * forces carts back to the library, doubling trips (the paper's
     * Table VI accounting).
     */
    bool count_return_trips = true;

    /**
     * Overlap shuttling with endpoint processing: while one cart is
     * being read, further carts are in flight (paper §V-B / §VI).  The
     * steady-state launch period is then bounded by the headway and by
     * read_time / docking_stations.
     */
    bool pipelined = false;

    /**
     * Endpoint read time charged per cart when pipelining (bytes are
     * read at the cart's PCIe-capped array bandwidth); 0 means ignore
     * read time (the paper's embodied-bandwidth accounting).
     */
    bool include_read_time = false;
};

/** Result of a bulk dataset movement. */
struct BulkMetrics
{
    std::uint64_t loaded_trips;  ///< ceil(bytes / cart capacity).
    std::uint64_t total_trips;   ///< including returns.
    qty::Seconds total_time;
    qty::Joules total_energy;
    qty::Watts avg_power;                    ///< energy / time.
    qty::BytesPerSecond effective_bandwidth; ///< bytes / time.
};

/** Head-to-head against one optical route. */
struct RouteComparison
{
    std::string route_name;
    qty::Seconds network_time;   ///< Over one link.
    qty::Joules network_energy;
    double time_speedup;         ///< network_time / dhl_time.
    double energy_reduction;     ///< network_energy / dhl_energy.
};

/** The closed-form model of one configured DHL. */
class AnalyticalModel
{
  public:
    explicit AnalyticalModel(const DhlConfig &cfg);

    const DhlConfig &config() const { return cfg_; }

    /** Single-launch metrics (one Table VI row, left+middle). */
    LaunchMetrics launch() const;

    /** Itemised launch energy including the "negligible" terms. */
    EnergyBreakdown energyBreakdown() const;

    /** Move @p bytes from library to endpoint. */
    BulkMetrics bulk(qty::Bytes bytes, const BulkOptions &opts = {}) const;

    /**
     * Compare a bulk move against an optical route at 400 Gbit/s over a
     * single link (the paper's Table VI right-hand columns).
     */
    RouteComparison compareBulk(qty::Bytes bytes,
                                const network::Route &route,
                                const BulkOptions &opts = {}) const;

    /** Time to read one full cart at the docked PCIe bandwidth. */
    qty::Seconds cartReadTime() const;

  private:
    DhlConfig cfg_;
    storage::CartArray array_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_ANALYTICAL_HPP
