/**
 * @file
 * The closed-form DHL model that generates the paper's Table VI: single
 * launch metrics (energy, time, bandwidth, peak power, efficiency) and
 * bulk dataset movement (trips, total time/energy, comparisons against
 * optical routes).
 */

#ifndef DHL_DHL_ANALYTICAL_HPP
#define DHL_DHL_ANALYTICAL_HPP

#include <cstdint>

#include "dhl/config.hpp"
#include "network/transfer.hpp"

namespace dhl {
namespace core {

/** Metrics of one cart launch between the two endpoints (Table VI). */
struct LaunchMetrics
{
    double cart_mass;    ///< kg.
    double capacity;     ///< bytes carried.
    double energy;       ///< J to launch + brake (the paper's "Energy").
    double travel_time;  ///< s in the tube (excl. docking).
    double trip_time;    ///< s including undock and dock.
    double bandwidth;    ///< bytes/s embodied (capacity / trip_time).
    double peak_power;   ///< W at the end of acceleration.
    double avg_power;    ///< W averaged over the trip (energy/trip_time).
    double efficiency;   ///< GB/J (capacity / energy).
};

/** Itemised energy of one launch, substantiating the "negligible" terms. */
struct EnergyBreakdown
{
    double accelerate;     ///< J drawn by the launch LIM.
    double brake;          ///< J drawn by the braking LIM (0 if passive).
    double drag;           ///< J lost to magnetic drag over the track.
    double stabilisation;  ///< J for active stabilisation during travel.
    double aero;           ///< J against residual-gas drag.

    double total() const
    {
        return accelerate + brake + drag + stabilisation + aero;
    }
};

/** Options for a bulk dataset movement. */
struct BulkOptions
{
    /**
     * Count return journeys: the endpoint's limited docking capacity
     * forces carts back to the library, doubling trips (the paper's
     * Table VI accounting).
     */
    bool count_return_trips = true;

    /**
     * Overlap shuttling with endpoint processing: while one cart is
     * being read, further carts are in flight (paper §V-B / §VI).  The
     * steady-state launch period is then bounded by the headway and by
     * read_time / docking_stations.
     */
    bool pipelined = false;

    /**
     * Endpoint read time charged per cart when pipelining (bytes are
     * read at the cart's PCIe-capped array bandwidth); 0 means ignore
     * read time (the paper's embodied-bandwidth accounting).
     */
    bool include_read_time = false;
};

/** Result of a bulk dataset movement. */
struct BulkMetrics
{
    std::uint64_t loaded_trips;  ///< ceil(bytes / cart capacity).
    std::uint64_t total_trips;   ///< including returns.
    double total_time;           ///< s.
    double total_energy;         ///< J.
    double avg_power;            ///< W (energy / time).
    double effective_bandwidth;  ///< bytes/s (bytes / time).
};

/** Head-to-head against one optical route. */
struct RouteComparison
{
    std::string route_name;
    double network_time;     ///< s over one link.
    double network_energy;   ///< J.
    double time_speedup;     ///< network_time / dhl_time.
    double energy_reduction; ///< network_energy / dhl_energy.
};

/** The closed-form model of one configured DHL. */
class AnalyticalModel
{
  public:
    explicit AnalyticalModel(const DhlConfig &cfg);

    const DhlConfig &config() const { return cfg_; }

    /** Single-launch metrics (one Table VI row, left+middle). */
    LaunchMetrics launch() const;

    /** Itemised launch energy including the "negligible" terms. */
    EnergyBreakdown energyBreakdown() const;

    /** Move @p bytes from library to endpoint. */
    BulkMetrics bulk(double bytes, const BulkOptions &opts = {}) const;

    /**
     * Compare a bulk move against an optical route at 400 Gbit/s over a
     * single link (the paper's Table VI right-hand columns).
     */
    RouteComparison compareBulk(double bytes, const network::Route &route,
                                const BulkOptions &opts = {}) const;

    /** Time to read one full cart at the docked PCIe bandwidth, s. */
    double cartReadTime() const;

  private:
    DhlConfig cfg_;
    storage::CartArray array_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_ANALYTICAL_HPP
