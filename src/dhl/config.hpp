/**
 * @file
 * Full configuration of one data centre hyperloop, mirroring the paper's
 * Table V parameter list, with presets for the paper's default setup and
 * the thirteen Table VI design-space rows.
 */

#ifndef DHL_DHL_CONFIG_HPP
#define DHL_DHL_CONFIG_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "common/quantity.hpp"
#include "physics/lim.hpp"
#include "physics/maglev.hpp"
#include "physics/profile.hpp"
#include "physics/vacuum.hpp"
#include "storage/cart_array.hpp"
#include "storage/catalog.hpp"

namespace dhl {
namespace core {

/** How the track is shared between carts (DES semantics). */
enum class TrackMode
{
    /** At most one cart anywhere in the tube at a time — the paper's
     *  conservative, non-pipelined accounting (validates against the
     *  closed-form Table VI numbers). */
    Exclusive,

    /** Same-direction convoys separated by a headway; reversing
     *  direction requires the tube to drain (single physical tube). */
    Pipelined,

    /** Two one-way tubes (Discussion's dual-track design): outbound and
     *  inbound convoys flow simultaneously. */
    DualTrack,
};

std::string to_string(TrackMode mode);

/** The complete DHL configuration (paper Table V). */
struct DhlConfig
{
    //------------------------------------------------------------------
    // Geometry and kinematics
    //------------------------------------------------------------------

    /** End-to-end track length, m (paper: 100 / 500 / 1000, bold 500). */
    double track_length = 500.0;

    /** Maximum cart speed, m/s (paper: 100 / 200 / 300, bold 200). */
    double max_speed = 200.0;

    /** Kinematics mode for closed-form trip times (PaperApprox
     *  reproduces Table VI exactly). */
    physics::KinematicsMode kinematics =
        physics::KinematicsMode::PaperApprox;

    /** Time to dock *or* undock one cart, s (paper: pessimistic 3). */
    double dock_time = 3.0;

    //------------------------------------------------------------------
    // Propulsion
    //------------------------------------------------------------------

    /** LIM parameters (efficiency 0.75, acceleration 1000 m/s^2). */
    physics::LimConfig lim{};

    //------------------------------------------------------------------
    // Cart and payload
    //------------------------------------------------------------------

    /** Number of M.2 SSDs per cart (paper: 16 / 32 / 64, bold 32). */
    std::size_t ssds_per_cart = 32;

    /** SSD device model (paper: Sabrent Rocket 4 Plus 8 TB, 5.67 g). */
    storage::DeviceSpec ssd = storage::referenceM2Ssd();

    /** Cart structural mass composition (10 % magnets, 15 % fin, 30 g
     *  frame). */
    physics::CartMassConfig mass{};

    /** PCIe attachment of a docked cart. */
    storage::PcieConfig pcie{};

    //------------------------------------------------------------------
    // Track environment
    //------------------------------------------------------------------

    /** Levitation / drag model parameters. */
    physics::LevitationConfig levitation{};

    /** Vacuum tube parameters. */
    physics::VacuumConfig vacuum{};

    //------------------------------------------------------------------
    // System-level (DES) parameters
    //------------------------------------------------------------------

    /** Track-sharing semantics. */
    TrackMode track_mode = TrackMode::Exclusive;

    /** Minimum launch separation for pipelined convoys, s. */
    double headway = 1.0;

    /** Docking stations at the rack endpoint (pipelining depth). */
    std::size_t docking_stations = 1;

    /** Cart slots in the library endpoint. */
    std::size_t library_slots = 256;

    //------------------------------------------------------------------
    // Derived helpers (typed; raw Table V fields above stay `double`
    // because they are the parse/sweep I/O boundary — see DESIGN.md §9)
    //------------------------------------------------------------------

    /** Cart storage capacity. */
    qty::Bytes cartCapacity() const;

    /** Cart total mass (payload + frame + magnets + fin). */
    qty::Kilograms cartMass() const;

    /** LIM length needed for this max speed. */
    qty::Metres limLength() const;

    /** One-way trip time including undock and dock. */
    qty::Seconds tripTime() const;

    /** Short label like "DHL-200-500-256" (speed-length-capacityTB). */
    std::string label() const;
};

/** Validate a configuration; throws FatalError on nonsense. */
void validate(const DhlConfig &cfg);

/** The paper's bold default configuration (Table V). */
DhlConfig defaultConfig();

/** One Table VI design-space row: a config plus the paper's reported
 *  metrics for regression bands. */
struct TableVirow
{
    DhlConfig config;
    // Paper-reported values for this row (left/middle of Table VI).
    double paper_energy_kj;
    double paper_efficiency_gbpj;
    double paper_time_s;
    double paper_bandwidth_tbps;
    double paper_peak_power_kw;
    double paper_speedup;           // time speedup moving 29 PB
    double paper_reduction_a0;      // energy reduction vs A0
    double paper_reduction_c;       // energy reduction vs C
};

/** The thirteen Table VI rows in paper order. */
const std::vector<TableVirow> &tableViRows();

/** Build a config by the three swept parameters, other fields default. */
DhlConfig makeConfig(double max_speed, double track_length,
                     std::size_t ssds_per_cart);

} // namespace core
} // namespace dhl

#endif // DHL_DHL_CONFIG_HPP
