/**
 * @file
 * Implementation of the LRU cart cache.
 */

#include "dhl/placement.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "storage/cart_array.hpp"

namespace dhl {
namespace core {

void
validate(const PlacementConfig &cfg)
{
    fatal_if(cfg.cache_carts == 0, "the cache needs at least one cart");
    fatal_if(!(cfg.backing_read_bw > 0.0),
             "backing pool bandwidth must be positive");
}

CartCache::CartCache(const DhlConfig &dhl, const PlacementConfig &cfg)
    : dhl_(dhl), cfg_(cfg), model_(dhl)
{
    validate(cfg_);
}

bool
CartCache::resident(const std::string &dataset) const
{
    return entries_.count(dataset) != 0;
}

double
CartCache::hitRate() const
{
    if (accesses_ == 0)
        return 0.0;
    return static_cast<double>(hits_) / static_cast<double>(accesses_);
}

std::size_t
CartCache::makeRoom(std::size_t carts)
{
    std::size_t evicted = 0;
    while (occupied_ + carts > cfg_.cache_carts) {
        panic_if(lru_.empty(), "cache accounting out of sync");
        const std::string victim = lru_.back();
        lru_.pop_back();
        auto it = entries_.find(victim);
        panic_if(it == entries_.end(), "LRU entry without a record");
        occupied_ -= it->second.carts;
        entries_.erase(it);
        ++evicted;
    }
    return evicted;
}

PlacementAccess
CartCache::access(const std::string &dataset, double bytes)
{
    fatal_if(dataset.empty(), "a dataset needs a name");
    fatal_if(!(bytes > 0.0), "dataset size must be positive");

    const auto carts = static_cast<std::size_t>(
        std::ceil(bytes / dhl_.cartCapacity().value()));
    fatal_if(carts > cfg_.cache_carts,
             "dataset '" + dataset + "' needs " + std::to_string(carts) +
                 " carts but the cache holds only " +
                 std::to_string(cfg_.cache_carts));

    ++accesses_;
    PlacementAccess out{};
    out.carts = carts;

    auto it = entries_.find(dataset);
    if (it != entries_.end()) {
        // Hit: refresh recency.  A size change re-fits the entry.
        ++hits_;
        out.hit = true;
        lru_.erase(it->second.lru_pos);
        lru_.push_front(dataset);
        it->second.lru_pos = lru_.begin();
        if (it->second.carts != carts) {
            const std::size_t old = it->second.carts;
            occupied_ -= old;
            out.evicted = makeRoom(carts);
            occupied_ += carts;
            it->second.carts = carts;
            it->second.bytes = bytes;
        }
    } else {
        // Miss: make room, load from the backing pool onto fresh
        // carts.  The load runs at the slower of the pool's read rate
        // and the carts' aggregate write rate.
        out.hit = false;
        out.evicted = makeRoom(carts);
        const storage::CartArray array(dhl_.ssd, dhl_.ssds_per_cart,
                                       dhl_.pcie);
        const double write_bw =
            array.writeBandwidth() * static_cast<double>(carts);
        const double load_bw = std::min(cfg_.backing_read_bw, write_bw);
        out.load_time = bytes / load_bw;
        total_load_time_ += out.load_time;

        lru_.push_front(dataset);
        entries_.emplace(dataset, Entry{bytes, carts, lru_.begin()});
        occupied_ += carts;
    }

    const auto bulk = model_.bulk(qty::Bytes{bytes});
    out.stage_time = bulk.total_time.value();
    out.dhl_energy = bulk.total_energy.value();
    out.total_time = out.load_time + out.stage_time;
    return out;
}

} // namespace core
} // namespace dhl
