/**
 * @file
 * Implementation of the closed-form DHL model.
 */

#include "dhl/analytical.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "physics/lim.hpp"
#include "physics/maglev.hpp"
#include "physics/profile.hpp"
#include "physics/vacuum.hpp"

namespace dhl {
namespace core {

AnalyticalModel::AnalyticalModel(const DhlConfig &cfg)
    : cfg_(cfg), array_(cfg.ssd, cfg.ssds_per_cart, cfg.pcie)
{
    validate(cfg_);
}

LaunchMetrics
AnalyticalModel::launch() const
{
    const qty::MetresPerSecond v_max{cfg_.max_speed};
    LaunchMetrics m{};
    m.cart_mass = cfg_.cartMass();
    m.capacity = cfg_.cartCapacity();
    m.energy = physics::shotEnergy(m.cart_mass, v_max, cfg_.lim);
    m.travel_time = physics::travelTime(
        qty::Metres{cfg_.track_length}, v_max,
        qty::MetresPerSecondSquared{cfg_.lim.accel}, cfg_.kinematics);
    m.trip_time = m.travel_time + qty::Seconds{2.0 * cfg_.dock_time};
    m.bandwidth = m.capacity / m.trip_time;
    m.peak_power = physics::peakPower(m.cart_mass, v_max, cfg_.lim);
    m.avg_power = m.energy / m.trip_time;
    m.efficiency = units::gbPerJoule(m.capacity, m.energy);
    return m;
}

EnergyBreakdown
AnalyticalModel::energyBreakdown() const
{
    const qty::Kilograms mass = cfg_.cartMass();
    const qty::MetresPerSecond v_max{cfg_.max_speed};
    EnergyBreakdown b{};
    b.accelerate = physics::launchEnergy(mass, v_max, cfg_.lim);
    b.brake = physics::brakeEnergy(mass, v_max, cfg_.lim);
    b.drag = physics::dragLoss(mass, qty::Metres{cfg_.track_length},
                               cfg_.levitation);
    const qty::Seconds travel = physics::travelTime(
        qty::Metres{cfg_.track_length}, v_max,
        qty::MetresPerSecondSquared{cfg_.lim.accel}, cfg_.kinematics);
    b.stabilisation =
        qty::Watts{cfg_.levitation.stabilisation_power} * travel;
    // Residual-gas drag at cruise speed over the cruise time; the cart's
    // frontal area follows from the SSD stack footprint (~60 x 80 mm for
    // the 32-SSD cart; scale by SSD count).
    const double frontal =
        0.060 * 0.080 *
        std::max(1.0, static_cast<double>(cfg_.ssds_per_cart) / 32.0);
    b.aero = physics::aeroDragPower(v_max, qty::SquareMetres{frontal}, 1.0,
                                    cfg_.vacuum) *
             travel;
    return b;
}

qty::Seconds
AnalyticalModel::cartReadTime() const
{
    return qty::Seconds{array_.fullReadTime()};
}

BulkMetrics
AnalyticalModel::bulk(qty::Bytes bytes, const BulkOptions &opts) const
{
    fatal_if(!(bytes.value() > 0.0), "bulk transfer size must be positive");

    const LaunchMetrics lm = launch();
    BulkMetrics m{};
    m.loaded_trips =
        static_cast<std::uint64_t>(std::ceil(bytes / lm.capacity));
    m.total_trips =
        opts.count_return_trips ? 2 * m.loaded_trips : m.loaded_trips;
    m.total_energy = static_cast<double>(m.total_trips) * lm.energy;

    if (!opts.pipelined) {
        // Serial accounting: the paper's Table VI.  Every trip occupies
        // the track and the endpoint exclusively.
        m.total_time = static_cast<double>(m.total_trips) * lm.trip_time;
        if (opts.include_read_time) {
            m.total_time +=
                static_cast<double>(m.loaded_trips) * cartReadTime();
        }
    } else {
        // Pipelined accounting (paper §V-B, §VI): while the endpoint
        // processes one cart, further carts shuttle.  The steady-state
        // launch period is bounded by the headway and, if reads are
        // modelled, by read time spread over the docking stations.  A
        // single tube must also drain before the direction reverses, so
        // carts move in batches of `docking_stations`; a dual track
        // streams continuously.
        const qty::Seconds read =
            opts.include_read_time ? cartReadTime() : qty::Seconds{0.0};
        // A cart occupies a docking station for dock + read + undock;
        // with D stations a new cart can arrive every (that / D), never
        // closer than the headway.
        const qty::Seconds station_occupancy =
            qty::Seconds{2.0 * cfg_.dock_time} + read;
        const qty::Seconds period = qty::max(
            qty::Seconds{cfg_.headway},
            station_occupancy / static_cast<double>(cfg_.docking_stations));

        const auto n = static_cast<double>(m.loaded_trips);
        if (cfg_.track_mode == TrackMode::DualTrack ||
            !opts.count_return_trips) {
            // Continuous stream: first trip's latency, then one cart per
            // period; returns (if any) overlap on the second tube.
            m.total_time = lm.trip_time + read + (n - 1.0) * period;
        } else {
            // Single tube with D-cart batches: launch D carts out,
            // drain, return them, repeat.
            const auto d = static_cast<double>(cfg_.docking_stations);
            const double batches = std::ceil(n / d);
            const double carts_per_batch = std::min(n, d);
            const qty::Seconds batch_time =
                2.0 * (lm.trip_time + (carts_per_batch - 1.0) *
                                          qty::Seconds{cfg_.headway}) +
                read * carts_per_batch /
                    std::max(1.0, d); // reads overlap returns partially
            m.total_time = batches * batch_time;
        }
    }

    m.avg_power = m.total_energy / m.total_time;
    m.effective_bandwidth = bytes / m.total_time;
    return m;
}

RouteComparison
AnalyticalModel::compareBulk(qty::Bytes bytes, const network::Route &route,
                             const BulkOptions &opts) const
{
    const network::TransferModel net(route);
    const network::TransferResult nr = net.transfer(bytes, 1.0);
    const BulkMetrics dm = bulk(bytes, opts);

    RouteComparison c{};
    c.route_name = route.name();
    c.network_time = nr.time;
    c.network_energy = nr.energy;
    c.time_speedup = nr.time / dm.total_time;
    c.energy_reduction = nr.energy / dm.total_energy;
    return c;
}

} // namespace core
} // namespace dhl
