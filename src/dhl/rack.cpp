/**
 * @file
 * Implementation of the rack fan-out model.
 */

#include "dhl/rack.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace dhl {
namespace core {

void
validate(const RackConfig &cfg)
{
    fatal_if(cfg.nodes == 0, "a rack needs at least one node");
    fatal_if(!(cfg.node_attach_bw > 0.0),
             "node attachment bandwidth must be positive");
}

RackModel::RackModel(const DhlConfig &dhl, const RackConfig &rack)
    : dhl_(dhl), rack_(rack),
      array_(dhl.ssd, dhl.ssds_per_cart, dhl.pcie)
{
    validate(dhl_);
    validate(rack_);
}

double
RackModel::aggregateBandwidth(std::size_t docked) const
{
    fatal_if(docked == 0, "need at least one docked cart");
    fatal_if(docked > dhl_.docking_stations,
             "more docked carts than docking stations");
    return array_.readBandwidth() * static_cast<double>(docked);
}

double
RackModel::perNodeBandwidth(std::size_t docked, std::size_t active) const
{
    fatal_if(active == 0, "need at least one active node");
    fatal_if(active > rack_.nodes, "more active nodes than the rack has");
    const double fair =
        aggregateBandwidth(docked) / static_cast<double>(active);
    return std::min(fair, rack_.node_attach_bw);
}

double
RackModel::collectiveReadTime(std::size_t docked, double bytes) const
{
    fatal_if(!(bytes > 0.0), "read size must be positive");
    const double per_node_bytes =
        bytes / static_cast<double>(rack_.nodes);
    const double bw = perNodeBandwidth(docked, rack_.nodes);
    return per_node_bytes / bw;
}

std::vector<NodeShare>
RackModel::shardEvenly(std::size_t docked, double bytes) const
{
    fatal_if(!(bytes > 0.0), "read size must be positive");
    const double per_node_bytes =
        bytes / static_cast<double>(rack_.nodes);
    const double bw = perNodeBandwidth(docked, rack_.nodes);
    std::vector<NodeShare> shares(
        rack_.nodes, NodeShare{per_node_bytes, bw, per_node_bytes / bw});
    return shares;
}

std::size_t
RackModel::saturatingNodeCount(std::size_t docked) const
{
    return static_cast<std::size_t>(std::ceil(
        aggregateBandwidth(docked) / rack_.node_attach_bw));
}

double
RackModel::heatLoad(std::size_t docked) const
{
    fatal_if(docked == 0, "need at least one docked cart");
    return array_.activePower() * static_cast<double>(docked);
}

} // namespace core
} // namespace dhl
