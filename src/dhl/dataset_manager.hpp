/**
 * @file
 * The dataset-level management layer (paper §III-D): "software
 * abstracts away the management of data, SSDs, and maglev carts".
 * Users deal in named datasets; the manager maps each to the set of
 * carts holding it, drives the controller's Open/Close/Read commands
 * for all of them, and reports placement (library / rack / in
 * transit).
 *
 * Intended use is the paper's ML-training pattern: register a dataset
 * once, then repeatedly stage it to the rack, read it, and return it,
 * for each new model trained on it.
 */

#ifndef DHL_DHL_DATASET_MANAGER_HPP
#define DHL_DHL_DATASET_MANAGER_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dhl/controller.hpp"

namespace dhl {
namespace core {

/** Where a dataset currently lives. */
enum class DatasetPlacement
{
    Library,   ///< All carts stored in the library.
    Staged,    ///< All carts docked at the rack.
    InTransit, ///< At least one cart moving or queued.
    Mixed,     ///< Split between library and rack, none moving.
};

std::string to_string(DatasetPlacement placement);

/** Summary of one registered dataset. */
struct DatasetInfo
{
    std::string name;
    double bytes;
    std::vector<CartId> carts;
    DatasetPlacement placement;
};

/** The dataset manager. */
class DatasetManager
{
  public:
    using Done = std::function<void()>;
    using ReadDone = std::function<void(double /*bytes*/)>;

    /** @param controller The DHL this manager drives (must outlive
     *                    it). */
    explicit DatasetManager(DhlController &controller);

    /**
     * Register a dataset: allocates ceil(bytes / cart capacity) carts
     * in the library and loads the data across them (last cart
     * partial).  fatal() if the name is taken.
     *
     * @return The cart ids now holding the dataset.
     */
    const std::vector<CartId> &registerDataset(const std::string &name,
                                               double bytes);

    /** True if a dataset of this name is registered. */
    bool has(const std::string &name) const;

    /** Registered dataset names (registration order). */
    std::vector<std::string> names() const;

    /** Placement and composition of a dataset; fatal() if unknown. */
    DatasetInfo info(const std::string &name) const;

    /**
     * Stage: open every cart of the dataset at the rack.  @p done
     * fires once all carts are docked.  Opens are issued together, so
     * pipelining falls out of the track mode and station count.
     */
    void stage(const std::string &name, Done done,
               const RequestMeta &meta = {});

    /**
     * Unstage: close every docked cart of the dataset back into the
     * library; @p done fires once all are stored.
     */
    void unstage(const std::string &name, Done done);

    /**
     * Read the full dataset from its docked carts (one read per cart,
     * issued in parallel across stations).  @p done fires with the
     * total bytes once every cart has been read.  fatal() unless the
     * dataset is fully staged.
     */
    void readAll(const std::string &name, ReadDone done);

    /** Total bytes registered across all datasets. */
    double totalBytes() const;

  private:
    struct Entry
    {
        double bytes;
        std::vector<CartId> carts;
    };

    const Entry &entry(const std::string &name) const;

    DhlController &controller_;
    std::unordered_map<std::string, Entry> datasets_;
    std::vector<std::string> order_;
};

} // namespace core
} // namespace dhl

#endif // DHL_DHL_DATASET_MANAGER_HPP
