/**
 * @file
 * Implementation of the availability model.
 */

#include "dhl/reliability.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace dhl {
namespace core {

void
validate(const ReliabilityConfig &cfg)
{
    fatal_if(!(cfg.lim_mtbf > 0.0) || !(cfg.track_mtbf > 0.0) ||
                 !(cfg.station_mtbf > 0.0),
             "MTBFs must be positive");
    fatal_if(cfg.lim_mttr < 0.0 || cfg.track_mttr < 0.0 ||
                 cfg.station_mttr < 0.0,
             "MTTRs must be non-negative");
    fatal_if(cfg.cart_repair_per_trip < 0.0 ||
                 cfg.cart_repair_per_trip > 1.0,
             "cart repair probability must be in [0, 1]");
    fatal_if(cfg.cart_repair_hours < 0.0,
             "cart repair turnaround must be non-negative");
}

faults::FaultConfig
toFaultConfig(const ReliabilityConfig &cfg, std::uint64_t seed,
              double horizon)
{
    validate(cfg);
    faults::FaultConfig f;
    f.enabled = true;
    f.seed = seed;
    f.horizon = horizon;
    f.lim_mtbf = cfg.lim_mtbf;
    f.lim_mttr = cfg.lim_mttr;
    f.track_mtbf = cfg.track_mtbf;
    f.track_mttr = cfg.track_mttr;
    f.station_mtbf = cfg.station_mtbf;
    f.station_mttr = cfg.station_mttr;
    f.cart_repair_per_trip = cfg.cart_repair_per_trip;
    f.cart_repair_hours = cfg.cart_repair_hours;
    faults::validate(f); // the two validators must agree on edge cases
    return f;
}

AvailabilityModel::AvailabilityModel(const DhlConfig &dhl,
                                     const ReliabilityConfig &rel)
    : dhl_(dhl), rel_(rel)
{
    core::validate(dhl_);
    validate(rel_);
}

double
AvailabilityModel::steadyAvailability(double mtbf, double mttr)
{
    return mtbf / (mtbf + mttr);
}

AvailabilityReport
AvailabilityModel::report(double trips_per_hour) const
{
    fatal_if(trips_per_hour < 0.0, "trip rate must be non-negative");

    AvailabilityReport r{};
    const double lim_one =
        steadyAvailability(rel_.lim_mtbf, rel_.lim_mttr);
    r.lim_availability = lim_one * lim_one; // both ends in series
    r.track_availability =
        steadyAvailability(rel_.track_mtbf, rel_.track_mttr);
    // Service needs at least one docking station: 1 - P[all down].
    const double station_one =
        steadyAvailability(rel_.station_mtbf, rel_.station_mttr);
    r.stations_availability =
        1.0 - std::pow(1.0 - station_one,
                       static_cast<double>(dhl_.docking_stations));
    r.system_availability = r.lim_availability * r.track_availability *
                            r.stations_availability;
    r.downtime_hours_per_year =
        (1.0 - r.system_availability) * 24.0 * 365.0;

    // Cart rotation: each trip sends a cart to repair with probability
    // q; at `rate` trips/hour the repair shop holds rate * q *
    // turnaround carts on average (Little's law); as a fraction of the
    // library fleet.
    const double in_repair = trips_per_hour * rel_.cart_repair_per_trip *
                             rel_.cart_repair_hours;
    r.carts_in_repair_fraction =
        std::min(1.0, in_repair /
                          static_cast<double>(dhl_.library_slots));
    return r;
}

double
AvailabilityModel::deratedBandwidth(double trips_per_hour) const
{
    const AnalyticalModel model(dhl_);
    const AvailabilityReport r = report(trips_per_hour);
    return model.launch().bandwidth.value() * r.system_availability;
}

} // namespace core
} // namespace dhl
