/**
 * @file
 * Event-driven fluid flow simulator over capacitated links.
 *
 * Flows traverse a path of links and share each link's capacity
 * max-min-fairly (progressive water-filling, recomputed on every flow
 * arrival or departure).  Each flow carries the electrical power of its
 * route so the simulator integrates transfer energy exactly as the
 * analytical model does — the integration tests require the two to
 * agree — while also capturing the *contention* effects the closed-form
 * model cannot (bulk backups squeezing foreground traffic, the paper's
 * §II motivation).
 *
 * Determinism: flows are stored and iterated in flow-id order, so rate
 * allocation, completion detection, and the resulting floating-point
 * operation order are identical on every platform (no dependence on
 * hash-map layout).
 *
 * Performance (see DESIGN.md §"Kernel internals"): each link keeps the
 * list of flows crossing it plus its currently allocated rate, and the
 * simulator maintains active-power aggregates, so water-filling walks
 * only the link→flow adjacency it touches and `linkUtilisation()` /
 * `totalEnergy()` are O(1) instead of scanning every flow.
 */

#ifndef DHL_NETWORK_FLOWSIM_HPP
#define DHL_NETWORK_FLOWSIM_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/sim_object.hpp"
#include "sim/simulator.hpp"

namespace dhl {

class ThreadPool;

namespace network {

/** Identifier of a flow inside a FlowSim. */
using FlowId = std::uint64_t;

/** Completion record passed to the flow's callback. */
struct FlowRecord
{
    FlowId id;
    double bytes;       ///< Bytes carried.
    double start_time;  ///< s.
    double finish_time; ///< s.
    double energy;      ///< J consumed by the flow's route elements.

    double duration() const { return finish_time - start_time; }
    double avgBandwidth() const { return bytes / duration(); }
};

/** The fluid flow simulator. */
class FlowSim : public sim::SimObject
{
  public:
    using Callback = std::function<void(const FlowRecord &)>;

    FlowSim(sim::Simulator &sim, std::string name = "flowsim");

    /**
     * Add a link with @p capacity bytes/s; returns its id.
     */
    int addLink(double capacity);

    int numLinks() const { return static_cast<int>(links_.size()); }
    double linkCapacity(int link) const;

    /**
     * Start a flow of @p bytes over the given links.
     *
     * @param links        Link ids in hop order (at least one).
     * @param bytes        Flow size, bytes (> 0).
     * @param route_power  Electrical power attributed while active, W.
     * @param cb           Invoked at completion (may be null).
     * @return The flow id.
     */
    FlowId startFlow(std::vector<int> links, double bytes,
                     double route_power = 0.0, Callback cb = nullptr);

    /** Cancel an in-flight flow; returns false if unknown/finished. */
    bool cancelFlow(FlowId id);

    /** Current fair-share rate of an active flow, bytes/s. */
    double flowRate(FlowId id) const;

    /** Number of in-flight flows. */
    std::size_t activeFlows() const { return flows_.size(); }

    /** Total bytes delivered by completed flows. */
    double bytesDelivered() const { return bytes_delivered_; }

    /**
     * Total energy integrated over all flows (active + completed), J.
     * O(1): a flow at constant route power p accrues exactly
     * p·(now − start), so the active term is tracked as two running
     * sums (Σp and Σp·start).
     */
    double totalEnergy() const;

    /** Utilisation of a link right now, in [0, 1].  O(1). */
    double linkUtilisation(int link) const;

    /**
     * Run the hot scans — the water-filling bottleneck search, the
     * per-flow drain, and the next-completion search — on @p pool when
     * the population reaches 2x @p grain elements (null pool = serial,
     * the default).  Exactness contract: every parallel reduction
     * partitions the id-ordered population into contiguous ranges,
     * reduces each range with the serial loop, and folds the per-range
     * minima in range order; min is exact and the drain is
     * elementwise, so results are byte-identical to the serial scans
     * for any pool size.  The freeze pass of the water-filling stays
     * serial — it is the part with loop-carried dependencies.
     */
    void setParallel(ThreadPool *pool, std::size_t grain = 256);

  private:
    struct Flow
    {
        FlowId id;
        std::vector<int> links;
        double total;
        double remaining;
        double rate;
        double route_power;
        double start_time;
        Callback cb;
    };

    struct Link
    {
        double capacity;
        double allocated; ///< Σ current rates of flows on this link.
        /** Flows crossing this link, in id order (ids are handed out
         *  monotonically and appended, so order is maintained). */
        std::vector<Flow *> flows;

        // Water-filling scratch (valid only inside reallocate()).
        double residual;
        int unfrozen;
    };

    /** Drain every active flow's remaining bytes to now(). */
    void drainFlows();

    /** Detach @p f from its links' adjacency lists and the power
     *  aggregates (shared by cancellation and completion). */
    void detachFlow(Flow &f);

    /** Recompute max-min fair rates and reschedule completion. */
    void reallocate();

    /** Fire completions for flows that have drained. */
    void onCompletionEvent();

    std::vector<Link> links_;
    std::map<FlowId, Flow> flows_; ///< id order ⇒ deterministic.
    ThreadPool *pool_ = nullptr;   ///< Parallel scans (see setParallel).
    std::size_t grain_ = 256;
    FlowId next_id_;
    double last_update_;
    double bytes_delivered_;
    double finished_energy_;
    double active_power_;        ///< Σ route_power over active flows.
    double active_power_tstart_; ///< Σ route_power·start_time, ditto.
    sim::EventHandle completion_event_;

    stats::Counter *stat_flows_started_;
    stats::Counter *stat_flows_completed_;
    stats::Scalar *stat_bytes_delivered_;
    stats::Accumulator *stat_flow_duration_;
};

} // namespace network
} // namespace dhl

#endif // DHL_NETWORK_FLOWSIM_HPP
