/**
 * @file
 * Static network component catalogue (paper Table III).
 */

#include "network/catalog.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace network {

std::string
to_string(ComponentKind kind)
{
    switch (kind) {
      case ComponentKind::Transceiver:
        return "Transceiver";
      case ComponentKind::Nic:
        return "NIC";
      case ComponentKind::Switch:
        return "Switch";
    }
    panic("unreachable component kind");
}

const std::vector<ComponentSpec> &
componentCatalog()
{
    static const std::vector<ComponentSpec> components = {
        {"Transceiver (QSFP-DD)", ComponentKind::Transceiver, 400e9, 0,
         12.0, 12.0, true},
        {"NIC 100GbE (E810/N1100G)", ComponentKind::Nic, 100e9, 0,
         15.8, 22.5, false},
        {"NIC 2x200 (P2200G/ConnectX-6)", ComponentKind::Nic, 2 * 200e9, 0,
         17.0, 23.3, true},
        {"Switch QM9700", ComponentKind::Switch, 400e9, 32,
         747.0, 1720.0, true},
        {"Switch 9364D-GX2A", ComponentKind::Switch, 400e9, 64,
         1324.0, 3000.0, false},
    };
    return components;
}

const PowerConstants &
defaultPowerConstants()
{
    static const PowerConstants constants{};
    return constants;
}

} // namespace network
} // namespace dhl
