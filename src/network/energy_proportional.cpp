/**
 * @file
 * Implementation of the energy-proportional networking baseline.
 */

#include "network/energy_proportional.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace network {

void
validate(const SleepConfig &cfg)
{
    fatal_if(cfg.idle_power_fraction < 0.0 ||
                 cfg.idle_power_fraction > 1.0,
             "idle power fraction must be in [0, 1]");
    fatal_if(cfg.wake_latency < 0.0,
             "wake latency must be non-negative");
    fatal_if(cfg.min_sleep_gap < 0.0,
             "sleep hysteresis must be non-negative");
}

EnergyProportionalModel::EnergyProportionalModel(
    const Route &route, const SleepConfig &sleep,
    const PowerConstants &pc)
    : model_(route, pc), sleep_(sleep)
{
    validate(sleep_);
}

qty::JoulesPerByte
EnergyProportionalModel::activeJoulesPerByte() const
{
    return model_.linkPower() / model_.linkRate();
}

DutyCycleResult
EnergyProportionalModel::periodicDuty(qty::Bytes bytes, qty::Seconds period,
                                      std::uint64_t n_periods) const
{
    fatal_if(!(bytes.value() > 0.0), "transfer size must be positive");
    fatal_if(!(period.value() > 0.0), "period must be positive");
    fatal_if(n_periods == 0, "need at least one period");

    const qty::Seconds transfer_time = bytes / model_.linkRate();
    const qty::Seconds busy =
        transfer_time + qty::Seconds{sleep_.wake_latency};
    fatal_if(busy > period,
             "duty does not fit its period: transfer + wake = " +
                 std::to_string(busy.value()) + " s > " +
                 std::to_string(period.value()) + " s");
    const qty::Seconds gap = period - busy;
    const bool sleeps = gap >= qty::Seconds{sleep_.min_sleep_gap};
    const qty::Watts power = model_.linkPower();

    DutyCycleResult r{};
    r.active_time = busy * static_cast<double>(n_periods);
    if (sleeps) {
        r.sleep_time = gap * static_cast<double>(n_periods);
        r.wakes = n_periods;
    } else {
        r.idle_time = gap * static_cast<double>(n_periods);
    }
    r.energy = power * r.active_time +
               power * sleep_.idle_power_fraction * r.sleep_time +
               power * r.idle_time;
    return r;
}

DutyCycleResult
EnergyProportionalModel::alwaysOnDuty(qty::Bytes bytes, qty::Seconds period,
                                      std::uint64_t n_periods) const
{
    fatal_if(!(bytes.value() > 0.0), "transfer size must be positive");
    fatal_if(!(period.value() > 0.0), "period must be positive");
    fatal_if(n_periods == 0, "need at least one period");

    const qty::Seconds transfer_time = bytes / model_.linkRate();
    fatal_if(transfer_time > period, "duty does not fit its period");

    DutyCycleResult r{};
    r.active_time = transfer_time * static_cast<double>(n_periods);
    r.idle_time =
        (period - transfer_time) * static_cast<double>(n_periods);
    r.energy = model_.linkPower() * (r.active_time + r.idle_time);
    return r;
}

double
EnergyProportionalModel::savingFactor(qty::Bytes bytes, qty::Seconds period,
                                      std::uint64_t n_periods) const
{
    return alwaysOnDuty(bytes, period, n_periods).energy /
           periodicDuty(bytes, period, n_periods).energy;
}

} // namespace network
} // namespace dhl
