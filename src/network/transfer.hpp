/**
 * @file
 * Analytical bulk-transfer model over optical routes: transfer time,
 * energy, parallelisation, and power-budgeted link counts — the network
 * side of every DHL comparison in the paper (§II-C, Table VI, Table VII).
 */

#ifndef DHL_NETWORK_TRANSFER_HPP
#define DHL_NETWORK_TRANSFER_HPP

#include "network/catalog.hpp"
#include "network/route.hpp"

namespace dhl {
namespace network {

/** Result of an analytical bulk transfer. */
struct TransferResult
{
    qty::Bytes bytes;              ///< Bytes moved.
    double links;                  ///< Parallel links (may be fractional).
    qty::Seconds time;             ///< Wall-clock transfer time.
    qty::Watts power;              ///< Electrical power while transferring.
    qty::Joules energy;            ///< Total energy.
    qty::BytesPerSecond bandwidth; ///< Achieved aggregate bandwidth.
};

/** Analytical transfer calculator for one route class. */
class TransferModel
{
  public:
    explicit TransferModel(
        const Route &route,
        const PowerConstants &pc = defaultPowerConstants());

    const Route &route() const { return route_; }

    /** Per-link electrical power of this route. */
    qty::Watts linkPower() const { return link_power_; }

    /** Per-link data rate. */
    qty::BytesPerSecond linkRate() const { return pc_.link_rate; }

    /**
     * Move @p bytes over @p links parallel instances of the route.
     * Links may be fractional (the paper's continuous approximation).
     */
    TransferResult transfer(qty::Bytes bytes, double links = 1.0) const;

    /**
     * Number of parallel links affordable within @p power_budget
     * (continuous; fractional links are allowed, so this is just
     * budget / linkPower).
     */
    double linksWithinPower(qty::Watts power_budget) const;

    /** Links needed to finish @p bytes within @p time. */
    double linksForTime(qty::Bytes bytes, qty::Seconds time) const;

    /**
     * The §II-C argument: the bandwidth multiple (and hence link count)
     * needed to hit a target transfer time, e.g. 161x for 29 PB in one
     * hour.
     */
    double speedupForTargetTime(qty::Bytes bytes,
                                qty::Seconds target_time) const;

  private:
    Route route_;
    PowerConstants pc_;
    qty::Watts link_power_;
};

} // namespace network
} // namespace dhl

#endif // DHL_NETWORK_TRANSFER_HPP
