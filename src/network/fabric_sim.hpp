/**
 * @file
 * Topology-level flow simulation: glues the fat-tree builder to the
 * max-min fair flow simulator so transfers are launched host-to-host
 * and automatically contend on every physical link along their path —
 * the full §II picture (bulk transfers squeezing a real fabric) in one
 * object.
 */

#ifndef DHL_NETWORK_FABRIC_SIM_HPP
#define DHL_NETWORK_FABRIC_SIM_HPP

#include <map>
#include <utility>
#include <vector>

#include "network/flowsim.hpp"
#include "network/topology.hpp"

namespace dhl {
namespace network {

/** The fabric simulator. */
class FabricSim
{
  public:
    /**
     * @param sim            The DES kernel.
     * @param cfg            Fat-tree shape.
     * @param link_capacity  Capacity of every physical link, bytes/s
     *                       (default one 400 Gbit/s lane per link).
     * @param pc             Power constants for per-flow energy.
     */
    FabricSim(sim::Simulator &sim, const FatTreeConfig &cfg = {},
              double link_capacity = 400e9 / 8.0,
              const PowerConstants &pc = defaultPowerConstants());

    const FatTree &topology() const { return topo_; }
    FlowSim &flows() { return flows_; }

    /**
     * Start a transfer from @p src to @p dst; the flow takes the BFS
     * path, shares every link max-min fairly, and is charged the
     * path's route power.
     */
    FlowId startTransfer(const HostAddress &src, const HostAddress &dst,
                         double bytes, FlowSim::Callback cb = nullptr);

    /** Number of physical links the fabric was built with. */
    std::size_t numLinks() const { return edge_links_.size(); }

    /** Utilisation of the first uplink of a ToR (diagnostics). */
    double torUplinkUtilisation(int aisle, int rack) const;

  private:
    /** Link id of the edge {a, b}; built lazily is not allowed — all
     *  edges are materialised up front. */
    int edgeLink(int a, int b) const;

    FatTree topo_;
    PowerConstants pc_;
    FlowSim flows_;
    std::map<std::pair<int, int>, int> edge_links_;
    std::map<std::pair<int, int>, int> tor_uplinks_; ///< (aisle, rack)
};

} // namespace network
} // namespace dhl

#endif // DHL_NETWORK_FABRIC_SIM_HPP
