/**
 * @file
 * Implementation of the route power model and the canonical Fig. 2
 * routes.
 */

#include "network/route.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace network {

std::string
to_string(ElementKind kind)
{
    switch (kind) {
      case ElementKind::Transceiver:
        return "transceiver";
      case ElementKind::Nic:
        return "NIC";
      case ElementKind::SwitchPortPassive:
        return "switch-port(passive)";
      case ElementKind::SwitchPortActive:
        return "switch-port(active)";
    }
    panic("unreachable element kind");
}

Route::Route(std::string name, std::vector<RouteElement> elements)
    : name_(std::move(name)), elements_(std::move(elements))
{
    fatal_if(name_.empty(), "a route needs a name");
    for (const auto &e : elements_)
        fatal_if(e.count < 0, "route element counts must be non-negative");
}

qty::Watts
Route::power(const PowerConstants &pc) const
{
    qty::Watts total{0.0};
    for (const auto &e : elements_) {
        qty::Watts unit{0.0};
        switch (e.kind) {
          case ElementKind::Transceiver:
            unit = pc.transceiver;
            break;
          case ElementKind::Nic:
            unit = pc.nic;
            break;
          case ElementKind::SwitchPortPassive:
            unit = pc.switch_port_passive;
            break;
          case ElementKind::SwitchPortActive:
            unit = pc.switch_port_active;
            break;
        }
        total += unit * e.count;
    }
    return total;
}

int
Route::countOf(ElementKind kind) const
{
    int n = 0;
    for (const auto &e : elements_) {
        if (e.kind == kind)
            n += e.count;
    }
    return n;
}

int
Route::switchTransits() const
{
    return (countOf(ElementKind::SwitchPortPassive) +
            countOf(ElementKind::SwitchPortActive)) / 2;
}

const std::vector<Route> &
canonicalRoutes()
{
    // Fig. 2: node-to-ToR hops use passive cabling, everything above is
    // active.  A route transiting a switch keeps two of its ports busy.
    static const std::vector<Route> routes = {
        Route("A0", {{ElementKind::Transceiver, 2}}),
        Route("A1", {{ElementKind::Nic, 2}}),
        Route("A2", {{ElementKind::Nic, 2},
                     {ElementKind::SwitchPortPassive, 2}}),
        // B: ToR-A (passive node port + active uplink), one mid switch
        // (2 active), ToR-B (active + passive).
        Route("B", {{ElementKind::Nic, 2},
                    {ElementKind::SwitchPortPassive, 2},
                    {ElementKind::SwitchPortActive, 4}}),
        // C: as B but crossing the core: three mid switches (6 active).
        Route("C", {{ElementKind::Nic, 2},
                    {ElementKind::SwitchPortPassive, 2},
                    {ElementKind::SwitchPortActive, 8}}),
    };
    return routes;
}

const Route &
findRoute(const std::string &name)
{
    for (const auto &r : canonicalRoutes()) {
        if (r.name() == name)
            return r;
    }
    fatal("unknown canonical route: " + name);
}

} // namespace network
} // namespace dhl
