/**
 * @file
 * Implementation of the max-min fair fluid flow simulator.
 *
 * Water-filling operates over the link→flow adjacency: each round scans
 * the links once for the bottleneck share, then freezes only the flows
 * of the links that are tight at that share, updating the residual
 * capacity and unfrozen counts of just the links those flows touch.
 * Total work per reallocation is O(Σ path lengths + rounds·links)
 * instead of the previous O(rounds·flows·path length).
 */

#include "network/flowsim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace dhl {
namespace network {

namespace {

/**
 * Exact parallel min over [0, n): contiguous ranges are reduced
 * concurrently with the serial loop and the per-range minima are
 * folded in range order.  min never rounds, so the result is
 * bit-identical to the serial scan for any range split.
 */
template <typename Value>
double
rangeMin(ThreadPool &pool, std::size_t grain, std::size_t n,
         const Value &value)
{
    const std::size_t jobs =
        std::min(pool.size(), (n + grain - 1) / grain);
    std::vector<double> local(jobs,
                              std::numeric_limits<double>::infinity());
    const std::size_t chunk = (n + jobs - 1) / jobs;
    pool.parallelFor(jobs, [&](std::size_t j) {
        const std::size_t lo = j * chunk;
        const std::size_t hi = std::min(n, lo + chunk);
        double m = std::numeric_limits<double>::infinity();
        for (std::size_t i = lo; i < hi; ++i)
            m = std::min(m, value(i));
        local[j] = m;
    });
    double m = std::numeric_limits<double>::infinity();
    for (const double v : local)
        m = std::min(m, v);
    return m;
}

/** Run body(i) for every i in [0, n) on the pool in contiguous
 *  chunks; the bodies must be independent. */
template <typename Body>
void
rangeFor(ThreadPool &pool, std::size_t grain, std::size_t n,
         const Body &body)
{
    const std::size_t jobs =
        std::min(pool.size(), (n + grain - 1) / grain);
    const std::size_t chunk = (n + jobs - 1) / jobs;
    pool.parallelFor(jobs, [&](std::size_t j) {
        const std::size_t lo = j * chunk;
        const std::size_t hi = std::min(n, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i)
            body(i);
    });
}

/** Absolute byte floor below which a flow counts as drained. */
constexpr double kDrainEpsilon = 1e-6;

/** True if the flow's residue is floating-point noise: either an
 *  absolute sliver, a sliver relative to the flow's size, or something
 *  its current rate clears in under a nanosecond. */
bool
drained(double remaining, double total, double rate)
{
    if (remaining <= kDrainEpsilon)
        return true;
    if (remaining <= total * 1e-9)
        return true;
    return rate > 0.0 && remaining / rate <= 1e-9;
}

} // namespace

FlowSim::FlowSim(sim::Simulator &sim, std::string name)
    : sim::SimObject(sim, std::move(name)),
      next_id_(1),
      last_update_(0.0),
      bytes_delivered_(0.0),
      finished_energy_(0.0),
      active_power_(0.0),
      active_power_tstart_(0.0)
{
    auto &sg = statsGroup();
    stat_flows_started_ = &sg.addCounter("flows_started", "flows started");
    stat_flows_completed_ =
        &sg.addCounter("flows_completed", "flows completed");
    stat_bytes_delivered_ =
        &sg.addScalar("bytes_delivered", "bytes delivered");
    stat_flow_duration_ =
        &sg.addAccumulator("flow_duration", "flow durations, s");
}

int
FlowSim::addLink(double capacity)
{
    fatal_if(!(capacity > 0.0), "link capacity must be positive");
    links_.push_back(Link{capacity, 0.0, {}, 0.0, 0});
    return static_cast<int>(links_.size()) - 1;
}

double
FlowSim::linkCapacity(int link) const
{
    fatal_if(link < 0 || link >= numLinks(), "link id out of range");
    return links_[static_cast<std::size_t>(link)].capacity;
}

FlowId
FlowSim::startFlow(std::vector<int> links, double bytes, double route_power,
                   Callback cb)
{
    fatal_if(links.empty(), "a flow needs at least one link");
    for (int l : links)
        fatal_if(l < 0 || l >= numLinks(), "flow references unknown link");
    fatal_if(!(bytes > 0.0), "flow size must be positive");
    fatal_if(route_power < 0.0, "route power must be non-negative");

    drainFlows();

    Flow f{};
    f.id = next_id_++;
    f.links = std::move(links);
    f.total = bytes;
    f.remaining = bytes;
    f.rate = 0.0;
    f.route_power = route_power;
    f.start_time = now();
    f.cb = std::move(cb);
    const FlowId id = f.id;
    auto [it, inserted] = flows_.emplace(id, std::move(f));
    (void)inserted;

    // Ids are monotonic, so appending keeps each adjacency list sorted.
    for (int l : it->second.links)
        links_[static_cast<std::size_t>(l)].flows.push_back(&it->second);
    active_power_ += route_power;
    active_power_tstart_ += route_power * now();

    stat_flows_started_->increment();
    reallocate();
    return id;
}

bool
FlowSim::cancelFlow(FlowId id)
{
    auto it = flows_.find(id);
    if (it == flows_.end())
        return false;
    drainFlows();
    detachFlow(it->second);
    flows_.erase(it);
    reallocate();
    return true;
}

double
FlowSim::flowRate(FlowId id) const
{
    auto it = flows_.find(id);
    fatal_if(it == flows_.end(), "unknown or finished flow");
    return it->second.rate;
}

double
FlowSim::totalEnergy() const
{
    return finished_energy_ + active_power_ * now() - active_power_tstart_;
}

double
FlowSim::linkUtilisation(int link) const
{
    fatal_if(link < 0 || link >= numLinks(), "link id out of range");
    const Link &l = links_[static_cast<std::size_t>(link)];
    return l.allocated / l.capacity;
}

void
FlowSim::setParallel(ThreadPool *pool, std::size_t grain)
{
    fatal_if(grain == 0, "parallel scan grain must be positive");
    pool_ = pool;
    grain_ = grain;
}

void
FlowSim::drainFlows()
{
    const double dt = now() - last_update_;
    last_update_ = now();
    if (dt <= 0.0)
        return;
    if (pool_ != nullptr && flows_.size() >= grain_ * 2) {
        std::vector<Flow *> order;
        order.reserve(flows_.size());
        for (auto &[id, f] : flows_) {
            (void)id;
            order.push_back(&f);
        }
        rangeFor(*pool_, grain_, order.size(), [&](std::size_t i) {
            Flow &f = *order[i];
            f.remaining = std::max(0.0, f.remaining - f.rate * dt);
        });
        return;
    }
    for (auto &[id, f] : flows_) {
        (void)id;
        f.remaining = std::max(0.0, f.remaining - f.rate * dt);
    }
}

void
FlowSim::detachFlow(Flow &f)
{
    for (int l : f.links) {
        auto &lf = links_[static_cast<std::size_t>(l)].flows;
        lf.erase(std::remove(lf.begin(), lf.end(), &f), lf.end());
    }
    active_power_ -= f.route_power;
    active_power_tstart_ -= f.route_power * f.start_time;
}

void
FlowSim::reallocate()
{
    simulator().cancel(completion_event_);
    completion_event_ = sim::EventHandle();

    if (flows_.empty()) {
        // Clamp floating-point residue in the maintained aggregates.
        active_power_ = 0.0;
        active_power_tstart_ = 0.0;
        for (auto &l : links_)
            l.allocated = 0.0;
        return;
    }

    // Progressive water-filling: repeatedly find the most-contended link
    // (smallest residual capacity per unfrozen flow), fix its flows at
    // that fair share, and continue with the remaining capacity.
    for (auto &l : links_) {
        l.allocated = 0.0;
        l.residual = l.capacity;
        l.unfrozen = 0;
    }
    for (auto &[id, f] : flows_) { // id order: deterministic FP order
        (void)id;
        f.rate = -1.0; // unfrozen marker
        for (int l : f.links)
            ++links_[static_cast<std::size_t>(l)].unfrozen;
    }

    std::size_t remaining_flows = flows_.size();
    while (remaining_flows > 0) {
        // Find the bottleneck share.
        double share = std::numeric_limits<double>::infinity();
        if (pool_ != nullptr && links_.size() >= grain_ * 2) {
            share = rangeMin(
                *pool_, grain_, links_.size(), [this](std::size_t i) {
                    const Link &l = links_[i];
                    return l.unfrozen > 0
                               ? l.residual / l.unfrozen
                               : std::numeric_limits<double>::infinity();
                });
        } else {
            for (const auto &l : links_) {
                if (l.unfrozen > 0)
                    share = std::min(share, l.residual / l.unfrozen);
            }
        }
        panic_if(!std::isfinite(share),
                 "active flows but no link carries any of them");

        // Freeze the unfrozen flows of every link that is tight at this
        // share, walking links in id order and each link's flows in
        // flow-id order (both maintained sorted) so the floating-point
        // update order is platform-independent.
        bool froze_any = false;
        for (auto &bottleneck : links_) {
            if (bottleneck.unfrozen <= 0)
                continue;
            if (bottleneck.residual / bottleneck.unfrozen >
                share * (1.0 + 1e-12)) {
                continue;
            }
            for (Flow *f : bottleneck.flows) {
                if (f->rate >= 0.0)
                    continue; // frozen in an earlier round or link
                f->rate = share;
                froze_any = true;
                --remaining_flows;
                for (int fl : f->links) {
                    Link &m = links_[static_cast<std::size_t>(fl)];
                    m.residual -= share;
                    if (m.residual < 0.0)
                        m.residual = 0.0;
                    --m.unfrozen;
                    m.allocated += share;
                }
            }
        }
        panic_if(!froze_any, "water-filling failed to make progress");
    }

    // Schedule the next completion.
    double next = std::numeric_limits<double>::infinity();
    if (pool_ != nullptr && flows_.size() >= grain_ * 2) {
        std::vector<const Flow *> order;
        order.reserve(flows_.size());
        for (const auto &[id, f] : flows_) {
            (void)id;
            order.push_back(&f);
        }
        next = rangeMin(
            *pool_, grain_, order.size(), [&order](std::size_t i) {
                const Flow &f = *order[i];
                panic_if(f.rate <= 0.0,
                         "flow allocated a non-positive rate");
                return f.remaining / f.rate;
            });
    } else {
        for (const auto &[id, f] : flows_) {
            (void)id;
            panic_if(f.rate <= 0.0, "flow allocated a non-positive rate");
            next = std::min(next, f.remaining / f.rate);
        }
    }
    completion_event_ = simulator().schedule(
        std::max(0.0, next), [this] { onCompletionEvent(); });
}

void
FlowSim::onCompletionEvent()
{
    drainFlows();

    // Collect drained flows first (in flow-id order — the force-complete
    // fallback below inherits the same deterministic order); callbacks
    // may start new flows.
    std::vector<Flow> done;
    for (auto it = flows_.begin(); it != flows_.end();) {
        Flow &f = it->second;
        if (drained(f.remaining, f.total, f.rate)) {
            detachFlow(f);
            done.push_back(std::move(f));
            it = flows_.erase(it);
        } else {
            ++it;
        }
    }
    if (done.empty()) {
        // Pure floating-point jitter: the scheduled completion landed a
        // hair before the flow's residue cleared.  Force-complete the
        // flow(s) that are next to finish rather than spinning.
        double min_tt = std::numeric_limits<double>::infinity();
        for (const auto &[id, f] : flows_) {
            (void)id;
            min_tt = std::min(min_tt, f.remaining / f.rate);
        }
        panic_if(!std::isfinite(min_tt) || min_tt > 1e-6,
                 "completion event fired with no flow near completion");
        for (auto it = flows_.begin(); it != flows_.end();) {
            Flow &f = it->second;
            if (f.remaining / f.rate <= min_tt * (1.0 + 1e-9)) {
                detachFlow(f);
                done.push_back(std::move(f));
                it = flows_.erase(it);
            } else {
                ++it;
            }
        }
    }

    for (auto &f : done) {
        FlowRecord rec{};
        rec.id = f.id;
        rec.start_time = f.start_time;
        rec.finish_time = now();
        rec.energy = f.route_power * (now() - f.start_time);
        rec.bytes = f.total;
        bytes_delivered_ += f.total;
        stat_bytes_delivered_->add(f.total);
        finished_energy_ += rec.energy;
        stat_flows_completed_->increment();
        stat_flow_duration_->sample(rec.duration());
        if (f.cb)
            f.cb(rec);
    }

    reallocate();
}

} // namespace network
} // namespace dhl
