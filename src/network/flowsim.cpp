/**
 * @file
 * Implementation of the max-min fair fluid flow simulator.
 */

#include "network/flowsim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"

namespace dhl {
namespace network {

namespace {

/** Absolute byte floor below which a flow counts as drained. */
constexpr double kDrainEpsilon = 1e-6;

/** True if the flow's residue is floating-point noise: either an
 *  absolute sliver, a sliver relative to the flow's size, or something
 *  its current rate clears in under a nanosecond. */
bool
drained(double remaining, double total, double rate)
{
    if (remaining <= kDrainEpsilon)
        return true;
    if (remaining <= total * 1e-9)
        return true;
    return rate > 0.0 && remaining / rate <= 1e-9;
}

} // namespace

FlowSim::FlowSim(sim::Simulator &sim, std::string name)
    : sim::SimObject(sim, std::move(name)),
      next_id_(1),
      last_update_(0.0),
      bytes_delivered_(0.0),
      finished_energy_(0.0)
{
    auto &sg = statsGroup();
    stat_flows_started_ = &sg.addCounter("flows_started", "flows started");
    stat_flows_completed_ =
        &sg.addCounter("flows_completed", "flows completed");
    stat_bytes_delivered_ =
        &sg.addScalar("bytes_delivered", "bytes delivered");
    stat_flow_duration_ =
        &sg.addAccumulator("flow_duration", "flow durations, s");
}

int
FlowSim::addLink(double capacity)
{
    fatal_if(!(capacity > 0.0), "link capacity must be positive");
    links_.push_back(capacity);
    return static_cast<int>(links_.size()) - 1;
}

double
FlowSim::linkCapacity(int link) const
{
    fatal_if(link < 0 || link >= numLinks(), "link id out of range");
    return links_[static_cast<std::size_t>(link)];
}

FlowId
FlowSim::startFlow(std::vector<int> links, double bytes, double route_power,
                   Callback cb)
{
    fatal_if(links.empty(), "a flow needs at least one link");
    for (int l : links)
        fatal_if(l < 0 || l >= numLinks(), "flow references unknown link");
    fatal_if(!(bytes > 0.0), "flow size must be positive");
    fatal_if(route_power < 0.0, "route power must be non-negative");

    advance();

    Flow f{};
    f.id = next_id_++;
    f.links = std::move(links);
    f.total = bytes;
    f.remaining = bytes;
    f.rate = 0.0;
    f.route_power = route_power;
    f.start_time = now();
    f.energy = 0.0;
    f.cb = std::move(cb);
    const FlowId id = f.id;
    flows_.emplace(id, std::move(f));

    stat_flows_started_->increment();
    reallocate();
    return id;
}

bool
FlowSim::cancelFlow(FlowId id)
{
    auto it = flows_.find(id);
    if (it == flows_.end())
        return false;
    advance();
    flows_.erase(it);
    reallocate();
    return true;
}

double
FlowSim::flowRate(FlowId id) const
{
    auto it = flows_.find(id);
    fatal_if(it == flows_.end(), "unknown or finished flow");
    return it->second.rate;
}

double
FlowSim::totalEnergy() const
{
    double active = 0.0;
    const double dt = now() - last_update_;
    for (const auto &[id, f] : flows_) {
        (void)id;
        active += f.energy + f.route_power * dt;
    }
    return finished_energy_ + active;
}

double
FlowSim::linkUtilisation(int link) const
{
    fatal_if(link < 0 || link >= numLinks(), "link id out of range");
    double used = 0.0;
    for (const auto &[id, f] : flows_) {
        (void)id;
        if (std::find(f.links.begin(), f.links.end(), link) != f.links.end())
            used += f.rate;
    }
    return used / links_[static_cast<std::size_t>(link)];
}

void
FlowSim::advance()
{
    const double dt = now() - last_update_;
    last_update_ = now();
    if (dt <= 0.0)
        return;
    for (auto &[id, f] : flows_) {
        (void)id;
        f.remaining = std::max(0.0, f.remaining - f.rate * dt);
        f.energy += f.route_power * dt;
    }
}

void
FlowSim::reallocate()
{
    simulator().cancel(completion_event_);
    completion_event_ = sim::EventHandle();

    if (flows_.empty())
        return;

    // Progressive water-filling: repeatedly find the most-contended link
    // (smallest residual capacity per unfrozen flow), fix its flows at
    // that fair share, and continue with the remaining capacity.
    std::vector<double> residual = links_;
    std::vector<int> unfrozen(links_.size(), 0);
    for (auto &[id, f] : flows_) {
        (void)id;
        f.rate = -1.0; // unfrozen marker
        for (int l : f.links)
            ++unfrozen[static_cast<std::size_t>(l)];
    }

    std::size_t remaining_flows = flows_.size();
    while (remaining_flows > 0) {
        // Find the bottleneck share.
        double share = std::numeric_limits<double>::infinity();
        for (std::size_t l = 0; l < links_.size(); ++l) {
            if (unfrozen[l] > 0)
                share = std::min(share, residual[l] / unfrozen[l]);
        }
        panic_if(!std::isfinite(share),
                 "active flows but no link carries any of them");

        // Freeze every unfrozen flow crossing a bottleneck link at
        // exactly `share`.  (Freezing only bottleneck flows and looping
        // is the textbook algorithm; freezing all flows at the global
        // minimum share each round is equivalent for equal-weight flows
        // crossing one bottleneck per round, but to stay exact we only
        // freeze flows on links that are tight at this share.)
        bool froze_any = false;
        for (auto &[id, f] : flows_) {
            (void)id;
            if (f.rate >= 0.0)
                continue;
            bool tight = false;
            for (int l : f.links) {
                const auto lu = static_cast<std::size_t>(l);
                if (unfrozen[lu] > 0 &&
                    residual[lu] / unfrozen[lu] <= share * (1.0 + 1e-12)) {
                    tight = true;
                    break;
                }
            }
            if (!tight)
                continue;
            f.rate = share;
            froze_any = true;
            --remaining_flows;
            for (int l : f.links) {
                const auto lu = static_cast<std::size_t>(l);
                residual[lu] -= share;
                if (residual[lu] < 0.0)
                    residual[lu] = 0.0;
                --unfrozen[lu];
            }
        }
        panic_if(!froze_any, "water-filling failed to make progress");
    }

    // Schedule the next completion.
    double next = std::numeric_limits<double>::infinity();
    for (const auto &[id, f] : flows_) {
        (void)id;
        panic_if(f.rate <= 0.0, "flow allocated a non-positive rate");
        next = std::min(next, f.remaining / f.rate);
    }
    completion_event_ = simulator().schedule(
        std::max(0.0, next), [this] { onCompletionEvent(); });
}

void
FlowSim::onCompletionEvent()
{
    advance();

    // Collect drained flows first; callbacks may start new flows.
    std::vector<Flow> done;
    for (auto it = flows_.begin(); it != flows_.end();) {
        const Flow &f = it->second;
        if (drained(f.remaining, f.total, f.rate)) {
            done.push_back(std::move(it->second));
            it = flows_.erase(it);
        } else {
            ++it;
        }
    }
    if (done.empty()) {
        // Pure floating-point jitter: the scheduled completion landed a
        // hair before the flow's residue cleared.  Force-complete the
        // flow(s) that are next to finish rather than spinning.
        double min_tt = std::numeric_limits<double>::infinity();
        for (const auto &[id, f] : flows_) {
            (void)id;
            min_tt = std::min(min_tt, f.remaining / f.rate);
        }
        panic_if(!std::isfinite(min_tt) || min_tt > 1e-6,
                 "completion event fired with no flow near completion");
        for (auto it = flows_.begin(); it != flows_.end();) {
            if (it->second.remaining / it->second.rate <=
                min_tt * (1.0 + 1e-9)) {
                done.push_back(std::move(it->second));
                it = flows_.erase(it);
            } else {
                ++it;
            }
        }
    }

    for (auto &f : done) {
        FlowRecord rec{};
        rec.id = f.id;
        rec.start_time = f.start_time;
        rec.finish_time = now();
        rec.energy = f.energy;
        rec.bytes = f.total;
        bytes_delivered_ += f.total;
        stat_bytes_delivered_->add(f.total);
        finished_energy_ += f.energy;
        stat_flows_completed_->increment();
        stat_flow_duration_->sample(rec.duration());
        if (f.cb)
            f.cb(rec);
    }

    reallocate();
}

} // namespace network
} // namespace dhl
