/**
 * @file
 * Network component power catalogue (paper Table III) and the calibrated
 * per-component powers used by the route energy model.
 *
 * The paper's five route energies (Fig. 2) are reproduced exactly by:
 *
 *  - Transceiver:        12 W        (400 Gbit/s QSFP-DD, Table III)
 *  - NIC (effective):    19.8 W      (inside the bold 2x200 GbE NIC's
 *                                     17-23.3 W datasheet range; single
 *                                     calibrated constant)
 *  - Switch port passive: 747/32  = 23.34 W  (QM9700 low bound / ports)
 *  - Switch port active:  1720/32 = 53.75 W  (QM9700 high bound / ports)
 *
 * See DESIGN.md §3 for the derivation.
 */

#ifndef DHL_NETWORK_CATALOG_HPP
#define DHL_NETWORK_CATALOG_HPP

#include <string>
#include <vector>

#include "common/quantity.hpp"

namespace dhl {
namespace network {

/** Component category in Table III. */
enum class ComponentKind
{
    Transceiver,
    Nic,
    Switch,
};

std::string to_string(ComponentKind kind);

/** One catalogue row (paper Table III). */
struct ComponentSpec
{
    std::string name;    ///< Product name.
    ComponentKind kind;  ///< Category.
    double speed;        ///< Link speed, bits/s (per port for switches).
    int ports;           ///< Port count (0 where N/A).
    double power_low;    ///< Low-bound power, W (passive cabling).
    double power_high;   ///< High-bound power, W (active cabling).
    bool paper_default;  ///< Bolded in the paper (used in its model).
};

/** Table III rows. */
const std::vector<ComponentSpec> &componentCatalog();

/** Calibrated powers driving the route model (see file comment).
 *  Typed: the link rate in particular is the paper's bits-vs-bytes trap
 *  (400 Gbit/s on the wire, bytes/s in the model), so the /8 is spelled
 *  as an explicit qty conversion. */
struct PowerConstants
{
    qty::Watts transceiver{12.0};             ///< Per transceiver.
    qty::Watts nic{19.8};                     ///< Per NIC (effective).
    qty::Watts switch_port_passive{747.0 / 32.0};  ///< Per passive port.
    qty::Watts switch_port_active{1720.0 / 32.0};  ///< Per active port.

    /** Per-link rate of one 400 Gbit/s link, in bytes/s. */
    qty::BytesPerSecond link_rate =
        qty::toBytesPerSecond(qty::gigabitsPerSecond(400.0));
};

/** The default calibrated constants. */
const PowerConstants &defaultPowerConstants();

} // namespace network
} // namespace dhl

#endif // DHL_NETWORK_CATALOG_HPP
