/**
 * @file
 * Implementation of the optical circuit switching baseline.
 */

#include "network/ocs.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace network {

void
validate(const OcsConfig &cfg)
{
    fatal_if(cfg.reconfiguration_latency < 0.0,
             "reconfiguration latency must be non-negative");
    fatal_if(cfg.port_power < 0.0, "port power must be non-negative");
    fatal_if(cfg.ports_per_circuit < 0,
             "ports per circuit must be non-negative");
}

OcsModel::OcsModel(const OcsConfig &cfg, const PowerConstants &pc)
    : cfg_(cfg), pc_(pc)
{
    validate(cfg_);
    fatal_if(!(pc.link_rate.value() > 0.0), "link rate must be positive");
}

qty::Watts
OcsModel::circuitPower() const
{
    return 2.0 * pc_.transceiver +
           qty::Watts{cfg_.port_power * cfg_.ports_per_circuit};
}

TransferResult
OcsModel::transfer(qty::Bytes bytes, double circuits) const
{
    fatal_if(bytes.value() < 0.0, "transfer size must be non-negative");
    fatal_if(!(circuits > 0.0), "need a positive circuit count");

    TransferResult r{};
    r.bytes = bytes;
    r.links = circuits;
    r.bandwidth = pc_.link_rate * circuits;
    r.time = qty::Seconds{cfg_.reconfiguration_latency} + bytes / r.bandwidth;
    r.power = circuitPower() * circuits;
    r.energy = r.power * r.time;
    return r;
}

double
OcsModel::savingVsRoute(const Route &route, qty::Bytes bytes) const
{
    const TransferModel packet(route, pc_);
    return packet.transfer(bytes).energy / transfer(bytes).energy;
}

} // namespace network
} // namespace dhl
