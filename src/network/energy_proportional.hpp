/**
 * @file
 * Energy-proportional networking baseline (paper §VII-D related work:
 * ElasticTree-style link on/off, Energy-Efficient Ethernet rate
 * adaptation).
 *
 * The paper's network energy model keeps every route element powered
 * for the whole transfer.  The strongest counter-proposal from the
 * literature is to sleep idle links and wake them on demand; this
 * model quantifies how far that narrows the gap to a DHL:
 *
 *  - while transferring, the route draws its full power (optics cannot
 *    transmit below line power);
 *  - while idle, it draws a residual fraction (EEE low-power idle);
 *  - each wake costs a latency during which the route burns full
 *    power but moves no data.
 *
 * The punchline the tests verify: sleeping helps duty-cycled traffic a
 * lot, but the *per-byte* energy of an active transfer is unchanged,
 * so the DHL's 4-88x per-byte advantage (Table VI) survives intact.
 */

#ifndef DHL_NETWORK_ENERGY_PROPORTIONAL_HPP
#define DHL_NETWORK_ENERGY_PROPORTIONAL_HPP

#include <cstdint>

#include "network/route.hpp"
#include "network/transfer.hpp"

namespace dhl {
namespace network {

/** Sleep-state parameters. */
struct SleepConfig
{
    /** Residual power while asleep, fraction of active (EEE LPI is
     *  ~10 %). */
    double idle_power_fraction = 0.10;

    /** Time to wake the path end to end, s (PHY + switch ports). */
    double wake_latency = 0.005;

    /** Don't sleep for gaps shorter than this (hysteresis), s. */
    double min_sleep_gap = 0.010;
};

/** Validate; throws FatalError on nonsense. */
void validate(const SleepConfig &cfg);

/** Energy/time of a duty-cycled transfer schedule. */
struct DutyCycleResult
{
    qty::Seconds active_time; ///< Transferring (incl. wake overheads).
    qty::Seconds sleep_time;  ///< Asleep.
    qty::Seconds idle_time;   ///< Awake but idle (gaps under hysteresis).
    qty::Joules energy;       ///< Total.
    std::uint64_t wakes;      ///< sleep->active transitions.

    qty::Seconds
    totalTime() const
    {
        return active_time + sleep_time + idle_time;
    }
};

/** The energy-proportional route model. */
class EnergyProportionalModel
{
  public:
    EnergyProportionalModel(const Route &route, const SleepConfig &sleep,
                            const PowerConstants &pc =
                                defaultPowerConstants());

    const Route &route() const { return model_.route(); }
    const SleepConfig &sleep() const { return sleep_; }

    /** Per-byte energy while actively transferring (identical to the
     *  always-on model — sleeping cannot lower it). */
    qty::JoulesPerByte activeJoulesPerByte() const;

    /**
     * A periodic duty: @p bytes every @p period for @p n_periods
     * periods over one link.  The route sleeps between transfers when
     * the gap clears the hysteresis.
     */
    DutyCycleResult periodicDuty(qty::Bytes bytes, qty::Seconds period,
                                 std::uint64_t n_periods) const;

    /**
     * The same duty on an always-on route (the paper's accounting),
     * for comparison.
     */
    DutyCycleResult alwaysOnDuty(qty::Bytes bytes, qty::Seconds period,
                                 std::uint64_t n_periods) const;

    /** Energy saving factor of sleeping vs always-on for the duty. */
    double savingFactor(qty::Bytes bytes, qty::Seconds period,
                        std::uint64_t n_periods) const;

  private:
    TransferModel model_;
    SleepConfig sleep_;
};

} // namespace network
} // namespace dhl

#endif // DHL_NETWORK_ENERGY_PROPORTIONAL_HPP
