/**
 * @file
 * Implementation of the topology-level fabric simulator.
 */

#include "network/fabric_sim.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dhl {
namespace network {

FabricSim::FabricSim(sim::Simulator &sim, const FatTreeConfig &cfg,
                     double link_capacity, const PowerConstants &pc)
    : topo_(cfg), pc_(pc), flows_(sim, "fabric")
{
    fatal_if(!(link_capacity > 0.0), "link capacity must be positive");
    for (const auto &edge : topo_.edges())
        edge_links_.emplace(edge, flows_.addLink(link_capacity));

    // Remember each ToR's first uplink for the diagnostics helper.
    for (int aisle = 0; aisle < cfg.aisles; ++aisle) {
        for (int rack = 0; rack < cfg.racks_per_aisle; ++rack) {
            const int tor = topo_.torNodeId(aisle, rack);
            const int agg = topo_.aggNodeId(aisle, 0);
            tor_uplinks_.emplace(std::make_pair(aisle, rack),
                                 edgeLink(tor, agg));
        }
    }
}

int
FabricSim::edgeLink(int a, int b) const
{
    const auto key = std::make_pair(std::min(a, b), std::max(a, b));
    auto it = edge_links_.find(key);
    panic_if(it == edge_links_.end(),
             "path uses an edge the fabric never materialised");
    return it->second;
}

FlowId
FabricSim::startTransfer(const HostAddress &src, const HostAddress &dst,
                         double bytes, FlowSim::Callback cb)
{
    const HostPath path = topo_.path(src, dst);

    // Node sequence: src host, switches..., dst host.
    std::vector<int> nodes;
    nodes.push_back(topo_.hostIndex(src));
    nodes.insert(nodes.end(), path.switch_nodes.begin(),
                 path.switch_nodes.end());
    nodes.push_back(topo_.hostIndex(dst));

    std::vector<int> links;
    links.reserve(nodes.size() - 1);
    for (std::size_t i = 1; i < nodes.size(); ++i)
        links.push_back(edgeLink(nodes[i - 1], nodes[i]));

    return flows_.startFlow(std::move(links), bytes,
                            path.route.power(pc_).value(), std::move(cb));
}

double
FabricSim::torUplinkUtilisation(int aisle, int rack) const
{
    auto it = tor_uplinks_.find(std::make_pair(aisle, rack));
    fatal_if(it == tor_uplinks_.end(), "unknown ToR");
    return flows_.linkUtilisation(it->second);
}

} // namespace network
} // namespace dhl
