/**
 * @file
 * Route power model: a route is a sequence of powered elements the data
 * stream keeps busy for the whole transfer; the transfer energy is the
 * route's total power times the transfer time.
 *
 * The five canonical routes of the paper's Fig. 2:
 *
 *  - A0: two directly connected transceivers only (the idealised bound).
 *  - A1: a direct, passive connection between two regular NICs.
 *  - A2: a passive connection through one switch (two passive ports).
 *  - B:  different racks, same aisle: NIC - ToR - mid switch - ToR - NIC
 *        (ToR node-side ports passive, all inter-switch ports active).
 *  - C:  different aisles: NIC - ToR - 3 mid switches - ToR - NIC.
 *
 * With the calibrated constants these reproduce the paper's 13.92 /
 * 22.97 / 50.05 / 174.75 / 299.45 MJ for the 29 PB transfer.
 */

#ifndef DHL_NETWORK_ROUTE_HPP
#define DHL_NETWORK_ROUTE_HPP

#include <string>
#include <vector>

#include "network/catalog.hpp"

namespace dhl {
namespace network {

/** Kind of one powered element along a route. */
enum class ElementKind
{
    Transceiver,       ///< One optical transceiver.
    Nic,               ///< One network interface card.
    SwitchPortPassive, ///< One switch port with passive cabling.
    SwitchPortActive,  ///< One switch port with active cabling.
};

std::string to_string(ElementKind kind);

/** One powered element along a route. */
struct RouteElement
{
    ElementKind kind;
    int count; ///< Number of identical elements.
};

/** A named route: an ordered bag of powered elements. */
class Route
{
  public:
    Route(std::string name, std::vector<RouteElement> elements);

    const std::string &name() const { return name_; }
    const std::vector<RouteElement> &elements() const { return elements_; }

    /** Total electrical power while the route is busy. */
    qty::Watts power(const PowerConstants &pc = defaultPowerConstants()) const;

    /** Count of elements of a given kind. */
    int countOf(ElementKind kind) const;

    /** Number of switch transits (passive+active port pairs / 2). */
    int switchTransits() const;

  private:
    std::string name_;
    std::vector<RouteElement> elements_;
};

/** The five canonical routes of Fig. 2, in paper order A0..C. */
const std::vector<Route> &canonicalRoutes();

/** Look up a canonical route by name ("A0".."C"); fatal() if absent. */
const Route &findRoute(const std::string &name);

} // namespace network
} // namespace dhl

#endif // DHL_NETWORK_ROUTE_HPP
