/**
 * @file
 * Fat-tree data-centre topology builder (the Fig. 2 network).
 *
 * Three layers: per-rack top-of-rack (ToR) switches, per-aisle
 * aggregation switches, and core switches spanning aisles.  Hosts attach
 * to their rack's ToR with passive cabling; every inter-switch hop is
 * active (matching the paper's assumption).  Routes between any two
 * hosts are extracted by BFS and converted into the powered-element
 * Route model, so the canonical A2/B/C routes emerge naturally from host
 * placement:
 *
 *  - same rack                -> 1 switch  (A2's power)
 *  - same aisle, other rack   -> 3 switches (B)
 *  - other aisle              -> 5 switches (C)
 */

#ifndef DHL_NETWORK_TOPOLOGY_HPP
#define DHL_NETWORK_TOPOLOGY_HPP

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "network/route.hpp"

namespace dhl {
namespace network {

/** Shape of the fat tree. */
struct FatTreeConfig
{
    int aisles = 2;          ///< Aisles in the data centre.
    int racks_per_aisle = 4; ///< Racks per aisle.
    int hosts_per_rack = 3;  ///< Hosts per rack.
    int aggs_per_aisle = 1;  ///< Aggregation switches per aisle.
    int cores = 1;           ///< Core switches.
};

/** Identifies one host by its physical position. */
struct HostAddress
{
    int aisle;
    int rack;
    int host;
};

/** A resolved path between two hosts. */
struct HostPath
{
    HostAddress src;
    HostAddress dst;
    std::vector<int> switch_nodes; ///< Switch node ids in hop order.
    Route route;                   ///< Powered-element equivalent.
};

/** The built topology. */
class FatTree
{
  public:
    explicit FatTree(const FatTreeConfig &cfg = {});

    const FatTreeConfig &config() const { return cfg_; }

    int numHosts() const;
    int numSwitches() const { return num_switches_; }

    /** Flat host index of an address; fatal() on out-of-range. */
    int hostIndex(const HostAddress &addr) const;

    /** Address of a flat host index. */
    HostAddress hostAddress(int index) const;

    /**
     * Shortest path between two hosts.  fatal() if they are the same
     * host.  The returned Route has 2 NICs, passive ports on the two
     * host-facing hops, active ports on every switch-to-switch hop.
     */
    HostPath path(const HostAddress &src, const HostAddress &dst) const;

    /** Number of switches a path between the two hosts transits. */
    int hopSwitches(const HostAddress &src, const HostAddress &dst) const;

    /** All undirected edges (a < b) of the topology. */
    std::vector<std::pair<int, int>> edges() const;

    /** Node ids of specific switches (hosts use hostIndex()). */
    int torNodeId(int aisle, int rack) const;
    int aggNodeId(int aisle, int agg) const;
    int coreNodeId(int core) const;

  private:
    /** Node ids: hosts first, then switches. */
    int torNode(int aisle, int rack) const;
    int aggNode(int aisle, int agg) const;
    int coreNode(int core) const;

    FatTreeConfig cfg_;
    int num_switches_;
    std::vector<std::vector<int>> adj_; ///< adjacency over all nodes
};

} // namespace network
} // namespace dhl

#endif // DHL_NETWORK_TOPOLOGY_HPP
