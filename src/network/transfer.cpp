/**
 * @file
 * Implementation of the analytical bulk-transfer model.
 */

#include "network/transfer.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace network {

TransferModel::TransferModel(const Route &route, const PowerConstants &pc)
    : route_(route), pc_(pc), link_power_(route.power(pc))
{
    fatal_if(!(pc.link_rate.value() > 0.0), "link rate must be positive");
    fatal_if(!(link_power_.value() > 0.0), "route power must be positive");
}

TransferResult
TransferModel::transfer(qty::Bytes bytes, double links) const
{
    fatal_if(bytes.value() < 0.0, "transfer size must be non-negative");
    fatal_if(!(links > 0.0), "need a positive number of links");

    TransferResult r{};
    r.bytes = bytes;
    r.links = links;
    r.bandwidth = pc_.link_rate * links;
    r.time = bytes / r.bandwidth;
    r.power = link_power_ * links;
    r.energy = r.power * r.time;
    return r;
}

double
TransferModel::linksWithinPower(qty::Watts power_budget) const
{
    fatal_if(!(power_budget.value() > 0.0), "power budget must be positive");
    return power_budget / link_power_;
}

double
TransferModel::linksForTime(qty::Bytes bytes, qty::Seconds time) const
{
    fatal_if(bytes.value() < 0.0, "transfer size must be non-negative");
    fatal_if(!(time.value() > 0.0), "target time must be positive");
    return bytes / (pc_.link_rate * time);
}

double
TransferModel::speedupForTargetTime(qty::Bytes bytes,
                                    qty::Seconds target_time) const
{
    const qty::Seconds single_link_time = bytes / pc_.link_rate;
    fatal_if(!(target_time.value() > 0.0), "target time must be positive");
    return single_link_time / target_time;
}

} // namespace network
} // namespace dhl
