/**
 * @file
 * Optical circuit switching (OCS) baseline — the networking community's
 * own answer to electrical switching energy (paper §II-B and §VII-D:
 * Sirius, Baldur, hybrid switches).
 *
 * A circuit-switched path replaces every electrical switch transit
 * with a passive optical crossbar: once the circuit is configured
 * (paying a reconfiguration latency), only the two endpoint
 * transceivers and a small per-port crossbar overhead draw power.
 * This is the best case for optical networking — it reduces any route
 * to nearly A0 — and the comparison the DHL must still beat.
 */

#ifndef DHL_NETWORK_OCS_HPP
#define DHL_NETWORK_OCS_HPP

#include "network/catalog.hpp"
#include "network/transfer.hpp"

namespace dhl {
namespace network {

/** Parameters of the optical circuit switch. */
struct OcsConfig
{
    /** Circuit (re)configuration latency, s (MEMS mirrors: ~10 ms;
     *  Sirius-class: nanoseconds — configurable). */
    double reconfiguration_latency = 0.010;

    /** Crossbar power per port in circuit, W (insertion loss drivers
     *  and control; near zero for passive designs). */
    double port_power = 0.5;

    /** Crossbar ports a circuit transits (in + out). */
    int ports_per_circuit = 2;
};

/** Validate; throws FatalError on nonsense. */
void validate(const OcsConfig &cfg);

/** The circuit-switched transfer model. */
class OcsModel
{
  public:
    explicit OcsModel(const OcsConfig &cfg = {},
                      const PowerConstants &pc =
                          defaultPowerConstants());

    const OcsConfig &config() const { return cfg_; }

    /** Power of one established circuit: two transceivers plus the
     *  crossbar ports. */
    qty::Watts circuitPower() const;

    /** Transfer @p bytes over @p circuits parallel circuits,
     *  including one reconfiguration up front. */
    TransferResult transfer(qty::Bytes bytes, double circuits = 1.0) const;

    /**
     * Energy saving of the circuit against a packet-switched route for
     * the same bytes (the gap OCS closes).
     */
    double savingVsRoute(const Route &route, qty::Bytes bytes) const;

  private:
    OcsConfig cfg_;
    PowerConstants pc_;
};

} // namespace network
} // namespace dhl

#endif // DHL_NETWORK_OCS_HPP
