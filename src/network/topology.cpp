/**
 * @file
 * Implementation of the fat-tree topology builder.
 */

#include "network/topology.hpp"

#include <algorithm>
#include <queue>

#include "common/logging.hpp"

namespace dhl {
namespace network {

FatTree::FatTree(const FatTreeConfig &cfg)
    : cfg_(cfg)
{
    fatal_if(cfg.aisles < 1, "need at least one aisle");
    fatal_if(cfg.racks_per_aisle < 1, "need at least one rack per aisle");
    fatal_if(cfg.hosts_per_rack < 1, "need at least one host per rack");
    fatal_if(cfg.aggs_per_aisle < 1, "need at least one agg per aisle");
    fatal_if(cfg.cores < 1, "need at least one core switch");

    const int tors = cfg.aisles * cfg.racks_per_aisle;
    const int aggs = cfg.aisles * cfg.aggs_per_aisle;
    num_switches_ = tors + aggs + cfg.cores;

    const int total = numHosts() + num_switches_;
    adj_.assign(static_cast<std::size_t>(total), {});

    auto connect = [this](int a, int b) {
        adj_[static_cast<std::size_t>(a)].push_back(b);
        adj_[static_cast<std::size_t>(b)].push_back(a);
    };

    for (int aisle = 0; aisle < cfg.aisles; ++aisle) {
        for (int rack = 0; rack < cfg.racks_per_aisle; ++rack) {
            const int tor = torNode(aisle, rack);
            // Hosts to their ToR.
            for (int h = 0; h < cfg.hosts_per_rack; ++h)
                connect(hostIndex({aisle, rack, h}), tor);
            // ToR to every aggregation switch in its aisle.
            for (int a = 0; a < cfg.aggs_per_aisle; ++a)
                connect(tor, aggNode(aisle, a));
        }
        // Aggregation switches to every core.
        for (int a = 0; a < cfg.aggs_per_aisle; ++a) {
            for (int c = 0; c < cfg.cores; ++c)
                connect(aggNode(aisle, a), coreNode(c));
        }
    }
}

int
FatTree::numHosts() const
{
    return cfg_.aisles * cfg_.racks_per_aisle * cfg_.hosts_per_rack;
}

int
FatTree::hostIndex(const HostAddress &addr) const
{
    fatal_if(addr.aisle < 0 || addr.aisle >= cfg_.aisles,
             "aisle out of range");
    fatal_if(addr.rack < 0 || addr.rack >= cfg_.racks_per_aisle,
             "rack out of range");
    fatal_if(addr.host < 0 || addr.host >= cfg_.hosts_per_rack,
             "host out of range");
    return (addr.aisle * cfg_.racks_per_aisle + addr.rack) *
               cfg_.hosts_per_rack +
           addr.host;
}

HostAddress
FatTree::hostAddress(int index) const
{
    fatal_if(index < 0 || index >= numHosts(), "host index out of range");
    HostAddress a{};
    a.host = index % cfg_.hosts_per_rack;
    const int rack_flat = index / cfg_.hosts_per_rack;
    a.rack = rack_flat % cfg_.racks_per_aisle;
    a.aisle = rack_flat / cfg_.racks_per_aisle;
    return a;
}

int
FatTree::torNode(int aisle, int rack) const
{
    return numHosts() + aisle * cfg_.racks_per_aisle + rack;
}

int
FatTree::aggNode(int aisle, int agg) const
{
    return numHosts() + cfg_.aisles * cfg_.racks_per_aisle +
           aisle * cfg_.aggs_per_aisle + agg;
}

int
FatTree::coreNode(int core) const
{
    return numHosts() + cfg_.aisles * cfg_.racks_per_aisle +
           cfg_.aisles * cfg_.aggs_per_aisle + core;
}

HostPath
FatTree::path(const HostAddress &src, const HostAddress &dst) const
{
    const int s = hostIndex(src);
    const int t = hostIndex(dst);
    fatal_if(s == t, "path endpoints must be distinct hosts");

    // BFS shortest path.
    std::vector<int> prev(adj_.size(), -1);
    std::queue<int> q;
    q.push(s);
    prev[static_cast<std::size_t>(s)] = s;
    while (!q.empty()) {
        const int u = q.front();
        q.pop();
        if (u == t)
            break;
        for (int v : adj_[static_cast<std::size_t>(u)]) {
            if (prev[static_cast<std::size_t>(v)] == -1) {
                prev[static_cast<std::size_t>(v)] = u;
                q.push(v);
            }
        }
    }
    panic_if(prev[static_cast<std::size_t>(t)] == -1,
             "fat tree is disconnected");

    std::vector<int> nodes;
    for (int u = t; u != s; u = prev[static_cast<std::size_t>(u)])
        nodes.push_back(u);
    nodes.push_back(s);
    std::reverse(nodes.begin(), nodes.end());

    // Interior nodes are switches.
    std::vector<int> switches(nodes.begin() + 1, nodes.end() - 1);
    panic_if(switches.empty(), "two distinct hosts share no switch");

    // Convert to the powered-element route: the first and last switch
    // have one passive (host-facing) port each; every other port along
    // the path is active.
    const int n_sw = static_cast<int>(switches.size());
    const int total_ports = 2 * n_sw;
    int passive_ports = 2;
    int active_ports = total_ports - passive_ports;
    if (n_sw == 1) {
        // Single-switch transit: both ports face hosts (route A2).
        passive_ports = 2;
        active_ports = 0;
    }

    std::vector<RouteElement> elems;
    elems.push_back({ElementKind::Nic, 2});
    elems.push_back({ElementKind::SwitchPortPassive, passive_ports});
    if (active_ports > 0)
        elems.push_back({ElementKind::SwitchPortActive, active_ports});

    std::string name = "fabric(" + std::to_string(n_sw) + "sw)";
    return HostPath{src, dst, std::move(switches),
                    Route(name, std::move(elems))};
}

int
FatTree::hopSwitches(const HostAddress &src, const HostAddress &dst) const
{
    return static_cast<int>(path(src, dst).switch_nodes.size());
}

std::vector<std::pair<int, int>>
FatTree::edges() const
{
    std::vector<std::pair<int, int>> out;
    for (int a = 0; a < static_cast<int>(adj_.size()); ++a) {
        for (int b : adj_[static_cast<std::size_t>(a)]) {
            if (a < b)
                out.emplace_back(a, b);
        }
    }
    return out;
}

int
FatTree::torNodeId(int aisle, int rack) const
{
    fatal_if(aisle < 0 || aisle >= cfg_.aisles, "aisle out of range");
    fatal_if(rack < 0 || rack >= cfg_.racks_per_aisle,
             "rack out of range");
    return torNode(aisle, rack);
}

int
FatTree::aggNodeId(int aisle, int agg) const
{
    fatal_if(aisle < 0 || aisle >= cfg_.aisles, "aisle out of range");
    fatal_if(agg < 0 || agg >= cfg_.aggs_per_aisle, "agg out of range");
    return aggNode(aisle, agg);
}

int
FatTree::coreNodeId(int core) const
{
    fatal_if(core < 0 || core >= cfg_.cores, "core out of range");
    return coreNode(core);
}

} // namespace network
} // namespace dhl
