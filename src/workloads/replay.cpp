/**
 * @file
 * Implementation of the replay helpers.
 */

#include "workloads/replay.hpp"

#include <algorithm>
#include <memory>

#include "common/logging.hpp"
#include "dhl/dataset_manager.hpp"

namespace dhl {
namespace workloads {

namespace {

/** Shared serial-server loop for the analytical replays. */
template <typename ServiceFn>
ReplaySummary
replaySerial(const std::vector<TransferRequest> &requests, ServiceFn service)
{
    validateRequests(requests, "analytical replay");

    ReplaySummary s{};
    double free_at = 0.0;
    double last_finish = 0.0;
    double latency_sum = 0.0;
    for (const auto &req : requests) {
        const auto [duration, energy] = service(req.bytes);
        const double start = std::max(req.at, free_at);
        const double finish = start + duration;
        free_at = finish;
        last_finish = finish;
        s.busy_time += duration;
        s.energy += energy;
        s.bytes += req.bytes;
        ++s.requests;
        const double latency = finish - req.at;
        latency_sum += latency;
        s.max_latency = std::max(s.max_latency, latency);
    }
    s.makespan = last_finish - requests.front().at;
    s.mean_latency = latency_sum / static_cast<double>(s.requests);
    return s;
}

} // namespace

ReplaySummary
replayDhlAnalytical(const std::vector<TransferRequest> &requests,
                    const core::DhlConfig &cfg,
                    const core::BulkOptions &opts)
{
    const core::AnalyticalModel model(cfg);
    return replaySerial(requests, [&](double bytes) {
        const auto bulk = model.bulk(qty::Bytes{bytes}, opts);
        return std::pair<double, double>{bulk.total_time.value(),
                                         bulk.total_energy.value()};
    });
}

ReplaySummary
replayNetworkAnalytical(const std::vector<TransferRequest> &requests,
                        const network::Route &route, double links)
{
    const network::TransferModel model(route);
    return replaySerial(requests, [&](double bytes) {
        const auto r = model.transfer(qty::Bytes{bytes}, links);
        return std::pair<double, double>{r.time.value(), r.energy.value()};
    });
}

ReplaySummary
replayDhlSimulated(const std::vector<TransferRequest> &requests,
                   const core::DhlConfig &cfg, bool include_reads,
                   std::uint64_t seed)
{
    validateRequests(requests, "DES replay");
    const std::vector<TransferRequest> &sorted = requests;

    sim::Simulator sim;
    core::DhlController controller(sim, cfg, "dhl", seed);

    // Pre-allocate each request's carts in the library.
    std::vector<std::vector<core::CartId>> request_carts;
    const double capacity = cfg.cartCapacity().value();
    for (const auto &req : sorted) {
        std::vector<core::CartId> carts;
        double remaining = req.bytes;
        while (remaining > 0.0) {
            const double load = std::min(capacity, remaining);
            carts.push_back(controller.addCart(load).id());
            remaining -= load;
        }
        request_carts.push_back(std::move(carts));
    }

    auto latency_sum = std::make_shared<double>(0.0);
    auto max_latency = std::make_shared<double>(0.0);
    auto last_finish = std::make_shared<double>(0.0);
    auto completed = std::make_shared<std::uint64_t>(0);

    // Each cart cycles open -> [read] -> close independently; the
    // request completes when its last cart is stored again.  This
    // works with any station count (carts queue for stations), unlike
    // a stage-everything-at-once policy.
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const double at = sorted[i].at;
        const auto &carts = request_carts[i];
        auto pending = std::make_shared<std::size_t>(carts.size());
        for (core::CartId id : carts) {
            sim.scheduleAt(at, [&, id, at, pending] {
                auto closed = [&, at, pending](core::Cart &) {
                    if (--*pending > 0)
                        return;
                    const double latency = sim.now() - at;
                    *latency_sum += latency;
                    *max_latency = std::max(*max_latency, latency);
                    *last_finish = sim.now();
                    ++*completed;
                };
                controller.open(
                    id, [&, id, closed](core::Cart &cart,
                                        core::DockingStation &) {
                        if (include_reads && cart.storedBytes() > 0.0) {
                            controller.read(
                                id, cart.storedBytes(),
                                [&, id, closed](double) {
                                    controller.close(id, closed);
                                });
                        } else {
                            controller.close(id, closed);
                        }
                    });
            });
        }
    }
    sim.run();
    panic_if(*completed != sorted.size(),
             "replay finished with requests unaccounted for");

    ReplaySummary s{};
    s.requests = *completed;
    s.bytes = totalBytes(sorted);
    // Tube occupancy: launches times the one-way travel time.
    s.busy_time = static_cast<double>(controller.launches()) *
                  controller.track().travelTime();
    s.makespan = *last_finish - sorted.front().at;
    s.energy = controller.totalEnergy();
    s.mean_latency = *latency_sum / static_cast<double>(s.requests);
    s.max_latency = *max_latency;
    return s;
}

} // namespace workloads
} // namespace dhl
