/**
 * @file
 * Implementation of the open-loop arrival processes.
 */

#include "workloads/arrival.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dhl {
namespace workloads {

//===========================================================================
// ReplayArrivalProcess
//===========================================================================

ReplayArrivalProcess::ReplayArrivalProcess(
    std::vector<TransferRequest> requests)
    : requests_(std::move(requests))
{
    validateRequests(requests_, "arrival process");
}

std::vector<ArrivalEvent>
ReplayArrivalProcess::take(double until)
{
    fatal_if(until < cursor_, "arrival cursor cannot move backwards");
    std::vector<ArrivalEvent> out;
    while (next_ < requests_.size() && requests_[next_].at <= until) {
        const auto &r = requests_[next_++];
        out.push_back(ArrivalEvent{r.at, r.bytes, r.tag, 0, 0});
    }
    cursor_ = until;
    return out;
}

void
ReplayArrivalProcess::saveState(sim::SnapshotWriter &w) const
{
    sim::SnapshotScope<sim::SnapshotWriter> scope(w, "arrivals");
    w.putU64("next", next_);
    w.putDouble("cursor", cursor_);
}

void
ReplayArrivalProcess::restoreState(sim::SnapshotReader &r)
{
    sim::SnapshotScope<sim::SnapshotReader> scope(r, "arrivals");
    next_ = r.getU64("next");
    fatal_if(next_ > requests_.size(),
             "arrival restore: cursor beyond the request list (the "
             "checkpoint was taken against a different workload)");
    cursor_ = r.getDouble("cursor");
}

//===========================================================================
// StagedArrivalProcess
//===========================================================================

namespace {

double
maxRate(const StageSpec &s)
{
    return std::max(s.start_rate, s.end_rate);
}

} // namespace

StagedArrivalProcess::StagedArrivalProcess(std::vector<StageSpec> stages,
                                           std::uint64_t seed)
    : stages_(std::move(stages)), rng_(seed)
{
    fatal_if(stages_.empty(), "staged profile needs at least one stage");
    starts_.reserve(stages_.size() + 1);
    starts_.push_back(0.0);
    for (const auto &s : stages_) {
        fatal_if(!(s.duration > 0.0), "stage duration must be positive");
        fatal_if(s.start_rate < 0.0 || s.end_rate < 0.0,
                 "stage rates must be non-negative");
        fatal_if(s.mix.empty(), "stage mix must not be empty");
        for (const auto &c : s.mix) {
            fatal_if(!(c.weight > 0.0), "mix weights must be positive");
            fatal_if(!(c.median_bytes > 0.0),
                     "mix sizes must be positive");
            fatal_if(c.sigma < 0.0, "mix sigma must be non-negative");
        }
        starts_.push_back(starts_.back() + s.duration);
    }
    total_duration_ = starts_.back();
}

std::size_t
StagedArrivalProcess::stageAt(double t) const
{
    for (std::size_t k = 0; k + 1 < stages_.size(); ++k) {
        if (t < stageEnd(k))
            return k;
    }
    return stages_.size() - 1;
}

double
StagedArrivalProcess::rateAt(double t) const
{
    if (t < 0.0 || t >= total_duration_)
        return 0.0;
    const std::size_t k = stageAt(t);
    const auto &s = stages_[k];
    const double frac = (t - stageStart(k)) / s.duration;
    return s.start_rate + (s.end_rate - s.start_rate) * frac;
}

std::vector<ArrivalEvent>
StagedArrivalProcess::take(double until)
{
    fatal_if(until < cursor_, "arrival cursor cannot move backwards");
    std::vector<ArrivalEvent> out;
    while (stage_ < stages_.size() && cursor_ < until) {
        const auto &s = stages_[stage_];
        const double stage_end = stageEnd(stage_);
        const double rate_cap = maxRate(s);
        if (rate_cap <= 0.0) {
            // A silent stage: no candidates, no randomness consumed.
            cursor_ = std::min(until, stage_end);
            if (cursor_ >= stage_end)
                ++stage_;
            continue;
        }
        const double limit = std::min(until, stage_end);
        // Thinning against the stage's max rate.  Candidates past the
        // limit are discarded rather than remembered; redrawing the
        // gap on the next take() is distributionally identical
        // (memorylessness), and both the oracle and a restored run
        // call take() on the same epoch grid, so the realised stream
        // is identical too.
        const double t_cand = cursor_ + rng_.exponential(1.0 / rate_cap);
        if (t_cand > limit) {
            cursor_ = limit;
            if (cursor_ >= stage_end)
                ++stage_;
            continue;
        }
        cursor_ = t_cand;
        const double accept = rng_.uniform(0.0, 1.0);
        if (accept * rate_cap > rateAt(t_cand))
            continue;
        // Class selection by cumulative weight, then size.
        const RequestClass *cls = &s.mix.front();
        if (s.mix.size() > 1) {
            double total_w = 0.0;
            for (const auto &c : s.mix)
                total_w += c.weight;
            double pick = rng_.uniform(0.0, total_w);
            for (const auto &c : s.mix) {
                cls = &c;
                pick -= c.weight;
                if (pick <= 0.0)
                    break;
            }
        }
        const double bytes =
            cls->sigma > 0.0
                ? rng_.lognormal(std::log(cls->median_bytes), cls->sigma)
                : cls->median_bytes;
        out.push_back(ArrivalEvent{t_cand, bytes, cls->tag,
                                   static_cast<int>(stage_),
                                   cls->priority});
        ++emitted_;
    }
    if (cursor_ < until)
        cursor_ = until;
    return out;
}

void
StagedArrivalProcess::saveState(sim::SnapshotWriter &w) const
{
    sim::SnapshotScope<sim::SnapshotWriter> scope(w, "arrivals");
    w.putU64("stage", stage_);
    w.putDouble("cursor", cursor_);
    w.putU64("emitted", emitted_);
    w.putRng("rng", rng_);
}

void
StagedArrivalProcess::restoreState(sim::SnapshotReader &r)
{
    sim::SnapshotScope<sim::SnapshotReader> scope(r, "arrivals");
    stage_ = r.getU64("stage");
    fatal_if(stage_ > stages_.size(),
             "arrival restore: stage index beyond the profile (the "
             "checkpoint was taken against a different profile)");
    cursor_ = r.getDouble("cursor");
    emitted_ = r.getU64("emitted");
    r.getRng("rng", rng_);
}

//===========================================================================
// parseStageSpec
//===========================================================================

std::vector<StageSpec>
parseStageSpec(const std::string &spec, double median_bytes, double sigma)
{
    fatal_if(spec.empty(), "empty stage spec");
    std::vector<StageSpec> stages;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string item =
            spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;

        std::vector<std::string> fields;
        std::size_t fpos = 0;
        while (fpos <= item.size()) {
            const std::size_t colon = item.find(':', fpos);
            fields.push_back(item.substr(
                fpos, colon == std::string::npos ? std::string::npos
                                                 : colon - fpos));
            if (colon == std::string::npos)
                break;
            fpos = colon + 1;
        }
        if (fields.size() < 3 || fields.size() > 4)
            fatal("stage spec '" + item +
                  "' is not name:duration:rate[:end_rate]");
        StageSpec s;
        s.name = fields[0];
        fatal_if(s.name.empty(), "stage spec needs a non-empty name");
        try {
            s.duration = std::stod(fields[1]);
            s.start_rate = std::stod(fields[2]);
            s.end_rate = fields.size() == 4 ? std::stod(fields[3])
                                            : s.start_rate;
        } catch (const std::exception &) {
            fatal("stage spec '" + item + "' has a malformed number");
        }
        s.mix.push_back(RequestClass{"serve", 1.0, median_bytes, sigma, 0});
        stages.push_back(std::move(s));
    }
    return stages;
}

} // namespace workloads
} // namespace dhl
