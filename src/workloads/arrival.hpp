/**
 * @file
 * Composable open-loop arrival processes for the serving mode.
 *
 * The batch generators in workloads/generator.hpp turn (config,
 * duration, rng) into a complete time-sorted request list up front —
 * fine for replay studies, wrong for open-loop serving where load
 * changes over a run and the simulation consumes arrivals epoch by
 * epoch.  An ArrivalProcess is the incremental counterpart: it owns a
 * time cursor and hands out the arrivals in (cursor, until] on each
 * take() call, so a serving loop can interleave injection with DES
 * epochs and a checkpoint can capture exactly where the arrival stream
 * stood.
 *
 * Two concrete processes:
 *
 *  - ReplayArrivalProcess: serves a pre-built request list (any batch
 *    generator's output) incrementally — the bridge from the old API.
 *  - StagedArrivalProcess: a staged open-loop profile (ramp / hold /
 *    ramp ...), each stage a nonhomogeneous Poisson process with a
 *    linear rate ramp and a per-stage request-class mix.  Sampled by
 *    thinning against the stage's max rate; at stage edges and take()
 *    boundaries the candidate stream is discarded and redrawn, which
 *    is distributionally exact because exponential gaps are memoryless.
 *    Snapshot state is therefore just (stage, cursor, rng) — no
 *    lookahead to serialise.  Both the checkpointed run and the
 *    uninterrupted oracle consume the stream on the same epoch grid,
 *    so restored runs replay arrivals byte-for-byte.
 */

#ifndef DHL_WORKLOADS_ARRIVAL_HPP
#define DHL_WORKLOADS_ARRIVAL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "sim/snapshot.hpp"
#include "workloads/generator.hpp"

namespace dhl {
namespace workloads {

/** One open-loop arrival handed to the serving layer. */
struct ArrivalEvent
{
    double at;       ///< Intended (open-loop) arrival time, s.
    double bytes;    ///< Requested transfer size.
    std::string tag; ///< Request-class tag (e.g. "bulk", "backup").
    int stage;       ///< Index of the profile stage it arrived in.
    int priority;    ///< Class priority (higher = keep under degrade).
};

/** One request class inside a stage's traffic mix. */
struct RequestClass
{
    std::string tag;     ///< Label carried on every arrival.
    double weight;       ///< Relative share of the stage's arrivals (> 0).
    double median_bytes; ///< Median request size (> 0).
    double sigma;        ///< Log-normal shape; 0 = constant size.
    int priority = 0;    ///< Higher survives degraded-mode admission.
};

/** One stage of a staged load profile. */
struct StageSpec
{
    std::string name;               ///< Stage label for SLO tables.
    double duration;                ///< Stage length, s (> 0).
    double start_rate;              ///< Arrival rate at stage start, req/s.
    double end_rate;                ///< Arrival rate at stage end, req/s.
    std::vector<RequestClass> mix;  ///< Traffic mix (non-empty).
};

/**
 * Incremental arrival stream with a time cursor.
 *
 * take(until) returns the arrivals with cursor < at <= until in time
 * order and advances the cursor to @p until; calls must be monotone.
 * Snapshot via sim/snapshot.hpp captures the cursor and any sampling
 * state so a restored process continues the identical stream *provided
 * take() boundaries match the original run* (the serving loop's epoch
 * grid guarantees this).
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Arrivals in (cursor, until], advancing the cursor. */
    virtual std::vector<ArrivalEvent> take(double until) = 0;

    /** Current cursor position, s. */
    virtual double cursor() const = 0;

    /** True once no future arrival can ever be produced. */
    virtual bool exhausted() const = 0;

    virtual void saveState(sim::SnapshotWriter &w) const = 0;
    virtual void restoreState(sim::SnapshotReader &r) = 0;
};

/**
 * Serves a pre-built, time-sorted request list incrementally: the
 * bridge from the batch generators (and trace files) to the open-loop
 * serving API.  Requests are validated (non-empty, finite, sorted) at
 * construction; every arrival reports stage 0 and priority 0.
 */
class ReplayArrivalProcess : public ArrivalProcess
{
  public:
    explicit ReplayArrivalProcess(std::vector<TransferRequest> requests);

    std::vector<ArrivalEvent> take(double until) override;
    double cursor() const override { return cursor_; }
    bool exhausted() const override { return next_ >= requests_.size(); }

    void saveState(sim::SnapshotWriter &w) const override;
    void restoreState(sim::SnapshotReader &r) override;

  private:
    // dhl-analyze: transient(requests_): the replayed trace itself —
    // constructor input, never mutated; only the cursor is state
    std::vector<TransferRequest> requests_;
    std::size_t next_ = 0;
    double cursor_ = 0.0;
};

/**
 * Staged nonhomogeneous Poisson arrivals: the open-loop load profile.
 *
 * Stage k spans [sum(d_0..d_{k-1}), sum(d_0..d_k)) with the arrival
 * rate ramping linearly from start_rate to end_rate across it.
 * Sampling is by thinning: candidate gaps are exponential at the
 * stage's max rate and each candidate at time t is accepted with
 * probability rate(t) / max_rate.  Per accepted arrival the draw order
 * is fixed — acceptance uniform, class-mix uniform, then (iff the
 * class has sigma > 0) one log-normal size — so the stream is a pure
 * function of (stages, seed, epoch grid).  Stages with zero max rate
 * are skipped without consuming randomness.  After the final stage the
 * process is exhausted.
 */
class StagedArrivalProcess : public ArrivalProcess
{
  public:
    StagedArrivalProcess(std::vector<StageSpec> stages, std::uint64_t seed);

    std::vector<ArrivalEvent> take(double until) override;
    double cursor() const override { return cursor_; }
    bool exhausted() const override { return stage_ >= stages_.size(); }

    void saveState(sim::SnapshotWriter &w) const override;
    void restoreState(sim::SnapshotReader &r) override;

    std::size_t stageCount() const { return stages_.size(); }
    const StageSpec &stage(std::size_t i) const { return stages_.at(i); }

    /** End of the whole profile, s. */
    double totalDuration() const { return total_duration_; }

    /** Stage index covering time @p t (last stage for t at/past end). */
    std::size_t stageAt(double t) const;

    /** Instantaneous arrival rate at time @p t, req/s. */
    double rateAt(double t) const;

    /** Arrivals emitted so far. */
    std::uint64_t emitted() const { return emitted_; }

  private:
    double stageStart(std::size_t k) const { return starts_[k]; }
    double stageEnd(std::size_t k) const { return starts_[k + 1]; }

    // dhl-analyze: transient(stages_, starts_, total_duration_): the
    // load profile — constructor input and values derived from it,
    // never mutated after construction
    std::vector<StageSpec> stages_;
    std::vector<double> starts_; ///< Cumulative stage starts + total end.
    double total_duration_;
    Rng rng_;
    std::size_t stage_ = 0;
    double cursor_ = 0.0;
    std::uint64_t emitted_ = 0;
};

/**
 * Parse a staged profile from its CLI form:
 * "name:duration:start_rate[:end_rate],..." — end_rate defaults to
 * start_rate (a hold stage).  Every stage gets the same single-class
 * mix built from @p median_bytes / @p sigma with tag "serve".
 * fatal()s on malformed specs.
 */
std::vector<StageSpec> parseStageSpec(const std::string &spec,
                                      double median_bytes, double sigma);

} // namespace workloads
} // namespace dhl

#endif // DHL_WORKLOADS_ARRIVAL_HPP
