/**
 * @file
 * Replay helpers: push a generated request stream through (a) the
 * closed-form DHL model, (b) the closed-form optical model, and (c)
 * the event-driven DHL, producing comparable aggregate summaries.
 *
 * The analytical replays process requests back-to-back (a dedicated
 * resource); the DES replay honours queueing, docking-station limits
 * and track admission, so the difference between (a) and (c) is the
 * contention the closed form cannot see.
 *
 * All replays validate their input up front (workloads::
 * validateRequests): an empty list, a non-finite/negative timestamp,
 * a non-positive size, or out-of-order arrivals fatal() with the
 * offending index instead of being silently repaired.
 */

#ifndef DHL_WORKLOADS_REPLAY_HPP
#define DHL_WORKLOADS_REPLAY_HPP

#include <cstdint>

#include "dhl/analytical.hpp"
#include "dhl/simulation.hpp"
#include "network/transfer.hpp"
#include "workloads/generator.hpp"

namespace dhl {
namespace workloads {

/** Aggregate outcome of a replay. */
struct ReplaySummary
{
    std::uint64_t requests;   ///< Requests served.
    double bytes;             ///< Total bytes moved.
    double busy_time;         ///< Time the resource spent serving, s.
    double makespan;          ///< Last completion minus first arrival, s.
    double energy;            ///< Total transfer energy, J.
    double mean_latency;      ///< Mean request completion latency, s.
    double max_latency;       ///< Worst request latency, s.
};

/**
 * Closed-form DHL replay: each request becomes a bulk transfer on a
 * dedicated DHL, served in arrival order, one at a time.
 */
ReplaySummary replayDhlAnalytical(
    const std::vector<TransferRequest> &requests,
    const core::DhlConfig &cfg, const core::BulkOptions &opts = {});

/**
 * Closed-form optical replay: each request is a single-link transfer
 * on the given route, served in arrival order, one at a time.
 */
ReplaySummary replayNetworkAnalytical(
    const std::vector<TransferRequest> &requests,
    const network::Route &route, double links = 1.0);

/**
 * Event-driven DHL replay: requests arrive at their timestamps; each
 * stages its carts (created on registration), reads them, and returns
 * them, all through the controller's queueing.
 */
ReplaySummary replayDhlSimulated(
    const std::vector<TransferRequest> &requests,
    const core::DhlConfig &cfg, bool include_reads = false,
    std::uint64_t seed = 1);

} // namespace workloads
} // namespace dhl

#endif // DHL_WORKLOADS_REPLAY_HPP
