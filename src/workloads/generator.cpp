/**
 * @file
 * Implementation of the workload generators.
 */

#include "workloads/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/logging.hpp"

namespace dhl {
namespace workloads {

void
sortByArrival(std::vector<TransferRequest> &requests)
{
    std::stable_sort(requests.begin(), requests.end(),
                     [](const TransferRequest &a, const TransferRequest &b) {
                         return a.at < b.at;
                     });
}

void
validateRequests(const std::vector<TransferRequest> &requests,
                 const char *what)
{
    const std::string who(what);
    fatal_if(requests.empty(), who + ": empty request list");
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const auto &r = requests[i];
        const std::string at_req = ": request " + std::to_string(i);
        if (!std::isfinite(r.at) || r.at < 0.0)
            fatal(who + at_req + " has invalid arrival time " +
                  std::to_string(r.at));
        if (!std::isfinite(r.bytes) || r.bytes <= 0.0)
            fatal(who + at_req + " has invalid size " +
                  std::to_string(r.bytes));
        if (i > 0 && r.at < requests[i - 1].at)
            fatal(who + at_req + " arrives at " + std::to_string(r.at) +
                  ", before request " + std::to_string(i - 1) + " at " +
                  std::to_string(requests[i - 1].at) +
                  " (timestamps must be sorted)");
    }
}

double
totalBytes(const std::vector<TransferRequest> &requests)
{
    double total = 0.0;
    for (const auto &r : requests)
        total += r.bytes;
    return total;
}

//===========================================================================
// PoissonBulkGenerator
//===========================================================================

PoissonBulkGenerator::PoissonBulkGenerator(double mean_interarrival,
                                           double median_bytes,
                                           double sigma)
    : mean_interarrival_(mean_interarrival),
      median_bytes_(median_bytes),
      sigma_(sigma)
{
    fatal_if(!(mean_interarrival > 0.0),
             "mean interarrival must be positive");
    fatal_if(!(median_bytes > 0.0), "median size must be positive");
    fatal_if(sigma < 0.0, "sigma must be non-negative");
}

std::vector<TransferRequest>
PoissonBulkGenerator::generate(double duration, Rng &rng) const
{
    fatal_if(!(duration > 0.0), "duration must be positive");
    std::vector<TransferRequest> out;
    double t = rng.exponential(mean_interarrival_);
    while (t < duration) {
        const double bytes =
            sigma_ > 0.0
                ? rng.lognormal(std::log(median_bytes_), sigma_)
                : median_bytes_;
        out.push_back(TransferRequest{t, bytes, "bulk"});
        t += rng.exponential(mean_interarrival_);
    }
    return out;
}

//===========================================================================
// PeriodicBackupGenerator
//===========================================================================

PeriodicBackupGenerator::PeriodicBackupGenerator(double period,
                                                 double bytes,
                                                 double jitter_frac)
    : period_(period), bytes_(bytes), jitter_frac_(jitter_frac)
{
    fatal_if(!(period > 0.0), "period must be positive");
    fatal_if(!(bytes > 0.0), "backup size must be positive");
    fatal_if(jitter_frac < 0.0 || jitter_frac >= 1.0,
             "jitter fraction must be in [0, 1)");
}

std::vector<TransferRequest>
PeriodicBackupGenerator::generate(double duration, Rng &rng) const
{
    fatal_if(!(duration > 0.0), "duration must be positive");
    std::vector<TransferRequest> out;
    // Integer induction with multiplication: a floating-point counter
    // (base += period_) accumulates rounding error across iterations.
    for (std::uint64_t i = 0;; ++i) {
        const double base = static_cast<double>(i) * period_;
        if (base >= duration)
            break;
        double at = base;
        if (jitter_frac_ > 0.0)
            at += rng.uniform(0.0, jitter_frac_ * period_);
        if (at < duration)
            out.push_back(TransferRequest{at, bytes_, "backup"});
    }
    sortByArrival(out);
    return out;
}

//===========================================================================
// BurstSourceGenerator
//===========================================================================

BurstSourceGenerator::BurstSourceGenerator(double rate,
                                           double burst_duration,
                                           double period)
    : rate_(rate), burst_duration_(burst_duration), period_(period)
{
    fatal_if(!(rate > 0.0), "burst rate must be positive");
    fatal_if(!(burst_duration > 0.0),
             "burst duration must be positive");
    fatal_if(period < burst_duration,
             "period must cover the burst duration");
}

std::vector<TransferRequest>
BurstSourceGenerator::generate(double duration, Rng &rng) const
{
    (void)rng; // deterministic source
    fatal_if(!(duration > 0.0), "duration must be positive");
    std::vector<TransferRequest> out;
    for (std::uint64_t i = 0;; ++i) {
        const double t = static_cast<double>(i) * period_;
        if (t >= duration)
            break;
        // The burst's data is available once the fill completes.
        const double ready = t + burst_duration_;
        if (ready < duration)
            out.push_back(TransferRequest{ready, burstBytes(), "burst"});
    }
    return out;
}

//===========================================================================
// ZipfDatasetGenerator
//===========================================================================

ZipfDatasetGenerator::ZipfDatasetGenerator(std::vector<Dataset> datasets,
                                           double mean_interarrival,
                                           double zipf_exponent)
    : datasets_(std::move(datasets)),
      mean_interarrival_(mean_interarrival),
      zipf_(datasets_.empty() ? 1 : datasets_.size(), zipf_exponent)
{
    fatal_if(datasets_.empty(), "need at least one dataset");
    fatal_if(!(mean_interarrival > 0.0),
             "mean interarrival must be positive");
    for (const auto &d : datasets_)
        fatal_if(!(d.bytes > 0.0), "dataset sizes must be positive");
}

std::vector<TransferRequest>
ZipfDatasetGenerator::generate(double duration, Rng &rng) const
{
    fatal_if(!(duration > 0.0), "duration must be positive");
    std::vector<TransferRequest> out;
    double t = rng.exponential(mean_interarrival_);
    while (t < duration) {
        const auto rank = zipf_.sample(rng);
        const auto &d = datasets_[rank];
        out.push_back(TransferRequest{t, d.bytes, d.name});
        t += rng.exponential(mean_interarrival_);
    }
    return out;
}

} // namespace workloads
} // namespace dhl
