/**
 * @file
 * Synthetic bulk-transfer workload generators for the paper's three
 * application domains (§II-D):
 *
 *  - PoissonBulkGenerator:   ad-hoc large transfers with exponential
 *                            inter-arrivals and log-normal sizes
 *                            (generic "move this dataset" traffic).
 *  - PeriodicBackupGenerator: fixed-size backups on a fixed period
 *                            with optional jitter (§II-D2).
 *  - BurstSourceGenerator:   a detector-style source producing
 *                            rate x burst_duration bytes every period
 *                            (§II-D1, LHC fills).
 *  - ZipfDatasetGenerator:   repeated accesses over a fixed dataset
 *                            population with Zipf popularity (§II-D3:
 *                            the same training sets reused for many
 *                            models).
 *
 * Generators are pure: they turn (config, duration, rng) into a
 * time-sorted request list that replay helpers or the DES can consume.
 */

#ifndef DHL_WORKLOADS_GENERATOR_HPP
#define DHL_WORKLOADS_GENERATOR_HPP

#include <string>
#include <vector>

#include "common/random.hpp"

namespace dhl {
namespace workloads {

/** One bulk-transfer request. */
struct TransferRequest
{
    double at;        ///< Arrival time, s.
    double bytes;     ///< Transfer size.
    std::string tag;  ///< Origin label ("backup", "burst", dataset...).
};

/** Sort requests by arrival time (stable). */
void sortByArrival(std::vector<TransferRequest> &requests);

/**
 * Validate a request list before replay or open-loop injection:
 * non-empty, finite non-negative arrival times, finite positive sizes,
 * and sorted by arrival.  fatal()s naming @p what and the offending
 * index — a trace with out-of-order timestamps is a malformed input to
 * diagnose at the source, not something to silently re-sort.
 */
void validateRequests(const std::vector<TransferRequest> &requests,
                      const char *what);

/** Sum of request bytes. */
double totalBytes(const std::vector<TransferRequest> &requests);

/** Poisson arrivals, log-normal sizes. */
class PoissonBulkGenerator
{
  public:
    /**
     * @param mean_interarrival Mean gap between requests, s (> 0).
     * @param median_bytes      Median transfer size, bytes (> 0).
     * @param sigma             Log-normal shape (0 = constant size).
     */
    PoissonBulkGenerator(double mean_interarrival, double median_bytes,
                         double sigma = 1.0);

    /** Generate all requests with arrival < duration. */
    std::vector<TransferRequest> generate(double duration, Rng &rng) const;

  private:
    double mean_interarrival_;
    double median_bytes_;
    double sigma_;
};

/** Fixed-size backups on a fixed period. */
class PeriodicBackupGenerator
{
  public:
    /**
     * @param period        Gap between backups, s (> 0).
     * @param bytes         Backup size (> 0).
     * @param jitter_frac   Uniform jitter as a fraction of the period
     *                      ([0, 1)).
     */
    PeriodicBackupGenerator(double period, double bytes,
                            double jitter_frac = 0.0);

    std::vector<TransferRequest> generate(double duration, Rng &rng) const;

  private:
    double period_;
    double bytes_;
    double jitter_frac_;
};

/** Detector bursts: rate x burst_duration bytes, every period. */
class BurstSourceGenerator
{
  public:
    /**
     * @param rate           Burst production rate, bytes/s (> 0).
     * @param burst_duration Length of each burst, s (> 0).
     * @param period         Gap between burst starts, s (>= burst).
     */
    BurstSourceGenerator(double rate, double burst_duration,
                         double period);

    std::vector<TransferRequest> generate(double duration, Rng &rng) const;

    /** Bytes per burst. */
    double burstBytes() const { return rate_ * burst_duration_; }

  private:
    double rate_;
    double burst_duration_;
    double period_;
};

/** Zipf-popular accesses over a fixed dataset population. */
class ZipfDatasetGenerator
{
  public:
    /** A member of the dataset population. */
    struct Dataset
    {
        std::string name;
        double bytes;
    };

    /**
     * @param datasets          Population, most-popular-rank order.
     * @param mean_interarrival Mean gap between accesses, s (> 0).
     * @param zipf_exponent     Popularity skew (>= 0).
     */
    ZipfDatasetGenerator(std::vector<Dataset> datasets,
                         double mean_interarrival,
                         double zipf_exponent = 1.0);

    std::vector<TransferRequest> generate(double duration, Rng &rng) const;

    const std::vector<Dataset> &datasets() const { return datasets_; }

  private:
    std::vector<Dataset> datasets_;
    double mean_interarrival_;
    ZipfTable zipf_;
};

} // namespace workloads
} // namespace dhl

#endif // DHL_WORKLOADS_GENERATOR_HPP
