/**
 * @file
 * Implementation of the rough-vacuum tube model.
 */

#include "physics/vacuum.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace dhl {
namespace physics {

namespace {

void
validate(const VacuumConfig &cfg)
{
    fatal_if(!(cfg.tube_diameter > 0.0), "tube diameter must be positive");
    fatal_if(!(cfg.pressure > 0.0), "operating pressure must be positive");
    fatal_if(cfg.pressure >= units::kAtmospherePa,
             "operating pressure must be below atmospheric");
    fatal_if(!(cfg.pump_efficiency > 0.0) || cfg.pump_efficiency > 1.0,
             "pump efficiency must be in (0, 1]");
    fatal_if(cfg.leak_volumes_per_day < 0.0,
             "leak rate must be non-negative");
}

/** Sea-level air density, kg/m^3. */
constexpr double kSeaLevelAirDensity = 1.225;

} // namespace

qty::CubicMetres
tubeVolume(qty::Metres length, const VacuumConfig &cfg)
{
    validate(cfg);
    fatal_if(length.value() < 0.0, "tube length must be non-negative");
    const qty::Metres r{cfg.tube_diameter / 2.0};
    return M_PI * r * r * length;
}

qty::Joules
pumpDownEnergy(qty::Metres length, const VacuumConfig &cfg)
{
    validate(cfg);
    const qty::CubicMetres v = tubeVolume(length, cfg);
    const qty::Joules work = qty::kAtmosphere * v *
                             std::log(units::kAtmospherePa / cfg.pressure);
    return work / cfg.pump_efficiency;
}

qty::Watts
maintenancePower(qty::Metres length, const VacuumConfig &cfg)
{
    validate(cfg);
    // Re-pumping leak_volumes_per_day tube volumes of air (referenced to
    // atmospheric pressure) per day costs that fraction of the pump-down
    // energy per day.
    const qty::Joules energy_per_day =
        cfg.leak_volumes_per_day * pumpDownEnergy(length, cfg);
    return energy_per_day / qty::days(1.0);
}

qty::Watts
aeroDragPower(qty::MetresPerSecond speed, qty::SquareMetres frontal_area,
              double drag_coeff, const VacuumConfig &cfg)
{
    validate(cfg);
    fatal_if(speed.value() < 0.0, "speed must be non-negative");
    fatal_if(!(frontal_area.value() > 0.0), "frontal area must be positive");
    fatal_if(!(drag_coeff > 0.0), "drag coefficient must be positive");

    const qty::KilogramsPerCubicMetre rho{
        kSeaLevelAirDensity * cfg.pressure / units::kAtmospherePa};
    return 0.5 * rho * drag_coeff * frontal_area * speed * speed * speed;
}

} // namespace physics
} // namespace dhl
