/**
 * @file
 * Implementation of the velocity profiles.
 */

#include "physics/profile.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dhl {
namespace physics {

double
limLength(double v_max, double accel)
{
    fatal_if(!(v_max > 0.0), "v_max must be positive");
    fatal_if(!(accel > 0.0), "accel must be positive");
    return v_max * v_max / (2.0 * accel);
}

double
peakSpeed(double length, double v_max, double accel)
{
    fatal_if(!(length > 0.0), "track length must be positive");
    fatal_if(!(v_max > 0.0), "v_max must be positive");
    fatal_if(!(accel > 0.0), "accel must be positive");
    // Need one LIM length to accelerate and one to brake.
    const double min_length = v_max * v_max / accel;
    if (length >= min_length)
        return v_max;
    return std::sqrt(length * accel);
}

double
travelTime(double length, double v_max, double accel, KinematicsMode mode)
{
    const double v_peak = peakSpeed(length, v_max, accel);
    if (v_peak < v_max) {
        // Triangular profile: never reaches cruise speed.  Both modes
        // agree here (the paper's approximation only concerns the cruise
        // overhead).
        return 2.0 * std::sqrt(length / accel);
    }
    switch (mode) {
      case KinematicsMode::PaperApprox:
        return length / v_max + v_max / (2.0 * accel);
      case KinematicsMode::Trapezoid:
        return length / v_max + v_max / accel;
    }
    panic("unreachable kinematics mode");
}

VelocityProfile::VelocityProfile(double length, double v_max, double accel)
    : length_(length), accel_(accel)
{
    v_peak_ = physics::peakSpeed(length, v_max, accel);
    t_accel_ = v_peak_ / accel;
    const double accel_dist = v_peak_ * v_peak_ / (2.0 * accel);
    const double cruise_dist = length - 2.0 * accel_dist;
    t_cruise_ = cruise_dist > 0.0 ? cruise_dist / v_peak_ : 0.0;
    t_total_ = 2.0 * t_accel_ + t_cruise_;
}

double
VelocityProfile::velocityAt(double t) const
{
    if (t <= 0.0)
        return 0.0;
    if (t < t_accel_)
        return accel_ * t;
    if (t < t_accel_ + t_cruise_)
        return v_peak_;
    if (t < t_total_)
        return v_peak_ - accel_ * (t - t_accel_ - t_cruise_);
    return 0.0;
}

double
VelocityProfile::positionAt(double t) const
{
    if (t <= 0.0)
        return 0.0;
    if (t >= t_total_)
        return length_;

    const double accel_dist = v_peak_ * v_peak_ / (2.0 * accel_);
    if (t < t_accel_)
        return 0.5 * accel_ * t * t;
    if (t < t_accel_ + t_cruise_)
        return accel_dist + v_peak_ * (t - t_accel_);

    const double tb = t - t_accel_ - t_cruise_;
    const double brake_start = accel_dist + v_peak_ * t_cruise_;
    return brake_start + v_peak_ * tb - 0.5 * accel_ * tb * tb;
}

} // namespace physics
} // namespace dhl
