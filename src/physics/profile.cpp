/**
 * @file
 * Implementation of the velocity profiles.
 */

#include "physics/profile.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dhl {
namespace physics {

qty::Metres
limLength(qty::MetresPerSecond v_max, qty::MetresPerSecondSquared accel)
{
    fatal_if(!(v_max.value() > 0.0), "v_max must be positive");
    fatal_if(!(accel.value() > 0.0), "accel must be positive");
    return v_max * v_max / (2.0 * accel);
}

qty::MetresPerSecond
peakSpeed(qty::Metres length, qty::MetresPerSecond v_max,
          qty::MetresPerSecondSquared accel)
{
    fatal_if(!(length.value() > 0.0), "track length must be positive");
    fatal_if(!(v_max.value() > 0.0), "v_max must be positive");
    fatal_if(!(accel.value() > 0.0), "accel must be positive");
    // Need one LIM length to accelerate and one to brake.
    const qty::Metres min_length = v_max * v_max / accel;
    if (length >= min_length)
        return v_max;
    return qty::sqrt(length * accel);
}

qty::Seconds
travelTime(qty::Metres length, qty::MetresPerSecond v_max,
           qty::MetresPerSecondSquared accel, KinematicsMode mode)
{
    const qty::MetresPerSecond v_peak = peakSpeed(length, v_max, accel);
    if (v_peak < v_max) {
        // Triangular profile: never reaches cruise speed.  Both modes
        // agree here (the paper's approximation only concerns the cruise
        // overhead).
        return 2.0 * qty::sqrt(length / accel);
    }
    switch (mode) {
      case KinematicsMode::PaperApprox:
        return length / v_max + v_max / (2.0 * accel);
      case KinematicsMode::Trapezoid:
        return length / v_max + v_max / accel;
    }
    panic("unreachable kinematics mode");
}

VelocityProfile::VelocityProfile(qty::Metres length,
                                 qty::MetresPerSecond v_max,
                                 qty::MetresPerSecondSquared accel)
    : length_(length.value()), accel_(accel.value())
{
    v_peak_ = physics::peakSpeed(length, v_max, accel).value();
    t_accel_ = v_peak_ / accel_;
    const double accel_dist = v_peak_ * v_peak_ / (2.0 * accel_);
    const double cruise_dist = length_ - 2.0 * accel_dist;
    t_cruise_ = cruise_dist > 0.0 ? cruise_dist / v_peak_ : 0.0;
    t_total_ = 2.0 * t_accel_ + t_cruise_;
}

qty::MetresPerSecond
VelocityProfile::velocityAt(qty::Seconds time) const
{
    const double t = time.value();
    double v = 0.0;
    if (t <= 0.0 || t >= t_total_)
        v = 0.0;
    else if (t < t_accel_)
        v = accel_ * t;
    else if (t < t_accel_ + t_cruise_)
        v = v_peak_;
    else
        v = v_peak_ - accel_ * (t - t_accel_ - t_cruise_);
    return qty::MetresPerSecond{v};
}

qty::Metres
VelocityProfile::positionAt(qty::Seconds time) const
{
    const double t = time.value();
    if (t <= 0.0)
        return qty::Metres{0.0};
    if (t >= t_total_)
        return qty::Metres{length_};

    const double accel_dist = v_peak_ * v_peak_ / (2.0 * accel_);
    if (t < t_accel_)
        return qty::Metres{0.5 * accel_ * t * t};
    if (t < t_accel_ + t_cruise_)
        return qty::Metres{accel_dist + v_peak_ * (t - t_accel_)};

    const double tb = t - t_accel_ - t_cruise_;
    const double brake_start = accel_dist + v_peak_ * t_cruise_;
    return qty::Metres{brake_start + v_peak_ * tb - 0.5 * accel_ * tb * tb};
}

} // namespace physics
} // namespace dhl
