/**
 * @file
 * Implementation of the maglev mass and drag models.
 */

#include "physics/maglev.hpp"

#include "common/logging.hpp"
#include "common/units.hpp"

namespace dhl {
namespace physics {

CartMassBreakdown
cartMass(qty::Kilograms payload_mass, const CartMassConfig &cfg)
{
    fatal_if(payload_mass.value() < 0.0,
             "payload mass must be non-negative");
    fatal_if(cfg.frame_mass < 0.0, "frame mass must be non-negative");
    fatal_if(cfg.magnet_fraction < 0.0 || cfg.fin_fraction < 0.0,
             "mass fractions must be non-negative");
    const double structural = cfg.magnet_fraction + cfg.fin_fraction;
    fatal_if(structural >= 1.0,
             "magnet + fin fractions must leave room for the payload");

    CartMassBreakdown b{};
    b.payload_mass = payload_mass;
    b.frame_mass = qty::Kilograms{cfg.frame_mass};
    b.total_mass = (payload_mass + b.frame_mass) / (1.0 - structural);
    b.magnet_mass = b.total_mass * cfg.magnet_fraction;
    b.fin_mass = b.total_mass * cfg.fin_fraction;
    return b;
}

qty::Joules
dragLoss(qty::Kilograms cart_mass, qty::Metres distance,
         const LevitationConfig &cfg)
{
    fatal_if(cart_mass.value() < 0.0, "cart mass must be non-negative");
    fatal_if(distance.value() < 0.0, "distance must be non-negative");
    fatal_if(!(cfg.lift_to_drag > 0.0), "lift-to-drag ratio must be positive");
    fatal_if(cfg.stabiliser_accel < 0.0,
             "stabiliser acceleration must be non-negative");

    const qty::MetresPerSecondSquared specific_drag{
        units::kGravity + 2.0 * cfg.stabiliser_accel};
    return specific_drag * cart_mass * distance / cfg.lift_to_drag;
}

double
liftToDragAtSpeed(qty::MetresPerSecond speed, double asymptote,
                  qty::MetresPerSecond half_speed)
{
    fatal_if(speed.value() < 0.0, "speed must be non-negative");
    fatal_if(!(asymptote > 0.0), "asymptote must be positive");
    fatal_if(!(half_speed.value() > 0.0), "half speed must be positive");
    return asymptote * speed / (speed + half_speed);
}

double
requiredMagnetFraction(qty::MetresPerSecondSquared specific_lift)
{
    fatal_if(!(specific_lift.value() > 0.0),
             "specific lift must be positive");
    const double f = qty::kGravity / specific_lift;
    fatal_if(f > 1.0,
             "magnets cannot lift the cart: required fraction exceeds 1");
    return f;
}

} // namespace physics
} // namespace dhl
