/**
 * @file
 * Implementation of the LIM energy/power model.
 */

#include "physics/lim.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace physics {

void
validate(const LimConfig &cfg)
{
    fatal_if(!(cfg.efficiency > 0.0) || cfg.efficiency > 1.0,
             "LIM efficiency must be in (0, 1]");
    fatal_if(!(cfg.accel > 0.0), "LIM acceleration must be positive");
    fatal_if(cfg.regen_fraction < 0.0 || cfg.regen_fraction > 1.0,
             "regenerative fraction must be in [0, 1]");
    fatal_if(cfg.braking == BrakingMode::Regenerative &&
                 cfg.regen_fraction == 0.0,
             "Regenerative braking selected but regen_fraction is 0; "
             "either set a fraction (0.16-0.70) or use ActiveLim");
}

namespace {

qty::Joules
kineticEnergy(qty::Kilograms cart_mass, qty::MetresPerSecond v)
{
    fatal_if(cart_mass.value() < 0.0, "cart mass must be non-negative");
    fatal_if(v.value() < 0.0, "speed must be non-negative");
    return 0.5 * cart_mass * v * v;
}

} // namespace

qty::Joules
launchEnergy(qty::Kilograms cart_mass, qty::MetresPerSecond v,
             const LimConfig &cfg)
{
    validate(cfg);
    return kineticEnergy(cart_mass, v) / cfg.efficiency;
}

qty::Joules
brakeEnergy(qty::Kilograms cart_mass, qty::MetresPerSecond v,
            const LimConfig &cfg)
{
    validate(cfg);
    const qty::Joules active = kineticEnergy(cart_mass, v) / cfg.efficiency;
    switch (cfg.braking) {
      case BrakingMode::ActiveLim:
        return active;
      case BrakingMode::Regenerative: {
        // The LIM still spends the active braking energy but recovers a
        // fraction of the cart's kinetic energy back to the supply.
        const qty::Joules recovered =
            cfg.regen_fraction * kineticEnergy(cart_mass, v);
        return qty::max(qty::Joules{0.0}, active - recovered);
      }
      case BrakingMode::EddyCurrent:
        return qty::Joules{0.0};
    }
    panic("unreachable braking mode");
}

qty::Joules
shotEnergy(qty::Kilograms cart_mass, qty::MetresPerSecond v,
           const LimConfig &cfg)
{
    return launchEnergy(cart_mass, v, cfg) + brakeEnergy(cart_mass, v, cfg);
}

qty::Watts
peakPower(qty::Kilograms cart_mass, qty::MetresPerSecond v_max,
          const LimConfig &cfg)
{
    validate(cfg);
    fatal_if(cart_mass.value() < 0.0, "cart mass must be non-negative");
    fatal_if(v_max.value() < 0.0, "speed must be non-negative");
    return cart_mass * qty::MetresPerSecondSquared{cfg.accel} * v_max /
           cfg.efficiency;
}

qty::Watts
averageAccelPower(qty::Kilograms cart_mass, qty::MetresPerSecond v_max,
                  const LimConfig &cfg)
{
    return 0.5 * peakPower(cart_mass, v_max, cfg);
}

} // namespace physics
} // namespace dhl
