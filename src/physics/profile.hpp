/**
 * @file
 * Velocity profiles for a cart traversing a DHL track.
 *
 * Two kinematics modes are provided:
 *
 *  - Trapezoid:    the physically exact accelerate / cruise / brake
 *                  profile at constant acceleration a.  Travel time is
 *                  L/v + v/a when the cart reaches v_max, and the
 *                  triangular 2*sqrt(L/a) otherwise.
 *  - PaperApprox:  the approximation used by the paper's Table VI, which
 *                  charges only *half* the acceleration overhead:
 *                  L/v + v/(2a).  All of the paper's reported trip times
 *                  (11 / 8.6 / 7.8 / 6.6 s ...) follow this formula; we
 *                  default to it so the tables regenerate exactly, and
 *                  expose the exact profile for sensitivity studies.
 *
 * VelocityProfile also yields position/velocity as functions of time for
 * the event-driven cart simulation and for property tests.
 */

#ifndef DHL_PHYSICS_PROFILE_HPP
#define DHL_PHYSICS_PROFILE_HPP

#include "common/quantity.hpp"

namespace dhl {
namespace physics {

/** Selects how travel time over a track is computed. */
enum class KinematicsMode
{
    PaperApprox, ///< L/v + v/(2a): reproduces the paper's Table VI times.
    Trapezoid,   ///< L/v + v/a: exact constant-acceleration profile.
};

/**
 * Length of track needed to accelerate from rest to @p v_max at constant
 * acceleration @p accel — the LIM length in the paper (5/20/45 m for
 * 100/200/300 m/s at 1000 m/s^2).
 */
qty::Metres limLength(qty::MetresPerSecond v_max,
                      qty::MetresPerSecondSquared accel);

/**
 * Peak speed actually reached on a track of length @p length: v_max if
 * the track fits an accelerate+brake trapezoid, else the triangular peak
 * sqrt(length * accel).
 */
qty::MetresPerSecond peakSpeed(qty::Metres length,
                               qty::MetresPerSecond v_max,
                               qty::MetresPerSecondSquared accel);

/**
 * One-way travel time (excluding docking) over @p length.
 *
 * @param length Track length (> 0).
 * @param v_max  Maximum cruise speed (> 0).
 * @param accel  Acceleration and braking magnitude (> 0).
 * @param mode   Kinematics mode (see KinematicsMode).
 */
qty::Seconds travelTime(qty::Metres length, qty::MetresPerSecond v_max,
                        qty::MetresPerSecondSquared accel,
                        KinematicsMode mode);

/**
 * A piecewise constant-acceleration velocity profile over a track:
 * accelerate, cruise (possibly zero-length), brake.  Always built from
 * the exact trapezoidal kinematics (the DES animates real physics; the
 * PaperApprox mode only affects closed-form travel times).
 */
class VelocityProfile
{
  public:
    /**
     * @param length Track length (> 0).
     * @param v_max  Maximum speed (> 0).
     * @param accel  Acceleration/braking magnitude (> 0).
     */
    VelocityProfile(qty::Metres length, qty::MetresPerSecond v_max,
                    qty::MetresPerSecondSquared accel);

    /** Total traversal time (trapezoidal/exact). */
    qty::Seconds totalTime() const { return qty::Seconds{t_total_}; }

    /** Peak speed reached. */
    qty::MetresPerSecond peakSpeed() const
    {
        return qty::MetresPerSecond{v_peak_};
    }

    /** Duration of the acceleration phase. */
    qty::Seconds accelTime() const { return qty::Seconds{t_accel_}; }

    /** Duration of the cruise phase (0 for triangular profiles). */
    qty::Seconds cruiseTime() const { return qty::Seconds{t_cruise_}; }

    /** Velocity at time @p t in [0, totalTime()]. */
    qty::MetresPerSecond velocityAt(qty::Seconds t) const;

    /** Position along the track at time @p t. */
    qty::Metres positionAt(qty::Seconds t) const;

    qty::Metres length() const { return qty::Metres{length_}; }
    qty::MetresPerSecondSquared accel() const
    {
        return qty::MetresPerSecondSquared{accel_};
    }

  private:
    double length_;
    double accel_;
    double v_peak_;
    double t_accel_;
    double t_cruise_;
    double t_total_;
};

} // namespace physics
} // namespace dhl

#endif // DHL_PHYSICS_PROFILE_HPP
