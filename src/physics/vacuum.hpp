/**
 * @file
 * Rough-vacuum tube model.
 *
 * The paper (§IV-B) assumes the DHL tube is evacuated to a rough vacuum
 * (~1 millibar) and asserts the pumping power is negligible because the
 * tube cross-section is small.  This model makes that assertion
 * checkable: isothermal pump-down work from atmosphere, steady-state
 * maintenance power against a leak rate, and the residual aerodynamic
 * drag power on a moving cart at the reduced air density (so tests can
 * confirm it is orders of magnitude below the LIM launch power).
 */

#ifndef DHL_PHYSICS_VACUUM_HPP
#define DHL_PHYSICS_VACUUM_HPP

#include "common/quantity.hpp"

namespace dhl {
namespace physics {

/** Geometry and operating point of the evacuated tube. */
struct VacuumConfig
{
    /** Tube internal diameter, m (small cross-section per the paper). */
    double tube_diameter = 0.30;

    /** Operating pressure, Pa (paper example: 1 millibar = 100 Pa). */
    double pressure = 100.0;

    /** Pump efficiency (isothermal work / electrical energy). */
    double pump_efficiency = 0.30;

    /**
     * Leak rate as tube-volumes of atmospheric-equivalent air per day
     * that must be re-pumped to hold the operating pressure.
     */
    double leak_volumes_per_day = 0.05;
};

/** Internal volume of a tube of the configured diameter. */
qty::CubicMetres tubeVolume(qty::Metres length, const VacuumConfig &cfg = {});

/**
 * Electrical energy for the initial pump-down of @p length of tube from
 * atmosphere to the operating pressure (isothermal ideal gas:
 * W = P0 V ln(P0/P), divided by pump efficiency).
 */
qty::Joules pumpDownEnergy(qty::Metres length, const VacuumConfig &cfg = {});

/**
 * Steady-state electrical power to hold the vacuum against leaks.
 */
qty::Watts maintenancePower(qty::Metres length, const VacuumConfig &cfg = {});

/**
 * Aerodynamic drag power on a cart moving at @p speed through the
 * residual gas: P = 1/2 rho Cd A v^3 with rho scaled from sea level
 * by pressure ratio.
 *
 * @param speed          Cart speed.
 * @param frontal_area   Cart frontal area.
 * @param drag_coeff     Drag coefficient (blunt body ~1, dimensionless).
 * @param cfg            Vacuum operating point.
 */
qty::Watts aeroDragPower(qty::MetresPerSecond speed,
                         qty::SquareMetres frontal_area,
                         double drag_coeff = 1.0,
                         const VacuumConfig &cfg = {});

} // namespace physics
} // namespace dhl

#endif // DHL_PHYSICS_VACUUM_HPP
