/**
 * @file
 * Linear induction motor (LIM) model: launch/brake energy, peak power,
 * LIM length, and the Discussion section's regenerative-braking and
 * eddy-current-brake variants.
 *
 * Energy accounting matches the paper's (§IV-A1, §IV-A3):
 *   - accelerate: E = (1/2 M v^2) / eta         (eta = LIM efficiency)
 *   - brake:      pessimistically the same as accelerating,
 *                 optionally reduced by regenerative recovery (16-70 %)
 *                 or eliminated entirely by a passive eddy-current brake.
 *   - peak power: P = M a v_max / eta  (force times peak speed over eta),
 *                 which reproduces Table VI's 22-210 kW column.
 */

#ifndef DHL_PHYSICS_LIM_HPP
#define DHL_PHYSICS_LIM_HPP

#include "common/quantity.hpp"

namespace dhl {
namespace physics {

/** How the cart is decelerated at the destination endpoint. */
enum class BrakingMode
{
    /** Active LIM braking costing as much energy as acceleration
     *  (the paper's pessimistic default). */
    ActiveLim,

    /** Active LIM braking with a fraction of the kinetic energy
     *  recovered (Discussion: 16-70 % for electric vehicles). */
    Regenerative,

    /** Passive eddy-current brake: no braking energy drawn at all
     *  (Discussion's dual-track design). */
    EddyCurrent,
};

/** Configuration of one LIM-driven launch system. */
struct LimConfig
{
    /** Electrical-to-kinetic conversion efficiency (paper: 0.75). */
    double efficiency = 0.75;

    /** Acceleration imparted to the cart, m/s^2 (paper: 1000). */
    double accel = 1000.0;

    /** Braking strategy at the far end. */
    BrakingMode braking = BrakingMode::ActiveLim;

    /** Fraction of kinetic energy recovered when braking ==
     *  Regenerative (paper Discussion: 0.16-0.70). */
    double regen_fraction = 0.0;
};

/** Validate a LimConfig; throws FatalError on nonsense. */
void validate(const LimConfig &cfg);

/**
 * Electrical energy to accelerate @p cart_mass from rest to @p v.
 */
qty::Joules launchEnergy(qty::Kilograms cart_mass, qty::MetresPerSecond v,
                         const LimConfig &cfg);

/**
 * Electrical energy consumed braking from @p v to rest.
 * ActiveLim: same as launch.  Regenerative: launch cost minus the
 * recovered kinetic fraction (never below zero).  EddyCurrent: zero.
 */
qty::Joules brakeEnergy(qty::Kilograms cart_mass, qty::MetresPerSecond v,
                        const LimConfig &cfg);

/**
 * Total electrical energy of one end-to-end shot (accelerate at one end,
 * brake at the other).
 */
qty::Joules shotEnergy(qty::Kilograms cart_mass, qty::MetresPerSecond v,
                       const LimConfig &cfg);

/**
 * Peak electrical power while accelerating: M * a * v_max / eta.
 * Reached at the end of the acceleration phase.
 */
qty::Watts peakPower(qty::Kilograms cart_mass, qty::MetresPerSecond v_max,
                     const LimConfig &cfg);

/**
 * Average electrical power over the acceleration phase (half the peak
 * for a constant-force LIM).
 */
qty::Watts averageAccelPower(qty::Kilograms cart_mass,
                             qty::MetresPerSecond v_max,
                             const LimConfig &cfg);

} // namespace physics
} // namespace dhl

#endif // DHL_PHYSICS_LIM_HPP
