/**
 * @file
 * Maglev cart mass composition and inductrack levitation losses.
 *
 * Mass model (paper §IV-A): the cart carries M.2 SSDs plus a fixed-mass
 * plastic frame; Halbach-array magnets are 10 % of total cart mass and
 * the aluminium LIM fin 15 %, so
 *
 *      M_total = (m_SSDs + m_frame) / (1 - f_magnet - f_fin).
 *
 * This reproduces the paper's 161 / 282 / 524 g carts for 16 / 32 / 64
 * Sabrent 8 TB M.2 SSDs (5.67 g each) with a 30 g frame.
 *
 * Drag model (paper §IV-A2, after Murai & Hasegawa's inductrack
 * analysis): energy lost to magnetic drag while coasting distance x is
 *
 *      L_d = (g + 2 c2) * M * x / c1
 *
 * with c1 the lift-to-drag ratio (pessimistically 10; >50 at speed for
 * copper coils) and c2 the downward specific force from the upper
 * stabilising Halbach array (driven to ~0 by riding low).  The paper
 * argues (and our numbers confirm) this is negligible next to the launch
 * energy; we model it anyway so the claim is checkable.
 */

#ifndef DHL_PHYSICS_MAGLEV_HPP
#define DHL_PHYSICS_MAGLEV_HPP

#include "common/quantity.hpp"

namespace dhl {
namespace physics {

/** Parameters of the cart's mass composition. */
struct CartMassConfig
{
    /** Fraction of total cart mass that is levitation magnets. */
    double magnet_fraction = 0.10;

    /** Fraction of total cart mass that is the aluminium LIM fin. */
    double fin_fraction = 0.15;

    /** Structural frame mass, kg (paper: <= 30 g of polyacetal). */
    double frame_mass = 0.030;
};

/** Computed mass breakdown of one cart. */
struct CartMassBreakdown
{
    qty::Kilograms payload_mass; ///< SSDs.
    qty::Kilograms frame_mass;   ///< Frame.
    qty::Kilograms magnet_mass;  ///< Halbach arrays.
    qty::Kilograms fin_mass;     ///< LIM fin.
    qty::Kilograms total_mass;   ///< Sum.
};

/**
 * Solve the cart mass from the payload it must carry.
 *
 * @param payload_mass Mass of the SSDs (and any other payload).
 * @param cfg          Mass-composition parameters.
 * @return Full breakdown; total = (payload + frame)/(1 - f_mag - f_fin).
 */
CartMassBreakdown cartMass(qty::Kilograms payload_mass,
                           const CartMassConfig &cfg = {});

/** Parameters of the inductrack levitation/drag model. */
struct LevitationConfig
{
    /** Lift-to-drag ratio c1 (paper: pessimistic 10, >50 at speed). */
    double lift_to_drag = 10.0;

    /**
     * Downward specific force from the upper stabilising array, m/s^2
     * (paper's c2; ~0 when the cart rides low on the rail).
     */
    double stabiliser_accel = 0.0;

    /** Nominal levitation air gap, m (paper: 10 mm standard). */
    double air_gap = 0.010;

    /** Active-stabilisation electronics power per cart, W (small). */
    double stabilisation_power = 5.0;
};

/**
 * Energy lost to magnetic drag while moving @p distance:
 * L_d = (g + 2 c2) M x / c1.
 *
 * @param cart_mass Cart mass.
 * @param distance  Distance coasted.
 * @param cfg       Levitation parameters.
 * @return Energy lost to drag.
 */
qty::Joules dragLoss(qty::Kilograms cart_mass, qty::Metres distance,
                     const LevitationConfig &cfg = {});

/**
 * Velocity-dependent lift-to-drag ratio: rises from ~0 at rest and
 * saturates towards @p asymptote (the inductrack characteristic; the
 * paper notes it is "near constant at high speed").
 *
 * @param speed        Cart speed.
 * @param asymptote    High-speed lift-to-drag ratio (dimensionless).
 * @param half_speed   Speed at which half the asymptote is reached.
 */
double liftToDragAtSpeed(qty::MetresPerSecond speed,
                         double asymptote = 50.0,
                         qty::MetresPerSecond half_speed =
                             qty::MetresPerSecond{10.0});

/**
 * Minimum magnet mass fraction needed to levitate: with specific lift
 * (lift per kg of magnet) @p specific_lift, a fraction f supports total
 * mass when f * specific_lift >= g.  Used to validate the 10 % figure.
 *
 * @param specific_lift Lift force per magnet mass, N/kg (== m/s^2).
 * @return Required mass fraction in (0, 1]; fatal if > 1 (cannot fly).
 */
double requiredMagnetFraction(qty::MetresPerSecondSquared specific_lift);

} // namespace physics
} // namespace dhl

#endif // DHL_PHYSICS_MAGLEV_HPP
