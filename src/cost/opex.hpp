/**
 * @file
 * Operational cost / total-cost-of-ownership extension to the paper's
 * Table VIII capex analysis.
 *
 * The paper argues a DHL costs about as much to build as one large
 * 400 Gbit/s switch (~$20k) and then moves data for up to two orders
 * of magnitude less energy.  This model turns that into dollars: given
 * a recurring bulk-transfer duty (bytes per day over a route), it
 * compares capex + energy opex for the DHL against the optical
 * network over a deployment lifetime and finds the payback horizon.
 */

#ifndef DHL_COST_OPEX_HPP
#define DHL_COST_OPEX_HPP

#include "cost/cost_model.hpp"
#include "dhl/analytical.hpp"
#include "network/route.hpp"

namespace dhl {
namespace cost {

/** Pricing of electricity and the network-side capex anchor. */
struct OpexPrices
{
    /** Industrial electricity price, USD per kWh. */
    double usd_per_kwh = 0.10;

    /**
     * Network-side capex anchor: the paper's "typical price for a
     * large 400 Gbit/s switch", USD.
     */
    double network_switch_capex = 20000.0;

    /** Per-cart SSD capex is shared by both sides (the data must live
     *  somewhere), so it is excluded, matching the paper's framing. */
};

/** A recurring bulk-transfer duty. */
struct TransferDuty
{
    double bytes_per_transfer; ///< Size of each transfer.
    double transfers_per_day;  ///< How often it runs.
    double years;              ///< Deployment lifetime.
};

/** One side's cost ledger. */
struct CostLedger
{
    double capex;               ///< USD up front.
    qty::Joules energy_per_day; ///< Energy drawn per day.
    double opex_per_year;       ///< USD/year on energy.
    double total;               ///< USD over the lifetime.
};

/** The comparison result. */
struct TcoComparison
{
    CostLedger dhl;
    CostLedger network;

    /**
     * Days until the DHL's total cost drops below the network's;
     * +infinity if it never does (the DHL also has lower capex in the
     * default setup, making this 0).
     */
    double payback_days;
};

/** The TCO model. */
class TcoModel
{
  public:
    explicit TcoModel(const OpexPrices &prices = {},
                      const CostModel &materials = CostModel{});

    /**
     * Compare a DHL against @p links parallel optical links of
     * @p route for the given duty.
     */
    TcoComparison compare(const core::DhlConfig &cfg,
                          const network::Route &route,
                          const TransferDuty &duty,
                          double links = 1.0) const;

    /** Energy cost of @p energy at the configured price, USD. */
    double energyCost(qty::Joules energy) const;

    const OpexPrices &prices() const { return prices_; }

  private:
    OpexPrices prices_;
    CostModel materials_;
};

} // namespace cost
} // namespace dhl

#endif // DHL_COST_OPEX_HPP
