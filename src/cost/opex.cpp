/**
 * @file
 * Implementation of the TCO model.
 */

#include "cost/opex.hpp"

#include <limits>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "network/transfer.hpp"

namespace dhl {
namespace cost {

TcoModel::TcoModel(const OpexPrices &prices, const CostModel &materials)
    : prices_(prices), materials_(materials)
{
    fatal_if(!(prices.usd_per_kwh > 0.0),
             "electricity price must be positive");
    fatal_if(prices.network_switch_capex < 0.0,
             "network capex must be non-negative");
}

double
TcoModel::energyCost(qty::Joules energy) const
{
    fatal_if(energy.value() < 0.0, "energy must be non-negative");
    // J -> kWh -> USD.
    return energy.value() / units::kJoulesPerKilowattHour *
           prices_.usd_per_kwh;
}

TcoComparison
TcoModel::compare(const core::DhlConfig &cfg, const network::Route &route,
                  const TransferDuty &duty, double links) const
{
    fatal_if(!(duty.bytes_per_transfer > 0.0),
             "transfer size must be positive");
    fatal_if(!(duty.transfers_per_day > 0.0),
             "transfer rate must be positive");
    fatal_if(!(duty.years > 0.0), "lifetime must be positive");
    fatal_if(!(links > 0.0), "need a positive link count");

    TcoComparison out{};

    // DHL side: the Table VIII build plus launch energy per duty.
    const core::AnalyticalModel model(cfg);
    out.dhl.capex = materials_.totalCost(cfg.track_length, cfg.max_speed);
    const auto bulk = model.bulk(qty::Bytes{duty.bytes_per_transfer});
    out.dhl.energy_per_day = bulk.total_energy * duty.transfers_per_day;
    out.dhl.opex_per_year = energyCost(out.dhl.energy_per_day) * 365.0;
    out.dhl.total = out.dhl.capex + out.dhl.opex_per_year * duty.years;

    // Network side: switch capex plus route energy per duty.
    const network::TransferModel net(route);
    out.network.capex = prices_.network_switch_capex;
    const auto xfer = net.transfer(qty::Bytes{duty.bytes_per_transfer}, links);
    out.network.energy_per_day = xfer.energy * duty.transfers_per_day;
    out.network.opex_per_year =
        energyCost(out.network.energy_per_day) * 365.0;
    out.network.total =
        out.network.capex + out.network.opex_per_year * duty.years;

    // Payback: days d where dhl.capex + d*dhl_daily <= net.capex +
    // d*net_daily.
    const double dhl_daily = energyCost(out.dhl.energy_per_day);
    const double net_daily = energyCost(out.network.energy_per_day);
    const double capex_gap = out.dhl.capex - out.network.capex;
    if (capex_gap <= 0.0) {
        out.payback_days = 0.0;
    } else if (net_daily > dhl_daily) {
        out.payback_days = capex_gap / (net_daily - dhl_daily);
    } else {
        out.payback_days = std::numeric_limits<double>::infinity();
    }
    return out;
}

} // namespace cost
} // namespace dhl
