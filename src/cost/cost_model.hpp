/**
 * @file
 * DHL materials cost model (paper §V-D, Table VIII).
 *
 * Costs split into distance-proportional rail materials (aluminium
 * levitation rings, PVC rail, PVC vacuum tube) and a per-installation
 * accelerator/decelerator package (copper LIM coils sized by top speed,
 * plus a variable-frequency drive).  Unit prices are the paper's May
 * 2023 commodity prices; per-metre masses and per-speed copper masses
 * are recovered from Table VIII (see DESIGN.md §3).
 */

#ifndef DHL_COST_COST_MODEL_HPP
#define DHL_COST_COST_MODEL_HPP

#include <vector>

namespace dhl {
namespace cost {

/** Commodity prices (paper: May 2023). */
struct MaterialPrices
{
    double aluminium_per_kg = 2.35; ///< USD/kg.
    double pvc_per_kg = 1.20;       ///< USD/kg.
    double copper_per_kg = 8.58;    ///< USD/kg.
    double vfd = 8000.0;            ///< USD per variable-frequency drive.
};

/** Per-metre material masses of the rail assembly. */
struct RailMaterials
{
    /** One aluminium levitation ring, kg (paper: 3.62 g). */
    double ring_mass = 0.00362;

    /** Rings per metre of rail (recovered from Table VIII: 137.5/m). */
    double rings_per_metre = 137.5;

    /** PVC rail mass per metre, kg/m (Table VIII: 0.9667). */
    double rail_mass_per_metre = 116.0 / 1.20 / 100.0;

    /** PVC vacuum tube mass per metre, kg/m (Table VIII: 4.1667). */
    double tube_mass_per_metre = 500.0 / 1.20 / 100.0;
};

/** Cost of the distance-proportional rail materials, USD. */
struct RailCost
{
    double aluminium;
    double pvc_rail;
    double pvc_tube;

    double total() const { return aluminium + pvc_rail + pvc_tube; }
};

/** Cost of one accelerator/decelerator package, USD. */
struct LimCost
{
    double copper;
    double vfd;

    double total() const { return copper + vfd; }
};

/** The full cost model. */
class CostModel
{
  public:
    explicit CostModel(const MaterialPrices &prices = {},
                       const RailMaterials &materials = {});

    /** Rail materials cost for @p distance metres. */
    RailCost railCost(double distance) const;

    /**
     * Copper coil mass of a LIM rated for @p top_speed m/s, kg.
     * Piecewise-linear through the paper's three design points
     * (92.3 / 338.5 / 759 kg at 100 / 200 / 300 m/s), linearly
     * extrapolated outside.
     */
    double limCopperMass(double top_speed) const;

    /** Accelerator/decelerator package cost for @p top_speed. */
    LimCost limCost(double top_speed) const;

    /**
     * Overall DHL cost (Table VIII c): rail materials plus one
     * accelerator/decelerator package, matching the paper's totals.
     */
    double totalCost(double distance, double top_speed) const;

    const MaterialPrices &prices() const { return prices_; }
    const RailMaterials &materials() const { return materials_; }

  private:
    MaterialPrices prices_;
    RailMaterials materials_;
    std::vector<double> copper_speeds_;
    std::vector<double> copper_masses_;
};

} // namespace cost
} // namespace dhl

#endif // DHL_COST_COST_MODEL_HPP
