/**
 * @file
 * Implementation of the materials cost model.
 */

#include "cost/cost_model.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace cost {

CostModel::CostModel(const MaterialPrices &prices,
                     const RailMaterials &materials)
    : prices_(prices),
      materials_(materials),
      // The paper's three LIM design points: copper masses recovered
      // from Table VIII costs at the paper's May-2023 copper price
      // (8.58 USD/kg).  Masses are physical constants of the LIM
      // design, so they do not move with the configured price.
      copper_speeds_{100.0, 200.0, 300.0},
      copper_masses_{792.0 / 8.58, 2904.0 / 8.58, 6512.0 / 8.58}
{
    fatal_if(!(prices.aluminium_per_kg > 0.0) ||
                 !(prices.pvc_per_kg > 0.0) ||
                 !(prices.copper_per_kg > 0.0) || prices.vfd < 0.0,
             "material prices must be positive");
    fatal_if(!(materials.ring_mass > 0.0) ||
                 !(materials.rings_per_metre > 0.0) ||
                 !(materials.rail_mass_per_metre > 0.0) ||
                 !(materials.tube_mass_per_metre > 0.0),
             "material masses must be positive");
}

RailCost
CostModel::railCost(double distance) const
{
    fatal_if(!(distance > 0.0), "distance must be positive");
    RailCost c{};
    c.aluminium = materials_.ring_mass * materials_.rings_per_metre *
                  distance * prices_.aluminium_per_kg;
    c.pvc_rail =
        materials_.rail_mass_per_metre * distance * prices_.pvc_per_kg;
    c.pvc_tube =
        materials_.tube_mass_per_metre * distance * prices_.pvc_per_kg;
    return c;
}

double
CostModel::limCopperMass(double top_speed) const
{
    fatal_if(!(top_speed > 0.0), "top speed must be positive");
    const auto &xs = copper_speeds_;
    const auto &ys = copper_masses_;

    // Piecewise-linear interpolation with linear extrapolation at the
    // ends.
    std::size_t hi = 1;
    while (hi + 1 < xs.size() && top_speed > xs[hi])
        ++hi;
    const std::size_t lo = hi - 1;
    const double t = (top_speed - xs[lo]) / (xs[hi] - xs[lo]);
    const double mass = ys[lo] + t * (ys[hi] - ys[lo]);
    return mass > 0.0 ? mass : 0.0;
}

LimCost
CostModel::limCost(double top_speed) const
{
    LimCost c{};
    c.copper = limCopperMass(top_speed) * prices_.copper_per_kg;
    c.vfd = prices_.vfd;
    return c;
}

double
CostModel::totalCost(double distance, double top_speed) const
{
    // Table VIII (c) sums the rail materials with a single
    // accelerator/decelerator package (the same LIM hardware both
    // launches and brakes).
    return railCost(distance).total() + limCost(top_speed).total();
}

} // namespace cost
} // namespace dhl
