/**
 * @file
 * Implementation of the behavioural SSD model.
 */

#include "storage/ssd_model.hpp"

#include "common/logging.hpp"

namespace dhl {
namespace storage {

std::uint64_t
ratedCycles(ConnectorKind kind)
{
    switch (kind) {
      case ConnectorKind::M2:
        return 250;
      case ConnectorKind::UsbC:
        return 10000;
    }
    panic("unreachable connector kind");
}

std::string
to_string(SsdState state)
{
    switch (state) {
      case SsdState::Healthy:
        return "healthy";
      case SsdState::Failed:
        return "failed";
      case SsdState::ConnectorWorn:
        return "connector-worn";
    }
    panic("unreachable SSD state");
}

SsdModel::SsdModel(const DeviceSpec &spec, ConnectorKind connector,
                   double failure_per_trip)
    : spec_(spec),
      connector_(connector),
      failure_per_trip_(failure_per_trip),
      stored_(0.0),
      cycles_(0),
      state_(SsdState::Healthy)
{
    fatal_if(!(spec.capacity > 0.0), "SSD capacity must be positive");
    fatal_if(failure_per_trip < 0.0 || failure_per_trip > 1.0,
             "per-trip failure probability must be in [0, 1]");
}

double
SsdModel::readTime(double bytes) const
{
    fatal_if(bytes < 0.0, "read size must be non-negative");
    fatal_if(!healthy(), "cannot read a non-healthy SSD");
    fatal_if(bytes > stored_ + 1e-6,
             "read beyond stored bytes on SSD '" + spec_.name + "'");
    return bytes / spec_.seq_read_bw;
}

double
SsdModel::write(double bytes)
{
    fatal_if(bytes < 0.0, "write size must be non-negative");
    fatal_if(!healthy(), "cannot write a non-healthy SSD");
    fatal_if(stored_ + bytes > spec_.capacity * (1.0 + 1e-9),
             "write overflows SSD '" + spec_.name + "'");
    stored_ += bytes;
    if (stored_ > spec_.capacity)
        stored_ = spec_.capacity;
    return bytes / spec_.seq_write_bw;
}

void
SsdModel::trim(double bytes)
{
    fatal_if(bytes < 0.0, "trim size must be non-negative");
    fatal_if(bytes > stored_ + 1e-6, "trim beyond stored bytes");
    stored_ -= bytes;
    if (stored_ < 0.0)
        stored_ = 0.0;
}

void
SsdModel::matingCycle()
{
    ++cycles_;
    if (state_ == SsdState::Healthy && cycles_ > ratedCycles(connector_))
        state_ = SsdState::ConnectorWorn;
}

bool
SsdModel::rollTripFailure(Rng &rng)
{
    if (failure_per_trip_ <= 0.0 || state_ != SsdState::Healthy)
        return false;
    if (rng.uniform() < failure_per_trip_) {
        state_ = SsdState::Failed;
        return true;
    }
    return false;
}

void
SsdModel::repair()
{
    // Replacement device with contents restored from RAID/backup, so
    // stored bytes survive the repair.
    state_ = SsdState::Healthy;
    cycles_ = 0;
}

} // namespace storage
} // namespace dhl
