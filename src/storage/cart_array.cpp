/**
 * @file
 * Implementation of the cart SSD array model.
 */

#include "storage/cart_array.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dhl {
namespace storage {

CartArray::CartArray(const DeviceSpec &ssd, std::size_t count,
                     const PcieConfig &pcie)
    : ssd_(ssd), count_(count), pcie_(pcie)
{
    fatal_if(count == 0, "a cart array needs at least one SSD");
    fatal_if(!(ssd.capacity > 0.0), "SSD capacity must be positive");
    fatal_if(!(ssd.seq_read_bw > 0.0) || !(ssd.seq_write_bw > 0.0),
             "SSD bandwidths must be positive");
    fatal_if(pcie.lanes_per_ssd == 0, "each SSD needs at least one lane");
    fatal_if(!(pcie.lane_bandwidth > 0.0),
             "PCIe lane bandwidth must be positive");
}

double
CartArray::capacity() const
{
    return ssd_.capacity * static_cast<double>(count_);
}

double
CartArray::payloadMass() const
{
    return ssd_.mass * static_cast<double>(count_);
}

double
CartArray::pcieBandwidth() const
{
    return pcie_.lane_bandwidth *
           static_cast<double>(pcie_.lanes_per_ssd * count_);
}

double
CartArray::readBandwidth() const
{
    const double device = ssd_.seq_read_bw * static_cast<double>(count_);
    return std::min(device, pcieBandwidth());
}

double
CartArray::writeBandwidth() const
{
    const double device = ssd_.seq_write_bw * static_cast<double>(count_);
    return std::min(device, pcieBandwidth());
}

double
CartArray::fullReadTime() const
{
    return capacity() / readBandwidth();
}

double
CartArray::fullWriteTime() const
{
    return capacity() / writeBandwidth();
}

double
CartArray::activePower() const
{
    return ssd_.active_power * static_cast<double>(count_);
}

} // namespace storage
} // namespace dhl
