/**
 * @file
 * The cart's SSD array: capacity, payload mass, and aggregate bandwidth
 * through the docking station's PCIe attachment.
 *
 * Paper §III-B5: each docked cart exposes its SSDs over PCIe; "version 6
 * provides 3.8 Tbit/s for 64 lanes, corresponding with 1 lane per SSD in
 * our evaluation's maximum cart configuration".  Aggregate read/write
 * bandwidth is therefore min(N * per-SSD bandwidth, lane bandwidth).
 */

#ifndef DHL_STORAGE_CART_ARRAY_HPP
#define DHL_STORAGE_CART_ARRAY_HPP

#include <cstddef>

#include "storage/catalog.hpp"

namespace dhl {
namespace storage {

/** PCIe attachment between a docked cart and the rack. */
struct PcieConfig
{
    /** PCIe lanes dedicated to each SSD (paper: 1). */
    std::size_t lanes_per_ssd = 1;

    /**
     * Usable bandwidth per lane, bytes/s.  The paper quotes PCIe 6.0 at
     * 3.8 Tbit/s over 64 lanes => 59.375 Gbit/s per lane.
     */
    double lane_bandwidth = 3.8e12 / 8.0 / 64.0;
};

/** A homogeneous array of SSDs riding on one cart. */
class CartArray
{
  public:
    /**
     * @param ssd    Device specification of each SSD.
     * @param count  Number of SSDs (paper: 16 / 32 / 64).
     * @param pcie   PCIe attachment parameters.
     */
    CartArray(const DeviceSpec &ssd, std::size_t count,
              const PcieConfig &pcie = {});

    std::size_t ssdCount() const { return count_; }
    const DeviceSpec &ssdSpec() const { return ssd_; }
    const PcieConfig &pcie() const { return pcie_; }

    /** Total storage capacity, bytes (paper: 128 / 256 / 512 TB). */
    double capacity() const;

    /** Payload mass of all SSDs, kg (paper: 91 / 180 / 363 g). */
    double payloadMass() const;

    /** PCIe bandwidth ceiling for the whole cart, bytes/s. */
    double pcieBandwidth() const;

    /** Aggregate sequential read bandwidth while docked, bytes/s
     *  (device-parallel, capped by PCIe). */
    double readBandwidth() const;

    /** Aggregate sequential write bandwidth while docked, bytes/s. */
    double writeBandwidth() const;

    /** Time to read the full cart contents once docked, s. */
    double fullReadTime() const;

    /** Time to fill the cart from empty, s. */
    double fullWriteTime() const;

    /** Aggregate SSD power under full load, W (heat-sink sizing). */
    double activePower() const;

  private:
    DeviceSpec ssd_;
    std::size_t count_;
    PcieConfig pcie_;
};

} // namespace storage
} // namespace dhl

#endif // DHL_STORAGE_CART_ARRAY_HPP
