/**
 * @file
 * Data catalogues encoding the paper's background tables:
 *
 *  - Table I:  large emerging datasets and data-creation rates.
 *  - Table II: currently available storage devices.
 *  - Table IV: ML models with a significant storage footprint.
 *
 * These are the inputs every experiment draws from (the 29 PB Meta DLRM
 * dataset, the 8 TB / 5.67 g Sabrent M.2 SSD, ...).
 */

#ifndef DHL_STORAGE_CATALOG_HPP
#define DHL_STORAGE_CATALOG_HPP

#include <string>
#include <vector>

namespace dhl {
namespace storage {

/** Physical packaging of a storage device. */
enum class FormFactor
{
    Hdd35,  ///< 3.5" hard disk drive.
    Ssd35,  ///< 3.5" solid state drive.
    M2,     ///< M.2 SSD stick.
    U2,     ///< U.2 SSD.
};

/** Human-readable name of a form factor. */
std::string to_string(FormFactor ff);

/** One storage device specification (paper Table II). */
struct DeviceSpec
{
    std::string name;        ///< Product name.
    double capacity;         ///< Bytes (decimal).
    FormFactor form_factor;  ///< Packaging.
    double mass;             ///< kg.
    double seq_read_bw;      ///< Sequential read, bytes/s.
    double seq_write_bw;     ///< Sequential write, bytes/s.
    double active_power;     ///< Power under load, W.

    /** Storage density by mass, bytes per kg. */
    double bytesPerKg() const { return capacity / mass; }
};

/** Category of a large dataset (paper Table I). */
enum class DatasetKind
{
    Images,
    Videos,
    Nlp,
    WebCrawl,
    MlTraining,
    Genomics,
    Physics,
    BigData,
};

std::string to_string(DatasetKind kind);

/** One large dataset (paper Table I).  Streaming sources (LHC, daily
 *  platform ingest) carry a creation rate instead of / on top of a fixed
 *  size. */
struct DatasetSpec
{
    std::string name;     ///< Dataset name.
    double size;          ///< Bytes; 0 for pure-rate sources.
    double creation_rate; ///< Bytes/s of new data; 0 for static sets.
    DatasetKind kind;     ///< Category.
};

/** One large ML model (paper Table IV). */
struct MlModelSpec
{
    std::string name;     ///< Model name.
    double parameters;    ///< Number of parameters.
    double size;          ///< Bytes at 32-bit parameters.
    std::string origin;   ///< Publishing organisation.
    int year;             ///< Publication year.
};

//===========================================================================
// Catalogue accessors (static data, returned by reference)
//===========================================================================

/** Table II: the three reference devices. */
const std::vector<DeviceSpec> &deviceCatalog();

/** Table I: large emerging datasets / creation rates. */
const std::vector<DatasetSpec> &datasetCatalog();

/** Table IV: ML models with significant storage footprint. */
const std::vector<MlModelSpec> &mlModelCatalog();

/** Look up a device by exact name; fatal() if absent. */
const DeviceSpec &findDevice(const std::string &name);

/** Look up a dataset by exact name; fatal() if absent. */
const DatasetSpec &findDataset(const std::string &name);

/** The paper's reference M.2 SSD (Sabrent Rocket 4 Plus, 8 TB, 5.67 g). */
const DeviceSpec &referenceM2Ssd();

/** The paper's reference bulk dataset (Meta DLRM, 29 PB). */
const DatasetSpec &referenceDlrmDataset();

} // namespace storage
} // namespace dhl

#endif // DHL_STORAGE_CATALOG_HPP
