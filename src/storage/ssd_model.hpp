/**
 * @file
 * Behavioural SSD model for the event-driven simulations.
 *
 * Tracks stored bytes, serves timed read/write operations at the device's
 * sequential bandwidth, counts connector mating cycles against the
 * connector's rated life (Discussion: USB-C 10k-20k cycles vs M.2's
 * hundreds — the reason the paper recommends USB-C carrying PCIe for the
 * docking interface), and supports per-trip failure injection so the
 * RAID/backup recovery path in the controller can be exercised.
 */

#ifndef DHL_STORAGE_SSD_MODEL_HPP
#define DHL_STORAGE_SSD_MODEL_HPP

#include <cstdint>
#include <string>

#include "common/random.hpp"
#include "storage/catalog.hpp"

namespace dhl {
namespace storage {

/** Connector technology used for docking. */
enum class ConnectorKind
{
    M2,   ///< M.2 edge connector: rated ~250 mating cycles.
    UsbC, ///< USB-C (carrying PCIe): rated ~10,000 cycles.
};

/** Rated mating cycles for a connector kind. */
std::uint64_t ratedCycles(ConnectorKind kind);

/** Health state of a simulated SSD. */
enum class SsdState
{
    Healthy,
    Failed,          ///< Data loss in flight; needs RAID/backup recovery.
    ConnectorWorn,   ///< Connector exceeded rated mating cycles.
};

std::string to_string(SsdState state);

/** One simulated SSD instance. */
class SsdModel
{
  public:
    /**
     * @param spec               Device specification.
     * @param connector          Docking connector technology.
     * @param failure_per_trip   Probability the device fails during one
     *                           shuttle trip (0 disables injection).
     */
    SsdModel(const DeviceSpec &spec,
             ConnectorKind connector = ConnectorKind::UsbC,
             double failure_per_trip = 0.0);

    const DeviceSpec &spec() const { return spec_; }
    SsdState state() const { return state_; }
    bool healthy() const { return state_ == SsdState::Healthy; }

    /** Bytes currently stored. */
    double storedBytes() const { return stored_; }

    /** Free capacity, bytes. */
    double freeBytes() const { return spec_.capacity - stored_; }

    /**
     * Duration of a sequential read of @p bytes, s.  fatal() if more
     * bytes than stored are requested or the device is not healthy.
     */
    double readTime(double bytes) const;

    /**
     * Duration of a sequential write of @p bytes, s, and commit the
     * bytes.  fatal() on overflow or unhealthy device.
     */
    double write(double bytes);

    /** Discard @p bytes (after a read has been consumed upstream). */
    void trim(double bytes);

    /** Erase all contents. */
    void eraseAll() { stored_ = 0.0; }

    /**
     * Record one connector mating cycle (a dock or an undock).  Marks
     * the device ConnectorWorn once the rated cycle count is exceeded.
     */
    void matingCycle();

    std::uint64_t matingCycles() const { return cycles_; }
    ConnectorKind connector() const { return connector_; }

    /**
     * Accumulated connector wear as a fraction of the rated mating
     * cycles (1.0 = at rated life; can exceed 1.0 once worn).  The ops
     * layer's wear coupling scales cart breakdown probability and
     * station MTBF with this — the state-dependent-failure hook that
     * replaces the memoryless assumption.
     */
    double
    wearFraction() const
    {
        return static_cast<double>(cycles_) /
               static_cast<double>(ratedCycles(connector_));
    }

    /**
     * Roll the failure dice for one shuttle trip using @p rng.
     * @return true if the device just failed.
     */
    bool rollTripFailure(Rng &rng);

    /** Repair/replace the device (library maintenance path). */
    void repair();

  private:
    DeviceSpec spec_;
    ConnectorKind connector_;
    double failure_per_trip_;
    double stored_;
    std::uint64_t cycles_;
    SsdState state_;
};

} // namespace storage
} // namespace dhl

#endif // DHL_STORAGE_SSD_MODEL_HPP
