/**
 * @file
 * Static catalogue data (paper Tables I, II, IV).
 */

#include "storage/catalog.hpp"

#include "common/logging.hpp"
#include "common/units.hpp"

namespace dhl {
namespace storage {

using units::gigabytes;
using units::grams;
using units::megabytes;
using units::petabytes;
using units::terabytes;

std::string
to_string(FormFactor ff)
{
    switch (ff) {
      case FormFactor::Hdd35:
        return "3.5\" HDD";
      case FormFactor::Ssd35:
        return "3.5\" SSD";
      case FormFactor::M2:
        return "M.2";
      case FormFactor::U2:
        return "U.2";
    }
    panic("unreachable form factor");
}

std::string
to_string(DatasetKind kind)
{
    switch (kind) {
      case DatasetKind::Images:
        return "Images";
      case DatasetKind::Videos:
        return "Videos";
      case DatasetKind::Nlp:
        return "NLP";
      case DatasetKind::WebCrawl:
        return "Web Crawl";
      case DatasetKind::MlTraining:
        return "ML";
      case DatasetKind::Genomics:
        return "Genomics";
      case DatasetKind::Physics:
        return "Physics";
      case DatasetKind::BigData:
        return "BigData";
    }
    panic("unreachable dataset kind");
}

const std::vector<DeviceSpec> &
deviceCatalog()
{
    // Paper Table II.  The WD Gold row lists one sequential figure
    // (291 MB/s); we use it for both read and write.  M.2 active power
    // from the Discussion section ("up to 10 W under load").
    static const std::vector<DeviceSpec> devices = {
        {"WD Gold", terabytes(24), FormFactor::Hdd35, grams(670),
         megabytes(291), megabytes(291), 7.0},
        {"Nimbus ExaDrive", terabytes(100), FormFactor::Ssd35, grams(538),
         megabytes(500), megabytes(460), 10.0},
        {"Sabrent Rocket 4 Plus", terabytes(8), FormFactor::M2, grams(5.67),
         megabytes(7100), megabytes(6000), 10.0},
    };
    return devices;
}

const std::vector<DatasetSpec> &
datasetCatalog()
{
    // Paper Table I.  YouTube-8M's "350k hours of video" uses the
    // paper's own 1 hour ~ 1 GiB conversion; daily-rate rows are encoded
    // as creation rates (bytes/s).  Meta's ML datasets appear at their
    // largest (29 PB) — the one every experiment uses.
    static const std::vector<DatasetSpec> datasets = {
        {"LAION-5B", terabytes(250), 0.0, DatasetKind::Images},
        {"YouTube-8M", 350000.0 * units::gibibytes(1.0), 0.0,
         DatasetKind::Videos},
        {"MassiveText", terabytes(10.25), 0.0, DatasetKind::Nlp},
        {"Common Crawl", petabytes(9), 0.0, DatasetKind::WebCrawl},
        {"Meta ML 3PB", petabytes(3), 0.0, DatasetKind::MlTraining},
        {"Meta ML 13PB", petabytes(13), 0.0, DatasetKind::MlTraining},
        {"Meta ML 29PB", petabytes(29), 0.0, DatasetKind::MlTraining},
        {"NIH/GSA Genomes", petabytes(17), 0.0, DatasetKind::Genomics},
        {"LHC CMS Detector", 0.0, terabytes(150), DatasetKind::Physics},
        {"Meta Daily Data", 0.0, petabytes(4) / units::days(1.0),
         DatasetKind::BigData},
        {"YouTube Daily Videos", 0.0, petabytes(1.07) / units::days(1.0),
         DatasetKind::Videos},
    };
    return datasets;
}

const std::vector<MlModelSpec> &
mlModelCatalog()
{
    // Paper Table IV (sizes use the paper's 32 bits/parameter rule).
    static const std::vector<MlModelSpec> models = {
        {"GPT-3", 175e9, gigabytes(700), "OpenAI", 2020},
        {"Jurassic-1", 178e9, gigabytes(712), "A21 labs", 2021},
        {"Gopher", 280e9, terabytes(1.12), "Google", 2021},
        {"M6-10T", 10e12, terabytes(40), "Alibaba", 2021},
        {"Megatron-Turing NLG", 1e12, terabytes(4), "MSFT&NVDA", 2022},
        {"DLRM 2022", 12e12, terabytes(44), "Meta", 2022},
    };
    return models;
}

const DeviceSpec &
findDevice(const std::string &name)
{
    for (const auto &d : deviceCatalog()) {
        if (d.name == name)
            return d;
    }
    fatal("unknown storage device: " + name);
}

const DatasetSpec &
findDataset(const std::string &name)
{
    for (const auto &d : datasetCatalog()) {
        if (d.name == name)
            return d;
    }
    fatal("unknown dataset: " + name);
}

const DeviceSpec &
referenceM2Ssd()
{
    return findDevice("Sabrent Rocket 4 Plus");
}

const DatasetSpec &
referenceDlrmDataset()
{
    return findDataset("Meta ML 29PB");
}

} // namespace storage
} // namespace dhl
