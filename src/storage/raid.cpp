/**
 * @file
 * Implementation of the RAID model.
 */

#include "storage/raid.hpp"

#include <cmath>
#include <limits>

#include "common/logging.hpp"

namespace dhl {
namespace storage {

std::size_t
parityCount(RaidLevel level)
{
    switch (level) {
      case RaidLevel::None:
        return 0;
      case RaidLevel::Raid5:
        return 1;
      case RaidLevel::Raid6:
        return 2;
    }
    panic("unreachable RAID level");
}

RaidModel::RaidModel(const DeviceSpec &ssd, std::size_t total_ssds,
                     const RaidConfig &cfg)
    : ssd_(ssd), total_(total_ssds), cfg_(cfg)
{
    fatal_if(total_ssds == 0, "need at least one SSD");
    fatal_if(cfg.group_size == 0, "group size must be positive");
    fatal_if(total_ssds % cfg.group_size != 0,
             "group size must divide the SSD count");
    fatal_if(cfg.group_size <= parityCount(cfg.level),
             "group size must exceed the parity count");
    fatal_if(!(ssd.capacity > 0.0), "SSD capacity must be positive");
    groups_ = total_ssds / cfg.group_size;
}

double
RaidModel::rawCapacity() const
{
    return ssd_.capacity * static_cast<double>(total_);
}

double
RaidModel::usableCapacity() const
{
    const std::size_t parity_per_group = parityCount(cfg_.level);
    const std::size_t data_ssds =
        total_ - groups_ * parity_per_group;
    return ssd_.capacity * static_cast<double>(data_ssds);
}

double
RaidModel::capacityOverhead() const
{
    return 1.0 - usableCapacity() / rawCapacity();
}

double
RaidModel::rebuildTime() const
{
    // Peers are read in parallel; the spare's sequential write is the
    // bottleneck (6 GB/s write vs 7.1 GB/s read on the reference M.2).
    const double write_time = ssd_.capacity / ssd_.seq_write_bw;
    const double read_time = ssd_.capacity / ssd_.seq_read_bw;
    return std::max(write_time, read_time);
}

double
RaidModel::groupLossProbability(double p) const
{
    fatal_if(p < 0.0 || p > 1.0,
             "failure probability must be in [0, 1]");
    if (p == 0.0)
        return 0.0;
    const std::size_t n = cfg_.group_size;
    const std::size_t parity = parityCount(cfg_.level);

    // P[failures > parity] = 1 - sum_{k=0..parity} C(n,k) p^k (1-p)^(n-k)
    double survive = 0.0;
    double coeff = 1.0; // C(n, k), built incrementally
    for (std::size_t k = 0; k <= parity; ++k) {
        if (k > 0)
            coeff *= static_cast<double>(n - k + 1) /
                     static_cast<double>(k);
        survive += coeff * std::pow(p, static_cast<double>(k)) *
                   std::pow(1.0 - p, static_cast<double>(n - k));
    }
    return std::min(1.0, std::max(0.0, 1.0 - survive));
}

double
RaidModel::tripLossProbability(double p) const
{
    const double per_group = groupLossProbability(p);
    return 1.0 -
           std::pow(1.0 - per_group, static_cast<double>(groups_));
}

double
RaidModel::meanTripsToDataLoss(double p) const
{
    const double per_trip = tripLossProbability(p);
    if (per_trip <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / per_trip;
}

} // namespace storage
} // namespace dhl
