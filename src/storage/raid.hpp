/**
 * @file
 * RAID protection across a cart's SSDs (paper §III-D: "if an SSD fails
 * in-flight, the endpoint's DHL API will report the error, and RAID
 * and backups can ameliorate the issue").
 *
 * The model quantifies that sentence: given a RAID level and parity
 * group size over the cart's SSD array, it reports the usable capacity
 * after parity, the rebuild time for one failed device, and the
 * probability that a shuttle trip loses data (more failures in one
 * group than its parity can absorb), from which the expected number of
 * trips between data-loss events follows.
 */

#ifndef DHL_STORAGE_RAID_HPP
#define DHL_STORAGE_RAID_HPP

#include <cstddef>

#include "storage/catalog.hpp"

namespace dhl {
namespace storage {

/** Protection level. */
enum class RaidLevel
{
    None,  ///< No parity: any failure loses data.
    Raid5, ///< One parity device per group.
    Raid6, ///< Two parity devices per group.
};

/** Parity devices consumed per group at a level. */
std::size_t parityCount(RaidLevel level);

/** RAID layout over one cart. */
struct RaidConfig
{
    RaidLevel level = RaidLevel::Raid6;

    /** SSDs per parity group (must divide the cart's SSD count and
     *  exceed the parity count). */
    std::size_t group_size = 8;
};

/** The RAID model for one cart's array. */
class RaidModel
{
  public:
    /**
     * @param ssd        Device spec of each SSD.
     * @param total_ssds SSDs on the cart (must be a multiple of the
     *                   group size).
     * @param cfg        RAID layout.
     */
    RaidModel(const DeviceSpec &ssd, std::size_t total_ssds,
              const RaidConfig &cfg = {});

    const RaidConfig &config() const { return cfg_; }
    std::size_t numGroups() const { return groups_; }

    /** Raw capacity of all SSDs, bytes. */
    double rawCapacity() const;

    /** Capacity available to data after parity, bytes. */
    double usableCapacity() const;

    /** Fraction of raw capacity spent on parity, in [0, 1). */
    double capacityOverhead() const;

    /**
     * Time to rebuild one failed device onto a spare: read the rest of
     * its group in parallel and write the spare at the device write
     * bandwidth (the write is the bottleneck for these SSDs).
     */
    double rebuildTime() const;

    /**
     * Probability one parity group loses data during a trip in which
     * each SSD independently fails with probability @p p: the binomial
     * tail P[failures > parity].
     */
    double groupLossProbability(double p) const;

    /** Probability any group on the cart loses data during one trip. */
    double tripLossProbability(double p) const;

    /** Expected trips until a data-loss event (1 / trip loss prob). */
    double meanTripsToDataLoss(double p) const;

  private:
    DeviceSpec ssd_;
    std::size_t total_;
    RaidConfig cfg_;
    std::size_t groups_;
};

} // namespace storage
} // namespace dhl

#endif // DHL_STORAGE_RAID_HPP
