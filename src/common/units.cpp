/**
 * @file
 * Implementation of the human-readable formatting helpers declared in
 * units.hpp.
 */

#include "common/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace dhl {
namespace units {

namespace {

/** One scaled-unit step used by the generic formatter. */
struct UnitStep
{
    double threshold;
    double divisor;
    const char *suffix;
};

/**
 * Pick the largest unit whose threshold the magnitude reaches and format
 * value/divisor with the requested precision.
 */
std::string
formatScaled(double value, int precision,
             const UnitStep *steps, std::size_t n_steps,
             const char *base_suffix)
{
    if (!std::isfinite(value)) {
        // Scaling nan/inf by a unit divisor would print misleading
        // strings like "inf PB"; the bare value is the honest answer.
        return formatSig(value, precision);
    }
    const double mag = std::fabs(value);
    for (std::size_t i = 0; i < n_steps; ++i) {
        if (mag >= steps[i].threshold) {
            return formatSig(value / steps[i].divisor, precision) + " " +
                   steps[i].suffix;
        }
    }
    return formatSig(value, precision) + " " + base_suffix;
}

} // namespace

std::string
formatSig(double value, int significant_digits)
{
    if (significant_digits < 1)
        significant_digits = 1;
    if (value == 0.0)
        return "0";
    if (std::isnan(value))
        return "nan";
    if (std::isinf(value))
        return value > 0 ? "inf" : "-inf";

    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", significant_digits, value);
    return buf;
}

std::string
formatBytes(double bytes, int precision)
{
    static const std::array<UnitStep, 5> steps{{
        {1e15, 1e15, "PB"},
        {1e12, 1e12, "TB"},
        {1e9, 1e9, "GB"},
        {1e6, 1e6, "MB"},
        {1e3, 1e3, "kB"},
    }};
    return formatScaled(bytes, precision, steps.data(), steps.size(), "B");
}

std::string
formatDuration(double seconds, int precision)
{
    static const std::array<UnitStep, 3> big{{
        {86400.0, 86400.0, "days"},
        {3600.0, 3600.0, "h"},
        {60.0, 60.0, "min"},
    }};
    const double mag = std::fabs(seconds);
    if (mag >= 60.0) {
        return formatScaled(seconds, precision, big.data(), big.size(), "s");
    }
    static const std::array<UnitStep, 4> small{{
        {1.0, 1.0, "s"},
        {1e-3, 1e-3, "ms"},
        {1e-6, 1e-6, "us"},
        {1e-9, 1e-9, "ns"},
    }};
    return formatScaled(seconds, precision, small.data(), small.size(), "s");
}

std::string
formatEnergy(double joules, int precision)
{
    static const std::array<UnitStep, 4> steps{{
        {1e9, 1e9, "GJ"},
        {1e6, 1e6, "MJ"},
        {1e3, 1e3, "kJ"},
        {1.0, 1.0, "J"},
    }};
    return formatScaled(joules, precision, steps.data(), steps.size(), "J");
}

std::string
formatPower(double watts, int precision)
{
    static const std::array<UnitStep, 4> steps{{
        {1e9, 1e9, "GW"},
        {1e6, 1e6, "MW"},
        {1e3, 1e3, "kW"},
        {1.0, 1.0, "W"},
    }};
    return formatScaled(watts, precision, steps.data(), steps.size(), "W");
}

std::string
formatBandwidth(double bytes_per_s, int precision)
{
    static const std::array<UnitStep, 4> steps{{
        {1e12, 1e12, "TB/s"},
        {1e9, 1e9, "GB/s"},
        {1e6, 1e6, "MB/s"},
        {1e3, 1e3, "kB/s"},
    }};
    return formatScaled(bytes_per_s, precision, steps.data(), steps.size(),
                        "B/s");
}

} // namespace units
} // namespace dhl
