/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * A thin, explicit wrapper over xoshiro256** so that every simulation run
 * is reproducible from its seed and independent of the C++ standard
 * library's unspecified distribution implementations.  All distributions
 * used by the workload generators (uniform, exponential inter-arrival
 * times, log-normal transfer sizes, Zipf popularity) are implemented here
 * so results are bit-stable across platforms.
 */

#ifndef DHL_COMMON_RANDOM_HPP
#define DHL_COMMON_RANDOM_HPP

#include <cstdint>
#include <vector>

namespace dhl {

/**
 * Derive a decorrelated child seed from a base seed and a stream index
 * (splitmix64 mixing).  Used by the experiment runner to hand every
 * scenario its own deterministic seed: the result depends only on
 * (base, stream), never on which thread evaluates the scenario.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t stream);

/**
 * The complete stream position of an Rng: the four xoshiro256** state
 * words plus the Box-Muller spare cache.  Checkpoint/restore captures
 * this so a restored run consumes exactly the same variate sequence as
 * the uninterrupted one (sim/snapshot.hpp).
 */
struct RngState
{
    std::uint64_t state[4];
    bool has_spare;
    double spare;
};

/** xoshiro256** PRNG with explicit, copyable state. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Exponentially distributed value with the given mean (> 0). */
    double exponential(double mean);

    /** Standard normal via Box-Muller (caches the spare variate). */
    double normal(double mean = 0.0, double stddev = 1.0);

    /** Log-normal with the given parameters of the underlying normal. */
    double lognormal(double mu, double sigma);

    /**
     * Zipf-distributed rank in [0, n) with exponent @p s, via inverse-CDF
     * table lookup.  Use ZipfTable for repeated draws over the same (n, s).
     */
    std::size_t zipf(std::size_t n, double s);

    /** Capture the exact stream position. */
    RngState saveState() const;

    /** Resume from a captured stream position. */
    void restoreState(const RngState &s);

  private:
    std::uint64_t state_[4];
    bool has_spare_;
    double spare_;
};

/** Precomputed inverse-CDF table for repeated Zipf draws. */
class ZipfTable
{
  public:
    /**
     * @param n  Number of ranks (> 0).
     * @param s  Zipf exponent (>= 0; 0 degenerates to uniform).
     */
    ZipfTable(std::size_t n, double s);

    /** Draw a rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace dhl

#endif // DHL_COMMON_RANDOM_HPP
