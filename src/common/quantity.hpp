/**
 * @file
 * Compile-time dimensional analysis for the DHL library (`dhl::qty`).
 *
 * Every physical quantity flowing through the model layers is a
 * `Quantity<Dim>`: a single `double` (always in SI base units — seconds,
 * metres, kilograms, bytes, bits) tagged at compile time with its
 * dimension, so that the classic failure modes of physics/energy
 * modelling code — bits-for-bytes, J-for-W, seconds-for-hours — are
 * *compile errors* instead of silently wrong bench tables.
 *
 * Design rules:
 *
 *  - Zero overhead: `sizeof(Quantity<D>) == sizeof(double)`, every
 *    operation is exactly one `double` operation, everything usable in
 *    `constexpr` context.  Release codegen is identical to bare doubles.
 *  - Exponents are rational with denominator 2 (stored doubled), so
 *    `qty::sqrt` is closed over the dimensions the models need
 *    (`sqrt(L/a)` is a time, `sqrt(L*a)` a speed).
 *  - Construction from `double` is *explicit* and the only way out is
 *    the explicit `.value()` escape hatch.  The DES / stats / table
 *    layers stay on `double` and convert at the boundary.
 *  - Bits and bytes are distinct dimensions: assigning a `_Gbps` link
 *    rate to a `BytesPerSecond` field does not compile; conversion is
 *    spelled `toBytesPerSecond(...)` (an explicit /8).
 *  - Data sizes follow the paper's *decimal* convention (1 TB = 1e12 B);
 *    see `common/units.hpp` for the rationale and IEC helpers.
 *
 * The five base dimensions (time, length, mass, data-in-bytes,
 * data-in-bits) cover everything the paper's models exchange; derived
 * units (J, W, Pa, B/s) follow by exponent arithmetic, so e.g.
 * `Joules * BytesPerSecond / Watts` *is* a `Bytes` — the §V-E
 * break-even formula type-checks end to end.
 */

#ifndef DHL_COMMON_QUANTITY_HPP
#define DHL_COMMON_QUANTITY_HPP

#include <cmath>

namespace dhl {
namespace qty {

/**
 * A dimensioned scalar: one double tagged with rational exponents
 * (doubled, i.e. `T2 == 2` means time^1) over the library's five base
 * dimensions.
 *
 * @tparam T2 Doubled exponent of time (seconds).
 * @tparam L2 Doubled exponent of length (metres).
 * @tparam M2 Doubled exponent of mass (kilograms).
 * @tparam D2 Doubled exponent of data (bytes, decimal convention).
 * @tparam B2 Doubled exponent of data (bits).
 */
template <int T2, int L2, int M2, int D2, int B2>
class Quantity
{
  public:
    /** Zero. */
    constexpr Quantity() = default;

    /** Tag a raw value (already in SI base units) with this dimension.
     *  Deliberately explicit: a bare double has no dimension. */
    explicit constexpr Quantity(double v) : v_(v) {}

    /** The explicit escape hatch back to the undimensioned world. */
    constexpr double value() const { return v_; }

    /** Implicit readout for dimensionless ratios only. */
    constexpr operator double() const
        requires(T2 == 0 && L2 == 0 && M2 == 0 && D2 == 0 && B2 == 0)
    {
        return v_;
    }

    //-- Same-dimension arithmetic -------------------------------------

    constexpr Quantity operator+(Quantity o) const
    {
        return Quantity{v_ + o.v_};
    }
    constexpr Quantity operator-(Quantity o) const
    {
        return Quantity{v_ - o.v_};
    }
    constexpr Quantity operator-() const { return Quantity{-v_}; }
    constexpr Quantity operator+() const { return *this; }

    constexpr Quantity &operator+=(Quantity o)
    {
        v_ += o.v_;
        return *this;
    }
    constexpr Quantity &operator-=(Quantity o)
    {
        v_ -= o.v_;
        return *this;
    }

    //-- Dimensionless scaling -----------------------------------------

    constexpr Quantity operator*(double s) const { return Quantity{v_ * s}; }
    constexpr Quantity operator/(double s) const { return Quantity{v_ / s}; }
    friend constexpr Quantity operator*(double s, Quantity q)
    {
        return Quantity{s * q.v_};
    }

    constexpr Quantity &operator*=(double s)
    {
        v_ *= s;
        return *this;
    }
    constexpr Quantity &operator/=(double s)
    {
        v_ /= s;
        return *this;
    }

    //-- Comparisons (same dimension only) -----------------------------

    constexpr bool operator==(Quantity o) const { return v_ == o.v_; }
    constexpr bool operator!=(Quantity o) const { return v_ != o.v_; }
    constexpr bool operator<(Quantity o) const { return v_ < o.v_; }
    constexpr bool operator<=(Quantity o) const { return v_ <= o.v_; }
    constexpr bool operator>(Quantity o) const { return v_ > o.v_; }
    constexpr bool operator>=(Quantity o) const { return v_ >= o.v_; }

  private:
    double v_ = 0.0;
};

//-- Cross-dimension products and quotients ----------------------------

/** Quotient of identical dimensions: a plain (dimensionless) double.
 *  More specialised than the general quotient below, so speedups and
 *  ratios fall out of the type system without `.value()` noise. */
template <int T2, int L2, int M2, int D2, int B2>
constexpr double
operator/(Quantity<T2, L2, M2, D2, B2> a, Quantity<T2, L2, M2, D2, B2> b)
{
    return a.value() / b.value();
}

/** General product: exponents add. */
template <int T2, int L2, int M2, int D2, int B2, int U2, int V2, int W2,
          int X2, int Y2>
constexpr Quantity<T2 + U2, L2 + V2, M2 + W2, D2 + X2, B2 + Y2>
operator*(Quantity<T2, L2, M2, D2, B2> a, Quantity<U2, V2, W2, X2, Y2> b)
{
    return Quantity<T2 + U2, L2 + V2, M2 + W2, D2 + X2, B2 + Y2>{
        a.value() * b.value()};
}

/** General quotient: exponents subtract. */
template <int T2, int L2, int M2, int D2, int B2, int U2, int V2, int W2,
          int X2, int Y2>
constexpr Quantity<T2 - U2, L2 - V2, M2 - W2, D2 - X2, B2 - Y2>
operator/(Quantity<T2, L2, M2, D2, B2> a, Quantity<U2, V2, W2, X2, Y2> b)
{
    return Quantity<T2 - U2, L2 - V2, M2 - W2, D2 - X2, B2 - Y2>{
        a.value() / b.value()};
}

/** Reciprocal scaling: double / quantity inverts the dimension. */
template <int T2, int L2, int M2, int D2, int B2>
constexpr Quantity<-T2, -L2, -M2, -D2, -B2>
operator/(double s, Quantity<T2, L2, M2, D2, B2> q)
{
    return Quantity<-T2, -L2, -M2, -D2, -B2>{s / q.value()};
}

//-- Dimension-preserving math helpers ---------------------------------

template <int T2, int L2, int M2, int D2, int B2>
constexpr Quantity<T2, L2, M2, D2, B2>
abs(Quantity<T2, L2, M2, D2, B2> q)
{
    return Quantity<T2, L2, M2, D2, B2>{q.value() < 0.0 ? -q.value()
                                                        : q.value()};
}

template <int T2, int L2, int M2, int D2, int B2>
constexpr Quantity<T2, L2, M2, D2, B2>
min(Quantity<T2, L2, M2, D2, B2> a, Quantity<T2, L2, M2, D2, B2> b)
{
    return b < a ? b : a;
}

template <int T2, int L2, int M2, int D2, int B2>
constexpr Quantity<T2, L2, M2, D2, B2>
max(Quantity<T2, L2, M2, D2, B2> a, Quantity<T2, L2, M2, D2, B2> b)
{
    return a < b ? b : a;
}

/**
 * Square root: halves every exponent, which is exact because exponents
 * are stored doubled.  `sqrt(Metres * MetresPerSecondSquared)` is a
 * `MetresPerSecond`; `sqrt(Seconds)` is representable as s^(1/2).
 * Taking the root of a quantity that already has half-integer exponents
 * (quarter roots) is rejected at compile time.
 */
template <int T2, int L2, int M2, int D2, int B2>
inline Quantity<T2 / 2, L2 / 2, M2 / 2, D2 / 2, B2 / 2>
sqrt(Quantity<T2, L2, M2, D2, B2> q)
{
    static_assert(T2 % 2 == 0 && L2 % 2 == 0 && M2 % 2 == 0 &&
                      D2 % 2 == 0 && B2 % 2 == 0,
                  "sqrt would need quarter-integer dimension exponents");
    return Quantity<T2 / 2, L2 / 2, M2 / 2, D2 / 2, B2 / 2>{
        std::sqrt(q.value())};
}

//-- Named dimensions --------------------------------------------------

namespace detail {
/** Build a Quantity from whole exponents (time, length, mass, bytes,
 *  bits). */
template <int T, int L, int M, int D, int B>
using Unit = Quantity<2 * T, 2 * L, 2 * M, 2 * D, 2 * B>;
} // namespace detail

using Dimensionless = detail::Unit<0, 0, 0, 0, 0>;

// Time.
using Seconds = detail::Unit<1, 0, 0, 0, 0>;
using Hertz = detail::Unit<-1, 0, 0, 0, 0>;

// Space.
using Metres = detail::Unit<0, 1, 0, 0, 0>;
using SquareMetres = detail::Unit<0, 2, 0, 0, 0>;
using CubicMetres = detail::Unit<0, 3, 0, 0, 0>;

// Kinematics.
using MetresPerSecond = detail::Unit<-1, 1, 0, 0, 0>;
using MetresPerSecondSquared = detail::Unit<-2, 1, 0, 0, 0>;

// Mass and mechanics.
using Kilograms = detail::Unit<0, 0, 1, 0, 0>;
using KilogramsPerCubicMetre = detail::Unit<0, -3, 1, 0, 0>;
using Newtons = detail::Unit<-2, 1, 1, 0, 0>;
using Pascals = detail::Unit<-2, -1, 1, 0, 0>;

// Energy and power.
using Joules = detail::Unit<-2, 2, 1, 0, 0>;
using Watts = detail::Unit<-3, 2, 1, 0, 0>;

// Data (decimal convention, see file comment).
using Bytes = detail::Unit<0, 0, 0, 1, 0>;
using BytesPerSecond = detail::Unit<-1, 0, 0, 1, 0>;
using Bits = detail::Unit<0, 0, 0, 0, 1>;
using BitsPerSecond = detail::Unit<-1, 0, 0, 0, 1>;

// Cross-cutting figures of merit.
using JoulesPerByte = detail::Unit<-2, 2, 1, -1, 0>;

static_assert(sizeof(Seconds) == sizeof(double),
              "Quantity must stay a bare double in memory");
static_assert(sizeof(Joules) == sizeof(double),
              "Quantity must stay a bare double in memory");

//-- Typed constructors (mirror common/units.hpp) ----------------------

// Time.
constexpr Seconds seconds(double n) { return Seconds{n}; }
constexpr Seconds milliseconds(double n) { return Seconds{n * 1e-3}; }
constexpr Seconds minutes(double n) { return Seconds{n * 60.0}; }
constexpr Seconds hours(double n) { return Seconds{n * 3600.0}; }
constexpr Seconds days(double n) { return Seconds{n * 86400.0}; }

// Space.
constexpr Metres metres(double n) { return Metres{n}; }
constexpr Metres millimetres(double n) { return Metres{n * 1e-3}; }
constexpr Metres kilometres(double n) { return Metres{n * 1e3}; }
constexpr SquareMetres squareMetres(double n) { return SquareMetres{n}; }
constexpr CubicMetres cubicMetres(double n) { return CubicMetres{n}; }

// Kinematics.
constexpr MetresPerSecond metresPerSecond(double n)
{
    return MetresPerSecond{n};
}
constexpr MetresPerSecondSquared metresPerSecondSquared(double n)
{
    return MetresPerSecondSquared{n};
}

// Mass.
constexpr Kilograms kilograms(double n) { return Kilograms{n}; }
constexpr Kilograms grams(double n) { return Kilograms{n * 1e-3}; }

// Energy / power.
constexpr Joules joules(double n) { return Joules{n}; }
constexpr Joules kilojoules(double n) { return Joules{n * 1e3}; }
constexpr Joules megajoules(double n) { return Joules{n * 1e6}; }
constexpr Watts watts(double n) { return Watts{n}; }
constexpr Watts kilowatts(double n) { return Watts{n * 1e3}; }
constexpr Watts megawatts(double n) { return Watts{n * 1e6}; }

// Data sizes (decimal, matching the paper).
constexpr Bytes bytes(double n) { return Bytes{n}; }
constexpr Bytes kilobytes(double n) { return Bytes{n * 1e3}; }
constexpr Bytes megabytes(double n) { return Bytes{n * 1e6}; }
constexpr Bytes gigabytes(double n) { return Bytes{n * 1e9}; }
constexpr Bytes terabytes(double n) { return Bytes{n * 1e12}; }
constexpr Bytes petabytes(double n) { return Bytes{n * 1e15}; }
constexpr Bits bits(double n) { return Bits{n}; }

// Link rates.  Note these are *bit* rates: converting to the byte-based
// storage/bandwidth world requires an explicit toBytesPerSecond().
constexpr BitsPerSecond bitsPerSecond(double n) { return BitsPerSecond{n}; }
constexpr BitsPerSecond gigabitsPerSecond(double gbps)
{
    return BitsPerSecond{gbps * 1e9};
}
constexpr BitsPerSecond terabitsPerSecond(double tbps)
{
    return BitsPerSecond{tbps * 1e12};
}
constexpr BytesPerSecond bytesPerSecond(double n)
{
    return BytesPerSecond{n};
}

// Pressure.
constexpr Pascals pascals(double n) { return Pascals{n}; }
constexpr Pascals millibar(double n) { return Pascals{n * 100.0}; }

//-- Explicit bits <-> bytes conversions -------------------------------

constexpr Bytes toBytes(Bits b) { return Bytes{b.value() / 8.0}; }
constexpr Bits toBits(Bytes b) { return Bits{b.value() * 8.0}; }
constexpr BytesPerSecond toBytesPerSecond(BitsPerSecond r)
{
    return BytesPerSecond{r.value() / 8.0};
}
constexpr BitsPerSecond toBitsPerSecond(BytesPerSecond r)
{
    return BitsPerSecond{r.value() * 8.0};
}

//-- User-defined literals ---------------------------------------------

inline namespace literals {

// clang-format off
constexpr Seconds operator""_s(long double n)    { return Seconds{static_cast<double>(n)}; }
constexpr Seconds operator""_s(unsigned long long n) { return Seconds{static_cast<double>(n)}; }
constexpr Seconds operator""_ms(long double n)   { return milliseconds(static_cast<double>(n)); }
constexpr Seconds operator""_min(long double n)  { return minutes(static_cast<double>(n)); }
constexpr Seconds operator""_h(long double n)    { return hours(static_cast<double>(n)); }
constexpr Seconds operator""_days(long double n) { return days(static_cast<double>(n)); }

constexpr Metres operator""_m(long double n)     { return Metres{static_cast<double>(n)}; }
constexpr Metres operator""_m(unsigned long long n) { return Metres{static_cast<double>(n)}; }
constexpr Metres operator""_mm(long double n)    { return millimetres(static_cast<double>(n)); }
constexpr Metres operator""_km(long double n)    { return kilometres(static_cast<double>(n)); }

constexpr MetresPerSecond operator""_mps(long double n) { return MetresPerSecond{static_cast<double>(n)}; }
constexpr MetresPerSecond operator""_mps(unsigned long long n) { return MetresPerSecond{static_cast<double>(n)}; }
constexpr MetresPerSecondSquared operator""_mps2(long double n) { return MetresPerSecondSquared{static_cast<double>(n)}; }
constexpr MetresPerSecondSquared operator""_mps2(unsigned long long n) { return MetresPerSecondSquared{static_cast<double>(n)}; }

constexpr Kilograms operator""_kg(long double n) { return Kilograms{static_cast<double>(n)}; }
constexpr Kilograms operator""_g(long double n)  { return grams(static_cast<double>(n)); }

constexpr Joules operator""_J(long double n)     { return Joules{static_cast<double>(n)}; }
constexpr Joules operator""_kJ(long double n)    { return kilojoules(static_cast<double>(n)); }
constexpr Joules operator""_MJ(long double n)    { return megajoules(static_cast<double>(n)); }
constexpr Watts operator""_W(long double n)      { return Watts{static_cast<double>(n)}; }
constexpr Watts operator""_kW(long double n)     { return kilowatts(static_cast<double>(n)); }
constexpr Watts operator""_MW(long double n)     { return megawatts(static_cast<double>(n)); }

constexpr Bytes operator""_B(long double n)      { return Bytes{static_cast<double>(n)}; }
constexpr Bytes operator""_B(unsigned long long n) { return Bytes{static_cast<double>(n)}; }
constexpr Bytes operator""_kB(long double n)     { return kilobytes(static_cast<double>(n)); }
constexpr Bytes operator""_MB(long double n)     { return megabytes(static_cast<double>(n)); }
constexpr Bytes operator""_GB(long double n)     { return gigabytes(static_cast<double>(n)); }
constexpr Bytes operator""_TB(long double n)     { return terabytes(static_cast<double>(n)); }
constexpr Bytes operator""_PB(long double n)     { return petabytes(static_cast<double>(n)); }

constexpr Bits operator""_b(long double n)       { return Bits{static_cast<double>(n)}; }
constexpr BitsPerSecond operator""_Gbps(long double n) { return gigabitsPerSecond(static_cast<double>(n)); }
constexpr BitsPerSecond operator""_Gbps(unsigned long long n) { return gigabitsPerSecond(static_cast<double>(n)); }
constexpr BitsPerSecond operator""_Tbps(long double n) { return terabitsPerSecond(static_cast<double>(n)); }

constexpr Pascals operator""_Pa(long double n)   { return Pascals{static_cast<double>(n)}; }
constexpr Pascals operator""_mbar(long double n) { return millibar(static_cast<double>(n)); }
// clang-format on

} // namespace literals

//-- Typed physical constants ------------------------------------------

/** Standard gravitational acceleration. */
inline constexpr MetresPerSecondSquared kGravity{9.80665};

/** Standard atmospheric pressure. */
inline constexpr Pascals kAtmosphere{101325.0};

} // namespace qty
} // namespace dhl

#endif // DHL_COMMON_QUANTITY_HPP
