/**
 * @file
 * Implementation of the argument parser.
 */

#include "common/args.hpp"

#include <cstdlib>
#include <iomanip>

#include "common/logging.hpp"

namespace dhl {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{}

void
ArgParser::addOption(const std::string &name, const std::string &help,
                     const std::string &default_value)
{
    fatal_if(name.empty(), "option needs a name");
    fatal_if(options_.count(name) != 0, "duplicate option: --" + name);
    options_.emplace(name, Option{help, default_value, false, false, ""});
}

void
ArgParser::addSwitch(const std::string &name, const std::string &help)
{
    fatal_if(name.empty(), "switch needs a name");
    fatal_if(options_.count(name) != 0, "duplicate option: --" + name);
    options_.emplace(name, Option{help, "", true, false, ""});
}

void
ArgParser::addPositional(const std::string &name, const std::string &help,
                         bool required)
{
    fatal_if(name.empty(), "positional needs a name");
    positionals_.push_back(Positional{name, help, required, false, ""});
}

bool
ArgParser::parse(int argc, const char *const *argv, std::ostream &out)
{
    std::size_t next_positional = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(out);
            return false;
        }
        if (arg.rfind("--", 0) == 0) {
            std::string name = arg.substr(2);
            std::string inline_value;
            bool has_inline = false;
            const auto eq = name.find('=');
            if (eq != std::string::npos) {
                inline_value = name.substr(eq + 1);
                name = name.substr(0, eq);
                has_inline = true;
            }
            auto it = options_.find(name);
            fatal_if(it == options_.end(), "unknown flag: --" + name);
            Option &opt = it->second;
            opt.provided = true;
            if (opt.is_switch) {
                fatal_if(has_inline,
                         "switch --" + name + " takes no value");
                opt.value = "1";
            } else if (has_inline) {
                opt.value = inline_value;
            } else {
                fatal_if(i + 1 >= argc,
                         "flag --" + name + " needs a value");
                opt.value = argv[++i];
            }
        } else {
            fatal_if(next_positional >= positionals_.size(),
                     "unexpected positional argument: " + arg);
            positionals_[next_positional].value = arg;
            positionals_[next_positional].provided = true;
            ++next_positional;
        }
    }
    for (const auto &p : positionals_) {
        fatal_if(p.required && !p.provided,
                 "missing required argument: <" + p.name + ">");
    }
    return true;
}

const ArgParser::Option &
ArgParser::find(const std::string &name) const
{
    auto it = options_.find(name);
    fatal_if(it == options_.end(), "unregistered option: --" + name);
    return it->second;
}

std::string
ArgParser::get(const std::string &name) const
{
    const Option &opt = find(name);
    return opt.provided ? opt.value : opt.default_value;
}

double
ArgParser::getDouble(const std::string &name) const
{
    const std::string v = get(name);
    char *end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    fatal_if(end == v.c_str() || *end != '\0',
             "--" + name + " expects a number, got '" + v + "'");
    return d;
}

long
ArgParser::getInt(const std::string &name) const
{
    const std::string v = get(name);
    char *end = nullptr;
    const long l = std::strtol(v.c_str(), &end, 10);
    fatal_if(end == v.c_str() || *end != '\0',
             "--" + name + " expects an integer, got '" + v + "'");
    return l;
}

bool
ArgParser::getSwitch(const std::string &name) const
{
    const Option &opt = find(name);
    fatal_if(!opt.is_switch, "--" + name + " is not a switch");
    return opt.provided;
}

bool
ArgParser::provided(const std::string &name) const
{
    return find(name).provided;
}

std::string
ArgParser::positional(const std::string &name) const
{
    for (const auto &p : positionals_) {
        if (p.name == name) {
            fatal_if(p.required && !p.provided,
                     "missing required argument: <" + name + ">");
            return p.value;
        }
    }
    fatal("unregistered positional: " + name);
}

void
ArgParser::printHelp(std::ostream &os) const
{
    os << program_ << " — " << description_ << "\n\nUsage:\n  "
       << program_;
    for (const auto &p : positionals_)
        os << (p.required ? " <" + p.name + ">" : " [" + p.name + "]");
    os << " [flags]\n";
    if (!positionals_.empty()) {
        os << "\nArguments:\n";
        for (const auto &p : positionals_) {
            os << "  " << std::left << std::setw(18) << p.name << " "
               << p.help << "\n";
        }
    }
    if (!options_.empty()) {
        os << "\nFlags:\n";
        for (const auto &[name, opt] : options_) {
            std::string label =
                "--" + name + (opt.is_switch ? "" : " <v>");
            os << "  " << std::left << std::setw(22) << label << " "
               << opt.help;
            if (!opt.is_switch && !opt.default_value.empty())
                os << " (default: " << opt.default_value << ")";
            os << "\n";
        }
    }
    os << "  " << std::left << std::setw(22) << "--help"
       << " show this message\n";
}

} // namespace dhl
