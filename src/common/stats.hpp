/**
 * @file
 * A small, gem5-flavoured statistics framework.
 *
 * Simulation objects register named statistics in a StatGroup; groups nest
 * to form a hierarchy that can be dumped to any ostream at the end of a
 * run.  Statistic kinds:
 *
 *  - Scalar:       a single settable value (e.g. final energy).
 *  - Counter:      a monotonically increasing event count.
 *  - Accumulator:  running sum plus sample statistics (min/max/mean/
 *                  stddev, Welford's algorithm).
 *  - Histogram:    fixed-width binning over a configured range.
 *  - Formula:      a lazily evaluated derived value (e.g. bandwidth =
 *                  bytes / time), captured as a callable.
 *
 * The framework is intentionally single-threaded, like the DES kernel it
 * instruments.
 *
 * Concurrency audit (experiment-execution layer): there is NO global
 * stats registry — every StatGroup hierarchy is owned by the simulation
 * object that created it, so concurrently-running experiment scenarios
 * that each build their own DhlSimulation / TrainingSim never share
 * statistics state.  The contract for parallel scenario execution is
 * therefore: construct stats (and the simulations that own them)
 * *inside* the scenario closure; never capture one StatGroup, Formula
 * callable, or simulation instance in two scenarios.  Formula deserves
 * extra care because it captures arbitrary callables — a Formula must
 * only reference state owned by its own group's simulation.
 */

#ifndef DHL_COMMON_STATS_HPP
#define DHL_COMMON_STATS_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace dhl {
namespace stats {

/** Base class for all statistics: a name, a description, a dump hook. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~StatBase() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Write "name value # desc" lines (gem5 stats.txt style). */
    virtual void dump(std::ostream &os, const std::string &prefix) const = 0;

    /** Reset to the initial state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A single settable scalar value. */
class Scalar : public StatBase
{
  public:
    Scalar(std::string name, std::string desc, double initial = 0.0)
        : StatBase(std::move(name), std::move(desc)), value_(initial)
    {}

    double value() const { return value_; }
    void set(double v) { value_ = v; }
    void add(double v) { value_ += v; }

    Scalar &operator=(double v) { value_ = v; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_;
};

/** A monotonically increasing event counter. */
class Counter : public StatBase
{
  public:
    Counter(std::string name, std::string desc)
        : StatBase(std::move(name), std::move(desc)), count_(0)
    {}

    std::uint64_t value() const { return count_; }
    void increment(std::uint64_t by = 1) { count_ += by; }
    Counter &operator++() { ++count_; return *this; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { count_ = 0; }

  private:
    std::uint64_t count_;
};

/** Running sum with sample statistics (Welford's online algorithm). */
class Accumulator : public StatBase
{
  public:
    Accumulator(std::string name, std::string desc)
        : StatBase(std::move(name), std::move(desc))
    {
        reset();
    }

    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double min() const { return min_; }
    double max() const { return max_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Sample standard deviation (n-1 denominator); 0 for n < 2. */
    double stddev() const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    std::uint64_t n_;
    double sum_;
    double min_;
    double max_;
    double mean_;
    double m2_;
};

/** Fixed-width histogram over [lo, hi) with under/overflow buckets. */
class Histogram : public StatBase
{
  public:
    /**
     * @param name     Statistic name.
     * @param desc     Description.
     * @param lo       Inclusive lower bound of the binned range.
     * @param hi       Exclusive upper bound of the binned range.
     * @param n_bins   Number of equal-width bins (>= 1).
     */
    Histogram(std::string name, std::string desc,
              double lo, double hi, std::size_t n_bins);

    void sample(double v);

    std::uint64_t totalSamples() const { return total_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::size_t numBins() const { return bins_.size(); }
    std::uint64_t binCount(std::size_t i) const { return bins_.at(i); }
    double binLow(std::size_t i) const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t underflow_;
    std::uint64_t overflow_;
    std::uint64_t total_;
};

/**
 * The @p p-th percentile (0 <= p <= 100) of @p values by linear
 * interpolation between closest ranks (the common "exclusive of
 * nothing" definition: percentile(v, 0) = min, percentile(v, 100) =
 * max).  Sorts a copy; fatal() on an empty sample or p outside
 * [0, 100].  Bench code uses this for P99 open latency (E18) and
 * bootstrap confidence intervals (E17).
 *
 * Pinned edge behaviour (QuantileSketch must agree on small samples,
 * so these are contract, not accident):
 *  - n = 1: the rank is 0 for every p, so percentile({x}, p) == x for
 *    all p in [0, 100].
 *  - Duplicate values: interpolation happens between *sorted ranks*,
 *    so a run of equal values is a plateau — any p whose fractional
 *    rank falls inside the run returns exactly that value, with no
 *    blending against neighbouring distinct values.
 */
double percentile(std::vector<double> values, double p);

/**
 * Streaming quantile estimator with O(1) memory in the sample count:
 * a fixed-bin CDF sketch over a configured value range, fronted by an
 * exact buffer for small samples (the capacity-planning subsystem
 * feeds it millions of scenario latencies; DESIGN.md §15).
 *
 * Contract:
 *  - While count() <= exactCapacity(), quantile() returns exactly
 *    stats::percentile() of the samples so far (same rank convention,
 *    same n = 1 and duplicate-value behaviour).
 *  - Beyond that, the estimate comes from the binned CDF: the error
 *    of quantile(p) is bounded by one bin width, (hi - lo) / bins,
 *    for quantiles whose true value lies inside [lo, hi).
 *  - Samples outside [lo, hi) are clamped into the end bins, but the
 *    running min/max stay exact, so quantile(0) and quantile(100) are
 *    always the true extremes and every estimate is clamped into
 *    [min, max].
 *
 * Insertion order is part of no contract: the sketch's state after n
 * samples depends only on the multiset of values, so parallel
 * planners that stream the same scenario set in any order agree
 * byte-for-byte.
 */
class QuantileSketch
{
  public:
    /**
     * @param lo        Inclusive lower edge of the binned range.
     * @param hi        Exclusive upper edge (must be > lo).
     * @param n_bins    Equal-width bins (>= 1); error bound is
     *                  (hi - lo) / n_bins.
     * @param exact_capacity  Samples kept exactly before the sketch
     *                  switches to the binned estimate.
     */
    QuantileSketch(double lo, double hi, std::size_t n_bins = 4096,
                   std::size_t exact_capacity = 256);

    /** Record one sample (finite; fatal() on NaN). */
    void sample(double v);

    std::uint64_t count() const { return n_; }
    std::size_t exactCapacity() const { return exact_cap_; }
    /** True while quantile() is still exact (n <= exactCapacity()). */
    bool exact() const { return n_ <= exact_cap_; }

    /** Smallest sample so far; fatal() when empty. */
    double min() const;
    /** Largest sample so far; fatal() when empty. */
    double max() const;

    /**
     * Estimate the p-th percentile (0 <= p <= 100), following the
     * stats::percentile rank convention; fatal() when empty or p is
     * out of range.
     */
    double quantile(double p) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> bins_;
    std::vector<double> exact_;
    std::size_t exact_cap_;
    std::uint64_t n_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Jain's fairness index of @p values: (sum x)^2 / (n * sum x^2).
 * Ranges over (0, 1]; 1 means perfectly equal shares, 1/n means one
 * entry holds everything.  The all-zero sample is defined as 1.0
 * (nothing allocated is trivially fair).  fatal() on an empty sample
 * or a negative value.  The TE frontier experiment (E20) reports this
 * over per-tenant goodput.
 */
double jainFairnessIndex(const std::vector<double> &values);

/**
 * Weighted Jain index: each value is normalised by its weight
 * (x_i / w_i) before the index is taken, so a tenant receiving
 * exactly its weighted fair share scores 1.0.  Sizes must match and
 * every weight must be > 0; fatal() otherwise.
 */
double jainFairnessIndex(const std::vector<double> &values,
                         const std::vector<double> &weights);

/**
 * Open-loop SLO accounting for one serving stage (src/serve): request
 * dispositions (offered / served / deferred / shed), delivered bytes,
 * and the full completion-latency sample set so tail percentiles
 * (P99/P999) are exact rather than estimated.  Latency is measured
 * from the request's *intended* open-loop arrival time, so queueing
 * delay — including admission deferral — is part of the tail, which is
 * what makes the accounting open-loop (the paper's closed-loop batch
 * harnesses cannot see that delay at all).
 *
 * Plain accounting object, not a StatBase: the serve layer owns one
 * per stage and snapshots/restores them through its own checkpoint
 * path (common/ cannot depend on sim/snapshot).
 */
class SloAccumulator
{
  public:
    /** A request whose arrival falls in this stage. */
    void offer() { ++offered_; }

    /** A request queued at admission (counted once per request). */
    void defer() { ++deferred_; }

    /** A request dropped because the pending queue was full. */
    void shed() { ++shed_; }

    /** A completed request: open-loop latency and delivered bytes. */
    void complete(double latency, double bytes);

    std::uint64_t offered() const { return offered_; }
    std::uint64_t served() const { return served_; }
    std::uint64_t deferred() const { return deferred_; }
    std::uint64_t shed() const { return shed_; }
    double bytesDelivered() const { return bytes_; }

    /** Completion-latency percentile; 0 when nothing completed. */
    double latencyPercentile(double p) const;

    /** The raw completion-latency samples, in completion order. */
    const std::vector<double> &latencies() const { return latencies_; }

    /** Rebuild from checkpointed state (serve-layer restore path). */
    void restore(std::uint64_t offered, std::uint64_t deferred,
                 std::uint64_t shed, double bytes,
                 std::vector<double> latencies);

  private:
    std::uint64_t offered_ = 0;
    std::uint64_t served_ = 0;
    std::uint64_t deferred_ = 0;
    std::uint64_t shed_ = 0;
    double bytes_ = 0.0;
    std::vector<double> latencies_;
};

/** A derived value evaluated lazily at dump time. */
class Formula : public StatBase
{
  public:
    using Fn = std::function<double()>;

    Formula(std::string name, std::string desc, Fn fn)
        : StatBase(std::move(name), std::move(desc)), fn_(std::move(fn))
    {}

    double value() const { return fn_ ? fn_() : 0.0; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override {}

  private:
    Fn fn_;
};

/**
 * A named group of statistics.  Groups own their stats and may own child
 * groups; dump() walks the hierarchy depth-first producing dotted
 * "parent.child.stat" names.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    /** Create and register a statistic; the group retains ownership. */
    Scalar &addScalar(const std::string &name, const std::string &desc);
    Counter &addCounter(const std::string &name, const std::string &desc);
    Accumulator &addAccumulator(const std::string &name,
                                const std::string &desc);
    Histogram &addHistogram(const std::string &name, const std::string &desc,
                            double lo, double hi, std::size_t n_bins);
    Formula &addFormula(const std::string &name, const std::string &desc,
                        Formula::Fn fn);

    /** Create and register a child group. */
    StatGroup &addGroup(const std::string &name);

    /** Find a stat by name within this group (not recursive); null if
     * absent. */
    const StatBase *find(const std::string &name) const;

    /** Dump all stats in this group and its children. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Reset all stats in this group and its children. */
    void resetAll();

    std::size_t numStats() const { return stats_.size(); }
    std::size_t numGroups() const { return children_.size(); }

  private:
    std::string name_;
    std::vector<std::unique_ptr<StatBase>> stats_;
    std::vector<std::unique_ptr<StatGroup>> children_;
};

} // namespace stats
} // namespace dhl

#endif // DHL_COMMON_STATS_HPP
