/**
 * @file
 * Implementation of the logging / error primitives.
 */

#include "common/logging.hpp"

#include <iostream>
#include <utility>

namespace dhl {

Logger::Logger()
    : level_(LogLevel::Warn),
      sink_([](LogLevel lvl, const std::string &msg) {
          const char *tag = "";
          switch (lvl) {
            case LogLevel::Warn:
              tag = "warn: ";
              break;
            case LogLevel::Inform:
              tag = "info: ";
              break;
            case LogLevel::Debug:
              tag = "debug: ";
              break;
            default:
              break;
          }
          std::cerr << tag << msg << "\n";
      })
{}

Logger &
Logger::global()
{
    static Logger instance;
    return instance;
}

LogLevel
Logger::level() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return level_;
}

LogLevel
Logger::setLevel(LogLevel lvl)
{
    std::lock_guard<std::mutex> lock(mutex_);
    LogLevel prev = level_;
    level_ = lvl;
    return prev;
}

Logger::Sink
Logger::setSink(Sink sink)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Sink prev = std::move(sink_);
    sink_ = std::move(sink);
    return prev;
}

void
Logger::log(LogLevel lvl, const std::string &msg)
{
    // The sink runs under the lock so concurrent scenarios never
    // interleave their output lines.
    std::lock_guard<std::mutex> lock(mutex_);
    if (static_cast<int>(lvl) <= static_cast<int>(level_) && sink_)
        sink_(lvl, msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

void
fatalCold(const char *msg)
{
    throw FatalError(msg);
}

void
panicCold(const char *msg)
{
    throw PanicError(msg);
}

void
warn(const std::string &msg)
{
    Logger::global().log(LogLevel::Warn, msg);
}

void
inform(const std::string &msg)
{
    Logger::global().log(LogLevel::Inform, msg);
}

void
debugLog(const std::string &msg)
{
    Logger::global().log(LogLevel::Debug, msg);
}

} // namespace dhl
