/**
 * @file
 * Implementation of the worker pool.
 */

#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace dhl {

/**
 * One parallelFor call.  Participants (workers and the calling thread)
 * claim indices from next_ until the range is exhausted; done_ counts
 * finished iterations so the caller knows when the batch is complete
 * even while other participants are still inside body().
 */
struct ThreadPool::Batch
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *body = nullptr;

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};

    std::mutex mutex;
    std::condition_variable finished;
    std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t jobs)
{
    if (jobs == 0)
        jobs = hardwareConcurrency();
    workers_.reserve(jobs - 1);
    for (std::size_t i = 1; i < jobs; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

std::size_t
ThreadPool::hardwareConcurrency()
{
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void
ThreadPool::drain(Batch &batch)
{
    for (;;) {
        const std::size_t i = batch.next.fetch_add(1);
        if (i >= batch.n)
            return;
        if (!batch.failed.load()) {
            try {
                (*batch.body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(batch.mutex);
                if (!batch.error)
                    batch.error = std::current_exception();
                batch.failed.store(true);
            }
        }
        if (batch.done.fetch_add(1) + 1 == batch.n) {
            // Last iteration out wakes the waiting caller.
            std::lock_guard<std::mutex> lock(batch.mutex);
            batch.finished.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return shutdown_ || !pending_.empty(); });
            if (pending_.empty()) {
                if (shutdown_)
                    return;
                continue;
            }
            batch = pending_.front();
            // Leave the batch queued so other idle workers can join it;
            // drop it once its range is fully claimed.
            if (batch->next.load() >= batch->n)
                pending_.pop_front();
        }
        if (batch)
            drain(*batch);
        // Claimed-out batches are popped lazily on the next pass.
        std::lock_guard<std::mutex> lock(mutex_);
        while (!pending_.empty() &&
               pending_.front()->next.load() >= pending_.front()->n) {
            pending_.pop_front();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        // Exact-serial fallback: the plain loop, on this thread.
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->body = &body;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_.push_back(batch);
    }
    cv_.notify_all();

    // The caller claims indices too: guarantees progress even when all
    // workers are stuck inside outer iterations (nested parallelFor).
    drain(*batch);

    {
        std::unique_lock<std::mutex> lock(batch->mutex);
        batch->finished.wait(lock, [&] {
            return batch->done.load() >= batch->n;
        });
        if (batch->error)
            std::rethrow_exception(batch->error);
    }
}

} // namespace dhl
