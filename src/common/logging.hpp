/**
 * @file
 * Error-handling and logging primitives in the gem5 idiom.
 *
 * Two error categories, matching the gem5 coding style's guidance:
 *
 *  - panic():  an internal invariant of the library is broken (a bug in
 *              *this* code).  Throws PanicError, which is never meant to
 *              be caught in production use.
 *  - fatal():  the *user's* configuration is invalid (negative track
 *              length, zero-capacity cart, ...).  Throws FatalError so
 *              callers and tests can catch and report it.
 *
 * Plus non-terminating status channels: warn() / inform(), routed through
 * a process-wide Logger whose sink and verbosity are configurable (tests
 * capture them; benches silence inform()).
 *
 * The Logger is the one piece of mutable global state reachable from
 * concurrently-running experiment scenarios, so it is internally
 * synchronised: log() / setLevel() / setSink() may be called from any
 * thread.  A replaced sink must itself tolerate concurrent calls (the
 * default stderr sink does; per-message output is emitted under the
 * logger's lock so lines never interleave).
 */

#ifndef DHL_COMMON_LOGGING_HPP
#define DHL_COMMON_LOGGING_HPP

#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>

namespace dhl {

/** Thrown by fatal(): invalid user input/configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown by panic(): a broken internal invariant (a library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Severity levels for the non-terminating log channels. */
enum class LogLevel
{
    Silent = 0, ///< Suppress everything.
    Warn = 1,   ///< Only warnings.
    Inform = 2, ///< Warnings and informational messages.
    Debug = 3,  ///< Everything, including debug traces.
};

/**
 * Process-wide logger.  Deliberately minimal: a level filter and a
 * replaceable sink.  The default sink writes to stderr.  Thread-safe
 * (see the file comment).
 */
class Logger
{
  public:
    using Sink = std::function<void(LogLevel, const std::string &)>;

    /** The global logger instance. */
    static Logger &global();

    /** Current verbosity. */
    LogLevel level() const;

    /** Set verbosity; returns the previous level. */
    LogLevel setLevel(LogLevel lvl);

    /** Replace the sink; returns the previous sink. */
    Sink setSink(Sink sink);

    /** Emit a message if @p lvl passes the filter. */
    void log(LogLevel lvl, const std::string &msg);

  private:
    Logger();

    mutable std::mutex mutex_;
    LogLevel level_;
    Sink sink_;
};

/** Report an unrecoverable user/configuration error.  Throws FatalError. */
[[noreturn]] void fatal(const std::string &msg);

/** Report a broken internal invariant.  Throws PanicError. */
[[noreturn]] void panic(const std::string &msg);

/** Emit a warning (something may be modelled imperfectly but continues). */
void warn(const std::string &msg);

/** Emit an informational status message. */
void inform(const std::string &msg);

/** Emit a debug trace message. */
void debugLog(const std::string &msg);

/**
 * fatal() with lazy stream formatting:
 *   fatal_if(len <= 0, [&]{ return "track length must be positive"; });
 * kept as a simple overload taking a prebuilt string for clarity.
 */
inline void
fatal_if(bool condition, const std::string &msg)
{
    if (condition)
        fatal(msg);
}

/** panic() helper mirroring fatal_if(). */
inline void
panic_if(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

/**
 * Hot-path overloads: a string literal decays to `const char *`, which
 * is an exact match and therefore preferred over the user conversion to
 * `std::string` above.  The message is only materialised as a string in
 * the failure branch, so guarding a per-event code path with fatal_if /
 * panic_if costs a branch — not a heap-allocating std::string
 * construction per call (which the DES kernel microbenchmarks showed
 * dominating schedule()).
 */
[[noreturn]] void fatalCold(const char *msg);
[[noreturn]] void panicCold(const char *msg);

inline void
fatal_if(bool condition, const char *msg)
{
    if (condition) [[unlikely]]
        fatalCold(msg);
}

inline void
panic_if(bool condition, const char *msg)
{
    if (condition) [[unlikely]]
        panicCold(msg);
}

} // namespace dhl

#endif // DHL_COMMON_LOGGING_HPP
