/**
 * @file
 * A small-buffer-optimised, move-only callable — the DES kernel's
 * replacement for `std::function`.
 *
 * `std::function` keeps only ~16 bytes of inline storage on common
 * standard libraries, so the capture lists typical of simulation events
 * (a couple of pointers plus a few scalars) spill to the heap on every
 * schedule.  `InlineFunction` reserves a caller-chosen buffer (64 bytes
 * by default — a cache line) so those callables are stored in place and
 * the steady-state schedule→fire path performs zero allocations.
 * Callables that are too large, over-aligned, or throwing-move fall back
 * to the heap transparently.
 *
 * Unlike `std::function` it is move-only, which also means it can hold
 * move-only captures (e.g. a `std::unique_ptr`) that `std::function`
 * rejects outright.
 */

#ifndef DHL_COMMON_INLINE_FUNCTION_HPP
#define DHL_COMMON_INLINE_FUNCTION_HPP

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dhl {
namespace common {

template <typename Signature, std::size_t BufferBytes = 64>
class InlineFunction; // primary template left undefined

/**
 * Move-only callable with @p BufferBytes of inline storage.
 *
 * A callable of decayed type `F` is stored inline iff
 *   - `sizeof(F) <= BufferBytes`,
 *   - `alignof(F)` fits the buffer's (max_align_t) alignment, and
 *   - `F` is nothrow-move-constructible (moving the wrapper must not
 *     throw half-way through relocating the callee);
 * otherwise it is heap-allocated and the buffer holds only the pointer.
 *
 * Invoking an empty InlineFunction is undefined (asserted in debug
 * builds); callers are expected to check `operator bool` first, as the
 * simulator does at schedule time.
 */
template <typename R, typename... Args, std::size_t BufferBytes>
class InlineFunction<R(Args...), BufferBytes>
{
    static_assert(BufferBytes >= sizeof(void *),
                  "buffer must at least hold a pointer (heap fallback)");

  public:
    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    InlineFunction(F &&f)
    {
        if constexpr (storedInline<D>()) {
            ::new (static_cast<void *>(&storage_)) D(std::forward<F>(f));
            invoke_ = &invokeInline<D>;
            manage_ = &manageInline<D>;
        } else {
            using Ptr = D *;
            ::new (static_cast<void *>(&storage_))
                Ptr(new D(std::forward<F>(f)));
            invoke_ = &invokeHeap<D>;
            manage_ = &manageHeap<D>;
        }
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this == &other)
            return *this; // self-move leaves the callable intact
        reset();
        moveFrom(other);
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const noexcept { return invoke_ != nullptr; }

    R
    operator()(Args... args)
    {
        assert(invoke_ && "invoking an empty InlineFunction");
        return invoke_(&storage_, std::forward<Args>(args)...);
    }

    /** True if a callable of type @p F would avoid the heap. */
    template <typename F>
    static constexpr bool
    storedInline()
    {
        return sizeof(F) <= BufferBytes &&
               alignof(F) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<F>;
    }

  private:
    enum class Op { RelocateTo, Destroy };

    using Invoke = R (*)(void *, Args...);
    using Manage = void (*)(Op, void *self, void *dest);

    template <typename F>
    static R
    invokeInline(void *self, Args... args)
    {
        return (*std::launder(reinterpret_cast<F *>(self)))(
            std::forward<Args>(args)...);
    }

    template <typename F>
    static R
    invokeHeap(void *self, Args... args)
    {
        return (**std::launder(reinterpret_cast<F **>(self)))(
            std::forward<Args>(args)...);
    }

    template <typename F>
    static void
    manageInline(Op op, void *self, void *dest)
    {
        F *f = std::launder(reinterpret_cast<F *>(self));
        if (op == Op::RelocateTo)
            ::new (dest) F(std::move(*f));
        f->~F();
    }

    template <typename F>
    static void
    manageHeap(Op op, void *self, void *dest)
    {
        F **p = std::launder(reinterpret_cast<F **>(self));
        if (op == Op::RelocateTo)
            ::new (dest) F *(*p); // steal the heap object
        else
            delete *p;
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        if (!other.invoke_)
            return;
        other.manage_(Op::RelocateTo, &other.storage_, &storage_);
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
    }

    void
    reset() noexcept
    {
        if (manage_) {
            manage_(Op::Destroy, &storage_, nullptr);
            invoke_ = nullptr;
            manage_ = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte storage_[BufferBytes];
    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
};

} // namespace common
} // namespace dhl

#endif // DHL_COMMON_INLINE_FUNCTION_HPP
