/**
 * @file
 * A small command-line argument parser for the CLI tool and examples.
 *
 * Supports long flags with values ("--speed 200" or "--speed=200"),
 * boolean switches ("--pipelined"), typed accessors with defaults,
 * strict validation (unknown flags and missing values are fatal), and
 * generated --help text.
 */

#ifndef DHL_COMMON_ARGS_HPP
#define DHL_COMMON_ARGS_HPP

#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace dhl {

/** The parser / registry of known flags. */
class ArgParser
{
  public:
    /**
     * @param program     Program name for the usage line.
     * @param description One-line description for --help.
     */
    ArgParser(std::string program, std::string description);

    /** Register a value flag ("--name <value>"). */
    void addOption(const std::string &name, const std::string &help,
                   const std::string &default_value = "");

    /** Register a boolean switch ("--name"). */
    void addSwitch(const std::string &name, const std::string &help);

    /** Register a positional argument (in order). */
    void addPositional(const std::string &name, const std::string &help,
                       bool required = true);

    /**
     * Parse argv.  fatal() on unknown flags, missing values, or
     * missing required positionals.
     *
     * @return false if --help was requested (help text already
     *         written to @p out), true otherwise.
     */
    bool parse(int argc, const char *const *argv, std::ostream &out);

    /** Value of an option (its default when unset); fatal() if the
     *  name was never registered. */
    std::string get(const std::string &name) const;

    /** Typed accessors with the same semantics. */
    double getDouble(const std::string &name) const;
    long getInt(const std::string &name) const;
    bool getSwitch(const std::string &name) const;

    /** True if the user supplied the flag explicitly. */
    bool provided(const std::string &name) const;

    /** Positional value by name; fatal() if absent and required. */
    std::string positional(const std::string &name) const;

    /** Write the help text. */
    void printHelp(std::ostream &os) const;

  private:
    struct Option
    {
        std::string help;
        std::string default_value;
        bool is_switch;
        bool provided = false;
        std::string value;
    };

    struct Positional
    {
        std::string name;
        std::string help;
        bool required;
        bool provided = false;
        std::string value;
    };

    const Option &find(const std::string &name) const;

    std::string program_;
    std::string description_;
    std::map<std::string, Option> options_;
    std::vector<Positional> positionals_;
};

} // namespace dhl

#endif // DHL_COMMON_ARGS_HPP
