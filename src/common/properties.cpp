/**
 * @file
 * Implementation of the properties format.
 */

#include "common/properties.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"

namespace dhl {

namespace {

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

} // namespace

Properties
Properties::fromString(const std::string &text)
{
    Properties props;
    std::istringstream is(text);
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        fatal_if(eq == std::string::npos,
                 "properties line " + std::to_string(line_no) +
                     " has no '=': " + line);
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        fatal_if(key.empty(), "properties line " +
                                  std::to_string(line_no) +
                                  " has an empty key");
        props.set(key, value);
    }
    return props;
}

Properties
Properties::fromFile(const std::string &path)
{
    std::ifstream file(path);
    fatal_if(!file, "cannot open properties file: " + path);
    std::ostringstream buf;
    buf << file.rdbuf();
    return fromString(buf.str());
}

bool
Properties::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Properties::get(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

double
Properties::getDouble(const std::string &key, double fallback) const
{
    if (!has(key))
        return fallback;
    const std::string v = get(key);
    char *end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    fatal_if(end == v.c_str() || *end != '\0',
             "property '" + key + "' expects a number, got '" + v + "'");
    return d;
}

long
Properties::getInt(const std::string &key, long fallback) const
{
    if (!has(key))
        return fallback;
    const std::string v = get(key);
    char *end = nullptr;
    const long l = std::strtol(v.c_str(), &end, 10);
    fatal_if(end == v.c_str() || *end != '\0',
             "property '" + key + "' expects an integer, got '" + v +
                 "'");
    return l;
}

bool
Properties::getBool(const std::string &key, bool fallback) const
{
    if (!has(key))
        return fallback;
    const std::string v = get(key);
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("property '" + key + "' expects a boolean, got '" + v + "'");
}

void
Properties::set(const std::string &key, const std::string &value)
{
    fatal_if(key.empty(), "property key must not be empty");
    if (values_.count(key) == 0)
        order_.push_back(key);
    values_[key] = value;
}

void
Properties::setDouble(const std::string &key, double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    set(key, os.str());
}

void
Properties::setInt(const std::string &key, long value)
{
    set(key, std::to_string(value));
}

void
Properties::setBool(const std::string &key, bool value)
{
    set(key, value ? "true" : "false");
}

std::string
Properties::toString() const
{
    std::ostringstream os;
    for (const auto &key : order_)
        os << key << " = " << values_.at(key) << "\n";
    return os.str();
}

} // namespace dhl
