/**
 * @file
 * Unit conversion helpers and physical constants used across the DHL
 * library.
 *
 * All quantities in the library are plain `double`s carried in SI base
 * units: seconds, metres, kilograms, joules, watts, bytes.  This header
 * provides named, constexpr conversion helpers so call sites read like the
 * paper ("256 TB", "400 Gbit/s", "1 millibar") rather than as bare powers
 * of ten, plus human-readable formatting used by the bench harness.
 *
 * Data sizes follow the paper's convention of *decimal* units (1 TB =
 * 1e12 bytes; the paper's "29 PB over 400 gbps = 580,000 s" only holds in
 * decimal units).  Binary (IEC) helpers are also provided for
 * completeness.
 */

#ifndef DHL_COMMON_UNITS_HPP
#define DHL_COMMON_UNITS_HPP

#include <cstdint>
#include <string>

#include "common/quantity.hpp"

namespace dhl {
namespace units {

//===========================================================================
// Physical constants
//===========================================================================

/** Standard gravitational acceleration, m/s^2. */
inline constexpr double kGravity = 9.80665;

/** Density of sintered neodymium (NdFeB) magnets, kg/m^3 (paper: 7.5 g/cm^3). */
inline constexpr double kNeodymiumDensity = 7500.0;

/** Density of aluminium, kg/m^3. */
inline constexpr double kAluminiumDensity = 2700.0;

/** Standard atmospheric pressure, Pa. */
inline constexpr double kAtmospherePa = 101325.0;

/** Joules in one kilowatt-hour (3600 s * 1000 W). */
inline constexpr double kJoulesPerKilowattHour = 3.6e6;

//===========================================================================
// SI prefixes
//===========================================================================

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;
inline constexpr double kPeta = 1e15;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;

//===========================================================================
// Data sizes (decimal, matching the paper) -> bytes
//===========================================================================

constexpr double kilobytes(double n) { return n * 1e3; }
constexpr double megabytes(double n) { return n * 1e6; }
constexpr double gigabytes(double n) { return n * 1e9; }
constexpr double terabytes(double n) { return n * 1e12; }
constexpr double petabytes(double n) { return n * 1e15; }

//===========================================================================
// Data sizes (binary / IEC) -> bytes
//===========================================================================

constexpr double kibibytes(double n) { return n * 1024.0; }
constexpr double mebibytes(double n) { return n * 1024.0 * 1024.0; }
constexpr double gibibytes(double n) { return n * 1024.0 * 1024.0 * 1024.0; }
constexpr double tebibytes(double n) { return n * 1099511627776.0; }
constexpr double pebibytes(double n) { return n * 1125899906842624.0; }

//===========================================================================
// Bits <-> bytes and link rates
//===========================================================================

/** Bits -> bytes. */
constexpr double toMegabytes(double b) { return b / 1e6; }

constexpr double bitsToBytes(double bits) { return bits / 8.0; }

/** Bytes -> bits. */
constexpr double bytesToBits(double bytes) { return bytes * 8.0; }

/** A link rate expressed in Gbit/s -> bytes per second. */
constexpr double gigabitsPerSecond(double gbps) { return gbps * 1e9 / 8.0; }

/** A link rate expressed in Tbit/s -> bytes per second. */
constexpr double terabitsPerSecond(double tbps) { return tbps * 1e12 / 8.0; }

/** Bytes per second -> Gbit/s (for reporting). */
constexpr double toGigabitsPerSecond(double bytes_per_s)
{
    return bytes_per_s * 8.0 / 1e9;
}

//===========================================================================
// Time -> seconds
//===========================================================================

constexpr double milliseconds(double n) { return n * 1e-3; }
constexpr double minutes(double n) { return n * 60.0; }
constexpr double hours(double n) { return n * 3600.0; }
constexpr double days(double n) { return n * 86400.0; }

constexpr double toMilliseconds(double s) { return s * 1e3; }
constexpr double toMinutes(double s) { return s / 60.0; }
constexpr double toHours(double s) { return s / 3600.0; }
constexpr double toDays(double s) { return s / 86400.0; }

//===========================================================================
// Mass -> kilograms
//===========================================================================

constexpr double grams(double n) { return n * 1e-3; }
constexpr double toGrams(double kg) { return kg * 1e3; }

//===========================================================================
// Energy / power
//===========================================================================

constexpr double kilojoules(double n) { return n * 1e3; }
constexpr double megajoules(double n) { return n * 1e6; }
constexpr double toKilojoules(double j) { return j / 1e3; }
constexpr double toMegajoules(double j) { return j / 1e6; }

constexpr double kilowatts(double n) { return n * 1e3; }
constexpr double toKilowatts(double w) { return w / 1e3; }

/**
 * Data-movement efficiency in the paper's headline unit, GB per joule.
 *
 * @param bytes   Bytes moved.
 * @param joules  Energy consumed.
 * @return Efficiency in GB/J (decimal gigabytes).
 */
constexpr double gbPerJoule(double bytes, double joules)
{
    return (bytes / 1e9) / joules;
}

//===========================================================================
// Pressure -> pascals
//===========================================================================

constexpr double millibar(double n) { return n * 100.0; }

//===========================================================================
// Formatting helpers (implemented in units.cpp)
//===========================================================================

/** Format a byte count with an auto-selected decimal prefix, e.g. "29 PB". */
std::string formatBytes(double bytes, int precision = 3);

/** Format a duration, e.g. "6.71 days", "8.6 s", "120 ms". */
std::string formatDuration(double seconds, int precision = 3);

/** Format an energy, e.g. "13.92 MJ", "15 kJ". */
std::string formatEnergy(double joules, int precision = 4);

/** Format a power, e.g. "1.75 kW". */
std::string formatPower(double watts, int precision = 4);

/** Format a bandwidth in bytes/s, e.g. "30 TB/s". */
std::string formatBandwidth(double bytes_per_s, int precision = 3);

/**
 * Format a plain double with a fixed number of significant digits,
 * trimming trailing zeros ("8.6", "295.1", "17").
 */
std::string formatSig(double value, int significant_digits = 4);

//===========================================================================
// Typed-quantity overloads (common/quantity.hpp)
//===========================================================================

inline std::string formatBytes(qty::Bytes b, int precision = 3)
{
    return formatBytes(b.value(), precision);
}

inline std::string formatDuration(qty::Seconds s, int precision = 3)
{
    return formatDuration(s.value(), precision);
}

inline std::string formatEnergy(qty::Joules j, int precision = 4)
{
    return formatEnergy(j.value(), precision);
}

inline std::string formatPower(qty::Watts w, int precision = 4)
{
    return formatPower(w.value(), precision);
}

inline std::string formatBandwidth(qty::BytesPerSecond r, int precision = 3)
{
    return formatBandwidth(r.value(), precision);
}

//===========================================================================
// Typed-quantity readouts for the table / report layers
//===========================================================================

constexpr double toMinutes(qty::Seconds s) { return s.value() / 60.0; }
constexpr double toHours(qty::Seconds s) { return s.value() / 3600.0; }
constexpr double toDays(qty::Seconds s) { return s.value() / 86400.0; }
constexpr double toKilojoules(qty::Joules j) { return j.value() / 1e3; }
constexpr double toMegajoules(qty::Joules j) { return j.value() / 1e6; }
constexpr double toKilowatts(qty::Watts w) { return w.value() / 1e3; }

constexpr double toGigabitsPerSecond(qty::BytesPerSecond r)
{
    return r.value() * 8.0 / 1e9;
}

/** Headline GB/J efficiency of a typed data/energy pair (same operation
 *  order as the double overload, so table output is bit-identical). */
constexpr double gbPerJoule(qty::Bytes b, qty::Joules j)
{
    return (b.value() / 1e9) / j.value();
}

} // namespace units
} // namespace dhl

#endif // DHL_COMMON_UNITS_HPP
