/**
 * @file
 * A fixed-size worker pool with a parallelFor / parallelMap API.
 *
 * The pool is built for the experiment-execution layer: a grid of
 * independent, CPU-bound scenario evaluations fanned out across cores.
 * Design points:
 *
 *  - The calling thread participates.  A pool of size N spawns N-1
 *    workers and the caller acts as the Nth, so a pool of size 1 owns
 *    no threads at all and parallelFor degenerates to the plain serial
 *    loop (the --jobs 1 exact-serial fallback).
 *  - Nested submission is safe.  A body running on a worker may itself
 *    call parallelFor on the same pool; the inner call claims indices
 *    with the calling thread, so it always makes progress even when
 *    every worker is busy with outer iterations.
 *  - Exceptions propagate.  The first exception thrown by any body is
 *    captured and rethrown from parallelFor on the calling thread;
 *    remaining indices are abandoned (claimed but not executed).
 *  - Results are deterministic.  parallelMap writes each result into
 *    its own slot, so the output order is the input order regardless
 *    of how iterations interleave.
 */

#ifndef DHL_COMMON_THREAD_POOL_HPP
#define DHL_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dhl {

/** Fixed-size worker pool; see the file comment for the contract. */
class ThreadPool
{
  public:
    /**
     * @param jobs  Total parallelism including the calling thread.
     *              0 selects hardwareConcurrency(); 1 is exact-serial
     *              (no threads are spawned).
     */
    explicit ThreadPool(std::size_t jobs = 0);

    /** Joins all workers; pending helper tasks are drained first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers + the calling thread), >= 1. */
    std::size_t size() const { return workers_.size() + 1; }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static std::size_t hardwareConcurrency();

    /**
     * Run body(i) for every i in [0, n).  Blocks until all iterations
     * finish; rethrows the first exception any iteration threw.  The
     * calling thread executes iterations itself, so this is safe to
     * call from inside another parallelFor body on the same pool.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Map fn over items, preserving order: result[i] == fn(items[i]).
     * Same blocking / exception semantics as parallelFor.
     */
    template <typename T, typename Fn>
    auto
    parallelMap(const std::vector<T> &items, Fn &&fn)
        -> std::vector<decltype(fn(items[std::size_t{0}]))>
    {
        using R = decltype(fn(items[std::size_t{0}]));
        std::vector<R> results(items.size());
        parallelFor(items.size(),
                    [&](std::size_t i) { results[i] = fn(items[i]); });
        return results;
    }

  private:
    struct Batch;

    /** Claim-and-run loop shared by workers and the calling thread. */
    static void drain(Batch &batch);

    void workerLoop();

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<Batch>> pending_;
    bool shutdown_ = false;
};

} // namespace dhl

#endif // DHL_COMMON_THREAD_POOL_HPP
