/**
 * @file
 * Plain-text table and CSV rendering used by the benchmark harness to
 * regenerate the paper's tables.
 *
 * TextTable produces aligned, boxed ASCII tables; the same data can be
 * emitted as CSV so plots (e.g. Figure 6) can be regenerated externally.
 */

#ifndef DHL_COMMON_TABLE_HPP
#define DHL_COMMON_TABLE_HPP

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace dhl {

/** Column alignment for TextTable. */
enum class Align
{
    Left,
    Right,
};

/**
 * An ASCII table builder.  Rows are vectors of preformatted strings;
 * numeric helpers format via units::formatSig.
 */
class TextTable
{
  public:
    /** Construct with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Set per-column alignment (defaults to Right for all columns). */
    void setAlignments(std::vector<Align> aligns);

    /** Append a fully formatted row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator between row groups. */
    void addSeparator();

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numColumns() const { return headers_.size(); }

    /** Render as an aligned, boxed ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (separators are skipped). */
    void printCsv(std::ostream &os) const;

  private:
    struct Row
    {
        bool separator;
        std::vector<std::string> cells;
    };

    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<Row> rows_;
};

/** Format helper: value with fixed significant digits (wraps formatSig). */
std::string cell(double value, int significant_digits = 4);

/** Format helper: "<value>x" multiplier cells, e.g. "295.1x". */
std::string cellTimes(double value, int significant_digits = 4);

} // namespace dhl

#endif // DHL_COMMON_TABLE_HPP
