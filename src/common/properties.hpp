/**
 * @file
 * A small KEY = VALUE properties format for configuration files.
 *
 * Syntax: one `key = value` per line; `#` starts a comment (full-line
 * or trailing); blank lines ignored; keys may be dotted
 * ("lim.efficiency"); whitespace around keys and values is trimmed.
 * Values are stored as strings with typed accessors.
 */

#ifndef DHL_COMMON_PROPERTIES_HPP
#define DHL_COMMON_PROPERTIES_HPP

#include <map>
#include <string>
#include <vector>

namespace dhl {

/** An ordered key/value store with typed accessors. */
class Properties
{
  public:
    Properties() = default;

    /** Parse from text; fatal() on malformed lines. */
    static Properties fromString(const std::string &text);

    /** Load from a file; fatal() if unreadable or malformed. */
    static Properties fromFile(const std::string &path);

    /** True if the key is present. */
    bool has(const std::string &key) const;

    /** String value; @p fallback when absent. */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;

    /** Typed accessors; fatal() on malformed values. */
    double getDouble(const std::string &key, double fallback) const;
    long getInt(const std::string &key, long fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /** Set / overwrite a value. */
    void set(const std::string &key, const std::string &value);
    void setDouble(const std::string &key, double value);
    void setInt(const std::string &key, long value);
    void setBool(const std::string &key, bool value);

    /** Keys in first-insertion order. */
    std::vector<std::string> keys() const { return order_; }

    std::size_t size() const { return values_.size(); }

    /** Render back to the file format (insertion order). */
    std::string toString() const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> order_;
};

} // namespace dhl

#endif // DHL_COMMON_PROPERTIES_HPP
