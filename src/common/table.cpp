/**
 * @file
 * Implementation of the ASCII table / CSV renderer.
 */

#include "common/table.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace dhl {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)),
      aligns_(headers_.size(), Align::Right)
{
    fatal_if(headers_.empty(), "TextTable needs at least one column");
}

void
TextTable::setAlignments(std::vector<Align> aligns)
{
    fatal_if(aligns.size() != headers_.size(),
             "alignment count must match column count");
    aligns_ = std::move(aligns);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    fatal_if(cells.size() != headers_.size(),
             "row cell count must match column count");
    rows_.push_back(Row{false, std::move(cells)});
}

void
TextTable::addSeparator()
{
    rows_.push_back(Row{true, {}});
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.separator)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto print_rule = [&]() {
        os << "+";
        for (auto w : widths)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const auto &s = cells[c];
            const std::size_t pad = widths[c] - s.size();
            if (aligns_[c] == Align::Left)
                os << " " << s << std::string(pad, ' ') << " |";
            else
                os << " " << std::string(pad, ' ') << s << " |";
        }
        os << "\n";
    };

    print_rule();
    print_cells(headers_);
    print_rule();
    for (const auto &row : rows_) {
        if (row.separator)
            print_rule();
        else
            print_cells(row.cells);
    }
    print_rule();
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            const auto &s = cells[c];
            if (s.find_first_of(",\"\n") != std::string::npos) {
                os << '"';
                for (char ch : s) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << s;
            }
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_) {
        if (!row.separator)
            emit(row.cells);
    }
}

std::string
cell(double value, int significant_digits)
{
    return units::formatSig(value, significant_digits);
}

std::string
cellTimes(double value, int significant_digits)
{
    return units::formatSig(value, significant_digits) + "x";
}

} // namespace dhl
