/**
 * @file
 * Implementation of the deterministic RNG and distributions.
 */

#include "common/random.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace dhl {

namespace {

/** splitmix64 step used to expand the seed into the xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream)
{
    // Advance a splitmix64 stream keyed by the base, then fold in the
    // stream index and mix once more; two unequal (base, stream) pairs
    // land on unrelated points of the generator's orbit.
    std::uint64_t x = base;
    std::uint64_t mixed = splitmix64(x);
    x = mixed ^ stream;
    return splitmix64(x);
}

Rng::Rng(std::uint64_t seed)
    : has_spare_(false), spare_(0.0)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    fatal_if(!(hi >= lo), "uniform(lo, hi) requires hi >= lo");
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    fatal_if(hi < lo, "uniformInt(lo, hi) requires hi >= lo");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % span);
}

double
Rng::exponential(double mean)
{
    fatal_if(!(mean > 0.0), "exponential mean must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stddev)
{
    if (has_spare_) {
        has_spare_ = false;
        return mean + stddev * spare_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return mean + stddev * r * std::cos(theta);
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

std::size_t
Rng::zipf(std::size_t n, double s)
{
    ZipfTable table(n, s);
    return table.sample(*this);
}

RngState
Rng::saveState() const
{
    RngState s{};
    for (std::size_t i = 0; i < 4; ++i)
        s.state[i] = state_[i];
    s.has_spare = has_spare_;
    s.spare = spare_;
    return s;
}

void
Rng::restoreState(const RngState &s)
{
    for (std::size_t i = 0; i < 4; ++i)
        state_[i] = s.state[i];
    has_spare_ = s.has_spare;
    spare_ = s.spare;
}

ZipfTable::ZipfTable(std::size_t n, double s)
{
    fatal_if(n == 0, "ZipfTable needs at least one rank");
    fatal_if(s < 0.0, "Zipf exponent must be non-negative");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = acc;
    }
    for (auto &v : cdf_)
        v /= acc;
}

std::size_t
ZipfTable::sample(Rng &rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace dhl
