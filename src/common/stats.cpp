/**
 * @file
 * Implementation of the statistics framework.
 */

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace dhl {
namespace stats {

namespace {

void
dumpLine(std::ostream &os, const std::string &prefix,
         const std::string &name, const std::string &value,
         const std::string &desc)
{
    std::string full = prefix.empty() ? name : prefix + "." + name;
    os << std::left << std::setw(44) << full << " " << std::setw(16) << value
       << " # " << desc << "\n";
}

} // namespace

double
percentile(std::vector<double> values, double p)
{
    fatal_if(values.empty(), "percentile of an empty sample");
    fatal_if(p < 0.0 || p > 100.0, "percentile must be in [0, 100]");
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 *
                        static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

//===========================================================================
// QuantileSketch
//===========================================================================

QuantileSketch::QuantileSketch(double lo, double hi, std::size_t n_bins,
                               std::size_t exact_capacity)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(n_bins)),
      bins_(n_bins, 0),
      exact_cap_(exact_capacity)
{
    fatal_if(n_bins == 0, "QuantileSketch needs at least one bin");
    fatal_if(!(hi > lo), "QuantileSketch range must satisfy hi > lo");
    exact_.reserve(std::min<std::size_t>(exact_cap_, 1024));
}

void
QuantileSketch::sample(double v)
{
    fatal_if(std::isnan(v), "QuantileSketch::sample(NaN)");
    if (n_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++n_;
    // Clamp out-of-range samples into the end bins; min_/max_ keep the
    // true extremes so quantile(0)/quantile(100) stay exact.
    std::size_t idx = 0;
    if (v >= hi_) {
        idx = bins_.size() - 1;
    } else if (v > lo_) {
        idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= bins_.size())
            idx = bins_.size() - 1; // guard against FP edge rounding
    }
    ++bins_[idx];
    if (n_ <= exact_cap_) {
        exact_.push_back(v);
    } else if (!exact_.empty()) {
        exact_.clear();
        exact_.shrink_to_fit(); // the buffer never helps again
    }
}

double
QuantileSketch::min() const
{
    fatal_if(n_ == 0, "QuantileSketch::min of an empty sketch");
    return min_;
}

double
QuantileSketch::max() const
{
    fatal_if(n_ == 0, "QuantileSketch::max of an empty sketch");
    return max_;
}

double
QuantileSketch::quantile(double p) const
{
    fatal_if(n_ == 0, "quantile of an empty sketch");
    fatal_if(p < 0.0 || p > 100.0, "quantile must be in [0, 100]");
    if (n_ <= exact_cap_)
        return percentile(exact_, p);
    if (p == 0.0)
        return min_;
    if (p == 100.0)
        return max_;

    // Same rank convention as percentile(): interpolate between the
    // two bracketing order statistics.  Each one is located through
    // the cumulative counts and placed mid-run inside its bin, so the
    // estimate stays within one bin width of the exact value even
    // when the fractional rank straddles a sparse-tail bin boundary
    // (jumping whole bins there would break the documented bound).
    const auto locate = [this](std::uint64_t idx) {
        std::uint64_t before = 0;
        for (std::size_t b = 0; b < bins_.size(); ++b) {
            const std::uint64_t cnt = bins_[b];
            if (cnt == 0)
                continue;
            if (idx <= before + cnt - 1) {
                const double into =
                    (static_cast<double>(idx - before) + 0.5) /
                    static_cast<double>(cnt);
                return lo_ + width_ * (static_cast<double>(b) + into);
            }
            before += cnt;
        }
        return max_; // unreachable: the bins always sum to n_
    };
    const double rank = p / 100.0 * static_cast<double>(n_ - 1);
    const auto lo_idx = static_cast<std::uint64_t>(rank);
    const double frac = rank - static_cast<double>(lo_idx);
    double v = locate(lo_idx);
    if (frac > 0.0)
        v += frac * (locate(lo_idx + 1) - v);
    return std::min(std::max(v, min_), max_);
}

double
jainFairnessIndex(const std::vector<double> &values)
{
    fatal_if(values.empty(), "jainFairnessIndex of an empty sample");
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double v : values) {
        fatal_if(v < 0.0, "jainFairnessIndex: values must be >= 0");
        sum += v;
        sum_sq += v * v;
    }
    if (sum_sq == 0.0)
        return 1.0; // Nothing allocated is trivially fair.
    return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

double
jainFairnessIndex(const std::vector<double> &values,
                  const std::vector<double> &weights)
{
    fatal_if(values.size() != weights.size(),
             "jainFairnessIndex: values/weights size mismatch");
    std::vector<double> normalised(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        fatal_if(weights[i] <= 0.0,
                 "jainFairnessIndex: weights must be > 0");
        normalised[i] = values[i] / weights[i];
    }
    return jainFairnessIndex(normalised);
}

//===========================================================================
// SloAccumulator
//===========================================================================

void
SloAccumulator::complete(double latency, double bytes)
{
    ++served_;
    bytes_ += bytes;
    latencies_.push_back(latency);
}

double
SloAccumulator::latencyPercentile(double p) const
{
    if (latencies_.empty())
        return 0.0;
    return percentile(latencies_, p);
}

void
SloAccumulator::restore(std::uint64_t offered, std::uint64_t deferred,
                        std::uint64_t shed, double bytes,
                        std::vector<double> latencies)
{
    offered_ = offered;
    deferred_ = deferred;
    shed_ = shed;
    bytes_ = bytes;
    latencies_ = std::move(latencies);
    served_ = latencies_.size();
}

//===========================================================================
// Scalar / Counter
//===========================================================================

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    dumpLine(os, prefix, name(), units::formatSig(value_, 8), desc());
}

void
Counter::dump(std::ostream &os, const std::string &prefix) const
{
    dumpLine(os, prefix, name(), std::to_string(count_), desc());
}

//===========================================================================
// Accumulator
//===========================================================================

void
Accumulator::sample(double v)
{
    ++n_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    // Welford's online update.
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
}

double
Accumulator::stddev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

void
Accumulator::dump(std::ostream &os, const std::string &prefix) const
{
    dumpLine(os, prefix, name() + ".count", std::to_string(n_), desc());
    dumpLine(os, prefix, name() + ".sum", units::formatSig(sum_, 8), desc());
    if (n_ > 0) {
        dumpLine(os, prefix, name() + ".mean", units::formatSig(mean(), 8),
                 desc());
        dumpLine(os, prefix, name() + ".min", units::formatSig(min_, 8),
                 desc());
        dumpLine(os, prefix, name() + ".max", units::formatSig(max_, 8),
                 desc());
        dumpLine(os, prefix, name() + ".stddev",
                 units::formatSig(stddev(), 8), desc());
    }
}

void
Accumulator::reset()
{
    n_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    mean_ = 0.0;
    m2_ = 0.0;
}

//===========================================================================
// Histogram
//===========================================================================

Histogram::Histogram(std::string name, std::string desc,
                     double lo, double hi, std::size_t n_bins)
    : StatBase(std::move(name), std::move(desc)),
      lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(n_bins)),
      bins_(n_bins, 0),
      underflow_(0), overflow_(0), total_(0)
{
    fatal_if(n_bins == 0, "Histogram needs at least one bin");
    fatal_if(!(hi > lo), "Histogram range must satisfy hi > lo");
}

void
Histogram::sample(double v)
{
    ++total_;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= bins_.size())
            idx = bins_.size() - 1; // guard against FP edge rounding
        ++bins_[idx];
    }
}

double
Histogram::binLow(std::size_t i) const
{
    panic_if(i >= bins_.size(), "Histogram bin index out of range");
    return lo_ + width_ * static_cast<double>(i);
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    dumpLine(os, prefix, name() + ".samples", std::to_string(total_), desc());
    dumpLine(os, prefix, name() + ".underflow", std::to_string(underflow_),
             desc());
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        std::string bucket = name() + "[" + units::formatSig(binLow(i), 6) +
                             "," +
                             units::formatSig(binLow(i) + width_, 6) + ")";
        dumpLine(os, prefix, bucket, std::to_string(bins_[i]), desc());
    }
    dumpLine(os, prefix, name() + ".overflow", std::to_string(overflow_),
             desc());
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

//===========================================================================
// Formula
//===========================================================================

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    dumpLine(os, prefix, name(), units::formatSig(value(), 8), desc());
}

//===========================================================================
// StatGroup
//===========================================================================

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    stats_.push_back(std::make_unique<Scalar>(name, desc));
    return static_cast<Scalar &>(*stats_.back());
}

Counter &
StatGroup::addCounter(const std::string &name, const std::string &desc)
{
    stats_.push_back(std::make_unique<Counter>(name, desc));
    return static_cast<Counter &>(*stats_.back());
}

Accumulator &
StatGroup::addAccumulator(const std::string &name, const std::string &desc)
{
    stats_.push_back(std::make_unique<Accumulator>(name, desc));
    return static_cast<Accumulator &>(*stats_.back());
}

Histogram &
StatGroup::addHistogram(const std::string &name, const std::string &desc,
                        double lo, double hi, std::size_t n_bins)
{
    stats_.push_back(std::make_unique<Histogram>(name, desc, lo, hi, n_bins));
    return static_cast<Histogram &>(*stats_.back());
}

Formula &
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      Formula::Fn fn)
{
    stats_.push_back(std::make_unique<Formula>(name, desc, std::move(fn)));
    return static_cast<Formula &>(*stats_.back());
}

StatGroup &
StatGroup::addGroup(const std::string &name)
{
    children_.push_back(std::make_unique<StatGroup>(name));
    return *children_.back();
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    for (const auto &s : stats_) {
        if (s->name() == name)
            return s.get();
    }
    return nullptr;
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &s : stats_)
        s->dump(os, full);
    for (const auto &g : children_)
        g->dump(os, full);
}

void
StatGroup::resetAll()
{
    for (auto &s : stats_)
        s->reset();
    for (auto &g : children_)
        g->resetAll();
}

} // namespace stats
} // namespace dhl
