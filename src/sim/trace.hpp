/**
 * @file
 * Lightweight event tracing for the simulation substrates.
 *
 * A TraceRecorder collects timestamped, categorised records (bounded by
 * a configurable capacity, oldest dropped first) that simulations can
 * emit at interesting points — launches, dockings, API commands,
 * failures.  Tests assert on traces; tools dump them as text or CSV.
 * Recording is off until enabled, so the hot path costs one branch.
 */

#ifndef DHL_SIM_TRACE_HPP
#define DHL_SIM_TRACE_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"

namespace dhl {
namespace sim {

/** One trace record. */
struct TraceRecord
{
    Time when;            ///< Simulation time, s.
    std::string category; ///< e.g. "track", "dock", "api".
    std::string object;   ///< Emitting object name.
    std::string message;  ///< Free-form payload.
};

/** A bounded in-memory trace. */
class TraceRecorder
{
  public:
    /**
     * @param sim      Simulator supplying timestamps.
     * @param capacity Maximum retained records (oldest evicted).
     */
    explicit TraceRecorder(Simulator &sim, std::size_t capacity = 65536);

    /** Enable/disable recording (disabled by default). */
    void enable(bool on = true) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Emit a record (no-op while disabled).  Takes views so call
     *  sites pass literals and prebuilt buffers without materialising
     *  std::strings; emitters that *format* a message should guard
     *  with enabled() and skip the formatting entirely when off. */
    void record(std::string_view category, std::string_view object,
                std::string_view message);

    /** Records currently retained. */
    std::size_t size() const { return records_.size(); }

    /** The current retention bound. */
    std::size_t capacity() const { return capacity_; }

    /**
     * Re-bound the retained window at runtime (rotation mode for soak
     * runs): month-scale serves cap their trace with a small
     * maxRecords instead of the 64 Ki default so memory stays flat.
     * Shrinking evicts the oldest records immediately (counted in
     * dropped(), exactly as if they had rotated out at record() time);
     * growing just raises the bound.  A recorder left at its
     * constructor capacity behaves byte-identically to one without
     * this call.
     */
    void setCapacity(std::size_t max_records);

    /** Total records ever emitted (including evicted ones). */
    std::uint64_t totalEmitted() const { return emitted_; }

    /** Records dropped due to the capacity bound. */
    std::uint64_t dropped() const { return dropped_; }

    /** Access the retained records, oldest first. */
    const std::deque<TraceRecord> &records() const { return records_; }

    /** Retained records matching a category, oldest first. */
    std::vector<TraceRecord> filter(std::string_view category) const;

    /** Drop all retained records (counters keep running). */
    void clear() { records_.clear(); }

    /** Dump as "time [category] object: message" lines. */
    void dump(std::ostream &os) const;

    /** Dump as CSV with a header row. */
    void dumpCsv(std::ostream &os) const;

    /**
     * Checkpoint the retained records and counters (sim/snapshot.hpp).
     * The capacity and enabled flag are configuration, not state, and
     * must match on the restoring side (fatal on a capacity mismatch).
     */
    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);

  private:
    // dhl-analyze: transient(sim_): constructor wiring
    Simulator &sim_;
    std::size_t capacity_;
    // dhl-analyze: transient(enabled_): a host-side observability
    // toggle, not simulated state; the harness decides per run
    bool enabled_;
    std::deque<TraceRecord> records_;
    std::uint64_t emitted_;
    std::uint64_t dropped_;
};

} // namespace sim
} // namespace dhl

#endif // DHL_SIM_TRACE_HPP
