/**
 * @file
 * Base class for named simulation objects plus small process helpers.
 *
 * A SimObject is a named entity bound to a Simulator, with its own
 * statistics group — the moral equivalent of gem5's SimObject, scaled to
 * this project.  PeriodicProcess wraps the common "re-schedule myself
 * every T seconds" pattern with clean cancellation.
 */

#ifndef DHL_SIM_SIM_OBJECT_HPP
#define DHL_SIM_SIM_OBJECT_HPP

#include <functional>
#include <string>

#include "common/stats.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"

namespace dhl {
namespace sim {

/**
 * A named entity living inside a Simulator.
 *
 * Every SimObject is Snapshotable; the default implementation captures
 * nothing, so objects with no dynamic state (pure queries, closed-form
 * models) participate in a checkpoint for free.  Objects that schedule
 * events or hold RNG streams override saveState()/restoreState() per
 * the contract in sim/snapshot.hpp.
 */
class SimObject : public Snapshotable
{
  public:
    /**
     * @param sim  The owning simulator (must outlive this object).
     * @param name Hierarchical object name (e.g. "dhl.track0").
     */
    SimObject(Simulator &sim, std::string name);

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    Simulator &simulator() { return sim_; }
    const Simulator &simulator() const { return sim_; }
    Time now() const { return sim_.now(); }

    /** Statistics group owned by this object. */
    stats::StatGroup &statsGroup() { return stats_; }
    const stats::StatGroup &statsGroup() const { return stats_; }

    /** Snapshotable default: stateless object, nothing to capture. */
    void saveState(SnapshotWriter &) const override {}
    void restoreState(SnapshotReader &) override {}

  protected:
    /** Convenience forwarding to the simulator. */
    EventHandle schedule(Time delay, Simulator::Action action);

  private:
    // dhl-analyze: transient(sim_, name_): constructor identity — the
    // kernel reference and the fixed object name
    Simulator &sim_;
    std::string name_;
    // dhl-analyze: transient(stats_): host-side stats tallies, restart
    // from the boundary
    stats::StatGroup stats_;
};

/**
 * A periodically firing process.  Starts stopped; start() schedules the
 * first tick after @p period (or a custom initial delay); stop() cancels
 * cleanly; the callback may call stop() on its owner.
 */
class PeriodicProcess
{
  public:
    using Tick = std::function<void()>;

    /**
     * @param sim    Owning simulator.
     * @param period Interval between ticks, seconds (> 0).
     * @param tick   Callback per tick.
     */
    PeriodicProcess(Simulator &sim, Time period, Tick tick);

    ~PeriodicProcess();

    PeriodicProcess(const PeriodicProcess &) = delete;
    PeriodicProcess &operator=(const PeriodicProcess &) = delete;

    /** Begin ticking; first tick after @p initial_delay (default: one
     * period). */
    void start();
    void start(Time initial_delay);

    /** Cancel the pending tick; safe to call repeatedly. */
    void stop();

    bool running() const { return running_; }
    Time period() const { return period_; }

    /** Change the period; takes effect from the next (re)scheduling. */
    void setPeriod(Time period);

  private:
    void scheduleNext(Time delay);

    Simulator &sim_;
    Time period_;
    Tick tick_;
    bool running_;
    EventHandle pending_;
};

} // namespace sim
} // namespace dhl

#endif // DHL_SIM_SIM_OBJECT_HPP
