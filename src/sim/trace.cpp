/**
 * @file
 * Implementation of the trace recorder.
 */

#include "sim/trace.hpp"

#include "common/logging.hpp"
#include "common/units.hpp"

namespace dhl {
namespace sim {

TraceRecorder::TraceRecorder(Simulator &sim, std::size_t capacity)
    : sim_(sim),
      capacity_(capacity),
      enabled_(false),
      emitted_(0),
      dropped_(0)
{
    fatal_if(capacity == 0, "trace capacity must be positive");
}

void
TraceRecorder::record(std::string_view category, std::string_view object,
                      std::string_view message)
{
    if (!enabled_)
        return;
    ++emitted_;
    if (records_.size() >= capacity_) {
        records_.pop_front();
        ++dropped_;
    }
    records_.push_back(TraceRecord{sim_.now(), std::string(category),
                                   std::string(object),
                                   std::string(message)});
}

void
TraceRecorder::setCapacity(std::size_t max_records)
{
    fatal_if(max_records == 0, "trace capacity must be positive");
    capacity_ = max_records;
    while (records_.size() > capacity_) {
        records_.pop_front();
        ++dropped_;
    }
}

void
TraceRecorder::saveState(SnapshotWriter &w) const
{
    SnapshotScope<SnapshotWriter> scope(w, "trace");
    w.putU64("capacity", capacity_);
    w.putU64("emitted", emitted_);
    w.putU64("dropped", dropped_);
    w.putU64("records", records_.size());
    std::size_t i = 0;
    for (const auto &rec : records_) {
        std::string key("r");
        key += std::to_string(i++);
        SnapshotScope<SnapshotWriter> rs(w, key);
        w.putDouble("when", rec.when);
        w.putString("category", rec.category);
        w.putString("object", rec.object);
        w.putString("message", rec.message);
    }
}

void
TraceRecorder::restoreState(SnapshotReader &r)
{
    SnapshotScope<SnapshotReader> scope(r, "trace");
    fatal_if(r.getU64("capacity") != capacity_,
             "trace restore: capacity does not match the checkpoint");
    emitted_ = r.getU64("emitted");
    dropped_ = r.getU64("dropped");
    records_.clear();
    const std::uint64_t n = r.getU64("records");
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string key("r");
        key += std::to_string(i);
        SnapshotScope<SnapshotReader> rs(r, key);
        records_.push_back(TraceRecord{
            r.getDouble("when"), r.getString("category"),
            r.getString("object"), r.getString("message")});
    }
}

std::vector<TraceRecord>
TraceRecorder::filter(std::string_view category) const
{
    std::vector<TraceRecord> out;
    for (const auto &r : records_) {
        if (r.category == category)
            out.push_back(r);
    }
    return out;
}

void
TraceRecorder::dump(std::ostream &os) const
{
    for (const auto &r : records_) {
        os << units::formatSig(r.when, 9) << " [" << r.category << "] "
           << r.object << ": " << r.message << "\n";
    }
}

void
TraceRecorder::dumpCsv(std::ostream &os) const
{
    os << "time,category,object,message\n";
    auto escape = [](const std::string &s) {
        std::string out;
        bool need_quotes = s.find_first_of(",\"\n") != std::string::npos;
        if (!need_quotes)
            return s;
        out.push_back('"');
        for (char c : s) {
            if (c == '"')
                out.push_back('"');
            out.push_back(c);
        }
        out.push_back('"');
        return out;
    };
    for (const auto &r : records_) {
        os << units::formatSig(r.when, 12) << "," << escape(r.category)
           << "," << escape(r.object) << "," << escape(r.message) << "\n";
    }
}

} // namespace sim
} // namespace dhl
