/**
 * @file
 * Implementation of the discrete-event simulation kernel.
 *
 * The event queue is a binary min-heap of 24-byte POD keys; actions are
 * kept out of the heap in a slot registry so sift operations are plain
 * memmoves.  Cancellation bumps the slot's generation (O(1)) and the
 * orphaned heap entry is discarded when it reaches the top.  A slot is
 * returned to the free list only when its heap entry surfaces, so a
 * slot index in the heap always refers to the occupancy that pushed it
 * — a generation mismatch therefore uniquely identifies a cancelled
 * event.
 */

#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "sim/snapshot.hpp"

namespace dhl {
namespace sim {

Simulator::Simulator()
    : now_(0.0),
      next_seq_(0),
      executed_(0),
      size_(0),
      stopped_(false),
      stats_("kernel")
{
    stat_scheduled_ =
        &stats_.addCounter("events_scheduled", "events ever scheduled");
    stat_executed_ =
        &stats_.addCounter("events_executed", "events executed");
    stat_cancelled_ =
        &stats_.addCounter("events_cancelled", "events cancelled");
}

std::uint32_t
Simulator::allocSlot(Action &&action)
{
    if (!free_slots_.empty()) {
        const std::uint32_t s = free_slots_.back();
        free_slots_.pop_back();
        slotAction(s) = std::move(action);
        return s;
    }
    fatal_if(slot_gen_.size() >= UINT32_MAX, "event slot registry overflow");
    const auto s = static_cast<std::uint32_t>(slot_gen_.size());
    slot_gen_.push_back(1);
    if ((s >> kChunkShift) >= action_chunks_.size())
        action_chunks_.push_back(std::make_unique<ActionChunk>());
    slotAction(s) = std::move(action);
    return s;
}

Time
Simulator::delayToWhen(Time delay) const
{
    fatal_if(!(delay >= 0.0) || std::isnan(delay),
             "event delay must be non-negative and finite");
    const Time when = now_ + delay;
    fatal_if(std::isinf(when), "event time must be finite");
    return when;
}

void
Simulator::checkWhen(Time when) const
{
    fatal_if(std::isnan(when) || std::isinf(when),
             "event time must be finite");
    fatal_if(when < now_, "cannot schedule an event in the past");
}

EventHandle
Simulator::scheduleImpl(Time when, Action &&action)
{
    panic_if(!action, "scheduled event has no action");

    const std::uint32_t slot = allocSlot(std::move(action));
    const std::uint32_t gen = slot_gen_[slot];
    // when >= 0 here (validated by delayToWhen/checkWhen); +0.0
    // canonicalises a possible -0.0 so the bit-pattern order holds.
    const auto when_bits = std::bit_cast<std::uint64_t>(when + 0.0);
    heap_.push_back(HeapEntry{when_bits, next_seq_++, slot, gen});
    std::push_heap(heap_.begin(), heap_.end(), HeapCompare{});
    ++size_;
    stat_scheduled_->increment();
    return EventHandle(slot, gen);
}

bool
Simulator::cancel(EventHandle handle)
{
    if (!handle.valid() || handle.slot_ >= slot_gen_.size())
        return false;
    if (slot_gen_[handle.slot_] != handle.gen_)
        return false; // already fired or already cancelled
    ++slot_gen_[handle.slot_];     // invalidates handle and heap entry
    slotAction(handle.slot_) = nullptr; // release captures eagerly
    --size_;
    stat_cancelled_->increment();
    return true;
}

const Simulator::HeapEntry *
Simulator::peekNext()
{
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.front();
        if (slot_gen_[top.slot] == top.gen)
            return &top;
        // Cancelled occupant: reclaim the slot now that its (unique)
        // heap entry has surfaced, then drop the entry.
        free_slots_.push_back(top.slot);
        std::pop_heap(heap_.begin(), heap_.end(), HeapCompare{});
        heap_.pop_back();
    }
    return nullptr;
}

Simulator::Action
Simulator::takeTop()
{
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), HeapCompare{});
    heap_.pop_back();

    Action action = std::move(slotAction(top.slot)); // leaves slot empty
    ++slot_gen_[top.slot]; // late cancel() on this handle returns false
    free_slots_.push_back(top.slot);

    const Time when = std::bit_cast<Time>(top.when_bits);
    panic_if(when < now_, "event queue went backwards in time");
    now_ = when;
    --size_;
    ++executed_;
    stat_executed_->increment();
    return action;
}

Time
Simulator::run()
{
    stopped_ = false;
    while (!stopped_ && peekNext()) {
        Action action = takeTop();
        action();
    }
    return now_;
}

Time
Simulator::runUntil(Time until)
{
    fatal_if(until < now_, "runUntil target is in the past");
    stopped_ = false;
    while (!stopped_) {
        const HeapEntry *top = peekNext();
        if (!top)
            break;
        if (std::bit_cast<Time>(top->when_bits) > until)
            break; // leave the event queued for a later run
        Action action = takeTop();
        action();
    }
    if (now_ < until)
        now_ = until;
    return now_;
}

Time
Simulator::nextEventTime()
{
    const HeapEntry *top = peekNext();
    if (!top)
        return std::numeric_limits<Time>::infinity();
    return std::bit_cast<Time>(top->when_bits);
}

void
Simulator::advanceTo(Time when)
{
    fatal_if(std::isnan(when), "advanceTo target must not be NaN");
    if (when <= now_)
        return;
    fatal_if(nextEventTime() < when,
             "advanceTo would skip a pending event; use runUntil");
    now_ = when;
}

Simulator::EpochResult
Simulator::runEpoch(Time until)
{
    const std::uint64_t before = executed_;
    const Time end = runUntil(until);
    return EpochResult{end, executed_ - before, size_ == 0};
}

void
Simulator::saveState(SnapshotWriter &w) const
{
    SnapshotScope<SnapshotWriter> scope(w, "kernel");
    w.putDouble("now", now_);
    w.putU64("executed", executed_);
}

void
Simulator::restoreState(SnapshotReader &r)
{
    fatal_if(size_ != 0,
             "simulator restore requires an empty event queue (cancel "
             "constructor-scheduled events first)");
    SnapshotScope<SnapshotReader> scope(r, "kernel");
    now_ = r.getDouble("now");
    executed_ = r.getU64("executed");
}

std::uint64_t
Simulator::step(std::uint64_t max_events)
{
    stopped_ = false; // same entry semantics as run()/runUntil()
    std::uint64_t fired = 0;
    while (!stopped_ && fired < max_events && peekNext()) {
        Action action = takeTop();
        action();
        ++fired;
    }
    return fired;
}

} // namespace sim
} // namespace dhl
