/**
 * @file
 * Implementation of the discrete-event simulation kernel.
 */

#include "sim/simulator.hpp"

#include <cmath>
#include <utility>

#include "common/logging.hpp"

namespace dhl {
namespace sim {

Simulator::Simulator()
    : now_(0.0),
      next_seq_(0),
      next_id_(1),
      executed_(0),
      size_(0),
      stopped_(false),
      stats_("kernel")
{
    stat_scheduled_ =
        &stats_.addCounter("events_scheduled", "events ever scheduled");
    stat_executed_ =
        &stats_.addCounter("events_executed", "events executed");
    stat_cancelled_ =
        &stats_.addCounter("events_cancelled", "events cancelled");
}

EventHandle
Simulator::schedule(Time delay, Action action)
{
    fatal_if(!(delay >= 0.0) || std::isnan(delay),
             "event delay must be non-negative and finite");
    return scheduleAt(now_ + delay, std::move(action));
}

EventHandle
Simulator::scheduleAt(Time when, Action action)
{
    fatal_if(std::isnan(when) || std::isinf(when),
             "event time must be finite");
    fatal_if(when < now_, "cannot schedule an event in the past");
    panic_if(!action, "scheduled event has no action");

    const std::uint64_t id = next_id_++;
    queue_.push(Event{when, next_seq_++, id, std::move(action)});
    pending_ids_.insert(id);
    ++size_;
    stat_scheduled_->increment();
    return EventHandle(id);
}

bool
Simulator::cancel(EventHandle handle)
{
    // The heap cannot be edited in place; mark the id and drop the event
    // lazily when it surfaces.  pending_ids_ distinguishes live events
    // from ones that already fired or were already cancelled.
    if (!handle.valid())
        return false;
    if (pending_ids_.erase(handle.id_) == 0)
        return false;
    cancelled_.insert(handle.id_);
    --size_;
    stat_cancelled_->increment();
    return true;
}

bool
Simulator::popNext(Event &out)
{
    while (!queue_.empty()) {
        // priority_queue::top returns const&; we need to move the action
        // out, which is safe because we pop immediately afterwards.
        Event &top = const_cast<Event &>(queue_.top());
        if (cancelled_.erase(top.id)) {
            queue_.pop();
            continue;
        }
        pending_ids_.erase(top.id);
        out = std::move(top);
        queue_.pop();
        --size_;
        return true;
    }
    return false;
}

Time
Simulator::run()
{
    stopped_ = false;
    Event ev;
    while (!stopped_ && popNext(ev)) {
        panic_if(ev.when < now_, "event queue went backwards in time");
        now_ = ev.when;
        ++executed_;
        stat_executed_->increment();
        ev.action();
    }
    return now_;
}

Time
Simulator::runUntil(Time until)
{
    fatal_if(until < now_, "runUntil target is in the past");
    stopped_ = false;
    while (!stopped_ && !queue_.empty()) {
        // Peek (skipping cancelled) to check the time bound.
        Event ev;
        if (!popNext(ev))
            break;
        if (ev.when > until) {
            // Put it back: re-schedule preserving its original order key.
            pending_ids_.insert(ev.id);
            queue_.push(std::move(ev));
            ++size_;
            now_ = until;
            return now_;
        }
        panic_if(ev.when < now_, "event queue went backwards in time");
        now_ = ev.when;
        ++executed_;
        stat_executed_->increment();
        ev.action();
    }
    if (now_ < until)
        now_ = until;
    return now_;
}

std::uint64_t
Simulator::step(std::uint64_t max_events)
{
    std::uint64_t fired = 0;
    Event ev;
    while (fired < max_events && popNext(ev)) {
        panic_if(ev.when < now_, "event queue went backwards in time");
        now_ = ev.when;
        ++executed_;
        stat_executed_->increment();
        ev.action();
        ++fired;
    }
    return fired;
}

} // namespace sim
} // namespace dhl
