/**
 * @file
 * Implementation of the snapshot writer/reader.
 */

#include "sim/snapshot.hpp"

#include <bit>
#include <charconv>
#include <system_error>

#include "common/logging.hpp"

namespace dhl {
namespace sim {

namespace {

constexpr std::string_view kMagic = "dhl-snapshot 1";

std::string
toHex64(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out = "0x";
    for (int shift = 60; shift >= 0; shift -= 4)
        out += digits[(v >> shift) & 0xf];
    return out;
}

std::uint64_t
parseU64(const std::string &key, const std::string &text)
{
    std::uint64_t v = 0;
    const char *first = text.data();
    const char *last = first + text.size();
    int base = 10;
    if (text.size() > 2 && text[0] == '0' && text[1] == 'x') {
        first += 2;
        base = 16;
    }
    const auto [ptr, ec] = std::from_chars(first, last, v, base);
    fatal_if(ec != std::errc() || ptr != last,
             "snapshot: bad integer for '" + key + "': '" + text + "'");
    return v;
}

} // namespace

//===========================================================================
// SnapshotWriter
//===========================================================================

SnapshotWriter::SnapshotWriter(std::ostream &os) : os_(os)
{
    os_ << kMagic << "\n";
}

void
SnapshotWriter::push(std::string_view scope)
{
    scope_lens_.push_back(prefix_.size());
    prefix_.append(scope);
    prefix_.push_back('.');
}

void
SnapshotWriter::pop()
{
    panic_if(scope_lens_.empty(), "snapshot writer scope underflow");
    prefix_.resize(scope_lens_.back());
    scope_lens_.pop_back();
}

std::string
SnapshotWriter::fullKey(std::string_view key) const
{
    std::string full = prefix_;
    full.append(key);
    return full;
}

void
SnapshotWriter::putString(std::string_view key, std::string_view value)
{
    fatal_if(value.find('\n') != std::string_view::npos,
             "snapshot values must not contain newlines");
    os_ << fullKey(key) << " = " << value << "\n";
}

void
SnapshotWriter::putU64(std::string_view key, std::uint64_t value)
{
    os_ << fullKey(key) << " = " << value << "\n";
}

void
SnapshotWriter::putI64(std::string_view key, std::int64_t value)
{
    os_ << fullKey(key) << " = " << value << "\n";
}

void
SnapshotWriter::putBool(std::string_view key, bool value)
{
    os_ << fullKey(key) << " = " << (value ? "true" : "false") << "\n";
}

void
SnapshotWriter::putDouble(std::string_view key, double value)
{
    os_ << fullKey(key) << " = "
        << toHex64(std::bit_cast<std::uint64_t>(value)) << "\n";
}

void
SnapshotWriter::putRng(std::string_view key, const Rng &rng)
{
    const RngState s = rng.saveState();
    push(key);
    putU64("s0", s.state[0]);
    putU64("s1", s.state[1]);
    putU64("s2", s.state[2]);
    putU64("s3", s.state[3]);
    putBool("has_spare", s.has_spare);
    putDouble("spare", s.spare);
    pop();
}

//===========================================================================
// SnapshotReader
//===========================================================================

SnapshotReader::SnapshotReader(std::istream &is)
{
    std::string line;
    fatal_if(!std::getline(is, line) || line != kMagic,
             "snapshot: bad or missing header (expected '" +
                 std::string(kMagic) + "')");
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const auto sep = line.find(" = ");
        fatal_if(sep == std::string::npos,
                 "snapshot: malformed line '" + line + "'");
        std::string key = line.substr(0, sep);
        std::string value = line.substr(sep + 3);
        fatal_if(values_.count(key) != 0,
                 "snapshot: duplicate key '" + key + "'");
        values_.emplace(std::move(key), std::move(value));
    }
}

void
SnapshotReader::push(std::string_view scope)
{
    scope_lens_.push_back(prefix_.size());
    prefix_.append(scope);
    prefix_.push_back('.');
}

void
SnapshotReader::pop()
{
    panic_if(scope_lens_.empty(), "snapshot reader scope underflow");
    prefix_.resize(scope_lens_.back());
    scope_lens_.pop_back();
}

std::string
SnapshotReader::fullKey(std::string_view key) const
{
    std::string full = prefix_;
    full.append(key);
    return full;
}

bool
SnapshotReader::has(std::string_view key) const
{
    return values_.count(fullKey(key)) != 0;
}

const std::string &
SnapshotReader::rawValue(std::string_view key) const
{
    const std::string full = fullKey(key);
    const auto it = values_.find(full);
    fatal_if(it == values_.end(), "snapshot: missing key '" + full + "'");
    return it->second;
}

std::string
SnapshotReader::getString(std::string_view key) const
{
    return rawValue(key);
}

std::uint64_t
SnapshotReader::getU64(std::string_view key) const
{
    return parseU64(fullKey(key), rawValue(key));
}

std::int64_t
SnapshotReader::getI64(std::string_view key) const
{
    const std::string &text = rawValue(key);
    std::int64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), v);
    fatal_if(ec != std::errc() || ptr != text.data() + text.size(),
             "snapshot: bad integer for '" + fullKey(key) + "': '" +
                 text + "'");
    return v;
}

bool
SnapshotReader::getBool(std::string_view key) const
{
    const std::string &text = rawValue(key);
    if (text == "true")
        return true;
    if (text == "false")
        return false;
    fatal("snapshot: bad bool for '" + fullKey(key) + "': '" + text +
          "'");
}

double
SnapshotReader::getDouble(std::string_view key) const
{
    return std::bit_cast<double>(
        parseU64(fullKey(key), rawValue(key)));
}

void
SnapshotReader::getRng(std::string_view key, Rng &rng) const
{
    RngState s{};
    auto *self = const_cast<SnapshotReader *>(this);
    self->push(key);
    s.state[0] = getU64("s0");
    s.state[1] = getU64("s1");
    s.state[2] = getU64("s2");
    s.state[3] = getU64("s3");
    s.has_spare = getBool("has_spare");
    s.spare = getDouble("spare");
    self->pop();
    rng.restoreState(s);
}

} // namespace sim
} // namespace dhl
