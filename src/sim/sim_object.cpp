/**
 * @file
 * Implementation of SimObject and PeriodicProcess.
 */

#include "sim/sim_object.hpp"

#include <utility>

#include "common/logging.hpp"

namespace dhl {
namespace sim {

SimObject::SimObject(Simulator &sim, std::string name)
    : sim_(sim), name_(std::move(name)), stats_(name_)
{
    fatal_if(name_.empty(), "SimObject needs a non-empty name");
}

EventHandle
SimObject::schedule(Time delay, Simulator::Action action)
{
    return sim_.schedule(delay, std::move(action));
}

PeriodicProcess::PeriodicProcess(Simulator &sim, Time period, Tick tick)
    : sim_(sim), period_(period), tick_(std::move(tick)), running_(false)
{
    fatal_if(!(period > 0.0), "PeriodicProcess period must be positive");
    fatal_if(!tick_, "PeriodicProcess needs a tick callback");
}

PeriodicProcess::~PeriodicProcess()
{
    stop();
}

void
PeriodicProcess::start()
{
    start(period_);
}

void
PeriodicProcess::start(Time initial_delay)
{
    fatal_if(!(initial_delay >= 0.0),
             "PeriodicProcess initial delay must be non-negative");
    if (running_)
        return;
    running_ = true;
    scheduleNext(initial_delay);
}

void
PeriodicProcess::stop()
{
    if (!running_)
        return;
    running_ = false;
    sim_.cancel(pending_);
    pending_ = EventHandle();
}

void
PeriodicProcess::setPeriod(Time period)
{
    fatal_if(!(period > 0.0), "PeriodicProcess period must be positive");
    period_ = period;
}

void
PeriodicProcess::scheduleNext(Time delay)
{
    pending_ = sim_.schedule(delay, [this] {
        if (!running_)
            return;
        tick_();
        // tick_() may have stopped us (or rescheduled with a new period).
        if (running_)
            scheduleNext(period_);
    });
}

} // namespace sim
} // namespace dhl
