/**
 * @file
 * The discrete-event simulation (DES) kernel.
 *
 * A single-threaded, deterministic event-driven simulator in the style of
 * gem5's EventQueue, specialised for continuous time (seconds, double).
 * Every higher-level simulation in this repository — the DHL cart/track
 * system, the network flow simulator, and the ML-training ingestion model
 * — runs on this kernel.
 *
 * Determinism: events scheduled for the same timestamp fire in schedule
 * order (a monotonically increasing sequence number breaks ties), so runs
 * are exactly reproducible.
 *
 * Internals (see DESIGN.md §"Kernel internals" for the full story):
 * actions live in a generation-tagged *slot registry* while the binary
 * heap orders 24-byte POD keys {when, seq, slot, generation}.  A handle
 * is {slot, generation}; cancel() is an O(1) generation bump (the dead
 * heap entry is reclaimed lazily when it surfaces).  Actions are stored
 * in an InlineFunction with a 64-byte small buffer, so the steady-state
 * schedule→fire path performs no heap allocations and no hashing.
 */

#ifndef DHL_SIM_SIMULATOR_HPP
#define DHL_SIM_SIMULATOR_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/inline_function.hpp"
#include "common/stats.hpp"

namespace dhl {
namespace sim {

class SnapshotReader;
class SnapshotWriter;

/** Simulation time in seconds. */
using Time = double;

/**
 * Handle to a scheduled event, usable for cancellation.
 *
 * Internally {slot index, generation}: the generation disambiguates
 * reuses of the same slot, so a stale handle (event already fired or
 * cancelled) is detected in O(1) without any lookup table.
 */
class EventHandle
{
  public:
    EventHandle() : slot_(0), gen_(0) {}

    /** True if this handle ever referred to an event. */
    bool valid() const { return gen_ != 0; }

  private:
    friend class Simulator;
    EventHandle(std::uint32_t slot, std::uint32_t gen)
        : slot_(slot), gen_(gen)
    {}
    std::uint32_t slot_;
    std::uint32_t gen_;
};

/**
 * The event-driven simulator.
 *
 * Usage:
 * @code
 *   sim::Simulator sim;
 *   sim.schedule(1.5, []{ ... });
 *   sim.run();
 * @endcode
 */
class Simulator
{
  public:
    /**
     * Event action: move-only with 64 bytes of inline storage, so the
     * capture lists typical of simulation events schedule without
     * touching the heap.  `std::function` still converts implicitly.
     */
    using Action = common::InlineFunction<void(), 64>;

    Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulation time, seconds. */
    Time now() const { return now_; }

    /**
     * Schedule @p action to run @p delay seconds from now.
     *
     * @param delay  Non-negative delay in seconds.
     * @param action Callable invoked when the event fires.
     * @return Handle usable with cancel().
     */
    EventHandle
    schedule(Time delay, Action action)
    {
        return scheduleImpl(delayToWhen(delay), std::move(action));
    }

    /** Schedule @p action at the absolute time @p when (>= now). */
    EventHandle
    scheduleAt(Time when, Action action)
    {
        checkWhen(when);
        return scheduleImpl(when, std::move(action));
    }

    /**
     * Cancel a previously scheduled event.  O(1).
     *
     * @return true if the event was pending and is now cancelled; false
     *         if it already fired, was already cancelled, or the handle
     *         is invalid.
     */
    bool cancel(EventHandle handle);

    /** Number of events currently pending. */
    std::size_t pendingEvents() const { return size_; }

    /**
     * Run until the event queue drains (or stop() is called).
     *
     * Clears any stop request left over from a previous run()/
     * runUntil()/step() before executing.
     *
     * @return The final simulation time.
     */
    Time run();

    /**
     * Run until simulation time reaches @p until (events at exactly
     * @p until still fire) or the queue drains.  Clears any prior stop
     * request on entry, like run().
     *
     * @return The final simulation time (min(until, drain time)).
     */
    Time runUntil(Time until);

    /** Outcome of one runEpoch() call. */
    struct EpochResult
    {
        Time end;             ///< Simulation time at the boundary.
        std::uint64_t events; ///< Events fired during this epoch.
        bool queue_empty;     ///< No pending events remain at all.
    };

    /**
     * Advance one epoch: run until simulation time reaches @p until
     * (events at exactly @p until still fire), reporting how much work
     * the epoch did and whether the queue drained.  Epoch-based serving
     * (src/serve) steps a long soak as a sequence of runEpoch() calls,
     * draining in-flight work at each boundary so the boundary is a
     * legal checkpoint point; self-perpetuating processes (fault
     * injection, maintenance plans) keep events queued across epochs,
     * so `queue_empty` is typically false for a served system.
     */
    EpochResult runEpoch(Time until);

    /**
     * Time of the earliest pending event, or +infinity when the queue
     * is empty.  Non-const: surfacing the answer may lazily reclaim
     * cancelled heap entries (see peekNext()).  The shard driver
     * (sim/shard.hpp) uses this as the conservative lookahead probe.
     */
    Time nextEventTime();

    /**
     * Advance the clock to @p when *without firing anything*.  Fatal if
     * an event earlier than @p when is pending — this is a clock-only
     * move for coordinators that know the interval is empty (events at
     * exactly @p when stay queued).  No-op if @p when <= now.
     */
    void advanceTo(Time when);

    /**
     * Execute at most @p max_events events; returns how many fired.
     *
     * Same stop() semantics as run(): a stop request left over from an
     * earlier run is cleared on entry, and a stop() issued by one of the
     * executed actions ends the batch early (stopRequested() reports it
     * until the next run()/runUntil()/step()).
     */
    std::uint64_t step(std::uint64_t max_events = 1);

    /** Request that run()/runUntil()/step() return after the current
     * event. */
    void stop() { stopped_ = true; }

    /** True if stop() was called during the last run()/runUntil()/
     * step(). */
    bool stopRequested() const { return stopped_; }

    /** Total number of events executed since construction. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** Kernel statistics group (events scheduled/executed/cancelled). */
    stats::StatGroup &statsGroup() { return stats_; }

    /**
     * Checkpoint the kernel clock (sim/snapshot.hpp).  Only `now` and
     * the executed-event count are captured: pending events belong to
     * the Snapshotable objects that scheduled them and are re-created
     * on restore at their saved absolute times.  The schedule/cancel
     * statistics counters are host-side tallies, not simulated state,
     * and restart from the boundary.
     */
    void saveState(SnapshotWriter &w) const;

    /**
     * Restore the kernel clock.  Must be called on an *empty* queue
     * (fatal otherwise), before any Snapshotable re-schedules — the
     * restored `now` is what makes their absolute-time scheduleAt()
     * calls land correctly.
     */
    void restoreState(SnapshotReader &r);

  private:
    /**
     * POD heap key; the action lives in the slot registry.
     *
     * `when_bits` is the IEEE-754 bit pattern of the event time.  The
     * kernel guarantees event times are finite and >= 0 (validated at
     * the schedule boundary, with -0.0 canonicalised to +0.0), and for
     * non-negative doubles the bit pattern preserves numeric order — so
     * the heap can compare plain integers.  Together with the sequence
     * tie-break this makes the ordering a branch-free pair of integer
     * comparisons instead of a data-dependent double-compare chain,
     * which measurably cuts sift cost on event-dense queues.
     */
    struct HeapEntry
    {
        std::uint64_t when_bits;
        std::uint64_t seq; // tie-break: FIFO within a timestamp
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /** Min-heap comparator: true if @p a fires after @p b.  Branch-free
     *  on purpose — see HeapEntry. */
    struct HeapCompare
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            const bool gt = a.when_bits > b.when_bits;
            const bool eq = a.when_bits == b.when_bits;
            const bool seq_gt = a.seq > b.seq; // FIFO within equal times
            return gt | (eq & seq_gt);
        }
    };

    /**
     * Actions are stored in fixed-size chunks that never move: growing
     * the registry allocates a fresh chunk instead of relocating every
     * stored callable the way a flat vector would (one indirect
     * relocation call per occupied slot per doubling).  Generations
     * live in a flat vector — they are PODs, hot on the peek path, and
     * cheap to grow.
     */
    static constexpr std::uint32_t kChunkShift = 8;
    static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
    using ActionChunk = std::array<Action, kChunkSize>;

    Action &
    slotAction(std::uint32_t slot)
    {
        return (*action_chunks_[slot >> kChunkShift])
            [slot & (kChunkSize - 1)];
    }

    /** Validate a relative delay and convert it to an absolute time. */
    Time delayToWhen(Time delay) const;

    /** Validate an absolute event time. */
    void checkWhen(Time when) const;

    /** The single push path; the Action is moved into a slot exactly
     *  once (callers construct it in place at the API boundary). */
    EventHandle scheduleImpl(Time when, Action &&action);

    std::uint32_t allocSlot(Action &&action);

    /**
     * Drop cancelled entries off the top of the heap (reclaiming their
     * slots) until a live event surfaces; null if the heap drains.
     */
    const HeapEntry *peekNext();

    /** Pop the top (live) entry, returning its action; advances time. */
    Action takeTop();

    Time now_;
    // dhl-analyze: transient(next_seq_): FIFO tie-break is relative
    // order only; a restored run re-counts from zero identically
    // dhl-analyze: transient(size_, stopped_): restoreState requires a
    // drained (empty, not-stopped) queue and asserts it
    std::uint64_t next_seq_;
    std::uint64_t executed_;
    std::size_t size_; // live (non-cancelled) events
    bool stopped_;

    // dhl-analyze: transient(heap_, slot_gen_, action_chunks_,
    // free_slots_): the queue is empty at a legal checkpoint boundary;
    // pending events belong to the Snapshotables that re-create them
    std::vector<HeapEntry> heap_;
    /** Generation per slot; bumped whenever the slot's occupant leaves
     *  (fires or is cancelled), invalidating outstanding handles and
     *  heap entries in O(1). */
    std::vector<std::uint32_t> slot_gen_;
    std::vector<std::unique_ptr<ActionChunk>> action_chunks_;
    std::vector<std::uint32_t> free_slots_;

    // dhl-analyze: transient(stats_, stat_scheduled_, stat_executed_,
    // stat_cancelled_): host-side tallies, restart from the boundary
    stats::StatGroup stats_;
    stats::Counter *stat_scheduled_;
    stats::Counter *stat_executed_;
    stats::Counter *stat_cancelled_;
};

} // namespace sim
} // namespace dhl

#endif // DHL_SIM_SIMULATOR_HPP
