/**
 * @file
 * The discrete-event simulation (DES) kernel.
 *
 * A single-threaded, deterministic event-driven simulator in the style of
 * gem5's EventQueue, specialised for continuous time (seconds, double).
 * Every higher-level simulation in this repository — the DHL cart/track
 * system, the network flow simulator, and the ML-training ingestion model
 * — runs on this kernel.
 *
 * Determinism: events scheduled for the same timestamp fire in schedule
 * order (a monotonically increasing sequence number breaks ties), so runs
 * are exactly reproducible.
 */

#ifndef DHL_SIM_SIMULATOR_HPP
#define DHL_SIM_SIMULATOR_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"

namespace dhl {
namespace sim {

/** Simulation time in seconds. */
using Time = double;

/** Handle to a scheduled event, usable for cancellation. */
class EventHandle
{
  public:
    EventHandle() : id_(0) {}

    /** True if this handle ever referred to an event. */
    bool valid() const { return id_ != 0; }

  private:
    friend class Simulator;
    explicit EventHandle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_;
};

/**
 * The event-driven simulator.
 *
 * Usage:
 * @code
 *   sim::Simulator sim;
 *   sim.schedule(1.5, []{ ... });
 *   sim.run();
 * @endcode
 */
class Simulator
{
  public:
    using Action = std::function<void()>;

    Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulation time, seconds. */
    Time now() const { return now_; }

    /**
     * Schedule @p action to run @p delay seconds from now.
     *
     * @param delay  Non-negative delay in seconds.
     * @param action Callable invoked when the event fires.
     * @return Handle usable with cancel().
     */
    EventHandle schedule(Time delay, Action action);

    /** Schedule @p action at the absolute time @p when (>= now). */
    EventHandle scheduleAt(Time when, Action action);

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled; false
     *         if it already fired, was already cancelled, or the handle
     *         is invalid.
     */
    bool cancel(EventHandle handle);

    /** Number of events currently pending. */
    std::size_t pendingEvents() const { return size_; }

    /**
     * Run until the event queue drains (or stop() is called).
     *
     * @return The final simulation time.
     */
    Time run();

    /**
     * Run until simulation time reaches @p until (events at exactly
     * @p until still fire) or the queue drains.
     *
     * @return The final simulation time (min(until, drain time)).
     */
    Time runUntil(Time until);

    /** Execute at most @p max_events events; returns how many fired. */
    std::uint64_t step(std::uint64_t max_events = 1);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { stopped_ = true; }

    /** True if stop() was called during the last run. */
    bool stopRequested() const { return stopped_; }

    /** Total number of events executed since construction. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** Kernel statistics group (events scheduled/executed/cancelled). */
    stats::StatGroup &statsGroup() { return stats_; }

  private:
    struct Event
    {
        Time when;
        std::uint64_t seq; // tie-break: FIFO within a timestamp
        std::uint64_t id;
        Action action;
    };

    struct EventCompare
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when; // min-heap on time
            return a.seq > b.seq;       // FIFO within equal times
        }
    };

    /** Pop the next non-cancelled event; false if the queue is empty. */
    bool popNext(Event &out);

    Time now_;
    std::uint64_t next_seq_;
    std::uint64_t next_id_;
    std::uint64_t executed_;
    std::size_t size_; // live (non-cancelled) events
    bool stopped_;

    std::priority_queue<Event, std::vector<Event>, EventCompare> queue_;
    std::unordered_set<std::uint64_t> pending_ids_; // live events in queue_
    std::unordered_set<std::uint64_t> cancelled_;   // lazily dropped ids

    stats::StatGroup stats_;
    stats::Counter *stat_scheduled_;
    stats::Counter *stat_executed_;
    stats::Counter *stat_cancelled_;
};

} // namespace sim
} // namespace dhl

#endif // DHL_SIM_SIMULATOR_HPP
