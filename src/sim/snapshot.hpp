/**
 * @file
 * Checkpoint/restore support for the DES: a line-oriented snapshot
 * format plus the Snapshotable interface simulation objects implement.
 *
 * A snapshot is a flat text document of `key = value` lines.  Writers
 * push hierarchical scopes ("track0", "faults") so composed objects
 * serialise without coordinating key names; readers push the same
 * scopes back.  Doubles are serialised as IEEE-754 bit patterns (hex),
 * so a restored value is the *identical* double, not a decimal
 * round-trip approximation — the byte-identity oracle for
 * restore(checkpoint) + run(delta) == uninterrupted run depends on it.
 *
 * The snapshot contract (DESIGN.md §11): state is captured only at a
 * *drained epoch boundary* — no in-flight request work — where every
 * pending event belongs to a Snapshotable process that records its
 * pending absolute event times and re-schedules them on restore.  The
 * event queue itself (arbitrary closures) is never serialised.
 */

#ifndef DHL_SIM_SNAPSHOT_HPP
#define DHL_SIM_SNAPSHOT_HPP

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/random.hpp"

namespace dhl {
namespace sim {

/** Serialises state as scoped `key = value` lines. */
class SnapshotWriter
{
  public:
    /** @param os Destination stream (text mode). */
    explicit SnapshotWriter(std::ostream &os);

    SnapshotWriter(const SnapshotWriter &) = delete;
    SnapshotWriter &operator=(const SnapshotWriter &) = delete;

    /** Enter a nested scope: keys gain a "scope." prefix. */
    void push(std::string_view scope);

    /** Leave the innermost scope. */
    void pop();

    /** Write one value.  Strings must not contain newlines. */
    void putString(std::string_view key, std::string_view value);
    void putU64(std::string_view key, std::uint64_t value);
    void putI64(std::string_view key, std::int64_t value);
    void putBool(std::string_view key, bool value);

    /** Bit-exact double serialisation (IEEE-754 pattern as hex). */
    void putDouble(std::string_view key, double value);

    /** Full RNG stream position (state words + Box-Muller spare). */
    void putRng(std::string_view key, const Rng &rng);

  private:
    std::string fullKey(std::string_view key) const;

    std::ostream &os_;
    std::vector<std::size_t> scope_lens_;
    std::string prefix_;
};

/** Parses a snapshot document and serves scoped lookups. */
class SnapshotReader
{
  public:
    /** Parse @p is fully; fatal() on a malformed document. */
    explicit SnapshotReader(std::istream &is);

    SnapshotReader(const SnapshotReader &) = delete;
    SnapshotReader &operator=(const SnapshotReader &) = delete;

    void push(std::string_view scope);
    void pop();

    /** True if the (scoped) key exists. */
    bool has(std::string_view key) const;

    /** Typed lookups; fatal() on a missing key or unparsable value. */
    std::string getString(std::string_view key) const;
    std::uint64_t getU64(std::string_view key) const;
    std::int64_t getI64(std::string_view key) const;
    bool getBool(std::string_view key) const;
    double getDouble(std::string_view key) const;
    void getRng(std::string_view key, Rng &rng) const;

  private:
    std::string fullKey(std::string_view key) const;
    const std::string &rawValue(std::string_view key) const;

    std::unordered_map<std::string, std::string> values_;
    std::vector<std::size_t> scope_lens_;
    std::string prefix_;
};

/** RAII scope guard usable with either side of the snapshot. */
template <typename Snapshot>
class SnapshotScope
{
  public:
    SnapshotScope(Snapshot &snap, std::string_view scope) : snap_(snap)
    {
        snap_.push(scope);
    }
    ~SnapshotScope() { snap_.pop(); }

    SnapshotScope(const SnapshotScope &) = delete;
    SnapshotScope &operator=(const SnapshotScope &) = delete;

  private:
    Snapshot &snap_;
};

/**
 * Implemented by every object that participates in checkpoint/restore.
 *
 * Contract: saveState() is called at a drained epoch boundary and must
 * be read-only.  restoreState() is called on a *freshly constructed*
 * object (same configuration, same seeds) whose constructor-scheduled
 * events have been cancelled; it rebuilds dynamic state, restores RNG
 * stream positions, and re-schedules pending events at their saved
 * absolute times.
 */
class Snapshotable
{
  public:
    virtual ~Snapshotable() = default;

    virtual void saveState(SnapshotWriter &w) const = 0;
    virtual void restoreState(SnapshotReader &r) = 0;
};

} // namespace sim
} // namespace dhl

#endif // DHL_SIM_SNAPSHOT_HPP
