/**
 * @file
 * ShardGroup implementation.  All parallelism goes through the audited
 * dhl::ThreadPool (lint rule R7); the group itself holds no threads,
 * locks, or atomics — the pool's fork/join handshake is the only
 * synchronisation, which is what makes window advances race-free: a
 * shard's state is touched by exactly one thread per window, and the
 * join publishes it back to the coordinator.
 */

#include "sim/shard.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace dhl {
namespace sim {

void
ShardGroup::attach(Simulator *sim)
{
    fatal_if(sim == nullptr, "ShardGroup::attach: null simulator");
    shards_.push_back(sim);
}

Time
ShardGroup::now() const
{
    Time t = 0.0;
    for (const Simulator *s : shards_)
        t = std::max(t, s->now());
    return t;
}

Time
ShardGroup::nextEventTime()
{
    Time t = std::numeric_limits<Time>::infinity();
    for (Simulator *s : shards_)
        t = std::min(t, s->nextEventTime());
    return t;
}

std::size_t
ShardGroup::pendingEvents() const
{
    std::size_t n = 0;
    for (const Simulator *s : shards_)
        n += s->pendingEvents();
    return n;
}

void
ShardGroup::advanceTo(Time until)
{
    if (pool_ && shards_.size() > 1) {
        pool_->parallelFor(shards_.size(), [&](std::size_t s) {
            shards_[s]->runUntil(until);
        });
        return;
    }
    for (Simulator *s : shards_)
        s->runUntil(until);
}

void
ShardGroup::advanceClocks(Time until)
{
    for (Simulator *s : shards_)
        s->advanceTo(until);
}

std::size_t
ShardGroup::stepMin()
{
    std::size_t best = npos;
    Time best_t = 0.0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const Time t = shards_[s]->nextEventTime();
        if (std::isinf(t))
            continue;
        if (best == npos || t < best_t) {
            best = s;
            best_t = t;
        }
    }
    if (best == npos)
        return npos;
    const std::uint64_t fired = shards_[best]->step(1);
    panic_if(fired != 1, "ShardGroup::stepMin lost a pending event");
    return best;
}

std::vector<std::size_t>
partitionShards(std::size_t items, std::size_t group_size,
                std::size_t shards)
{
    fatal_if(group_size == 0, "partitionShards: zero group size");
    fatal_if(shards == 0, "partitionShards: zero shard count");
    std::vector<std::size_t> out(items, 0);
    if (items == 0)
        return out;
    const std::size_t groups = (items + group_size - 1) / group_size;
    const std::size_t n = std::min(shards, groups);
    // Deal `groups` contiguous groups into `n` shards: the first `rem`
    // shards take one extra group so sizes differ by at most one.
    const std::size_t base = groups / n;
    const std::size_t rem = groups % n;
    for (std::size_t i = 0; i < items; ++i) {
        const std::size_t g = i / group_size;
        const std::size_t pivot = (base + 1) * rem;
        out[i] = g < pivot ? g / (base + 1) : rem + (g - pivot) / base;
    }
    return out;
}

} // namespace sim
} // namespace dhl
