/**
 * @file
 * Conservative time-windowed coordination of several DES shards.
 *
 * A ShardGroup drives K independent `Simulator` instances — each shard
 * owning a disjoint subset of the fleet (tracks, controllers, fault
 * injectors, per-shard maintenance/plant models) — with the classic
 * conservative-parallel-DES discipline:
 *
 *  - **Window advance** (`advanceTo`): when the coordinator knows no
 *    cross-shard interaction can happen before time W (the lookahead —
 *    a dispatch decision, the next arrival admission, an epoch
 *    boundary), every shard runs its own event loop up to W in
 *    parallel on a caller-participating ThreadPool.  Shard event
 *    callbacks must touch only shard-local state during a window;
 *    anything global is deferred to a per-shard log and merged by the
 *    coordinator in (time, shard, log-order) order afterwards.
 *
 *  - **Lockstep** (`stepMin`): when there is no lookahead (e.g. a
 *    queued request could start on any track the moment one frees),
 *    the coordinator fires the globally earliest event — ties broken
 *    by lowest shard id — on its own thread, exactly reproducing a
 *    single global event loop over the union of the shards.
 *
 * Determinism contract: with one shard the group degenerates to plain
 * `Simulator` calls; with N shards every merge point orders work by
 * (time, shard id, per-shard sequence), never by arrival order, so the
 * outcome is independent of thread scheduling.
 */

#ifndef DHL_SIM_SHARD_HPP
#define DHL_SIM_SHARD_HPP

#include <cstddef>
#include <vector>

#include "sim/simulator.hpp"

namespace dhl {

class ThreadPool;

namespace sim {

class ShardGroup
{
  public:
    ShardGroup() = default;

    ShardGroup(const ShardGroup &) = delete;
    ShardGroup &operator=(const ShardGroup &) = delete;

    /** Register a shard.  Shard ids are assigned in attach order and
     *  are the merge tie-break, so attach in canonical (global) order.
     *  The simulator must outlive the group. */
    void attach(Simulator *sim);

    /** Optional pool for parallel window advances.  Null (the default)
     *  runs windows serially on the calling thread — same results,
     *  shard order. */
    void setPool(ThreadPool *pool) { pool_ = pool; }

    std::size_t size() const { return shards_.size(); }

    Simulator &shard(std::size_t s) { return *shards_[s]; }

    /** Fleet-wide clock: the furthest shard (max over shard clocks).
     *  Outside a window all shards agree, because every window/lockstep
     *  primitive leaves stragglers advanced to the barrier. */
    Time now() const;

    /** Earliest pending event across all shards; +inf when idle. */
    Time nextEventTime();

    /** Total pending events across all shards. */
    std::size_t pendingEvents() const;

    /**
     * Conservative window: every shard runs its local queue up to
     * @p until (events at exactly @p until fire) and lands with its
     * clock at @p until.  Parallel when a pool is set.  The caller
     * guarantees no cross-shard interaction before @p until; shard
     * callbacks must confine themselves to shard-local state.
     */
    void advanceTo(Time until);

    /** Clock-only move of every shard to @p until; fatal if any shard
     *  has an event strictly earlier (see Simulator::advanceTo). */
    void advanceClocks(Time until);

    /**
     * Lockstep: fire the single globally earliest pending event — tie
     * broken by lowest shard id — on the calling thread, with global
     * side effects allowed.  Returns the shard that fired, or `npos`
     * if every queue is empty.
     */
    std::size_t stepMin();

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  private:
    std::vector<Simulator *> shards_;
    ThreadPool *pool_ = nullptr;
};

/**
 * Contiguous shard partition of @p items items that never splits a
 * group: items are grouped in consecutive blocks of @p group_size
 * (the shared-vacuum-plant domain size; 1 = fully independent) and
 * whole groups are dealt to at most @p shards contiguous shards with
 * near-equal group counts.  Returns the shard id of every item; the
 * shard count actually used is `1 + max(result)` (the request is
 * capped at the group count — a domain is the unit of isolation, so
 * more shards than domains cannot help).
 */
std::vector<std::size_t> partitionShards(std::size_t items,
                                         std::size_t group_size,
                                         std::size_t shards);

/**
 * Deterministic k-way merge cursor over per-shard logs that are each
 * already in (local) time order: repeatedly yields the shard whose
 * head record is earliest, ties to the lowest shard id.  Used by the
 * coordinators to apply deferred window effects in (time, shard,
 * log-order) order.
 *
 * @tparam TimeOf  Callable (shard, index) -> Time of that record.
 */
template <typename TimeOf>
class ShardMerge
{
  public:
    /** @param counts  Number of records per shard. */
    ShardMerge(const std::vector<std::size_t> &counts, TimeOf time_of)
        : counts_(counts), head_(counts.size(), 0),
          time_of_(std::move(time_of))
    {}

    /** Next (shard, index) pair in merge order; shard == npos when
     *  every log is exhausted. */
    std::pair<std::size_t, std::size_t>
    next()
    {
        std::size_t best = ShardGroup::npos;
        Time best_t = 0.0;
        for (std::size_t s = 0; s < counts_.size(); ++s) {
            if (head_[s] >= counts_[s])
                continue;
            const Time t = time_of_(s, head_[s]);
            if (best == ShardGroup::npos || t < best_t) {
                best = s;
                best_t = t;
            }
        }
        if (best == ShardGroup::npos)
            return {ShardGroup::npos, 0};
        return {best, head_[best]++};
    }

  private:
    std::vector<std::size_t> counts_;
    std::vector<std::size_t> head_;
    TimeOf time_of_;
};

} // namespace sim
} // namespace dhl

#endif // DHL_SIM_SHARD_HPP
