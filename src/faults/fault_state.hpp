/**
 * @file
 * The fault registry for the event-driven substrate.
 *
 * A FaultState tracks which repairable components of one DHL system —
 * the two LIMs, the track/vacuum assembly, and the rack docking
 * stations — are currently up, plus the cart repair shop (carts
 * rotating through the library's maintenance bay after a per-trip
 * breakdown).  Components *query* it ("can I launch?", "is this
 * station serviceable?") and the FaultInjector *drives* it by firing
 * failure and repair events; the registry itself schedules nothing.
 * The ops layer (src/ops) drives the same gates through launch
 * inhibits, so maintenance windows and common-cause outages share the
 * fault path's degraded-mode machinery end to end.
 *
 * It also integrates service downtime over simulated time, so a run's
 * observed availability can be compared against the closed-form
 * steady-state model in `dhl/reliability.hpp` (experiment E17).
 */

#ifndef DHL_FAULTS_FAULT_STATE_HPP
#define DHL_FAULTS_FAULT_STATE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "sim/trace.hpp"

namespace dhl {
namespace faults {

/** The repairable component kinds of one DHL system. */
enum class Component
{
    Lim,     ///< One of the two linear induction motors.
    Track,   ///< The track + vacuum tube assembly.
    Station, ///< One rack docking station.
    Cart,    ///< One cart (repair-shop rotation, not an outage).
};

std::string to_string(Component kind);

/** Bounded-backoff policy for retrying parked (fault-blocked) trips. */
struct RetryPolicy
{
    double initial_backoff = 1.0; ///< First retry delay, s (> 0).
    double multiplier = 2.0;      ///< Growth per failed retry (>= 1).
    double max_backoff = 60.0;    ///< Backoff ceiling, s (>= initial).
};

bool operator==(const RetryPolicy &a, const RetryPolicy &b);

/** Compute the next parked-trip retry delay under a policy. */
double nextBackoff(const RetryPolicy &policy, double previous);

/** The queryable fault registry of one DHL system. */
class FaultState
{
  public:
    /** Fires (with no arguments) after any component repair. */
    using Listener = std::function<void()>;

    /** Rolls the per-trip cart-breakdown dice for one cart; installed
     *  by the FaultInjector.  Returns true if the cart broke down (the
     *  roller is expected to have called sendCartToRepair). */
    using BreakdownRoll = std::function<bool(std::uint32_t)>;

    /** @param sim Simulator supplying timestamps (must outlive this). */
    explicit FaultState(sim::Simulator &sim);

    //------------------------------------------------------------------
    // Registration (FaultInjector)
    //------------------------------------------------------------------

    /** Register a component instance, initially up.  Indices of one
     *  kind must be registered densely from zero. */
    void addComponent(Component kind, std::uint32_t index);

    /** Registered instances of a kind (Cart: carts seen in repair). */
    std::size_t components(Component kind) const;

    //------------------------------------------------------------------
    // State transitions (FaultInjector)
    //------------------------------------------------------------------

    void fail(Component kind, std::uint32_t index);
    void repair(Component kind, std::uint32_t index);

    //------------------------------------------------------------------
    // Launch inhibits (ops layer: maintenance windows, common-cause
    // outages).  An inhibit blocks launches through the same gate a
    // LIM/track fault uses — launchOk()/serviceUp() go false and the
    // controller's degraded-mode machinery (queued opens, parked trips,
    // repair re-dispatch) engages with no code of its own.  Inhibits
    // nest: every push needs a matching pop.
    //------------------------------------------------------------------

    /** Block launches; @p reason appears in the trace (e.g.
     *  "maintenance", "vacuum plant 2 down"). */
    void pushLaunchInhibit(const std::string &reason);

    /** Release one inhibit; fires the repair listeners so held work
     *  re-dispatches immediately. */
    void popLaunchInhibit(const std::string &reason);

    /** Active launch inhibits. */
    std::size_t launchInhibits() const { return launch_inhibits_; }

    /** Send a cart to the repair shop for @p repair_time seconds. */
    void sendCartToRepair(std::uint32_t cart, double repair_time);

    /** Install the per-trip cart-breakdown roller. */
    void setBreakdownRoll(BreakdownRoll roll) { roll_ = std::move(roll); }

    /** Set the parked-trip retry policy consulted by controllers. */
    void setRetryPolicy(const RetryPolicy &policy);

    //------------------------------------------------------------------
    // Queries (components / controllers)
    //------------------------------------------------------------------

    /** Component up?  Unregistered components are up (a system with no
     *  injector behaves exactly like one with no faults).  For Cart,
     *  this is !cartInRepair(index). */
    bool up(Component kind, std::uint32_t index) const;

    /** Both LIMs and the track are up and no launch inhibit
     *  (maintenance window, common-cause outage) is active, so carts
     *  may launch. */
    bool launchOk() const;

    /** launchOk() and at least one docking station is up (no stations
     *  registered counts as up). */
    bool serviceUp() const;

    std::size_t stationsUp() const;

    /** Cart currently in the repair shop? */
    bool cartInRepair(std::uint32_t cart) const;

    /** When the cart's current repair completes (<= now if healthy). */
    double cartRepairEnd(std::uint32_t cart) const;

    /** Carts currently in the repair shop. */
    std::size_t cartsInRepair() const;

    /** Roll the per-trip breakdown dice for @p cart (false when no
     *  roller is installed — fault injection disabled). */
    bool rollCartBreakdown(std::uint32_t cart);

    const RetryPolicy &retryPolicy() const { return retry_; }

    //------------------------------------------------------------------
    // Notifications
    //------------------------------------------------------------------

    /** Subscribe to repair completions (controllers use this to
     *  dispatch held opens).  Listeners cannot be removed; they must
     *  outlive the FaultState or never fire after their owner dies. */
    void onRepair(Listener listener);

    /** Subscribe to outage onsets: fires after every component failure
     *  and after every launch-inhibit push (the ops dispatcher uses
     *  this to drain queued opens off a track the moment it goes
     *  down).  Same lifetime contract as onRepair. */
    void onOutage(Listener listener);

    //------------------------------------------------------------------
    // Accounting
    //------------------------------------------------------------------

    std::uint64_t failures(Component kind) const;
    std::uint64_t repairs(Component kind) const;

    /** Total cart repair-shop visits. */
    std::uint64_t cartRepairs() const { return cart_repairs_; }

    /**
     * Integrated service downtime (serviceUp() false) over
     * [0, min(now, up_to)], s.
     */
    double serviceDowntime(double up_to) const;

    /** 1 - serviceDowntime(horizon) / horizon. */
    double observedAvailability(double horizon) const;

    /** Service state transitions so far (up/down edge count). */
    std::size_t serviceTransitions() const { return transitions_.size(); }

    /** The raw service up/down edge log: (time, service up after the
     *  edge) pairs in time order.  The service starts up at t = 0.
     *  Bench code resamples the implied up/down cycles for bootstrap
     *  confidence intervals on observed availability (E17). */
    const std::vector<std::pair<double, bool>> &
    serviceLog() const
    {
        return transitions_;
    }

    /** Attach a trace recorder; fail/repair events are recorded under
     *  the "fault" category.  Pass nullptr to detach. */
    void attachTrace(sim::TraceRecorder *trace) { trace_ = trace; }

    //------------------------------------------------------------------
    // Checkpoint/restore (sim/snapshot.hpp)
    //------------------------------------------------------------------

    /**
     * Serialise the full registry: per-component up/down plus
     * fail/repair tallies, the cart repair shop, launch inhibits, and
     * the complete service edge log — the log in full so
     * serviceDowntime(t) answers identically for *any* t after a
     * restore, which per-stage availability accounting depends on.
     * Listeners, the breakdown roller, and the retry policy are
     * configuration re-established by the restoring harness.
     * restoreState() expects the same components registered; inhibits
     * are restored as a count, so ops processes must re-schedule their
     * releases without re-pushing.
     */
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r);

  private:
    struct KindState
    {
        std::vector<bool> down;
        std::uint64_t failures = 0;
        std::uint64_t repairs = 0;
        std::size_t down_count = 0;
    };

    KindState &kindState(Component kind);
    const KindState &kindState(Component kind) const;
    static void saveKind(sim::SnapshotWriter &w, const char *scope,
                         const KindState &ks);
    static void restoreKind(sim::SnapshotReader &r, const char *scope,
                            KindState &ks);
    void noteServiceEdge();
    void notifyRepair();
    void notifyOutage();
    void trace(Component kind, std::uint32_t index,
               const std::string &what);
    void traceOps(const std::string &what);

    // dhl-analyze: transient(sim_): constructor wiring
    sim::Simulator &sim_;
    KindState lims_;
    KindState track_;
    KindState stations_;

    std::unordered_map<std::uint32_t, double> cart_repair_end_;
    std::uint64_t cart_repairs_ = 0;
    std::uint64_t cart_failures_seen_ = 0; ///< distinct carts ever broken

    // dhl-analyze: transient(roll_, retry_, listeners_,
    // outage_listeners_, trace_): host-side wiring (callbacks, retry
    // policy, trace sink) re-installed by the harness before restore
    BreakdownRoll roll_;
    RetryPolicy retry_;
    std::vector<Listener> listeners_;
    std::vector<Listener> outage_listeners_;
    std::size_t launch_inhibits_ = 0;
    sim::TraceRecorder *trace_ = nullptr;

    /** Service up/down edges: (time, service up after the edge).  The
     *  service starts up at t = 0. */
    std::vector<std::pair<double, bool>> transitions_;
    bool service_up_ = true;
};

} // namespace faults
} // namespace dhl

#endif // DHL_FAULTS_FAULT_STATE_HPP
