/**
 * @file
 * Implementation of the fault injector.
 */

#include "faults/fault_injector.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dhl {
namespace faults {

namespace {

constexpr double kSecondsPerHour = 3600.0;

/** Exponential draws of mean ~MTBF can round to zero; clamp so a
 *  failure never lands at the exact instant of the preceding repair
 *  (which would violate the fail/repair alternation). */
constexpr double kMinUptime = 1e-9;

/** Stream indices for deriveSeed: one per component, disjoint from the
 *  two-level cart derivation below. */
constexpr std::uint64_t kLimStreamBase = 1;     // lims: 1, 2
constexpr std::uint64_t kTrackStream = 3;       // track: 3
constexpr std::uint64_t kStationStreamBase = 4; // stations: 4, 5, ...
constexpr std::uint64_t kCartStreamSalt = 0x4341525453ull; // "CARTS"

} // namespace

bool
operator==(const FaultConfig &a, const FaultConfig &b)
{
    return a.enabled == b.enabled && a.seed == b.seed &&
           a.horizon == b.horizon && a.lim_mtbf == b.lim_mtbf &&
           a.lim_mttr == b.lim_mttr && a.track_mtbf == b.track_mtbf &&
           a.track_mttr == b.track_mttr &&
           a.station_mtbf == b.station_mtbf &&
           a.station_mttr == b.station_mttr &&
           a.cart_repair_per_trip == b.cart_repair_per_trip &&
           a.cart_repair_hours == b.cart_repair_hours &&
           a.retry == b.retry;
}

void
validate(const FaultConfig &cfg)
{
    fatal_if(!(cfg.lim_mtbf > 0.0) || !(cfg.track_mtbf > 0.0) ||
                 !(cfg.station_mtbf > 0.0),
             "MTBFs must be positive");
    fatal_if(cfg.lim_mttr < 0.0 || cfg.track_mttr < 0.0 ||
                 cfg.station_mttr < 0.0,
             "MTTRs must be non-negative");
    fatal_if(cfg.cart_repair_per_trip < 0.0 ||
                 cfg.cart_repair_per_trip > 1.0,
             "cart repair probability must be in [0, 1]");
    fatal_if(cfg.cart_repair_hours < 0.0,
             "cart repair turnaround must be non-negative");
    fatal_if(!(cfg.horizon > 0.0), "fault horizon must be positive");
    fatal_if(!(cfg.retry.initial_backoff > 0.0),
             "retry backoff must be positive");
    fatal_if(cfg.retry.multiplier < 1.0,
             "retry backoff multiplier must be >= 1");
    fatal_if(cfg.retry.max_backoff < cfg.retry.initial_backoff,
             "retry backoff ceiling must be >= the initial backoff");
}

FaultInjector::FaultInjector(sim::Simulator &sim, FaultState &state,
                             const FaultConfig &cfg, std::size_t stations,
                             std::string name)
    : sim::SimObject(sim, std::move(name)),
      state_(state),
      cfg_(cfg),
      cart_stream_base_(deriveSeed(cfg.seed, kCartStreamSalt))
{
    validate(cfg_);

    auto &sg = statsGroup();
    stat_failures_ =
        &sg.addCounter("failures", "component failures injected");
    stat_repairs_ =
        &sg.addCounter("repairs", "component repairs completed");
    stat_cart_repairs_ =
        &sg.addCounter("cart_repairs", "per-trip cart breakdowns");

    if (!cfg_.enabled)
        return;

    state_.setRetryPolicy(cfg_.retry);
    state_.setBreakdownRoll(
        [this](std::uint32_t cart) { return rollBreakdown(cart); });

    addUnit(Component::Lim, 0, cfg_.lim_mtbf, cfg_.lim_mttr,
            kLimStreamBase);
    addUnit(Component::Lim, 1, cfg_.lim_mtbf, cfg_.lim_mttr,
            kLimStreamBase + 1);
    addUnit(Component::Track, 0, cfg_.track_mtbf, cfg_.track_mttr,
            kTrackStream);
    for (std::size_t i = 0; i < stations; ++i) {
        addUnit(Component::Station, static_cast<std::uint32_t>(i),
                cfg_.station_mtbf, cfg_.station_mttr,
                kStationStreamBase + i);
    }
    for (std::size_t u = 0; u < units_.size(); ++u)
        scheduleFailure(u);
}

void
FaultInjector::addUnit(Component kind, std::uint32_t index,
                       double mtbf_hours, double mttr_hours,
                       std::uint64_t stream)
{
    state_.addComponent(kind, index);
    units_.push_back(Unit{kind, index, mtbf_hours * kSecondsPerHour,
                          mttr_hours * kSecondsPerHour,
                          Rng(deriveSeed(cfg_.seed, stream)),
                          sim::EventHandle{}});
}

void
FaultInjector::setBreakdownScale(BreakdownScale scale)
{
    breakdown_scale_ = std::move(scale);
}

void
FaultInjector::setMtbfScale(MtbfScale scale)
{
    mtbf_scale_ = std::move(scale);
}

void
FaultInjector::scheduleFailure(std::size_t unit)
{
    Unit &u = units_[unit];
    u.has_pending = false;
    double mtbf = u.mtbf;
    if (mtbf_scale_) {
        const double factor = mtbf_scale_(u.kind, u.index);
        fatal_if(!(factor > 0.0), "MTBF scale factor must be positive");
        mtbf *= factor;
    }
    const double uptime =
        std::max(u.rng.exponential(mtbf), kMinUptime);
    const double fail_at = now() + uptime;
    if (fail_at >= cfg_.horizon)
        return; // past the horizon: this component fails no more
    u.has_pending = true;
    u.pending_when = fail_at;
    u.pending_is_repair = false;
    u.pending = schedule(uptime, [this, unit] { failUnit(unit); });
}

void
FaultInjector::failUnit(std::size_t unit)
{
    Unit &u = units_[unit];
    state_.fail(u.kind, u.index);
    ++injected_;
    stat_failures_->increment();
    u.has_pending = true;
    u.pending_when = now() + u.mttr;
    u.pending_is_repair = true;
    u.pending = schedule(u.mttr, [this, unit] { repairUnit(unit); });
}

void
FaultInjector::repairUnit(std::size_t unit)
{
    Unit &u = units_[unit];
    state_.repair(u.kind, u.index);
    ++injected_;
    stat_repairs_->increment();
    scheduleFailure(unit);
}

bool
FaultInjector::rollBreakdown(std::uint32_t cart)
{
    if (cfg_.cart_repair_per_trip <= 0.0)
        return false; // never touch the stream: zero probability is free
    double p = cfg_.cart_repair_per_trip;
    if (breakdown_scale_) {
        const double factor = breakdown_scale_(cart);
        fatal_if(factor < 0.0,
                 "breakdown scale factor must be non-negative");
        p = std::min(p * factor, 1.0);
    }
    const auto it = cart_rngs_
                        .try_emplace(cart, Rng(deriveSeed(
                                               cart_stream_base_, cart)))
                        .first;
    if (it->second.uniform() >= p)
        return false;
    state_.sendCartToRepair(cart,
                            cfg_.cart_repair_hours * kSecondsPerHour);
    ++injected_;
    stat_cart_repairs_->increment();
    return true;
}

void
FaultInjector::stop()
{
    for (auto &u : units_) {
        simulator().cancel(u.pending);
        u.has_pending = false;
    }
}

void
FaultInjector::saveState(sim::SnapshotWriter &w) const
{
    sim::SnapshotScope<sim::SnapshotWriter> scope(w, "injector");
    w.putU64("units", units_.size());
    for (std::size_t i = 0; i < units_.size(); ++i) {
        const Unit &u = units_[i];
        std::string key("u");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotWriter> us(w, key);
        w.putRng("rng", u.rng);
        w.putBool("pending", u.has_pending);
        if (u.has_pending) {
            w.putDouble("when", u.pending_when);
            w.putBool("is_repair", u.pending_is_repair);
        }
    }

    std::vector<std::uint32_t> cart_ids;
    cart_ids.reserve(cart_rngs_.size());
    for (const auto &[id, rng] : cart_rngs_)
        cart_ids.push_back(id);
    std::sort(cart_ids.begin(), cart_ids.end());
    w.putU64("carts", cart_ids.size());
    for (std::size_t i = 0; i < cart_ids.size(); ++i) {
        std::string key("cart");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotWriter> cs(w, key);
        w.putU64("id", cart_ids[i]);
        w.putRng("rng", cart_rngs_.at(cart_ids[i]));
    }
    w.putU64("injected", injected_);
}

void
FaultInjector::restoreState(sim::SnapshotReader &r)
{
    // Drop the constructor-scheduled first failures; the checkpoint
    // says what is actually pending.
    stop();

    sim::SnapshotScope<sim::SnapshotReader> scope(r, "injector");
    fatal_if(r.getU64("units") != units_.size(),
             "injector restore: unit count does not match the "
             "checkpoint");
    for (std::size_t i = 0; i < units_.size(); ++i) {
        Unit &u = units_[i];
        std::string key("u");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotReader> us(r, key);
        r.getRng("rng", u.rng);
        u.has_pending = r.getBool("pending");
        if (!u.has_pending)
            continue;
        u.pending_when = r.getDouble("when");
        u.pending_is_repair = r.getBool("is_repair");
        const std::size_t unit = i;
        u.pending = u.pending_is_repair
                        ? simulator().scheduleAt(
                              u.pending_when,
                              [this, unit] { repairUnit(unit); })
                        : simulator().scheduleAt(
                              u.pending_when,
                              [this, unit] { failUnit(unit); });
    }

    cart_rngs_.clear();
    const std::uint64_t n_carts = r.getU64("carts");
    for (std::uint64_t i = 0; i < n_carts; ++i) {
        std::string key("cart");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotReader> cs(r, key);
        const auto id = static_cast<std::uint32_t>(r.getU64("id"));
        Rng rng; // placeholder stream; overwritten wholesale by getRng
        r.getRng("rng", rng);
        cart_rngs_.emplace(id, rng);
    }
    injected_ = r.getU64("injected");
}

} // namespace faults
} // namespace dhl
