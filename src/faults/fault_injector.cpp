/**
 * @file
 * Implementation of the fault injector.
 */

#include "faults/fault_injector.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dhl {
namespace faults {

namespace {

constexpr double kSecondsPerHour = 3600.0;

/** Exponential draws of mean ~MTBF can round to zero; clamp so a
 *  failure never lands at the exact instant of the preceding repair
 *  (which would violate the fail/repair alternation). */
constexpr double kMinUptime = 1e-9;

/** Stream indices for deriveSeed: one per component, disjoint from the
 *  two-level cart derivation below. */
constexpr std::uint64_t kLimStreamBase = 1;     // lims: 1, 2
constexpr std::uint64_t kTrackStream = 3;       // track: 3
constexpr std::uint64_t kStationStreamBase = 4; // stations: 4, 5, ...
constexpr std::uint64_t kCartStreamSalt = 0x4341525453ull; // "CARTS"

} // namespace

bool
operator==(const FaultConfig &a, const FaultConfig &b)
{
    return a.enabled == b.enabled && a.seed == b.seed &&
           a.horizon == b.horizon && a.lim_mtbf == b.lim_mtbf &&
           a.lim_mttr == b.lim_mttr && a.track_mtbf == b.track_mtbf &&
           a.track_mttr == b.track_mttr &&
           a.station_mtbf == b.station_mtbf &&
           a.station_mttr == b.station_mttr &&
           a.cart_repair_per_trip == b.cart_repair_per_trip &&
           a.cart_repair_hours == b.cart_repair_hours &&
           a.retry == b.retry;
}

void
validate(const FaultConfig &cfg)
{
    fatal_if(!(cfg.lim_mtbf > 0.0) || !(cfg.track_mtbf > 0.0) ||
                 !(cfg.station_mtbf > 0.0),
             "MTBFs must be positive");
    fatal_if(cfg.lim_mttr < 0.0 || cfg.track_mttr < 0.0 ||
                 cfg.station_mttr < 0.0,
             "MTTRs must be non-negative");
    fatal_if(cfg.cart_repair_per_trip < 0.0 ||
                 cfg.cart_repair_per_trip > 1.0,
             "cart repair probability must be in [0, 1]");
    fatal_if(cfg.cart_repair_hours < 0.0,
             "cart repair turnaround must be non-negative");
    fatal_if(!(cfg.horizon > 0.0), "fault horizon must be positive");
    fatal_if(!(cfg.retry.initial_backoff > 0.0),
             "retry backoff must be positive");
    fatal_if(cfg.retry.multiplier < 1.0,
             "retry backoff multiplier must be >= 1");
    fatal_if(cfg.retry.max_backoff < cfg.retry.initial_backoff,
             "retry backoff ceiling must be >= the initial backoff");
}

FaultInjector::FaultInjector(sim::Simulator &sim, FaultState &state,
                             const FaultConfig &cfg, std::size_t stations,
                             std::string name)
    : sim::SimObject(sim, std::move(name)),
      state_(state),
      cfg_(cfg),
      cart_stream_base_(deriveSeed(cfg.seed, kCartStreamSalt))
{
    validate(cfg_);

    auto &sg = statsGroup();
    stat_failures_ =
        &sg.addCounter("failures", "component failures injected");
    stat_repairs_ =
        &sg.addCounter("repairs", "component repairs completed");
    stat_cart_repairs_ =
        &sg.addCounter("cart_repairs", "per-trip cart breakdowns");

    if (!cfg_.enabled)
        return;

    state_.setRetryPolicy(cfg_.retry);
    state_.setBreakdownRoll(
        [this](std::uint32_t cart) { return rollBreakdown(cart); });

    addUnit(Component::Lim, 0, cfg_.lim_mtbf, cfg_.lim_mttr,
            kLimStreamBase);
    addUnit(Component::Lim, 1, cfg_.lim_mtbf, cfg_.lim_mttr,
            kLimStreamBase + 1);
    addUnit(Component::Track, 0, cfg_.track_mtbf, cfg_.track_mttr,
            kTrackStream);
    for (std::size_t i = 0; i < stations; ++i) {
        addUnit(Component::Station, static_cast<std::uint32_t>(i),
                cfg_.station_mtbf, cfg_.station_mttr,
                kStationStreamBase + i);
    }
    for (std::size_t u = 0; u < units_.size(); ++u)
        scheduleFailure(u);
}

void
FaultInjector::addUnit(Component kind, std::uint32_t index,
                       double mtbf_hours, double mttr_hours,
                       std::uint64_t stream)
{
    state_.addComponent(kind, index);
    units_.push_back(Unit{kind, index, mtbf_hours * kSecondsPerHour,
                          mttr_hours * kSecondsPerHour,
                          Rng(deriveSeed(cfg_.seed, stream)),
                          sim::EventHandle{}});
}

void
FaultInjector::setBreakdownScale(BreakdownScale scale)
{
    breakdown_scale_ = std::move(scale);
}

void
FaultInjector::setMtbfScale(MtbfScale scale)
{
    mtbf_scale_ = std::move(scale);
}

void
FaultInjector::scheduleFailure(std::size_t unit)
{
    Unit &u = units_[unit];
    double mtbf = u.mtbf;
    if (mtbf_scale_) {
        const double factor = mtbf_scale_(u.kind, u.index);
        fatal_if(!(factor > 0.0), "MTBF scale factor must be positive");
        mtbf *= factor;
    }
    const double uptime =
        std::max(u.rng.exponential(mtbf), kMinUptime);
    const double fail_at = now() + uptime;
    if (fail_at >= cfg_.horizon)
        return; // past the horizon: this component fails no more
    u.pending = schedule(uptime, [this, unit] {
        Unit &fu = units_[unit];
        state_.fail(fu.kind, fu.index);
        ++injected_;
        stat_failures_->increment();
        fu.pending = schedule(fu.mttr, [this, unit] {
            Unit &ru = units_[unit];
            state_.repair(ru.kind, ru.index);
            ++injected_;
            stat_repairs_->increment();
            scheduleFailure(unit);
        });
    });
}

bool
FaultInjector::rollBreakdown(std::uint32_t cart)
{
    if (cfg_.cart_repair_per_trip <= 0.0)
        return false; // never touch the stream: zero probability is free
    double p = cfg_.cart_repair_per_trip;
    if (breakdown_scale_) {
        const double factor = breakdown_scale_(cart);
        fatal_if(factor < 0.0,
                 "breakdown scale factor must be non-negative");
        p = std::min(p * factor, 1.0);
    }
    const auto it = cart_rngs_
                        .try_emplace(cart, Rng(deriveSeed(
                                               cart_stream_base_, cart)))
                        .first;
    if (it->second.uniform() >= p)
        return false;
    state_.sendCartToRepair(cart,
                            cfg_.cart_repair_hours * kSecondsPerHour);
    ++injected_;
    stat_cart_repairs_->increment();
    return true;
}

void
FaultInjector::stop()
{
    for (auto &u : units_)
        simulator().cancel(u.pending);
}

} // namespace faults
} // namespace dhl
