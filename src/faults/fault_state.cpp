/**
 * @file
 * Implementation of the fault registry.
 */

#include "faults/fault_state.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace dhl {
namespace faults {

std::string
to_string(Component kind)
{
    switch (kind) {
      case Component::Lim:
        return "lim";
      case Component::Track:
        return "track";
      case Component::Station:
        return "station";
      case Component::Cart:
        return "cart";
    }
    return "?";
}

bool
operator==(const RetryPolicy &a, const RetryPolicy &b)
{
    return a.initial_backoff == b.initial_backoff &&
           a.multiplier == b.multiplier &&
           a.max_backoff == b.max_backoff;
}

double
nextBackoff(const RetryPolicy &policy, double previous)
{
    if (previous <= 0.0)
        return policy.initial_backoff;
    return std::min(previous * policy.multiplier, policy.max_backoff);
}

FaultState::FaultState(sim::Simulator &sim) : sim_(sim) {}

FaultState::KindState &
FaultState::kindState(Component kind)
{
    switch (kind) {
      case Component::Lim:
        return lims_;
      case Component::Track:
        return track_;
      case Component::Station:
        return stations_;
      case Component::Cart:
        break;
    }
    fatal("carts rotate through the repair shop (sendCartToRepair); "
          "they have no up/down registry entry");
}

const FaultState::KindState &
FaultState::kindState(Component kind) const
{
    return const_cast<FaultState *>(this)->kindState(kind);
}

void
FaultState::addComponent(Component kind, std::uint32_t index)
{
    KindState &ks = kindState(kind);
    fatal_if(index != ks.down.size(),
             "components must be registered densely from index 0");
    ks.down.push_back(false);
}

std::size_t
FaultState::components(Component kind) const
{
    if (kind == Component::Cart)
        return cart_repair_end_.size();
    return kindState(kind).down.size();
}

void
FaultState::trace(Component kind, std::uint32_t index,
                  const std::string &what)
{
    if (trace_ != nullptr && trace_->enabled()) {
        trace_->record("fault",
                       to_string(kind) + std::to_string(index), what);
    }
}

void
FaultState::noteServiceEdge()
{
    const bool now_up = serviceUp();
    if (now_up == service_up_)
        return;
    service_up_ = now_up;
    transitions_.emplace_back(sim_.now(), now_up);
}

void
FaultState::fail(Component kind, std::uint32_t index)
{
    KindState &ks = kindState(kind);
    fatal_if(index >= ks.down.size(), "failing an unregistered component");
    panic_if(ks.down[index], "component failed while already down");
    ks.down[index] = true;
    ++ks.down_count;
    ++ks.failures;
    trace(kind, index,
          serviceUp() ? "failed" : "failed (service down)");
    noteServiceEdge();
    notifyOutage();
}

void
FaultState::pushLaunchInhibit(const std::string &reason)
{
    ++launch_inhibits_;
    traceOps("launches inhibited: " + reason);
    noteServiceEdge();
    notifyOutage();
}

void
FaultState::popLaunchInhibit(const std::string &reason)
{
    fatal_if(launch_inhibits_ == 0,
             "popLaunchInhibit without a matching push");
    --launch_inhibits_;
    traceOps("launch inhibit released: " + reason);
    noteServiceEdge();
    notifyRepair();
}

void
FaultState::repair(Component kind, std::uint32_t index)
{
    KindState &ks = kindState(kind);
    fatal_if(index >= ks.down.size(),
             "repairing an unregistered component");
    panic_if(!ks.down[index], "component repaired while already up");
    ks.down[index] = false;
    --ks.down_count;
    ++ks.repairs;
    trace(kind, index,
          serviceUp() ? "repaired (service up)" : "repaired");
    noteServiceEdge();
    notifyRepair();
}

void
FaultState::notifyRepair()
{
    for (auto &listener : listeners_)
        listener();
}

void
FaultState::notifyOutage()
{
    for (auto &listener : outage_listeners_)
        listener();
}

void
FaultState::traceOps(const std::string &what)
{
    if (trace_ != nullptr && trace_->enabled())
        trace_->record("fault", "ops", what);
}

void
FaultState::sendCartToRepair(std::uint32_t cart, double repair_time)
{
    fatal_if(repair_time < 0.0, "cart repair time must be non-negative");
    const double end = sim_.now() + repair_time;
    auto [it, inserted] = cart_repair_end_.try_emplace(cart, end);
    if (!inserted) {
        panic_if(it->second > sim_.now(),
                 "cart sent to repair while already in the shop");
        it->second = end;
    }
    ++cart_repairs_;
    trace(Component::Cart, cart,
          "entered repair until " + units::formatSig(end, 6) + " s");
}

void
FaultState::setRetryPolicy(const RetryPolicy &policy)
{
    fatal_if(!(policy.initial_backoff > 0.0),
             "retry backoff must be positive");
    fatal_if(policy.multiplier < 1.0,
             "retry backoff multiplier must be >= 1");
    fatal_if(policy.max_backoff < policy.initial_backoff,
             "retry backoff ceiling must be >= the initial backoff");
    retry_ = policy;
}

bool
FaultState::up(Component kind, std::uint32_t index) const
{
    if (kind == Component::Cart)
        return !cartInRepair(index);
    const KindState &ks = kindState(kind);
    if (index >= ks.down.size())
        return true; // unregistered: fault injection not configured
    return !ks.down[index];
}

bool
FaultState::launchOk() const
{
    return lims_.down_count == 0 && track_.down_count == 0 &&
           launch_inhibits_ == 0;
}

bool
FaultState::serviceUp() const
{
    if (!launchOk())
        return false;
    return stations_.down.empty() ||
           stations_.down_count < stations_.down.size();
}

std::size_t
FaultState::stationsUp() const
{
    return stations_.down.size() - stations_.down_count;
}

bool
FaultState::cartInRepair(std::uint32_t cart) const
{
    const auto it = cart_repair_end_.find(cart);
    return it != cart_repair_end_.end() && it->second > sim_.now();
}

double
FaultState::cartRepairEnd(std::uint32_t cart) const
{
    const auto it = cart_repair_end_.find(cart);
    return it == cart_repair_end_.end() ? sim_.now() : it->second;
}

std::size_t
FaultState::cartsInRepair() const
{
    const double t = sim_.now();
    return static_cast<std::size_t>(std::count_if(
        cart_repair_end_.begin(), cart_repair_end_.end(),
        [t](const auto &entry) { return entry.second > t; }));
}

bool
FaultState::rollCartBreakdown(std::uint32_t cart)
{
    if (!roll_)
        return false;
    return roll_(cart);
}

void
FaultState::onRepair(Listener listener)
{
    fatal_if(!listener, "repair listener must be callable");
    listeners_.push_back(std::move(listener));
}

void
FaultState::onOutage(Listener listener)
{
    fatal_if(!listener, "outage listener must be callable");
    outage_listeners_.push_back(std::move(listener));
}

std::uint64_t
FaultState::failures(Component kind) const
{
    if (kind == Component::Cart)
        return cart_repairs_;
    return kindState(kind).failures;
}

std::uint64_t
FaultState::repairs(Component kind) const
{
    if (kind == Component::Cart)
        return cart_repairs_;
    return kindState(kind).repairs;
}

double
FaultState::serviceDowntime(double up_to) const
{
    fatal_if(up_to < 0.0, "downtime horizon must be non-negative");
    const double end = std::min(up_to, sim_.now());
    double down = 0.0;
    double down_since = 0.0;
    bool is_down = false; // service starts up at t = 0
    for (const auto &[when, up_after] : transitions_) {
        if (when >= end)
            break;
        if (!up_after && !is_down) {
            is_down = true;
            down_since = when;
        } else if (up_after && is_down) {
            is_down = false;
            down += when - down_since;
        }
    }
    if (is_down)
        down += end - down_since;
    return down;
}

void
FaultState::saveKind(sim::SnapshotWriter &w, const char *scope,
                     const KindState &ks)
{
    sim::SnapshotScope<sim::SnapshotWriter> s(w, scope);
    w.putU64("n", ks.down.size());
    for (std::size_t i = 0; i < ks.down.size(); ++i) {
        std::string key("down");
        key += std::to_string(i);
        w.putBool(key, ks.down[i]);
    }
    w.putU64("failures", ks.failures);
    w.putU64("repairs", ks.repairs);
}

void
FaultState::restoreKind(sim::SnapshotReader &r, const char *scope,
                        KindState &ks)
{
    sim::SnapshotScope<sim::SnapshotReader> s(r, scope);
    fatal_if(r.getU64("n") != ks.down.size(),
             "fault restore: component count does not match the "
             "checkpoint");
    ks.down_count = 0;
    for (std::size_t i = 0; i < ks.down.size(); ++i) {
        std::string key("down");
        key += std::to_string(i);
        ks.down[i] = r.getBool(key);
        if (ks.down[i])
            ++ks.down_count;
    }
    ks.failures = r.getU64("failures");
    ks.repairs = r.getU64("repairs");
}

void
FaultState::saveState(sim::SnapshotWriter &w) const
{
    sim::SnapshotScope<sim::SnapshotWriter> scope(w, "faults");
    saveKind(w, "lims", lims_);
    saveKind(w, "track", track_);
    saveKind(w, "stations", stations_);

    // The repair shop, sorted by cart id for a canonical document.
    std::vector<std::pair<std::uint32_t, double>> shop(
        cart_repair_end_.begin(), cart_repair_end_.end());
    std::sort(shop.begin(), shop.end());
    w.putU64("carts", shop.size());
    for (std::size_t i = 0; i < shop.size(); ++i) {
        std::string key("cart");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotWriter> cs(w, key);
        w.putU64("id", shop[i].first);
        w.putDouble("end", shop[i].second);
    }
    w.putU64("cart_repairs", cart_repairs_);
    w.putU64("cart_failures_seen", cart_failures_seen_);
    w.putU64("launch_inhibits", launch_inhibits_);

    w.putBool("service_up", service_up_);
    w.putU64("edges", transitions_.size());
    for (std::size_t i = 0; i < transitions_.size(); ++i) {
        std::string key("edge");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotWriter> es(w, key);
        w.putDouble("when", transitions_[i].first);
        w.putBool("up", transitions_[i].second);
    }
}

void
FaultState::restoreState(sim::SnapshotReader &r)
{
    sim::SnapshotScope<sim::SnapshotReader> scope(r, "faults");
    restoreKind(r, "lims", lims_);
    restoreKind(r, "track", track_);
    restoreKind(r, "stations", stations_);

    cart_repair_end_.clear();
    const std::uint64_t n_carts = r.getU64("carts");
    for (std::uint64_t i = 0; i < n_carts; ++i) {
        std::string key("cart");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotReader> cs(r, key);
        const auto id = static_cast<std::uint32_t>(r.getU64("id"));
        cart_repair_end_.emplace(id, r.getDouble("end"));
    }
    cart_repairs_ = r.getU64("cart_repairs");
    cart_failures_seen_ = r.getU64("cart_failures_seen");
    launch_inhibits_ = r.getU64("launch_inhibits");

    service_up_ = r.getBool("service_up");
    transitions_.clear();
    const std::uint64_t n_edges = r.getU64("edges");
    transitions_.reserve(n_edges);
    for (std::uint64_t i = 0; i < n_edges; ++i) {
        std::string key("edge");
        key += std::to_string(i);
        sim::SnapshotScope<sim::SnapshotReader> es(r, key);
        const double when = r.getDouble("when");
        transitions_.emplace_back(when, r.getBool("up"));
    }
}

double
FaultState::observedAvailability(double horizon) const
{
    fatal_if(!(horizon > 0.0), "availability horizon must be positive");
    return 1.0 - serviceDowntime(horizon) / horizon;
}

} // namespace faults
} // namespace dhl
