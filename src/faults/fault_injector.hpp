/**
 * @file
 * Seeded, deterministic fault injection for the DES (Discussion §VI:
 * serviceability — false-floor access for track/LIM/station repairs,
 * cart removal via the library — is a first-class design concern).
 *
 * A FaultInjector drives a FaultState by scheduling alternating
 * failure/repair events for every repairable component: exponentially
 * distributed uptimes with the configured MTBF and fixed MTTR repairs
 * (the steady-state availability MTBF / (MTBF + MTTR) holds for any
 * uptime/downtime distributions, and fixed repairs cut the variance of
 * finite-horizon measurements).  Each component draws from its own
 * xoshiro256** stream derived from the injector seed via deriveSeed,
 * so the fault timeline is a pure function of (seed, config) — never
 * of event interleaving or thread count.
 *
 * Per-trip cart breakdowns are demand-driven: the controller rolls
 * them at trip completion through FaultState::rollCartBreakdown, and
 * the injector supplies the per-cart dice (again one stream per cart).
 *
 * Failures are only scheduled before the configured horizon, so the
 * event queue drains shortly after it; an unbounded horizon is for
 * callers that step the simulator rather than running it dry.
 */

#ifndef DHL_FAULTS_FAULT_INJECTOR_HPP
#define DHL_FAULTS_FAULT_INJECTOR_HPP

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.hpp"
#include "faults/fault_state.hpp"
#include "sim/sim_object.hpp"

namespace dhl {
namespace faults {

/**
 * Fault-injection parameters.  The MTBF/MTTR fields mirror
 * core::ReliabilityConfig (hours; build one from the other with
 * core::toFaultConfig so the analytical and event-driven models always
 * agree); the rest configures the injection process itself.
 */
struct FaultConfig
{
    /** Master switch; a disabled config makes the injector inert. */
    bool enabled = false;

    /** Seed of every derived component stream. */
    std::uint64_t seed = 1;

    /** No failure is scheduled at or after this time, s (repairs of
     *  earlier failures still complete, so the queue drains). */
    double horizon = std::numeric_limits<double>::infinity();

    /** Each LIM (there are two). MTBF/MTTR in hours.  Defaults mirror
     *  core::ReliabilityConfig (see the source citations there). */
    double lim_mtbf = 43800.0;
    double lim_mttr = 6.0;

    /** Track + vacuum assembly (one). */
    double track_mtbf = 87600.0;
    double track_mttr = 12.0;

    /** Each rack docking station. */
    double station_mtbf = 61320.0;
    double station_mttr = 2.0;

    /** Probability a cart needs repair after a trip (mechanical). */
    double cart_repair_per_trip = 2e-5;

    /** Cart repair turnaround at the library, hours. */
    double cart_repair_hours = 2.0;

    /** Parked-trip retry policy installed into the FaultState. */
    RetryPolicy retry{};
};

bool operator==(const FaultConfig &a, const FaultConfig &b);

/** Validate; throws FatalError on nonsense.  Accepts exactly the
 *  MTBF/MTTR edge cases core::validate(ReliabilityConfig) accepts
 *  (zero MTTRs, zero cart breakdown probability, ...). */
void validate(const FaultConfig &cfg);

/** The fault-injection process (one per DHL system). */
class FaultInjector : public sim::SimObject
{
  public:
    /**
     * @param sim      Owning simulator.
     * @param state    Registry to drive (must outlive the injector).
     * @param cfg      Injection parameters.
     * @param stations Docking stations of the driven system.
     * @param name     SimObject name.
     */
    FaultInjector(sim::Simulator &sim, FaultState &state,
                  const FaultConfig &cfg, std::size_t stations,
                  std::string name = "faults");

    const FaultConfig &config() const { return cfg_; }

    /** Failure + repair events injected so far. */
    std::uint64_t eventsInjected() const { return injected_; }

    //------------------------------------------------------------------
    // Wear coupling (ops layer).  The base process is memoryless; these
    // hooks let accumulated wear make rates state-dependent.  Both
    // consume exactly the same RNG stream positions as the unhooked
    // process, so a hook that returns 1.0 is byte-identical to no hook.
    //------------------------------------------------------------------

    /** Multiplies cart_repair_per_trip at roll time (per cart).  The
     *  scaled probability is clamped to [0, 1]. */
    using BreakdownScale = std::function<double(std::uint32_t cart)>;

    /** Multiplies a unit's MTBF when its next uptime is drawn.  Must
     *  return a positive factor. */
    using MtbfScale =
        std::function<double(Component kind, std::uint32_t index)>;

    void setBreakdownScale(BreakdownScale scale);
    void setMtbfScale(MtbfScale scale);

    /** Cancel all pending fault events (the registry keeps its current
     *  state; already-failed components still get their repair). */
    void stop();

    //------------------------------------------------------------------
    // Checkpoint/restore.  Each unit's pending event is tracked as
    // (absolute time, fail-or-repair), so a checkpoint captures the
    // exact fault timeline position: RNG stream per unit and per cart,
    // plus which transition fires next and when.  restoreState()
    // cancels the constructor-scheduled failures, restores every
    // stream, and re-schedules the saved transitions at their absolute
    // times — byte-identical continuation of the timeline.
    //------------------------------------------------------------------

    void saveState(sim::SnapshotWriter &w) const override;
    void restoreState(sim::SnapshotReader &r) override;

  private:
    struct Unit
    {
        Component kind;
        std::uint32_t index;
        double mtbf; ///< s
        double mttr; ///< s
        Rng rng;
        sim::EventHandle pending;
        bool has_pending = false;
        double pending_when = 0.0;
        bool pending_is_repair = false;
    };

    void scheduleFailure(std::size_t unit);
    void failUnit(std::size_t unit);
    void repairUnit(std::size_t unit);
    void addUnit(Component kind, std::uint32_t index, double mtbf_hours,
                 double mttr_hours, std::uint64_t stream);
    bool rollBreakdown(std::uint32_t cart);

    // dhl-analyze: transient(state_, cfg_): constructor wiring — the
    // shared FaultState snapshots itself; the config is a constructor
    // input validated against the checkpointed unit count
    FaultState &state_;
    FaultConfig cfg_;
    // dhl-analyze: transient(breakdown_scale_, mtbf_scale_): host-side
    // policy callbacks, re-installed by the experiment harness
    BreakdownScale breakdown_scale_;
    MtbfScale mtbf_scale_;
    std::vector<Unit> units_;
    // dhl-analyze: transient(cart_stream_base_): derived from cfg_.seed
    // by the constructor, never mutated afterwards
    std::uint64_t cart_stream_base_;
    std::unordered_map<std::uint32_t, Rng> cart_rngs_;
    std::uint64_t injected_ = 0;

    // dhl-analyze: transient(stat_failures_, stat_repairs_,
    // stat_cart_repairs_): host-side stats tallies, restart from the
    // boundary
    stats::Counter *stat_failures_;
    stats::Counter *stat_repairs_;
    stats::Counter *stat_cart_repairs_;
};

} // namespace faults
} // namespace dhl

#endif // DHL_FAULTS_FAULT_INJECTOR_HPP
