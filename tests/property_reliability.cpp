/**
 * @file
 * Monte-Carlo validation of the closed-form RAID loss probabilities
 * and property checks on the availability model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "dhl/reliability.hpp"
#include "storage/raid.hpp"

using namespace dhl;
using namespace dhl::storage;

class RaidMonteCarlo : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RaidMonteCarlo, GroupLossMatchesSimulation)
{
    // Simulate per-SSD failures and compare the empirical group-loss
    // frequency with the binomial closed form.
    Rng rng(GetParam());
    const double p = 0.05;
    RaidConfig cfg;
    cfg.level = RaidLevel::Raid6;
    cfg.group_size = 8;
    RaidModel model(referenceM2Ssd(), 32, cfg);

    const int trials = 200000;
    int losses = 0;
    for (int t = 0; t < trials; ++t) {
        int failed = 0;
        for (std::size_t d = 0; d < cfg.group_size; ++d) {
            if (rng.uniform() < p)
                ++failed;
        }
        if (failed > 2) // beyond RAID6's parity
            ++losses;
    }
    const double empirical = static_cast<double>(losses) / trials;
    const double closed = model.groupLossProbability(p);
    // ~4.7e-3 expected; 200k trials give ~3 % relative noise.
    EXPECT_NEAR(empirical, closed, closed * 0.15);
}

TEST_P(RaidMonteCarlo, Raid5MatchesToo)
{
    Rng rng(GetParam() + 7);
    const double p = 0.03;
    RaidConfig cfg;
    cfg.level = RaidLevel::Raid5;
    cfg.group_size = 4;
    RaidModel model(referenceM2Ssd(), 32, cfg);

    const int trials = 100000;
    int losses = 0;
    for (int t = 0; t < trials; ++t) {
        int failed = 0;
        for (std::size_t d = 0; d < cfg.group_size; ++d) {
            if (rng.uniform() < p)
                ++failed;
        }
        if (failed > 1)
            ++losses;
    }
    const double empirical = static_cast<double>(losses) / trials;
    const double closed = model.groupLossProbability(p);
    EXPECT_NEAR(empirical, closed, closed * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaidMonteCarlo,
                         ::testing::Values(5u, 55u, 555u));

TEST(RaidProperty, LossMonotoneInFailureProbability)
{
    RaidConfig cfg;
    cfg.level = RaidLevel::Raid6;
    cfg.group_size = 8;
    RaidModel model(referenceM2Ssd(), 32, cfg);
    double prev = -1.0;
    for (double p = 0.0; p <= 1.0; p += 0.05) {
        const double loss = model.tripLossProbability(p);
        EXPECT_GE(loss, prev);
        EXPECT_GE(loss, 0.0);
        EXPECT_LE(loss, 1.0);
        prev = loss;
    }
    EXPECT_NEAR(model.tripLossProbability(1.0), 1.0, 1e-12);
}

TEST(AvailabilityProperty, MonotoneInMttr)
{
    using namespace dhl::core;
    double prev = 2.0;
    for (double mttr : {1.0, 8.0, 24.0, 100.0}) {
        ReliabilityConfig rel;
        rel.lim_mttr = mttr;
        AvailabilityModel m(defaultConfig(), rel);
        const double a = m.report().system_availability;
        EXPECT_LT(a, prev);
        EXPECT_GT(a, 0.0);
        EXPECT_LE(a, 1.0);
        prev = a;
    }
}
