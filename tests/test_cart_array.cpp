/**
 * @file
 * Unit tests for the cart SSD array (capacity, mass, PCIe-capped
 * bandwidth).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "storage/cart_array.hpp"

using namespace dhl::storage;
namespace u = dhl::units;

TEST(CartArrayTest, PaperCapacities)
{
    const auto &m2 = referenceM2Ssd();
    EXPECT_DOUBLE_EQ(CartArray(m2, 16).capacity(), u::terabytes(128));
    EXPECT_DOUBLE_EQ(CartArray(m2, 32).capacity(), u::terabytes(256));
    EXPECT_DOUBLE_EQ(CartArray(m2, 64).capacity(), u::terabytes(512));
}

TEST(CartArrayTest, PaperPayloadMasses)
{
    const auto &m2 = referenceM2Ssd();
    // Paper §IV-A: 91 / 180(181) / 363 g for 16 / 32 / 64 SSDs.
    EXPECT_NEAR(u::toGrams(CartArray(m2, 16).payloadMass()), 91.0, 0.8);
    EXPECT_NEAR(u::toGrams(CartArray(m2, 32).payloadMass()), 181.4, 0.8);
    EXPECT_NEAR(u::toGrams(CartArray(m2, 64).payloadMass()), 363.0, 0.8);
}

TEST(CartArrayTest, PcieCeilingMatchesPaper)
{
    // Paper: PCIe 6 provides 3.8 Tbit/s for 64 lanes, 1 lane per SSD.
    const auto &m2 = referenceM2Ssd();
    CartArray big(m2, 64);
    EXPECT_NEAR(big.pcieBandwidth(), u::terabitsPerSecond(3.8), 1.0);
}

TEST(CartArrayTest, ReadBandwidthDeviceLimited)
{
    // 32 SSDs * 7.1 GB/s = 227 GB/s device-side, below the PCIe cap of
    // 32 lanes * 59.375 Gbit/s = 237.5 GB/s -> device limited.
    const auto &m2 = referenceM2Ssd();
    CartArray cart(m2, 32);
    EXPECT_NEAR(cart.readBandwidth(), 32 * u::megabytes(7100), 1.0);
    EXPECT_LT(cart.readBandwidth(), cart.pcieBandwidth());
}

TEST(CartArrayTest, ReadBandwidthPcieLimitedWithFewLanes)
{
    const auto &m2 = referenceM2Ssd();
    PcieConfig skinny;
    skinny.lanes_per_ssd = 1;
    skinny.lane_bandwidth = u::gigabytes(1); // deliberately tight
    CartArray cart(m2, 32, skinny);
    EXPECT_DOUBLE_EQ(cart.readBandwidth(), 32 * u::gigabytes(1));
    EXPECT_DOUBLE_EQ(cart.writeBandwidth(), 32 * u::gigabytes(1));
}

TEST(CartArrayTest, FullReadAndWriteTimes)
{
    const auto &m2 = referenceM2Ssd();
    CartArray cart(m2, 32);
    // 256 TB at 227.2 GB/s ~ 1127 s; write at 192 GB/s ~ 1333 s.
    EXPECT_NEAR(cart.fullReadTime(), u::terabytes(256) / (32 * 7.1e9),
                1e-6);
    EXPECT_GT(cart.fullWriteTime(), cart.fullReadTime());
}

TEST(CartArrayTest, ActivePowerForHeatSinks)
{
    // Discussion §VI: M.2 SSDs draw up to 10 W under load.
    const auto &m2 = referenceM2Ssd();
    EXPECT_DOUBLE_EQ(CartArray(m2, 32).activePower(), 320.0);
}

TEST(CartArrayTest, RejectsBadConfigs)
{
    const auto &m2 = referenceM2Ssd();
    EXPECT_THROW(CartArray(m2, 0), dhl::FatalError);
    PcieConfig bad;
    bad.lanes_per_ssd = 0;
    EXPECT_THROW(CartArray(m2, 32, bad), dhl::FatalError);
    bad = PcieConfig{};
    bad.lane_bandwidth = 0.0;
    EXPECT_THROW(CartArray(m2, 32, bad), dhl::FatalError);
    DeviceSpec broken = m2;
    broken.capacity = 0.0;
    EXPECT_THROW(CartArray(broken, 32), dhl::FatalError);
}
