/**
 * @file
 * Unit tests for the cart entity's state machine and payload handling.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/cart.hpp"

using namespace dhl::core;
namespace u = dhl::units;

namespace {

DhlConfig cfg = defaultConfig();

Cart
freshCart(double failure = 0.0)
{
    return Cart(0, cfg, dhl::storage::ConnectorKind::UsbC, failure);
}

} // namespace

TEST(CartTest, StartsStoredInLibrary)
{
    Cart c = freshCart();
    EXPECT_EQ(c.state(), CartState::Stored);
    EXPECT_EQ(c.place(), CartPlace::Library);
    EXPECT_DOUBLE_EQ(c.capacity(), u::terabytes(256));
    EXPECT_DOUBLE_EQ(c.storedBytes(), 0.0);
    EXPECT_EQ(c.trips(), 0u);
    EXPECT_EQ(c.ssds().size(), 32u);
}

TEST(CartTest, LoadUnloadStripesEvenly)
{
    Cart c = freshCart();
    c.loadBytes(u::terabytes(32));
    EXPECT_DOUBLE_EQ(c.storedBytes(), u::terabytes(32));
    for (const auto &s : c.ssds())
        EXPECT_DOUBLE_EQ(s.storedBytes(), u::terabytes(1));
    c.unloadBytes(u::terabytes(16));
    EXPECT_DOUBLE_EQ(c.storedBytes(), u::terabytes(16));
    c.eraseAll();
    EXPECT_DOUBLE_EQ(c.storedBytes(), 0.0);
}

TEST(CartTest, LoadOverflowRejected)
{
    Cart c = freshCart();
    EXPECT_THROW(c.loadBytes(u::terabytes(257)), dhl::FatalError);
    c.loadBytes(u::terabytes(256));
    EXPECT_THROW(c.loadBytes(1.0), dhl::FatalError);
    EXPECT_THROW(c.unloadBytes(u::terabytes(300)), dhl::FatalError);
}

TEST(CartTest, FullTripLifecycle)
{
    Cart c = freshCart();
    c.beginUndock();
    EXPECT_EQ(c.state(), CartState::Undocking);
    c.launch();
    EXPECT_EQ(c.state(), CartState::InFlight);
    EXPECT_EQ(c.place(), CartPlace::Track);
    c.beginDock(CartPlace::Rack);
    EXPECT_EQ(c.state(), CartState::Docking);
    EXPECT_EQ(c.trips(), 1u);
    c.finishDock();
    EXPECT_EQ(c.state(), CartState::Docked);
    EXPECT_EQ(c.place(), CartPlace::Rack);

    c.beginIo();
    EXPECT_EQ(c.state(), CartState::Busy);
    c.finishIo();
    EXPECT_EQ(c.state(), CartState::Docked);

    // Return journey ends Stored at the library.
    c.beginUndock();
    c.launch();
    c.beginDock(CartPlace::Library);
    c.finishDock();
    EXPECT_EQ(c.state(), CartState::Stored);
    EXPECT_EQ(c.place(), CartPlace::Library);
    EXPECT_EQ(c.trips(), 2u);
}

TEST(CartTest, IllegalTransitionsPanic)
{
    Cart c = freshCart();
    EXPECT_THROW(c.launch(), dhl::PanicError);        // not undocking
    EXPECT_THROW(c.beginDock(CartPlace::Rack), dhl::PanicError);
    EXPECT_THROW(c.finishDock(), dhl::PanicError);
    EXPECT_THROW(c.beginIo(), dhl::PanicError);       // not docked
    EXPECT_THROW(c.finishIo(), dhl::PanicError);

    c.beginUndock();
    EXPECT_THROW(c.beginUndock(), dhl::PanicError);   // already undocking
    c.launch();
    EXPECT_THROW(c.beginDock(CartPlace::Track), dhl::PanicError);
}

TEST(CartTest, MatingCyclesHitEverySsd)
{
    Cart c = freshCart();
    c.beginUndock(); // records one mating cycle
    for (const auto &s : c.ssds())
        EXPECT_EQ(s.matingCycles(), 1u);
}

TEST(CartTest, FailureInjectionAndRepair)
{
    dhl::Rng rng(123);
    Cart c = freshCart(1.0); // every SSD fails every trip
    c.loadBytes(u::terabytes(10));
    EXPECT_EQ(c.rollTripFailures(rng), 32u);
    EXPECT_EQ(c.unhealthySsds(), 32u);
    c.repairAll();
    EXPECT_EQ(c.unhealthySsds(), 0u);
    EXPECT_DOUBLE_EQ(c.storedBytes(), u::terabytes(10));
}

TEST(CartEnums, Names)
{
    EXPECT_EQ(to_string(CartState::Stored), "stored");
    EXPECT_EQ(to_string(CartState::InFlight), "in-flight");
    EXPECT_EQ(to_string(CartPlace::Rack), "rack");
    EXPECT_EQ(to_string(CartPlace::Track), "track");
}
