/**
 * @file
 * Unit tests for the workload generators.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "workloads/generator.hpp"

using namespace dhl::workloads;
using dhl::Rng;
namespace u = dhl::units;

TEST(PoissonBulkTest, RateAndSizesRoughlyCalibrated)
{
    Rng rng(1);
    PoissonBulkGenerator gen(60.0, u::terabytes(1), 0.5);
    const double duration = u::hours(100);
    const auto reqs = gen.generate(duration, rng);
    // Expect ~6000 requests at one per minute over 100 h.
    EXPECT_NEAR(static_cast<double>(reqs.size()), duration / 60.0,
                duration / 60.0 * 0.1);
    for (const auto &r : reqs) {
        ASSERT_GE(r.at, 0.0);
        ASSERT_LT(r.at, duration);
        ASSERT_GT(r.bytes, 0.0);
        EXPECT_EQ(r.tag, "bulk");
    }
    // Median of the log-normal should be near the configured median.
    std::vector<double> sizes;
    for (const auto &r : reqs)
        sizes.push_back(r.bytes);
    std::sort(sizes.begin(), sizes.end());
    EXPECT_NEAR(sizes[sizes.size() / 2], u::terabytes(1),
                u::terabytes(1) * 0.1);
}

TEST(PoissonBulkTest, ZeroSigmaIsConstantSize)
{
    Rng rng(2);
    PoissonBulkGenerator gen(10.0, u::gigabytes(500), 0.0);
    const auto reqs = gen.generate(u::hours(1), rng);
    ASSERT_FALSE(reqs.empty());
    for (const auto &r : reqs)
        EXPECT_DOUBLE_EQ(r.bytes, u::gigabytes(500));
}

TEST(PoissonBulkTest, ArrivalsSorted)
{
    Rng rng(3);
    PoissonBulkGenerator gen(5.0, 1e9, 1.0);
    auto reqs = gen.generate(1000.0, rng);
    for (std::size_t i = 1; i < reqs.size(); ++i)
        EXPECT_GE(reqs[i].at, reqs[i - 1].at);
}

TEST(PeriodicBackupTest, ExactCadenceWithoutJitter)
{
    Rng rng(4);
    PeriodicBackupGenerator gen(u::hours(6), u::petabytes(2));
    const auto reqs = gen.generate(u::days(1), rng);
    ASSERT_EQ(reqs.size(), 4u);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_DOUBLE_EQ(reqs[i].at, i * u::hours(6));
        EXPECT_DOUBLE_EQ(reqs[i].bytes, u::petabytes(2));
        EXPECT_EQ(reqs[i].tag, "backup");
    }
    EXPECT_DOUBLE_EQ(totalBytes(reqs), u::petabytes(8));
}

TEST(PeriodicBackupTest, JitterStaysWithinBounds)
{
    Rng rng(5);
    PeriodicBackupGenerator gen(100.0, 1e12, 0.25);
    const auto reqs = gen.generate(10000.0, rng);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const double base = static_cast<double>(i) * 100.0;
        EXPECT_GE(reqs[i].at, base);
        EXPECT_LT(reqs[i].at, base + 25.0);
    }
}

TEST(BurstSourceTest, LhcStyleBursts)
{
    Rng rng(6);
    BurstSourceGenerator gen(u::terabytes(150), 4.0, u::minutes(20));
    EXPECT_DOUBLE_EQ(gen.burstBytes(), u::terabytes(600));
    const auto reqs = gen.generate(u::hours(2), rng);
    ASSERT_EQ(reqs.size(), 6u);
    EXPECT_DOUBLE_EQ(reqs[0].at, 4.0); // ready when the fill completes
    EXPECT_DOUBLE_EQ(reqs[1].at, u::minutes(20) + 4.0);
    for (const auto &r : reqs)
        EXPECT_DOUBLE_EQ(r.bytes, u::terabytes(600));
}

TEST(ZipfDatasetTest, PopularSetsAccessedMore)
{
    Rng rng(7);
    ZipfDatasetGenerator gen(
        {{"hot", u::petabytes(29)}, {"warm", u::petabytes(13)},
         {"cool", u::petabytes(3)}},
        60.0, 1.2);
    const auto reqs = gen.generate(u::days(30), rng);
    ASSERT_GT(reqs.size(), 1000u);
    std::size_t hot = 0, cool = 0;
    for (const auto &r : reqs) {
        if (r.tag == "hot")
            ++hot;
        else if (r.tag == "cool")
            ++cool;
    }
    EXPECT_GT(hot, 2 * cool);
}

TEST(GeneratorValidation, RejectsNonsense)
{
    Rng rng(8);
    EXPECT_THROW(PoissonBulkGenerator(0.0, 1e9), dhl::FatalError);
    EXPECT_THROW(PoissonBulkGenerator(1.0, 0.0), dhl::FatalError);
    EXPECT_THROW(PeriodicBackupGenerator(0.0, 1e9), dhl::FatalError);
    EXPECT_THROW(PeriodicBackupGenerator(10.0, 1e9, 1.0),
                 dhl::FatalError);
    EXPECT_THROW(BurstSourceGenerator(0.0, 1.0, 10.0), dhl::FatalError);
    EXPECT_THROW(BurstSourceGenerator(1e9, 10.0, 5.0), dhl::FatalError);
    EXPECT_THROW(ZipfDatasetGenerator({}, 1.0), dhl::FatalError);
    PoissonBulkGenerator ok(1.0, 1e9);
    EXPECT_THROW(ok.generate(0.0, rng), dhl::FatalError);
}
