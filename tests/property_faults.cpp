/**
 * @file
 * Long-horizon property tests for the fault subsystem.
 *
 * Properties:
 *  1. Convergence — the DES's observed service availability under the
 *     seeded FaultInjector lands within 5% relative error of the
 *     closed-form system_availability for every tested seed.
 *  2. No transfer lost — bulk transfers under heavy fault injection
 *     complete every cart and read back every byte.
 *  3. Liveness — every parked/held trip eventually completes (the
 *     transfer finishes; nothing waits forever on a repaired system).
 *  4. Determinism — identical (seed, config) fault runs produce
 *     identical results, event for event.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/logging.hpp"
#include "dhl/reliability.hpp"
#include "dhl/simulation.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_state.hpp"

using namespace dhl;
using namespace dhl::core;

namespace {

constexpr double kSecondsPerHour = 3600.0;

/** Accelerated component rates (~500x) so a long horizon covers
 *  hundreds of failure/repair cycles per component. */
ReliabilityConfig
acceleratedRates()
{
    ReliabilityConfig rel;
    rel.lim_mtbf = 100.0;
    rel.lim_mttr = 8.0;
    rel.track_mtbf = 200.0;
    rel.track_mttr = 24.0;
    rel.station_mtbf = 60.0;
    rel.station_mttr = 4.0;
    rel.cart_repair_per_trip = 0.0;
    return rel;
}

} // namespace

TEST(FaultProperty, AvailabilityConvergesToClosedForm)
{
    const DhlConfig dhl = defaultConfig();
    const ReliabilityConfig rel = acceleratedRates();
    const AvailabilityModel model(dhl, rel);
    const double predicted = model.report().system_availability;
    const double horizon = 50000.0 * kSecondsPerHour;

    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        sim::Simulator sim;
        faults::FaultState state(sim);
        const faults::FaultConfig fc = toFaultConfig(rel, seed, horizon);
        faults::FaultInjector injector(sim, state, fc,
                                       dhl.docking_stations);
        sim.run();

        const double observed = state.observedAvailability(horizon);
        EXPECT_NEAR(observed, predicted, 0.05 * predicted)
            << "seed " << seed << " diverged from the closed form";
        EXPECT_GT(state.serviceTransitions(), 100u)
            << "the horizon must cover many failure cycles";
    }
}

TEST(FaultProperty, NoTransferLostUnderHeavyFaults)
{
    DhlConfig cfg = defaultConfig();
    cfg.docking_stations = 2;

    // Heavily accelerated: multiple outages land inside the transfer.
    ReliabilityConfig rel;
    rel.lim_mtbf = 0.05;
    rel.lim_mttr = 0.01;
    rel.track_mtbf = 0.1;
    rel.track_mttr = 0.012;
    rel.station_mtbf = 0.03;
    rel.station_mttr = 0.008;
    rel.cart_repair_per_trip = 0.05;
    rel.cart_repair_hours = 0.01;

    const double dataset = 32.0 * cfg.cartCapacity().value();

    DhlSimulation des(cfg);
    BulkRunOptions opts;
    opts.include_read_time = true;
    opts.pipelined = true;
    opts.faults = toFaultConfig(rel, 11);
    const BulkRunResult r = des.runBulkTransfer(dataset, opts);

    // Every cart completed its round trip (runBulkTransfer panics
    // otherwise) and every stored byte was read back: nothing lost.
    EXPECT_EQ(r.carts, 32u);
    EXPECT_DOUBLE_EQ(r.bytes_read, dataset);
    EXPECT_EQ(r.launches, 64u) << "one round trip per cart";

    // The run genuinely exercised degraded mode.
    const auto *fs = des.faultState();
    ASSERT_NE(fs, nullptr);
    EXPECT_GT(fs->failures(faults::Component::Lim) +
                  fs->failures(faults::Component::Track) +
                  fs->failures(faults::Component::Station),
              0u);
    EXPECT_GT(des.controller().parkedLaunches() +
                  des.controller().heldOpens() +
                  des.controller().queuedOpens() +
                  des.controller().cartBreakdowns(),
              0u);

    // Liveness: the clock advanced past the clean-run time (outages
    // stretched the transfer) but the transfer did finish.
    EXPECT_GT(r.total_time, 0.0);
    EXPECT_TRUE(std::isfinite(r.total_time));
    EXPECT_EQ(des.controller().queuedOpens(), 0u)
        << "no open left behind";
}

TEST(FaultProperty, FaultRunsAreDeterministic)
{
    DhlConfig cfg = defaultConfig();
    ReliabilityConfig rel;
    rel.lim_mtbf = 0.1;
    rel.lim_mttr = 0.01;
    rel.track_mtbf = 0.2;
    rel.track_mttr = 0.02;
    rel.station_mtbf = 0.08;
    rel.station_mttr = 0.01;
    rel.cart_repair_per_trip = 0.1;
    rel.cart_repair_hours = 0.005;

    const double dataset = 16.0 * cfg.cartCapacity().value();

    auto run = [&] {
        DhlSimulation des(cfg);
        BulkRunOptions opts;
        opts.faults = toFaultConfig(rel, 5);
        const BulkRunResult r = des.runBulkTransfer(dataset, opts);
        return std::make_tuple(r.total_time, r.total_energy, r.launches,
                               des.controller().parkedLaunches(),
                               des.controller().cartBreakdowns(),
                               des.faultInjector()->eventsInjected());
    };

    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a, b) << "identical (seed, config) must replay exactly";
}

TEST(FaultProperty, ZeroRatesMatchFaultFreeRunExactly)
{
    // A fault config whose injector can never fire must leave the
    // transfer byte-identical to a run without fault injection.
    DhlConfig cfg = defaultConfig();
    const double dataset = 8.0 * cfg.cartCapacity().value();

    DhlSimulation clean(cfg);
    const BulkRunResult rc = clean.runBulkTransfer(dataset);

    DhlSimulation faulty(cfg);
    BulkRunOptions opts;
    opts.faults.enabled = true;
    opts.faults.horizon = 1e-9; // no failure is ever scheduled
    opts.faults.cart_repair_per_trip = 0.0;
    const BulkRunResult rf = faulty.runBulkTransfer(dataset, opts);

    EXPECT_EQ(rf.total_time, rc.total_time);
    EXPECT_EQ(rf.total_energy, rc.total_energy);
    EXPECT_EQ(rf.launches, rc.launches);
    EXPECT_EQ(faulty.controller().parkedLaunches(), 0u);
    EXPECT_EQ(faulty.controller().heldOpens(), 0u);
}
