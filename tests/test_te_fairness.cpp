/**
 * @file
 * Unit tests for the TE max-min fairness kernels, pinned to
 * hand-computed shares.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hpp"
#include "te/fairness.hpp"

using namespace dhl::te;

TEST(WaterFillTest, UnderCapacityDemandsAreMetExactly)
{
    const auto a = waterFill({2.0, 3.0}, 10.0);
    ASSERT_EQ(a.size(), 2u);
    // Satisfied entries get their demand bit-exactly, not
    // level * weight — this is what makes `alloc < demand` a valid
    // contention test downstream.
    EXPECT_DOUBLE_EQ(a[0], 2.0);
    EXPECT_DOUBLE_EQ(a[1], 3.0);
}

TEST(WaterFillTest, CapacityTieSplitsEvenly)
{
    const auto a = waterFill({5.0, 5.0, 5.0}, 9.0);
    EXPECT_DOUBLE_EQ(a[0], 3.0);
    EXPECT_DOUBLE_EQ(a[1], 3.0);
    EXPECT_DOUBLE_EQ(a[2], 3.0);
}

TEST(WaterFillTest, ProgressiveFillingCascades)
{
    // Level 3 freezes the 1; remaining 8 over two entries -> level 4
    // freezes the 4; the 10 takes what is left.
    const auto a = waterFill({1.0, 4.0, 10.0}, 9.0);
    EXPECT_DOUBLE_EQ(a[0], 1.0);
    EXPECT_DOUBLE_EQ(a[1], 4.0);
    EXPECT_DOUBLE_EQ(a[2], 4.0);
}

TEST(WaterFillTest, ZeroDemandEntriesGetNothing)
{
    const auto a = waterFill({0.0, 5.0}, 4.0);
    EXPECT_DOUBLE_EQ(a[0], 0.0);
    EXPECT_DOUBLE_EQ(a[1], 4.0);
}

TEST(WaterFillTest, SingleFlow)
{
    EXPECT_DOUBLE_EQ(waterFill({7.0}, 3.0)[0], 3.0);
    EXPECT_DOUBLE_EQ(waterFill({2.0}, 3.0)[0], 2.0);
}

TEST(WaterFillTest, DegenerateInputs)
{
    EXPECT_TRUE(waterFill({}, 5.0).empty());
    const auto a = waterFill({1.0, 2.0}, 0.0);
    EXPECT_DOUBLE_EQ(a[0], 0.0);
    EXPECT_DOUBLE_EQ(a[1], 0.0);
}

TEST(WaterFillTest, RejectsNegativeInputs)
{
    EXPECT_THROW(waterFill({-1.0}, 5.0), dhl::FatalError);
    EXPECT_THROW(waterFill({1.0}, -5.0), dhl::FatalError);
}

TEST(WaterFillWeightedTest, SharesFollowWeights)
{
    // Both saturated: level = 8 / (3 + 1) = 2 -> {6, 2}.
    const auto a = waterFillWeighted({10.0, 10.0}, {3.0, 1.0}, 8.0);
    EXPECT_DOUBLE_EQ(a[0], 6.0);
    EXPECT_DOUBLE_EQ(a[1], 2.0);
}

TEST(WaterFillWeightedTest, FreezeReleasesCapacity)
{
    // Level 4 freezes the 2 at its demand; the other entry takes the
    // freed capacity.
    const auto a = waterFillWeighted({2.0, 10.0}, {1.0, 1.0}, 8.0);
    EXPECT_DOUBLE_EQ(a[0], 2.0);
    EXPECT_DOUBLE_EQ(a[1], 6.0);
}

TEST(WaterFillWeightedTest, ZeroWeightTenantIsFrozenAtZero)
{
    const auto a = waterFillWeighted({5.0, 5.0}, {0.0, 1.0}, 4.0);
    EXPECT_DOUBLE_EQ(a[0], 0.0);
    EXPECT_DOUBLE_EQ(a[1], 4.0);
}

TEST(WaterFillWeightedTest, RejectsMismatchAndNegatives)
{
    EXPECT_THROW(waterFillWeighted({1.0, 2.0}, {1.0}, 5.0),
                 dhl::FatalError);
    EXPECT_THROW(waterFillWeighted({1.0}, {-1.0}, 5.0), dhl::FatalError);
}

TEST(HierarchicalTest, TwoLevelComposition)
{
    // Tenant level (weighted): A wants 12 at weight 2, B wants 3 at
    // weight 1, capacity 9.  Level 3 freezes B at its demand 3; A takes
    // the remaining 6.  Group level (unweighted): A's {6, 6} split the
    // 6 evenly; B's {3, 0} are both satisfied.
    const std::vector<TenantDemand> tenants = {
        {"A", 2.0, {6.0, 6.0}},
        {"B", 1.0, {3.0, 0.0}},
    };
    const auto a = hierarchicalAllocate(tenants, 9.0);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_DOUBLE_EQ(a[0].total, 6.0);
    EXPECT_DOUBLE_EQ(a[0].groups[0], 3.0);
    EXPECT_DOUBLE_EQ(a[0].groups[1], 3.0);
    EXPECT_DOUBLE_EQ(a[1].total, 3.0);
    EXPECT_DOUBLE_EQ(a[1].groups[0], 3.0);
    EXPECT_DOUBLE_EQ(a[1].groups[1], 0.0);
}

TEST(HierarchicalTest, SatisfiedTenantsAllocatedExactDemand)
{
    const std::vector<TenantDemand> tenants = {
        {"A", 1.0, {1.5, 0.25}},
        {"B", 4.0, {2.0, 0.0}},
    };
    const auto a = hierarchicalAllocate(tenants, 100.0);
    EXPECT_DOUBLE_EQ(a[0].total, 1.75);
    EXPECT_DOUBLE_EQ(a[0].groups[0], 1.5);
    EXPECT_DOUBLE_EQ(a[0].groups[1], 0.25);
    EXPECT_DOUBLE_EQ(a[1].total, 2.0);
    EXPECT_DOUBLE_EQ(a[1].groups[0], 2.0);
}

TEST(HierarchicalTest, DeterministicAcrossRepeats)
{
    const std::vector<TenantDemand> tenants = {
        {"A", 1.0, {5.0, 7.0}},
        {"B", 2.0, {1.0, 9.0}},
        {"C", 1.5, {0.0, 4.0}},
    };
    const auto first = hierarchicalAllocate(tenants, 13.0);
    for (int i = 0; i < 8; ++i) {
        const auto again = hierarchicalAllocate(tenants, 13.0);
        for (std::size_t t = 0; t < first.size(); ++t) {
            EXPECT_DOUBLE_EQ(again[t].total, first[t].total);
            for (std::size_t g = 0; g < first[t].groups.size(); ++g)
                EXPECT_DOUBLE_EQ(again[t].groups[g], first[t].groups[g]);
        }
    }
}
