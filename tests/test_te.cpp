/**
 * @file
 * Tests for the traffic-engineering subsystem (src/te) and its serve
 * and ops integrations: demand estimation, controller epochs, hybrid
 * admit/downgrade decisions, snapshot round-trips, the serving-loop
 * checkpoint oracle with TE enabled, and the Te dispatch policy.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "exp/slo.hpp"
#include "ops/fleet_ops.hpp"
#include "serve/serving.hpp"
#include "te/controller.hpp"
#include "te/demand.hpp"

using namespace dhl;
namespace u = dhl::units;

namespace {

te::TeConfig
baseTeConfig()
{
    te::TeConfig tc;
    tc.enabled = true;
    tc.mode = te::TeMode::Hybrid;
    tc.control_period = 10.0;
    tc.small_bytes = u::gigabytes(8.0);
    tc.optical_capacity = u::gigabitsPerSecond(100.0);
    tc.dhl_capacity = 100.0; // B/s; tiny so contention is easy to force
    tc.headroom = 0.9;
    tc.usage_multiplier = 1.0;
    tc.history = 4;
    tc.min_priority_contended = 1;
    return tc;
}

core::RequestMeta
prio(int p)
{
    core::RequestMeta m;
    m.priority = p;
    return m;
}

} // namespace

TEST(DemandEstimatorTest, ProjectsMultiplierTimesWindowMax)
{
    te::DemandEstimator est({3, 1.5}, 2);
    EXPECT_DOUBLE_EQ(est.estimate(0), 0.0); // empty window
    est.record(0, 4.0);
    est.record(0, 10.0);
    est.record(0, 2.0);
    EXPECT_DOUBLE_EQ(est.estimate(0), 1.5 * 10.0);
    EXPECT_DOUBLE_EQ(est.estimate(1), 0.0); // independent series
}

TEST(DemandEstimatorTest, HistoryIsBounded)
{
    te::DemandEstimator est({2, 1.0}, 1);
    est.record(0, 10.0);
    est.record(0, 1.0);
    est.record(0, 1.0); // evicts the 10
    EXPECT_DOUBLE_EQ(est.estimate(0), 1.0);
}

TEST(DemandEstimatorTest, SnapshotRoundTrips)
{
    te::DemandEstimator est({4, 1.25}, 2);
    est.record(0, 3.0);
    est.record(1, 7.0);
    est.record(1, 2.0);

    std::stringstream buf;
    {
        sim::SnapshotWriter w(buf);
        est.saveState(w);
    }
    te::DemandEstimator fresh({4, 1.25}, 2);
    {
        sim::SnapshotReader r(buf);
        fresh.restoreState(r);
    }
    EXPECT_DOUBLE_EQ(fresh.estimate(0), est.estimate(0));
    EXPECT_DOUBLE_EQ(fresh.estimate(1), est.estimate(1));
}

TEST(TeControllerTest, PureModesIgnoreContention)
{
    sim::Simulator sim;
    auto tc = baseTeConfig();
    tc.mode = te::TeMode::DhlOnly;
    te::TeController dhl_only(sim, tc, {{"t", 1.0}});
    const auto d1 = dhl_only.decide(0, u::gigabytes(100), prio(0));
    EXPECT_EQ(d1.substrate, te::Substrate::Dhl);
    EXPECT_TRUE(d1.admit);

    tc.mode = te::TeMode::OpticalOnly;
    te::TeController optical_only(sim, tc, {{"t", 1.0}});
    const auto d2 = optical_only.decide(0, u::gigabytes(100), prio(0));
    EXPECT_EQ(d2.substrate, te::Substrate::Optical);
    EXPECT_TRUE(d2.admit);
}

TEST(TeControllerTest, HybridSplitsBySizeThreshold)
{
    sim::Simulator sim;
    te::TeController ctl(sim, baseTeConfig(), {{"t", 1.0}});
    EXPECT_EQ(ctl.decide(0, u::gigabytes(2), prio(0)).substrate,
              te::Substrate::Optical);
    EXPECT_EQ(ctl.decide(0, u::gigabytes(64), prio(0)).substrate,
              te::Substrate::Dhl);
}

TEST(TeControllerTest, TickComputesDemandAndContention)
{
    sim::Simulator sim;
    auto tc = baseTeConfig();
    te::TeController ctl(sim, tc, {{"a", 1.0}, {"b", 1.0}});
    ctl.start();
    // Tenant a pushes 10 kB of bulk through the first epoch; capacity
    // is 100 B/s, so its 1 kB/s demand is contended.
    ctl.recordUsage(0, u::gigabytes(100));
    sim.runUntil(tc.control_period + 1.0);
    ctl.stop();

    EXPECT_EQ(ctl.ticks(), 1u);
    const double expect_bulk =
        u::gigabytes(100) / tc.control_period * tc.usage_multiplier;
    EXPECT_DOUBLE_EQ(ctl.demand(0, te::Substrate::Dhl), expect_bulk);
    EXPECT_DOUBLE_EQ(ctl.demand(1, te::Substrate::Dhl), 0.0);
    EXPECT_DOUBLE_EQ(ctl.allocation(0, te::Substrate::Dhl),
                     tc.dhl_capacity);
    EXPECT_TRUE(ctl.contended(0));
    EXPECT_FALSE(ctl.contended(1));
}

TEST(TeControllerTest, ContendedLowPriorityDowngradesHighPriorityStays)
{
    sim::Simulator sim;
    auto tc = baseTeConfig();
    te::TeController ctl(sim, tc, {{"t", 1.0}});
    ctl.start();
    ctl.recordUsage(0, u::gigabytes(100));
    sim.runUntil(tc.control_period + 1.0);
    ASSERT_TRUE(ctl.contended(0));
    ASSERT_TRUE(ctl.downgradeOk());

    const auto low = ctl.decide(0, u::gigabytes(64), prio(0));
    EXPECT_EQ(low.substrate, te::Substrate::Optical);
    EXPECT_TRUE(low.admit);
    EXPECT_TRUE(low.downgraded);

    const auto high = ctl.decide(0, u::gigabytes(64), prio(1));
    EXPECT_EQ(high.substrate, te::Substrate::Dhl);
    EXPECT_TRUE(high.admit);
    EXPECT_FALSE(high.downgraded);
    ctl.stop();

    // With no tick pending the contention branch is disabled: the
    // drain after the horizon admits everything.
    const auto after = ctl.decide(0, u::gigabytes(64), prio(0));
    EXPECT_EQ(after.substrate, te::Substrate::Dhl);
    EXPECT_TRUE(after.admit);
}

TEST(TeControllerTest, HoldsWhenOpticalHasNoHeadroom)
{
    sim::Simulator sim;
    auto tc = baseTeConfig();
    // Optical plan saturated by small-flow demand: 100 GB over a 10 s
    // epoch is ~10 GB/s against a ~1.1 GB/s planned capacity.
    te::TeController ctl(sim, tc, {{"t", 1.0}});
    ctl.start();
    ctl.recordUsage(0, u::gigabytes(100)); // bulk group
    for (int i = 0; i < 30; ++i)           // small group: 12 GB/s
        ctl.recordUsage(0, u::gigabytes(4));
    sim.runUntil(tc.control_period + 1.0);
    ASSERT_TRUE(ctl.contended(0));
    ASSERT_FALSE(ctl.downgradeOk());

    const auto d = ctl.decide(0, u::gigabytes(64), prio(0));
    EXPECT_FALSE(d.admit);
    ctl.stop();
}

TEST(TeControllerTest, SnapshotRoundTripPreservesDecisions)
{
    sim::Simulator sim;
    auto tc = baseTeConfig();
    te::TeController ctl(sim, tc, {{"t", 1.0}});
    ctl.start();
    ctl.recordUsage(0, u::gigabytes(100));
    sim.runUntil(tc.control_period + 1.0);
    ctl.stop();

    std::stringstream buf;
    {
        sim::SnapshotWriter w(buf);
        ctl.saveState(w);
    }
    sim::Simulator sim2;
    te::TeController fresh(sim2, tc, {{"t", 1.0}});
    {
        sim::SnapshotReader r(buf);
        fresh.restoreState(r);
    }
    EXPECT_EQ(fresh.ticks(), ctl.ticks());
    EXPECT_DOUBLE_EQ(fresh.demand(0, te::Substrate::Dhl),
                     ctl.demand(0, te::Substrate::Dhl));
    EXPECT_DOUBLE_EQ(fresh.allocation(0, te::Substrate::Dhl),
                     ctl.allocation(0, te::Substrate::Dhl));
    EXPECT_EQ(fresh.contended(0), ctl.contended(0));
    EXPECT_EQ(fresh.downgradeOk(), ctl.downgradeOk());
}

//===========================================================================
// Serving-loop integration
//===========================================================================

namespace {

serve::ServeConfig
teServeConfig(te::TeMode mode)
{
    serve::ServeConfig cfg;
    cfg.dhl = core::defaultConfig();
    cfg.tracks = 2;
    cfg.seed = 11;
    cfg.epoch = 300.0;
    cfg.carts_per_track = 2;
    cfg.max_pending = 64;
    cfg.policy = ops::DispatchPolicy::LeastQueued;
    workloads::RequestClass small{"small", 2.0, u::gigabytes(2), 0.0, 1};
    workloads::RequestClass big{"big", 1.0, u::gigabytes(96), 0.0, 0};
    cfg.stages = {
        workloads::StageSpec{"ramp", 600.0, 0.0, 0.2, {small, big}},
        workloads::StageSpec{"hold", 600.0, 0.2, 0.2, {small, big}},
        workloads::StageSpec{"drain", 600.0, 0.2, 0.0, {small, big}},
    };
    cfg.te.enabled = true;
    cfg.te.mode = mode;
    cfg.te.control_period = 30.0;
    cfg.te.small_bytes = u::gigabytes(8.0);
    cfg.te.optical_capacity = u::gigabitsPerSecond(100.0);
    cfg.te.history = 4;
    cfg.te.min_priority_contended = 1;
    return cfg;
}

std::string
teDigest(serve::ServingSim &sim)
{
    std::ostringstream os;
    for (const exp::StageSlo &stage : sim.sloTable())
        for (const std::string &c : exp::sloRow(stage))
            os << c << "|";
    for (const exp::ClassSlo &c : sim.teTable())
        for (const std::string &cell : exp::classSloRow(c))
            os << cell << "|";
    os << sim.totalServed() << "|" << sim.totalShed() << "|"
       << sim.opticalServed() << "|" << sim.teDowngrades() << "|"
       << sim.totalEnergy() << "|" << sim.now();
    return os.str();
}

} // namespace

TEST(TeServingTest, HybridServesSmallOpticallyAndConserves)
{
    serve::ServingSim sim(teServeConfig(te::TeMode::Hybrid));
    sim.run();

    EXPECT_GT(sim.opticalServed(), 0u);
    EXPECT_GT(sim.opticalEnergy(), 0.0);

    std::uint64_t offered = 0, served = 0, shed = 0;
    std::uint64_t optical_served = 0;
    for (const exp::ClassSlo &row : sim.teTable()) {
        offered += row.offered;
        served += row.served;
        shed += row.shed;
        if (row.substrate == std::string("optical"))
            optical_served += row.served;
        // The drained loop leaves nothing in flight per class.
        EXPECT_EQ(row.offered, row.served + row.shed);
    }
    EXPECT_EQ(served, sim.totalServed());
    EXPECT_EQ(shed, sim.totalShed());
    EXPECT_EQ(optical_served, sim.opticalServed());
    EXPECT_GT(offered, 0u);
    // Small requests (2 GB <= 8 GB) always ride optical in hybrid.
    for (const exp::ClassSlo &row : sim.teTable()) {
        if (row.name == "small" && row.substrate == std::string("dhl"))
            EXPECT_EQ(row.offered, 0u);
    }
}

TEST(TeServingTest, DisabledTeMatchesBaseline)
{
    // A TE-disabled config must not change the non-TE outcome: the te
    // member defaults to disabled, so this is the plain serving loop.
    serve::ServeConfig cfg = teServeConfig(te::TeMode::Hybrid);
    cfg.te = te::TeConfig{};
    serve::ServingSim sim(cfg);
    sim.run();
    EXPECT_EQ(sim.teEnabled(), false);
    EXPECT_EQ(sim.opticalServed(), 0u);
    EXPECT_DOUBLE_EQ(sim.opticalEnergy(), 0.0);
}

TEST(TeServingTest, DeterministicAcrossInstancesAndShards)
{
    serve::ServingSim a(teServeConfig(te::TeMode::Hybrid));
    serve::ServingSim b(teServeConfig(te::TeMode::Hybrid));
    a.run();
    b.run();
    EXPECT_EQ(teDigest(a), teDigest(b));

    // TE plans fleet-wide with zero lookahead, so the serving loop
    // clamps to one DES shard; --des-shards is byte-identical by
    // construction.
    serve::ServeConfig sharded = teServeConfig(te::TeMode::Hybrid);
    sharded.des_shards = 4;
    serve::ServingSim c(sharded);
    c.run();
    EXPECT_EQ(teDigest(a), teDigest(c));
}

TEST(TeServingTest, CheckpointOracleWithTeEnabled)
{
    const auto cfg = teServeConfig(te::TeMode::Hybrid);

    serve::ServingSim oracle(cfg);
    oracle.run();
    const std::string want = teDigest(oracle);

    auto hopper = std::make_unique<serve::ServingSim>(cfg);
    while (hopper->stepEpoch()) {
        std::stringstream ck;
        hopper->checkpoint(ck);
        auto fresh = std::make_unique<serve::ServingSim>(cfg);
        fresh->restore(ck);
        hopper = std::move(fresh);
    }
    EXPECT_EQ(teDigest(*hopper), want);
}

TEST(TeServingTest, ValidateRejectsTeDispatchPolicy)
{
    serve::ServeConfig cfg = teServeConfig(te::TeMode::Hybrid);
    cfg.policy = ops::DispatchPolicy::Te;
    EXPECT_THROW(serve::validate(cfg), dhl::FatalError);
}

//===========================================================================
// Ops dispatch-policy integration
//===========================================================================

TEST(TeOpsTest, PolicyParsesAndValidates)
{
    EXPECT_EQ(ops::parseDispatchPolicy("te"), ops::DispatchPolicy::Te);
    EXPECT_EQ(ops::to_string(ops::DispatchPolicy::Te), "te");

    ops::DispatchConfig bad;
    bad.policy = ops::DispatchPolicy::Te; // te.enabled left false
    EXPECT_THROW(ops::validate(bad), dhl::FatalError);
}

TEST(TeOpsTest, UncontendedTeMatchesLeastQueued)
{
    core::DhlConfig dhl = core::defaultConfig();
    const double bytes = 6.0 * dhl.cartCapacity().value();

    ops::OpsConfig lq;
    lq.dispatch.policy = ops::DispatchPolicy::LeastQueued;
    ops::FleetOps base(dhl, 2, lq, 5);
    const auto want = base.runBulkTransfer(bytes);

    ops::OpsConfig tp;
    tp.dispatch.policy = ops::DispatchPolicy::Te;
    tp.dispatch.te = baseTeConfig();
    tp.dispatch.te.dhl_capacity = 0.0; // derive: fleet launch bandwidth
    tp.dispatch.te.small_bytes = 1.0;  // every cart-sized job is bulk
    tp.dispatch.te.min_priority_contended = 0; // floor disarms holds
    ops::FleetOps te_ops(dhl, 2, tp, 5);
    const auto got = te_ops.runBulkTransfer(bytes);

    // With the priority floor at 0 no job is ever below it, so the
    // controller never interferes and the Te policy is event-identical
    // to LeastQueued (the extra control ticks touch no cart state).
    EXPECT_EQ(got.offloads, 0u);
    EXPECT_DOUBLE_EQ(got.optical_bytes, 0.0);
    EXPECT_DOUBLE_EQ(got.base.total_time, want.base.total_time);
    EXPECT_DOUBLE_EQ(got.base.total_energy, want.base.total_energy);
    EXPECT_EQ(got.base.launches, want.base.launches);
}

TEST(TeOpsTest, ContendedTeOffloadsToOptical)
{
    // Enough jobs that a backlog is still queued when the first
    // control tick (t = 1 s) flags contention.
    core::DhlConfig dhl = core::defaultConfig();
    const double bytes = 24.0 * dhl.cartCapacity().value();

    ops::OpsConfig tp;
    tp.dispatch.policy = ops::DispatchPolicy::Te;
    tp.dispatch.te = baseTeConfig();
    tp.dispatch.te.control_period = 1.0;
    tp.dispatch.te.dhl_capacity = 100.0; // B/s: always contended
    tp.dispatch.te.small_bytes = 1.0;    // every job is bulk
    tp.dispatch.te.optical_capacity = u::terabytes(1); // ample headroom
    ops::FleetOps te_ops(dhl, 2, tp, 5);
    const auto r = te_ops.runBulkTransfer(bytes);

    // The first control tick flags contention and the queued backlog is
    // downgraded onto the optical substrate.
    EXPECT_GT(r.offloads, 0u);
    EXPECT_GT(r.optical_bytes, 0.0);
    EXPECT_GT(r.optical_energy, 0.0);
    EXPECT_GE(r.base.total_energy, r.optical_energy);
    EXPECT_EQ(r.base.carts,
              static_cast<std::uint64_t>(std::ceil(
                  bytes / dhl.cartCapacity().value())));

    // Determinism: an identical run reproduces the same outcome.
    ops::FleetOps again(dhl, 2, tp, 5);
    const auto r2 = again.runBulkTransfer(bytes);
    EXPECT_EQ(r2.offloads, r.offloads);
    EXPECT_DOUBLE_EQ(r2.optical_bytes, r.optical_bytes);
    EXPECT_DOUBLE_EQ(r2.base.total_time, r.base.total_time);
    EXPECT_DOUBLE_EQ(r2.base.total_energy, r.base.total_energy);
}
