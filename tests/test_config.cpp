/**
 * @file
 * Unit tests for the DHL configuration (Table V presets and derived
 * helpers).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/config.hpp"

using namespace dhl::core;
namespace u = dhl::units;

TEST(DhlConfigTest, DefaultIsTheBoldTableVRow)
{
    const DhlConfig cfg = defaultConfig();
    EXPECT_DOUBLE_EQ(cfg.track_length, 500.0);
    EXPECT_DOUBLE_EQ(cfg.max_speed, 200.0);
    EXPECT_DOUBLE_EQ(cfg.dock_time, 3.0);
    EXPECT_EQ(cfg.ssds_per_cart, 32u);
    EXPECT_DOUBLE_EQ(cfg.lim.efficiency, 0.75);
    EXPECT_DOUBLE_EQ(cfg.lim.accel, 1000.0);
    EXPECT_NO_THROW(validate(cfg));
}

TEST(DhlConfigTest, DerivedHelpers)
{
    const DhlConfig cfg = defaultConfig();
    EXPECT_DOUBLE_EQ(cfg.cartCapacity().value(), u::terabytes(256));
    EXPECT_NEAR(u::toGrams(cfg.cartMass().value()), 282.0, 0.5);
    EXPECT_DOUBLE_EQ(cfg.limLength().value(), 20.0);
    // Trip: 3 + (500/200 + 200/2000) + 3 = 8.6 s.
    EXPECT_NEAR(cfg.tripTime().value(), 8.6, 1e-12);
}

TEST(DhlConfigTest, Label)
{
    EXPECT_EQ(defaultConfig().label(), "DHL-200-500-256");
    EXPECT_EQ(makeConfig(100, 1000, 64).label(), "DHL-100-1000-512");
}

TEST(DhlConfigTest, TrapezoidModeChangesTripTime)
{
    DhlConfig cfg = defaultConfig();
    cfg.kinematics = dhl::physics::KinematicsMode::Trapezoid;
    EXPECT_NEAR(cfg.tripTime().value(), 8.7, 1e-12);
}

TEST(DhlConfigTest, ValidationCatchesNonsense)
{
    DhlConfig cfg = defaultConfig();
    cfg.track_length = -1.0;
    EXPECT_THROW(validate(cfg), dhl::FatalError);

    cfg = defaultConfig();
    cfg.max_speed = 0.0;
    EXPECT_THROW(validate(cfg), dhl::FatalError);

    cfg = defaultConfig();
    cfg.ssds_per_cart = 0;
    EXPECT_THROW(validate(cfg), dhl::FatalError);

    cfg = defaultConfig();
    cfg.docking_stations = 0;
    EXPECT_THROW(validate(cfg), dhl::FatalError);

    cfg = defaultConfig();
    cfg.library_slots = 0;
    EXPECT_THROW(validate(cfg), dhl::FatalError);

    // Track shorter than its two LIM sections (40 m at 200 m/s).
    cfg = defaultConfig();
    cfg.track_length = 30.0;
    EXPECT_THROW(validate(cfg), dhl::FatalError);

    cfg = defaultConfig();
    cfg.headway = 0.0;
    EXPECT_THROW(validate(cfg), dhl::FatalError);
}

TEST(DhlConfigTest, TableViRowsAreValidAndOrdered)
{
    const auto &rows = tableViRows();
    ASSERT_EQ(rows.size(), 13u);
    for (const auto &row : rows)
        EXPECT_NO_THROW(validate(row.config));
    // The bold default appears as the speed-sweep middle row.
    EXPECT_DOUBLE_EQ(rows[1].config.max_speed, 200.0);
    EXPECT_DOUBLE_EQ(rows[1].config.track_length, 500.0);
    EXPECT_EQ(rows[1].config.ssds_per_cart, 32u);
}

TEST(DhlConfigTest, MakeConfigSweepsOnlyThreeParams)
{
    const DhlConfig cfg = makeConfig(300, 1000, 64);
    EXPECT_DOUBLE_EQ(cfg.max_speed, 300.0);
    EXPECT_DOUBLE_EQ(cfg.track_length, 1000.0);
    EXPECT_EQ(cfg.ssds_per_cart, 64u);
    EXPECT_DOUBLE_EQ(cfg.dock_time, defaultConfig().dock_time);
}

TEST(TrackModeNames, ToString)
{
    EXPECT_EQ(to_string(TrackMode::Exclusive), "exclusive");
    EXPECT_EQ(to_string(TrackMode::Pipelined), "pipelined");
    EXPECT_EQ(to_string(TrackMode::DualTrack), "dual-track");
}
