/**
 * @file
 * Property tests over the energy models: monotonicity and scaling laws
 * that must hold across the whole configuration space.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "physics/lim.hpp"

using namespace dhl::core;
using namespace dhl::physics;
namespace u = dhl::units;

/** (speed, length, ssds) sweep across valid configurations. */
using CfgParams = std::tuple<double, double, std::size_t>;

class EnergyProperty : public ::testing::TestWithParam<CfgParams>
{
  protected:
    DhlConfig
    config() const
    {
        return makeConfig(std::get<0>(GetParam()), std::get<1>(GetParam()),
                          std::get<2>(GetParam()));
    }
};

TEST_P(EnergyProperty, EnergyIsQuadraticInSpeed)
{
    DhlConfig cfg = config();
    const AnalyticalModel m1(cfg);
    cfg.max_speed *= 0.5;
    const AnalyticalModel m2(cfg);
    EXPECT_NEAR(m1.launch().energy.value(),
                4.0 * m2.launch().energy.value(),
                m1.launch().energy.value() * 1e-9);
}

TEST_P(EnergyProperty, PeakPowerIsCubicInSpeedTimesMassRatio)
{
    // P = M a v / eta: linear in v and in mass.
    DhlConfig cfg = config();
    const AnalyticalModel m1(cfg);
    cfg.max_speed *= 0.5;
    const AnalyticalModel m2(cfg);
    EXPECT_NEAR(m1.launch().peak_power.value(),
                2.0 * m2.launch().peak_power.value(),
                m1.launch().peak_power.value() * 1e-9);
}

TEST_P(EnergyProperty, EfficiencyImprovesWithBiggerCarts)
{
    // The paper's observation: doubling capacity costs less than double
    // the energy (the frame is amortised), so GB/J rises with SSDs.
    DhlConfig cfg = config();
    if (cfg.ssds_per_cart > 32)
        return; // doubled variant exceeds the sweep
    const AnalyticalModel small(cfg);
    cfg.ssds_per_cart *= 2;
    const AnalyticalModel big(cfg);
    EXPECT_GT(big.launch().efficiency, small.launch().efficiency);
    EXPECT_LT(big.launch().energy.value(),
              2.0 * small.launch().energy.value());
}

TEST_P(EnergyProperty, TrackLengthDoesNotAffectLaunchEnergy)
{
    // Drag is excluded from the headline energy (the paper's model);
    // only speed and mass matter.
    DhlConfig cfg = config();
    const AnalyticalModel m1(cfg);
    cfg.track_length *= 2.0;
    const AnalyticalModel m2(cfg);
    EXPECT_DOUBLE_EQ(m1.launch().energy.value(),
                     m2.launch().energy.value());
}

TEST_P(EnergyProperty, RegenBrakingSavesUpToEfficiencyBound)
{
    DhlConfig cfg = config();
    const AnalyticalModel base(cfg);
    cfg.lim.braking = BrakingMode::Regenerative;
    cfg.lim.regen_fraction = 0.7; // the paper's optimistic bound
    const AnalyticalModel regen(cfg);
    cfg.lim.braking = BrakingMode::EddyCurrent;
    const AnalyticalModel eddy(cfg);

    EXPECT_LT(regen.launch().energy.value(),
              base.launch().energy.value());
    // Eddy-current braking halves the shot (Discussion §VI).
    EXPECT_NEAR(eddy.launch().energy.value(),
                0.5 * base.launch().energy.value(), 1e-9);
    EXPECT_LE(eddy.launch().energy.value(),
              regen.launch().energy.value());
}

TEST_P(EnergyProperty, BulkEnergyScalesWithTrips)
{
    const AnalyticalModel m(config());
    const double cap = config().cartCapacity().value();
    const auto one = m.bulk(dhl::qty::Bytes{cap * 0.9});
    const auto five = m.bulk(dhl::qty::Bytes{cap * 4.5});
    EXPECT_EQ(one.loaded_trips, 1u);
    EXPECT_EQ(five.loaded_trips, 5u);
    EXPECT_NEAR(five.total_energy.value(),
                5.0 * one.total_energy.value(), 1e-6);
}

TEST_P(EnergyProperty, AveragePowerBelowPeakPower)
{
    const AnalyticalModel m(config());
    const auto lm = m.launch();
    EXPECT_LT(lm.avg_power, lm.peak_power);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnergyProperty,
    ::testing::Combine(::testing::Values(100.0, 200.0, 300.0),
                       ::testing::Values(500.0, 1000.0, 2000.0),
                       ::testing::Values(std::size_t{16}, std::size_t{32},
                                         std::size_t{64})));
