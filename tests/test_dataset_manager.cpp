/**
 * @file
 * Unit tests for the dataset manager.
 */

#include <gtest/gtest.h>

#include <functional>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/dataset_manager.hpp"

using namespace dhl::core;
using dhl::sim::Simulator;
namespace u = dhl::units;

namespace {

struct Rig
{
    explicit Rig(DhlConfig c = pipelineConfig()) : cfg(c), ctl(sim, cfg),
                                                   dm(ctl)
    {}

    static DhlConfig
    pipelineConfig()
    {
        DhlConfig cfg = defaultConfig();
        cfg.track_mode = TrackMode::DualTrack;
        cfg.docking_stations = 4;
        return cfg;
    }

    DhlConfig cfg;
    Simulator sim;
    DhlController ctl;
    DatasetManager dm;
};

} // namespace

TEST(DatasetManagerTest, RegisterAllocatesCarts)
{
    Rig r;
    const auto &carts =
        r.dm.registerDataset("laion", u::terabytes(600)); // 3 carts
    EXPECT_EQ(carts.size(), 3u);
    EXPECT_TRUE(r.dm.has("laion"));
    EXPECT_FALSE(r.dm.has("nope"));
    EXPECT_DOUBLE_EQ(r.dm.totalBytes(), u::terabytes(600));

    const auto info = r.dm.info("laion");
    EXPECT_EQ(info.placement, DatasetPlacement::Library);
    EXPECT_DOUBLE_EQ(info.bytes, u::terabytes(600));

    // The carts actually hold the bytes (last one partial).
    double held = 0.0;
    for (CartId id : carts)
        held += r.ctl.library().cart(id).storedBytes();
    EXPECT_NEAR(held, u::terabytes(600), 1.0);
}

TEST(DatasetManagerTest, DuplicateAndBadRegistrations)
{
    Rig r;
    r.dm.registerDataset("x", u::terabytes(1));
    EXPECT_THROW(r.dm.registerDataset("x", u::terabytes(1)),
                 dhl::FatalError);
    EXPECT_THROW(r.dm.registerDataset("", u::terabytes(1)),
                 dhl::FatalError);
    EXPECT_THROW(r.dm.registerDataset("y", 0.0), dhl::FatalError);
    EXPECT_THROW(r.dm.info("unknown"), dhl::FatalError);
}

TEST(DatasetManagerTest, NamesInRegistrationOrder)
{
    Rig r;
    r.dm.registerDataset("b", 1e12);
    r.dm.registerDataset("a", 1e12);
    const auto names = r.dm.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "b");
    EXPECT_EQ(names[1], "a");
}

TEST(DatasetManagerTest, StageBringsAllCartsToRack)
{
    Rig r;
    r.dm.registerDataset("ds", u::terabytes(600));
    bool staged = false;
    r.dm.stage("ds", [&] { staged = true; });
    EXPECT_EQ(r.dm.info("ds").placement, DatasetPlacement::InTransit);
    r.sim.run();
    EXPECT_TRUE(staged);
    EXPECT_EQ(r.dm.info("ds").placement, DatasetPlacement::Staged);
}

TEST(DatasetManagerTest, ReadAllReturnsEveryByte)
{
    Rig r;
    r.dm.registerDataset("ds", u::terabytes(600));
    double read = 0.0;
    r.dm.stage("ds", [&] {
        r.dm.readAll("ds", [&](double bytes) { read = bytes; });
    });
    r.sim.run();
    EXPECT_NEAR(read, u::terabytes(600), 1.0);
}

TEST(DatasetManagerTest, ReadBeforeStagingRejected)
{
    Rig r;
    r.dm.registerDataset("ds", u::terabytes(100));
    EXPECT_THROW(r.dm.readAll("ds", nullptr), dhl::FatalError);
}

TEST(DatasetManagerTest, UnstageReturnsToLibrary)
{
    Rig r;
    r.dm.registerDataset("ds", u::terabytes(600));
    bool home = false;
    r.dm.stage("ds", [&] {
        r.dm.unstage("ds", [&] { home = true; });
    });
    r.sim.run();
    EXPECT_TRUE(home);
    EXPECT_EQ(r.dm.info("ds").placement, DatasetPlacement::Library);
}

TEST(DatasetManagerTest, RepeatedTrainingCycles)
{
    // The paper's pattern: the same dataset staged and returned for
    // several different models.
    Rig r;
    r.dm.registerDataset("train", u::terabytes(500)); // 2 carts
    int cycles_done = 0;
    std::function<void()> cycle = [&] {
        if (cycles_done == 3)
            return;
        r.dm.stage("train", [&] {
            r.dm.readAll("train", [&](double) {
                r.dm.unstage("train", [&] {
                    ++cycles_done;
                    cycle();
                });
            });
        });
    };
    cycle();
    r.sim.run();
    EXPECT_EQ(cycles_done, 3);
    // 2 carts x 2 trips x 3 cycles.
    EXPECT_EQ(r.ctl.launches(), 12u);
}

TEST(DatasetManagerTest, TwoDatasetsShareTheSystem)
{
    Rig r;
    r.dm.registerDataset("hot", u::terabytes(256));  // 1 cart
    r.dm.registerDataset("cold", u::terabytes(256)); // 1 cart
    int staged = 0;
    r.dm.stage("hot", [&] { ++staged; });
    r.dm.stage("cold", [&] { ++staged; });
    r.sim.run();
    EXPECT_EQ(staged, 2);
    EXPECT_EQ(r.dm.info("hot").placement, DatasetPlacement::Staged);
    EXPECT_EQ(r.dm.info("cold").placement, DatasetPlacement::Staged);
}

TEST(PlacementNames, ToString)
{
    EXPECT_EQ(to_string(DatasetPlacement::Library), "library");
    EXPECT_EQ(to_string(DatasetPlacement::Staged), "staged");
    EXPECT_EQ(to_string(DatasetPlacement::InTransit), "in-transit");
    EXPECT_EQ(to_string(DatasetPlacement::Mixed), "mixed");
}
