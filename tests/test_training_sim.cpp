/**
 * @file
 * Unit tests for the training-iteration simulator (Table VII analyses).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "mlsim/training_sim.hpp"

using namespace dhl::mlsim;
using dhl::core::defaultConfig;
using dhl::network::findRoute;
namespace u = dhl::units;

TEST(TrainingSimTest, IterationIsIngestPlusCompute)
{
    OpticalComm a0(findRoute("A0"));
    TrainingSim sim(dlrmWorkload(), a0);
    const auto r = sim.iterate(1.0);
    EXPECT_DOUBLE_EQ(r.comm_time, 580000.0);
    EXPECT_DOUBLE_EQ(r.iter_time, 580000.0 + 265.0);
    EXPECT_NEAR(r.avg_comm_power, 24.0, 1e-6);
}

TEST(TrainingSimTest, IsoPowerContinuousLinks)
{
    OpticalComm a0(findRoute("A0"));
    TrainingSim sim(dlrmWorkload(), a0);
    const auto r = sim.isoPower(1750.0);
    EXPECT_NEAR(r.units, 1750.0 / 24.0, 1e-9);
    // 29 PB over 72.9 links of 50 GB/s ~ 7954 s + 265 s compute.
    EXPECT_NEAR(r.iter_time, 580000.0 / (1750.0 / 24.0) + 265.0, 1e-6);
}

TEST(TrainingSimTest, IsoPowerQuantisedDhl)
{
    DhlComm dhl_comm(defaultConfig());
    TrainingSim sim(dlrmWorkload(), dhl_comm);
    // 1.75 kW affords exactly one 1.749 kW DHL.
    const auto r = sim.isoPower(1750.0);
    EXPECT_DOUBLE_EQ(r.units, 1.0);
    EXPECT_NEAR(r.iter_time, 2 * 114 * 8.6 + 265.0, 1e-6);
    // 3.5 kW affords two tracks.
    const auto r2 = sim.isoPower(3500.0);
    EXPECT_DOUBLE_EQ(r2.units, 2.0);
    EXPECT_LT(r2.iter_time, r.iter_time);
}

TEST(TrainingSimTest, IsoPowerBelowOneDhlFatal)
{
    DhlComm dhl_comm(defaultConfig());
    TrainingSim sim(dlrmWorkload(), dhl_comm);
    EXPECT_THROW(sim.isoPower(100.0), dhl::FatalError);
}

TEST(TrainingSimTest, TableViiSlowdownOrdering)
{
    // Iso-power at the DHL's own budget: every optical scheme is slower
    // than the DHL, in route-power order (the paper's Table VII(a)
    // qualitative content).
    DhlComm dhl_comm(defaultConfig());
    TrainingSim dhl_sim(dlrmWorkload(), dhl_comm);
    const double budget = dhl_comm.unitPower();
    const double dhl_time = dhl_sim.isoPower(budget).iter_time;

    double prev = dhl_time;
    for (const char *name : {"A0", "A1", "A2", "B", "C"}) {
        OpticalComm net(findRoute(name));
        TrainingSim net_sim(dlrmWorkload(), net);
        const double t = net_sim.isoPower(budget).iter_time;
        EXPECT_GT(t, prev) << name;
        prev = t;
    }
}

TEST(TrainingSimTest, IsoTimeContinuous)
{
    OpticalComm a0(findRoute("A0"));
    TrainingSim sim(dlrmWorkload(), a0);
    const double target = 1350.0;
    const double power = sim.powerForIterTime(target);
    // Feeding the power back as a budget must hit the target.
    const auto r = sim.isoPower(power);
    EXPECT_NEAR(r.iter_time, target, 1.0);
    EXPECT_THROW(sim.powerForIterTime(100.0), dhl::FatalError);
}

TEST(TrainingSimTest, IsoTimeQuantised)
{
    DhlComm dhl_comm(defaultConfig());
    TrainingSim sim(dlrmWorkload(), dhl_comm);
    // One track takes 1960.8 s of comm; ask for a ~1300 s budget and
    // expect two tracks' power.
    const double power = sim.powerForIterTime(1300.0);
    EXPECT_NEAR(power, 2.0 * dhl_comm.unitPower(), 1.0);
}

TEST(TrainingSimTest, IsoTimePowerRatiosTrackRoutePowers)
{
    // Table VII(b): at a fixed iteration time, the power of scheme X
    // relative to A0 equals the per-link power ratio.
    const double target = 1350.0;
    OpticalComm a0(findRoute("A0"));
    TrainingSim sim_a0(dlrmWorkload(), a0);
    const double p_a0 = sim_a0.powerForIterTime(target);
    for (const char *name : {"A1", "A2", "B", "C"}) {
        OpticalComm net(findRoute(name));
        TrainingSim net_sim(dlrmWorkload(), net);
        const double p = net_sim.powerForIterTime(target);
        EXPECT_NEAR(p / p_a0,
                    findRoute(name).power() / findRoute("A0").power(),
                    1e-6)
            << name;
    }
}

TEST(TrainingSimTest, ScaledIterationIsLinear)
{
    // The paper's protocol: downscale by 1e7, simulate, upscale; the
    // result must match the unscaled run (exactly for continuous
    // links).
    OpticalComm a0(findRoute("A0"));
    TrainingSim sim(dlrmWorkload(), a0);
    const auto full = sim.iterate(10.0);
    const auto scaled_run = sim.iterateScaled(10.0, 1e-7);
    EXPECT_NEAR(scaled_run.iter_time, full.iter_time,
                full.iter_time * 1e-9);
    EXPECT_NEAR(scaled_run.comm_energy, full.comm_energy,
                full.comm_energy * 1e-9);
}

TEST(TrainingSimTest, ScaledDhlWithinQuantisation)
{
    // For the quantised DHL the ceil() breaks exact linearity; with
    // >100 trips the error stays under 1 %.
    DhlComm dhl_comm(defaultConfig());
    TrainingSim sim(dlrmWorkload(), dhl_comm);
    const auto full = sim.iterate(1.0);
    const auto scaled_run = sim.iterateScaled(1.0, 0.5);
    EXPECT_NEAR(scaled_run.iter_time, full.iter_time,
                full.iter_time * 0.01);
}

TEST(TrainingSimTest, ScaleFactorValidated)
{
    OpticalComm a0(findRoute("A0"));
    TrainingSim sim(dlrmWorkload(), a0);
    EXPECT_THROW(sim.iterateScaled(1.0, 0.0), dhl::FatalError);
    EXPECT_THROW(sim.iterateScaled(1.0, 2.0), dhl::FatalError);
}
