/**
 * @file
 * Unit tests for the mlsim communication layers.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "mlsim/comm_layer.hpp"

using namespace dhl::mlsim;
using dhl::core::defaultConfig;
using dhl::network::findRoute;
namespace u = dhl::units;

TEST(OpticalCommTest, SingleLink29Pb)
{
    OpticalComm a0(findRoute("A0"));
    EXPECT_EQ(a0.name(), "A0");
    EXPECT_FALSE(a0.quantised());
    EXPECT_NEAR(a0.unitPower(), 24.0, 1e-9);
    EXPECT_DOUBLE_EQ(a0.ingestionTime(u::petabytes(29), 1.0), 580000.0);
    EXPECT_NEAR(u::toMegajoules(a0.ingestionEnergy(u::petabytes(29))),
                13.92, 0.005);
}

TEST(OpticalCommTest, LinksScaleTimeNotEnergy)
{
    OpticalComm c(findRoute("C"));
    const double bytes = u::petabytes(29);
    EXPECT_NEAR(c.ingestionTime(bytes, 10.0),
                c.ingestionTime(bytes, 1.0) / 10.0, 1e-6);
    // avgPower with n links is n times the per-link power.
    EXPECT_NEAR(c.avgPower(bytes, 10.0), 10.0 * c.unitPower(), 1e-6);
}

TEST(DhlCommTest, SerialUnitPowerIsThePaperBudget)
{
    DhlComm dhl_comm(defaultConfig());
    EXPECT_TRUE(dhl_comm.quantised());
    EXPECT_EQ(dhl_comm.name(), "DHL-200-500-256");
    // E_shot / t_trip = 15.04 kJ / 8.6 s = 1.749 kW: the paper's
    // Table VII power budget.
    EXPECT_NEAR(dhl_comm.unitPower(), 1749.0, 1.0);
}

TEST(DhlCommTest, SerialIngestionMatchesTableViAccounting)
{
    DhlComm dhl_comm(defaultConfig());
    const double bytes = u::petabytes(29);
    // 114 loaded trips, doubled, at 8.6 s.
    EXPECT_NEAR(dhl_comm.ingestionTime(bytes, 1.0), 2 * 114 * 8.6, 1e-6);
    EXPECT_NEAR(dhl_comm.ingestionEnergy(bytes), 2 * 114 * 15040.0, 1500.0);
    // avgPower equals unitPower for one track.
    EXPECT_NEAR(dhl_comm.avgPower(bytes, 1.0), dhl_comm.unitPower(), 1.0);
}

TEST(DhlCommTest, PipelinedHalvesTimeDoublesPower)
{
    DhlComm serial(defaultConfig(), false);
    DhlComm pipe(defaultConfig(), true);
    const double bytes = u::petabytes(29);
    EXPECT_NEAR(pipe.ingestionTime(bytes, 1.0),
                serial.ingestionTime(bytes, 1.0) / 2.0, 1e-6);
    EXPECT_NEAR(pipe.ingestionEnergy(bytes), serial.ingestionEnergy(bytes),
                1e-3);
    EXPECT_NEAR(pipe.unitPower(), 2.0 * serial.unitPower(), 1e-6);
}

TEST(DhlCommTest, MultipleTracksSplitTrips)
{
    DhlComm dhl_comm(defaultConfig());
    const double bytes = u::petabytes(29); // 114 loaded trips
    const double t1 = dhl_comm.ingestionTime(bytes, 1.0);
    const double t2 = dhl_comm.ingestionTime(bytes, 2.0);
    const double t3 = dhl_comm.ingestionTime(bytes, 3.0);
    EXPECT_NEAR(t2, 2 * 57 * 8.6, 1e-6); // ceil(114/2) = 57
    EXPECT_NEAR(t3, 2 * 38 * 8.6, 1e-6); // ceil(114/3) = 38
    EXPECT_LT(t3, t2);
    EXPECT_LT(t2, t1);
}

TEST(DhlCommTest, FractionalTracksRejected)
{
    DhlComm dhl_comm(defaultConfig());
    EXPECT_THROW(dhl_comm.ingestionTime(1e15, 1.5), dhl::FatalError);
    EXPECT_THROW(dhl_comm.ingestionTime(1e15, 0.0), dhl::FatalError);
}

TEST(OpticalCommTest, ZeroLinksRejected)
{
    OpticalComm a0(findRoute("A0"));
    EXPECT_THROW(a0.ingestionTime(1e15, 0.0), dhl::FatalError);
}
