/**
 * @file
 * Unit tests for the max-min fair fluid flow simulator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hpp"
#include "network/flowsim.hpp"

using namespace dhl::network;
using dhl::sim::Simulator;

TEST(FlowSimTest, SingleFlowFinishesOnSchedule)
{
    Simulator sim;
    FlowSim fs(sim);
    const int l = fs.addLink(100.0); // 100 B/s
    double finished_at = -1.0;
    double carried = 0.0;
    fs.startFlow({l}, 1000.0, 0.0, [&](const FlowRecord &r) {
        finished_at = r.finish_time;
        carried = r.bytes;
    });
    sim.run();
    EXPECT_NEAR(finished_at, 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(carried, 1000.0);
    EXPECT_DOUBLE_EQ(fs.bytesDelivered(), 1000.0);
    EXPECT_EQ(fs.activeFlows(), 0u);
}

TEST(FlowSimTest, TwoFlowsShareFairly)
{
    Simulator sim;
    FlowSim fs(sim);
    const int l = fs.addLink(100.0);
    std::vector<double> finish;
    auto cb = [&](const FlowRecord &r) { finish.push_back(r.finish_time); };
    fs.startFlow({l}, 500.0, 0.0, cb);
    fs.startFlow({l}, 500.0, 0.0, cb);
    EXPECT_DOUBLE_EQ(fs.flowRate(1), 50.0);
    EXPECT_DOUBLE_EQ(fs.flowRate(2), 50.0);
    sim.run();
    ASSERT_EQ(finish.size(), 2u);
    EXPECT_NEAR(finish[0], 10.0, 1e-9);
    EXPECT_NEAR(finish[1], 10.0, 1e-9);
}

TEST(FlowSimTest, ShortFlowReleasesBandwidth)
{
    Simulator sim;
    FlowSim fs(sim);
    const int l = fs.addLink(100.0);
    double long_finish = -1.0;
    // 200 B short flow and 900 B long flow: share 50/50 until t=4
    // (short done: 200/50), then the long one gets the full link.
    fs.startFlow({l}, 900.0, 0.0,
                 [&](const FlowRecord &r) { long_finish = r.finish_time; });
    fs.startFlow({l}, 200.0, 0.0, nullptr);
    sim.run();
    // Long flow: 4 s at 50 B/s (200 B) + 7 s at 100 B/s (700 B) = 11 s.
    EXPECT_NEAR(long_finish, 11.0, 1e-9);
}

TEST(FlowSimTest, MultiLinkBottleneck)
{
    Simulator sim;
    FlowSim fs(sim);
    const int fat = fs.addLink(1000.0);
    const int thin = fs.addLink(10.0);
    fs.startFlow({fat, thin}, 100.0, 0.0, nullptr);
    EXPECT_DOUBLE_EQ(fs.flowRate(1), 10.0); // thin link binds
    EXPECT_NEAR(fs.linkUtilisation(thin), 1.0, 1e-9);
    EXPECT_NEAR(fs.linkUtilisation(fat), 0.01, 1e-9);
    sim.run();
}

TEST(FlowSimTest, MaxMinNonBottleneckedFlowTakesRemainder)
{
    Simulator sim;
    FlowSim fs(sim);
    const int shared = fs.addLink(100.0);
    const int thin = fs.addLink(10.0);
    // Flow A crosses shared+thin (bottlenecked to 10); flow B only
    // shared and should get the remaining 90, not the 50/50 split.
    fs.startFlow({shared, thin}, 1e6, 0.0, nullptr);
    fs.startFlow({shared}, 1e6, 0.0, nullptr);
    EXPECT_DOUBLE_EQ(fs.flowRate(1), 10.0);
    EXPECT_DOUBLE_EQ(fs.flowRate(2), 90.0);
    fs.cancelFlow(1);
    fs.cancelFlow(2);
}

TEST(FlowSimTest, EnergyIntegratesRoutePower)
{
    Simulator sim;
    FlowSim fs(sim);
    const int l = fs.addLink(100.0);
    double energy = -1.0;
    fs.startFlow({l}, 1000.0, 24.0,
                 [&](const FlowRecord &r) { energy = r.energy; });
    sim.run();
    EXPECT_NEAR(energy, 24.0 * 10.0, 1e-9);
    EXPECT_NEAR(fs.totalEnergy(), 240.0, 1e-9);
}

TEST(FlowSimTest, EnergyWithContention)
{
    Simulator sim;
    FlowSim fs(sim);
    const int l = fs.addLink(100.0);
    double e1 = 0.0, e2 = 0.0;
    fs.startFlow({l}, 500.0, 10.0,
                 [&](const FlowRecord &r) { e1 = r.energy; });
    fs.startFlow({l}, 500.0, 10.0,
                 [&](const FlowRecord &r) { e2 = r.energy; });
    sim.run();
    // Both run 10 s at 10 W: contention doubles each flow's duration
    // and hence its route-element energy.
    EXPECT_NEAR(e1, 100.0, 1e-9);
    EXPECT_NEAR(e2, 100.0, 1e-9);
}

TEST(FlowSimTest, CancelFlowStopsDelivery)
{
    Simulator sim;
    FlowSim fs(sim);
    const int l = fs.addLink(100.0);
    bool fired = false;
    const FlowId id =
        fs.startFlow({l}, 1000.0, 0.0,
                     [&](const FlowRecord &) { fired = true; });
    EXPECT_TRUE(fs.cancelFlow(id));
    EXPECT_FALSE(fs.cancelFlow(id));
    sim.run();
    EXPECT_FALSE(fired);
    EXPECT_DOUBLE_EQ(fs.bytesDelivered(), 0.0);
}

TEST(FlowSimTest, CallbackMayStartNextFlow)
{
    Simulator sim;
    FlowSim fs(sim);
    const int l = fs.addLink(100.0);
    double second_finish = -1.0;
    fs.startFlow({l}, 500.0, 0.0, [&](const FlowRecord &) {
        fs.startFlow({l}, 500.0, 0.0, [&](const FlowRecord &r) {
            second_finish = r.finish_time;
        });
    });
    sim.run();
    EXPECT_NEAR(second_finish, 10.0, 1e-9);
}

TEST(FlowSimTest, StaggeredArrival)
{
    Simulator sim;
    FlowSim fs(sim);
    const int l = fs.addLink(100.0);
    double first_finish = -1.0;
    fs.startFlow({l}, 1000.0, 0.0,
                 [&](const FlowRecord &r) { first_finish = r.finish_time; });
    sim.schedule(5.0, [&] { fs.startFlow({l}, 250.0, 0.0, nullptr); });
    sim.run();
    // First flow: 5 s alone (500 B) + 5 s shared (250 B) + 2.5 s alone
    // (250 B) = 12.5 s.
    EXPECT_NEAR(first_finish, 12.5, 1e-9);
}

TEST(FlowSimTest, RejectsBadArguments)
{
    Simulator sim;
    FlowSim fs(sim);
    const int l = fs.addLink(100.0);
    EXPECT_THROW(fs.addLink(0.0), dhl::FatalError);
    EXPECT_THROW(fs.startFlow({}, 100.0), dhl::FatalError);
    EXPECT_THROW(fs.startFlow({l + 7}, 100.0), dhl::FatalError);
    EXPECT_THROW(fs.startFlow({l}, 0.0), dhl::FatalError);
    EXPECT_THROW(fs.startFlow({l}, 100.0, -1.0), dhl::FatalError);
    EXPECT_THROW(fs.flowRate(999), dhl::FatalError);
    EXPECT_THROW(fs.linkCapacity(-1), dhl::FatalError);
}

TEST(FlowSimTest, ThreeLinkContentionRatesAreExactlyDeterministic)
{
    // Water-filling walks links and flows in id order, so the exact
    // floating-point rate allocation is pinned — EXPECT_DOUBLE_EQ, not
    // EXPECT_NEAR.  Guards against iteration-order nondeterminism (the
    // old implementation walked an unordered_map).
    //
    // Topology: A(10) carries f1{A}, f2{A,B}; B(20) carries f2, f3{B,C};
    // C(30) carries f3, f4{C}.
    //   Round 1: A binds at 10/2 = 5  -> f1 = f2 = 5.
    //   Round 2: B residual 15 for f3, C residual 30 for f3,f4 = 15 each
    //            -> f3 = f4 = 15.
    const auto run_once = [](std::vector<double> &rates,
                             std::vector<double> &finishes) {
        Simulator sim;
        FlowSim fs(sim);
        const int a = fs.addLink(10.0);
        const int b = fs.addLink(20.0);
        const int c = fs.addLink(30.0);
        auto cb = [&](const FlowRecord &r) {
            finishes.push_back(r.finish_time);
        };
        const FlowId f1 = fs.startFlow({a}, 100.0, 0.0, cb);
        const FlowId f2 = fs.startFlow({a, b}, 100.0, 0.0, cb);
        const FlowId f3 = fs.startFlow({b, c}, 150.0, 0.0, cb);
        const FlowId f4 = fs.startFlow({c}, 150.0, 0.0, cb);
        rates = {fs.flowRate(f1), fs.flowRate(f2), fs.flowRate(f3),
                 fs.flowRate(f4)};
        sim.run();
    };

    std::vector<double> rates, finishes;
    run_once(rates, finishes);
    ASSERT_EQ(rates.size(), 4u);
    EXPECT_DOUBLE_EQ(rates[0], 5.0);
    EXPECT_DOUBLE_EQ(rates[1], 5.0);
    EXPECT_DOUBLE_EQ(rates[2], 15.0);
    EXPECT_DOUBLE_EQ(rates[3], 15.0);

    // Re-running the identical scenario reproduces rates and finish
    // times bit-for-bit.
    std::vector<double> rates2, finishes2;
    run_once(rates2, finishes2);
    EXPECT_EQ(rates, rates2);
    EXPECT_EQ(finishes, finishes2);
    ASSERT_EQ(finishes.size(), 4u);
}
