/**
 * @file
 * Unit tests for the argument parser.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/args.hpp"
#include "common/logging.hpp"

using dhl::ArgParser;

namespace {

/** Run the parser over a literal argv. */
bool
parse(ArgParser &args, std::vector<const char *> argv,
      std::ostream &out)
{
    argv.insert(argv.begin(), "prog");
    return args.parse(static_cast<int>(argv.size()), argv.data(), out);
}

} // namespace

TEST(ArgParserTest, OptionsWithDefaults)
{
    ArgParser args("prog", "test");
    args.addOption("speed", "m/s", "200");
    std::ostringstream os;
    EXPECT_TRUE(parse(args, {}, os));
    EXPECT_EQ(args.get("speed"), "200");
    EXPECT_DOUBLE_EQ(args.getDouble("speed"), 200.0);
    EXPECT_FALSE(args.provided("speed"));
}

TEST(ArgParserTest, SeparateAndInlineValues)
{
    ArgParser args("prog", "test");
    args.addOption("speed", "m/s", "200");
    args.addOption("length", "m", "500");
    std::ostringstream os;
    EXPECT_TRUE(parse(args, {"--speed", "300", "--length=1000"}, os));
    EXPECT_DOUBLE_EQ(args.getDouble("speed"), 300.0);
    EXPECT_EQ(args.getInt("length"), 1000);
    EXPECT_TRUE(args.provided("speed"));
}

TEST(ArgParserTest, Switches)
{
    ArgParser args("prog", "test");
    args.addSwitch("pipelined", "overlap");
    std::ostringstream os;
    EXPECT_TRUE(parse(args, {"--pipelined"}, os));
    EXPECT_TRUE(args.getSwitch("pipelined"));

    ArgParser args2("prog", "test");
    args2.addSwitch("pipelined", "overlap");
    EXPECT_TRUE(parse(args2, {}, os));
    EXPECT_FALSE(args2.getSwitch("pipelined"));
}

TEST(ArgParserTest, Positionals)
{
    ArgParser args("prog", "test");
    args.addPositional("command", "what to do");
    args.addPositional("target", "optional target", false);
    std::ostringstream os;
    EXPECT_TRUE(parse(args, {"bulk"}, os));
    EXPECT_EQ(args.positional("command"), "bulk");
    EXPECT_EQ(args.positional("target"), "");
}

TEST(ArgParserTest, HelpShortCircuits)
{
    ArgParser args("prog", "does things");
    args.addOption("speed", "m/s", "200");
    args.addSwitch("fast", "go fast");
    args.addPositional("cmd", "command");
    std::ostringstream os;
    EXPECT_FALSE(parse(args, {"--help"}, os));
    const std::string help = os.str();
    EXPECT_NE(help.find("does things"), std::string::npos);
    EXPECT_NE(help.find("--speed"), std::string::npos);
    EXPECT_NE(help.find("default: 200"), std::string::npos);
    EXPECT_NE(help.find("--fast"), std::string::npos);
    EXPECT_NE(help.find("<cmd>"), std::string::npos);
}

TEST(ArgParserTest, Errors)
{
    std::ostringstream os;
    {
        ArgParser args("prog", "t");
        EXPECT_THROW(parse(args, {"--unknown"}, os), dhl::FatalError);
    }
    {
        ArgParser args("prog", "t");
        args.addOption("speed", "m/s");
        EXPECT_THROW(parse(args, {"--speed"}, os), dhl::FatalError);
    }
    {
        ArgParser args("prog", "t");
        args.addSwitch("fast", "f");
        EXPECT_THROW(parse(args, {"--fast=1"}, os), dhl::FatalError);
    }
    {
        ArgParser args("prog", "t");
        EXPECT_THROW(parse(args, {"stray"}, os), dhl::FatalError);
    }
    {
        ArgParser args("prog", "t");
        args.addPositional("cmd", "c");
        EXPECT_THROW(parse(args, {}, os), dhl::FatalError);
    }
    {
        ArgParser args("prog", "t");
        args.addOption("n", "number", "abc");
        EXPECT_TRUE(parse(args, {}, os));
        EXPECT_THROW(args.getDouble("n"), dhl::FatalError);
        EXPECT_THROW(args.getInt("n"), dhl::FatalError);
        EXPECT_THROW(args.get("missing"), dhl::FatalError);
        EXPECT_THROW(args.getSwitch("n"), dhl::FatalError);
    }
    {
        ArgParser args("prog", "t");
        args.addOption("x", "dup");
        EXPECT_THROW(args.addOption("x", "again"), dhl::FatalError);
        EXPECT_THROW(args.addSwitch("x", "again"), dhl::FatalError);
    }
}

TEST(ArgParserTest, IntegerParsing)
{
    ArgParser args("prog", "t");
    args.addOption("count", "n", "0");
    std::ostringstream os;
    EXPECT_TRUE(parse(args, {"--count", "42"}, os));
    EXPECT_EQ(args.getInt("count"), 42);
}
