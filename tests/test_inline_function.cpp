/**
 * @file
 * Unit tests for common::InlineFunction — the small-buffer-optimised
 * move-only callable the DES kernel stores its event actions in.
 *
 * The file overrides global operator new/delete with counting hooks so
 * the tests can assert which paths allocate: callables that fit the
 * buffer must never touch the heap, oversized ones must allocate
 * exactly once and free on destruction.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>

#include "common/inline_function.hpp"

using dhl::common::InlineFunction;

namespace {

std::atomic<std::int64_t> g_allocs{0};
std::atomic<std::int64_t> g_frees{0};

} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    if (p) {
        ++g_frees;
        std::free(p);
    }
}

void
operator delete(void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

namespace {

using Fn = InlineFunction<int(), 64>;

/** Callable whose instances count constructions and destructions. */
struct Counted
{
    static int live;
    static int destroyed;
    int value;

    explicit Counted(int v) : value(v) { ++live; }
    Counted(Counted &&other) noexcept : value(other.value) { ++live; }
    Counted(const Counted &other) : value(other.value) { ++live; }
    ~Counted()
    {
        --live;
        ++destroyed;
    }

    int operator()() const { return value; }
};

int Counted::live = 0;
int Counted::destroyed = 0;

TEST(InlineFunction, EmptyByDefault)
{
    Fn f;
    EXPECT_FALSE(static_cast<bool>(f));
    Fn g(nullptr);
    EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InlineFunction, SmallCallableStaysInline)
{
    int x = 41;
    const auto before = g_allocs.load();
    Fn f([&x] { return x + 1; });
    EXPECT_EQ(g_allocs.load(), before) << "SBO-sized lambda allocated";
    ASSERT_TRUE(static_cast<bool>(f));
    EXPECT_EQ(f(), 42);
}

TEST(InlineFunction, SixtyFourByteCaptureStaysInline)
{
    std::array<std::uint64_t, 8> payload{}; // exactly the 64-byte buffer
    payload[7] = 7;
    const auto before = g_allocs.load();
    Fn f([payload] { return static_cast<int>(payload[7]); });
    EXPECT_EQ(g_allocs.load(), before);
    EXPECT_EQ(f(), 7);
}

TEST(InlineFunction, OversizedCallableUsesHeapOnceAndFrees)
{
    std::array<std::uint64_t, 9> payload{}; // 72 bytes: one over
    payload[0] = 9;
    const auto allocs_before = g_allocs.load();
    const auto frees_before = g_frees.load();
    {
        Fn f([payload] { return static_cast<int>(payload[0]); });
        EXPECT_EQ(g_allocs.load(), allocs_before + 1);
        EXPECT_EQ(f(), 9);

        // Moving a heap-backed callable steals the pointer: no
        // further allocation, no premature free.
        Fn g(std::move(f));
        EXPECT_EQ(g_allocs.load(), allocs_before + 1);
        EXPECT_EQ(g_frees.load(), frees_before);
        EXPECT_EQ(g(), 9);
        EXPECT_FALSE(static_cast<bool>(f));
    }
    EXPECT_EQ(g_frees.load(), frees_before + 1);
}

TEST(InlineFunction, ReportsStoragePolicy)
{
    struct Small
    {
        void operator()() {}
    };
    EXPECT_TRUE((InlineFunction<void(), 64>::storedInline<Small>()));
    struct Big
    {
        std::array<std::byte, 65> pad;
        void operator()() {}
    };
    EXPECT_FALSE((InlineFunction<void(), 64>::storedInline<Big>()));
}

TEST(InlineFunction, HoldsMoveOnlyCaptures)
{
    auto p = std::make_unique<int>(123);
    InlineFunction<int(), 64> f([q = std::move(p)] { return *q; });
    EXPECT_EQ(f(), 123);
    // Move the whole function; the unique_ptr travels with it.
    InlineFunction<int(), 64> g(std::move(f));
    EXPECT_EQ(g(), 123);
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, MoveConstructionTransfersOwnership)
{
    Counted::live = 0;
    Counted::destroyed = 0;
    {
        Fn f{Counted(5)};
        EXPECT_EQ(Counted::live, 1);
        Fn g(std::move(f));
        EXPECT_EQ(Counted::live, 1) << "move must relocate, not duplicate";
        EXPECT_FALSE(static_cast<bool>(f));
        EXPECT_EQ(g(), 5);
    }
    EXPECT_EQ(Counted::live, 0);
}

TEST(InlineFunction, MoveAssignmentDestroysOldCallable)
{
    Counted::live = 0;
    Counted::destroyed = 0;
    Fn f{Counted(1)};
    Fn g{Counted(2)};
    EXPECT_EQ(Counted::live, 2);
    g = std::move(f);
    EXPECT_EQ(Counted::live, 1); // old occupant of g destroyed
    EXPECT_EQ(g(), 1);
    EXPECT_FALSE(static_cast<bool>(f));
    g = nullptr;
    EXPECT_EQ(Counted::live, 0);
}

TEST(InlineFunction, SelfMoveAssignmentIsHarmless)
{
    Counted::live = 0;
    Counted::destroyed = 0;
    Fn f{Counted(77)};
    Fn &alias = f;
    f = std::move(alias); // must not destroy the live callable
    EXPECT_EQ(Counted::live, 1);
    ASSERT_TRUE(static_cast<bool>(f));
    EXPECT_EQ(f(), 77);
}

TEST(InlineFunction, DestructionCountsBalance)
{
    Counted::live = 0;
    Counted::destroyed = 0;
    {
        Fn a{Counted(1)};
        Fn b{Counted(2)};
        Fn c(std::move(a));
        b = std::move(c);
        (void)b;
    }
    EXPECT_EQ(Counted::live, 0);
    // Every construction (direct + relocation temporaries) was matched
    // by exactly one destruction.
    EXPECT_GE(Counted::destroyed, 2);
}

TEST(InlineFunction, ForwardsArgumentsAndReturn)
{
    InlineFunction<double(double, double), 32> f(
        [](double a, double b) { return a * b; });
    EXPECT_DOUBLE_EQ(f(3.0, 4.0), 12.0);

    // Reference arguments pass through untouched.
    InlineFunction<void(int &), 32> inc([](int &v) { ++v; });
    int x = 1;
    inc(x);
    EXPECT_EQ(x, 2);
}

TEST(InlineFunction, WrapsStdFunction)
{
    std::function<int()> sf = [] { return 31; };
    InlineFunction<int(), 64> f(sf); // copies the std::function
    EXPECT_EQ(f(), 31);
}

} // namespace
