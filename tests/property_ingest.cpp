/**
 * @file
 * Property tests over the ingestion simulator: conservation and bound
 * invariants across randomised workload/producer combinations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.hpp"
#include "common/units.hpp"
#include "mlsim/ingest_sim.hpp"

using namespace dhl::mlsim;
using dhl::Rng;
using dhl::core::makeConfig;
using dhl::network::canonicalRoutes;
namespace u = dhl::units;

class IngestProperty : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    IngestConfig
    randomConfig(Rng &rng) const
    {
        IngestConfig cfg;
        cfg.batch_bytes = u::terabytes(rng.uniform(0.5, 4.0));
        cfg.step_compute_time = rng.uniform(0.1, 10.0);
        cfg.buffer_capacity =
            cfg.batch_bytes * rng.uniform(1.0, 64.0);
        return cfg;
    }
};

TEST_P(IngestProperty, TimeDecompositionHolds)
{
    // epoch = compute + stalls: the consumer is always either
    // computing or stalled.
    Rng rng(GetParam());
    const IngestConfig cfg = randomConfig(rng);
    IngestSim sim(cfg);
    const double dataset = cfg.batch_bytes * rng.uniform(5.0, 40.0);
    const auto &route =
        canonicalRoutes()[static_cast<std::size_t>(rng.uniformInt(0, 4))];
    const auto r =
        sim.runWithNetwork(dataset, route, rng.uniform(0.5, 50.0));
    EXPECT_NEAR(r.epoch_time, r.compute_busy + r.stall_time,
                r.epoch_time * 1e-9);
    EXPECT_LE(r.utilisation, 1.0 + 1e-9);
    EXPECT_GE(r.utilisation, 0.0);
}

TEST_P(IngestProperty, AllStepsRetired)
{
    Rng rng(GetParam() + 10);
    const IngestConfig cfg = randomConfig(rng);
    IngestSim sim(cfg);
    const double mult = rng.uniform(3.0, 30.0);
    const double dataset = cfg.batch_bytes * mult;
    const auto r = sim.runWithNetwork(dataset, canonicalRoutes()[0],
                                      rng.uniform(1.0, 20.0));
    EXPECT_EQ(r.steps, static_cast<std::uint64_t>(std::ceil(mult)));
    EXPECT_NEAR(r.compute_busy,
                static_cast<double>(r.steps) * cfg.step_compute_time,
                1e-6);
}

TEST_P(IngestProperty, EpochBoundedBelowByBothResources)
{
    Rng rng(GetParam() + 20);
    const IngestConfig cfg = randomConfig(rng);
    IngestSim sim(cfg);
    const double dataset = cfg.batch_bytes * rng.uniform(5.0, 20.0);
    const double links = rng.uniform(0.5, 10.0);
    const auto r =
        sim.runWithNetwork(dataset, canonicalRoutes()[1], links);
    const double wire = dataset / (50e9 * links);
    EXPECT_GE(r.epoch_time, r.compute_busy - 1e-9);
    EXPECT_GE(r.epoch_time, wire - 1e-9);
    // And bounded above by their sum plus a few steps of ping-pong
    // slack (tight buffers fragment the overlap at step granularity).
    EXPECT_LE(r.epoch_time,
              r.compute_busy + wire + 3.0 * cfg.step_compute_time + 1e-6);
}

TEST_P(IngestProperty, MoreLinksNeverHurt)
{
    Rng rng(GetParam() + 30);
    const IngestConfig cfg = randomConfig(rng);
    IngestSim sim(cfg);
    const double dataset = cfg.batch_bytes * 20.0;
    double prev = 1e300;
    for (double links : {1.0, 2.0, 4.0, 8.0, 16.0}) {
        const auto r =
            sim.runWithNetwork(dataset, canonicalRoutes()[2], links);
        EXPECT_LE(r.epoch_time, prev + 1e-6);
        prev = r.epoch_time;
    }
}

TEST_P(IngestProperty, DhlEpochBoundedByDrainAndCompute)
{
    Rng rng(GetParam() + 40);
    IngestConfig cfg = randomConfig(rng);
    // Keep DES event counts sane: dataset of a few carts.
    IngestSim sim(cfg);
    const auto dhl = makeConfig(200, 500, 32);
    const double dataset = u::terabytes(256) * rng.uniform(1.0, 4.0);
    const auto r = sim.runWithDhl(dataset, dhl, rng.uniform() < 0.5);
    const double drain = dataset / (32 * 7.1e9);
    EXPECT_GE(r.epoch_time, r.compute_busy - 1e-9);
    EXPECT_GE(r.epoch_time, drain - 1e-9);
    EXPECT_NEAR(r.epoch_time, r.compute_busy + r.stall_time,
                r.epoch_time * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IngestProperty,
                         ::testing::Values(101u, 202u, 303u, 404u));
