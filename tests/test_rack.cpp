/**
 * @file
 * Unit tests for the rack fan-out model.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/rack.hpp"

using namespace dhl::core;
namespace u = dhl::units;

namespace {

DhlConfig
fourStationConfig()
{
    DhlConfig cfg = defaultConfig();
    cfg.docking_stations = 4;
    return cfg;
}

} // namespace

TEST(RackModelTest, AggregateBandwidthScalesWithCarts)
{
    RackModel rack(fourStationConfig());
    const double one = rack.aggregateBandwidth(1);
    EXPECT_NEAR(one, 32 * 7.1e9, 1.0); // the cart's array bandwidth
    EXPECT_NEAR(rack.aggregateBandwidth(4), 4.0 * one, 1.0);
    EXPECT_THROW(rack.aggregateBandwidth(0), dhl::FatalError);
    EXPECT_THROW(rack.aggregateBandwidth(5), dhl::FatalError);
}

TEST(RackModelTest, PerNodeRespectsBothCeilings)
{
    RackConfig rc;
    rc.nodes = 8;
    rc.node_attach_bw = 121e9;
    RackModel rack(fourStationConfig(), rc);
    // 1 cart (227 GB/s) over 8 nodes: fair share ~28 GB/s < attach.
    EXPECT_NEAR(rack.perNodeBandwidth(1, 8), 32 * 7.1e9 / 8.0, 1.0);
    // 4 carts over 2 nodes: fair share 454 GB/s > 121 GB/s attach.
    EXPECT_DOUBLE_EQ(rack.perNodeBandwidth(4, 2), 121e9);
    EXPECT_THROW(rack.perNodeBandwidth(1, 0), dhl::FatalError);
    EXPECT_THROW(rack.perNodeBandwidth(1, 9), dhl::FatalError);
}

TEST(RackModelTest, CollectiveReadTime)
{
    RackConfig rc;
    rc.nodes = 8;
    rc.node_attach_bw = 121e9;
    RackModel rack(fourStationConfig(), rc);
    // 4 carts staged, 1 PB sharded over 8 nodes: each node reads
    // 125 TB at min(908.8/8, 121) = 113.6 GB/s.
    const double t = rack.collectiveReadTime(4, u::petabytes(1));
    EXPECT_NEAR(t, 125e12 / (4 * 32 * 7.1e9 / 8.0), 1.0);
}

TEST(RackModelTest, ShardsAreEvenAndConsistent)
{
    RackModel rack(fourStationConfig());
    const auto shares = rack.shardEvenly(2, u::terabytes(512));
    ASSERT_EQ(shares.size(), 8u);
    double total = 0.0;
    for (const auto &s : shares) {
        EXPECT_DOUBLE_EQ(s.bytes, u::terabytes(64));
        EXPECT_NEAR(s.time, rack.collectiveReadTime(2, u::terabytes(512)),
                    1e-9);
        total += s.bytes;
    }
    EXPECT_DOUBLE_EQ(total, u::terabytes(512));
}

TEST(RackModelTest, SaturatingNodeCount)
{
    RackConfig rc;
    rc.nodes = 64;
    rc.node_attach_bw = 121e9;
    RackModel rack(fourStationConfig(), rc);
    // 1 cart: 227.2 / 121 -> 2 nodes saturate it.
    EXPECT_EQ(rack.saturatingNodeCount(1), 2u);
    // 4 carts: 908.8 / 121 -> 8 nodes.
    EXPECT_EQ(rack.saturatingNodeCount(4), 8u);
}

TEST(RackModelTest, HeatLoadMatchesDiscussion)
{
    // 32 SSDs x 10 W per cart; four docked carts need ~1.3 kW of heat
    // sinking.
    RackModel rack(fourStationConfig());
    EXPECT_DOUBLE_EQ(rack.heatLoad(1), 320.0);
    EXPECT_DOUBLE_EQ(rack.heatLoad(4), 1280.0);
}

TEST(RackConfigTest, Validation)
{
    RackConfig bad;
    bad.nodes = 0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = RackConfig{};
    bad.node_attach_bw = 0.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
}
