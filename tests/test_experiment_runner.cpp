/**
 * @file
 * Unit tests for the experiment-execution layer: scenario seeds,
 * ordering, exception propagation, and — the determinism contract — a
 * serial vs. parallel run of a small Figure 6 sweep rendering
 * byte-identical tables.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "exp/experiment_runner.hpp"
#include "mlsim/sweep.hpp"

using namespace dhl;
using namespace dhl::exp;

namespace {

/** Render a result table to a string. */
std::string
renderText(const ExperimentResult &result,
           std::vector<std::string> headers, bool separators = true)
{
    std::ostringstream os;
    result.table(std::move(headers), separators).print(os);
    return os.str();
}

std::string
renderCsv(const ExperimentResult &result,
          std::vector<std::string> headers)
{
    std::ostringstream os;
    result.table(std::move(headers), false).printCsv(os);
    return os.str();
}

/** The small Figure 6 grid used by the determinism tests. */
Experiment
smallFig6()
{
    const mlsim::TrainingWorkload workload = mlsim::dlrmWorkload();
    Experiment e("small_fig6");
    e.add(mlsim::dhlSweepScenario(workload, core::makeConfig(200, 500, 32),
                                  10e3))
        .separator_after = true;
    e.add(mlsim::dhlSweepScenario(workload, core::makeConfig(100, 500, 32),
                                  10e3))
        .separator_after = true;
    for (const char *name : {"A0", "A1", "A2"}) {
        e.add(mlsim::opticalSweepScenario(
                  workload, network::findRoute(name), 1e3, 10e3, 5))
            .separator_after = true;
    }
    return e;
}

} // namespace

TEST(ScenarioSeedTest, DependsOnIndexAndNameOnly)
{
    const auto s = scenarioSeed(42, 3, "alpha");
    EXPECT_EQ(s, scenarioSeed(42, 3, "alpha"));
    EXPECT_NE(s, scenarioSeed(42, 4, "alpha"));
    EXPECT_NE(s, scenarioSeed(42, 3, "beta"));
    EXPECT_NE(s, scenarioSeed(43, 3, "alpha"));
}

TEST(ScenarioSeedTest, DerivedRngIsIndependentOfJobs)
{
    // A scenario that draws from its context Rng must see the same
    // stream whether the experiment runs serially or in parallel.
    auto build = [] {
        Experiment e("rng_probe");
        for (int s = 0; s < 6; ++s) {
            e.add("probe" + std::to_string(s),
                  [](ScenarioContext &ctx) -> ScenarioRows {
                      std::ostringstream os;
                      os << ctx.rng.next() << ":" << ctx.rng.next();
                      return {{os.str()}};
                  });
        }
        return e;
    };

    const ExperimentRunner serial(RunOptions{1, 7});
    const ExperimentRunner parallel(RunOptions{4, 7});
    const auto a = serial.run(build());
    const auto b = parallel.run(build());
    ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
    for (std::size_t i = 0; i < a.scenarios.size(); ++i)
        EXPECT_EQ(a.scenarios[i].rows, b.scenarios[i].rows);
}

TEST(ExperimentRunnerTest, OutcomesKeepDeclarationOrder)
{
    Experiment e("ordered");
    for (int i = 0; i < 20; ++i) {
        e.add("s" + std::to_string(i),
              [i](ScenarioContext &ctx) -> ScenarioRows {
                  EXPECT_EQ(ctx.index, static_cast<std::size_t>(i));
                  return {{std::to_string(i)}};
              });
    }
    const ExperimentRunner runner(RunOptions{4, 0});
    const auto result = runner.run(e);
    ASSERT_EQ(result.scenarios.size(), 20u);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(result.scenarios[static_cast<std::size_t>(i)].name,
                  "s" + std::to_string(i));
        EXPECT_EQ(result.scenarios[static_cast<std::size_t>(i)].rows,
                  ScenarioRows{{std::to_string(i)}});
    }
    EXPECT_EQ(result.rows().size(), 20u);
}

TEST(ExperimentRunnerTest, ScenarioExceptionPropagates)
{
    Experiment e("failing");
    e.add("ok", [](ScenarioContext &) -> ScenarioRows { return {}; });
    e.add("bad", [](ScenarioContext &) -> ScenarioRows {
        fatal("scenario rejects its config");
    });
    const ExperimentRunner runner(RunOptions{2, 0});
    EXPECT_THROW(runner.run(e), FatalError);
}

TEST(ExperimentRunnerTest, JobsResolveAgainstHardware)
{
    const ExperimentRunner detect{RunOptions{0, 0}};
    EXPECT_EQ(detect.jobs(), ThreadPool::hardwareConcurrency());
    const ExperimentRunner serial{RunOptions{1, 0}};
    EXPECT_EQ(serial.jobs(), 1u);
}

TEST(ExperimentRunnerTest, RecordsWallTimes)
{
    Experiment e("timed");
    e.add("noop", [](ScenarioContext &) -> ScenarioRows { return {}; });
    const ExperimentRunner runner(RunOptions{1, 0});
    const auto result = runner.run(e);
    EXPECT_GE(result.scenarios[0].wall_seconds, 0.0);
    EXPECT_GE(result.wall_seconds, result.scenarios[0].wall_seconds);
    EXPECT_EQ(result.timingTable().numRows(), 1u);
}

TEST(ExperimentRunnerDeterminismTest, SerialAndParallelTablesAreIdentical)
{
    // The acceptance contract: a --jobs 1 run and a --jobs N run of the
    // same experiment render byte-identical tables (text and CSV).
    const ExperimentRunner serial(RunOptions{1, 0});
    const ExperimentRunner parallel(RunOptions{4, 0});

    const auto a = serial.run(smallFig6());
    const auto b = parallel.run(smallFig6());

    EXPECT_EQ(renderText(a, mlsim::sweepHeaders()),
              renderText(b, mlsim::sweepHeaders()));
    EXPECT_EQ(renderCsv(a, mlsim::sweepHeaders()),
              renderCsv(b, mlsim::sweepHeaders()));
}

TEST(ExperimentRunnerDeterminismTest, RepeatedParallelRunsAreStable)
{
    const ExperimentRunner runner(RunOptions{4, 0});
    const auto first = renderCsv(runner.run(smallFig6()),
                                 mlsim::sweepHeaders());
    for (int round = 0; round < 3; ++round) {
        EXPECT_EQ(renderCsv(runner.run(smallFig6()),
                            mlsim::sweepHeaders()),
                  first);
    }
}
