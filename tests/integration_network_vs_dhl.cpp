/**
 * @file
 * Integration: the optical-network side and the DHL side of the
 * comparison, wired together — flow simulation over the fat tree must
 * agree with the analytical route model, and the end-to-end DHL-vs-
 * network verdict must match the paper's qualitative claims.
 */

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "dhl/simulation.hpp"
#include "network/flowsim.hpp"
#include "network/topology.hpp"
#include "network/transfer.hpp"

using namespace dhl;
using namespace dhl::network;
namespace u = dhl::units;

TEST(FlowSimVsAnalytical, UncontendedTransferAgrees)
{
    // One flow over a dedicated path must match the closed-form
    // transfer time and energy.
    sim::Simulator simulator;
    FlowSim fs(simulator);
    const double rate = u::gigabitsPerSecond(400);
    const int l1 = fs.addLink(rate);
    const int l2 = fs.addLink(rate);

    const Route &route = findRoute("B");
    const double bytes = u::petabytes(1);
    double finish = -1.0, energy = -1.0;
    fs.startFlow({l1, l2}, bytes, route.power().value(),
                 [&](const FlowRecord &r) {
                     finish = r.finish_time;
                     energy = r.energy;
                 });
    simulator.run();

    const TransferModel model(route);
    const auto expected = model.transfer(dhl::qty::Bytes{bytes});
    EXPECT_NEAR(finish, expected.time.value(),
                expected.time.value() * 1e-9);
    EXPECT_NEAR(energy, expected.energy.value(),
                expected.energy.value() * 1e-6);
}

TEST(FlowSimVsAnalytical, ContentionStretchesBulkTransfers)
{
    // The paper's §II motivation: a bulk backup flow sharing the fabric
    // with foreground traffic both slows down and squeezes the
    // foreground flow.
    sim::Simulator simulator;
    FlowSim fs(simulator);
    const double rate = u::gigabitsPerSecond(400);
    const int uplink = fs.addLink(rate);

    const double bulk_bytes = u::terabytes(18); // 360 s alone
    const double fg_bytes = u::terabytes(9);    // 180 s alone
    double bulk_done = -1.0, fg_done = -1.0;
    fs.startFlow({uplink}, bulk_bytes, 0.0,
                 [&](const FlowRecord &r) { bulk_done = r.finish_time; });
    fs.startFlow({uplink}, fg_bytes, 0.0,
                 [&](const FlowRecord &r) { fg_done = r.finish_time; });
    simulator.run();
    // Foreground: 9 TB at half rate = 360 s; bulk finishes the
    // remaining 9 TB alone: 360 + 180 = 540 s.
    EXPECT_NEAR(fg_done, 360.0, 1e-6);
    EXPECT_NEAR(bulk_done, 540.0, 1e-6);
}

TEST(TopologyRoutes, FeedTransferModelLikeCanonicalRoutes)
{
    FatTree ft;
    const auto cross = ft.path({0, 0, 0}, {1, 0, 0});
    const TransferModel via_fabric(cross.route);
    const TransferModel via_c(findRoute("C"));
    const dhl::qty::Bytes bytes = dhl::qty::petabytes(29.0);
    EXPECT_NEAR(via_fabric.transfer(bytes).energy.value(),
                via_c.transfer(bytes).energy.value(), 1.0);
}

TEST(EndToEnd, DhlBeatsEveryRouteOn29Pb)
{
    // The paper's headline: for the 29 PB ML dataset the DHL wins on
    // both time and energy against every canonical route.
    const core::AnalyticalModel model(core::defaultConfig());
    const dhl::qty::Bytes bytes = dhl::qty::petabytes(29.0);
    for (const auto &route : canonicalRoutes()) {
        const auto cmp = model.compareBulk(bytes, route);
        EXPECT_GT(cmp.time_speedup, 100.0) << route.name();
        EXPECT_GT(cmp.energy_reduction, 4.0) << route.name();
    }
}

TEST(EndToEnd, SmallTransfersFavourTheNetwork)
{
    // Below the §V-E break-even the network wins on time: a 100 GB
    // transfer takes 2 s on one link but a full 8.6 s DHL trip.
    const core::AnalyticalModel model(core::defaultConfig());
    const TransferModel net(findRoute("A0"));
    const dhl::qty::Bytes bytes = dhl::qty::gigabytes(100.0);
    const dhl::qty::Seconds net_time = net.transfer(bytes).time;
    core::BulkOptions opts;
    opts.count_return_trips = false;
    const dhl::qty::Seconds dhl_time = model.bulk(bytes, opts).total_time;
    EXPECT_LT(net_time.value(), dhl_time.value());
}

TEST(EndToEnd, DesBackedDhlAlsoBeatsNetworkAtScale)
{
    // Same verdict from the event-driven side, on a scaled dataset
    // (1 PB) so the test stays fast.
    const double bytes = u::petabytes(1);
    core::DhlSimulation des(core::defaultConfig());
    const auto dhl_run = des.runBulkTransfer(bytes);

    const TransferModel net(findRoute("B"));
    const auto net_run = net.transfer(dhl::qty::Bytes{bytes});
    EXPECT_GT(net_run.time.value() / dhl_run.total_time, 100.0);
    EXPECT_GT(net_run.energy.value() / dhl_run.total_energy, 4.0);
}
