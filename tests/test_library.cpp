/**
 * @file
 * Unit tests for the library endpoint (slots, cart creation,
 * dock/undock timing).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/library.hpp"

using namespace dhl::core;
using dhl::sim::Simulator;
namespace u = dhl::units;

TEST(LibraryTest, AddCartPreloads)
{
    Simulator sim;
    DhlConfig cfg = defaultConfig();
    Library lib(sim, cfg);
    Cart &c = lib.addCart(u::terabytes(100));
    EXPECT_EQ(c.id(), 0u);
    EXPECT_DOUBLE_EQ(c.storedBytes(), u::terabytes(100));
    EXPECT_EQ(lib.totalCarts(), 1u);
    EXPECT_EQ(lib.storedCarts(), 1u);
    EXPECT_EQ(&lib.cart(0), &c);
}

TEST(LibraryTest, SlotsAreFinite)
{
    Simulator sim;
    DhlConfig cfg = defaultConfig();
    cfg.library_slots = 2;
    Library lib(sim, cfg);
    lib.addCart();
    lib.addCart();
    EXPECT_EQ(lib.freeSlots(), 0u);
    EXPECT_THROW(lib.addCart(), dhl::FatalError);
}

TEST(LibraryTest, UndockTakesDockTime)
{
    Simulator sim;
    DhlConfig cfg = defaultConfig();
    Library lib(sim, cfg);
    Cart &c = lib.addCart();
    bool done = false;
    lib.beginUndock(c.id(), [&] { done = true; });
    EXPECT_EQ(c.state(), CartState::Undocking);
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
    // Slot frees once the cart departs the library.
    c.launch();
    EXPECT_EQ(lib.storedCarts(), 0u);
    EXPECT_EQ(lib.freeSlots(), cfg.library_slots);
}

TEST(LibraryTest, DockStoresArrivingCart)
{
    Simulator sim;
    DhlConfig cfg = defaultConfig();
    Library lib(sim, cfg);
    Cart &c = lib.addCart();
    // Send it out and bring it back.
    lib.beginUndock(c.id(), nullptr);
    sim.run();
    c.launch();

    bool stored = false;
    lib.beginDock(c.id(), [&] { stored = true; });
    EXPECT_EQ(c.state(), CartState::Docking);
    sim.run();
    EXPECT_TRUE(stored);
    EXPECT_EQ(c.state(), CartState::Stored);
    EXPECT_EQ(lib.storedCarts(), 1u);
}

TEST(LibraryTest, DockWithoutSlotRejected)
{
    Simulator sim;
    DhlConfig cfg = defaultConfig();
    cfg.library_slots = 1;
    Library lib(sim, cfg);
    Cart &out = lib.addCart();
    lib.beginUndock(out.id(), nullptr);
    sim.run();
    out.launch();

    // While the first cart is away, a second cart fills the only slot.
    Cart &squatter = lib.addCart();
    (void)squatter;
    EXPECT_EQ(lib.freeSlots(), 0u);
    EXPECT_THROW(lib.beginDock(out.id(), nullptr), dhl::FatalError);
}

TEST(LibraryTest, UndockForeignCartPanics)
{
    Simulator sim;
    DhlConfig cfg = defaultConfig();
    Library lib(sim, cfg);
    Cart &c = lib.addCart();
    lib.beginUndock(c.id(), nullptr);
    // Already undocking: a second undock of the same cart is a bug.
    EXPECT_THROW(lib.beginUndock(c.id(), nullptr), dhl::PanicError);
    EXPECT_THROW(lib.cart(42), dhl::FatalError);
}

TEST(LibraryTest, InboundReservationHoldsSlot)
{
    Simulator sim;
    DhlConfig cfg = defaultConfig();
    cfg.library_slots = 1;
    Library lib(sim, cfg);
    Cart &c = lib.addCart();
    lib.beginUndock(c.id(), nullptr);
    sim.run();
    c.launch();
    lib.beginDock(c.id(), nullptr);
    // Mid-dock the slot is claimed by the inbound cart.
    EXPECT_EQ(lib.freeSlots(), 0u);
    sim.run();
    EXPECT_EQ(lib.freeSlots(), 0u); // now occupied by the stored cart
    EXPECT_EQ(lib.storedCarts(), 1u);
}
