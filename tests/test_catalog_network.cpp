/**
 * @file
 * Unit tests for the network component catalogue and the canonical
 * route power model — the Fig. 2 energies are the paper's anchor.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "network/catalog.hpp"
#include "network/route.hpp"

using namespace dhl::network;
namespace u = dhl::units;

TEST(ComponentCatalog, TableIiiRows)
{
    const auto &rows = componentCatalog();
    ASSERT_EQ(rows.size(), 5u);
    int bold = 0;
    for (const auto &r : rows) {
        if (r.paper_default)
            ++bold;
    }
    EXPECT_EQ(bold, 3); // transceiver, 2x200 NIC, QM9700 switch
}

TEST(PowerConstantsTest, CalibratedValues)
{
    const auto &pc = defaultPowerConstants();
    EXPECT_DOUBLE_EQ(pc.transceiver.value(), 12.0);
    EXPECT_DOUBLE_EQ(pc.nic.value(), 19.8);
    EXPECT_NEAR(pc.switch_port_passive.value(), 23.34375, 1e-9);
    EXPECT_DOUBLE_EQ(pc.switch_port_active.value(), 53.75);
    EXPECT_DOUBLE_EQ(pc.link_rate.value(), u::gigabitsPerSecond(400));
    // The NIC calibration stays inside the bold NIC's datasheet range.
    EXPECT_GE(pc.nic.value(), 17.0);
    EXPECT_LE(pc.nic.value(), 23.3);
}

TEST(RoutePower, CanonicalRouteWattages)
{
    EXPECT_NEAR(findRoute("A0").power().value(), 24.0, 1e-9);
    EXPECT_NEAR(findRoute("A1").power().value(), 39.6, 1e-9);
    EXPECT_NEAR(findRoute("A2").power().value(), 86.2875, 1e-9);
    EXPECT_NEAR(findRoute("B").power().value(), 301.2875, 1e-9);
    EXPECT_NEAR(findRoute("C").power().value(), 516.2875, 1e-9);
}

TEST(RoutePower, Fig2EnergiesFor29Pb)
{
    // The Fig. 2 table: energy = route power x 580,000 s.
    const dhl::qty::Seconds t = dhl::qty::petabytes(29.0) /
        dhl::qty::toBytesPerSecond(dhl::qty::gigabitsPerSecond(400.0));
    struct Row { const char *name; double mj; };
    const Row rows[] = {
        {"A0", 13.92}, {"A1", 22.97}, {"A2", 50.05},
        {"B", 174.75}, {"C", 299.45},
    };
    for (const auto &r : rows) {
        const dhl::qty::Joules e = findRoute(r.name).power() * t;
        EXPECT_NEAR(u::toMegajoules(e), r.mj, 0.005) << r.name;
    }
}

TEST(RoutePower, OrderingMatchesTopologyDepth)
{
    const auto &routes = canonicalRoutes();
    ASSERT_EQ(routes.size(), 5u);
    for (std::size_t i = 1; i < routes.size(); ++i)
        EXPECT_GT(routes[i].power().value(), routes[i - 1].power().value());
}

TEST(RouteStructure, ElementCounts)
{
    const Route &b = findRoute("B");
    EXPECT_EQ(b.countOf(ElementKind::Nic), 2);
    EXPECT_EQ(b.countOf(ElementKind::SwitchPortPassive), 2);
    EXPECT_EQ(b.countOf(ElementKind::SwitchPortActive), 4);
    EXPECT_EQ(b.switchTransits(), 3);

    const Route &c = findRoute("C");
    EXPECT_EQ(c.switchTransits(), 5);
    EXPECT_EQ(findRoute("A2").switchTransits(), 1);
    EXPECT_EQ(findRoute("A0").switchTransits(), 0);
}

TEST(RouteStructure, CustomConstantsPropagate)
{
    PowerConstants pc;
    pc.transceiver = dhl::qty::Watts{10.0};
    EXPECT_DOUBLE_EQ(findRoute("A0").power(pc).value(), 20.0);
}

TEST(RouteStructure, Validation)
{
    EXPECT_THROW(findRoute("Z"), dhl::FatalError);
    EXPECT_THROW(Route("", {}), dhl::FatalError);
    EXPECT_THROW(Route("neg", {{ElementKind::Nic, -1}}), dhl::FatalError);
}

TEST(EnumNames, ComponentAndElementKinds)
{
    EXPECT_EQ(to_string(ComponentKind::Transceiver), "Transceiver");
    EXPECT_EQ(to_string(ComponentKind::Switch), "Switch");
    EXPECT_EQ(to_string(ElementKind::SwitchPortActive),
              "switch-port(active)");
}
