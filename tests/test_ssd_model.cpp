/**
 * @file
 * Unit tests for the behavioural SSD model (bandwidth, wear, failure
 * injection).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "storage/ssd_model.hpp"

using namespace dhl::storage;
namespace u = dhl::units;

namespace {

SsdModel
freshSsd(double failure_per_trip = 0.0,
         ConnectorKind connector = ConnectorKind::UsbC)
{
    return SsdModel(referenceM2Ssd(), connector, failure_per_trip);
}

} // namespace

TEST(SsdModelTest, StartsEmptyAndHealthy)
{
    auto ssd = freshSsd();
    EXPECT_TRUE(ssd.healthy());
    EXPECT_DOUBLE_EQ(ssd.storedBytes(), 0.0);
    EXPECT_DOUBLE_EQ(ssd.freeBytes(), u::terabytes(8));
}

TEST(SsdModelTest, WriteAndReadTiming)
{
    auto ssd = freshSsd();
    const double bytes = u::terabytes(1);
    const double wt = ssd.write(bytes);
    EXPECT_NEAR(wt, bytes / u::megabytes(6000), 1e-9);
    EXPECT_DOUBLE_EQ(ssd.storedBytes(), bytes);
    const double rt = ssd.readTime(bytes);
    EXPECT_NEAR(rt, bytes / u::megabytes(7100), 1e-9);
    EXPECT_LT(rt, wt); // reads are faster on this device
}

TEST(SsdModelTest, OverflowAndOverreadRejected)
{
    auto ssd = freshSsd();
    ssd.write(u::terabytes(8));
    EXPECT_THROW(ssd.write(u::gigabytes(1)), dhl::FatalError);
    EXPECT_THROW(ssd.readTime(u::terabytes(9)), dhl::FatalError);
    EXPECT_THROW(ssd.write(-1.0), dhl::FatalError);
    EXPECT_THROW(ssd.readTime(-1.0), dhl::FatalError);
}

TEST(SsdModelTest, TrimAndErase)
{
    auto ssd = freshSsd();
    ssd.write(u::terabytes(4));
    ssd.trim(u::terabytes(1));
    EXPECT_DOUBLE_EQ(ssd.storedBytes(), u::terabytes(3));
    EXPECT_THROW(ssd.trim(u::terabytes(5)), dhl::FatalError);
    ssd.eraseAll();
    EXPECT_DOUBLE_EQ(ssd.storedBytes(), 0.0);
}

TEST(SsdModelTest, RatedCyclesMatchDiscussion)
{
    // Discussion §VI: USB-C 10k-20k cycles, M.2 hundreds.
    EXPECT_EQ(ratedCycles(ConnectorKind::UsbC), 10000u);
    EXPECT_EQ(ratedCycles(ConnectorKind::M2), 250u);
}

TEST(SsdModelTest, M2ConnectorWearsOutQuickly)
{
    auto ssd = freshSsd(0.0, ConnectorKind::M2);
    for (int i = 0; i < 250; ++i)
        ssd.matingCycle();
    EXPECT_TRUE(ssd.healthy());
    ssd.matingCycle(); // 251st crosses the rating
    EXPECT_EQ(ssd.state(), SsdState::ConnectorWorn);
    EXPECT_FALSE(ssd.healthy());
}

TEST(SsdModelTest, UsbCSurvivesManyMoreCycles)
{
    auto ssd = freshSsd();
    for (int i = 0; i < 5000; ++i)
        ssd.matingCycle();
    EXPECT_TRUE(ssd.healthy());
    EXPECT_EQ(ssd.matingCycles(), 5000u);
}

TEST(SsdModelTest, UnhealthyDeviceRefusesIo)
{
    auto ssd = freshSsd(0.0, ConnectorKind::M2);
    ssd.write(u::gigabytes(1));
    for (int i = 0; i < 251; ++i)
        ssd.matingCycle();
    EXPECT_THROW(ssd.write(u::gigabytes(1)), dhl::FatalError);
    EXPECT_THROW(ssd.readTime(u::gigabytes(1)), dhl::FatalError);
}

TEST(SsdModelTest, FailureInjectionRoughlyCalibrated)
{
    dhl::Rng rng(99);
    int failures = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        auto ssd = freshSsd(0.1);
        if (ssd.rollTripFailure(rng))
            ++failures;
    }
    EXPECT_NEAR(static_cast<double>(failures) / trials, 0.1, 0.03);
}

TEST(SsdModelTest, ZeroProbabilityNeverFails)
{
    dhl::Rng rng(1);
    auto ssd = freshSsd(0.0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(ssd.rollTripFailure(rng));
}

TEST(SsdModelTest, RepairRestoresHealthAndKeepsData)
{
    dhl::Rng rng(7);
    auto ssd = freshSsd(1.0); // certain failure
    ssd.write(u::terabytes(2));
    EXPECT_TRUE(ssd.rollTripFailure(rng));
    EXPECT_EQ(ssd.state(), SsdState::Failed);
    ssd.repair();
    EXPECT_TRUE(ssd.healthy());
    // RAID/backup restoration: contents survive the repair.
    EXPECT_DOUBLE_EQ(ssd.storedBytes(), u::terabytes(2));
    EXPECT_EQ(ssd.matingCycles(), 0u);
}

TEST(SsdModelTest, FailedDeviceStopsRolling)
{
    dhl::Rng rng(7);
    auto ssd = freshSsd(1.0);
    EXPECT_TRUE(ssd.rollTripFailure(rng));
    EXPECT_FALSE(ssd.rollTripFailure(rng)); // already failed
}

TEST(SsdModelTest, RejectsBadFailureProbability)
{
    EXPECT_THROW(freshSsd(-0.1), dhl::FatalError);
    EXPECT_THROW(freshSsd(1.1), dhl::FatalError);
}

TEST(SsdStateNames, ToString)
{
    EXPECT_EQ(to_string(SsdState::Healthy), "healthy");
    EXPECT_EQ(to_string(SsdState::Failed), "failed");
    EXPECT_EQ(to_string(SsdState::ConnectorWorn), "connector-worn");
}
