/**
 * @file
 * Unit tests for the fault subsystem: the FaultState registry, the
 * seeded FaultInjector, and the controller's degraded-mode behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/logging.hpp"
#include "dhl/fleet.hpp"
#include "dhl/reliability.hpp"
#include "dhl/simulation.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_state.hpp"

using namespace dhl;
using namespace dhl::faults;
namespace core = dhl::core;

namespace {

/** A fault config whose injector never fires (tiny horizon), so tests
 *  can drive the registry by hand, deterministically. */
FaultConfig
manualConfig()
{
    FaultConfig fc;
    fc.enabled = true;
    fc.horizon = 1e-9;
    fc.cart_repair_per_trip = 0.0;
    return fc;
}

} // namespace

//===========================================================================
// FaultState
//===========================================================================

TEST(FaultStateTest, UnregisteredComponentsAreUp)
{
    sim::Simulator sim;
    FaultState state(sim);
    EXPECT_TRUE(state.up(Component::Lim, 0));
    EXPECT_TRUE(state.up(Component::Station, 7));
    EXPECT_TRUE(state.launchOk());
    EXPECT_TRUE(state.serviceUp());
    EXPECT_FALSE(state.cartInRepair(3));
    EXPECT_DOUBLE_EQ(state.observedAvailability(100.0), 1.0);
}

TEST(FaultStateTest, FailAndRepairTransitions)
{
    sim::Simulator sim;
    FaultState state(sim);
    state.addComponent(Component::Lim, 0);
    state.addComponent(Component::Lim, 1);
    state.addComponent(Component::Track, 0);

    EXPECT_TRUE(state.launchOk());
    state.fail(Component::Lim, 1);
    EXPECT_FALSE(state.up(Component::Lim, 1));
    EXPECT_TRUE(state.up(Component::Lim, 0));
    EXPECT_FALSE(state.launchOk());
    EXPECT_FALSE(state.serviceUp());
    EXPECT_EQ(state.failures(Component::Lim), 1u);

    state.repair(Component::Lim, 1);
    EXPECT_TRUE(state.launchOk());
    EXPECT_EQ(state.repairs(Component::Lim), 1u);

    // Double fail / repair of a healthy component are driver bugs.
    state.fail(Component::Track, 0);
    EXPECT_THROW(state.fail(Component::Track, 0), PanicError);
    state.repair(Component::Track, 0);
    EXPECT_THROW(state.repair(Component::Track, 0), PanicError);
}

TEST(FaultStateTest, StationRedundancy)
{
    sim::Simulator sim;
    FaultState state(sim);
    state.addComponent(Component::Station, 0);
    state.addComponent(Component::Station, 1);
    EXPECT_EQ(state.stationsUp(), 2u);

    state.fail(Component::Station, 0);
    EXPECT_TRUE(state.serviceUp()) << "one station left";
    state.fail(Component::Station, 1);
    EXPECT_FALSE(state.serviceUp()) << "no stations left";
    state.repair(Component::Station, 0);
    EXPECT_TRUE(state.serviceUp());
}

TEST(FaultStateTest, DowntimeIntegration)
{
    sim::Simulator sim;
    FaultState state(sim);
    state.addComponent(Component::Track, 0);

    // Down over [10, 30) and [50, 60): 30 s of downtime in [0, 100].
    sim.schedule(10.0, [&] { state.fail(Component::Track, 0); });
    sim.schedule(30.0, [&] { state.repair(Component::Track, 0); });
    sim.schedule(50.0, [&] { state.fail(Component::Track, 0); });
    sim.schedule(60.0, [&] { state.repair(Component::Track, 0); });
    sim.schedule(100.0, [] {});
    sim.run();

    EXPECT_DOUBLE_EQ(state.serviceDowntime(100.0), 30.0);
    EXPECT_DOUBLE_EQ(state.observedAvailability(100.0), 0.7);
    // Clipped integration.
    EXPECT_DOUBLE_EQ(state.serviceDowntime(20.0), 10.0);
    EXPECT_EQ(state.serviceTransitions(), 4u);
}

TEST(FaultStateTest, CartRepairShop)
{
    sim::Simulator sim;
    FaultState state(sim);
    EXPECT_FALSE(state.cartInRepair(5));

    state.sendCartToRepair(5, 120.0);
    EXPECT_TRUE(state.cartInRepair(5));
    EXPECT_FALSE(state.cartInRepair(6));
    EXPECT_DOUBLE_EQ(state.cartRepairEnd(5), 120.0);
    EXPECT_EQ(state.cartsInRepair(), 1u);
    EXPECT_EQ(state.cartRepairs(), 1u);
    EXPECT_FALSE(state.up(Component::Cart, 5));

    // A zero-turnaround repair is over the moment it starts.
    state.sendCartToRepair(6, 0.0);
    EXPECT_FALSE(state.cartInRepair(6));

    // Time passes; the repair completes.
    sim.schedule(121.0, [] {});
    sim.run();
    EXPECT_FALSE(state.cartInRepair(5));
    EXPECT_EQ(state.cartsInRepair(), 0u);
}

TEST(FaultStateTest, RepairListenersFire)
{
    sim::Simulator sim;
    FaultState state(sim);
    state.addComponent(Component::Lim, 0);
    int fired = 0;
    state.onRepair([&] { ++fired; });
    state.fail(Component::Lim, 0);
    EXPECT_EQ(fired, 0);
    state.repair(Component::Lim, 0);
    EXPECT_EQ(fired, 1);
}

TEST(FaultStateTest, BackoffPolicy)
{
    RetryPolicy p;
    p.initial_backoff = 2.0;
    p.multiplier = 3.0;
    p.max_backoff = 25.0;
    EXPECT_DOUBLE_EQ(nextBackoff(p, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(nextBackoff(p, 2.0), 6.0);
    EXPECT_DOUBLE_EQ(nextBackoff(p, 6.0), 18.0);
    EXPECT_DOUBLE_EQ(nextBackoff(p, 18.0), 25.0) << "bounded";
    EXPECT_DOUBLE_EQ(nextBackoff(p, 25.0), 25.0);
}

TEST(FaultConfigTest, Equality)
{
    FaultConfig a, b;
    EXPECT_TRUE(a == b);
    b.seed = 2;
    EXPECT_FALSE(a == b);
    b = a;
    b.retry.max_backoff = 1234.0;
    EXPECT_FALSE(a == b);
}

//===========================================================================
// FaultInjector
//===========================================================================

TEST(FaultInjectorTest, Validation)
{
    FaultConfig ok;
    EXPECT_NO_THROW(validate(ok));

    // The edge cases the analytical ReliabilityConfig accepts must be
    // accepted here too (the two models share parameters).
    FaultConfig edge;
    edge.lim_mttr = 0.0;
    edge.track_mttr = 0.0;
    edge.station_mttr = 0.0;
    edge.cart_repair_per_trip = 0.0;
    edge.cart_repair_hours = 0.0;
    EXPECT_NO_THROW(validate(edge));

    FaultConfig bad;
    bad.lim_mtbf = 0.0;
    EXPECT_THROW(validate(bad), FatalError);
    bad = FaultConfig{};
    bad.station_mttr = -1.0;
    EXPECT_THROW(validate(bad), FatalError);
    bad = FaultConfig{};
    bad.cart_repair_per_trip = 1.5;
    EXPECT_THROW(validate(bad), FatalError);
    bad = FaultConfig{};
    bad.horizon = 0.0;
    EXPECT_THROW(validate(bad), FatalError);
    bad = FaultConfig{};
    bad.retry.multiplier = 0.5;
    EXPECT_THROW(validate(bad), FatalError);
    bad = FaultConfig{};
    bad.retry.max_backoff = 0.1; // below initial
    EXPECT_THROW(validate(bad), FatalError);
}

TEST(FaultInjectorTest, DisabledConfigIsInert)
{
    sim::Simulator sim;
    FaultState state(sim);
    FaultConfig fc; // enabled = false
    FaultInjector injector(sim, state, fc, 2);
    sim.run();
    EXPECT_EQ(injector.eventsInjected(), 0u);
    EXPECT_EQ(sim.eventsExecuted(), 0u);
    EXPECT_EQ(state.components(Component::Station), 0u);
    EXPECT_FALSE(state.rollCartBreakdown(0)) << "no roller installed";
    EXPECT_TRUE(state.serviceUp());
}

TEST(FaultInjectorTest, DeterministicTimeline)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.seed = 42;
    fc.lim_mtbf = 10.0;
    fc.lim_mttr = 1.0;
    fc.track_mtbf = 20.0;
    fc.track_mttr = 2.0;
    fc.station_mtbf = 5.0;
    fc.station_mttr = 0.5;
    fc.horizon = 5000.0 * 3600.0;

    auto run = [&](std::uint64_t seed) {
        FaultConfig cfg = fc;
        cfg.seed = seed;
        sim::Simulator sim;
        FaultState state(sim);
        FaultInjector injector(sim, state, cfg, 2);
        sim.run();
        return std::make_tuple(injector.eventsInjected(),
                               state.serviceTransitions(),
                               state.observedAvailability(cfg.horizon));
    };

    const auto a = run(42);
    const auto b = run(42);
    EXPECT_EQ(a, b) << "same seed, same timeline";
    EXPECT_GT(std::get<0>(a), 0u);

    const auto c = run(43);
    EXPECT_NE(std::get<2>(a), std::get<2>(c))
        << "different seeds decorrelate";
}

TEST(FaultInjectorTest, HorizonBoundsFailures)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.lim_mtbf = 0.01; // 36 s between failures
    fc.lim_mttr = 0.001;
    fc.track_mtbf = 0.01;
    fc.track_mttr = 0.001;
    fc.station_mtbf = 0.01;
    fc.station_mttr = 0.001;
    fc.horizon = 1000.0;

    sim::Simulator sim;
    FaultState state(sim);
    FaultInjector injector(sim, state, fc, 1);
    const double end = sim.run();

    // The queue drained: no failure at/after the horizon, and every
    // failure got its repair (everything healthy at the end).
    EXPECT_LT(end, fc.horizon + fc.lim_mttr * 3600.0 + 1.0);
    EXPECT_TRUE(state.serviceUp());
    EXPECT_EQ(state.failures(Component::Lim),
              state.repairs(Component::Lim));
    EXPECT_EQ(state.failures(Component::Track),
              state.repairs(Component::Track));
    EXPECT_EQ(state.failures(Component::Station),
              state.repairs(Component::Station));
    EXPECT_GT(injector.eventsInjected(), 0u);
}

TEST(FaultInjectorTest, ZeroMttrMeansZeroDowntime)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.lim_mtbf = 0.01;
    fc.lim_mttr = 0.0;
    fc.track_mtbf = 0.01;
    fc.track_mttr = 0.0;
    fc.station_mtbf = 0.01;
    fc.station_mttr = 0.0;
    fc.horizon = 1000.0;

    sim::Simulator sim;
    FaultState state(sim);
    FaultInjector injector(sim, state, fc, 1);
    sim.run();

    EXPECT_GT(state.failures(Component::Lim), 0u);
    EXPECT_DOUBLE_EQ(state.serviceDowntime(fc.horizon), 0.0);
    EXPECT_DOUBLE_EQ(state.observedAvailability(fc.horizon), 1.0);
}

TEST(FaultInjectorTest, CartBreakdownDice)
{
    sim::Simulator sim;
    FaultState state(sim);
    FaultConfig fc = manualConfig();
    fc.cart_repair_per_trip = 1.0; // every trip breaks the cart
    fc.cart_repair_hours = 0.5;
    FaultInjector injector(sim, state, fc, 1);

    EXPECT_TRUE(state.rollCartBreakdown(3));
    EXPECT_TRUE(state.cartInRepair(3));
    EXPECT_DOUBLE_EQ(state.cartRepairEnd(3), 0.5 * 3600.0);
    EXPECT_FALSE(state.cartInRepair(4));

    // Zero probability must not even touch the stream.
    sim::Simulator sim2;
    FaultState state2(sim2);
    FaultConfig zero = manualConfig();
    FaultInjector injector2(sim2, state2, zero, 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(state2.rollCartBreakdown(0));
    EXPECT_EQ(state2.cartRepairs(), 0u);
}

TEST(FaultInjectorTest, AgreesWithAnalyticalBridge)
{
    core::ReliabilityConfig rel;
    rel.lim_mtbf = 123.0;
    rel.lim_mttr = 4.5;
    rel.track_mtbf = 678.0;
    rel.track_mttr = 9.0;
    rel.station_mtbf = 55.0;
    rel.station_mttr = 0.0;
    rel.cart_repair_per_trip = 0.25;
    rel.cart_repair_hours = 1.5;

    const FaultConfig fc = core::toFaultConfig(rel, 7, 1000.0);
    EXPECT_TRUE(fc.enabled);
    EXPECT_EQ(fc.seed, 7u);
    EXPECT_DOUBLE_EQ(fc.horizon, 1000.0);
    EXPECT_DOUBLE_EQ(fc.lim_mtbf, rel.lim_mtbf);
    EXPECT_DOUBLE_EQ(fc.lim_mttr, rel.lim_mttr);
    EXPECT_DOUBLE_EQ(fc.track_mtbf, rel.track_mtbf);
    EXPECT_DOUBLE_EQ(fc.track_mttr, rel.track_mttr);
    EXPECT_DOUBLE_EQ(fc.station_mtbf, rel.station_mtbf);
    EXPECT_DOUBLE_EQ(fc.station_mttr, rel.station_mttr);
    EXPECT_DOUBLE_EQ(fc.cart_repair_per_trip, rel.cart_repair_per_trip);
    EXPECT_DOUBLE_EQ(fc.cart_repair_hours, rel.cart_repair_hours);
}

//===========================================================================
// Controller degraded-mode behaviour
//===========================================================================

TEST(ControllerFaultsTest, OpenReroutesAroundFailedStation)
{
    core::DhlConfig cfg = core::defaultConfig();
    cfg.docking_stations = 2;
    core::DhlSimulation des(cfg);
    des.enableFaults(manualConfig());
    des.controller().addCart(0.0);

    des.faultState()->fail(Component::Station, 0);
    core::DockingStation *docked_at = nullptr;
    des.controller().open(
        0, [&](core::Cart &, core::DockingStation &st) {
            docked_at = &st;
        });
    des.simulator().run();
    ASSERT_NE(docked_at, nullptr);
    EXPECT_EQ(docked_at, &des.controller().station(1))
        << "the open re-routed to the surviving station";
}

TEST(ControllerFaultsTest, OpensQueueUntilStationRepair)
{
    core::DhlConfig cfg = core::defaultConfig(); // one station
    core::DhlSimulation des(cfg);
    des.enableFaults(manualConfig());
    des.controller().addCart(0.0);

    des.faultState()->fail(Component::Station, 0);
    double opened_at = -1.0;
    des.controller().open(0, [&](core::Cart &, core::DockingStation &) {
        opened_at = des.simulator().now();
    });
    des.simulator().step(100);
    EXPECT_LT(opened_at, 0.0) << "no station: the open must wait";
    EXPECT_EQ(des.controller().queuedOpens(), 1u);

    des.simulator().schedule(500.0, [&] {
        des.faultState()->repair(Component::Station, 0);
    });
    des.simulator().run();
    EXPECT_GE(opened_at, 500.0)
        << "the open dispatched after the repair";
}

TEST(ControllerFaultsTest, LimOutageParksTripWithBoundedBackoff)
{
    core::DhlConfig cfg = core::defaultConfig();
    core::DhlSimulation des(cfg);
    des.enableFaults(manualConfig());
    des.controller().addCart(0.0);

    // Fail a LIM while the cart is undocking (after admission, before
    // launch), so the trip parks instead of queueing.
    des.simulator().schedule(1.0, [&] {
        des.faultState()->fail(Component::Lim, 0);
    });
    des.simulator().schedule(200.0, [&] {
        des.faultState()->repair(Component::Lim, 0);
    });
    double opened_at = -1.0;
    des.controller().open(0, [&](core::Cart &, core::DockingStation &) {
        opened_at = des.simulator().now();
    });
    des.simulator().run();

    EXPECT_GE(opened_at, 200.0);
    EXPECT_GT(des.controller().parkedLaunches(), 0u)
        << "the trip parked and retried";
}

TEST(ControllerFaultsTest, DockedCartServedAtFailedStation)
{
    core::DhlConfig cfg = core::defaultConfig();
    core::DhlSimulation des(cfg);
    des.enableFaults(manualConfig());
    auto &cart = des.controller().addCart(1e9);
    const core::CartId id = cart.id();

    bool closed = false;
    des.controller().open(
        id, [&](core::Cart &, core::DockingStation &) {
            // The station fails with the cart docked: reads and the
            // close must still be served; only new reservations stop.
            des.faultState()->fail(Component::Station, 0);
            des.controller().read(id, 1e9, [&](double) {
                des.controller().close(id,
                                       [&](core::Cart &) {
                                           closed = true;
                                       });
            });
        });
    des.simulator().run();
    EXPECT_TRUE(closed);
    EXPECT_EQ(des.faultState()->stationsUp(), 0u);
}

TEST(ControllerFaultsTest, BreakdownHoldsNextOpenUntilRepair)
{
    core::DhlConfig cfg = core::defaultConfig();
    core::DhlSimulation des(cfg);
    FaultConfig fc = manualConfig();
    fc.cart_repair_per_trip = 1.0; // break down on every return
    fc.cart_repair_hours = 0.1;    // 360 s turnaround
    des.enableFaults(fc);
    auto &cart = des.controller().addCart(0.0);
    const core::CartId id = cart.id();

    double reopened_at = -1.0;
    des.controller().open(id, [&](core::Cart &, core::DockingStation &) {
        des.controller().close(id, [&](core::Cart &c) {
            EXPECT_EQ(c.breakdowns(), 1u);
            EXPECT_TRUE(des.faultState()->cartInRepair(id));
            // Re-open while the cart is in the shop: held.
            des.controller().open(
                id, [&](core::Cart &, core::DockingStation &) {
                    reopened_at = des.simulator().now();
                    des.controller().close(id, [](core::Cart &c2) {
                        EXPECT_EQ(c2.breakdowns(), 2u);
                    });
                });
        });
    });
    des.simulator().run();

    EXPECT_EQ(des.controller().cartBreakdowns(), 2u)
        << "both round trips rolled a breakdown";
    EXPECT_EQ(des.controller().heldOpens(), 1u);
    EXPECT_GE(reopened_at, 360.0)
        << "the held open waited for the repair turnaround";
}

TEST(ControllerFaultsTest, PriorityFifoWithinLevelAfterRepair)
{
    // Four opens queue behind a failed station; the repair re-dispatch
    // must honour the policy order: priority first, FIFO within a
    // level (seq breaks the tie, never heap order or arrival jitter).
    core::DhlConfig cfg = core::defaultConfig(); // one station
    core::DhlSimulation des(cfg);
    des.enableFaults(manualConfig());
    des.controller().setScheduler(core::makePriorityScheduler());
    for (int i = 0; i < 4; ++i)
        des.controller().addCart(0.0);

    des.faultState()->fail(Component::Station, 0);
    std::vector<core::CartId> dock_order;
    auto record = [&](core::Cart &c, core::DockingStation &) {
        dock_order.push_back(c.id());
        des.controller().close(c.id(), nullptr);
    };
    des.controller().open(0, core::RequestMeta{1, 1e18}, record);
    des.controller().open(1, core::RequestMeta{2, 1e18}, record);
    des.controller().open(2, core::RequestMeta{2, 1e18}, record);
    des.controller().open(3, core::RequestMeta{1, 1e18}, record);
    des.simulator().schedule(500.0, [&] {
        des.faultState()->repair(Component::Station, 0);
    });
    des.simulator().run();

    ASSERT_EQ(dock_order.size(), 4u);
    EXPECT_EQ(dock_order[0], 1u); // priority 2, earlier seq
    EXPECT_EQ(dock_order[1], 2u); // priority 2
    EXPECT_EQ(dock_order[2], 0u); // priority 1, earlier seq
    EXPECT_EQ(dock_order[3], 3u); // priority 1
}

TEST(ControllerFaultsTest, EdfEqualDeadlinesKeepArrivalOrderAfterRepair)
{
    core::DhlConfig cfg = core::defaultConfig(); // one station
    core::DhlSimulation des(cfg);
    des.enableFaults(manualConfig());
    des.controller().setScheduler(core::makeDeadlineScheduler());
    for (int i = 0; i < 4; ++i)
        des.controller().addCart(0.0);

    des.faultState()->fail(Component::Station, 0);
    std::vector<core::CartId> dock_order;
    auto record = [&](core::Cart &c, core::DockingStation &) {
        dock_order.push_back(c.id());
        des.controller().close(c.id(), nullptr);
    };
    des.controller().open(0, core::RequestMeta{0, 1000.0}, record);
    des.controller().open(1, core::RequestMeta{0, 500.0}, record);
    des.controller().open(2, core::RequestMeta{0, 500.0}, record);
    des.controller().open(3, core::RequestMeta{0, 1000.0}, record);
    des.simulator().schedule(500.0, [&] {
        des.faultState()->repair(Component::Station, 0);
    });
    des.simulator().run();

    ASSERT_EQ(dock_order.size(), 4u);
    EXPECT_EQ(dock_order[0], 1u); // deadline 500, earlier seq
    EXPECT_EQ(dock_order[1], 2u); // deadline 500
    EXPECT_EQ(dock_order[2], 0u); // deadline 1000, earlier seq
    EXPECT_EQ(dock_order[3], 3u); // deadline 1000
}

TEST(ControllerFaultsTest, FaultEventsFlowThroughTrace)
{
    core::DhlConfig cfg = core::defaultConfig();
    core::DhlSimulation des(cfg);
    des.enableFaults(manualConfig());
    des.trace().enable();
    des.controller().addCart(0.0);

    des.simulator().schedule(1.0, [&] {
        des.faultState()->fail(Component::Lim, 0);
    });
    des.simulator().schedule(100.0, [&] {
        des.faultState()->repair(Component::Lim, 0);
    });
    bool opened = false;
    des.controller().open(0, [&](core::Cart &, core::DockingStation &) {
        opened = true;
    });
    des.simulator().run();
    ASSERT_TRUE(opened);

    const auto faults = des.trace().filter("fault");
    ASSERT_GE(faults.size(), 3u)
        << "expected fail, park(s), and repair records";
    EXPECT_EQ(faults.front().object, "lim0");
}

TEST(ControllerFaultsTest, ReserveLaunchWhileDownPanics)
{
    core::DhlConfig cfg = core::defaultConfig();
    core::DhlSimulation des(cfg);
    des.enableFaults(manualConfig());
    des.faultState()->fail(Component::Track, 0);
    EXPECT_THROW(des.controller().track().reserveLaunch(
                     core::Direction::Outbound),
                 PanicError)
        << "components refuse service while down";
}

TEST(FleetFaultsTest, TracksFailIndependently)
{
    core::DhlConfig cfg = core::defaultConfig();
    core::DhlFleet fleet(cfg, 2);
    fleet.enableFaults(manualConfig());

    fleet.faultState(0)->fail(Component::Lim, 0);
    EXPECT_FALSE(fleet.faultState(0)->launchOk());
    EXPECT_TRUE(fleet.faultState(1)->launchOk())
        << "each track has its own registry";
    fleet.faultState(0)->repair(Component::Lim, 0);

    // A faulted fleet transfer completes and derates, deterministically.
    core::ReliabilityConfig rel;
    rel.lim_mtbf = 0.05;
    rel.lim_mttr = 0.01;
    rel.track_mtbf = 0.1;
    rel.track_mttr = 0.012;
    rel.station_mtbf = 0.03;
    rel.station_mttr = 0.008;
    rel.cart_repair_per_trip = 0.0;
    auto run = [&] {
        core::DhlFleet f(cfg, 2);
        core::BulkRunOptions opts;
        opts.faults = core::toFaultConfig(rel, 21);
        return f.runBulkTransfer(12.0 * cfg.cartCapacity().value(), opts)
            .total_time;
    };
    const double a = run();
    EXPECT_EQ(a, run()) << "fleet fault runs replay exactly";
}

TEST(SimulationFaultsTest, EnableFaultsIsIdempotentForSameConfig)
{
    core::DhlSimulation des(core::defaultConfig());
    const FaultConfig fc = manualConfig();
    des.enableFaults(fc);
    EXPECT_NO_THROW(des.enableFaults(fc));
    FaultConfig other = fc;
    other.seed = 99;
    EXPECT_THROW(des.enableFaults(other), FatalError);
    FaultConfig off;
    EXPECT_THROW(des.enableFaults(off), FatalError);
}
