/**
 * @file
 * Unit tests for the training workload descriptors.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "mlsim/workload.hpp"

using namespace dhl::mlsim;
namespace u = dhl::units;

TEST(WorkloadTest, DlrmPreset)
{
    const TrainingWorkload w = dlrmWorkload();
    EXPECT_DOUBLE_EQ(w.dataset_bytes, u::petabytes(29));
    EXPECT_DOUBLE_EQ(w.model_bytes, u::terabytes(44));
    EXPECT_DOUBLE_EQ(w.compute_time, 265.0);
    EXPECT_NO_THROW(validate(w));
}

TEST(WorkloadTest, ScalingShrinksDatasetAndCompute)
{
    const TrainingWorkload w = dlrmWorkload();
    const TrainingWorkload s = scaled(w, 1e-7);
    EXPECT_DOUBLE_EQ(s.dataset_bytes, w.dataset_bytes * 1e-7);
    EXPECT_DOUBLE_EQ(s.compute_time, w.compute_time * 1e-7);
    EXPECT_NE(s.name, w.name);
    EXPECT_THROW(scaled(w, 0.0), dhl::FatalError);
    EXPECT_THROW(scaled(w, -1.0), dhl::FatalError);
}

TEST(WorkloadTest, ValidationCatchesNonsense)
{
    TrainingWorkload w = dlrmWorkload();
    w.dataset_bytes = 0.0;
    EXPECT_THROW(validate(w), dhl::FatalError);
    w = dlrmWorkload();
    w.compute_time = -1.0;
    EXPECT_THROW(validate(w), dhl::FatalError);
    w = dlrmWorkload();
    w.model_bytes = -1.0;
    EXPECT_THROW(validate(w), dhl::FatalError);
}
