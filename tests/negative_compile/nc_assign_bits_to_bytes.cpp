/**
 * @file
 * Negative-compilation proof: bits and bytes are distinct dimensions,
 * so a bit-rate can never be stored as a byte-rate without the explicit
 * qty::toBytesPerSecond conversion.  The CMake harness asserts this
 * translation unit fails to build.
 */

#include "common/quantity.hpp"

int
main()
{
    using namespace dhl::qty;
    BytesPerSecond rate = gigabitsPerSecond(400.0); // must not compile
    return rate.value() > 0.0 ? 0 : 1;
}
