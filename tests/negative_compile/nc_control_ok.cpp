/**
 * @file
 * Positive control for the negative-compilation harness: this file MUST
 * compile.  If it fails, the harness itself (include path, standard) is
 * broken, and the "expected failure" results of the nc_* siblings are
 * meaningless.
 */

#include "common/quantity.hpp"

int
main()
{
    using namespace dhl::qty;
    const Seconds t = Seconds{2.0} + Seconds{3.0};
    const Metres d = MetresPerSecond{10.0} * t;
    static_assert(sizeof(Seconds) == sizeof(double));
    return d.value() > 0.0 ? 0 : 1;
}
