/**
 * @file
 * Negative-compilation proof: quantities never convert implicitly from
 * or to raw double (only explicit Quantity{x} construction and the
 * .value() escape hatch).  The CMake harness asserts this translation
 * unit fails to build.
 */

#include "common/quantity.hpp"

double
takesSeconds(dhl::qty::Seconds t)
{
    return t.value();
}

int
main()
{
    const double plain = 5.0;
    return takesSeconds(plain) > 0.0 ? 0 : 1; // must not compile
}
