/**
 * @file
 * Negative-compilation proof: adding quantities of different dimensions
 * (here time + energy) must NOT compile.  The CMake harness asserts
 * this translation unit fails to build.
 */

#include "common/quantity.hpp"

int
main()
{
    using namespace dhl::qty;
    auto nonsense = Seconds{1.0} + Joules{1.0}; // must not compile
    return nonsense.value() > 0.0 ? 0 : 1;
}
