/**
 * @file
 * Unit tests for the open-loop arrival processes
 * (workloads/arrival.hpp): incremental replay, staged profiles, the
 * same-grid determinism contract, and snapshot round-trips.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "sim/snapshot.hpp"
#include "workloads/arrival.hpp"

using namespace dhl;
using namespace dhl::workloads;
namespace u = dhl::units;

namespace {

std::vector<StageSpec>
rampHoldDrain()
{
    RequestClass bulk{"bulk", 3.0, u::gigabytes(64), 0.0, 0};
    RequestClass urgent{"urgent", 1.0, u::gigabytes(8), 0.4, 1};
    return {
        StageSpec{"ramp", 600.0, 0.0, 0.2, {bulk, urgent}},
        StageSpec{"hold", 1200.0, 0.2, 0.2, {bulk, urgent}},
        StageSpec{"drain", 600.0, 0.2, 0.0, {bulk, urgent}},
    };
}

bool
sameEvent(const ArrivalEvent &a, const ArrivalEvent &b)
{
    return a.at == b.at && a.bytes == b.bytes && a.tag == b.tag &&
           a.stage == b.stage && a.priority == b.priority;
}

std::vector<ArrivalEvent>
drainOnGrid(ArrivalProcess &p, double step, double end)
{
    std::vector<ArrivalEvent> all;
    for (double t = step; t <= end + 1e-9; t += step)
        for (ArrivalEvent &ev : p.take(t))
            all.push_back(std::move(ev));
    return all;
}

} // namespace

TEST(ReplayArrival, IncrementalTakeMatchesBatchList)
{
    std::vector<TransferRequest> requests = {
        {0.0, u::terabytes(1), "a"},
        {10.0, u::terabytes(2), "b"},
        {10.0, u::terabytes(3), "c"}, // ties stay in list order
        {35.0, u::terabytes(4), "d"},
        {90.0, u::terabytes(5), "e"},
    };
    ReplayArrivalProcess p(requests);
    EXPECT_FALSE(p.exhausted());

    // take(until) returns (cursor, until] — inclusive upper bound.
    auto first = p.take(10.0);
    ASSERT_EQ(first.size(), 3u);
    EXPECT_EQ(first[2].tag, "c");
    EXPECT_EQ(p.cursor(), 10.0);

    EXPECT_TRUE(p.take(20.0).empty()); // empty window is fine

    auto rest = p.take(1000.0);
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0].tag, "d");
    EXPECT_EQ(rest[1].bytes, u::terabytes(5));
    EXPECT_EQ(rest[1].stage, 0);
    EXPECT_EQ(rest[1].priority, 0);
    EXPECT_TRUE(p.exhausted());
}

TEST(ReplayArrival, ConstructionValidatesRequests)
{
    EXPECT_THROW(ReplayArrivalProcess({}), FatalError);
    std::vector<TransferRequest> unsorted = {
        {5.0, u::terabytes(1), "late"},
        {1.0, u::terabytes(1), "early"},
    };
    EXPECT_THROW(ReplayArrivalProcess{unsorted}, FatalError);
}

TEST(ReplayArrival, SnapshotResumesMidStream)
{
    std::vector<TransferRequest> requests = {
        {1.0, u::terabytes(1), "a"},
        {2.0, u::terabytes(2), "b"},
        {3.0, u::terabytes(3), "c"},
    };
    ReplayArrivalProcess p(requests);
    p.take(1.5);

    std::stringstream doc;
    {
        sim::SnapshotWriter w(doc);
        p.saveState(w);
    }
    ReplayArrivalProcess q(requests);
    sim::SnapshotReader r(doc);
    q.restoreState(r);
    EXPECT_EQ(q.cursor(), 1.5);

    const auto from_p = p.take(10.0);
    const auto from_q = q.take(10.0);
    ASSERT_EQ(from_p.size(), 2u);
    ASSERT_EQ(from_q.size(), 2u);
    for (std::size_t i = 0; i < from_p.size(); ++i)
        EXPECT_TRUE(sameEvent(from_p[i], from_q[i]));
}

TEST(StagedArrival, SameGridIsDeterministic)
{
    StagedArrivalProcess a(rampHoldDrain(), 42);
    StagedArrivalProcess b(rampHoldDrain(), 42);
    const auto ea = drainOnGrid(a, 300.0, a.totalDuration());
    const auto eb = drainOnGrid(b, 300.0, b.totalDuration());
    ASSERT_FALSE(ea.empty());
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i)
        EXPECT_TRUE(sameEvent(ea[i], eb[i])) << "event " << i;

    // A different seed produces a different stream.
    StagedArrivalProcess c(rampHoldDrain(), 43);
    const auto ec = drainOnGrid(c, 300.0, c.totalDuration());
    bool any_diff = ec.size() != ea.size();
    for (std::size_t i = 0; !any_diff && i < ea.size(); ++i)
        any_diff = !sameEvent(ea[i], ec[i]);
    EXPECT_TRUE(any_diff);
}

TEST(StagedArrival, ArrivalsLandInsideTheirStage)
{
    StagedArrivalProcess p(rampHoldDrain(), 7);
    EXPECT_EQ(p.totalDuration(), 2400.0);
    const auto events = drainOnGrid(p, 600.0, p.totalDuration());
    ASSERT_FALSE(events.empty());
    double prev = 0.0;
    for (const ArrivalEvent &ev : events) {
        ASSERT_GE(ev.stage, 0);
        ASSERT_LT(ev.stage, 3);
        const StageSpec &s = p.stage(std::size_t(ev.stage));
        double start = 0.0;
        for (int k = 0; k < ev.stage; ++k)
            start += p.stage(std::size_t(k)).duration;
        EXPECT_GE(ev.at, start);
        EXPECT_LT(ev.at, start + s.duration);
        EXPECT_GE(ev.at, prev); // time ordered across takes
        prev = ev.at;
        // Class fields propagate.
        if (ev.tag == "bulk") {
            EXPECT_EQ(ev.priority, 0);
            EXPECT_EQ(ev.bytes, u::gigabytes(64)); // sigma 0: constant
        } else {
            EXPECT_EQ(ev.tag, "urgent");
            EXPECT_EQ(ev.priority, 1);
            EXPECT_GT(ev.bytes, 0.0);
        }
    }
    EXPECT_TRUE(p.exhausted());
    EXPECT_EQ(p.emitted(), events.size());
}

TEST(StagedArrival, ZeroRateStagesProduceNothing)
{
    RequestClass only{"idle", 1.0, u::gigabytes(1), 0.0, 0};
    std::vector<StageSpec> stages = {
        StageSpec{"quiet", 500.0, 0.0, 0.0, {only}},
        StageSpec{"still", 500.0, 0.0, 0.0, {only}},
    };
    StagedArrivalProcess p(stages, 11);
    EXPECT_TRUE(p.take(400.0).empty());
    EXPECT_FALSE(p.exhausted());
    EXPECT_TRUE(p.take(1000.0).empty());
    EXPECT_TRUE(p.exhausted());
    EXPECT_EQ(p.emitted(), 0u);
}

TEST(StagedArrival, SnapshotContinuesByteForByteOnSameGrid)
{
    // Oracle: one process consumed on a fixed grid, uninterrupted.
    StagedArrivalProcess oracle(rampHoldDrain(), 99);
    const auto want = drainOnGrid(oracle, 200.0, oracle.totalDuration());

    // Subject: same grid, but snapshot/restore into a fresh process at
    // an interior boundary.
    StagedArrivalProcess first(rampHoldDrain(), 99);
    std::vector<ArrivalEvent> got = drainOnGrid(first, 200.0, 800.0);

    std::stringstream doc;
    {
        sim::SnapshotWriter w(doc);
        first.saveState(w);
    }
    StagedArrivalProcess second(rampHoldDrain(), 1); // wrong seed on purpose
    sim::SnapshotReader r(doc);
    second.restoreState(r);
    EXPECT_EQ(second.cursor(), 800.0);
    for (double t = 1000.0; t <= second.totalDuration() + 1e-9; t += 200.0)
        for (ArrivalEvent &ev : second.take(t))
            got.push_back(std::move(ev));

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(sameEvent(got[i], want[i])) << "event " << i;
}

TEST(StagedArrival, RateAtAndStageAtFollowTheProfile)
{
    StagedArrivalProcess p(rampHoldDrain(), 1);
    EXPECT_EQ(p.stageAt(0.0), 0u);
    EXPECT_EQ(p.stageAt(600.0), 1u);
    EXPECT_EQ(p.stageAt(1799.0), 1u);
    EXPECT_EQ(p.stageAt(1e9), 2u); // clamped to the last stage
    EXPECT_DOUBLE_EQ(p.rateAt(0.0), 0.0);
    EXPECT_NEAR(p.rateAt(300.0), 0.1, 1e-12); // midway up the ramp
    EXPECT_NEAR(p.rateAt(1200.0), 0.2, 1e-12);
    EXPECT_NEAR(p.rateAt(2100.0), 0.1, 1e-12); // midway down the drain
}

TEST(StagedArrival, ConstructionValidatesStages)
{
    RequestClass ok{"x", 1.0, u::gigabytes(1), 0.0, 0};
    EXPECT_THROW(StagedArrivalProcess({}, 1), FatalError);
    EXPECT_THROW(StagedArrivalProcess(
                     {StageSpec{"bad", 0.0, 1.0, 1.0, {ok}}}, 1),
                 FatalError); // zero duration
    EXPECT_THROW(StagedArrivalProcess(
                     {StageSpec{"bad", 10.0, -1.0, 1.0, {ok}}}, 1),
                 FatalError); // negative rate
    EXPECT_THROW(
        StagedArrivalProcess({StageSpec{"bad", 10.0, 1.0, 1.0, {}}}, 1),
        FatalError); // empty mix
    RequestClass bad_weight{"x", 0.0, u::gigabytes(1), 0.0, 0};
    EXPECT_THROW(StagedArrivalProcess(
                     {StageSpec{"bad", 10.0, 1.0, 1.0, {bad_weight}}}, 1),
                 FatalError);
}

TEST(StagedArrival, ParseStageSpec)
{
    const auto stages =
        parseStageSpec("ramp:600:0:0.5,peak:1200:0.5,cool:600:0.5:0",
                       u::gigabytes(64), 0.25);
    ASSERT_EQ(stages.size(), 3u);
    EXPECT_EQ(stages[0].name, "ramp");
    EXPECT_DOUBLE_EQ(stages[0].duration, 600.0);
    EXPECT_DOUBLE_EQ(stages[0].start_rate, 0.0);
    EXPECT_DOUBLE_EQ(stages[0].end_rate, 0.5);
    // Three-field form is a hold stage: end_rate == start_rate.
    EXPECT_DOUBLE_EQ(stages[1].start_rate, 0.5);
    EXPECT_DOUBLE_EQ(stages[1].end_rate, 0.5);
    EXPECT_DOUBLE_EQ(stages[2].end_rate, 0.0);
    ASSERT_EQ(stages[0].mix.size(), 1u);
    EXPECT_EQ(stages[0].mix[0].tag, "serve");
    EXPECT_DOUBLE_EQ(stages[0].mix[0].median_bytes, u::gigabytes(64));
    EXPECT_DOUBLE_EQ(stages[0].mix[0].sigma, 0.25);

    EXPECT_THROW(parseStageSpec("", u::gigabytes(1), 0.0), FatalError);
    EXPECT_THROW(parseStageSpec("noduration", u::gigabytes(1), 0.0),
                 FatalError);
    EXPECT_THROW(parseStageSpec("a:xyz:1", u::gigabytes(1), 0.0),
                 FatalError);
    EXPECT_THROW(parseStageSpec("a:600:1:2:3", u::gigabytes(1), 0.0),
                 FatalError); // too many fields
}
