/**
 * @file
 * Property tests over the ML training simulator: iso-power/iso-time
 * duality, linear scaling, and budget monotonicity.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "common/units.hpp"
#include "mlsim/sweep.hpp"
#include "mlsim/training_sim.hpp"

using namespace dhl::mlsim;
using dhl::Rng;
using dhl::core::defaultConfig;
using dhl::core::makeConfig;
using dhl::network::canonicalRoutes;
namespace u = dhl::units;

class MlsimProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MlsimProperty, IsoPowerIsoTimeDualityContinuous)
{
    Rng rng(GetParam());
    for (const auto &route : canonicalRoutes()) {
        OpticalComm net(route);
        TrainingSim sim(dlrmWorkload(), net);
        const double budget = rng.uniform(500.0, 50000.0);
        const auto r = sim.isoPower(budget);
        // Solving for the power that achieves r.iter_time must return
        // the budget.
        const double back = sim.powerForIterTime(r.iter_time);
        EXPECT_NEAR(back, budget, budget * 1e-9) << route.name();
    }
}

TEST_P(MlsimProperty, MoreBudgetNeverSlower)
{
    Rng rng(GetParam() + 10);
    OpticalComm net(canonicalRoutes()[2]); // A2
    TrainingSim sim(dlrmWorkload(), net);
    double budget = rng.uniform(100.0, 500.0);
    double prev = sim.isoPower(budget).iter_time;
    for (int i = 0; i < 8; ++i) {
        budget *= 2.0;
        const double t = sim.isoPower(budget).iter_time;
        EXPECT_LE(t, prev);
        prev = t;
    }
}

TEST_P(MlsimProperty, ComputeFloorsIterationTime)
{
    Rng rng(GetParam() + 20);
    OpticalComm net(canonicalRoutes()[0]);
    TrainingSim sim(dlrmWorkload(), net);
    const double huge_budget = rng.uniform(1e6, 1e9);
    const auto r = sim.isoPower(huge_budget);
    EXPECT_GT(r.iter_time, dlrmWorkload().compute_time);
}

TEST_P(MlsimProperty, DhlQuantisationStepsAreMonotone)
{
    Rng rng(GetParam() + 30);
    const auto ssds = static_cast<std::size_t>(rng.uniformInt(16, 64));
    DhlComm comm(makeConfig(200, 500, ssds));
    TrainingSim sim(dlrmWorkload(), comm);
    double prev = 1e18;
    for (double k = 1.0; k <= 16.0; k += 1.0) {
        const double t = sim.iterate(k).iter_time;
        EXPECT_LE(t, prev);
        prev = t;
    }
}

TEST_P(MlsimProperty, ScalingProtocolLinearAcrossFactors)
{
    // The paper verified time-per-iteration is linear in dataset size
    // before applying its 1e7 downscale; the same must hold here.
    OpticalComm net(canonicalRoutes()[4]); // C
    TrainingSim sim(dlrmWorkload(), net);
    const auto full = sim.iterate(25.0);
    for (double factor : {1e-2, 1e-4, 1e-7}) {
        const auto s = sim.iterateScaled(25.0, factor);
        EXPECT_NEAR(s.iter_time, full.iter_time, full.iter_time * 1e-9)
            << factor;
    }
}

TEST_P(MlsimProperty, EnergyInvariantUnderParallelism)
{
    Rng rng(GetParam() + 40);
    OpticalComm net(canonicalRoutes()[1]);
    TrainingSim sim(dlrmWorkload(), net);
    const double e1 = sim.iterate(1.0).comm_energy;
    const double en = sim.iterate(rng.uniform(2.0, 500.0)).comm_energy;
    EXPECT_NEAR(e1, en, e1 * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlsimProperty,
                         ::testing::Values(3u, 9u, 27u, 81u));
